package weaksim_test

import (
	"errors"
	"math"
	"testing"

	"weaksim"
	"weaksim/internal/stats"
)

func TestQuickstartBell(t *testing.T) {
	c := weaksim.NewCircuit(2, "bell")
	c.H(0).CX(0, 1)
	counts, err := weaksim.Run(c, 4000, weaksim.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if counts["01"]+counts["10"] != 0 {
		t.Errorf("bell state produced odd-parity outcomes: %v", counts)
	}
	if counts["00"] == 0 || counts["11"] == 0 {
		t.Errorf("bell state missing an outcome: %v", counts)
	}
	total := counts["00"] + counts["11"]
	if total != 4000 {
		t.Errorf("total shots %d, want 4000", total)
	}
	if frac := float64(counts["00"]) / 4000; math.Abs(frac-0.5) > 0.05 {
		t.Errorf("outcome 00 fraction %v, want ≈0.5", frac)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	c := weaksim.NewCircuit(3, "ghz")
	c.H(0).CX(0, 1).CX(1, 2)
	a, err := weaksim.Run(c, 100, weaksim.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := weaksim.Run(c, 100, weaksim.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("different outcome sets: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("seeded runs differ at %q: %d vs %d", k, v, b[k])
		}
	}
}

func TestRunValidation(t *testing.T) {
	c := weaksim.NewCircuit(2, "bad")
	if _, err := weaksim.Run(c, 0); err == nil {
		t.Error("expected error for zero shots")
	}
	c.H(5) // out of range
	if _, err := weaksim.Run(c, 10); err == nil {
		t.Error("expected validation error for out-of-range target")
	}
}

// TestFigure2Pipeline reproduces the paper's Fig. 2 end to end: circuit →
// strong simulation → probabilities → samples.
func TestFigure2Pipeline(t *testing.T) {
	c, err := weaksim.GenerateBenchmark("running_example")
	if err != nil {
		t.Fatal(err)
	}
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	// Middle of Fig. 2: the amplitudes.
	wantAmps := map[string]complex128{
		"000": 0,
		"001": complex(0, -math.Sqrt(3.0/8.0)),
		"010": 0,
		"011": complex(0, -math.Sqrt(3.0/8.0)),
		"100": complex(math.Sqrt(1.0/8.0), 0),
		"101": 0,
		"110": 0,
		"111": complex(math.Sqrt(1.0/8.0), 0),
	}
	for bits, want := range wantAmps {
		got, err := state.Amplitude(bits)
		if err != nil {
			t.Fatal(err)
		}
		if d := got - want; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Errorf("amplitude %s = %v, want %v", bits, got, want)
		}
	}
	// Right of Fig. 2: the probabilities.
	probs, err := state.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	wantProbs := []float64{0, 3.0 / 8, 0, 3.0 / 8, 1.0 / 8, 0, 0, 1.0 / 8}
	for i := range wantProbs {
		if math.Abs(probs[i]-wantProbs[i]) > 1e-9 {
			t.Errorf("p[%d] = %v, want %v", i, probs[i], wantProbs[i])
		}
	}
	// Measurement: every sampling method yields statistically
	// indistinguishable outputs.
	for _, method := range []weaksim.Method{
		weaksim.MethodDD, weaksim.MethodPrefix, weaksim.MethodLinear, weaksim.MethodAlias,
	} {
		sampler, err := state.Sampler(weaksim.WithMethod(method), weaksim.WithSeed(3))
		if err != nil {
			t.Fatalf("%v sampler: %v", method, err)
		}
		shots := 30000
		counts := sampler.CountsByIndex(shots)
		res, err := stats.ChiSquareGOF(counts, wantProbs, shots)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 1e-6 {
			t.Errorf("method %v distinguishable from exact distribution: p=%v", method, res.PValue)
		}
	}
}

func TestStateIntrospection(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("qft_8")
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if state.Qubits() != 8 {
		t.Errorf("Qubits = %d", state.Qubits())
	}
	// QFT|0⟩ is a product state: exactly n nodes (Table I's qft sizes).
	if got := state.NodeCount(); got != 8 {
		t.Errorf("NodeCount = %d, want 8", got)
	}
	if n2 := state.Norm2(); math.Abs(n2-1) > 1e-9 {
		t.Errorf("Norm2 = %v", n2)
	}
	if _, err := state.Amplitude("bad"); err == nil {
		t.Error("expected error for invalid bitstring")
	}
	if _, err := state.AmplitudeAt(1 << 20); err == nil {
		t.Error("expected error for out-of-range index")
	}
	if p, err := state.Probability("00000000"); err != nil || math.Abs(p-1.0/256) > 1e-9 {
		t.Errorf("Probability(0...0) = %v, %v; want 1/256", p, err)
	}
}

func TestMemoryOutSurfaced(t *testing.T) {
	// A 30-qubit state with a 10-qubit vector budget: MethodPrefix must
	// report MO while MethodDD still works.
	c, _ := weaksim.GenerateBenchmark("qft_30")
	state, err := weaksim.Simulate(c, weaksim.WithVectorBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := state.Sampler(weaksim.WithMethod(weaksim.MethodPrefix)); !errors.Is(err, weaksim.ErrMemoryOut) {
		t.Errorf("expected ErrMemoryOut from prefix sampler, got %v", err)
	}
	sampler, err := state.Sampler(weaksim.WithMethod(weaksim.MethodDD))
	if err != nil {
		t.Fatalf("DD sampler should not need dense memory: %v", err)
	}
	if shot := sampler.Shot(); len(shot) != 30 {
		t.Errorf("shot width %d, want 30", len(shot))
	}
}

func TestParseMethod(t *testing.T) {
	for _, m := range []weaksim.Method{weaksim.MethodDD, weaksim.MethodPrefix, weaksim.MethodLinear, weaksim.MethodAlias} {
		got, err := weaksim.ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := weaksim.ParseMethod("bogus"); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestNormalizationOptionsAllSampleCorrectly(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("running_example")
	want := []float64{0, 3.0 / 8, 0, 3.0 / 8, 1.0 / 8, 0, 0, 1.0 / 8}
	for _, norm := range []weaksim.Norm{weaksim.NormLeft, weaksim.NormL2, weaksim.NormL2Phase} {
		state, err := weaksim.Simulate(c, weaksim.WithNormalization(norm))
		if err != nil {
			t.Fatal(err)
		}
		sampler, err := state.Sampler(weaksim.WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		shots := 20000
		counts := sampler.CountsByIndex(shots)
		res, err := stats.ChiSquareGOF(counts, want, shots)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 1e-6 {
			t.Errorf("norm %v: p=%v", norm, res.PValue)
		}
	}
}

func TestGenericTraversalOption(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("running_example")
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := state.Sampler(weaksim.WithGenericTraversal(), weaksim.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if shot := sampler.Shot(); len(shot) != 3 {
		t.Errorf("shot = %q", shot)
	}
}
