package weaksim_test

import (
	"fmt"
	"sort"

	"weaksim"
)

// The quickstart: build a Bell pair, draw shots, count outcomes.
func ExampleRun() {
	c := weaksim.NewCircuit(2, "bell")
	c.H(0).CX(0, 1)
	counts, err := weaksim.Run(c, 10000, weaksim.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(counts["01"], counts["10"]) // odd parity never occurs
	fmt.Println(counts["00"]+counts["11"] == 10000)
	// Output:
	// 0 0
	// true
}

// Inspect a simulated state: the 32-qubit QFT state has 2^32 amplitudes
// but only 32 decision-diagram nodes.
func ExampleSimulate() {
	c, err := weaksim.GenerateBenchmark("qft_32")
	if err != nil {
		panic(err)
	}
	state, err := weaksim.Simulate(c)
	if err != nil {
		panic(err)
	}
	fmt.Println(state.Qubits(), state.NodeCount())
	// Output:
	// 32 32
}

// Draw individual measurement shots, exactly like quantum hardware output.
func ExampleState_Sampler() {
	c, err := weaksim.GenerateBenchmark("running_example")
	if err != nil {
		panic(err)
	}
	state, err := weaksim.Simulate(c)
	if err != nil {
		panic(err)
	}
	sampler, err := state.Sampler(weaksim.WithSeed(3))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		fmt.Println(sampler.Shot())
	}
	// Output:
	// 011
	// 001
	// 100
}

// Probabilities of the paper's running example (Fig. 2).
func ExampleState_Probability() {
	c, _ := weaksim.GenerateBenchmark("running_example")
	state, _ := weaksim.Simulate(c)
	for _, bits := range []string{"001", "011", "100", "111"} {
		p, _ := state.Probability(bits)
		fmt.Printf("%s %.4f\n", bits, p)
	}
	// Output:
	// 001 0.3750
	// 011 0.3750
	// 100 0.1250
	// 111 0.1250
}

// Circuit optimization: redundant gates disappear without changing the
// state.
func ExampleOptimize() {
	c := weaksim.NewCircuit(2, "redundant")
	c.H(0).H(0).X(1).X(1).T(0)
	removed := weaksim.Optimize(c)
	fmt.Println(removed, c.NumOps())
	// Output:
	// 4 1
}

// Sort and print a histogram of GHZ outcomes.
func ExampleSampler_Counts() {
	c := weaksim.NewCircuit(3, "ghz")
	c.H(0).CX(0, 1).CX(1, 2)
	state, _ := weaksim.Simulate(c)
	sampler, _ := state.Sampler(weaksim.WithSeed(9))
	counts := sampler.Counts(1000)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(keys)
	// Output:
	// [000 111]
}
