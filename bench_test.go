package weaksim_test

// Benchmarks reproducing the paper's evaluation (Section V, Table I) and
// its worked figures, plus ablations of the design choices called out in
// DESIGN.md.
//
// Table I reports wall-clock for one million samples; testing.B instead
// reports per-sample cost (ns/op), which is the same quantity divided by
// 10^6. The cmd/benchtable tool prints the table in the paper's own format.
//
// Heavyweight rows (strong simulation taking minutes on one core) are
// skipped under -short and sized to this machine otherwise; see
// EXPERIMENTS.md for full-table runs.

import (
	"bytes"
	"sync"
	"testing"

	"weaksim"
	"weaksim/internal/algo"
	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
	"weaksim/internal/sim"
)

// stateCache shares strongly-simulated states across benchmark runs so the
// sampling benchmarks do not redo the (unmeasured) strong simulation.
var stateCache sync.Map // key string -> *weaksim.State

func benchState(b *testing.B, name string, opts ...weaksim.Option) *weaksim.State {
	b.Helper()
	key := name
	for range opts {
		key += "+opt"
	}
	if s, ok := stateCache.Load(key); ok {
		return s.(*weaksim.State)
	}
	c, err := weaksim.GenerateBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	s, err := weaksim.Simulate(c, opts...)
	if err != nil {
		b.Fatal(err)
	}
	stateCache.Store(key, s)
	return s
}

// benchSampling measures per-sample cost for one Table I cell.
func benchSampling(b *testing.B, name string, method weaksim.Method) {
	state := benchState(b, name)
	sampler, err := state.Sampler(weaksim.WithMethod(method), weaksim.WithSeed(1))
	if err != nil {
		b.Skipf("%s/%s: %v", name, method, err)
	}
	b.ReportMetric(float64(state.NodeCount()), "ddnodes")
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= sampler.ShotIndex()
	}
	_ = sink
}

// tableIRows lists the Table I rows exercised as testing.B benchmarks,
// with the heavyweight ones marked for -short skipping. The largest rows
// (grover_25+, supremacy_5x4_10, supremacy_5x5_10, shor_221_4, shor_247_4)
// are covered by cmd/benchtable, whose recorded runs EXPERIMENTS.md cites.
var tableIRows = []struct {
	name  string
	heavy bool // skipped under -short
}{
	{"qft_16", false},
	{"qft_32", false},
	{"qft_48", false},
	{"grover_20", true},
	{"shor_33_2", false},
	{"shor_55_2", false},
	{"shor_69_4", true},
	{"jellium_2x2", false},
	{"jellium_3x3", true},
	{"supremacy_4x4_10", true},
}

// BenchmarkTableIVector reproduces the vector-based columns of Table I:
// prefix-sum precomputation is part of sampler construction (measured once
// via benchtable); the per-op number here is the binary-search sampling
// cost. Rows whose vector exceeds the budget report their MO via skip,
// matching the paper's MO entries.
func BenchmarkTableIVector(b *testing.B) {
	for _, row := range tableIRows {
		row := row
		b.Run(row.name, func(b *testing.B) {
			if row.heavy && testing.Short() {
				b.Skip("heavy row skipped under -short")
			}
			benchSampling(b, row.name, weaksim.MethodPrefix)
		})
	}
}

// BenchmarkTableIDD reproduces the DD-based columns of Table I.
func BenchmarkTableIDD(b *testing.B) {
	for _, row := range tableIRows {
		row := row
		b.Run(row.name, func(b *testing.B) {
			if row.heavy && testing.Short() {
				b.Skip("heavy row skipped under -short")
			}
			benchSampling(b, row.name, weaksim.MethodDD)
		})
	}
}

// BenchmarkFig3VectorSampling reproduces Fig. 3: biased random selection on
// the running example's prefix array via binary search.
func BenchmarkFig3VectorSampling(b *testing.B) {
	probs := []float64{0, 3.0 / 8, 0, 3.0 / 8, 1.0 / 8, 0, 0, 1.0 / 8}
	s, err := core.NewPrefixSampler(probs)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Sample(r)
	}
	_ = sink
}

// BenchmarkFig2Pipeline measures the full weak-simulation flow of Fig. 2 on
// the running example: strong simulation plus a batch of samples.
func BenchmarkFig2Pipeline(b *testing.B) {
	c, err := weaksim.GenerateBenchmark("running_example")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weaksim.Run(c, 100, weaksim.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorSamplerVariants is the vector-family ablation: binary
// search (paper) vs linear traversal (paper's slow baseline) vs Walker's
// alias method, on a qft_16-sized distribution.
func BenchmarkVectorSamplerVariants(b *testing.B) {
	state := benchState(b, "qft_16")
	probs, err := state.Probabilities()
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		mk   func() (core.Sampler, error)
	}{
		{"prefix_binsearch", func() (core.Sampler, error) { return core.NewPrefixSampler(probs) }},
		{"linear_traversal", func() (core.Sampler, error) { return core.NewLinearSampler(probs) }},
		{"alias_method", func() (core.Sampler, error) { return core.NewAliasSampler(probs) }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			s, err := v.mk()
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= s.Sample(r)
			}
			_ = sink
		})
	}
}

// BenchmarkNormalizationSchemes is the Section IV-C ablation: DD sampling
// throughput under the conventional leftmost normalization (which forces
// the generic downstream-weighted traversal) vs the proposed L2 scheme
// (branch probabilities read directly from edge weights).
func BenchmarkNormalizationSchemes(b *testing.B) {
	c, err := weaksim.GenerateBenchmark("shor_33_2")
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range []weaksim.Norm{weaksim.NormLeft, weaksim.NormL2, weaksim.NormL2Phase} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			state, err := weaksim.Simulate(c, weaksim.WithNormalization(scheme))
			if err != nil {
				b.Fatal(err)
			}
			sampler, err := state.Sampler(weaksim.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(state.NodeCount()), "ddnodes")
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= sampler.ShotIndex()
			}
			_ = sink
		})
	}
}

// BenchmarkDDSamplingFastPath isolates the L2 fast path: identical state
// and normalization, sampling with and without the downstream table.
func BenchmarkDDSamplingFastPath(b *testing.B) {
	state := benchState(b, "shor_55_2")
	for _, mode := range []struct {
		name string
		opts []weaksim.Option
	}{
		{"fast_l2_weights", nil},
		{"generic_downstream", []weaksim.Option{weaksim.WithGenericTraversal()}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			opts := append([]weaksim.Option{weaksim.WithSeed(1)}, mode.opts...)
			sampler, err := state.Sampler(opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= sampler.ShotIndex()
			}
			_ = sink
		})
	}
}

// frozenBenchCache shares strongly-simulated (Manager, root) pairs across
// the freeze-ablation benchmarks.
var frozenBenchCache sync.Map

type frozenBenchEntry struct {
	m    *dd.Manager
	edge dd.VEdge
}

func frozenBenchState(b *testing.B, name string) (*dd.Manager, dd.VEdge) {
	b.Helper()
	if v, ok := frozenBenchCache.Load(name); ok {
		e := v.(frozenBenchEntry)
		return e.m, e.edge
	}
	c, err := algo.Generate(name)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewDD(c)
	if err != nil {
		b.Fatal(err)
	}
	edge, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	frozenBenchCache.Store(name, frozenBenchEntry{s.Manager(), edge})
	return s.Manager(), edge
}

// frozenBenchRows are the Table I circuits the freeze ablation runs on:
// light enough to strong-simulate in the suite, spanning tiny (qft) to
// thousands of nodes (shor, jellium).
var frozenBenchRows = []string{"qft_16", "shor_33_2", "shor_55_2", "jellium_2x2"}

// BenchmarkSampleLive is the pre-freeze baseline: per-sample cost of the
// pointer walk over the live diagram, under the L2 fast rule and the
// generic downstream rule (which consults a hash map of downstream masses
// at every branch).
func BenchmarkSampleLive(b *testing.B) {
	for _, name := range frozenBenchRows {
		name := name
		for _, generic := range []bool{false, true} {
			generic := generic
			mode := "fast"
			if generic {
				mode = "generic"
			}
			b.Run(name+"/"+mode, func(b *testing.B) {
				m, edge := frozenBenchState(b, name)
				var opts []core.DDSamplerOption
				if generic {
					opts = append(opts, core.ForceGeneric())
				}
				sampler, err := core.NewDDSampler(m, edge, opts...)
				if err != nil {
					b.Fatal(err)
				}
				r := rng.New(1)
				b.ResetTimer()
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink ^= sampler.Sample(r)
				}
				_ = sink
			})
		}
	}
}

// BenchmarkSampleFrozen is the freeze-then-sample counterpart of
// BenchmarkSampleLive: identical states and random sequences, but the walk
// runs over the immutable flat-array snapshot — index chasing instead of
// pointer chasing, precomputed thresholds instead of map lookups. The
// per-shot delta against BenchmarkSampleLive is the refactor's payoff; the
// one-off freeze cost is measured by BenchmarkFreeze.
func BenchmarkSampleFrozen(b *testing.B) {
	for _, name := range frozenBenchRows {
		name := name
		for _, generic := range []bool{false, true} {
			generic := generic
			mode := "fast"
			if generic {
				mode = "generic"
			}
			b.Run(name+"/"+mode, func(b *testing.B) {
				m, edge := frozenBenchState(b, name)
				var opts []dd.FreezeOption
				if generic {
					opts = append(opts, dd.FreezeGeneric())
				}
				snap, err := m.Freeze(edge, opts...)
				if err != nil {
					b.Fatal(err)
				}
				sampler, err := core.NewFrozenSampler(snap)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(snap.Len()), "snapnodes")
				r := rng.New(1)
				b.ResetTimer()
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink ^= sampler.Sample(r)
				}
				_ = sink
			})
		}
	}
}

// BenchmarkFreeze measures the one-off freeze pass (live DD → immutable
// snapshot), amortized over however many samples follow.
func BenchmarkFreeze(b *testing.B) {
	for _, name := range frozenBenchRows {
		name := name
		b.Run(name, func(b *testing.B) {
			m, edge := frozenBenchState(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Freeze(edge); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDDSamplerPrecomputation measures the linear-time precomputation
// (paper Section IV-B) in isolation: building the sampler including the
// downstream pass.
func BenchmarkDDSamplerPrecomputation(b *testing.B) {
	state := benchState(b, "shor_33_2")
	b.Run("fast_l2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := state.Sampler(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := state.Sampler(weaksim.WithGenericTraversal()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrefixPrecomputation measures the vector-based precomputation:
// squaring amplitudes and building the prefix-sum array.
func BenchmarkPrefixPrecomputation(b *testing.B) {
	state := benchState(b, "qft_16")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := state.Sampler(weaksim.WithMethod(weaksim.MethodPrefix)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeCache ablates the DD compute-cache size during strong
// simulation of a supremacy circuit (where cache hits dominate runtime).
func BenchmarkComputeCache(b *testing.B) {
	c, err := algo.Generate("supremacy_3x3_10")
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1 << 8, 1 << 14, 1 << 20} {
		size := size
		b.Run(byteSize(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := sim.NewDD(c, sim.WithManagerOptions(dd.WithCacheSize(size)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteSize(entries int) string {
	switch {
	case entries >= 1<<20:
		return "cache_1M"
	case entries >= 1<<14:
		return "cache_16k"
	default:
		return "cache_256"
	}
}

// BenchmarkStrongSimulation measures the strong-simulation stage alone for
// representative light rows (the precomputation shared by both Table I
// columns).
func BenchmarkStrongSimulation(b *testing.B) {
	for _, name := range []string{"qft_16", "shor_33_2", "jellium_2x2", "supremacy_3x3_10"} {
		name := name
		b.Run(name, func(b *testing.B) {
			c, err := algo.Generate(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := sim.NewDD(c)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildFreeze measures the live pipeline end to end: translate and
// apply every gate of the circuit (unique-table lookups, compute-cache
// probes, node allocation — the storage layer's hot paths), then freeze the
// final state into an immutable snapshot. This is the number the arena /
// open-addressing storage refactor moves; the sampling benchmarks above only
// exercise the frozen arrays. Gated in CI by cmd/benchcheck next to the
// frozen-sampling rows.
func BenchmarkBuildFreeze(b *testing.B) {
	for _, name := range []string{"qft_16", "shor_33_2", "jellium_2x2", "supremacy_3x3_10"} {
		name := name
		b.Run(name, func(b *testing.B) {
			c, err := algo.Generate(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := sim.NewDD(c)
				if err != nil {
					b.Fatal(err)
				}
				edge, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Manager().Freeze(edge); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOperatorFusion ablates the matrix-matrix composition trade-off
// (paper reference [18]): strong simulation of a small Grover instance
// stepwise vs with barrier-delimited operator fusion. In this
// implementation fusion loses: the composed iteration operator is compact,
// but applying it touches every (operator node, state node) pair, and its
// noisier entries fragment the state's node sharing.
func BenchmarkOperatorFusion(b *testing.B) {
	c, err := algo.Generate("grover_10")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts []sim.DDOption
	}{
		{"stepwise", nil},
		{"fused_barriers", []sim.DDOption{sim.WithFusion(sim.FuseAtBarriers)}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := sim.NewDD(c, mode.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamSampling measures the out-of-core batch sampler against
// in-memory prefix sampling on a qft_16-sized distribution.
func BenchmarkStreamSampling(b *testing.B) {
	state := benchState(b, "qft_16")
	probs, err := state.Probabilities()
	if err != nil {
		b.Fatal(err)
	}
	var blob bytes.Buffer
	if err := core.WriteProbabilityStream(&blob, probs); err != nil {
		b.Fatal(err)
	}
	data := blob.Bytes()
	const batch = 4096
	b.Run("stream_batch4096", func(b *testing.B) {
		r := rng.New(1)
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := core.StreamCounts(bytes.NewReader(data), batch, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prefix_batch4096", func(b *testing.B) {
		s, err := core.NewPrefixSampler(probs)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			var sink uint64
			for j := 0; j < batch; j++ {
				sink ^= s.Sample(r)
			}
			_ = sink
		}
	})
}
