package weaksim_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"weaksim"
)

// runningExample rebuilds the paper's 3-qubit running example through the
// public facade.
func runningExample() *weaksim.Circuit {
	c := weaksim.NewCircuit(3, "running-example")
	c.H(0).H(1).H(2)
	c.Apply(weaksim.HGate, 2, weaksim.Pos(0), weaksim.Pos(1))
	return c
}

// TestTelemetryEndToEnd simulates the running example with metrics and a
// JSONL tracer attached and checks the full surface: phase accumulators,
// node counts, hit rates, the JSON round-trip of the Telemetry digest, and
// the JSONL validity of every trace line.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := weaksim.NewMetrics()
	var buf bytes.Buffer
	tr := weaksim.NewJSONLTracer(&buf, 1)

	st, err := weaksim.Simulate(runningExample(), weaksim.WithMetrics(reg), weaksim.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := st.Sampler(weaksim.WithMetrics(reg), weaksim.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	counts := sampler.Counts(1000)
	var total int
	for _, n := range counts {
		total += n
	}
	if total != 1000 {
		t.Fatalf("counts sum to %d, want 1000", total)
	}

	tel := st.Telemetry()
	if tel.Backend != "dd" {
		t.Errorf("backend = %q, want dd", tel.Backend)
	}
	if tel.PeakNodes <= 0 || tel.FinalStateNodes <= 0 {
		t.Errorf("node counts not populated: peak=%d final=%d", tel.PeakNodes, tel.FinalStateNodes)
	}
	for _, phase := range []string{"build", "apply", "sample"} {
		if tel.PhaseNS[phase] <= 0 {
			t.Errorf("phase %q has no accumulated time: %v", phase, tel.PhaseNS)
		}
	}
	if _, ok := tel.HitRates["cnum_intern"]; !ok {
		t.Errorf("cnum_intern hit rate missing: %v", tel.HitRates)
	}
	if tel.Counters["sim_ops_applied_total"] != 4 {
		t.Errorf("sim_ops_applied_total = %d, want 4", tel.Counters["sim_ops_applied_total"])
	}
	if tel.Counters["sample_shots_total"] != 1000 {
		t.Errorf("sample_shots_total = %d, want 1000", tel.Counters["sample_shots_total"])
	}

	// Telemetry must round-trip through encoding/json.
	b, err := json.Marshal(tel)
	if err != nil {
		t.Fatal(err)
	}
	var back weaksim.Telemetry
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Backend != tel.Backend || back.PeakNodes != tel.PeakNodes {
		t.Errorf("telemetry JSON round-trip mismatch: %+v vs %+v", back, tel)
	}

	// Every trace line must be valid JSON with the expected shape.
	sc := bufio.NewScanner(&buf)
	var lines, spans int
	for sc.Scan() {
		var ev weaksim.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if ev.Kind != "span" && ev.Kind != "event" {
			t.Fatalf("trace kind %q", ev.Kind)
		}
		if ev.Kind == "span" {
			spans++
		}
		lines++
	}
	if lines == 0 || spans == 0 {
		t.Fatalf("trace empty: %d lines, %d spans", lines, spans)
	}
}

// TestVectorBackendTelemetry: a dense-backed state reports backend "vector"
// with phase accumulators but no DD node counts.
func TestVectorBackendTelemetry(t *testing.T) {
	reg := weaksim.NewMetrics()
	c := weaksim.NewCircuit(2, "bell")
	c.H(0).CX(0, 1)
	st, report, err := weaksim.SimulateAuto(context.Background(), c, weaksim.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if report.Telemetry == nil {
		t.Fatal("report.Telemetry nil on the vector tier")
	}
	tel := st.Telemetry()
	if tel.Backend != "vector" {
		t.Fatalf("backend = %q, want vector", tel.Backend)
	}
	if tel.PeakNodes != 0 {
		t.Errorf("vector backend reports %d peak DD nodes", tel.PeakNodes)
	}
	if tel.PhaseNS["apply"] <= 0 {
		t.Errorf("no apply phase time recorded: %v", tel.PhaseNS)
	}
}

// TestSimulateAutoFailureTelemetry: an MO run still produces a usable
// telemetry digest (attached to the report and recoverable from the
// registry), plus govern-phase trace events describing the ladder.
func TestSimulateAutoFailureTelemetry(t *testing.T) {
	c, err := weaksim.GenerateBenchmark("qft_16")
	if err != nil {
		t.Fatal(err)
	}
	reg := weaksim.NewMetrics()
	var buf bytes.Buffer
	tr := weaksim.NewJSONLTracer(&buf, 1)
	_, report, err := weaksim.SimulateAuto(context.Background(), c,
		weaksim.WithVectorBudget(4),
		weaksim.WithNodeBudget(40),
		weaksim.WithMetrics(reg),
		weaksim.WithTracer(tr),
	)
	if !errors.Is(err, weaksim.ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if report == nil || report.Telemetry == nil {
		t.Fatal("failed run lost its telemetry")
	}
	if report.Telemetry.BudgetPressure == 0 {
		t.Error("budget pressure not recorded in telemetry")
	}

	// The registry-only fallback digest must agree on the headline numbers.
	sum := weaksim.SummarizeMetrics(reg)
	if sum.GCRuns != report.Telemetry.GCRuns {
		t.Errorf("SummarizeMetrics GC runs %d != report %d", sum.GCRuns, report.Telemetry.GCRuns)
	}
	if sum.PeakNodes <= 0 {
		t.Errorf("SummarizeMetrics peak nodes = %d, want > 0", sum.PeakNodes)
	}

	// Governance trace events must narrate the ladder.
	var governEvents int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev weaksim.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line: %v", err)
		}
		if ev.Phase == "govern" {
			governEvents++
		}
	}
	if governEvents == 0 {
		t.Error("no govern-phase trace events on a degrading run")
	}
}

// TestTelemetryDisabledIsFree pins the facade-level zero-cost contract: a
// State built without WithMetrics must still answer Telemetry() (from the
// manager's own stats), and sampling without a registry must not allocate
// on the per-shot path beyond the walk itself.
func TestTelemetryDisabledIsFree(t *testing.T) {
	st, err := weaksim.Simulate(runningExample())
	if err != nil {
		t.Fatal(err)
	}
	tel := st.Telemetry()
	if tel.Backend != "dd" || tel.PeakNodes <= 0 {
		t.Fatalf("registry-less telemetry incomplete: %+v", tel)
	}
	if tel.PhaseNS != nil {
		t.Errorf("phase timings present without a registry: %v", tel.PhaseNS)
	}
	sampler, err := st.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { _ = sampler.ShotIndex() }); allocs != 0 {
		t.Errorf("ShotIndex allocates %v/op without telemetry, want 0", allocs)
	}
}
