// Package weaksim is a fast weak simulator of quantum computation: it mimics
// the output of an error-free quantum computer by drawing measurement
// samples whose distribution is statistically indistinguishable from the
// machine's Born distribution.
//
// It is a from-scratch Go reproduction of Hillmich, Markov, and Wille,
// "Just Like the Real Thing: Fast Weak Simulation of Quantum Computation"
// (DAC 2020, arXiv:2007.15285). The pipeline follows the paper's Fig. 2:
//
//	circuit ──strong simulation──▶ final state ──sampling──▶ bitstrings
//
// Strong simulation runs on one of two backends: a dense state-vector
// engine (exponential memory, the baseline) or an edge-weighted
// decision-diagram engine that exploits redundancy in the state and is the
// key to sampling states far beyond dense-vector reach. Sampling likewise
// comes in two families: prefix sums with binary search over an explicit
// probability array, and randomized root-to-terminal walks over the
// decision diagram (the paper's contribution), accelerated by an L2
// edge-weight normalization scheme under which branch probabilities are
// directly the squared magnitudes of edge weights.
//
// # Quickstart
//
//	c := weaksim.NewCircuit(2, "bell")
//	c.H(0).CX(0, 1)
//	counts, err := weaksim.Run(c, 1000, weaksim.WithSeed(1))
//	// counts ≈ map["00":500 "11":500]
//
// Benchmark circuits from the paper's Table I are available by name:
//
//	c, err := weaksim.GenerateBenchmark("shor_33_2")
//	state, err := weaksim.Simulate(c)
//	sampler, err := state.Sampler(weaksim.WithSeed(7))
//	fmt.Println(sampler.Shot()) // e.g. "011010110100101011"
//
// The subpackages under internal/ contain the full machinery: cnum (complex
// arithmetic and value interning), dd (decision diagrams), gate and circuit
// (the IR), statevec (the dense engine), sim (strong simulation), algo
// (benchmark generators), core (the sampling algorithms), stats
// (indistinguishability testing), and rng (deterministic randomness).
package weaksim
