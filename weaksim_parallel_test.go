package weaksim_test

import (
	"context"
	"errors"
	"testing"

	"weaksim"
	"weaksim/internal/stats"
)

// parallelTestState simulates a benchmark circuit with a non-trivial
// distribution for the worker-pool tests.
func parallelTestState(t *testing.T) (*weaksim.State, []float64) {
	t.Helper()
	c, err := weaksim.GenerateBenchmark("qft_8")
	if err != nil {
		t.Fatal(err)
	}
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := state.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	return state, probs
}

// TestWithWorkersMatchesDistribution: chi-square goodness of fit of the
// merged parallel tallies against the exact Born distribution at several
// worker counts — the sampled distribution must be statistically
// indistinguishable from the exact one at any level of parallelism.
func TestWithWorkersMatchesDistribution(t *testing.T) {
	state, probs := parallelTestState(t)
	const shots = 60000
	for _, workers := range []int{1, 4, 8} {
		sampler, err := state.Sampler(weaksim.WithWorkers(workers), weaksim.WithSeed(11+uint64(workers)))
		if err != nil {
			t.Fatal(err)
		}
		if sampler.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", sampler.Workers(), workers)
		}
		counts := sampler.CountsByIndex(shots)
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != shots {
			t.Fatalf("workers=%d: tallied %d shots, want %d", workers, total, shots)
		}
		res, err := stats.ChiSquareGOF(counts, probs, shots)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.PValue < 1e-6 {
			t.Errorf("workers=%d: chi-square rejects: stat=%v dof=%d p=%v",
				workers, res.Statistic, res.DoF, res.PValue)
		}
	}
}

// TestWithWorkersOneIsDefault pins the compatibility guarantee: an explicit
// WithWorkers(1) sampler produces bit-for-bit the counts of a default
// sampler with the same seed.
func TestWithWorkersOneIsDefault(t *testing.T) {
	state, _ := parallelTestState(t)
	def, err := state.Sampler(weaksim.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	one, err := state.Sampler(weaksim.WithSeed(5), weaksim.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	a := def.Counts(4000)
	b := one.Counts(4000)
	if len(a) != len(b) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a), len(b))
	}
	for bits, n := range a {
		if b[bits] != n {
			t.Errorf("outcome %s: default %d, workers(1) %d", bits, n, b[bits])
		}
	}
}

// TestWithWorkersDeterministic: equal seeds and worker counts reproduce the
// counts exactly, across repeated batches of the same sampler lifetime.
func TestWithWorkersDeterministic(t *testing.T) {
	state, _ := parallelTestState(t)
	mk := func() *weaksim.Sampler {
		s, err := state.Sampler(weaksim.WithSeed(21), weaksim.WithWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mk(), mk()
	for batch := 0; batch < 3; batch++ {
		a, b := s1.Counts(3000), s2.Counts(3000)
		if len(a) != len(b) {
			t.Fatalf("batch %d: outcome counts differ", batch)
		}
		for bits, n := range a {
			if b[bits] != n {
				t.Errorf("batch %d outcome %s: %d vs %d across identical runs", batch, bits, n, b[bits])
			}
		}
	}
}

// TestWithWorkersCancellation: a cancelled parallel batch surfaces the typed
// context error with whatever partial tallies the workers drew.
func TestWithWorkersCancellation(t *testing.T) {
	state, _ := parallelTestState(t)
	sampler, err := state.Sampler(weaksim.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counts, err := sampler.CountsContext(ctx, 1<<20)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total >= 1<<20 {
		t.Errorf("cancelled batch completed all %d shots", total)
	}
}

// TestSamplerSnapshotNodes: a MethodDD sampler reports the frozen node
// count; a dense-method sampler has no snapshot.
func TestSamplerSnapshotNodes(t *testing.T) {
	state, _ := parallelTestState(t)
	ddS, err := state.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if ddS.SnapshotNodes() <= 0 {
		t.Errorf("DD sampler SnapshotNodes = %d, want > 0", ddS.SnapshotNodes())
	}
	pfx, err := state.Sampler(weaksim.WithMethod(weaksim.MethodPrefix))
	if err != nil {
		t.Fatal(err)
	}
	if pfx.SnapshotNodes() != 0 {
		t.Errorf("prefix sampler SnapshotNodes = %d, want 0", pfx.SnapshotNodes())
	}
}

// TestRunAutoReportsSnapshot: a DD-tier RunAuto records the frozen snapshot
// size the sampling stage walked — evidence that sampling ran after the
// freeze, beyond the reach of the node budget.
func TestRunAutoReportsSnapshot(t *testing.T) {
	c := weaksim.NewCircuit(3, "ghz3")
	c.H(0).CX(0, 1).CX(1, 2)
	_, report, err := weaksim.RunAuto(context.Background(), c, 500,
		weaksim.WithVectorBudget(2), // force the DD tier
		weaksim.WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if report.Backend != "dd" {
		t.Fatalf("backend = %q, want dd", report.Backend)
	}
	if report.SnapshotNodes <= 0 {
		t.Errorf("SnapshotNodes = %d, want > 0 on a DD-tier run", report.SnapshotNodes)
	}
}

// TestWithWorkersParallelStressFacade hammers one state's snapshot through
// many concurrent samplers; run under -race in CI's stress step.
func TestWithWorkersParallelStressFacade(t *testing.T) {
	state, probs := parallelTestState(t)
	sampler, err := state.Sampler(weaksim.WithWorkers(16), weaksim.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	shots := 40000
	if testing.Short() {
		shots = 8000
	}
	counts := sampler.CountsByIndex(shots)
	total := 0
	for idx, n := range counts {
		if probs[idx] == 0 {
			t.Errorf("impossible outcome %d sampled", idx)
		}
		total += n
	}
	if total != shots {
		t.Errorf("tallied %d shots, want %d", total, shots)
	}
}
