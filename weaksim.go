package weaksim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/cluster"
	"weaksim/internal/cnum"
	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/gate"
	"weaksim/internal/obs"
	"weaksim/internal/rng"
	"weaksim/internal/serve"
	"weaksim/internal/statevec"
)

// Circuit is the quantum-circuit intermediate representation. Construct one
// with NewCircuit and the chainable gate methods (H, X, CX, CCX, ...), or
// obtain a paper benchmark via GenerateBenchmark.
type Circuit = circuit.Circuit

// Gate is a single-qubit gate instance; see the gate constructors
// re-exported below.
type Gate = gate.Gate

// Control designates a control qubit of a gate.
type Control = gate.Control

// Norm selects the decision-diagram edge-weight normalization scheme.
type Norm = dd.Norm

// Normalization schemes: NormLeft divides by the leftmost non-zero edge
// weight (the conventional scheme); NormL2 divides by the Euclidean norm of
// the weight pair (the paper's proposal, Section IV-C); NormL2Phase
// additionally extracts the leading phase for full canonicity. The default
// is NormL2Phase.
const (
	NormLeft    = dd.NormLeft
	NormL2      = dd.NormL2
	NormL2Phase = dd.NormL2Phase
)

// NewCircuit returns an empty circuit on n qubits. Qubit 0 is the least
// significant (rightmost) bit of a measured bitstring.
func NewCircuit(n int, name string) *Circuit { return circuit.New(n, name) }

// GenerateBenchmark builds one of the paper's Table I benchmark circuits by
// name: qft_A, grover_A, shor_N_a, jellium_AxA, supremacy_AxB_D, as well as
// running_example and figure1.
func GenerateBenchmark(name string) (*Circuit, error) { return algo.Generate(name) }

// TableIBenchmarks lists the names of the paper's Table I rows in order.
func TableIBenchmarks() []string { return algo.TableIBenchmarks() }

// ErrMemoryOut reports that a dense state vector would exceed the memory
// budget — the "MO" entries of the paper's Table I.
var ErrMemoryOut = statevec.ErrMemoryOut

// Method selects a sampling algorithm.
type Method int

const (
	// MethodDD samples by randomized decision-diagram traversal (paper
	// Section IV). The default.
	MethodDD Method = iota
	// MethodPrefix samples by binary search on a prefix-sum array (paper
	// Section III). Requires expanding the state to a dense vector.
	MethodPrefix
	// MethodLinear samples by linear traversal of the probability array.
	MethodLinear
	// MethodAlias samples by Walker's alias method (ablation).
	MethodAlias
)

// String returns the method name used in CLI flags and benchmarks.
func (m Method) String() string {
	switch m {
	case MethodDD:
		return "dd"
	case MethodPrefix:
		return "prefix"
	case MethodLinear:
		return "linear"
	case MethodAlias:
		return "alias"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a CLI flag value into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "dd":
		return MethodDD, nil
	case "prefix":
		return MethodPrefix, nil
	case "linear":
		return MethodLinear, nil
	case "alias":
		return MethodAlias, nil
	}
	return 0, fmt.Errorf("weaksim: unknown sampling method %q (want dd, prefix, linear, or alias)", s)
}

type config struct {
	norm         Norm
	seed         uint64
	method       Method
	vectorQubits int
	forceGeneric bool
	nodeBudget   int
	minFidelity  float64
	workers      int
	reg          *obs.Registry // nil = metrics disabled (see WithMetrics)
	tracer       *obs.Tracer   // nil = tracing disabled (see WithTracer)
}

func newConfig(opts []Option) config {
	c := config{norm: NormL2Phase, seed: 1, method: MethodDD, workers: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Option configures simulation and sampling.
type Option func(*config)

// WithNormalization selects the DD normalization scheme (default
// NormL2Phase).
func WithNormalization(n Norm) Option { return func(c *config) { c.norm = n } }

// WithSeed seeds all randomness (default 1). Equal seeds give identical
// samples.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithMethod selects the sampling algorithm (default MethodDD).
func WithMethod(m Method) Option { return func(c *config) { c.method = m } }

// WithVectorBudget bounds dense state vectors to 2^qubits amplitudes
// (default statevec.DefaultMaxQubits = 26). Larger circuits yield
// ErrMemoryOut from the dense paths, mirroring the paper's MO entries.
func WithVectorBudget(qubits int) Option { return func(c *config) { c.vectorQubits = qubits } }

// WithGenericTraversal forces the downstream-probability precomputation in
// the DD sampler even under L2 normalization (ablation).
func WithGenericTraversal() Option { return func(c *config) { c.forceGeneric = true } }

// WithWorkers shards batch sampling (Counts, CountsByIndex, and their
// context-aware variants) across n goroutines walking the same immutable
// state snapshot concurrently. Worker k draws from the independent stream
// rng.Stream(seed', k) split off the sampler's seed, so the batch remains a
// pure function of the seed: equal seeds and worker counts reproduce equal
// counts, at any level of parallelism. n ≤ 0 selects runtime.GOMAXPROCS(0).
//
// The default 1 keeps the historical fully sequential path: every shot is
// drawn from the sampler's own stream, bit-for-bit identical to releases
// without worker support. Single-shot draws (Shot, ShotIndex) are always
// sequential regardless of this setting.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithNodeBudget bounds the decision-diagram engine to n live nodes — the
// DD-side analogue of WithVectorBudget. Simulations whose diagrams outgrow
// the budget (supremacy- and Shor-class states) fail with ErrNodeBudget
// instead of exhausting memory; SimulateAuto can additionally degrade to a
// fidelity-bounded approximation under WithMinFidelity. 0 (the default)
// means unlimited.
func WithNodeBudget(nodes int) Option { return func(c *config) { c.nodeBudget = nodes } }

// WithMinFidelity enables graceful degradation in SimulateAuto: when the DD
// backend hits its node budget, the in-flight state is pruned
// (core.Approximate) as long as the cumulative fidelity |⟨approx|exact⟩|²
// stays at or above floor. The default 0 disables approximation — budget
// overruns then surface as ErrNodeBudget.
func WithMinFidelity(floor float64) Option { return func(c *config) { c.minFidelity = floor } }

// State is a strongly-simulated final quantum state, ready for repeated
// weak simulation. Simulate and SimulateContext always produce
// decision-diagram-backed states; SimulateAuto may instead produce a
// dense-vector-backed state when the vector backend wins its tier of the
// degradation policy. DD-only operations (Approximate, MeasureQubit,
// TopOutcomes, WriteDOT) return an error on vector-backed states.
type State struct {
	mgr   *dd.Manager
	edge  dd.VEdge
	dense *statevec.State // non-nil iff the vector backend produced the state
	cfg   config
}

// Simulate strongly simulates the circuit on the decision-diagram backend
// and returns the final state. With WithNodeBudget set, simulations whose
// diagrams outgrow the budget fail with ErrNodeBudget.
func Simulate(c *Circuit, opts ...Option) (*State, error) {
	return SimulateContext(context.Background(), c, opts...)
}

// errVectorBacked reports a DD-only operation on a vector-backed state.
var errVectorBacked = errors.New("weaksim: operation requires a decision-diagram state (this state was produced by SimulateAuto's vector backend; use Simulate to force the DD backend)")

// Qubits returns the number of qubits of the state.
func (s *State) Qubits() int {
	if s.dense != nil {
		return s.dense.Qubits()
	}
	return s.mgr.Qubits()
}

// NodeCount returns the number of decision-diagram nodes representing the
// state — the "size" column of the paper's Table I. Vector-backed states
// have no diagram and report 0.
func (s *State) NodeCount() int {
	if s.dense != nil {
		return 0
	}
	return s.mgr.NodeCount(s.edge)
}

// Norm2 returns the squared norm of the state (1 for a valid state).
func (s *State) Norm2() float64 {
	if s.dense != nil {
		return s.dense.Norm2()
	}
	return s.mgr.Norm2(s.edge)
}

// Amplitude returns the amplitude of the basis state written as a bitstring
// (most significant qubit first, as printed by Sampler.Shot).
func (s *State) Amplitude(bits string) (complex128, error) {
	idx, err := core.ParseBits(bits)
	if err != nil {
		return 0, err
	}
	return s.AmplitudeAt(idx)
}

// AmplitudeAt returns the amplitude of basis-state index idx (bit k of idx
// is qubit k).
func (s *State) AmplitudeAt(idx uint64) (complex128, error) {
	if s.Qubits() < 64 && idx >= uint64(1)<<uint(s.Qubits()) {
		return 0, fmt.Errorf("weaksim: basis state %d out of range", idx)
	}
	if s.dense != nil {
		return s.dense.Amplitude(idx).ToComplex128(), nil
	}
	return s.mgr.Amplitude(s.edge, idx).ToComplex128(), nil
}

// Probability returns the Born probability of the basis state written as a
// bitstring.
func (s *State) Probability(bits string) (float64, error) {
	a, err := s.Amplitude(bits)
	if err != nil {
		return 0, err
	}
	return real(a)*real(a) + imag(a)*imag(a), nil
}

// Probabilities expands the full Born distribution. It fails with
// ErrMemoryOut when the state exceeds the vector budget; that is the point
// at which only MethodDD sampling remains available.
func (s *State) Probabilities() ([]float64, error) {
	amps, err := s.vector()
	if err != nil {
		return nil, err
	}
	probs := make([]float64, len(amps))
	for i, a := range amps {
		probs[i] = a.Abs2()
	}
	return probs, nil
}

func (s *State) vector() ([]cnum.Complex, error) {
	if s.dense != nil {
		// Vector-backed states already paid the dense cost; the budget was
		// enforced when the backend allocated.
		return s.dense.Amplitudes(), nil
	}
	budget := s.cfg.vectorQubits
	if budget <= 0 {
		budget = statevec.DefaultMaxQubits
	}
	if s.Qubits() > budget || s.Qubits() > dd.MaxDenseQubits {
		return nil, fmt.Errorf("%w: %d qubits exceed the dense budget %d",
			ErrMemoryOut, s.Qubits(), budget)
	}
	return s.mgr.ToVector(s.edge)
}

// Sampler prepares repeated weak simulation of the state with the
// configured method. The state's options (seed, method, budget) may be
// overridden per sampler.
func (s *State) Sampler(opts ...Option) (*Sampler, error) {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.method == MethodDD && s.dense != nil {
		// Vector-backed states have no diagram to traverse; the prefix
		// sampler is the natural equivalent (same O(n) per-sample cost).
		cfg.method = MethodPrefix
	}
	var inner core.Sampler
	var frozen *core.FrozenSampler
	switch cfg.method {
	case MethodDD:
		// Freeze-then-sample (paper Section IV over immutable arrays): the
		// final state DD is converted once into a flat, pointer-free snapshot
		// with branch probabilities precomputed inline — this pass subsumes
		// the historical downstream annotation — and every walk thereafter is
		// a lock-free traversal of the frozen arrays. After the freeze the
		// Manager is no longer needed for sampling: it may be reused for the
		// next circuit or garbage-collected while sampling proceeds, and the
		// walks can never hit the node budget.
		stop := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseFreeze)
		var frOpts []dd.FreezeOption
		if cfg.forceGeneric {
			frOpts = append(frOpts, dd.FreezeGeneric())
		}
		snap, err := s.mgr.Freeze(s.edge, frOpts...)
		stop()
		if err != nil {
			return nil, fmt.Errorf("weaksim: %w", err)
		}
		frozen, err = core.NewFrozenSampler(snap)
		if err != nil {
			return nil, err
		}
		if cfg.reg != nil {
			st := snap.Stats()
			cfg.reg.Gauge("snapshot_nodes").Set(int64(st.Nodes))
			cfg.reg.Gauge("snapshot_bytes").Set(int64(st.Bytes))
		}
		inner = frozen
	case MethodPrefix, MethodLinear, MethodAlias:
		// For the dense family the probability expansion and prefix-sum /
		// alias-table construction is the annotation analogue of the DD
		// sampler's downstream pass, so it lands in the same phase bucket.
		stop := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseAnnotateDown)
		amps, err := s.vector()
		if err != nil {
			stop()
			return nil, err
		}
		probs := core.ProbabilitiesFromAmplitudes(amps)
		switch cfg.method {
		case MethodPrefix:
			inner, err = core.NewPrefixSampler(probs)
		case MethodLinear:
			inner, err = core.NewLinearSampler(probs)
		default:
			inner, err = core.NewAliasSampler(probs)
		}
		stop()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("weaksim: unknown sampling method %v", cfg.method)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	smp := &Sampler{inner: inner, n: s.Qubits(), rand: rng.New(cfg.seed), frozen: frozen, workers: workers}
	if cfg.reg != nil || cfg.tracer != nil {
		smp.reg = cfg.reg
		smp.tr = cfg.tracer
		smp.walkHist = cfg.reg.Histogram("sample_walk_ns", obs.WalkLatencyBounds)
		smp.shotsCtr = cfg.reg.Counter("sample_shots_total")
		smp.renorms = cfg.reg.Counter("sample_renorm_total")
	}
	return smp, nil
}

// Sampler draws measurement outcomes from a simulated state. It is a
// read-only view: sampling may be repeated indefinitely. For MethodDD the
// sampler owns an immutable snapshot of the state (see Manager.Freeze), so
// it remains valid even if the originating simulation engine is reused or
// garbage-collected.
type Sampler struct {
	inner   core.Sampler
	n       int
	rand    *rng.RNG
	workers int

	// Telemetry (all nil when disabled — the hot ShotIndex path then costs
	// one nil-check over the raw walk).
	reg      *obs.Registry
	tr       *obs.Tracer
	walkHist *obs.Histogram
	shotsCtr *obs.Counter
	renorms  *obs.Counter
	frozen   *core.FrozenSampler // non-nil for MethodDD: renorm-event source
	nShots   uint64
}

// walkTimingEvery throttles per-shot walk timing: one in this many shots is
// wall-clocked into the sample_walk_ns histogram, so timing overhead stays
// a fraction of a percent of the sampling loop even when metrics are on.
const walkTimingEvery = 64

// Qubits returns the width of sampled bitstrings.
func (s *Sampler) Qubits() int { return s.n }

// ShotIndex draws one sample as a basis-state index.
func (s *Sampler) ShotIndex() uint64 {
	if s.walkHist == nil {
		return s.inner.Sample(s.rand)
	}
	return s.shotObserved()
}

// shotObserved is the metrics-enabled shot path, kept out of ShotIndex so
// the disabled path stays inlineable.
func (s *Sampler) shotObserved() uint64 {
	s.nShots++
	s.shotsCtr.Inc()
	if s.nShots%walkTimingEvery != 0 {
		return s.inner.Sample(s.rand)
	}
	start := time.Now()
	idx := s.inner.Sample(s.rand)
	s.walkHist.ObserveDuration(time.Since(start))
	s.syncWalkStats()
	return idx
}

// syncWalkStats mirrors the frozen sampler's renormalization-event count
// (zero-edge fallbacks caused by floating-point slack) into the registry.
func (s *Sampler) syncWalkStats() {
	if s.frozen != nil {
		s.renorms.Set(s.frozen.Renorms())
	}
}

// Workers returns the batch-sampling worker count configured with
// WithWorkers (after GOMAXPROCS resolution).
func (s *Sampler) Workers() int { return s.workers }

// SnapshotNodes returns the node count of the frozen state snapshot backing
// a MethodDD sampler — the paper's "size" column, as frozen. Vector-method
// samplers have no snapshot and report 0.
func (s *Sampler) SnapshotNodes() int {
	if s.frozen == nil {
		return 0
	}
	return s.frozen.Snapshot().Len()
}

// Shot draws one sample as a bitstring, most significant qubit first —
// exactly what a physical quantum computer would print.
func (s *Sampler) Shot() string { return core.FormatBits(s.ShotIndex(), s.n) }

// Counts draws shots samples and tallies them by bitstring. With
// WithWorkers(n > 1) the batch is sharded across n concurrent walkers over
// the immutable snapshot and merged deterministically.
func (s *Sampler) Counts(shots int) map[string]int {
	idx := s.CountsByIndex(shots)
	counts := make(map[string]int, len(idx))
	for i, n := range idx {
		counts[core.FormatBits(i, s.n)] = n
	}
	return counts
}

// CountsByIndex draws shots samples and tallies them by basis-state index.
// The result map is preallocated from the shot count and register width.
func (s *Sampler) CountsByIndex(shots int) map[uint64]int {
	counts, _ := s.CountsByIndexContext(context.Background(), shots)
	return counts
}

// CountsContext is Counts with cooperative cancellation, checked every
// core.CtxCheckShots samples. On cancellation it returns the partial
// tallies drawn so far alongside the context's error.
func (s *Sampler) CountsContext(ctx context.Context, shots int) (map[string]int, error) {
	idx, err := s.CountsByIndexContext(ctx, shots)
	counts := make(map[string]int, len(idx))
	for i, n := range idx {
		counts[core.FormatBits(i, s.n)] = n
	}
	return counts, err
}

// CountsByIndexContext is CountsByIndex with cooperative cancellation. On
// cancellation it returns the partial tallies alongside the context's error.
//
// With workers > 1 the batch is drawn by core.CountsParallelContext: a fresh
// batch seed is split off the sampler's stream (one Uint64 draw, so
// successive parallel batches differ but remain a pure function of the
// sampler seed), worker k samples from rng.Stream(batchSeed, k), and the
// per-worker tallies are merged without intermediate allocations. With
// workers == 1 every shot comes from the sampler's own sequential stream,
// bit-for-bit identical to the historical behavior.
func (s *Sampler) CountsByIndexContext(ctx context.Context, shots int) (map[uint64]int, error) {
	stop := obs.StartPhase(s.reg, s.tr, obs.PhaseSample)
	var counts map[uint64]int
	var err error
	if s.workers > 1 && shots > 1 {
		// All facade samplers are safe for concurrent use: the frozen DD
		// snapshot is immutable and the vector-family samplers are read-only
		// after construction.
		batchSeed := s.rand.Uint64()
		var ws []core.WorkerStat
		counts, ws, err = core.CountsParallelContext(ctx, s.inner, batchSeed, shots, s.workers)
		s.noteWorkers(ws)
	} else {
		start := time.Now()
		counts, err = core.CountsContext(ctx, s.inner, s.rand, shots)
		s.observeBatchWalk(time.Since(start), counts)
	}
	stop()
	s.noteBatch(counts)
	return counts, err
}

// noteWorkers records per-worker batch statistics: the worker count gauge
// and each worker's mean per-shot walk time into the walk histogram.
func (s *Sampler) noteWorkers(ws []core.WorkerStat) {
	if s.reg == nil {
		return
	}
	s.reg.Gauge("sample_workers").Set(int64(len(ws)))
	if s.walkHist == nil {
		return
	}
	for _, w := range ws {
		if w.Shots > 0 {
			s.walkHist.ObserveDuration(w.Elapsed / time.Duration(w.Shots))
		}
	}
}

// observeBatchWalk folds a sequential batch's mean per-shot time into the
// walk histogram (per-shot wall-clocking would distort the hot loop).
func (s *Sampler) observeBatchWalk(elapsed time.Duration, counts map[uint64]int) {
	if s.walkHist == nil {
		return
	}
	var drawn int
	for _, n := range counts {
		drawn += n
	}
	if drawn > 0 {
		s.walkHist.ObserveDuration(elapsed / time.Duration(drawn))
	}
	if s.reg != nil {
		s.reg.Gauge("sample_workers").Set(1)
	}
}

// noteBatch accounts a batch drawn through the core helpers (which bypass
// ShotIndex): the actually drawn shot count — partial batches under
// cancellation report what was really drawn — plus the walk-stat mirror.
func (s *Sampler) noteBatch(counts map[uint64]int) {
	if s.shotsCtr == nil {
		return
	}
	var drawn uint64
	for _, n := range counts {
		drawn += uint64(n)
	}
	s.nShots += drawn
	s.shotsCtr.Add(drawn)
	s.syncWalkStats()
}

// Run is the one-call weak simulation of the paper's Fig. 2: strong
// simulation on the DD backend followed by shots measurement samples,
// returned as bitstring counts.
func Run(c *Circuit, shots int, opts ...Option) (counts map[string]int, err error) {
	defer guard(&err)
	if shots < 1 {
		return nil, errors.New("weaksim: shots must be positive")
	}
	state, err := Simulate(c, opts...)
	if err != nil {
		return nil, err
	}
	sampler, err := state.Sampler()
	if err != nil {
		return nil, err
	}
	return sampler.Counts(shots), nil
}

// Re-exported gate constructors for circuit building.
var (
	// XGate is the Pauli-X (NOT) gate.
	XGate = gate.XGate
	// YGate is the Pauli-Y gate.
	YGate = gate.YGate
	// ZGate is the Pauli-Z gate.
	ZGate = gate.ZGate
	// HGate is the Hadamard gate.
	HGate = gate.HGate
	// SGate is the phase gate diag(1, i).
	SGate = gate.SGate
	// TGate is the T gate diag(1, e^{iπ/4}).
	TGate = gate.TGate
)

// RXGate returns the X rotation by θ.
func RXGate(theta float64) Gate { return gate.RXGate(theta) }

// RYGate returns the Y rotation by θ.
func RYGate(theta float64) Gate { return gate.RYGate(theta) }

// RZGate returns the Z rotation by θ.
func RZGate(theta float64) Gate { return gate.RZGate(theta) }

// PhaseGate returns diag(1, e^{iθ}).
func PhaseGate(theta float64) Gate { return gate.PhaseGate(theta) }

// Pos is a positive control on qubit q.
func Pos(q int) Control { return gate.Pos(q) }

// Neg is a negative control on qubit q.
func Neg(q int) Control { return gate.Neg(q) }

// Approximate returns a pruned copy of the state: branches whose total
// traversal probability falls below threshold are removed and the rest is
// renormalized. The returned fidelity |⟨approx|exact⟩|² quantifies the
// sampling error introduced — weak simulation "with some error" in exchange
// for a smaller diagram.
func (s *State) Approximate(threshold float64) (*State, float64, error) {
	if s.dense != nil {
		return nil, 0, errVectorBacked
	}
	edge, fidelity, err := core.Approximate(s.mgr, s.edge, threshold)
	if err != nil {
		return nil, 0, err
	}
	return &State{mgr: s.mgr, edge: edge, cfg: s.cfg}, fidelity, nil
}

// MeasureQubit performs a destructive single-qubit measurement: it returns
// the observed bit and the collapsed, renormalized post-measurement state.
// Unlike Sampler (which is read-only and repeatable), this is the operation
// physical hardware actually offers.
func (s *State) MeasureQubit(qubit int, seed uint64) (int, *State, error) {
	if s.dense != nil {
		return 0, nil, errVectorBacked
	}
	bit, post, err := core.MeasureQubit(s.mgr, s.edge, qubit, rng.New(seed))
	if err != nil {
		return 0, nil, err
	}
	return bit, &State{mgr: s.mgr, edge: post, cfg: s.cfg}, nil
}

// QubitProbability returns the probability that measuring the given qubit
// yields 1.
func (s *State) QubitProbability(qubit int) (float64, error) {
	if s.dense != nil {
		if qubit < 0 || qubit >= s.Qubits() {
			return 0, fmt.Errorf("weaksim: qubit %d out of range", qubit)
		}
		var p float64
		bit := uint64(1) << uint(qubit)
		for i, a := range s.dense.Amplitudes() {
			if uint64(i)&bit != 0 {
				p += a.Abs2()
			}
		}
		return p, nil
	}
	return core.QubitProbability(s.mgr, s.edge, qubit)
}

// WriteDOT renders the state's decision diagram in Graphviz DOT format
// (render with `dot -Tsvg`), in the style of the paper's Fig. 4.
func (s *State) WriteDOT(w io.Writer, title string) error {
	if s.dense != nil {
		return errVectorBacked
	}
	return s.mgr.WriteDOT(w, s.edge, title)
}

// Optimize simplifies the circuit in place with exact, semantics-preserving
// rewrites (cancel self-inverse pairs, merge adjacent rotations, drop
// identities) and returns how many operations were eliminated.
func Optimize(c *Circuit) int {
	return circuit.Optimize(c).Total()
}

// Outcome is a basis state with its exact Born probability.
type Outcome struct {
	Bits        string
	Probability float64
}

// ServeConfig carries the server-side knobs of the sampling daemon (see
// Serve). Simulation-side options — normalization, node budget, metrics,
// tracer — are passed as regular Options, so the daemon is configured with
// exactly the same vocabulary as a library run. Zero fields select the
// serve package defaults.
type ServeConfig struct {
	// Addr is the listen address ("" or ":0" = ephemeral port).
	Addr string
	// DebugAddr optionally starts the observability server (/metrics,
	// /metrics.json, expvar, pprof) on a second address.
	DebugAddr string
	// CacheBytes bounds the frozen-snapshot LRU in bytes of snapshot
	// arrays.
	CacheBytes int64
	// QueueDepth bounds the strong-simulation admission queue; a full
	// queue answers HTTP 429 with Retry-After.
	QueueDepth int
	// SimWorkers sizes the strong-simulation worker pool (0 = GOMAXPROCS).
	SimWorkers int
	// MaxSampleWorkers caps the per-request sampling worker count
	// (0 = GOMAXPROCS).
	MaxSampleWorkers int
	// MaxShots caps per-request shots; DefaultShots fills in omitted ones.
	MaxShots     int
	DefaultShots int
	// RequestTimeout is the per-request deadline; blown deadlines answer
	// HTTP 504, the paper's "TO" through the network boundary.
	RequestTimeout time.Duration
	// SnapshotDir, when non-empty, persists frozen snapshots to a
	// crash-safe on-disk store and warm-loads it on start: a restarted
	// daemon serves previously simulated circuits from disk with zero
	// strong simulations. Corrupt files are quarantined and re-simulated.
	SnapshotDir string
	// FlightDir, when non-empty, receives flight-recorder ring dumps
	// (JSONL of recent request spans) when the daemon trips on a panic, an
	// injected fault, or an SLO fast-burn breach. Empty keeps dumps
	// HTTP-only (GET /debug/flight).
	FlightDir string
	// DisableRequestTraces turns off per-request span collection: no
	// X-Weaksim-Trace-Id response header, no debug=1 breakdown. The
	// disabled path allocates nothing per request.
	DisableRequestTraces bool
	// JobsDir, when non-empty, enables the durable batch-job store: job
	// specs and chunk checkpoints are WAL-persisted there, and a restarted
	// daemon resumes every non-terminal job losing at most one in-flight
	// chunk, with final counts bit-identical to an uninterrupted run.
	// Empty keeps jobs in memory only (lost on restart).
	JobsDir string
	// JobWorkers sizes the batch-chunk executor pool (0 = default).
	JobWorkers int
	// JobChunkShots is the default checkpoint granularity in shots for
	// jobs that do not pick their own (0 = default).
	JobChunkShots int
	// JobTenantWeights sets per-tenant fair-share weights for the
	// deficit-round-robin chunk scheduler (unlisted tenants weigh 1).
	JobTenantWeights map[string]int
	// JobMaxPerTenant caps active (non-terminal) jobs per tenant; at the
	// cap, submissions answer HTTP 429 (0 = default).
	JobMaxPerTenant int
}

// Daemon is a running sampling-as-a-service instance (see Serve).
type Daemon struct{ inner *serve.Server }

// Serve starts the weak-simulation sampling daemon: an HTTP/JSON service
// that accepts OpenQASM 2.0 (or named benchmark circuits) and returns
// measurement counts. Each distinct circuit is strongly simulated at most
// once — concurrent first requests are coalesced by a single-flight guard —
// and the frozen snapshot is kept in a byte-bounded LRU, so warm circuits
// are served entirely by lock-free O(n)-per-shot walks with zero DD work.
//
// Resource governance maps onto status codes: WithNodeBudget overruns
// answer 507 (the paper's MO), deadlines 504 (TO), a full admission queue
// 429 with Retry-After. Stop the daemon with Daemon.Shutdown for a graceful
// drain, or Daemon.Close to stop immediately.
func Serve(sc ServeConfig, opts ...Option) (*Daemon, error) {
	cfg := newConfig(opts)
	srv := serve.New(serve.Config{
		Addr:                 sc.Addr,
		DebugAddr:            sc.DebugAddr,
		Norm:                 cfg.norm,
		NodeBudget:           cfg.nodeBudget,
		CacheBytes:           sc.CacheBytes,
		QueueDepth:           sc.QueueDepth,
		SimWorkers:           sc.SimWorkers,
		MaxSampleWorkers:     sc.MaxSampleWorkers,
		MaxShots:             sc.MaxShots,
		DefaultShots:         sc.DefaultShots,
		RequestTimeout:       sc.RequestTimeout,
		SnapshotDir:          sc.SnapshotDir,
		FlightDir:            sc.FlightDir,
		DisableRequestTraces: sc.DisableRequestTraces,
		JobsDir:              sc.JobsDir,
		JobWorkers:           sc.JobWorkers,
		JobChunkShots:        sc.JobChunkShots,
		JobTenantWeights:     sc.JobTenantWeights,
		JobMaxPerTenant:      sc.JobMaxPerTenant,
		Metrics:              cfg.reg,
		Tracer:               cfg.tracer,
	})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return &Daemon{inner: srv}, nil
}

// Addr returns the daemon's bound listen address.
func (d *Daemon) Addr() string { return d.inner.Addr() }

// Shutdown drains the daemon gracefully: stop accepting requests, let
// in-flight requests and queued simulations finish (until ctx expires),
// then release everything.
func (d *Daemon) Shutdown(ctx context.Context) error { return d.inner.Shutdown(ctx) }

// Close stops the daemon without draining.
func (d *Daemon) Close() error { return d.inner.Close() }

// ClusterConfig carries the router-side knobs of a replica cluster (see
// ServeCluster). Zero fields select the cluster package defaults.
type ClusterConfig struct {
	// Addr is the router's listen address ("" or ":0" = ephemeral port).
	Addr string
	// Backends is the static replica list: base URLs or host:port pairs.
	Backends []string
	// BackendsFile, when non-empty, is a watched membership file (one
	// replica URL per line, #-comments ignored) that is polled and applied
	// live — the ring rebuilds and only ~1/N of circuit placements move.
	BackendsFile string
	// ReplicaCount is how many warm snapshot copies beyond the primary each
	// circuit keeps (also the failover depth). 0 selects the default, -1
	// disables replication.
	ReplicaCount int
	// ProbeInterval is the /readyz health-probe cadence.
	ProbeInterval time.Duration
	// RequestTimeout bounds one forwarded exchange.
	RequestTimeout time.Duration
}

// ClusterRouter is a running cluster front door (see ServeCluster).
type ClusterRouter struct{ inner *cluster.Router }

// ServeCluster starts a cluster router over a fleet of sampling daemons
// started with Serve (or weaksimd): every circuit is consistent-hashed by
// its canonical key onto a primary replica (plus ReplicaCount warm copies),
// dead replicas are probe-ejected and failed over, and frozen snapshots are
// shipped between replicas so each circuit is strongly simulated at most
// once fleet-wide. Normalization and metrics ride in as regular Options and
// must match the replicas — the routing function is the replicas' cache-key
// function.
func ServeCluster(cc ClusterConfig, opts ...Option) (*ClusterRouter, error) {
	cfg := newConfig(opts)
	router, err := cluster.NewRouter(cluster.Config{
		Addr:           cc.Addr,
		Backends:       cc.Backends,
		BackendsFile:   cc.BackendsFile,
		ReplicaCount:   cc.ReplicaCount,
		ProbeInterval:  cc.ProbeInterval,
		RequestTimeout: cc.RequestTimeout,
		Norm:           cfg.norm,
		Metrics:        cfg.reg,
	})
	if err != nil {
		return nil, err
	}
	if err := router.Start(); err != nil {
		return nil, err
	}
	return &ClusterRouter{inner: router}, nil
}

// Addr returns the router's bound listen address.
func (c *ClusterRouter) Addr() string { return c.inner.Addr() }

// Shutdown drains the router: stop accepting requests, then wait for
// in-flight snapshot replication (until ctx expires).
func (c *ClusterRouter) Shutdown(ctx context.Context) error { return c.inner.Shutdown(ctx) }

// Close stops the router with a short drain bound.
func (c *ClusterRouter) Close() error { return c.inner.Close() }

// TopOutcomes returns the k most probable measurement outcomes exactly, in
// descending order, via best-first search over the decision diagram — no
// 2^n enumeration, so it works in the regime where the dense distribution
// cannot be stored.
func (s *State) TopOutcomes(k int) ([]Outcome, error) {
	if s.dense != nil {
		return nil, errVectorBacked
	}
	raw, err := core.TopOutcomes(s.mgr, s.edge, k)
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, len(raw))
	for i, o := range raw {
		out[i] = Outcome{Bits: core.FormatBits(o.Index, s.Qubits()), Probability: o.Probability}
	}
	return out, nil
}
