package main

import "testing"

// TestGate runs the full kill-and-resume gate — build weaksimd, reference
// run, SIGKILL mid-run, resume — as a regular test, so `go test ./...`
// exercises the same contract CI's `make job-gate` does.
func TestGate(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e; skipped in -short")
	}
	if err := gate(); err != nil {
		t.Fatalf("job gate: %v", err)
	}
}
