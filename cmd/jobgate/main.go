// Command jobgate is the CI gate for the durable batch-job tier: it proves
// that a SIGKILL — not a drain, a kill — in the middle of a batch run costs
// at most one in-flight chunk per job and changes nothing about the answer.
//
// The gate builds the real weaksimd binary and drives it as a subprocess
// (an in-process server cannot be SIGKILLed) through three phases:
//
//   - reference: a daemon runs three jobs (distinct circuits, seeds,
//     tenants, chunk sizes) to completion uninterrupted; their merged
//     counts are the ground truth;
//   - kill: a fresh daemon on a fresh -jobs-dir gets the same three
//     submissions and is SIGKILLed once every job has checkpointed at
//     least minChunksAtKill chunks but none has finished;
//   - resume: a third daemon boots on the killed daemon's -jobs-dir,
//     replays the WAL (including whatever torn tail the kill left),
//     resumes all three jobs, and must finish them with counts
//     bit-identical to the reference run, chunks_recovered covering every
//     checkpoint the gate had observed, and chunks_recovered +
//     chunks_executed == chunks_total — i.e. no committed chunk was ever
//     sampled twice, so the only possibly re-sampled chunk per job is the
//     single one in flight at the moment of the kill.
//
// Run via `make job-gate`. Exit code 0 means the resume contract holds.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"
)

const (
	// minChunksAtKill is how many checkpoints every job must have before
	// the SIGKILL: enough that a resume demonstrably reuses prior work.
	minChunksAtKill = 3
	pollEvery       = 2 * time.Millisecond
	phaseTimeout    = 60 * time.Second
)

// jobSubmit describes one of the gate's three jobs. Shots and chunk size
// are tuned so each job runs hundreds of milliseconds across tens of
// chunks — slow enough to kill mid-run reliably, fast enough for CI.
type jobSubmit struct {
	Circuit    string `json:"circuit"`
	Shots      int    `json:"shots"`
	Seed       uint64 `json:"seed"`
	ChunkShots int    `json:"chunk_shots"`
	Priority   string `json:"priority,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
}

var jobs = []jobSubmit{
	{Circuit: "ghz_10", Shots: 4_000_000, Seed: 7, ChunkShots: 100_000, Tenant: "acme"},
	{Circuit: "ghz_12", Shots: 3_000_000, Seed: 11, ChunkShots: 75_000, Priority: "high", Tenant: "acme"},
	{Circuit: "ghz_14", Shots: 2_000_000, Seed: 13, ChunkShots: 50_000, Priority: "low", Tenant: "guest"},
}

type jobStatus struct {
	ID              string `json:"job_id"`
	State           string `json:"state"`
	ChunksTotal     int    `json:"chunks_total"`
	ChunksDone      int    `json:"chunks_done"`
	ChunksRecovered int    `json:"chunks_recovered"`
	ChunksExecuted  int    `json:"chunks_executed"`
	ErrorCode       string `json:"error_code"`
	Error           string `json:"error"`
}

func main() {
	if err := gate(); err != nil {
		fmt.Fprintln(os.Stderr, "job-gate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("job-gate: OK")
}

// daemon is one weaksimd subprocess plus the address it bound.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches the built weaksimd on an ephemeral port with the
// given jobs dir and waits for its "listening on" line.
func startDaemon(bin, jobsDir string) (*daemon, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-jobs-dir", jobsDir,
		"-job-workers", "2",
		"-drain-timeout", "30s")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start weaksimd: %w", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "weaksimd: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- addr
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, addr: addr}, nil
	case <-time.After(phaseTimeout):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("weaksimd never reported its address")
	}
}

// stop drains the daemon with SIGTERM and waits for a clean exit.
func (d *daemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(phaseTimeout):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("weaksimd did not drain after SIGTERM")
	}
}

// kill SIGKILLs the daemon — no drain, no checkpoint flush, the crash the
// WAL exists for — and reaps the process.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

func (d *daemon) submit(js jobSubmit) (jobStatus, error) {
	body, _ := json.Marshal(js)
	resp, err := http.Post("http://"+d.addr+"/v1/jobs", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		return jobStatus{}, fmt.Errorf("submit %s: %w", js.Circuit, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return jobStatus{}, fmt.Errorf("submit %s: status %d: %s", js.Circuit, resp.StatusCode, raw)
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return jobStatus{}, fmt.Errorf("submit %s: decode: %w", js.Circuit, err)
	}
	return st, nil
}

func (d *daemon) status(id string) (jobStatus, error) {
	resp, err := http.Get("http://" + d.addr + "/v1/jobs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return jobStatus{}, fmt.Errorf("status %s: %d: %s", id, resp.StatusCode, raw)
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

func (d *daemon) result(id string) (map[string]int, error) {
	resp, err := http.Get("http://" + d.addr + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: %d: %s", id, resp.StatusCode, raw)
	}
	var out struct {
		Counts map[string]int `json:"counts"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return out.Counts, nil
}

// waitCompleted polls the given jobs until all reach "completed", failing
// fast on any terminal error state.
func (d *daemon) waitCompleted(ids []string) (map[string]jobStatus, error) {
	deadline := time.Now().Add(phaseTimeout)
	final := make(map[string]jobStatus)
	for {
		allDone := true
		for _, id := range ids {
			st, err := d.status(id)
			if err != nil {
				return nil, err
			}
			switch st.State {
			case "completed":
				final[id] = st
			case "failed", "cancelled":
				return nil, fmt.Errorf("job %s reached %s (%s: %s)", id, st.State, st.ErrorCode, st.Error)
			default:
				allDone = false
			}
		}
		if allDone {
			return final, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("jobs did not complete within %v", phaseTimeout)
		}
		time.Sleep(pollEvery)
	}
}

func gate() error {
	work, err := os.MkdirTemp("", "jobgate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "weaksimd")
	// Build by module path, not "./cmd/weaksimd", so the gate also runs from
	// other directories inside the module (e.g. its own package test).
	build := exec.Command("go", "build", "-o", bin, "weaksim/cmd/weaksimd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build weaksimd: %w", err)
	}

	// Phase 1 — reference: uninterrupted run, ground-truth counts.
	fmt.Println("job-gate: phase 1: uninterrupted reference run")
	refDir := filepath.Join(work, "ref")
	ref, err := startDaemon(bin, refDir)
	if err != nil {
		return err
	}
	var refIDs []string
	for _, js := range jobs {
		st, err := ref.submit(js)
		if err != nil {
			ref.kill()
			return err
		}
		refIDs = append(refIDs, st.ID)
	}
	if _, err := ref.waitCompleted(refIDs); err != nil {
		ref.kill()
		return err
	}
	want := make([]map[string]int, len(jobs))
	for i, id := range refIDs {
		if want[i], err = ref.result(id); err != nil {
			ref.kill()
			return err
		}
	}
	if err := ref.stop(); err != nil {
		return fmt.Errorf("reference drain: %w", err)
	}

	// Phase 2 — kill: same submissions, SIGKILL once every job has
	// checkpointed progress and none has finished.
	fmt.Println("job-gate: phase 2: SIGKILL mid-run")
	liveDir := filepath.Join(work, "live")
	victim, err := startDaemon(bin, liveDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, js := range jobs {
		st, err := victim.submit(js)
		if err != nil {
			victim.kill()
			return err
		}
		ids = append(ids, st.ID)
	}
	observed := make(map[string]int) // last chunks_done seen per job
	deadline := time.Now().Add(phaseTimeout)
	for {
		minDone, maxDone, finished := 1<<31, 0, 0
		for i, id := range ids {
			st, err := victim.status(id)
			if err != nil {
				victim.kill()
				return err
			}
			observed[id] = st.ChunksDone
			if st.ChunksDone < minDone {
				minDone = st.ChunksDone
			}
			if st.ChunksDone > maxDone {
				maxDone = st.ChunksDone
			}
			if st.State == "completed" {
				finished++
			}
			if st.State == "failed" || st.State == "cancelled" {
				victim.kill()
				return fmt.Errorf("job %d reached %s before the kill", i, st.State)
			}
		}
		if finished > 0 {
			victim.kill()
			return fmt.Errorf("%d job(s) finished before the kill; shrink chunk progress window", finished)
		}
		if minDone >= minChunksAtKill {
			break
		}
		if time.Now().After(deadline) {
			victim.kill()
			return fmt.Errorf("jobs never reached %d chunks (min %d, max %d)", minChunksAtKill, minDone, maxDone)
		}
		time.Sleep(pollEvery)
	}
	victim.kill()
	fmt.Printf("job-gate: killed with observed progress %v\n", progressLine(ids, observed))

	// Phase 3 — resume: a fresh daemon on the same dir must finish every
	// job bit-identically with at most the in-flight chunk re-sampled.
	fmt.Println("job-gate: phase 3: restart and resume")
	resumed, err := startDaemon(bin, liveDir)
	if err != nil {
		return err
	}
	defer resumed.kill()
	final, err := resumed.waitCompleted(ids)
	if err != nil {
		return err
	}
	for i, id := range ids {
		st := final[id]
		if st.ChunksRecovered < observed[id] {
			return fmt.Errorf("job %d: recovered %d chunks but %d were checkpointed before the kill — committed work was lost",
				i, st.ChunksRecovered, observed[id])
		}
		if st.ChunksRecovered >= st.ChunksTotal {
			return fmt.Errorf("job %d: recovered all %d chunks — the kill missed the run; nothing was resumed",
				i, st.ChunksTotal)
		}
		// Recovered + executed == total means every chunk the restarted
		// daemon sampled was one the WAL did not already hold: the only
		// possibly re-sampled chunk is the single one in flight at the kill.
		if st.ChunksRecovered+st.ChunksExecuted != st.ChunksTotal {
			return fmt.Errorf("job %d: recovered %d + executed %d != total %d — a committed chunk was re-sampled",
				i, st.ChunksRecovered, st.ChunksExecuted, st.ChunksTotal)
		}
		got, err := resumed.result(id)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want[i]) {
			return fmt.Errorf("job %d (%s): resumed counts differ from the uninterrupted reference run",
				i, jobs[i].Circuit)
		}
		total := 0
		for _, n := range got {
			total += n
		}
		if total != jobs[i].Shots {
			return fmt.Errorf("job %d: counts sum to %d, want %d", i, total, jobs[i].Shots)
		}
		fmt.Printf("job-gate: job %d (%s): %d chunks recovered, %d executed after restart, counts bit-identical\n",
			i, jobs[i].Circuit, st.ChunksRecovered, st.ChunksExecuted)
	}
	if err := resumed.stop(); err != nil {
		return fmt.Errorf("resumed daemon drain: %w", err)
	}
	return nil
}

func progressLine(ids []string, observed map[string]int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("job%d=%d", i, observed[id])
	}
	return strings.Join(parts, " ")
}
