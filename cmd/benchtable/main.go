// Command benchtable regenerates the paper's Table I: runtime and memory
// for error-free sampling of one million bitstrings, comparing vector-based
// sampling (prefix sums + binary search, Section III) against DD-based
// sampling (randomized diagram traversal, Section IV).
//
// Following the paper's flow, each benchmark is strongly simulated once on
// the decision-diagram backend; the vector-based column then expands that
// state into an explicit array (when it fits the memory budget — otherwise
// the row reports MO, exactly like the paper), while the DD-based column
// samples the diagram directly.
//
// Usage:
//
//	benchtable                      # the default row set that fits this machine
//	benchtable -rows all            # every Table I row (hours of CPU)
//	benchtable -rows qft_16,qft_32  # specific rows
//	benchtable -shots 1000000       # the paper's sample count (default)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"weaksim/internal/algo"
	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
	"weaksim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtable:", err)
		os.Exit(1)
	}
}

// fastRows are the Table I rows whose strong simulation completes in
// reasonable time on a single-core machine. The remaining rows (grover_25+
// with their tens of thousands of iterations, supremacy_5x4_10 and
// supremacy_5x5_10 with their multi-million-node diagrams, shor_221_4,
// shor_247_4) run with -rows all or by name.
var fastRows = []string{
	"qft_16", "qft_32", "qft_48",
	"grover_20",
	"shor_33_2", "shor_55_2", "shor_69_4",
	"jellium_2x2", "jellium_3x3",
	"supremacy_4x4_10",
}

func run() error {
	var (
		rows     = flag.String("rows", "fast", `"fast", "all", or a comma-separated list of Table I rows`)
		shots    = flag.Int("shots", 1000000, "samples per row (paper: one million)")
		seed     = flag.Uint64("seed", 1, "sampling seed")
		budget   = flag.Int("vector-budget", 26, "max log2(state vector entries) for the vector-based column; larger rows report MO")
		norm     = flag.String("norm", "l2phase", "DD normalization scheme: left, l2, or l2phase")
		timeout  = flag.Duration("timeout", 0, "per-row wall-clock bound; rows exceeding it report TO like the paper (0 = none)")
		ddBudget = flag.Int("dd-node-budget", 0, "max live DD nodes per row; rows exceeding it report MO in the DD columns (0 = unlimited)")
	)
	flag.Parse()

	var names []string
	switch *rows {
	case "fast":
		names = fastRows
	case "all":
		names = algo.TableIBenchmarks()
	default:
		names = strings.Split(*rows, ",")
	}
	normScheme, err := dd.ParseNorm(*norm)
	if err != nil {
		return err
	}

	fmt.Printf("Table I reproduction: error-free sampling of %d bitstrings (seed %d, norm %s)\n",
		*shots, *seed, normScheme)
	fmt.Printf("vector budget: 2^%d entries; larger rows report MO as in the paper\n", *budget)
	if *ddBudget > 0 {
		fmt.Printf("DD node budget: %d live nodes; rows exceeding it report MO in the DD columns\n", *ddBudget)
	}
	if *timeout > 0 {
		fmt.Printf("per-row timeout: %v; rows exceeding it report TO\n", *timeout)
	}
	fmt.Println()
	fmt.Printf("%-18s %6s | %8s %10s | %12s %10s | %10s\n",
		"benchmark", "qubits", "vec size", "vec t[s]", "DD size", "DD t[s]", "sim t[s]")
	fmt.Println(strings.Repeat("-", 88))

	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := runRow(name, *shots, *seed, *budget, *ddBudget, *timeout, normScheme); err != nil {
			fmt.Printf("%-18s ERROR: %v\n", name, err)
		}
	}
	return nil
}

// cell classifies a resource failure the way the paper's Table I does:
// "MO" for memory/node-budget exhaustion, "TO" for a blown deadline.
func cell(err error) (string, bool) {
	switch {
	case errors.Is(err, dd.ErrNodeBudget):
		return "MO", true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "TO", true
	}
	return "", false
}

func runRow(name string, shots int, seed uint64, budget, ddBudget int, timeout time.Duration, norm dd.Norm) error {
	c, err := algo.Generate(name)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	mgrOpts := []dd.Option{dd.WithNormalization(norm)}
	if ddBudget > 0 {
		mgrOpts = append(mgrOpts, dd.WithNodeBudget(ddBudget))
	}
	simStart := time.Now()
	s, err := sim.NewDD(c, sim.WithManagerOptions(mgrOpts...))
	if err != nil {
		return err
	}
	state, err := s.RunContext(ctx)
	if err != nil {
		// Strong simulation itself was budgeted out or timed out: neither
		// sampling column can run — the whole row is MO/TO, as in the
		// paper's vector rows that never complete.
		if mark, ok := cell(err); ok {
			fmt.Printf("%-18s %6d | %8s %10s | %12s %10s | %10s\n",
				name, c.NQubits, mark, mark, mark, mark, mark)
			return nil
		}
		return err
	}
	simTime := time.Since(simStart)
	m := s.Manager()
	nodeCount := m.NodeCount(state)

	// Vector-based column: expand amplitudes, square, prefix-sum, then
	// binary-search sampling. The paper's time column covers prefix-sum
	// construction plus the million samples.
	vecCol := "MO"
	vecTime := "MO"
	if c.NQubits <= budget && c.NQubits <= dd.MaxDenseQubits {
		start := time.Now()
		amps, err := m.ToVector(state)
		if err != nil {
			return err
		}
		probs := core.ProbabilitiesFromAmplitudes(amps)
		sampler, err := core.NewPrefixSampler(probs)
		if err != nil {
			return err
		}
		if err := sampleSink(ctx, sampler, seed, shots); err != nil {
			if mark, ok := cell(err); ok {
				vecCol, vecTime = mark, mark
			} else {
				return err
			}
		} else {
			vecTime = fmt.Sprintf("%.2f", time.Since(start).Seconds())
			vecCol = fmt.Sprintf("2^%d", c.NQubits)
		}
	}

	// DD-based column: precompute branch probabilities (a no-op under L2
	// normalization) and draw the samples by diagram traversal.
	start := time.Now()
	ddSampler, err := core.NewDDSampler(m, state)
	if err != nil {
		return err
	}
	ddSize := fmt.Sprintf("%6d ≈2^%-4.1f", nodeCount, math.Log2(float64(nodeCount)))
	var ddTime string
	if err := sampleSink(ctx, ddSampler, seed, shots); err != nil {
		if mark, ok := cell(err); ok {
			ddTime = mark
		} else {
			return err
		}
	} else {
		ddTime = fmt.Sprintf("%.2f", time.Since(start).Seconds())
	}

	fmt.Printf("%-18s %6d | %8s %10s | %12s %10s | %10.2f\n",
		name, c.NQubits, vecCol, vecTime, ddSize, ddTime, simTime.Seconds())
	return nil
}

// sampleSink draws shots samples into a throwaway sink, checking the
// context every core.CtxCheckShots samples so a per-row timeout turns into
// a TO cell instead of a hung table.
func sampleSink(ctx context.Context, sampler core.Sampler, seed uint64, shots int) error {
	r := rng.New(seed)
	var sink uint64
	for i := 0; i < shots; i++ {
		if i%core.CtxCheckShots == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		sink ^= sampler.Sample(r)
	}
	_ = sink
	return nil
}
