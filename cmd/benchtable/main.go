// Command benchtable regenerates the paper's Table I: runtime and memory
// for error-free sampling of one million bitstrings, comparing vector-based
// sampling (prefix sums + binary search, Section III) against DD-based
// sampling (randomized diagram traversal, Section IV).
//
// Following the paper's flow, each benchmark is strongly simulated once on
// the decision-diagram backend; the vector-based column then expands that
// state into an explicit array (when it fits the memory budget — otherwise
// the row reports MO, exactly like the paper), while the DD-based column
// samples the diagram directly.
//
// Usage:
//
//	benchtable                      # the default row set that fits this machine
//	benchtable -rows all            # every Table I row (hours of CPU)
//	benchtable -rows qft_16,qft_32  # specific rows
//	benchtable -shots 1000000       # the paper's sample count (default)
//	benchtable -json-out auto       # also write BENCH_<timestamp>.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"weaksim/internal/algo"
	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
	"weaksim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtable:", err)
		os.Exit(1)
	}
}

// fastRows are the Table I rows whose strong simulation completes in
// reasonable time on a single-core machine. The remaining rows (grover_25+
// with their tens of thousands of iterations, supremacy_5x4_10 and
// supremacy_5x5_10 with their multi-million-node diagrams, shor_221_4,
// shor_247_4) run with -rows all or by name.
var fastRows = []string{
	"qft_16", "qft_32", "qft_48",
	"grover_20",
	"shor_33_2", "shor_55_2", "shor_69_4",
	"jellium_2x2", "jellium_3x3",
	"supremacy_4x4_10",
}

// benchRow is the machine-readable form of one Table I row, serialized into
// the BENCH_<timestamp>.json document written by -json-out. String status
// fields use "ok", "MO", or "TO" with the same semantics as the printed
// table.
type benchRow struct {
	Name   string `json:"name"`
	Qubits int    `json:"qubits"`
	Ops    int    `json:"ops"`

	// Status is the row-level outcome: "ok" when strong simulation
	// completed, "MO"/"TO" when it was budgeted out (then the per-column
	// fields are absent), "error" otherwise.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	SimSeconds float64 `json:"sim_seconds,omitempty"`
	PeakNodes  int     `json:"peak_nodes,omitempty"`
	StateNodes int     `json:"state_nodes,omitempty"`

	// VectorStatus / DDStatus are the per-column outcomes ("ok", "MO",
	// "TO"); the corresponding seconds are set only on "ok".
	VectorStatus  string  `json:"vector_status,omitempty"`
	VectorSeconds float64 `json:"vector_seconds,omitempty"`
	DDStatus      string  `json:"dd_status,omitempty"`
	DDSeconds     float64 `json:"dd_seconds,omitempty"`

	// Freeze-then-sample columns: FreezeSeconds is the one-off cost of
	// converting the live diagram into the immutable flat-array snapshot;
	// DDFrozenSeconds covers the same shot batch drawn by lock-free walks
	// over the snapshot (sharded across -workers goroutines when set);
	// DDSpeedup is DDSeconds / DDFrozenSeconds — the per-shot win of the
	// frozen arrays over the live pointer walk.
	FreezeSeconds   float64 `json:"freeze_seconds,omitempty"`
	DDFrozenStatus  string  `json:"dd_frozen_status,omitempty"`
	DDFrozenSeconds float64 `json:"dd_frozen_seconds,omitempty"`
	DDSpeedup       float64 `json:"dd_speedup,omitempty"`

	// HitRates maps cache kind → hit rate in [0,1] after strong
	// simulation: unique_v, unique_m, cache_mul, cache_add, cnum_intern.
	HitRates map[string]float64 `json:"hit_rates,omitempty"`

	// Storage-engine health after strong simulation: mean open-addressing
	// probe length per unique-table lookup, direct-mapped compute-cache
	// entries overwritten by collisions, node slabs allocated by the arenas,
	// and arena slots recycled by GC and awaiting reuse.
	UniqueProbeLen float64 `json:"unique_probe_len,omitempty"`
	CacheEvictions uint64  `json:"cache_evictions,omitempty"`
	ArenaSlabs     int     `json:"arena_slabs,omitempty"`
	FreelistLen    int     `json:"freelist_len,omitempty"`
}

// benchDoc is the top-level BENCH_*.json document.
type benchDoc struct {
	GeneratedAt string     `json:"generated_at"`
	Shots       int        `json:"shots"`
	Seed        uint64     `json:"seed"`
	Norm        string     `json:"norm"`
	VecBudget   int        `json:"vector_budget_qubits"`
	DDBudget    int        `json:"dd_node_budget,omitempty"`
	TimeoutNS   int64      `json:"timeout_ns,omitempty"`
	Workers     int        `json:"workers"`
	Rows        []benchRow `json:"rows"`
}

func run() error {
	var (
		rows     = flag.String("rows", "fast", `"fast", "all", or a comma-separated list of Table I rows`)
		shots    = flag.Int("shots", 1000000, "samples per row (paper: one million)")
		seed     = flag.Uint64("seed", 1, "sampling seed")
		budget   = flag.Int("vector-budget", 26, "max log2(state vector entries) for the vector-based column; larger rows report MO")
		norm     = flag.String("norm", "l2phase", "DD normalization scheme: left, l2, or l2phase")
		timeout  = flag.Duration("timeout", 0, "per-row wall-clock bound; rows exceeding it report TO like the paper (0 = none)")
		ddBudget = flag.Int("dd-node-budget", 0, "max live DD nodes per row; rows exceeding it report MO in the DD columns (0 = unlimited)")
		workers  = flag.Int("workers", 1, "worker goroutines for the frozen-snapshot sampling column (0 = GOMAXPROCS)")
		jsonOut  = flag.String("json-out", "", `write a machine-readable run summary to this path ("auto" = BENCH_<timestamp>.json)`)
	)
	flag.Parse()

	var names []string
	switch *rows {
	case "fast":
		names = fastRows
	case "all":
		names = algo.TableIBenchmarks()
	default:
		names = strings.Split(*rows, ",")
	}
	normScheme, err := dd.ParseNorm(*norm)
	if err != nil {
		return err
	}
	// Resolve (and probe) the JSON output path up front: a doomed -json-out
	// must fail before hours of benchmarking, not after, and an "auto" name
	// is pinned at startup so the announced target matches the file written.
	jsonPath, err := resolveJSONOut(*jsonOut, time.Now())
	if err != nil {
		return err
	}

	fmt.Printf("Table I reproduction: error-free sampling of %d bitstrings (seed %d, norm %s)\n",
		*shots, *seed, normScheme)
	fmt.Printf("vector budget: 2^%d entries; larger rows report MO as in the paper\n", *budget)
	if *ddBudget > 0 {
		fmt.Printf("DD node budget: %d live nodes; rows exceeding it report MO in the DD columns\n", *ddBudget)
	}
	if *timeout > 0 {
		fmt.Printf("per-row timeout: %v; rows exceeding it report TO\n", *timeout)
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("frozen column: freeze-then-sample over the immutable snapshot, %d worker(s)\n", nWorkers)
	fmt.Println()
	fmt.Printf("%-18s %6s | %8s %10s | %12s %9s %9s %6s | %9s %6s\n",
		"benchmark", "qubits", "vec size", "vec t[s]", "DD size", "live t[s]", "frz t[s]", "spdup", "sim t[s]", "probe")
	fmt.Println(strings.Repeat("-", 111))

	doc := benchDoc{
		GeneratedAt: time.Now().Format(time.RFC3339),
		Shots:       *shots,
		Seed:        *seed,
		Norm:        normScheme.String(),
		VecBudget:   *budget,
		DDBudget:    *ddBudget,
		TimeoutNS:   int64(*timeout),
		Workers:     nWorkers,
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		row, err := runRow(name, *shots, *seed, *budget, *ddBudget, nWorkers, *timeout, normScheme)
		if err != nil {
			fmt.Printf("%-18s ERROR: %v\n", name, err)
			row = benchRow{Name: name, Status: "error", Error: err.Error()}
		}
		doc.Rows = append(doc.Rows, row)
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, &doc); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", jsonPath, len(doc.Rows))
	}
	return nil
}

// resolveJSONOut turns the -json-out argument into a concrete file path at
// startup. A basename of "auto" expands to BENCH_<timestamp>.json inside the
// requested directory (so "results/auto" lands in results/, not in a file
// literally named "auto"). The target directory is validated and probed for
// writability immediately — an unwritable destination fails the run before
// any benchmarking happens.
func resolveJSONOut(arg string, now time.Time) (string, error) {
	if arg == "" {
		return "", nil
	}
	path := arg
	if filepath.Base(path) == "auto" {
		path = filepath.Join(filepath.Dir(path), fmt.Sprintf("BENCH_%s.json", now.Format("20060102T150405")))
	}
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return "", fmt.Errorf("-json-out directory: %w", err)
	}
	if !info.IsDir() {
		return "", fmt.Errorf("-json-out: %s is not a directory", dir)
	}
	probe, err := os.CreateTemp(dir, ".benchtable-probe-*")
	if err != nil {
		return "", fmt.Errorf("-json-out directory %s is not writable: %w", dir, err)
	}
	probe.Close()
	if err := os.Remove(probe.Name()); err != nil {
		return "", fmt.Errorf("-json-out probe cleanup: %w", err)
	}
	return path, nil
}

func writeJSON(path string, doc *benchDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cell classifies a resource failure the way the paper's Table I does:
// "MO" for memory/node-budget exhaustion, "TO" for a blown deadline.
func cell(err error) (string, bool) {
	switch {
	case errors.Is(err, dd.ErrNodeBudget):
		return "MO", true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "TO", true
	}
	return "", false
}

// hitRates digests the manager's table statistics into the same cache-kind →
// rate map that weaksim.Telemetry reports.
func hitRates(st dd.Stats) map[string]float64 {
	m := map[string]float64{}
	set := func(kind string, hits, misses uint64) {
		if total := hits + misses; total > 0 {
			m[kind] = float64(hits) / float64(total)
		}
	}
	set("unique_v", st.VHits, st.VMisses)
	set("unique_m", st.MHits, st.MMisses)
	set("cache_mul", st.MulHits, st.MulMisses)
	set("cache_add", st.AddHits, st.AddMisses)
	set("cnum_intern", st.ComplexHits, st.CMisses)
	return m
}

// meanProbeLen is the average slot-inspection count per unique-table lookup
// — 1.0 means every lookup hit its home slot.
func meanProbeLen(st dd.Stats) float64 {
	if st.UniqueLookups == 0 {
		return 0
	}
	return float64(st.UniqueProbeSteps) / float64(st.UniqueLookups)
}

// storageStats copies the arena/table health fields into the row.
func storageStats(row *benchRow, st dd.Stats) {
	row.UniqueProbeLen = meanProbeLen(st)
	row.CacheEvictions = st.CacheEvictions
	row.ArenaSlabs = st.ArenaSlabs
	row.FreelistLen = st.FreelistLen
}

func runRow(name string, shots int, seed uint64, budget, ddBudget, workers int, timeout time.Duration, norm dd.Norm) (benchRow, error) {
	row := benchRow{Name: name}
	c, err := algo.Generate(name)
	if err != nil {
		return row, err
	}
	row.Qubits = c.NQubits
	row.Ops = c.NumOps()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	mgrOpts := []dd.Option{dd.WithNormalization(norm)}
	if ddBudget > 0 {
		mgrOpts = append(mgrOpts, dd.WithNodeBudget(ddBudget))
	}
	simStart := time.Now()
	s, err := sim.NewDD(c, sim.WithManagerOptions(mgrOpts...))
	if err != nil {
		return row, err
	}
	state, err := s.RunContext(ctx)
	if err != nil {
		// Strong simulation itself was budgeted out or timed out: neither
		// sampling column can run — the whole row is MO/TO, as in the
		// paper's vector rows that never complete.
		if mark, ok := cell(err); ok {
			fmt.Printf("%-18s %6d | %8s %10s | %12s %9s %9s %6s | %9s %6s\n",
				name, c.NQubits, mark, mark, mark, mark, mark, "", mark, "")
			row.Status = mark
			row.PeakNodes = s.Manager().PeakNodes()
			row.HitRates = hitRates(s.Manager().TableStats())
			storageStats(&row, s.Manager().TableStats())
			return row, nil
		}
		return row, err
	}
	simTime := time.Since(simStart)
	m := s.Manager()
	nodeCount := m.NodeCount(state)
	row.Status = "ok"
	row.SimSeconds = simTime.Seconds()
	row.PeakNodes = m.PeakNodes()
	row.StateNodes = nodeCount
	row.HitRates = hitRates(m.TableStats())
	storageStats(&row, m.TableStats())

	// Vector-based column: expand amplitudes, square, prefix-sum, then
	// binary-search sampling. The paper's time column covers prefix-sum
	// construction plus the million samples.
	vecCol := "MO"
	vecTime := "MO"
	row.VectorStatus = "MO"
	if c.NQubits <= budget && c.NQubits <= dd.MaxDenseQubits {
		start := time.Now()
		amps, err := m.ToVector(state)
		if err != nil {
			return row, err
		}
		probs := core.ProbabilitiesFromAmplitudes(amps)
		sampler, err := core.NewPrefixSampler(probs)
		if err != nil {
			return row, err
		}
		if err := sampleSink(ctx, sampler, seed, shots); err != nil {
			if mark, ok := cell(err); ok {
				vecCol, vecTime = mark, mark
				row.VectorStatus = mark
			} else {
				return row, err
			}
		} else {
			elapsed := time.Since(start)
			vecTime = fmt.Sprintf("%.2f", elapsed.Seconds())
			vecCol = fmt.Sprintf("2^%d", c.NQubits)
			row.VectorStatus = "ok"
			row.VectorSeconds = elapsed.Seconds()
		}
	}

	// DD-based column, live walk: precompute branch probabilities (a no-op
	// under L2 normalization) and draw the samples by pointer traversal of
	// the live diagram — the pre-freeze baseline.
	start := time.Now()
	ddSampler, err := core.NewDDSampler(m, state)
	if err != nil {
		return row, err
	}
	ddSize := fmt.Sprintf("%6d ≈2^%-4.1f", nodeCount, math.Log2(float64(nodeCount)))
	var ddTime string
	if err := sampleSink(ctx, ddSampler, seed, shots); err != nil {
		if mark, ok := cell(err); ok {
			ddTime = mark
			row.DDStatus = mark
		} else {
			return row, err
		}
	} else {
		elapsed := time.Since(start)
		ddTime = fmt.Sprintf("%.2f", elapsed.Seconds())
		row.DDStatus = "ok"
		row.DDSeconds = elapsed.Seconds()
	}

	// Frozen column: freeze the state into an immutable snapshot once, then
	// draw the same batch by lock-free walks over the flat arrays, sharded
	// across the worker pool. The printed time covers freeze + sampling.
	freezeStart := time.Now()
	snap, err := m.Freeze(state)
	if err != nil {
		return row, err
	}
	row.FreezeSeconds = time.Since(freezeStart).Seconds()
	frozen, err := core.NewFrozenSampler(snap)
	if err != nil {
		return row, err
	}
	var frzTime, speedup string
	start = time.Now()
	if err := parallelSampleSink(ctx, frozen, seed, shots, workers); err != nil {
		if mark, ok := cell(err); ok {
			frzTime = mark
			row.DDFrozenStatus = mark
		} else {
			return row, err
		}
	} else {
		elapsed := time.Since(start)
		row.DDFrozenStatus = "ok"
		row.DDFrozenSeconds = elapsed.Seconds()
		frzTime = fmt.Sprintf("%.2f", row.FreezeSeconds+row.DDFrozenSeconds)
		if row.DDSeconds > 0 && row.DDFrozenSeconds > 0 {
			row.DDSpeedup = row.DDSeconds / row.DDFrozenSeconds
			speedup = fmt.Sprintf("%.2fx", row.DDSpeedup)
		}
	}

	fmt.Printf("%-18s %6d | %8s %10s | %12s %9s %9s %6s | %9.2f %6.2f\n",
		name, c.NQubits, vecCol, vecTime, ddSize, ddTime, frzTime, speedup, simTime.Seconds(), row.UniqueProbeLen)
	return row, nil
}

// sampleSink draws shots samples into a throwaway sink, checking the
// context every core.CtxCheckShots samples so a per-row timeout turns into
// a TO cell instead of a hung table.
func sampleSink(ctx context.Context, sampler core.Sampler, seed uint64, shots int) error {
	r := rng.New(seed)
	var sink uint64
	for i := 0; i < shots; i++ {
		if i%core.CtxCheckShots == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		sink ^= sampler.Sample(r)
	}
	_ = sink
	return nil
}

// parallelSampleSink is sampleSink sharded across a worker pool: worker k
// draws its quota from rng.Stream(seed, k) into a goroutine-local sink. The
// sampler must be safe for concurrent use (core.FrozenSampler is). With
// workers <= 1 it falls back to the sequential sink so single-worker timings
// stay directly comparable to the live column.
func parallelSampleSink(ctx context.Context, sampler core.Sampler, seed uint64, shots, workers int) error {
	if workers <= 1 {
		return sampleSink(ctx, sampler, seed, shots)
	}
	if workers > shots {
		workers = shots
	}
	base, rem := shots/workers, shots%workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		quota := base
		if k < rem {
			quota++
		}
		wg.Add(1)
		go func(k, quota int) {
			defer wg.Done()
			r := rng.Stream(seed, k)
			var sink uint64
			for i := 0; i < quota; i++ {
				if i%core.CtxCheckShots == 0 && ctx.Err() != nil {
					errs[k] = ctx.Err()
					return
				}
				sink ^= sampler.Sample(r)
			}
			_ = sink
		}(k, quota)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
