package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestResolveJSONOut(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2026, 8, 6, 12, 34, 56, 0, time.UTC)
	stamp := "BENCH_20260806T123456.json"

	t.Run("empty means disabled", func(t *testing.T) {
		path, err := resolveJSONOut("", now)
		if err != nil || path != "" {
			t.Fatalf("got (%q, %v), want empty/no error", path, err)
		}
	})

	t.Run("explicit path kept verbatim", func(t *testing.T) {
		want := filepath.Join(dir, "run.json")
		path, err := resolveJSONOut(want, now)
		if err != nil || path != want {
			t.Fatalf("got (%q, %v), want %q", path, err, want)
		}
	})

	t.Run("bare auto lands in cwd", func(t *testing.T) {
		path, err := resolveJSONOut("auto", now)
		if err != nil {
			t.Fatal(err)
		}
		if path != stamp {
			t.Fatalf("got %q, want %q", path, stamp)
		}
	})

	t.Run("auto respects the output directory", func(t *testing.T) {
		path, err := resolveJSONOut(filepath.Join(dir, "auto"), now)
		if err != nil {
			t.Fatal(err)
		}
		if want := filepath.Join(dir, stamp); path != want {
			t.Fatalf("got %q, want %q", path, want)
		}
	})

	t.Run("timestamp is pinned at startup", func(t *testing.T) {
		a, _ := resolveJSONOut("auto", now)
		b, _ := resolveJSONOut("auto", now.Add(3*time.Hour))
		if a == b {
			t.Fatalf("different start times produced the same name %q", a)
		}
	})

	t.Run("missing directory fails up front", func(t *testing.T) {
		_, err := resolveJSONOut(filepath.Join(dir, "nope", "auto"), now)
		if err == nil {
			t.Fatal("nonexistent directory accepted")
		}
	})

	t.Run("file in the directory position fails", func(t *testing.T) {
		file := filepath.Join(dir, "plainfile")
		if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := resolveJSONOut(filepath.Join(file, "auto"), now)
		if err == nil {
			t.Fatal("regular file accepted as output directory")
		}
		if !strings.Contains(err.Error(), "-json-out") {
			t.Fatalf("error %q does not name the flag", err)
		}
	})

	t.Run("probe leaves no residue", func(t *testing.T) {
		sub := filepath.Join(dir, "clean")
		if err := os.Mkdir(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := resolveJSONOut(filepath.Join(sub, "auto"), now); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("probe left %d file(s) behind", len(entries))
		}
	})
}

func TestWriteJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	doc := benchDoc{
		GeneratedAt: "2026-08-06T12:00:00Z",
		Shots:       1000,
		Seed:        7,
		Norm:        "l2phase",
		Workers:     2,
		Rows: []benchRow{
			{Name: "qft_16", Qubits: 16, Status: "ok", DDSpeedup: 2.2},
			{Name: "supremacy_5x5_10", Status: "MO"},
		},
	}
	if err := writeJSON(path, &doc); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back benchDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Shots != 1000 || len(back.Rows) != 2 || back.Rows[0].Name != "qft_16" {
		t.Fatalf("round trip mangled the document: %+v", back)
	}
	if back.Rows[1].Status != "MO" || back.Rows[1].DDSpeedup != 0 {
		t.Fatalf("MO row mangled: %+v", back.Rows[1])
	}
}
