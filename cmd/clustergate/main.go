// Command clustergate is the CI gate for the replica-cluster tier. It boots
// three real weaksimd replicas in-process plus a cluster router over them,
// then drives the lifecycle the cluster exists for:
//
//   - cold: each distinct circuit is strongly simulated exactly once
//     fleet-wide and lands on its ring primary;
//   - warm: repeat requests are cache hits on the same primary with
//     bit-for-bit identical counts, and snapshot shipping has already put a
//     warm copy on each circuit's ring secondary;
//   - failover: one replica is killed in the middle of concurrent load, and
//     every single client request still succeeds — circuits primaried on
//     the corpse are served warm elsewhere from the shipped snapshot, so
//     the fleet-wide strong-simulation count never moves;
//   - ejection: the health prober removes the dead replica from the ring
//     within its probe window and /v1/cluster reports it unhealthy.
//
// Zero non-governance errors are tolerated: any status other than 200, at
// any point, fails the gate. Run via `make cluster-gate`. Exit code 0 means
// the contract holds.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"time"

	"weaksim/internal/cluster"
	"weaksim/internal/obs"
	"weaksim/internal/serve"
)

const (
	nReplicas = 3
	nCircuits = 6 // ghz_3 .. ghz_8
	loadIters = 120
	loaders   = 6
)

type replica struct {
	srv  *serve.Server
	reg  *obs.Registry
	name string
}

func main() {
	if err := gate(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-gate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cluster-gate: OK")
}

func circuitReq(i int) string {
	return fmt.Sprintf(`{"circuit":"ghz_%d","shots":256,"seed":17}`, 3+i)
}

type sampleResp struct {
	Counts map[string]int `json:"counts"`
	Cached bool           `json:"cached"`
}

// sample posts one request through the router and insists on HTTP 200 —
// the gate's core invariant is that clients never see an error.
func sample(routerAddr, body string) (sampleResp, string, error) {
	resp, err := http.Post("http://"+routerAddr+"/v1/sample", "application/json",
		strings.NewReader(body))
	if err != nil {
		return sampleResp{}, "", fmt.Errorf("post: %w", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return sampleResp{}, "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var out sampleResp
	if err := json.Unmarshal(raw, &out); err != nil {
		return sampleResp{}, "", fmt.Errorf("decode: %w", err)
	}
	return out, resp.Header.Get("X-Weaksim-Backend"), nil
}

func totalSims(reps []*replica) uint64 {
	var n uint64
	for _, r := range reps {
		n += r.reg.Counter("serve_sims_total").Value()
	}
	return n
}

func gate() error {
	var reps []*replica
	var names []string
	for i := 0; i < nReplicas; i++ {
		reg := obs.NewRegistry()
		srv := serve.New(serve.Config{Addr: "127.0.0.1:0", Metrics: reg})
		if err := srv.Start(); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		defer srv.Close()
		reps = append(reps, &replica{srv: srv, reg: reg, name: "http://" + srv.Addr()})
		names = append(names, srv.Addr())
	}
	router, err := cluster.NewRouter(cluster.Config{
		Addr:          "127.0.0.1:0",
		Backends:      names,
		ReplicaCount:  1,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailThreshold: 2,
		MaxBackoff:    250 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := router.Start(); err != nil {
		return err
	}
	defer router.Close()

	// Phase 1 — cold: every circuit simulates exactly once, somewhere.
	baseline := make([]map[string]int, nCircuits)
	primary := make([]string, nCircuits)
	for i := 0; i < nCircuits; i++ {
		got, backend, err := sample(router.Addr(), circuitReq(i))
		if err != nil {
			return fmt.Errorf("cold request %d: %w", i, err)
		}
		if got.Cached {
			return fmt.Errorf("cold request %d reported cached", i)
		}
		baseline[i], primary[i] = got.Counts, backend
	}
	if got := totalSims(reps); got != nCircuits {
		return fmt.Errorf("cold phase ran %d strong simulations, want %d", got, nCircuits)
	}

	// Shipping settles before the warm phase so failover targets are warm.
	router.Quiesce()
	if got := router.Metrics().Counter("cluster_ship_installed_total").Value(); got != nCircuits {
		return fmt.Errorf("shipped %d snapshots, want %d (one ring secondary each)", got, nCircuits)
	}

	// Phase 2 — warm: repeat requests are deterministic cache hits pinned to
	// the same primary.
	for i := 0; i < nCircuits; i++ {
		got, backend, err := sample(router.Addr(), circuitReq(i))
		if err != nil {
			return fmt.Errorf("warm request %d: %w", i, err)
		}
		if !got.Cached {
			return fmt.Errorf("warm request %d not served from cache", i)
		}
		if backend != primary[i] {
			return fmt.Errorf("warm request %d moved %s -> %s", i, primary[i], backend)
		}
		if !reflect.DeepEqual(got.Counts, baseline[i]) {
			return fmt.Errorf("warm request %d: counts diverged", i)
		}
	}
	if got := totalSims(reps); got != nCircuits {
		return fmt.Errorf("warm phase re-simulated: %d sims, want %d", got, nCircuits)
	}

	// Phase 3 — kill the primary of circuit 0 in the middle of concurrent
	// load. Every request must still return 200 with baseline counts.
	var victim *replica
	for _, r := range reps {
		if r.name == primary[0] {
			victim = r
		}
	}
	if victim == nil {
		return fmt.Errorf("unknown primary %q", primary[0])
	}
	var wg sync.WaitGroup
	errc := make(chan error, loaders)
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < loadIters; it++ {
				i := (w + it) % nCircuits
				got, backend, err := sample(router.Addr(), circuitReq(i))
				if err != nil {
					errc <- fmt.Errorf("load (worker %d iter %d circuit %d): %w", w, it, i, err)
					return
				}
				if !reflect.DeepEqual(got.Counts, baseline[i]) {
					errc <- fmt.Errorf("load: circuit %d counts diverged on %s", i, backend)
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let the load ramp before the kill
	if err := victim.srv.Close(); err != nil {
		return fmt.Errorf("killing %s: %w", victim.name, err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err
	}
	if got := totalSims(reps); got != nCircuits {
		return fmt.Errorf("failover re-simulated: %d sims after the kill, want still %d "+
			"(dead replica's circuits must be served from shipped snapshots)", got, nCircuits)
	}
	if fo := router.Metrics().Counter("cluster_failovers_total").Value(); fo == 0 {
		return fmt.Errorf("no failover recorded though the primary of circuit 0 was killed mid-load")
	}

	// Phase 4 — the prober ejects the corpse and /v1/cluster says so.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + router.Addr() + "/v1/cluster")
		if err != nil {
			return fmt.Errorf("cluster status: %w", err)
		}
		var st struct {
			Backends []struct {
				Name    string `json:"name"`
				Healthy bool   `json:"healthy"`
			} `json:"backends"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode cluster status: %w", err)
		}
		ejected := false
		for _, b := range st.Backends {
			if b.Name == victim.name && !b.Healthy {
				ejected = true
			}
		}
		if ejected {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dead replica %s never ejected by the prober", victim.name)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if _, _, err := sample(router.Addr(), circuitReq(0)); err != nil {
		return fmt.Errorf("post-ejection request: %w", err)
	}
	return nil
}
