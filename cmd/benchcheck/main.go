// Command benchcheck is the CI benchmark regression gate. It re-runs the
// frozen-sampling benchmark a few times, takes the per-benchmark minimum
// (the least-noisy statistic for a throughput benchmark), and compares it
// against the committed baseline in BENCH_FROZEN.txt. Any benchmark more
// than -tolerance slower than its baseline fails the gate.
//
// Usage:
//
//	benchcheck                            # run + compare with defaults
//	benchcheck -tolerance 0.25 -count 3
//	benchcheck -input bench.out           # compare pre-captured output
//
// The tool is deliberately forgiving in one direction: benchmarks present
// in the current run but missing from the baseline are reported and
// skipped, so adding a new benchmark never breaks the gate — committing a
// new baseline row is what arms it. Getting faster never fails.
//
// The baseline was captured on one specific machine; the default 25%
// tolerance absorbs scheduler noise on comparable hardware, not a change
// of CPU generation. The committed baseline carries -count 3 rows per
// benchmark and is folded with max() — the slowest committed known-good
// run — while the current side is folded with min(). The gate therefore
// fires only when even the best of 3 fresh runs is more than -tolerance
// slower than the worst run that was acceptable at commit time, which is
// what keeps a 25% tolerance usable on shared hosts whose throughput
// drifts between runs. When the fleet changes or the host drifts,
// regenerate the baseline with `make bench-frozen > BENCH_FROZEN.txt`
// (and keep its commentary).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches a `go test -bench` result row, e.g.
//
//	BenchmarkSampleFrozen/qft_16/fast-8   200000   261.5 ns/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines with
// different core counts compare against the same baseline name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// foldMode decides how repeated rows for the same benchmark collapse to a
// single ns/op value.
type foldMode int

const (
	// foldMin keeps the fastest repetition — the least-noisy statistic
	// for a throughput benchmark. Used for the current run.
	foldMin foldMode = iota
	// foldMax keeps the slowest repetition — the noisiest run that was
	// still considered good when the baseline was committed. Used for the
	// baseline.
	foldMax
)

// parseBench extracts one ns/op value per benchmark name from `go test
// -bench` output, folding repeated rows (from -count N) per fold. Comparing
// the current minimum against the baseline maximum makes the gate fire only
// when even the best current run is more than -tolerance slower than the
// slowest committed known-good run; that asymmetry is what keeps a tight
// tolerance usable on hosts whose schedulers drift between fast and slow
// modes from one minute to the next.
func parseBench(r io.Reader, fold foldMode) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		cur, ok := out[m[1]]
		if !ok || (fold == foldMin && ns < cur) || (fold == foldMax && ns > cur) {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// row is one gate comparison.
type row struct {
	Name      string
	Base      float64 // baseline ns/op
	Cur       float64 // current min ns/op
	Ratio     float64 // Cur / Base
	Regressed bool
	Missing   bool // present now, absent from the baseline
}

// compare evaluates every current benchmark whose name contains match
// against the baseline, flagging regressions beyond tolerance (e.g. 0.25 =
// 25% slower).
func compare(base, cur map[string]float64, match string, tolerance float64) []row {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if strings.Contains(name, match) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, name := range names {
		r := row{Name: name, Cur: cur[name]}
		b, ok := base[name]
		if !ok {
			r.Missing = true
		} else {
			r.Base = b
			r.Ratio = r.Cur / b
			r.Regressed = r.Cur > b*(1+tolerance)
		}
		rows = append(rows, r)
	}
	return rows
}

// report prints the comparison table and returns an error when the gate
// fails (a regression, or nothing to compare at all).
func report(w io.Writer, rows []row, tolerance float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("no benchmarks matched; gate has nothing to check")
	}
	failed := 0
	compared := 0
	for _, r := range rows {
		switch {
		case r.Missing:
			fmt.Fprintf(w, "SKIP %-55s %9.1f ns/op (no baseline row; commit one to arm the gate)\n", r.Name, r.Cur)
		case r.Regressed:
			failed++
			compared++
			fmt.Fprintf(w, "FAIL %-55s %9.1f -> %9.1f ns/op (%.2fx > %.2fx allowed)\n",
				r.Name, r.Base, r.Cur, r.Ratio, 1+tolerance)
		default:
			compared++
			fmt.Fprintf(w, "ok   %-55s %9.1f -> %9.1f ns/op (%.2fx)\n", r.Name, r.Base, r.Cur, r.Ratio)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark had a baseline row; gate has nothing to check")
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", failed, tolerance*100)
	}
	return nil
}

// runBench executes the benchmark subprocess and returns its combined
// output. -count N in a single invocation yields N rows per benchmark, which
// parseBench folds with min() on the current side.
func runBench(gotool, pkg, pattern, benchtime string, count int) ([]byte, error) {
	cmd := exec.Command(gotool, "test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return out, fmt.Errorf("%s test -bench: %w\n%s", gotool, err, out)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "BENCH_FROZEN.txt", "committed baseline file (go test -bench output)")
		pattern   = fs.String("bench", "BenchmarkSampleFrozen", "benchmark pattern to run and gate on")
		benchtime = fs.String("benchtime", "2000000x", "per-run benchtime (fixed iteration counts keep runs comparable; ~0.2-0.7s per row averages over scheduler jitter)")
		count     = fs.Int("count", 3, "benchmark repetitions; the minimum ns/op is compared against the baseline's maximum")
		tolerance = fs.Float64("tolerance", 0.25, "allowed slowdown vs baseline (0.25 = 25%)")
		pkg       = fs.String("pkg", ".", "package holding the benchmarks")
		gotool    = fs.String("go", "go", "go tool to invoke")
		input     = fs.String("input", "", "pre-captured go test -bench output; skips running the benchmarks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseFile, err := os.Open(*baseline)
	if err != nil {
		return fmt.Errorf("open baseline: %w", err)
	}
	defer baseFile.Close()
	base, err := parseBench(baseFile, foldMax)
	if err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s holds no benchmark rows", *baseline)
	}

	var raw []byte
	if *input != "" {
		raw, err = os.ReadFile(*input)
		if err != nil {
			return fmt.Errorf("read input: %w", err)
		}
	} else {
		fmt.Fprintf(stdout, "benchcheck: running %s (count=%d, benchtime=%s)...\n", *pattern, *count, *benchtime)
		raw, err = runBench(*gotool, *pkg, *pattern, *benchtime, *count)
		if err != nil {
			return err
		}
	}
	cur, err := parseBench(strings.NewReader(string(raw)), foldMin)
	if err != nil {
		return fmt.Errorf("parse current run: %w", err)
	}
	return report(stdout, compare(base, cur, strings.TrimPrefix(*pattern, "^"), *tolerance), *tolerance)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
