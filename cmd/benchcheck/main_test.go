package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: weaksim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSampleFrozen/qft_16/fast-8        200000   261.5 ns/op
BenchmarkSampleFrozen/qft_16/fast-8        200000   255.0 ns/op
BenchmarkSampleFrozen/qft_16/fast-8        200000   270.9 ns/op
BenchmarkSampleFrozen/jellium_2x2/fast     200000    96.03 ns/op
BenchmarkSampleLive/qft_16/fast-8          200000   271.3 ns/op
PASS
ok   weaksim 2.918s
`

func TestParseBenchMinOf(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput), foldMin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// Repeated rows fold to the minimum; the -8 suffix is stripped.
	if ns := got["BenchmarkSampleFrozen/qft_16/fast"]; ns != 255.0 {
		t.Fatalf("min-of = %v, want 255.0", ns)
	}
	if ns := got["BenchmarkSampleFrozen/jellium_2x2/fast"]; ns != 96.03 {
		t.Fatalf("jellium = %v, want 96.03", ns)
	}
}

func TestParseBenchMaxOf(t *testing.T) {
	// The baseline side keeps the slowest committed repetition.
	got, err := parseBench(strings.NewReader(sampleOutput), foldMax)
	if err != nil {
		t.Fatal(err)
	}
	if ns := got["BenchmarkSampleFrozen/qft_16/fast"]; ns != 270.9 {
		t.Fatalf("max-of = %v, want 270.9", ns)
	}
	if ns := got["BenchmarkSampleFrozen/jellium_2x2/fast"]; ns != 96.03 {
		t.Fatalf("single row = %v, want 96.03", ns)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]float64{
		"BenchmarkSampleFrozen/a": 100,
		"BenchmarkSampleFrozen/b": 100,
		"BenchmarkSampleLive/x":   100,
	}
	cur := map[string]float64{
		"BenchmarkSampleFrozen/a": 120, // within 25%
		"BenchmarkSampleFrozen/b": 130, // regressed
		"BenchmarkSampleFrozen/c": 999, // no baseline -> skipped
		"BenchmarkSampleLive/x":   500, // filtered out by match
	}
	rows := compare(base, cur, "BenchmarkSampleFrozen", 0.25)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["BenchmarkSampleFrozen/a"].Regressed {
		t.Fatal("a flagged despite being within tolerance")
	}
	if !byName["BenchmarkSampleFrozen/b"].Regressed {
		t.Fatal("b not flagged at 30% slowdown")
	}
	if !byName["BenchmarkSampleFrozen/c"].Missing {
		t.Fatal("c should be marked missing from baseline")
	}

	var buf bytes.Buffer
	if err := report(&buf, rows, 0.25); err == nil {
		t.Fatal("report did not fail with a regression present")
	}
	out := buf.String()
	for _, want := range []string{"ok   BenchmarkSampleFrozen/a", "FAIL BenchmarkSampleFrozen/b", "SKIP BenchmarkSampleFrozen/c"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportNeedsComparableRows(t *testing.T) {
	var buf bytes.Buffer
	if err := report(&buf, nil, 0.25); err == nil {
		t.Fatal("empty row set must fail the gate")
	}
	onlyMissing := []row{{Name: "BenchmarkSampleFrozen/new", Cur: 10, Missing: true}}
	if err := report(&buf, onlyMissing, 0.25); err == nil {
		t.Fatal("all-missing row set must fail the gate")
	}
}

func TestRunWithInputFile(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.txt")
	input := filepath.Join(dir, "cur.txt")
	if err := os.WriteFile(baseline, []byte(
		"BenchmarkSampleFrozen/a 1000 100.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	// Pass: 10% slower is inside the default tolerance.
	if err := os.WriteFile(input, []byte(
		"BenchmarkSampleFrozen/a 1000 110.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", baseline, "-input", input}, &out, &errBuf); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out.String())
	}

	// Fail: 50% slower trips the gate.
	if err := os.WriteFile(input, []byte(
		"BenchmarkSampleFrozen/a 1000 150.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", baseline, "-input", input}, &out, &errBuf); err == nil {
		t.Fatal("50% regression passed the gate")
	}

	// Missing baseline file is a clean error, not a panic.
	if err := run([]string{"-baseline", filepath.Join(dir, "nope.txt"), "-input", input}, &out, &errBuf); err == nil {
		t.Fatal("missing baseline accepted")
	}

	// The asymmetric fold: baseline keeps its slowest row (120), the
	// current run its fastest (140) — 1.17x, inside the gate even though
	// 140 vs the baseline's best row would be 1.40x.
	if err := os.WriteFile(baseline, []byte(
		"BenchmarkSampleFrozen/a 1000 100.0 ns/op\n"+
			"BenchmarkSampleFrozen/a 1000 120.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(input, []byte(
		"BenchmarkSampleFrozen/a 1000 160.0 ns/op\n"+
			"BenchmarkSampleFrozen/a 1000 140.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", baseline, "-input", input}, &out, &errBuf); err != nil {
		t.Fatalf("min-vs-max comparison failed: %v\n%s", err, out.String())
	}
}
