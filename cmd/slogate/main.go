// Command slogate is the CI smoke gate for the daemon's observability
// surface. It boots a real weaksimd server in-process on an ephemeral port,
// drives one cold and one warm request through it, and asserts the
// request-tracing / SLO / flight-recorder contract:
//
//   - every response (success, error, GET endpoints) carries a well-formed
//     X-Weaksim-Trace-Id header;
//   - an inbound W3C traceparent header is adopted as the trace ID;
//   - ?debug=1 on a cold request yields a phase breakdown covering parse,
//     queue, build, apply, freeze, and sample;
//   - the warm request is a cache hit whose breakdown has no build phase;
//   - /v1/slo is well-formed: fast/slow windows per endpoint, the fast-burn
//     threshold, and a tally that saw the requests just made;
//   - /v1/stats reports interpolated endpoint percentiles;
//   - /debug/flight streams valid JSONL with the requests' serve spans.
//
// Run via `make slo-gate`. Exit code 0 means the contract holds.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"

	"weaksim/internal/obs"
	"weaksim/internal/serve"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

func main() {
	if err := gate(); err != nil {
		fmt.Fprintln(os.Stderr, "slo-gate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("slo-gate: OK")
}

func fetch(method, url string, body []byte, hdr map[string]string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw, err
}

// sampleResp mirrors the fields of the /v1/sample body the gate checks.
type sampleResp struct {
	Counts map[string]int `json:"counts"`
	Shots  int            `json:"shots"`
	Cached bool           `json:"cached"`
	Trace  *struct {
		TraceID string           `json:"trace_id"`
		PhaseNS map[string]int64 `json:"phase_ns"`
	} `json:"trace"`
}

func gate() error {
	srv := serve.New(serve.Config{Addr: "127.0.0.1:0", Metrics: obs.NewRegistry()})
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	needTrace := func(what string, hdr http.Header) (string, error) {
		id := hdr.Get("X-Weaksim-Trace-Id")
		if !traceIDRe.MatchString(id) {
			return "", fmt.Errorf("%s: X-Weaksim-Trace-Id %q is not 32 lowercase hex digits", what, id)
		}
		return id, nil
	}

	// Cold request, ?debug=1: the phase breakdown must cover the pipeline.
	body := []byte(`{"circuit":"qft_8","shots":20000,"seed":7}`)
	status, hdr, raw, err := fetch(http.MethodPost, base+"/v1/sample?debug=1", body, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cold sample: status %d: %s", status, raw)
	}
	coldID, err := needTrace("cold sample", hdr)
	if err != nil {
		return err
	}
	var cold sampleResp
	if err := json.Unmarshal(raw, &cold); err != nil {
		return fmt.Errorf("cold sample body: %w", err)
	}
	if cold.Cached {
		return fmt.Errorf("cold sample answered from cache")
	}
	if cold.Trace == nil || cold.Trace.TraceID != coldID {
		return fmt.Errorf("cold sample debug trace missing or mismatched (header %s)", coldID)
	}
	for _, phase := range []string{"parse", "queue", "build", "apply", "freeze", "sample"} {
		if _, ok := cold.Trace.PhaseNS[phase]; !ok {
			return fmt.Errorf("cold breakdown missing phase %q: %v", phase, cold.Trace.PhaseNS)
		}
	}
	if cold.Trace.PhaseNS["sample"] <= 0 {
		return fmt.Errorf("cold breakdown has zero-length sample phase: %v", cold.Trace.PhaseNS)
	}

	// Warm request with an inbound traceparent: cache hit, adopted trace ID,
	// no simulation phases.
	const inbound = "0af7651916cd43dd8448eb211c80319c"
	status, hdr, raw, err = fetch(http.MethodPost, base+"/v1/sample?debug=1", body, map[string]string{
		"traceparent": "00-" + inbound + "-b7ad6b7169203331-01",
	})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("warm sample: status %d: %s", status, raw)
	}
	warmID, err := needTrace("warm sample", hdr)
	if err != nil {
		return err
	}
	if warmID != inbound {
		return fmt.Errorf("warm sample did not adopt inbound traceparent: got %s want %s", warmID, inbound)
	}
	var warm sampleResp
	if err := json.Unmarshal(raw, &warm); err != nil {
		return fmt.Errorf("warm sample body: %w", err)
	}
	if !warm.Cached {
		return fmt.Errorf("warm sample was not a cache hit")
	}
	if warm.Trace == nil || warm.Trace.PhaseNS["build"] != 0 {
		return fmt.Errorf("warm breakdown shows simulation work: %+v", warm.Trace)
	}

	// Errors carry the header too.
	status, hdr, _, err = fetch(http.MethodPost, base+"/v1/sample", []byte(`{"qasm":"nope"}`), nil)
	if err != nil {
		return err
	}
	if status != http.StatusBadRequest {
		return fmt.Errorf("bad request: status %d", status)
	}
	if _, err := needTrace("bad request", hdr); err != nil {
		return err
	}

	// /v1/slo: well-formed, and it saw the traffic above.
	status, hdr, raw, err = fetch(http.MethodGet, base+"/v1/slo", nil, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/v1/slo: status %d", status)
	}
	if _, err := needTrace("/v1/slo", hdr); err != nil {
		return err
	}
	var slo struct {
		WindowSeconds map[string]int64 `json:"window_seconds"`
		BurnThreshold float64          `json:"fast_burn_threshold"`
		SLOs          []struct {
			Endpoint string `json:"endpoint"`
			Windows  map[string]struct {
				Requests         uint64  `json:"requests"`
				AvailabilityBurn float64 `json:"availability_burn"`
				LatencyBurn      float64 `json:"latency_burn"`
			} `json:"windows"`
		} `json:"slos"`
	}
	if err := json.Unmarshal(raw, &slo); err != nil {
		return fmt.Errorf("/v1/slo body: %w", err)
	}
	if slo.WindowSeconds["5m"] != 300 || slo.WindowSeconds["1h"] != 3600 || slo.BurnThreshold <= 0 {
		return fmt.Errorf("/v1/slo malformed: windows %v threshold %v", slo.WindowSeconds, slo.BurnThreshold)
	}
	sawSample := false
	for _, s := range slo.SLOs {
		fast, ok5 := s.Windows["5m"]
		_, ok1 := s.Windows["1h"]
		if !ok5 || !ok1 {
			return fmt.Errorf("/v1/slo endpoint %s missing windows", s.Endpoint)
		}
		if s.Endpoint == "/v1/sample" {
			sawSample = true
			if fast.Requests < 2 {
				return fmt.Errorf("/v1/slo did not tally the sample requests: %+v", fast)
			}
		}
	}
	if !sawSample {
		return fmt.Errorf("/v1/slo has no /v1/sample objective")
	}

	// /v1/stats: interpolated endpoint percentiles present and monotone.
	status, _, raw, err = fetch(http.MethodGet, base+"/v1/stats", nil, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/v1/stats: status %d", status)
	}
	var stats struct {
		Endpoints map[string]struct {
			Requests uint64  `json:"requests"`
			P50MS    float64 `json:"p50_ms"`
			P95MS    float64 `json:"p95_ms"`
			P99MS    float64 `json:"p99_ms"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		return fmt.Errorf("/v1/stats body: %w", err)
	}
	ep, ok := stats.Endpoints["/v1/sample"]
	if !ok || ep.Requests < 2 || ep.P50MS <= 0 || ep.P95MS < ep.P50MS || ep.P99MS < ep.P95MS {
		return fmt.Errorf("/v1/stats endpoint percentiles malformed: %+v", stats.Endpoints)
	}

	// /debug/flight: valid JSONL carrying the requests' serve spans.
	status, _, raw, err = fetch(http.MethodGet, base+"/debug/flight", nil, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/debug/flight: status %d", status)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	records, sawServe := 0, false
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("/debug/flight record %d: %w", records, err)
		}
		if rec["kind"] == "span" && rec["name"] == "/v1/sample" {
			sawServe = true
		}
		records++
	}
	if records == 0 || !sawServe {
		return fmt.Errorf("/debug/flight: %d records, sawServe=%v", records, sawServe)
	}
	return nil
}
