package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readMetrics parses a -metrics-out document and fails the test if the file
// is missing or malformed — satellite requirement: the telemetry JSON must be
// written and parseable on every outcome, failed runs included.
func readMetrics(t *testing.T, path string) metricsFile {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	var doc metricsFile
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("metrics file not parseable: %v\n%s", err, b)
	}
	return doc
}

func TestRunSuccessExitOK(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	err := run([]string{"-bench", "qft_8", "-shots", "5", "-metrics-out", mpath}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code := exitCode(err); code != exitOK {
		t.Fatalf("exit code = %d, want %d", code, exitOK)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 5 {
		t.Fatalf("printed %d sample lines, want 5", lines)
	}
	doc := readMetrics(t, mpath)
	if doc.Status != "ok" || doc.Circuit != "qft_8" || doc.Qubits != 8 {
		t.Fatalf("metrics doc header wrong: %+v", doc)
	}
	if doc.Telemetry == nil {
		t.Fatal("metrics doc missing telemetry")
	}
	if doc.Telemetry.Backend != "dd" || doc.Telemetry.PeakNodes <= 0 {
		t.Fatalf("telemetry incomplete: %+v", doc.Telemetry)
	}
	if doc.Telemetry.PhaseNS["build"] <= 0 || doc.Telemetry.PhaseNS["apply"] <= 0 {
		t.Fatalf("phase timings missing: %v", doc.Telemetry.PhaseNS)
	}
	for _, kind := range []string{"unique_v", "unique_m", "cache_mul", "cnum_intern"} {
		if _, ok := doc.Telemetry.HitRates[kind]; !ok {
			t.Errorf("hit rate %q missing: %v", kind, doc.Telemetry.HitRates)
		}
	}
}

func TestRunMemoryOutExit3(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	err := run([]string{"-bench", "qft_16", "-dd-node-budget", "40", "-metrics-out", mpath},
		io.Discard, io.Discard)
	if err == nil {
		t.Fatal("budgeted run succeeded")
	}
	if code := exitCode(err); code != exitMO {
		t.Fatalf("exit code = %d (%v), want %d (MO)", code, err, exitMO)
	}
	doc := readMetrics(t, mpath)
	if doc.Status != "MO" {
		t.Fatalf("status = %q, want MO", doc.Status)
	}
	if doc.Error == "" {
		t.Fatal("MO doc carries no error string")
	}
	if doc.Telemetry == nil || doc.Telemetry.PeakNodes <= 0 {
		t.Fatalf("MO doc lost its telemetry: %+v", doc.Telemetry)
	}
}

func TestRunTimeoutExit4(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	err := run([]string{"-bench", "grover_14", "-timeout", "1ns", "-metrics-out", mpath},
		io.Discard, io.Discard)
	if err == nil {
		t.Fatal("1ns-deadline run succeeded")
	}
	if code := exitCode(err); code != exitTimeout {
		t.Fatalf("exit code = %d (%v), want %d (TO)", code, err, exitTimeout)
	}
	doc := readMetrics(t, mpath)
	if doc.Status != "TO" {
		t.Fatalf("status = %q, want TO", doc.Status)
	}
	if doc.Telemetry == nil {
		t.Fatal("TO doc lost its telemetry")
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{}, // neither -bench nor -qasm
		{"-bench", "x", "-qasm", "y"},
		{"-bench", "qft_8", "-method", "nope"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		err := run(args, io.Discard, io.Discard)
		if code := exitCode(err); code != exitUsage {
			t.Errorf("run(%v): exit code = %d (%v), want %d", args, code, err, exitUsage)
		}
	}
}

func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	tpath := filepath.Join(dir, "t.jsonl")
	err := run([]string{"-bench", "qft_8", "-shots", "1", "-trace-out", tpath, "-trace-every", "8"},
		io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) == 0 {
		t.Fatal("trace file empty")
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
	}
}

func TestRunAutoDegradesWithReportStatus(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	// Vector tier too small for 16 qubits → falls back to DD, which fits.
	err := run([]string{"-bench", "qft_16", "-auto", "-vector-budget", "4",
		"-shots", "1", "-metrics-out", mpath}, io.Discard, io.Discard)
	if err != nil {
		t.Fatalf("auto run failed: %v", err)
	}
	doc := readMetrics(t, mpath)
	if doc.Status != "ok" || doc.Telemetry.Backend != "dd" {
		t.Fatalf("auto degradation not reflected: status=%q backend=%q", doc.Status, doc.Telemetry.Backend)
	}
}
