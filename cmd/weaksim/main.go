// Command weaksim runs weak simulation end to end: it builds a benchmark
// circuit (or reads OpenQASM 2.0), strongly simulates it on the decision-
// diagram backend, and prints measurement samples — the output a physical
// quantum computer would produce.
//
// Usage:
//
//	weaksim -bench qft_16 -shots 20 -seed 7
//	weaksim -bench shor_33_2 -shots 1000 -top 8
//	weaksim -qasm circuit.qasm -method prefix -shots 100
//	weaksim -bench running_example -render -histogram
//	weaksim -bench qft_20 -shots 100000 -verify      # chi-square self-check
//	weaksim -bench shor_55_2 -exact-top 8 -shots 0   # exact modes, no sampling
//	weaksim -bench running_example -dot state.dot    # Graphviz of the DD
//
// Telemetry:
//
//	weaksim -bench qft_32 -metrics-out run.json      # per-phase timings, peak
//	                                                 # nodes, cache hit rates
//	weaksim -bench grover_20 -trace-out run.jsonl -trace-every 100
//	weaksim -bench supremacy_4x4_10 -debug-addr localhost:6060
//	                                                 # live /metrics + pprof
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"weaksim"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/core"
	"weaksim/internal/stats"
)

// Exit codes. Resource exhaustion and timeouts are distinguishable so
// harnesses can record the paper's "MO"/"TO" cells from the exit status.
const (
	exitOK      = 0
	exitError   = 1 // any other failure
	exitUsage   = 2 // bad flags or arguments (flag package also uses 2)
	exitMO      = 3 // memory out: vector budget or DD node budget exceeded
	exitTimeout = 4 // timed out or cancelled (-timeout)
)

// errUsage marks command-line usage errors (exit code 2).
var errUsage = errors.New("usage error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weaksim:", err)
	}
	os.Exit(exitCode(err))
}

func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case weaksim.IsMemoryOut(err):
		return exitMO
	case weaksim.IsTimeout(err):
		return exitTimeout
	case errors.Is(err, errUsage):
		return exitUsage
	default:
		return exitError
	}
}

// exitLabel names an exit code the way the paper's Table I does.
func exitLabel(code int) string {
	switch code {
	case exitOK:
		return "ok"
	case exitMO:
		return "MO"
	case exitTimeout:
		return "TO"
	case exitUsage:
		return "usage"
	default:
		return "error"
	}
}

// metricsFile is the -metrics-out JSON document: run identity, outcome, and
// the telemetry digest (per-phase durations, peak nodes, hit rates, full
// counter dump). It is written on every exit path once the circuit loaded —
// MO and TO runs included, so harnesses can mine failed rows.
type metricsFile struct {
	Circuit   string             `json:"circuit"`
	Qubits    int                `json:"qubits"`
	Ops       int                `json:"ops"`
	Depth     int                `json:"depth"`
	Method    string             `json:"method"`
	Norm      string             `json:"norm"`
	Shots     int                `json:"shots"`
	Seed      uint64             `json:"seed"`
	Status    string             `json:"status"` // ok | MO | TO | error
	Error     string             `json:"error,omitempty"`
	Telemetry *weaksim.Telemetry `json:"telemetry"`
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("weaksim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench      = fs.String("bench", "", "benchmark name (qft_A, grover_A, shor_N_a, jellium_AxA, supremacy_AxB_D, running_example)")
		qasmFile   = fs.String("qasm", "", "OpenQASM 2.0 file to simulate instead of a named benchmark")
		shots      = fs.Int("shots", 16, "number of measurement samples to draw")
		seed       = fs.Uint64("seed", 1, "random seed (equal seeds reproduce samples exactly)")
		workers    = fs.Int("workers", 1, "worker goroutines for batch sampling over the frozen state snapshot (0 = GOMAXPROCS); equal seeds and worker counts reproduce counts exactly")
		method     = fs.String("method", "dd", "sampling method: dd, prefix, linear, or alias")
		norm       = fs.String("norm", "l2phase", "DD normalization scheme: left, l2, or l2phase")
		top        = fs.Int("top", 0, "print only the k most frequent outcomes as a histogram")
		histogram  = fs.Bool("histogram", false, "aggregate shots into a histogram instead of listing them")
		render     = fs.Bool("render", false, "print the circuit diagram before simulating")
		showStats  = fs.Bool("stats", true, "print state size and timing statistics")
		budget     = fs.Int("vector-budget", 0, "max qubits for dense sampling methods (0 = default 26)")
		verify     = fs.Bool("verify", false, "chi-square the samples against the exact distribution (needs the state to fit the vector budget)")
		dotFile    = fs.String("dot", "", "write the final state's decision diagram as Graphviz DOT to this file")
		exactTop   = fs.Int("exact-top", 0, "print the k most probable outcomes exactly (no sampling, works beyond the vector budget)")
		list       = fs.Bool("list", false, "list the paper's Table I benchmark names and exit")
		timeout    = fs.Duration("timeout", 0, "bound total wall-clock time; exceeding it exits with code 4 (TO)")
		ddBudget   = fs.Int("dd-node-budget", 0, "max live decision-diagram nodes; exceeding it exits with code 3 (MO). 0 = unlimited")
		auto       = fs.Bool("auto", false, "use the degradation planner: vector backend first, DD on MO, approximation under -min-fidelity")
		minFid     = fs.Float64("min-fidelity", 0, "with -auto: allow DD approximation under node-budget pressure down to this fidelity floor (0 = exact only)")
		metricsOut = fs.String("metrics-out", "", "write a machine-readable telemetry summary (phase timings, peak nodes, cache hit rates) as JSON to this file; written even on MO/TO")
		traceOut   = fs.String("trace-out", "", "write structured trace events (phase spans, per-op events, GC, governance steps) as JSONL to this file")
		traceEvery = fs.Int("trace-every", 1, "with -trace-out: emit only one in every N per-op events (phase spans are never throttled)")
		debugAddr  = fs.String("debug-addr", "", "serve live Prometheus /metrics, expvar /debug/vars, and /debug/pprof on this address while running")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage of weaksim:\n")
		fs.PrintDefaults()
		fmt.Fprint(fs.Output(), `
Exit codes:
  0  success
  1  simulation error
  2  usage error
  3  resource budget exceeded — vector memory or DD node budget (the paper's MO)
  4  timed out under -timeout (the paper's TO)
`)
	}
	if perr := fs.Parse(args); perr != nil {
		return fmt.Errorf("%w: %v", errUsage, perr)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, name := range weaksim.TableIBenchmarks() {
			fmt.Fprintln(stdout, name)
		}
		fmt.Fprintln(stdout, "(plus: qpe via the API; ghz_A, wstate_A, bv_A, dj_A_constant,")
		fmt.Fprintln(stdout, " dj_A_balanced, shor_gates_N_a, running_example, figure1)")
		return nil
	}

	c, err := loadCircuit(*bench, *qasmFile)
	if err != nil {
		return err
	}
	if *render {
		fmt.Fprint(stdout, c.Render())
	}

	m, err := weaksim.ParseMethod(*method)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	normScheme, err := parseNorm(*norm)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	// Telemetry attachments. The registry exists whenever any export
	// surface wants it; the tracer only with -trace-out.
	var reg *weaksim.Metrics
	if *metricsOut != "" || *debugAddr != "" {
		reg = weaksim.NewMetrics()
	}
	var tracer *weaksim.Tracer
	if *traceOut != "" {
		tf, terr := os.Create(*traceOut)
		if terr != nil {
			return terr
		}
		defer func() {
			if cerr := tf.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		tracer = weaksim.NewJSONLTracer(tf, *traceEvery)
	}
	if *debugAddr != "" {
		reg.PublishExpvar("weaksim")
		srv, serr := weaksim.ServeDebug(*debugAddr, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "debug server: http://%s/metrics (+ /debug/pprof, /debug/vars)\n", srv.Addr)
	}

	var state *weaksim.State
	var report *weaksim.RunReport
	if *metricsOut != "" {
		// Written on every exit path from here on — MO/TO/error included —
		// so the telemetry of failed rows survives.
		defer func() {
			werr := writeMetricsFile(*metricsOut, metricsFile{
				Circuit: c.Name, Qubits: c.NQubits, Ops: c.NumOps(), Depth: c.Depth(),
				Method: m.String(), Norm: normScheme.String(), Shots: *shots, Seed: *seed,
				Status:    exitLabel(exitCode(err)),
				Error:     errString(err),
				Telemetry: pickTelemetry(state, report, reg),
			})
			if werr != nil && err == nil {
				err = werr
			}
		}()
	}

	opts := []weaksim.Option{
		weaksim.WithSeed(*seed),
		weaksim.WithMethod(m),
		weaksim.WithNormalization(normScheme),
		weaksim.WithWorkers(*workers),
		weaksim.WithMetrics(reg),
		weaksim.WithTracer(tracer),
	}
	if *budget > 0 {
		opts = append(opts, weaksim.WithVectorBudget(*budget))
	}
	if *ddBudget > 0 {
		opts = append(opts, weaksim.WithNodeBudget(*ddBudget))
	}
	if *minFid > 0 {
		opts = append(opts, weaksim.WithMinFidelity(*minFid))
	}

	start := time.Now()
	if *auto {
		state, report, err = weaksim.SimulateAuto(ctx, c, opts...)
		if report != nil && *showStats {
			fmt.Fprintln(stderr, report)
		}
	} else {
		state, err = weaksim.SimulateContext(ctx, c, opts...)
	}
	if err != nil {
		return fmt.Errorf("strong simulation: %w", err)
	}
	simTime := time.Since(start)

	if *exactTop > 0 {
		top, terr := state.TopOutcomes(*exactTop)
		if terr != nil {
			return terr
		}
		for _, o := range top {
			fmt.Fprintf(stdout, "%s  %.6g\n", o.Bits, o.Probability)
		}
	}

	if *dotFile != "" {
		f, ferr := os.Create(*dotFile)
		if ferr != nil {
			return ferr
		}
		if werr := state.WriteDOT(f, c.Name); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
	}

	start = time.Now()
	sampler, err := state.Sampler()
	if err != nil {
		return fmt.Errorf("sampler setup: %w", err)
	}
	setupTime := time.Since(start)

	start = time.Now()
	var indexCounts map[uint64]int
	switch {
	case *verify:
		indexCounts, err = sampler.CountsByIndexContext(ctx, *shots)
		if err != nil {
			return fmt.Errorf("sampling: %w", err)
		}
		if *histogram || *top > 0 {
			counts := make(map[string]int, len(indexCounts))
			for idx, n := range indexCounts {
				counts[core.FormatBits(idx, c.NQubits)] = n
			}
			printHistogram(stdout, counts, *shots, *top)
		}
	case *histogram || *top > 0:
		counts, cerr := sampler.CountsContext(ctx, *shots)
		if cerr != nil {
			return fmt.Errorf("sampling: %w", cerr)
		}
		printHistogram(stdout, counts, *shots, *top)
	default:
		for i := 0; i < *shots; i++ {
			if i%core.CtxCheckShots == 0 && ctx.Err() != nil {
				return fmt.Errorf("sampling: interrupted after %d/%d shots: %w", i, *shots, ctx.Err())
			}
			fmt.Fprintln(stdout, sampler.Shot())
		}
	}
	sampleTime := time.Since(start)

	if *verify {
		probs, perr := state.Probabilities()
		if perr != nil {
			return fmt.Errorf("verification needs the exact distribution: %w", perr)
		}
		res, serr := stats.ChiSquareGOF(indexCounts, probs, *shots)
		if serr != nil {
			return serr
		}
		verdict := "indistinguishable from the exact distribution"
		if res.PValue < 0.001 {
			verdict = "REJECTED at significance 0.001"
		}
		fmt.Fprintf(stderr, "chi-square: stat=%.2f dof=%d p=%.4g — samples %s\n",
			res.Statistic, res.DoF, res.PValue, verdict)
	}

	if *showStats {
		fmt.Fprintf(stderr, "circuit %s: %d qubits, %d ops, depth %d\n", c.Name, c.NQubits, c.NumOps(), c.Depth())
		fmt.Fprintf(stderr, "final state: %d DD nodes (state space 2^%d)\n", state.NodeCount(), c.NQubits)
		if n := sampler.SnapshotNodes(); n > 0 {
			fmt.Fprintf(stderr, "frozen snapshot: %d nodes, %d sampling workers\n", n, sampler.Workers())
		}
		fmt.Fprintf(stderr, "strong simulation %v, sampler setup %v, %d samples %v (%s method)\n",
			simTime.Round(time.Microsecond), setupTime.Round(time.Microsecond),
			*shots, sampleTime.Round(time.Microsecond), m)
	}
	return nil
}

// pickTelemetry chooses the richest telemetry source that survived the run:
// the final state, the governance report, or the bare registry.
func pickTelemetry(state *weaksim.State, report *weaksim.RunReport, reg *weaksim.Metrics) *weaksim.Telemetry {
	switch {
	case state != nil:
		return state.Telemetry()
	case report != nil && report.Telemetry != nil:
		return report.Telemetry
	default:
		return weaksim.SummarizeMetrics(reg)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func writeMetricsFile(path string, doc metricsFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadCircuit(bench, qasmFile string) (*weaksim.Circuit, error) {
	switch {
	case bench != "" && qasmFile != "":
		return nil, fmt.Errorf("%w: pass either -bench or -qasm, not both", errUsage)
	case bench != "":
		return weaksim.GenerateBenchmark(bench)
	case qasmFile != "":
		src, err := os.ReadFile(qasmFile)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(qasmFile, ".qasm")
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		return qasm.Parse(string(src), name)
	default:
		return nil, fmt.Errorf("%w: pass -bench <name> or -qasm <file>; available benchmarks include %s",
			errUsage, strings.Join(weaksim.TableIBenchmarks(), ", "))
	}
}

func parseNorm(s string) (weaksim.Norm, error) {
	switch s {
	case "left":
		return weaksim.NormLeft, nil
	case "l2":
		return weaksim.NormL2, nil
	case "l2phase":
		return weaksim.NormL2Phase, nil
	}
	return 0, fmt.Errorf("unknown normalization %q (want left, l2, or l2phase)", s)
}

func printHistogram(w io.Writer, counts map[string]int, shots, top int) {
	type entry struct {
		bits string
		n    int
	}
	entries := make([]entry, 0, len(counts))
	for bits, n := range counts {
		entries = append(entries, entry{bits, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].bits < entries[j].bits
	})
	if top > 0 && top < len(entries) {
		entries = entries[:top]
	}
	for _, e := range entries {
		frac := float64(e.n) / float64(shots)
		bar := strings.Repeat("#", int(frac*50+0.5))
		fmt.Fprintf(w, "%s %8d  %6.2f%% %s\n", e.bits, e.n, 100*frac, bar)
	}
}
