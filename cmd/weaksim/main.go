// Command weaksim runs weak simulation end to end: it builds a benchmark
// circuit (or reads OpenQASM 2.0), strongly simulates it on the decision-
// diagram backend, and prints measurement samples — the output a physical
// quantum computer would produce.
//
// Usage:
//
//	weaksim -bench qft_16 -shots 20 -seed 7
//	weaksim -bench shor_33_2 -shots 1000 -top 8
//	weaksim -qasm circuit.qasm -method prefix -shots 100
//	weaksim -bench running_example -render -histogram
//	weaksim -bench qft_20 -shots 100000 -verify      # chi-square self-check
//	weaksim -bench shor_55_2 -exact-top 8 -shots 0   # exact modes, no sampling
//	weaksim -bench running_example -dot state.dot    # Graphviz of the DD
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"weaksim"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/core"
	"weaksim/internal/stats"
)

// Exit codes. Resource exhaustion and timeouts are distinguishable so
// harnesses can record the paper's "MO"/"TO" cells from the exit status.
const (
	exitOK      = 0
	exitError   = 1 // any other failure
	exitUsage   = 2 // bad flags or arguments (flag package also uses 2)
	exitMO      = 3 // memory out: vector budget or DD node budget exceeded
	exitTimeout = 4 // timed out or cancelled (-timeout)
)

// errUsage marks command-line usage errors (exit code 2).
var errUsage = errors.New("usage error")

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "weaksim:", err)
	}
	os.Exit(exitCode(err))
}

func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, weaksim.ErrMemoryOut), errors.Is(err, weaksim.ErrNodeBudget):
		return exitMO
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitTimeout
	case errors.Is(err, errUsage):
		return exitUsage
	default:
		return exitError
	}
}

func run() error {
	var (
		bench     = flag.String("bench", "", "benchmark name (qft_A, grover_A, shor_N_a, jellium_AxA, supremacy_AxB_D, running_example)")
		qasmFile  = flag.String("qasm", "", "OpenQASM 2.0 file to simulate instead of a named benchmark")
		shots     = flag.Int("shots", 16, "number of measurement samples to draw")
		seed      = flag.Uint64("seed", 1, "random seed (equal seeds reproduce samples exactly)")
		method    = flag.String("method", "dd", "sampling method: dd, prefix, linear, or alias")
		norm      = flag.String("norm", "l2phase", "DD normalization scheme: left, l2, or l2phase")
		top       = flag.Int("top", 0, "print only the k most frequent outcomes as a histogram")
		histogram = flag.Bool("histogram", false, "aggregate shots into a histogram instead of listing them")
		render    = flag.Bool("render", false, "print the circuit diagram before simulating")
		showStats = flag.Bool("stats", true, "print state size and timing statistics")
		budget    = flag.Int("vector-budget", 0, "max qubits for dense sampling methods (0 = default 26)")
		verify    = flag.Bool("verify", false, "chi-square the samples against the exact distribution (needs the state to fit the vector budget)")
		dotFile   = flag.String("dot", "", "write the final state's decision diagram as Graphviz DOT to this file")
		exactTop  = flag.Int("exact-top", 0, "print the k most probable outcomes exactly (no sampling, works beyond the vector budget)")
		list      = flag.Bool("list", false, "list the paper's Table I benchmark names and exit")
		timeout   = flag.Duration("timeout", 0, "bound total wall-clock time; exceeding it exits with code 4 (TO)")
		ddBudget  = flag.Int("dd-node-budget", 0, "max live decision-diagram nodes; exceeding it exits with code 3 (MO). 0 = unlimited")
		auto      = flag.Bool("auto", false, "use the degradation planner: vector backend first, DD on MO, approximation under -min-fidelity")
		minFid    = flag.Float64("min-fidelity", 0, "with -auto: allow DD approximation under node-budget pressure down to this fidelity floor (0 = exact only)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), `
Exit codes:
  0  success
  1  simulation error
  2  usage error
  3  resource budget exceeded — vector memory or DD node budget (the paper's MO)
  4  timed out under -timeout (the paper's TO)
`)
	}
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, name := range weaksim.TableIBenchmarks() {
			fmt.Println(name)
		}
		fmt.Println("(plus: qpe via the API; ghz_A, wstate_A, bv_A, dj_A_constant,")
		fmt.Println(" dj_A_balanced, shor_gates_N_a, running_example, figure1)")
		return nil
	}

	c, err := loadCircuit(*bench, *qasmFile)
	if err != nil {
		return err
	}
	if *render {
		fmt.Print(c.Render())
	}

	m, err := weaksim.ParseMethod(*method)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	normScheme, err := parseNorm(*norm)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	opts := []weaksim.Option{
		weaksim.WithSeed(*seed),
		weaksim.WithMethod(m),
		weaksim.WithNormalization(normScheme),
	}
	if *budget > 0 {
		opts = append(opts, weaksim.WithVectorBudget(*budget))
	}
	if *ddBudget > 0 {
		opts = append(opts, weaksim.WithNodeBudget(*ddBudget))
	}
	if *minFid > 0 {
		opts = append(opts, weaksim.WithMinFidelity(*minFid))
	}

	start := time.Now()
	var state *weaksim.State
	if *auto {
		var report *weaksim.RunReport
		state, report, err = weaksim.SimulateAuto(ctx, c, opts...)
		if report != nil && *showStats {
			fmt.Fprintln(os.Stderr, report)
		}
	} else {
		state, err = weaksim.SimulateContext(ctx, c, opts...)
	}
	if err != nil {
		return fmt.Errorf("strong simulation: %w", err)
	}
	simTime := time.Since(start)

	if *exactTop > 0 {
		top, err := state.TopOutcomes(*exactTop)
		if err != nil {
			return err
		}
		for _, o := range top {
			fmt.Printf("%s  %.6g\n", o.Bits, o.Probability)
		}
	}

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			return err
		}
		if err := state.WriteDOT(f, c.Name); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	start = time.Now()
	sampler, err := state.Sampler()
	if err != nil {
		return fmt.Errorf("sampler setup: %w", err)
	}
	setupTime := time.Since(start)

	start = time.Now()
	var indexCounts map[uint64]int
	switch {
	case *verify:
		indexCounts, err = sampler.CountsByIndexContext(ctx, *shots)
		if err != nil {
			return fmt.Errorf("sampling: %w", err)
		}
		if *histogram || *top > 0 {
			counts := make(map[string]int, len(indexCounts))
			for idx, n := range indexCounts {
				counts[core.FormatBits(idx, c.NQubits)] = n
			}
			printHistogram(counts, *shots, *top)
		}
	case *histogram || *top > 0:
		counts, err := sampler.CountsContext(ctx, *shots)
		if err != nil {
			return fmt.Errorf("sampling: %w", err)
		}
		printHistogram(counts, *shots, *top)
	default:
		for i := 0; i < *shots; i++ {
			if i%core.CtxCheckShots == 0 && ctx.Err() != nil {
				return fmt.Errorf("sampling: interrupted after %d/%d shots: %w", i, *shots, ctx.Err())
			}
			fmt.Println(sampler.Shot())
		}
	}
	sampleTime := time.Since(start)

	if *verify {
		probs, err := state.Probabilities()
		if err != nil {
			return fmt.Errorf("verification needs the exact distribution: %w", err)
		}
		res, err := stats.ChiSquareGOF(indexCounts, probs, *shots)
		if err != nil {
			return err
		}
		verdict := "indistinguishable from the exact distribution"
		if res.PValue < 0.001 {
			verdict = "REJECTED at significance 0.001"
		}
		fmt.Fprintf(os.Stderr, "chi-square: stat=%.2f dof=%d p=%.4g — samples %s\n",
			res.Statistic, res.DoF, res.PValue, verdict)
	}

	if *showStats {
		fmt.Fprintf(os.Stderr, "circuit %s: %d qubits, %d ops, depth %d\n", c.Name, c.NQubits, c.NumOps(), c.Depth())
		fmt.Fprintf(os.Stderr, "final state: %d DD nodes (state space 2^%d)\n", state.NodeCount(), c.NQubits)
		fmt.Fprintf(os.Stderr, "strong simulation %v, sampler setup %v, %d samples %v (%s method)\n",
			simTime.Round(time.Microsecond), setupTime.Round(time.Microsecond),
			*shots, sampleTime.Round(time.Microsecond), m)
	}
	return nil
}

func loadCircuit(bench, qasmFile string) (*weaksim.Circuit, error) {
	switch {
	case bench != "" && qasmFile != "":
		return nil, fmt.Errorf("%w: pass either -bench or -qasm, not both", errUsage)
	case bench != "":
		return weaksim.GenerateBenchmark(bench)
	case qasmFile != "":
		src, err := os.ReadFile(qasmFile)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(qasmFile, ".qasm")
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		return qasm.Parse(string(src), name)
	default:
		return nil, fmt.Errorf("%w: pass -bench <name> or -qasm <file>; available benchmarks include %s",
			errUsage, strings.Join(weaksim.TableIBenchmarks(), ", "))
	}
}

func parseNorm(s string) (weaksim.Norm, error) {
	switch s {
	case "left":
		return weaksim.NormLeft, nil
	case "l2":
		return weaksim.NormL2, nil
	case "l2phase":
		return weaksim.NormL2Phase, nil
	}
	return 0, fmt.Errorf("unknown normalization %q (want left, l2, or l2phase)", s)
}

func printHistogram(counts map[string]int, shots, top int) {
	type entry struct {
		bits string
		n    int
	}
	entries := make([]entry, 0, len(counts))
	for bits, n := range counts {
		entries = append(entries, entry{bits, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].bits < entries[j].bits
	})
	if top > 0 && top < len(entries) {
		entries = entries[:top]
	}
	for _, e := range entries {
		frac := float64(e.n) / float64(shots)
		bar := strings.Repeat("#", int(frac*50+0.5))
		fmt.Printf("%s %8d  %6.2f%% %s\n", e.bits, e.n, 100*frac, bar)
	}
}
