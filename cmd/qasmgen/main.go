// Command qasmgen emits benchmark circuits as OpenQASM 2.0 for use with
// other toolchains, or renders them as ASCII diagrams.
//
// Usage:
//
//	qasmgen -bench qft_8                  # QASM on stdout
//	qasmgen -bench supremacy_4x4_10 -o supremacy.qasm
//	qasmgen -bench figure1 -render       # ASCII diagram instead of QASM
//
// Benchmarks whose operations have no OpenQASM 2.0 form (Shor's modular
// arithmetic, Grover's wide multi-controlled oracles) report an error.
package main

import (
	"flag"
	"fmt"
	"os"

	"weaksim/internal/algo"
	"weaksim/internal/circuit/qasm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qasmgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bench  = flag.String("bench", "", "benchmark name to generate")
		out    = flag.String("o", "", "output file (default stdout)")
		render = flag.Bool("render", false, "print an ASCII circuit diagram instead of QASM")
	)
	flag.Parse()
	if *bench == "" {
		return fmt.Errorf("pass -bench <name>")
	}
	c, err := algo.Generate(*bench)
	if err != nil {
		return err
	}
	var text string
	if *render {
		text = c.Render()
	} else {
		text, err = qasm.Write(c)
		if err != nil {
			return err
		}
	}
	if *out == "" {
		fmt.Print(text)
		return nil
	}
	return os.WriteFile(*out, []byte(text), 0o644)
}
