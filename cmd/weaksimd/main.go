// Command weaksimd is the sampling daemon: weak simulation as a service.
// It accepts circuits over HTTP/JSON (OpenQASM 2.0 source or named
// benchmark circuits) and returns measurement counts, caching frozen state
// snapshots so each distinct circuit is strongly simulated at most once and
// every further request costs only O(n)-per-shot lock-free sampling.
//
// Usage:
//
//	weaksimd -addr :8080
//	weaksimd -addr :8080 -dd-node-budget 2000000 -cache-bytes 268435456
//	weaksimd -addr :8080 -debug-addr localhost:6060   # /metrics + pprof
//	weaksimd -addr :8080 -snapshot-dir /var/lib/weaksim  # warm restarts
//
// Example session:
//
//	curl -s localhost:8080/v1/sample -d '{"circuit":"qft_16","shots":1000,"seed":7}'
//	curl -s localhost:8080/v1/sample -d '{"qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];","shots":100}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/slo      # burn rates + error budgets
//	curl -s localhost:8080/debug/flight  # recent-span ring as JSONL
//
// Every response carries X-Weaksim-Trace-Id. Requests may supply a W3C
// traceparent header to join an existing distributed trace, and ?debug=1 on
// /v1/sample echoes the per-phase latency breakdown in the JSON body.
// -flight-dir additionally dumps the recent-span ring to disk whenever the
// daemon trips on a panic, an injected fault, or an SLO fast-burn breach.
//
// Status codes mirror the resource-governance ladder: 507 when the DD node
// budget is exceeded (the paper's MO), 504 on a blown deadline (TO), 429
// with Retry-After when the simulation admission queue is full, 503 while
// draining. SIGINT/SIGTERM trigger a graceful drain bounded by
// -drain-timeout.
//
// Probes are split: /healthz is liveness (200 for as long as the process
// answers HTTP, even mid-drain; restart on failure) and /readyz is
// readiness (503 from the moment a drain begins; stop routing on failure).
//
// With -snapshot-dir, every frozen snapshot is also persisted to a
// crash-safe on-disk store (atomic rename writes, CRC-64 trailer) and
// loaded back on start, so a restarted daemon answers previously seen
// circuits without re-running strong simulation. Files failing the CRC or
// the DD invariant audit are quarantined as *.corrupt and re-simulated.
//
// With -jobs-dir, the daemon also runs durable batch jobs (POST /v1/jobs):
// shots are sampled in checkpointed chunks under a WAL, so a crash or kill
// loses at most one in-flight chunk per job and a restart resumes every
// job with final counts bit-identical to an uninterrupted run.
// -job-workers sizes the chunk executor, -job-chunk-shots the checkpoint
// granularity, -job-tenant-weights the fair-share split, and
// -job-max-per-tenant the per-tenant active-job quota (429 beyond it).
//
// On startup the daemon logs one JSON line of the fully-resolved effective
// config ({"event":"effective_config",...}) for field debugging.
//
// -fault (or $WEAKSIM_FAULT) arms the deterministic fault-injection
// framework for chaos testing; never set it in production.
//
// With -cluster, the same binary runs as a cluster router instead of a
// replica: it consistent-hashes each circuit's canonical key over the
// backend fleet (-backends and/or a watched -backends-file), health-checks
// replicas via /readyz, fails over on transport errors and 502/503 (never
// on the deterministic 507/504 governance verdicts, never on 500), and
// ships frozen snapshots between replicas over GET/PUT /v1/snapshot/{hash}
// so a circuit is strongly simulated at most once fleet-wide:
//
//	weaksimd -addr :8080                              # replica 1..N
//	weaksimd -cluster -addr :9090 -backends host1:8080,host2:8080
//	weaksimd -cluster -addr :9090 -backends-file /etc/weaksim/backends.txt
//	curl -s localhost:9090/v1/cluster                 # ring + health view
//
// Simulation flags (-dd-node-budget, -cache-bytes, -queue, ...) are
// replica-side and ignored by a router; -norm must match the replicas so
// the router keys circuits exactly as they cache them.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"weaksim/internal/cluster"
	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/job"
	"weaksim/internal/obs"
	"weaksim/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "weaksimd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. ready (replica mode) and clusterReady
// (router mode), when non-nil, receive the running server once it is up
// (tests use them to learn the bound address); stopCh, when non-nil,
// triggers the same graceful drain a SIGTERM would (tests cannot safely
// signal the shared test process).
func run(args []string, stdout, stderr io.Writer, ready chan<- *serve.Server, clusterReady chan<- *cluster.Router, stopCh <-chan struct{}) error {
	fs := flag.NewFlagSet("weaksimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address (\":0\" = ephemeral)")
		debugAddr   = fs.String("debug-addr", "", "optional debug server address (/metrics, /metrics.json, expvar, pprof)")
		norm        = fs.String("norm", "l2phase", "DD normalization scheme: left, l2, or l2phase")
		nodeBudget  = fs.Int("dd-node-budget", 0, "max live DD nodes per simulation; overruns return HTTP 507 (0 = unlimited)")
		cacheBytes  = fs.Int64("cache-bytes", serve.DefaultCacheBytes, "frozen-snapshot LRU capacity in bytes")
		queueDepth  = fs.Int("queue", serve.DefaultQueueDepth, "simulation admission queue depth; a full queue returns HTTP 429")
		simWorkers  = fs.Int("sim-workers", 0, "strong-simulation worker pool size (0 = GOMAXPROCS)")
		maxWorkers  = fs.Int("max-sample-workers", 0, "per-request sampling worker cap (0 = GOMAXPROCS)")
		maxShots    = fs.Int("max-shots", serve.DefaultMaxShots, "per-request shot cap")
		timeout     = fs.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline; blown deadlines return HTTP 504")
		drain       = fs.Duration("drain-timeout", 15*time.Second, "graceful drain window after SIGTERM/SIGINT")
		snapshotDir = fs.String("snapshot-dir", "", "crash-safe snapshot store for warm restarts (empty = in-memory only)")
		flightDir   = fs.String("flight-dir", "", "directory for flight-recorder JSONL dumps on panic/fault/SLO breach (empty = /debug/flight only)")
		flightSlots = fs.Int("flight-slots", 0, "flight-recorder ring capacity in records (0 = default)")
		noTraces    = fs.Bool("no-request-traces", false, "disable per-request tracing (X-Weaksim-Trace-Id, debug=1 breakdowns)")
		faultSpec   = fs.String("fault", os.Getenv("WEAKSIM_FAULT"), "chaos-testing fault spec, e.g. \"dd.freeze:err@3,snapstore.write:corrupt@1\" (default $WEAKSIM_FAULT)")
		faultSeed   = fs.Uint64("fault-seed", 1, "deterministic seed for fault byte corruption")

		jobsDir       = fs.String("jobs-dir", "", "durable batch-job WAL directory; restarts resume every non-terminal job (empty = in-memory jobs)")
		jobWorkers    = fs.Int("job-workers", job.DefaultWorkers, "batch-job chunk executor pool size")
		jobChunkShots = fs.Int("job-chunk-shots", job.DefaultChunkShots, "default shots per batch-job checkpoint chunk")
		jobWeights    = fs.String("job-tenant-weights", "", "fair-share scheduler weights, e.g. \"acme=10,guest=1\" (unlisted tenants weigh 1)")
		jobMaxTenant  = fs.Int("job-max-per-tenant", job.DefaultMaxPerTenant, "active batch jobs per tenant before submissions answer HTTP 429")

		clusterMode   = fs.Bool("cluster", false, "run as a cluster router over a replica fleet instead of a replica")
		backends      = fs.String("backends", "", "cluster mode: comma-separated replica base URLs")
		backendsFile  = fs.String("backends-file", "", "cluster mode: watched membership file, one replica URL per line (#-comments ok)")
		ringReplicas  = fs.Int("ring-replicas", cluster.DefaultReplicaCount, "cluster mode: warm snapshot copies beyond the primary (also failover depth; -1 disables)")
		probeInterval = fs.Duration("probe-interval", cluster.DefaultProbeInterval, "cluster mode: /readyz health-probe cadence")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	normScheme, err := dd.ParseNorm(*norm)
	if err != nil {
		return err
	}
	tenantWeights, err := parseTenantWeights(*jobWeights)
	if err != nil {
		return err
	}
	logEffectiveConfig(stdout, fs, *clusterMode)
	if *faultSpec != "" {
		if err := fault.Enable(*faultSpec, *faultSeed); err != nil {
			return err
		}
		defer fault.Disable()
		fmt.Fprintf(stderr, "weaksimd: FAULT INJECTION ARMED: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	if *clusterMode {
		var list []string
		for _, b := range strings.Split(*backends, ",") {
			if s := strings.TrimSpace(b); s != "" {
				list = append(list, s)
			}
		}
		router, err := cluster.NewRouter(cluster.Config{
			Addr:           *addr,
			Backends:       list,
			BackendsFile:   *backendsFile,
			ReplicaCount:   *ringReplicas,
			ProbeInterval:  *probeInterval,
			Norm:           normScheme,
			RequestTimeout: *timeout,
			Metrics:        obs.NewRegistry(),
		})
		if err != nil {
			return err
		}
		if err := router.Start(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "weaksimd: cluster router listening on %s (norm %s, ring replicas %d)\n",
			router.Addr(), normScheme, *ringReplicas)
		if clusterReady != nil {
			clusterReady <- router
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		select {
		case <-ctx.Done():
		case <-stopCh:
		}
		stop()
		fmt.Fprintf(stdout, "weaksimd: draining (up to %v)...\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := router.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Fprintln(stdout, "weaksimd: bye")
		return nil
	}

	srv := serve.New(serve.Config{
		Addr:                 *addr,
		DebugAddr:            *debugAddr,
		Norm:                 normScheme,
		NodeBudget:           *nodeBudget,
		CacheBytes:           *cacheBytes,
		QueueDepth:           *queueDepth,
		SimWorkers:           *simWorkers,
		MaxSampleWorkers:     *maxWorkers,
		MaxShots:             *maxShots,
		RequestTimeout:       *timeout,
		SnapshotDir:          *snapshotDir,
		FlightDir:            *flightDir,
		FlightSlots:          *flightSlots,
		DisableRequestTraces: *noTraces,
		JobsDir:              *jobsDir,
		JobWorkers:           *jobWorkers,
		JobChunkShots:        *jobChunkShots,
		JobTenantWeights:     tenantWeights,
		JobMaxPerTenant:      *jobMaxTenant,
		Metrics:              obs.NewRegistry(),
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "weaksimd: listening on %s (norm %s, node budget %d, cache %d bytes)\n",
		srv.Addr(), normScheme, *nodeBudget, *cacheBytes)
	if *debugAddr != "" {
		fmt.Fprintf(stdout, "weaksimd: debug server on %s\n", *debugAddr)
	}
	if ready != nil {
		ready <- srv
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case <-stopCh:
	}
	stop()
	fmt.Fprintf(stdout, "weaksimd: draining (up to %v)...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "weaksimd: bye")
	return nil
}

// parseTenantWeights parses "-job-tenant-weights", a comma list of
// name=weight pairs with positive integer weights.
func parseTenantWeights(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("invalid tenant weight %q (want name=positive-integer)", part)
		}
		weights[name] = w
	}
	return weights, nil
}

// logEffectiveConfig emits one structured JSON line with every flag's
// fully-resolved value (defaults applied, overrides folded in), so a log
// scrape answers "what was this daemon actually running with" without
// reconstructing the command line.
func logEffectiveConfig(w io.Writer, fs *flag.FlagSet, clusterMode bool) {
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	mode := "replica"
	if clusterMode {
		mode = "cluster"
	}
	line, err := json.Marshal(map[string]any{
		"event": "effective_config",
		"mode":  mode,
		"flags": flags,
	})
	if err != nil {
		return
	}
	fmt.Fprintln(w, string(line))
}
