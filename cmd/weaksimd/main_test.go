package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"weaksim/internal/cluster"
	"weaksim/internal/serve"
)

func TestRunServesAndDrains(t *testing.T) {
	ready := make(chan *serve.Server, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out, errBuf bytes.Buffer
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"},
			&out, &errBuf, ready, nil, stop)
	}()
	var srv *serve.Server
	select {
	case srv = <-ready:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post("http://"+srv.Addr()+"/v1/sample", "application/json",
		strings.NewReader(`{"circuit":"ghz_2","shots":32,"seed":3}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var body struct {
		Counts map[string]int `json:"counts"`
		Cached bool           `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	total := 0
	for bits, n := range body.Counts {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible GHZ bitstring %q", bits)
		}
		total += n
	}
	if total != 32 {
		t.Fatalf("counts sum to %d, want 32", total)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	for _, want := range []string{"listening on", "draining", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-norm", "bogus"}, &out, &errBuf, nil, nil, nil); err == nil {
		t.Fatal("bad -norm accepted")
	}
	if err := run([]string{"positional"}, &out, &errBuf, nil, nil, nil); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-addr", "definitely:not:an:addr"}, &out, &errBuf, nil, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// bootDaemon starts the daemon body with the given extra flags and returns
// the running server plus a shutdown function that triggers a graceful drain
// and waits for run to exit.
func bootDaemon(t *testing.T, extra ...string) (*serve.Server, func()) {
	t.Helper()
	ready := make(chan *serve.Server, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out, errBuf bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, extra...)
	go func() { errc <- run(args, &out, &errBuf, ready, nil, stop) }()
	var srv *serve.Server
	select {
	case srv = <-ready:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	var once sync.Once
	shutdown := func() {
		once.Do(func() { close(stop) })
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}
	return srv, shutdown
}

func sampleDaemon(t *testing.T, srv *serve.Server, req string) (map[string]int, bool) {
	t.Helper()
	resp, err := http.Post("http://"+srv.Addr()+"/v1/sample", "application/json",
		strings.NewReader(req))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Counts map[string]int `json:"counts"`
		Cached bool           `json:"cached"`
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status=%d body=%s", resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return body.Counts, body.Cached
}

func daemonStats(t *testing.T, srv *serve.Server) (sims uint64) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Sims uint64 `json:"sims_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st.Sims
}

// TestRunKillAndRestartWarm is the kill-and-restart e2e: a daemon with a
// snapshot dir is stopped after simulating a circuit, a second daemon boots
// on the same dir, and the restarted process answers the same request with
// bit-for-bit identical counts and zero strong simulations.
func TestRunKillAndRestartWarm(t *testing.T) {
	dir := t.TempDir()
	const req = `{"circuit":"ghz_3","shots":512,"seed":9,"workers":2}`

	srv1, shutdown1 := bootDaemon(t, "-snapshot-dir", dir, "-max-sample-workers", "4")
	cold, cached := sampleDaemon(t, srv1, req)
	if cached {
		t.Fatal("first request reported cached on a cold daemon")
	}
	waitForSnapshotFile(t, dir, ".wsnap")
	shutdown1()

	srv2, shutdown2 := bootDaemon(t, "-snapshot-dir", dir, "-max-sample-workers", "4")
	defer shutdown2()
	warm, cached := sampleDaemon(t, srv2, req)
	if !cached {
		t.Fatal("restarted daemon did not serve from the warm snapshot store")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("counts changed across restart:\n  before %v\n  after  %v", cold, warm)
	}
	if sims := daemonStats(t, srv2); sims != 0 {
		t.Fatalf("restarted daemon ran %d strong simulations, want 0", sims)
	}
}

// TestRunRestartQuarantinesDamage damages the persisted snapshots on disk
// between restarts — one truncated, one bit-flipped — and checks the
// restarted daemon quarantines both as *.corrupt and transparently
// re-simulates with identical counts.
func TestRunRestartQuarantinesDamage(t *testing.T) {
	dir := t.TempDir()
	reqs := []string{
		`{"circuit":"ghz_3","shots":256,"seed":5}`,
		`{"circuit":"ghz_4","shots":256,"seed":5}`,
	}

	srv1, shutdown1 := bootDaemon(t, "-snapshot-dir", dir)
	counts := make([]map[string]int, len(reqs))
	for i, req := range reqs {
		counts[i], _ = sampleDaemon(t, srv1, req)
	}
	waitForSnapshotFile(t, dir, ".wsnap")
	shutdown1()

	files, err := filepath.Glob(filepath.Join(dir, "*.wsnap"))
	if err != nil || len(files) != 2 {
		t.Fatalf("want 2 stored snapshots, got %v (err %v)", files, err)
	}
	// Truncate the first file, flip a payload bit in the second.
	if err := os.Truncate(files[0], 10); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(files[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, shutdown2 := bootDaemon(t, "-snapshot-dir", dir)
	defer shutdown2()
	corrupt, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 2 {
		t.Fatalf("want 2 quarantined files after restart, got %v", corrupt)
	}
	if clean, _ := filepath.Glob(filepath.Join(dir, "*.wsnap")); len(clean) != 0 {
		t.Fatalf("damaged files still stored: %v", clean)
	}
	for i, req := range reqs {
		again, cached := sampleDaemon(t, srv2, req)
		if cached {
			t.Fatalf("request %d served from a quarantined snapshot", i)
		}
		if !reflect.DeepEqual(counts[i], again) {
			t.Fatalf("request %d: re-simulated counts diverged", i)
		}
	}
	if sims := daemonStats(t, srv2); sims != 2 {
		t.Fatalf("sims_total=%d after quarantine, want 2 re-simulations", sims)
	}
}

// waitForSnapshotFile waits for the best-effort persist to materialize a
// file with the given suffix.
func waitForSnapshotFile(t *testing.T, dir, suffix string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), suffix) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %s file appeared in %s", suffix, dir)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunFaultFlag checks the chaos flag end to end: an armed daemon
// advertises the spec on stderr and the injected fault surfaces through the
// governance ladder, then a clean daemon is unaffected.
func TestRunFaultFlag(t *testing.T) {
	ready := make(chan *serve.Server, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out, errBuf bytes.Buffer
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s",
			"-fault", "serve.queue.submit:err@1"}, &out, &errBuf, ready, nil, stop)
	}()
	var srv *serve.Server
	select {
	case srv = <-ready:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	defer func() {
		close(stop)
		<-errc
	}()
	if !strings.Contains(errBuf.String(), "FAULT INJECTION ARMED") {
		t.Fatalf("armed daemon did not warn on stderr: %q", errBuf.String())
	}
	resp, err := http.Post("http://"+srv.Addr()+"/v1/sample", "application/json",
		strings.NewReader(`{"circuit":"ghz_2","shots":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status=%d, want 429 from injected queue fault", resp.StatusCode)
	}
	resp, err = http.Post("http://"+srv.Addr()+"/v1/sample", "application/json",
		strings.NewReader(`{"circuit":"ghz_2","shots":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d after the fault window closed, want 200", resp.StatusCode)
	}
}

func TestParseTenantWeights(t *testing.T) {
	got, err := parseTenantWeights(" acme=10, guest=1 ,,bulk=3")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"acme": 10, "guest": 1, "bulk": 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseTenantWeights=%v, want %v", got, want)
	}
	if got, err := parseTenantWeights("  "); err != nil || got != nil {
		t.Fatalf("blank spec: got %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"acme", "acme=", "acme=0", "acme=-2", "=5", "acme=ten"} {
		if _, err := parseTenantWeights(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-job-tenant-weights", "acme=zero"}, &out, &errBuf, nil, nil, nil); err == nil {
		t.Fatal("bad -job-tenant-weights accepted by run")
	}
}

// TestRunEffectiveConfigLine checks the startup log's structured config
// line: one JSON object carrying the mode and every flag's resolved value,
// defaults and overrides alike.
func TestRunEffectiveConfigLine(t *testing.T) {
	ready := make(chan *serve.Server, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out, errBuf bytes.Buffer
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s",
			"-job-workers", "3", "-job-tenant-weights", "acme=10,guest=1"},
			&out, &errBuf, ready, nil, stop)
	}()
	select {
	case <-ready:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	defer func() {
		close(stop)
		<-errc
	}()

	var line string
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.Contains(l, `"event":"effective_config"`) {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no effective_config line on stdout:\n%s", out.String())
	}
	var cfg struct {
		Event string            `json:"event"`
		Mode  string            `json:"mode"`
		Flags map[string]string `json:"flags"`
	}
	if err := json.Unmarshal([]byte(line), &cfg); err != nil {
		t.Fatalf("config line is not valid JSON: %v\n%s", err, line)
	}
	if cfg.Mode != "replica" {
		t.Fatalf("mode=%q, want replica", cfg.Mode)
	}
	for flag, want := range map[string]string{
		"job-workers":        "3",               // override
		"job-tenant-weights": "acme=10,guest=1", // override
		"job-chunk-shots":    "65536",           // default, resolved
		"norm":               "l2phase",         // default, resolved
		"addr":               "127.0.0.1:0",
	} {
		if got := cfg.Flags[flag]; got != want {
			t.Errorf("flags[%q]=%q, want %q", flag, got, want)
		}
	}
}

// TestRunJobFlags boots the daemon with the batch-job flags and drives one
// job through the HTTP surface: submit, poll to completion, fetch the
// merged result.
func TestRunJobFlags(t *testing.T) {
	dir := t.TempDir()
	srv, shutdown := bootDaemon(t, "-jobs-dir", dir, "-job-workers", "2", "-job-chunk-shots", "512")
	defer shutdown()

	resp, err := http.Post("http://"+srv.Addr()+"/v1/jobs", "application/json",
		strings.NewReader(`{"circuit":"ghz_3","shots":2048,"seed":7}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID    string `json:"job_id"`
		State string `json:"state"`
	}
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status=%d body=%s", resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for st.State != "completed" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get("http://" + srv.Addr() + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	r, err := http.Get("http://" + srv.Addr() + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(r.Body)
		t.Fatalf("result status=%d body=%s", r.StatusCode, raw)
	}
	var res struct {
		Counts map[string]int `json:"counts"`
	}
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	total := 0
	for bits, n := range res.Counts {
		if bits != "000" && bits != "111" {
			t.Fatalf("impossible GHZ bitstring %q", bits)
		}
		total += n
	}
	if total != 2048 {
		t.Fatalf("counts sum to %d, want 2048", total)
	}
	// The WAL must have materialized in -jobs-dir.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.jlog"))
	if len(segs) == 0 {
		t.Fatalf("no WAL segment in %s", dir)
	}
}

// TestRunClusterMode boots two replica daemons plus a -cluster router over
// them and samples through the router: the response must come from a named
// backend, repeat warm from the same one, and the router must drain cleanly.
func TestRunClusterMode(t *testing.T) {
	rep1, shutdown1 := bootDaemon(t)
	defer shutdown1()
	rep2, shutdown2 := bootDaemon(t)
	defer shutdown2()

	clusterReady := make(chan *cluster.Router, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out, errBuf bytes.Buffer
	go func() {
		errc <- run([]string{"-cluster", "-addr", "127.0.0.1:0", "-drain-timeout", "5s",
			"-backends", rep1.Addr() + "," + rep2.Addr(), "-probe-interval", "50ms"},
			&out, &errBuf, nil, clusterReady, stop)
	}()
	var router *cluster.Router
	select {
	case router = <-clusterReady:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("router never became ready")
	}

	const req = `{"circuit":"ghz_4","shots":128,"seed":11}`
	var backendHeader string
	for i := 0; i < 2; i++ {
		resp, err := http.Post("http://"+router.Addr()+"/v1/sample", "application/json",
			strings.NewReader(req))
		if err != nil {
			t.Fatalf("post via router: %v", err)
		}
		var body struct {
			Counts map[string]int `json:"counts"`
			Cached bool           `json:"cached"`
		}
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("status=%d body=%s", resp.StatusCode, raw)
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		name := resp.Header.Get("X-Weaksim-Backend")
		if name == "" {
			t.Fatal("router response missing X-Weaksim-Backend")
		}
		if i == 0 {
			backendHeader = name
			if body.Cached {
				t.Fatal("cold request reported cached")
			}
		} else if name != backendHeader {
			t.Fatalf("repeat request moved backend: %s then %s", backendHeader, name)
		} else if !body.Cached {
			t.Fatal("repeat request not served warm")
		}
	}

	// Ignored replica-side flags must not break router startup, and the
	// router must refuse to start with no backends at all.
	if err := run([]string{"-cluster"}, &out, &errBuf, nil, nil, nil); err == nil {
		t.Fatal("-cluster with no backends accepted")
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain")
	}
	for _, want := range []string{"cluster router listening on", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}
