package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"weaksim/internal/serve"
)

func TestRunServesAndDrains(t *testing.T) {
	ready := make(chan *serve.Server, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out, errBuf bytes.Buffer
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"},
			&out, &errBuf, ready, stop)
	}()
	var srv *serve.Server
	select {
	case srv = <-ready:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post("http://"+srv.Addr()+"/v1/sample", "application/json",
		strings.NewReader(`{"circuit":"ghz_2","shots":32,"seed":3}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var body struct {
		Counts map[string]int `json:"counts"`
		Cached bool           `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	total := 0
	for bits, n := range body.Counts {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible GHZ bitstring %q", bits)
		}
		total += n
	}
	if total != 32 {
		t.Fatalf("counts sum to %d, want 32", total)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	for _, want := range []string{"listening on", "draining", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-norm", "bogus"}, &out, &errBuf, nil, nil); err == nil {
		t.Fatal("bad -norm accepted")
	}
	if err := run([]string{"positional"}, &out, &errBuf, nil, nil); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-addr", "definitely:not:an:addr"}, &out, &errBuf, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
