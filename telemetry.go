package weaksim

// Telemetry facade: re-exports of the internal/obs metrics registry and
// structured tracer, plus the per-circuit machine-readable summary that
// cmd/weaksim serializes with -metrics-out and SimulateAuto attaches to its
// RunReport.
//
// The design rule throughout is "disabled means free": a run without
// WithMetrics/WithTracer pays one nil-check per operation and zero
// allocations on the telemetry paths, so the Table I numbers are unaffected
// by the existence of this layer (see the overhead discussion in DESIGN.md,
// "Observability").

import (
	"io"

	"weaksim/internal/dd"
	"weaksim/internal/obs"
)

// Metrics is a registry of atomic counters, gauges, and fixed-bucket
// histograms. Create one with NewMetrics, attach it with WithMetrics, and
// export it with WritePrometheus / PublishExpvar / Snapshot, or summarize it
// with SummarizeMetrics.
type Metrics = obs.Registry

// Tracer emits structured trace events (phase-labeled spans and point
// events). Create one with NewJSONLTracer (or obs.NewTracer over a custom
// sink) and attach it with WithTracer.
type Tracer = obs.Tracer

// TraceEvent is one structured trace record as serialized to JSONL.
type TraceEvent = obs.Event

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewJSONLTracer returns a tracer writing one JSON event per line to w.
// every throttles op-granularity events (1 = every op, n = one in n);
// phase spans and governance events are never throttled. Tracing with a
// large `every` on a million-gate circuit costs close to nothing; a nil
// tracer costs exactly nothing.
func NewJSONLTracer(w io.Writer, every int) *Tracer {
	return obs.NewTracer(obs.NewJSONLSink(w), obs.WithEvery(every))
}

// WithMetrics attaches a metrics registry to the simulation: the DD
// engine's unique-table, compute-cache, and interning-table hit/miss
// counters, GC and budget-pressure events, live/peak node gauges, per-op
// apply latency, per-sample walk latency, and per-phase wall-clock
// accumulators all land in reg. nil (the default) disables metrics at zero
// cost.
func WithMetrics(reg *Metrics) Option { return func(c *config) { c.reg = reg } }

// WithTracer attaches a structured tracer: phase spans (build → apply →
// freeze → sample; plus annotate-downstream / annotate-upstream for the
// pointer-walk diagnostic surfaces), throttled per-op events, GC sweeps,
// budget pressure, and every degradation-ladder step of SimulateAuto. nil
// (the default) disables tracing at zero cost.
func WithTracer(t *Tracer) Option { return func(c *config) { c.tracer = t } }

// DebugServer is a running observability HTTP server (see ServeDebug).
type DebugServer = obs.DebugServer

// ServeDebug starts an HTTP debug server on addr exposing the registry in
// Prometheus text format at /metrics (plus /metrics.json), expvar at
// /debug/vars, and the standard pprof profile endpoints under /debug/pprof/.
// It returns immediately; the server runs until Close.
func ServeDebug(addr string, reg *Metrics) (*DebugServer, error) {
	return obs.ServeDebug(addr, reg)
}

// CaptureRuntime scrapes Go runtime health into reg: heap alloc/sys bytes,
// goroutine count, GOMAXPROCS, cumulative GC runs, and a GC pause-duration
// histogram (go_gc_pause_ns). The daemon's debug server calls it on every
// /metrics scrape; library users embedding a registry call it right before
// Snapshot or WritePrometheus.
func CaptureRuntime(reg *Metrics) { obs.CaptureRuntime(reg) }

// RegisterMetricHelp attaches a # HELP description to a metric name in the
// Prometheus text exposition. The built-in serve_/dd_/go_ metrics ship with
// descriptions already; use this for application-defined metrics.
func RegisterMetricHelp(name, help string) { obs.RegisterHelp(name, help) }

// Telemetry is the machine-readable per-circuit summary: per-phase
// durations, peak DD nodes, and the cache hit rates that explain DD
// simulator performance. It marshals cleanly with encoding/json.
type Telemetry struct {
	// Backend is the backend that produced the state ("dd", "vector", or
	// "" when unknown, e.g. a failed run summarized from metrics alone).
	Backend string `json:"backend,omitempty"`
	// PhaseNS maps pipeline phase → cumulative wall-clock nanoseconds.
	// Phases: build, apply, freeze, sample (plus annotate-downstream /
	// annotate-upstream from the diagnostic surfaces). Only populated when a
	// Metrics registry was attached.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// PeakNodes is the DD live-node high-water mark; LiveNodes the current
	// count; FinalStateNodes the node count of the final state DD alone.
	PeakNodes       int `json:"peak_nodes"`
	LiveNodes       int `json:"live_nodes"`
	FinalStateNodes int `json:"final_state_nodes,omitempty"`
	// HitRates maps cache kind → hits/(hits+misses) in [0,1]. Kinds:
	// unique_v, unique_m, cache_mul, cache_add, cnum_intern. Absent kinds
	// saw no lookups.
	HitRates map[string]float64 `json:"hit_rates"`
	// GCRuns counts mark-and-sweep collections; BudgetPressure counts
	// node-budget aborts surfaced (including ones relieved by GC).
	GCRuns         uint64 `json:"gc_runs"`
	BudgetPressure uint64 `json:"budget_pressure,omitempty"`
	// Counters and Gauges are the full registry dump (nil without a
	// registry) for downstream analysis that wants more than the digest.
	Counters map[string]uint64 `json:"counters,omitempty"`
	Gauges   map[string]int64  `json:"gauges,omitempty"`
}

// hitRate returns hits/(hits+misses), and false when there were no lookups.
func hitRate(hits, misses uint64) (float64, bool) {
	total := hits + misses
	if total == 0 {
		return 0, false
	}
	return float64(hits) / float64(total), true
}

func setRate(m map[string]float64, kind string, hits, misses uint64) {
	if r, ok := hitRate(hits, misses); ok {
		m[kind] = r
	}
}

// telemetryFromDD builds a summary from a manager's table statistics,
// augmented with phase timings and the raw dump when a registry is present.
func telemetryFromDD(st dd.Stats, peak, live int, reg *Metrics) *Telemetry {
	t := &Telemetry{
		Backend:   "dd",
		PeakNodes: peak,
		LiveNodes: live,
		HitRates:  map[string]float64{},
		GCRuns:    st.GCRuns,
	}
	setRate(t.HitRates, "unique_v", st.VHits, st.VMisses)
	setRate(t.HitRates, "unique_m", st.MHits, st.MMisses)
	setRate(t.HitRates, "cache_mul", st.MulHits, st.MulMisses)
	setRate(t.HitRates, "cache_add", st.AddHits, st.AddMisses)
	setRate(t.HitRates, "cnum_intern", st.ComplexHits, st.CMisses)
	t.fillFromRegistry(reg)
	return t
}

// fillFromRegistry adds the phase timings and the full metric dump.
func (t *Telemetry) fillFromRegistry(reg *Metrics) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	t.PhaseNS = map[string]int64{}
	for name, v := range snap.Counters {
		if phase, ok := phaseCounter(name); ok {
			t.PhaseNS[phase] = int64(v)
		}
	}
	t.BudgetPressure = snap.Counters["dd_budget_pressure_total"]
	t.Counters = snap.Counters
	t.Gauges = snap.Gauges
}

// phaseCounter extracts the phase label from a "phase_<label>_ns" counter.
func phaseCounter(name string) (string, bool) {
	const pre, suf = "phase_", "_ns"
	if len(name) > len(pre)+len(suf) && name[:len(pre)] == pre && name[len(name)-len(suf):] == suf {
		return name[len(pre) : len(name)-len(suf)], true
	}
	return "", false
}

// SummarizeMetrics builds a Telemetry digest from a registry alone — the
// fallback summary surface when no State survived (the run went MO/TO).
// Hit rates are recomputed from the mirrored dd_*/cnum_* counters.
func SummarizeMetrics(reg *Metrics) *Telemetry {
	t := &Telemetry{HitRates: map[string]float64{}}
	if reg == nil {
		return t
	}
	snap := reg.Snapshot()
	c := snap.Counters
	setRate(t.HitRates, "unique_v", c["dd_unique_v_hits_total"], c["dd_unique_v_misses_total"])
	setRate(t.HitRates, "unique_m", c["dd_unique_m_hits_total"], c["dd_unique_m_misses_total"])
	setRate(t.HitRates, "cache_mul", c["dd_cache_mul_hits_total"], c["dd_cache_mul_misses_total"])
	setRate(t.HitRates, "cache_add", c["dd_cache_add_hits_total"], c["dd_cache_add_misses_total"])
	setRate(t.HitRates, "cnum_intern", c["cnum_intern_hits_total"], c["cnum_intern_misses_total"])
	t.GCRuns = c["dd_gc_runs_total"]
	t.PeakNodes = int(snap.Gauges["dd_peak_nodes"])
	t.LiveNodes = int(snap.Gauges["dd_live_nodes"])
	t.fillFromRegistry(reg)
	return t
}

// Telemetry summarizes the state's production run: phase durations (when a
// registry was attached with WithMetrics), peak/live DD nodes, and cache
// hit rates. For vector-backed states the DD quantities are zero.
func (s *State) Telemetry() *Telemetry {
	if s.dense != nil {
		t := &Telemetry{Backend: "vector", HitRates: map[string]float64{}}
		t.fillFromRegistry(s.cfg.reg)
		return t
	}
	t := telemetryFromDD(s.mgr.TableStats(), s.mgr.PeakNodes(), s.mgr.LiveNodes(), s.cfg.reg)
	t.FinalStateNodes = s.NodeCount()
	return t
}
