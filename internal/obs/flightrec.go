package obs

// Flight recorder: an always-on, fixed-size ring of the most recent trace
// spans and events, dumped as JSONL when something goes wrong — a recovered
// panic, an injected fault, an SLO fast-burn breach. Aviation flight
// recorders answer "what were the last N seconds like" after the fact;
// here the chaos outcomes of the fault-injection matrix become post-hoc
// debuggable artifacts instead of a counter that merely incremented.
//
// Concurrency: writers claim a slot with one atomic increment and then take
// only that slot's mutex, so concurrent request finishes never contend on a
// global lock (the ring is "lock-efficient", not lock-free: readers taking
// a consistent snapshot is worth two dozen uncontended slot locks). A nil
// *FlightRecorder is a safe no-op everywhere.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightSlots is the default ring capacity (records, not requests; a
// request publishes one record per span).
const DefaultFlightSlots = 4096

// FlightRecord is one ring entry, serialized as one JSONL line per record
// in dumps.
type FlightRecord struct {
	// Seq is the global write ordinal (assigned by Record; dumps sort on it).
	Seq uint64 `json:"seq"`
	// TS is the record timestamp in nanoseconds since the Unix epoch.
	TS int64 `json:"ts"`
	// Trace and Span are the request-trace IDs, when the record came from a
	// request ("" for process-level events such as trips).
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	// Kind is "span", "event", or "trip".
	Kind string `json:"kind"`
	// Phase is the pipeline phase (spans/events).
	Phase string `json:"phase,omitempty"`
	// Name is the endpoint or trip reason.
	Name string `json:"name"`
	// DurNS is the span duration (spans only).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Attrs carries structured detail.
	Attrs map[string]any `json:"attrs,omitempty"`
}

type flightSlot struct {
	mu  sync.Mutex
	rec FlightRecord
	set bool
}

// FlightRecorder is the ring. Construct with NewFlightRecorder.
type FlightRecorder struct {
	slots []flightSlot
	head  atomic.Uint64 // next sequence number (1-based after first Add)

	dir      string // dump directory ("" = in-memory / HTTP dumps only)
	minGap   time.Duration
	lastDump atomic.Int64 // UnixNano of the last disk dump, for rate limiting
	dumpSeq  atomic.Uint64

	tripCount atomic.Uint64
	trips     *Counter // optional trip counter mirror (e.g. a registry counter)
}

// FlightOption configures a FlightRecorder.
type FlightOption func(*FlightRecorder)

// WithFlightDir sets the directory trip dumps are written to (created on
// first dump). Empty keeps dumps HTTP-only.
func WithFlightDir(dir string) FlightOption {
	return func(f *FlightRecorder) { f.dir = dir }
}

// WithFlightDumpGap sets the minimum interval between disk dumps (default
// 5s; 0 disables rate limiting — used by tests). The ring itself always
// records; only file writes are throttled.
func WithFlightDumpGap(d time.Duration) FlightOption {
	return func(f *FlightRecorder) { f.minGap = d }
}

// WithFlightTrips mirrors trip counts into c (e.g. a registry counter).
func WithFlightTrips(c *Counter) FlightOption {
	return func(f *FlightRecorder) { f.trips = c }
}

// NewFlightRecorder returns a ring with the given capacity (<= 0 selects
// DefaultFlightSlots).
func NewFlightRecorder(slots int, opts ...FlightOption) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	f := &FlightRecorder{slots: make([]flightSlot, slots), minGap: 5 * time.Second}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Record appends rec to the ring, overwriting the oldest entry when full.
// Safe for concurrent use; a nil recorder is a no-op.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	rec.Seq = f.head.Add(1)
	if rec.TS == 0 {
		rec.TS = time.Now().UnixNano()
	}
	slot := &f.slots[(rec.Seq-1)%uint64(len(f.slots))]
	slot.mu.Lock()
	slot.rec = rec
	slot.set = true
	slot.mu.Unlock()
}

// Snapshot copies the ring contents in sequence order (oldest first).
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.set {
			out = append(out, s.rec)
		}
		s.mu.Unlock()
	}
	// Slot i holds a strictly increasing sequence over time, but a snapshot
	// taken mid-wrap sees mixed generations; an insertion sort on Seq (the
	// ring is almost sorted already) restores global order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// WriteJSONL dumps the ring to w, one JSON record per line, oldest first.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range f.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Trip records a trip marker (reason + attrs) in the ring and, when a dump
// directory is configured and the rate limit allows, writes the whole ring
// to flight-<n>.jsonl there. It returns the dump path ("" when no file was
// written). Trip never fails the caller: file errors are reported in the
// returned error for logging but the ring state is always intact.
func (f *FlightRecorder) Trip(reason string, attrs map[string]any) (string, error) {
	if f == nil {
		return "", nil
	}
	f.tripCount.Add(1)
	f.trips.Inc()
	f.Record(FlightRecord{Kind: "trip", Name: reason, Attrs: attrs})
	if f.dir == "" {
		return "", nil
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if f.minGap > 0 && now-last < f.minGap.Nanoseconds() {
		return "", nil
	}
	if !f.lastDump.CompareAndSwap(last, now) {
		return "", nil // another trip is dumping concurrently
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	// The timestamp keeps names unique across recorders (and restarts)
	// sharing one directory; the per-recorder sequence keeps them unique
	// within a burst.
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%d-%d.jsonl", now, f.dumpSeq.Add(1)))
	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	werr := f.WriteJSONL(file)
	cerr := file.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// Trips returns the number of trips recorded so far.
func (f *FlightRecorder) Trips() uint64 {
	if f == nil {
		return 0
	}
	return f.tripCount.Load()
}
