package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(23)
	if got := c.Value(); got != 123 {
		t.Fatalf("counter = %d, want 123", got)
	}
	c.Set(7)
	if got := c.Value(); got != 7 {
		t.Fatalf("after Set: counter = %d, want 7", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("Counter is not get-or-create stable")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("SetMax did not raise the gauge: %d", got)
	}
}

func TestHistogramBucketsAndMonotoneSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100, 1000})
	samples := []float64{1, 5, 10, 11, 99, 100, 500, 5000}
	var sum float64
	for _, v := range samples {
		h.Observe(v)
		sum += v
	}
	if got := h.Count(); got != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", got, len(samples))
	}
	if got := h.Sum(); got != sum {
		t.Fatalf("sum = %g, want %g", got, sum)
	}
	s := h.Snapshot()
	if len(s.Cumulative) != len(s.Bounds)+1 {
		t.Fatalf("cumulative has %d entries for %d bounds", len(s.Cumulative), len(s.Bounds))
	}
	// Bounds are inclusive upper bounds: <=10 → 3, <=100 → 6, <=1000 → 7, +Inf → 8.
	want := []uint64{3, 6, 7, 8}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (full: %v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	for i := 1; i < len(s.Cumulative); i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatalf("cumulative not monotone at %d: %v", i, s.Cumulative)
		}
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", OpLatencyBounds)
	h.ObserveDuration(2 * time.Microsecond)
	if h.Count() != 1 || h.Sum() != 2000 {
		t.Fatalf("count=%d sum=%g, want 1/2000", h.Count(), h.Sum())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(-4)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c_total"] != 3 || s.Gauges["g"] != -4 || s.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

func TestTraceEventJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLSink(&buf))
	tr.Event(PhaseApply, "op", map[string]any{"applied": 7})
	sp := tr.Start(PhaseBuild, "build")
	sp.End(map[string]any{"ops": 3})

	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Kind != "event" || events[0].Phase != PhaseApply || events[0].Name != "op" {
		t.Fatalf("event 0 mismatch: %+v", events[0])
	}
	if got := events[0].Attrs["applied"]; got != float64(7) {
		t.Fatalf("attrs round-trip: %v", got)
	}
	if events[1].Kind != "span" || events[1].Phase != PhaseBuild || events[1].DurNS < 0 {
		t.Fatalf("event 1 mismatch: %+v", events[1])
	}
	if events[1].Seq <= events[0].Seq {
		t.Fatalf("sequence not monotone: %d then %d", events[0].Seq, events[1].Seq)
	}
}

func TestTracerThrottle(t *testing.T) {
	var sink CollectSink
	tr := NewTracer(&sink, WithEvery(16))
	for i := 1; i <= 64; i++ {
		tr.EmitThrottled(i, PhaseApply, "op", nil)
	}
	if got := len(sink.Events()); got != 4 {
		t.Fatalf("throttled to %d events, want 4", got)
	}
	// Spans and plain events are never throttled.
	tr.Event(PhaseGovern, "degrade", nil)
	tr.Start(PhaseSample, "walk").End(nil)
	if got := len(sink.Events()); got != 6 {
		t.Fatalf("unthrottled events got dropped: %d, want 6", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Every() != 1 {
		t.Fatalf("nil Every = %d, want 1", tr.Every())
	}
	tr.Event(PhaseApply, "op", nil)
	tr.EmitThrottled(3, PhaseApply, "op", nil)
	tr.Start(PhaseBuild, "b").End(nil)
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil sink) should return nil")
	}
}

// TestDisabledPathZeroAllocs pins the "disabled means free" contract: every
// telemetry call on nil receivers must be allocation-free.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var (
		r  *Registry
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	cases := map[string]func(){
		"counter": func() { c.Inc(); c.Add(2); _ = c.Value() },
		"gauge":   func() { g.Set(1); g.Add(1); g.SetMax(9); _ = g.Value() },
		"histogram": func() {
			h.Observe(1)
			h.ObserveDuration(time.Microsecond)
			_ = h.Count()
		},
		"registry": func() {
			_ = r.Counter("x")
			_ = r.Gauge("y")
			_ = r.Histogram("z", nil)
		},
		"tracer": func() {
			tr.Event(PhaseApply, "op", nil)
			tr.EmitThrottled(1, PhaseApply, "op", nil)
			tr.Start(PhaseBuild, "b").End(nil)
		},
		"start-phase": func() { StartPhase(nil, nil, PhaseApply)() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the disabled path, want 0", name, allocs)
		}
	}
}

func TestStartPhaseAccumulates(t *testing.T) {
	r := NewRegistry()
	var sink CollectSink
	tr := NewTracer(&sink)
	stop := StartPhase(r, tr, PhaseApply)
	time.Sleep(time.Millisecond)
	stop()
	if got := r.Counter("phase_apply_ns").Value(); got == 0 {
		t.Fatal("phase accumulator not incremented")
	}
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Kind != "span" || evs[0].Phase != PhaseApply {
		t.Fatalf("span not emitted: %+v", evs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(5)
	r.Gauge("live").Set(12)
	r.Histogram("lat_ns", []float64{10, 100}).Observe(50)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		"ops_total 5",
		"# TYPE live gauge",
		"live 12",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="10"} 0`,
		`lat_ns_bucket{le="100"} 1`,
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_sum 50",
		"lat_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(9)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "hits_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["hits_total"] != 9 {
		t.Fatalf("/metrics.json counter = %d", snap.Counters["hits_total"])
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	name := fmt.Sprintf("obs_test_%d", time.Now().UnixNano())
	r.PublishExpvar(name)
	r.PublishExpvar(name) // must not panic on duplicate publish
}
