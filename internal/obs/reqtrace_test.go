package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tid, sid, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid traceparent rejected")
	}
	if got := tid.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := sid.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", got)
	}
	if got := Traceparent(tid, sid); got != valid {
		t.Errorf("round-trip = %s, want %s", got, valid)
	}

	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // unsupported version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase (spec: lowercase)
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",  // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-001", // long flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted malformed traceparent %q", h)
		}
	}
}

func TestNewIDsUniqueAndNonZero(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tid := NewTraceID()
		if tid.IsZero() {
			t.Fatal("zero trace id minted")
		}
		if seen[tid.String()] {
			t.Fatalf("duplicate trace id %s", tid)
		}
		seen[tid.String()] = true
		if NewSpanID().IsZero() {
			t.Fatal("zero span id minted")
		}
	}
}

func TestStartRequestAdoptsInboundTraceID(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rt := StartRequest(h, nil)
	if got := rt.ID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("inbound trace id not adopted: %s", got)
	}
	rt2 := StartRequest("garbage", nil)
	if rt2.ID().IsZero() {
		t.Error("no trace id minted for invalid traceparent")
	}
	if rt2.ID() == rt.ID() {
		t.Error("minted trace id collides with inbound")
	}
}

func TestRequestTraceSpansAndBreakdown(t *testing.T) {
	rt := StartRequest("", nil)
	sp := rt.StartSpan(PhaseParse)
	time.Sleep(time.Millisecond)
	sp.End(map[string]any{"qubits": 3})
	rt.AddSpanAt(PhaseQueue, time.Now().Add(-2*time.Millisecond), 2*time.Millisecond, nil)
	rt.Event(PhaseSample, map[string]any{"worker": 0})

	spans := rt.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	bd := rt.PhaseBreakdown()
	if bd[PhaseParse] <= 0 {
		t.Errorf("parse duration missing: %v", bd)
	}
	if bd[PhaseQueue] != (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("queue duration = %d", bd[PhaseQueue])
	}
	if _, ok := bd[PhaseSample]; ok {
		t.Errorf("point event leaked into the phase breakdown: %v", bd)
	}
}

func TestAdoptSharedKeepsSpanIDsAndMarksOrigin(t *testing.T) {
	leader := StartRequest("", nil)
	mark := leader.Mark()
	sp := leader.StartSpan(PhaseFreeze)
	sp.End(nil)
	shared := leader.SpansSince(mark)
	if len(shared) != 1 {
		t.Fatalf("SpansSince: got %d", len(shared))
	}

	waiter := StartRequest("", nil)
	waiter.AdoptShared(leader.ID(), shared)
	got := waiter.Spans()
	if len(got) != 1 {
		t.Fatalf("waiter spans: %d", len(got))
	}
	if got[0].SpanID != shared[0].SpanID {
		t.Errorf("shared span id changed: %s != %s", got[0].SpanID, shared[0].SpanID)
	}
	if !got[0].Shared {
		t.Error("adopted span not marked shared")
	}
	if got[0].OriginTrace != leader.ID().String() {
		t.Errorf("origin trace = %q", got[0].OriginTrace)
	}
	// Shared spans must not inflate the waiter's own phase accounting.
	if bd := waiter.PhaseBreakdown(); len(bd) != 0 {
		t.Errorf("shared spans counted in breakdown: %v", bd)
	}
}

func TestRequestTraceContextRoundTrip(t *testing.T) {
	rt := StartRequest("", nil)
	ctx := ContextWithTrace(context.Background(), rt)
	if got := TraceFromContext(ctx); got != rt {
		t.Fatal("trace lost in context round trip")
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatal("phantom trace from bare context")
	}
}

func TestRequestTraceFinishPublishesToRecorder(t *testing.T) {
	rec := NewFlightRecorder(64)
	rt := StartRequest("", rec)
	rt.StartSpan(PhaseParse).End(nil)
	rt.Finish("/v1/sample", 200)

	recs := rec.Snapshot()
	if len(recs) != 2 { // parse span + root request span
		t.Fatalf("recorder got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Trace != rt.ID().String() {
			t.Errorf("record trace = %s, want %s", r.Trace, rt.ID())
		}
		if r.Name != "/v1/sample" {
			t.Errorf("record name = %s", r.Name)
		}
	}
}

// TestRequestTraceConcurrentAnnotation exercises concurrent span appends
// from sampling workers under -race.
func TestRequestTraceConcurrentAnnotation(t *testing.T) {
	rt := StartRequest("", nil)
	var wg sync.WaitGroup
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rt.Event(PhaseSample, map[string]any{"worker": k})
			}
		}(k)
	}
	wg.Wait()
	if got := len(rt.Spans()); got != 1600 {
		t.Fatalf("got %d spans, want 1600", got)
	}
}

// TestRequestTraceDisabledZeroAlloc pins the disabled-tracing request path
// at 0 allocs/op: a context without a trace plus every nil-receiver method
// an instrumented handler would touch.
func TestRequestTraceDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		rt := TraceFromContext(ctx)
		if ctx2 := ContextWithTrace(ctx, rt); ctx2 != ctx {
			t.Fatal("nil trace wrapped the context")
		}
		sp := rt.StartSpan(PhaseParse)
		sp.End(nil)
		rt.AddSpanAt(PhaseQueue, time.Time{}, 0, nil)
		rt.Event(PhaseSample, nil)
		rt.AdoptShared(TraceID{}, nil)
		_ = rt.Mark()
		_ = rt.SpansSince(0)
		_ = rt.PhaseBreakdown()
		rt.Finish("", 0)
		_ = rt.ID()
	})
	if allocs != 0 {
		t.Fatalf("disabled request-trace path allocates %.1f/op, want 0", allocs)
	}
}

func TestTraceparentStringFormat(t *testing.T) {
	rt := StartRequest("", nil)
	h := Traceparent(rt.ID(), rt.Root())
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("bad traceparent %q", h)
	}
	if _, _, ok := ParseTraceparent(h); !ok {
		t.Fatalf("self-minted traceparent does not parse: %q", h)
	}
}
