package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`,
// histograms as `histogram` with cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Output is sorted by metric name so scrapes and
// goldens are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for i, bound := range h.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, bound, h.Cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	ok := func(i int, c rune) bool {
		return c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
	}
	for i, c := range name {
		if !ok(i, c) {
			var b strings.Builder
			for j, d := range name {
				if ok(j, d) {
					b.WriteRune(d)
				} else {
					b.WriteByte('_')
				}
			}
			return b.String()
		}
		_ = i
	}
	return name
}

var expvarMu sync.Mutex

// PublishExpvar publishes the registry's live snapshot under the given
// expvar name (visible at /debug/vars of any expvar-serving process).
// Publishing the same name twice is a no-op rather than the package-level
// panic expvar.Publish would raise, so facades can call this idempotently;
// the last registry wins is NOT attempted — the first publication is kept.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// DebugServer is a running telemetry/pprof HTTP server.
type DebugServer struct {
	// Addr is the bound listen address (useful when the requested port was
	// 0).
	Addr string
	srv  *http.Server
}

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts an HTTP debug server on addr exposing
//
//	/metrics      — Prometheus text format of the registry
//	/metrics.json — the same snapshot as JSON
//	/debug/vars   — expvar (includes the registry when PublishExpvar was
//	                called)
//	/debug/pprof/ — the standard pprof profile index
//
// The server runs on its own goroutine until Close. It uses a private mux,
// so importing net/http/pprof's DefaultServeMux side effects are not relied
// upon.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}

func writeJSON(w io.Writer, v any) {
	// Errors are dropped — telemetry never fails the process.
	_ = json.NewEncoder(w).Encode(v)
}
