package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Help texts for the Prometheus exporter: metric name → one-line
// description, emitted as `# HELP` ahead of `# TYPE` so scraped metrics are
// self-documenting. The catalogue ships with descriptions for the built-in
// series; RegisterHelp adds or overrides entries. Unknown metrics simply
// get no HELP line — scraping never fails on a missing description.
var (
	helpMu   sync.RWMutex
	helpText = map[string]string{
		"serve_requests_total":        "Total /v1/sample requests accepted by the daemon.",
		"serve_errors_total":          "Total /v1/sample requests answered with an error status.",
		"serve_shots_total":           "Total measurement shots sampled across all requests.",
		"serve_request_ns":            "End-to-end /v1/sample request latency in nanoseconds.",
		"serve_inflight":              "Requests currently being handled.",
		"serve_sims_total":            "Strong simulations executed by the worker pool.",
		"serve_queue_depth":           "Simulation admission queue length.",
		"serve_queue_rejected_total":  "Jobs rejected by the admission queue (load shed, HTTP 429).",
		"serve_cache_hits_total":      "Snapshot LRU hits (no simulation, no flight join).",
		"serve_cache_misses_total":    "Snapshot LRU misses that started a new simulation flight.",
		"serve_cache_coalesced_total": "Requests coalesced onto an in-progress simulation flight.",
		"serve_cache_evictions_total": "Snapshot LRU evictions under byte pressure.",
		"serve_cache_bytes":           "Bytes of frozen snapshots resident in the LRU.",
		"serve_cache_entries":         "Frozen snapshots resident in the LRU.",
		"serve_cache_flights":         "Simulation flights currently in progress.",
		"serve_panics_total":          "Recovered panics (simulation workers and request handlers).",
		"serve_warm_loaded_total":     "Snapshots warm-loaded from the on-disk store at startup.",
		"serve_slo_trips_total":       "Flight-recorder trips raised by SLO fast-burn breaches.",
		"serve_fault_fired_total":     "Injected faults that fired (chaos testing).",
		"snapshot_nodes":              "Node count of the most recently frozen snapshot.",
		"snapshot_bytes":              "Byte size of the most recently frozen snapshot.",
		"dd_live_nodes":               "Live decision-diagram nodes in the unique table.",
		"dd_peak_nodes":               "High-water mark of live decision-diagram nodes.",
		"dd_gc_runs_total":            "Decision-diagram mark-and-sweep collections.",
		"dd_budget_pressure_total":    "Node-budget overruns surfaced (including GC-relieved ones).",
		"dd_unique_probe_len":         "Cumulative unique-table probe steps; divide by lookup totals for the mean probe length.",
		"dd_cache_hits_total":         "Compute-cache hits across all DD operation caches.",
		"dd_cache_misses_total":       "Compute-cache misses across all DD operation caches.",
		"dd_cache_evictions_total":    "Direct-mapped compute-cache entries overwritten by colliding inserts.",
		"dd_arena_slabs":              "Node slabs allocated by the DD arenas (vector + matrix).",
		"dd_freelist_len":             "Arena slots reclaimed by GC and awaiting reuse.",
		"go_heap_alloc_bytes":         "Live Go heap allocation (runtime.MemStats.HeapAlloc).",
		"go_heap_sys_bytes":           "Heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		"go_goroutines":               "Current goroutine count.",
		"go_gomaxprocs":               "GOMAXPROCS at the last scrape.",
		"go_gc_runs_total":            "Completed Go garbage-collection cycles.",
		"go_gc_pause_ns":              "Go GC stop-the-world pause durations in nanoseconds.",
	}
)

// RegisterHelp sets (or overrides) the HELP description emitted for the
// metric name by WritePrometheus.
func RegisterHelp(name, help string) {
	helpMu.Lock()
	helpText[name] = help
	helpMu.Unlock()
}

// helpFor returns the registered description for name ("" when absent).
func helpFor(name string) string {
	helpMu.RLock()
	defer helpMu.RUnlock()
	return helpText[name]
}

// writeHeader emits the optional `# HELP` line followed by the mandatory
// `# TYPE` line for one metric.
func writeHeader(w io.Writer, pn, name, typ string) error {
	if help := helpFor(name); help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ)
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`,
// histograms as `histogram` with cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Metrics with a registered description get a
// preceding `# HELP` line. Output is sorted by metric name within each
// section (counters, then gauges, then histograms) so scrapes and goldens
// are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if err := writeHeader(w, pn, name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if err := writeHeader(w, pn, name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if err := writeHeader(w, pn, name, "histogram"); err != nil {
			return err
		}
		for i, bound := range h.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, bound, h.Cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	ok := func(i int, c rune) bool {
		return c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
	}
	for i, c := range name {
		if !ok(i, c) {
			var b strings.Builder
			for j, d := range name {
				if ok(j, d) {
					b.WriteRune(d)
				} else {
					b.WriteByte('_')
				}
			}
			return b.String()
		}
		_ = i
	}
	return name
}

var expvarMu sync.Mutex

// PublishExpvar publishes the registry's live snapshot under the given
// expvar name (visible at /debug/vars of any expvar-serving process).
// Publishing the same name twice is a no-op rather than the package-level
// panic expvar.Publish would raise, so facades can call this idempotently;
// the last registry wins is NOT attempted — the first publication is kept.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// DebugServer is a running telemetry/pprof HTTP server.
type DebugServer struct {
	// Addr is the bound listen address (useful when the requested port was
	// 0).
	Addr string
	srv  *http.Server
}

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// DebugOption configures ServeDebug.
type DebugOption func(*debugConfig)

type debugConfig struct {
	recorder *FlightRecorder
}

// WithDebugFlightRecorder exposes the flight recorder's ring as JSONL at
// /debug/flight on the debug server.
func WithDebugFlightRecorder(f *FlightRecorder) DebugOption {
	return func(c *debugConfig) { c.recorder = f }
}

// ServeDebug starts an HTTP debug server on addr exposing
//
//	/metrics      — Prometheus text format of the registry (HELP + TYPE)
//	/metrics.json — the same snapshot as JSON
//	/debug/vars   — expvar (includes the registry when PublishExpvar was
//	                called)
//	/debug/pprof/ — the standard pprof profile index
//	/debug/flight — flight-recorder ring as JSONL (with
//	                WithDebugFlightRecorder)
//
// Every /metrics and /metrics.json scrape first captures the Go runtime
// (heap, GC pauses, goroutines) into the registry, so dashboards see engine
// and runtime health side by side. The server runs on its own goroutine
// until Close. It uses a private mux, so importing net/http/pprof's
// DefaultServeMux side effects are not relied upon.
func ServeDebug(addr string, r *Registry, opts ...DebugOption) (*DebugServer, error) {
	var cfg debugConfig
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		CaptureRuntime(r)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		CaptureRuntime(r)
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, r.Snapshot())
	})
	if cfg.recorder != nil {
		rec := cfg.recorder
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = rec.WriteJSONL(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}

func writeJSON(w io.Writer, v any) {
	// Errors are dropped — telemetry never fails the process.
	_ = json.NewEncoder(w).Encode(v)
}
