package obs

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"
)

// TestQuantileInterpolation pins the linear-interpolation math: a rank
// landing in bucket (lo, hi] with c observations and b of the cumulative
// count below lo estimates lo + (hi-lo)·(rank-b)/c.
func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 20, 40})
	// 4 observations in (0,10], 4 in (10,20], 2 in (20,40].
	for _, v := range []float64{1, 2, 3, 4, 11, 12, 13, 14, 25, 30} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q    float64
		want float64
	}{
		{0.0, 0},    // rank 0 → lower edge of the first bucket
		{0.2, 5},    // rank 2 of 4 in (0,10] → 10·(2/4)
		{0.4, 10},   // rank 4 → exactly the first bound
		{0.5, 12.5}, // rank 5 → 10 + 10·(1/4)
		{0.8, 20},   // rank 8 → exactly the second bound
		{0.9, 30},   // rank 9 → 20 + 20·(1/2)
		{1.0, 40},   // rank 10 → upper edge of the last finite bucket
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%.2f) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g", got)
	}
	r := NewRegistry()
	h := r.Histogram("inf", []float64{10})
	h.Observe(5)
	h.Observe(1e9) // +Inf bucket
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 10 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to 10", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Errorf("q<0 = %g", got)
	}
	if got := s.Quantile(2); got != 10 {
		t.Errorf("q>1 = %g, want clamp", got)
	}
	// All mass in one bucket: the median interpolates to the midpoint.
	r2 := NewRegistry()
	h2 := r2.Histogram("one", []float64{100})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	if got := h2.Snapshot().Quantile(0.5); math.Abs(got-50) > 1e-9 {
		t.Errorf("single-bucket median = %g, want 50", got)
	}
}

func TestCaptureRuntime(t *testing.T) {
	r := NewRegistry()
	runtime.GC() // guarantee at least one completed cycle
	CaptureRuntime(r)
	s := r.Snapshot()
	if s.Gauges["go_heap_alloc_bytes"] <= 0 {
		t.Error("heap alloc gauge not captured")
	}
	if s.Gauges["go_goroutines"] <= 0 {
		t.Error("goroutine gauge not captured")
	}
	if s.Gauges["go_gomaxprocs"] <= 0 {
		t.Error("gomaxprocs gauge not captured")
	}
	if s.Counters["go_gc_runs_total"] == 0 {
		t.Error("gc runs counter not captured")
	}
	if s.Histograms["go_gc_pause_ns"].Count == 0 {
		t.Error("gc pause histogram empty after a forced GC")
	}
	// A second capture with no new GC must not re-feed old pauses.
	before := r.Snapshot().Histograms["go_gc_pause_ns"].Count
	CaptureRuntime(r)
	after := r.Snapshot().Histograms["go_gc_pause_ns"].Count
	if after < before {
		t.Errorf("pause count went backwards: %d -> %d", before, after)
	}
	runtime.GC()
	CaptureRuntime(r)
	if got := r.Snapshot().Histograms["go_gc_pause_ns"].Count; got <= after {
		t.Errorf("new GC pause not captured: %d -> %d", after, got)
	}
	CaptureRuntime(nil) // nil-safe
}

// TestWritePrometheusHelpAndOrdering verifies that described metrics emit
// `# HELP` ahead of `# TYPE` and that repeated scrapes render byte-identical
// output (stable ordering).
func TestWritePrometheusHelpAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_requests_total").Add(3)
	r.Counter("zz_undocumented_total").Add(1)
	r.Gauge("serve_inflight").Set(2)
	r.Histogram("serve_request_ns", []float64{1e6, 1e9}).Observe(5e5)

	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes differ — ordering unstable")
	}
	out := a.String()
	wantHelp := "# HELP serve_requests_total Total /v1/sample requests accepted by the daemon.\n" +
		"# TYPE serve_requests_total counter\nserve_requests_total 3\n"
	if !strings.Contains(out, wantHelp) {
		t.Errorf("HELP/TYPE block missing or misordered:\n%s", out)
	}
	if !strings.Contains(out, "# HELP serve_request_ns ") {
		t.Error("histogram HELP line missing")
	}
	if !strings.Contains(out, "# HELP serve_inflight ") {
		t.Error("gauge HELP line missing")
	}
	if strings.Contains(out, "# HELP zz_undocumented_total") {
		t.Error("undocumented metric grew a HELP line from nowhere")
	}
	if !strings.Contains(out, "# TYPE zz_undocumented_total counter\nzz_undocumented_total 1\n") {
		t.Error("undocumented metric must still render TYPE + sample")
	}
	// RegisterHelp overrides take effect on the next scrape.
	RegisterHelp("zz_undocumented_total", "Now documented.")
	var c bytes.Buffer
	if err := r.WritePrometheus(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "# HELP zz_undocumented_total Now documented.\n") {
		t.Error("RegisterHelp did not take effect")
	}
}
