package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Record(FlightRecord{Kind: "event", Name: fmt.Sprintf("e%d", i)})
	}
	recs := f.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if want := uint64(13 + i); r.Seq != want { // 20 writes, ring of 8 → seqs 13..20
			t.Errorf("recs[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(FlightRecord{Kind: "event", Name: "w", Attrs: map[string]any{"k": k}})
			}
		}(k)
	}
	wg.Wait()
	recs := f.Snapshot()
	if len(recs) != 128 {
		t.Fatalf("ring holds %d, want 128", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestFlightRecorderWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(FlightRecord{Kind: "span", Phase: PhaseFreeze, Name: "/v1/sample", DurNS: 42})
	f.Record(FlightRecord{Kind: "trip", Name: "slo-breach"})
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec FlightRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("dump has %d lines, want 2", n)
	}
}

func TestFlightRecorderTripDumpsToDisk(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(16, WithFlightDir(dir), WithFlightDumpGap(0))
	f.Record(FlightRecord{Kind: "event", Name: "before"})
	path, err := f.Trip("fault:serve.sim", map[string]any{"point": "serve.sim"})
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("trip with a dump dir wrote no file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	var sawTrip bool
	for sc.Scan() {
		var rec FlightRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("dump line is not valid JSON: %v", err)
		}
		if rec.Kind == "trip" && rec.Name == "fault:serve.sim" {
			sawTrip = true
		}
	}
	if !sawTrip {
		t.Fatal("dump does not contain the trip record")
	}
	if f.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", f.Trips())
	}
}

func TestFlightRecorderTripRateLimit(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(16, WithFlightDir(dir), WithFlightDumpGap(0))
	if p, _ := f.Trip("first", nil); p == "" {
		t.Fatal("first trip did not dump")
	}
	// Re-arm with a large gap: the second trip records but does not dump.
	f2 := NewFlightRecorder(16, WithFlightDir(dir), WithFlightDumpGap(0))
	if _, err := f2.Trip("a", nil); err != nil {
		t.Fatal(err)
	}
	f2.minGap = 1 << 60
	if p, _ := f2.Trip("b", nil); p != "" {
		t.Fatal("rate-limited trip still dumped")
	}
	if f2.Trips() != 2 {
		t.Fatalf("Trips() = %d, want 2 (the ring records even when dumping is throttled)", f2.Trips())
	}
	entries, _ := os.ReadDir(dir)
	var files int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".jsonl" {
			files++
		}
	}
	if files != 2 {
		t.Fatalf("%d dump files, want 2", files)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightRecord{})
	if got := f.Snapshot(); got != nil {
		t.Fatal("nil recorder snapshot not nil")
	}
	if p, err := f.Trip("x", nil); p != "" || err != nil {
		t.Fatal("nil recorder trip not inert")
	}
	if f.Trips() != 0 {
		t.Fatal("nil recorder counted a trip")
	}
}
