package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Phase labels follow the paper's weak-simulation pipeline (Fig. 2):
// strong simulation builds and applies operator DDs, the freeze stage
// converts the final live diagram into an immutable flat-array snapshot with
// branch probabilities precomputed inline (the snapshot subsumes the
// historical downstream/upstream annotation passes — a no-op under L2
// normalization), and each shot is a root-to-terminal walk over the frozen
// arrays. The govern phase covers the degradation ladder of
// weaksim.SimulateAuto.
const (
	PhaseBuild        = "build"
	PhaseApply        = "apply"
	PhaseFreeze       = "freeze"
	PhaseAnnotateDown = "annotate-downstream"
	PhaseAnnotateUp   = "annotate-upstream"
	PhaseSample       = "sample"
	PhaseGovern       = "govern"

	// Serving phases (internal/serve): PhaseParse covers request decoding
	// and QASM parsing, PhaseQueue the time a simulation job waits in the
	// bounded admission queue before a worker picks it up, and PhaseServe
	// whole-request handling on the daemon.
	PhaseParse = "parse"
	PhaseQueue = "queue"
	PhaseServe = "serve"

	// PhaseVerify covers DD invariant self-checks: dd.CheckInvariants at
	// freeze time and dd.Snapshot.Verify on every snapshot load.
	PhaseVerify = "verify"
)

// Event is one structured trace record. Span events carry a duration; point
// events do not. Events round-trip through encoding/json one per line
// (JSONL).
type Event struct {
	// TS is the event end time in nanoseconds since the Unix epoch.
	TS int64 `json:"ts"`
	// Seq is a monotonically increasing per-tracer sequence number.
	Seq uint64 `json:"seq"`
	// Kind is "span" for timed regions and "event" for point events.
	Kind string `json:"kind"`
	// Phase is one of the Phase* labels.
	Phase string `json:"phase,omitempty"`
	// Name identifies the operation within the phase.
	Name string `json:"name"`
	// DurNS is the span duration in nanoseconds (spans only).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Attrs carries free-form structured attributes.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Sink consumes trace events. Implementations must be safe for use from the
// single simulation goroutine plus any exporter goroutine.
type Sink interface {
	Emit(*Event)
}

// JSONLSink writes one JSON object per line. Safe for concurrent Emit.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line; encoding errors are dropped
// (telemetry must never fail the simulation).
func (s *JSONLSink) Emit(e *Event) {
	s.mu.Lock()
	_ = s.enc.Encode(e)
	s.mu.Unlock()
}

// CollectSink buffers events in memory, for tests and for building
// in-process summaries.
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends a copy of the event.
func (s *CollectSink) Emit(e *Event) {
	s.mu.Lock()
	s.events = append(s.events, *e)
	s.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Tracer emits structured events to a sink. A nil *Tracer is fully inert:
// Start returns a zero Span whose End is a no-op, Event does nothing, and
// neither reads the clock nor allocates — the disabled fast path is a single
// nil check.
type Tracer struct {
	sink  Sink
	every int
	seq   atomic.Uint64
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithEvery throttles op-granularity events (EmitThrottled): only one in
// every n is emitted. Phase spans and governance events are never throttled.
// n < 1 is treated as 1.
func WithEvery(n int) TracerOption {
	return func(t *Tracer) {
		if n < 1 {
			n = 1
		}
		t.every = n
	}
}

// NewTracer returns a tracer writing to sink. A nil sink yields a nil
// tracer, so callers can pass through an optional sink unconditionally.
func NewTracer(sink Sink, opts ...TracerOption) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{sink: sink, every: 1}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether events will actually be emitted.
func (t *Tracer) Enabled() bool { return t != nil }

// Every returns the op-event throttle interval (1 for a nil tracer, so
// modulo checks in drivers stay well-defined).
func (t *Tracer) Every() int {
	if t == nil || t.every < 1 {
		return 1
	}
	return t.every
}

// Event emits a point event.
func (t *Tracer) Event(phase, name string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.sink.Emit(&Event{
		TS:    time.Now().UnixNano(),
		Seq:   t.seq.Add(1),
		Kind:  "event",
		Phase: phase,
		Name:  name,
		Attrs: attrs,
	})
}

// EmitThrottled emits a point event only when i is a multiple of the
// tracer's every-interval — the op-granularity firehose control.
func (t *Tracer) EmitThrottled(i int, phase, name string, attrs map[string]any) {
	if t == nil || i%t.Every() != 0 {
		return
	}
	t.Event(phase, name, attrs)
}

// Span is an in-flight timed region. The zero Span (from a nil tracer) is
// inert. Spans are values: starting and ending one performs no heap
// allocation beyond the emitted event itself.
type Span struct {
	t           *Tracer
	phase, name string
	start       time.Time
}

// Start opens a span. On a nil tracer it returns the zero Span without
// reading the clock.
func (t *Tracer) Start(phase, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, phase: phase, name: name, start: time.Now()}
}

// End closes the span and emits it. attrs may be nil.
func (sp Span) End(attrs map[string]any) {
	if sp.t == nil {
		return
	}
	now := time.Now()
	sp.t.sink.Emit(&Event{
		TS:    now.UnixNano(),
		Seq:   sp.t.seq.Add(1),
		Kind:  "span",
		Phase: sp.phase,
		Name:  sp.name,
		DurNS: now.Sub(sp.start).Nanoseconds(),
		Attrs: attrs,
	})
}
