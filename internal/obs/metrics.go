// Package obs is the repository's zero-dependency (stdlib-only) telemetry
// layer: a metrics registry of atomic counters, gauges, and fixed-bucket
// histograms; structured trace events with phase-labeled spans; and export
// surfaces (Prometheus text format, expvar, a pprof debug server, JSON
// snapshots).
//
// The paper's headline claims are quantitative — Table I lives and dies on
// per-phase runtime and peak DD node counts — so the quantities that explain
// DD simulator performance (cache hit rates, node-growth trajectories, per-
// phase latencies) are first-class observables here.
//
// Design rules:
//
//   - Disabled means free. Every metric type and the Tracer are nil-safe:
//     calling any method on a nil *Counter, *Gauge, *Histogram, *Registry,
//     or *Tracer is a no-op that performs no allocation and no time.Now
//     call. Instrumented hot paths guard on a single pointer nil-check.
//   - Writers are single untyped atomics, so a concurrently running debug
//     server scrapes race-free while the (single-threaded) simulation
//     writes.
//   - Names are flat strings; the catalogue lives in DESIGN.md
//     ("Observability"). Counters end in _total by convention, phase
//     accumulators in _ns.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (or mirror-set) atomic counter.
// The zero value is ready to use; all methods are nil-safe no-ops.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Set overwrites the value. Used to mirror counters maintained elsewhere
// (the dd.Manager's cheap non-atomic counters are mirrored into the registry
// at sync points rather than paying an atomic per unique-table lookup).
func (c *Counter) Set(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
// The zero value is ready to use; all methods are nil-safe no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is larger — a lock-free high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic buckets. Bounds are
// inclusive upper bounds; an implicit +Inf bucket catches the rest. The
// zero value is unusable — construct through Registry.Histogram — but a nil
// *Histogram is a safe no-op observer.
type Histogram struct {
	bounds  []float64 // immutable after construction, ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; small bound sets make a linear
	// scan competitive, but log2(16) is four compares either way.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d.Nanoseconds())) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram, with cumulative
// bucket counts in Prometheus style (Cumulative[i] counts observations
// <= Bounds[i]; the final entry is the +Inf bucket and equals Count).
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Count      uint64    `json:"count"`
	Sum        float64   `json:"sum"`
}

// Snapshot copies the histogram state. Cumulative counts are monotone
// non-decreasing by construction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.buckets)),
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation within the bucket that contains the
// target rank. The estimate for a rank landing in bucket (lo, hi] is
//
//	lo + (hi-lo) · (rank - cum_below) / bucket_count
//
// with lo = 0 for the first bucket. Ranks landing in the +Inf bucket are
// clamped to the largest finite bound (the histogram cannot say more), and
// an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Cumulative) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var below uint64
	for i, cum := range s.Cumulative {
		if float64(cum) < rank || cum == below {
			below = cum
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		inBucket := float64(cum - below)
		return lo + (hi-lo)*(rank-float64(below))/inBucket
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Default bucket bounds, in nanoseconds.
var (
	// OpLatencyBounds covers per-op apply latency: 1µs to 10s, decades.
	OpLatencyBounds = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	// WalkLatencyBounds covers per-sample walk latency: 100ns to 1ms.
	WalkLatencyBounds = []float64{100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 1e5, 1e6}
	// ServeLatencyBounds covers whole-request daemon latency, 100µs to 30s,
	// with 1-2.5-5 spacing: coarse decade buckets make interpolated
	// percentiles (HistogramSnapshot.Quantile) uselessly wide, so the serving
	// histograms pay for ~2× the buckets.
	ServeLatencyBounds = []float64{
		1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7,
		1e8, 2.5e8, 5e8, 1e9, 2.5e9, 5e9, 1e10, 3e10,
	}
)

// Registry is a named collection of metrics. Metric constructors are
// get-or-create and return stable pointers, so callers cache the pointer
// once and touch only the atomic on the hot path. All methods are safe for
// concurrent use, and every method on a nil *Registry returns a nil metric
// (whose methods are no-ops), so "no registry configured" costs one pointer
// comparison.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable with encoding/json.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies all metrics. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// StartPhase accumulates wall-clock time into the phase accumulator counter
// "phase_<phase>_ns" and emits a matching span to the tracer. It returns the
// stop function; when both the registry and the tracer are nil it returns a
// shared no-op so the disabled path does not allocate a closure or read the
// clock.
func StartPhase(r *Registry, t *Tracer, phase string) func() {
	if r == nil && t == nil {
		return noopStop
	}
	sp := t.Start(phase, phase)
	start := time.Now()
	return func() {
		if r != nil {
			r.Counter("phase_" + phase + "_ns").Add(uint64(time.Since(start).Nanoseconds()))
		}
		sp.End(nil)
	}
}

var noopStop = func() {}
