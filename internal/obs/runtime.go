package obs

// Go runtime health, scraped into the registry on demand so daemon
// dashboards show engine metrics (DD node counts, cache hit rates) and
// runtime metrics (heap, GC pauses, goroutines) side by side from one
// endpoint. Capture is pull-driven — debug-server scrapes and /v1/stats
// calls — because runtime.ReadMemStats is not free and a scrape cadence is
// exactly the right sampling rate for it.

import (
	"runtime"
	"sync"
)

// GCPauseBounds buckets GC stop-the-world pauses: 10µs to 100ms.
var GCPauseBounds = []float64{1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 1e8}

// runtime capture state per registry: the PauseNs ring is cumulative, so a
// capture must only feed pauses newer than the previous capture into the
// histogram. Keyed on the registry so independent registries (daemon vs
// library run) track independently.
var (
	rtMu     sync.Mutex
	rtLastGC = map[*Registry]uint32{}
)

// CaptureRuntime samples the Go runtime into r:
//
//	go_heap_alloc_bytes      live heap allocation (gauge)
//	go_heap_sys_bytes        heap memory obtained from the OS (gauge)
//	go_goroutines            current goroutine count (gauge)
//	go_gomaxprocs            GOMAXPROCS (gauge)
//	go_gc_runs_total         completed GC cycles (counter, mirrored)
//	go_gc_pause_ns           stop-the-world pause durations (histogram;
//	                         only pauses since the previous capture)
//
// Safe for concurrent use; a nil registry is a no-op.
func CaptureRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
	r.Counter("go_gc_runs_total").Set(uint64(ms.NumGC))

	rtMu.Lock()
	last := rtLastGC[r]
	rtLastGC[r] = ms.NumGC
	rtMu.Unlock()
	if ms.NumGC == last {
		return
	}
	h := r.Histogram("go_gc_pause_ns", GCPauseBounds)
	// PauseNs is a ring of the last 256 pause durations, indexed by
	// (NumGC+255)%256 for the most recent. Feed only the unseen ones.
	first := last
	if ms.NumGC > last+256 {
		first = ms.NumGC - 256
	}
	for n := first; n < ms.NumGC; n++ {
		h.Observe(float64(ms.PauseNs[n%256]))
	}
}
