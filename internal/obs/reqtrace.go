package obs

// Request-scoped tracing: a per-request span tree with W3C-compatible
// trace/span IDs, carried through the serving pipeline via context.Context.
//
// The process-global Tracer (trace.go) answers "what is this process doing";
// a RequestTrace answers "where did THIS request's latency go". Every
// /v1/sample response carries its trace ID in X-Weaksim-Trace-Id, and with
// debug=1 the JSON body echoes the full per-phase breakdown, so a slow
// request is attributable to parse vs queue wait vs strong simulation vs
// freeze vs sampling without correlating process-wide logs.
//
// Design rules mirror the rest of the package:
//
//   - Disabled means free. Every method on a nil *RequestTrace is a no-op
//     that performs no allocation and no time.Now call; TraceFromContext on
//     a context without a trace is a single Value lookup. The disabled
//     request path is pinned at 0 allocs/op by TestRequestTraceDisabledZeroAlloc.
//   - Single-flight friendly. Spans recorded while computing a shared
//     flight can be re-published into every coalesced waiter's trace via
//     AdoptShared: the waiters keep their own trace IDs but reference the
//     same span ID (Shared=true, OriginTrace set), which is exactly the
//     shape the W3C "links" concept models.
//   - Appends are mutex-guarded, so concurrent sampling workers may
//     annotate one request's trace safely.

import (
	"context"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte W3C trace identifier (non-zero when valid).
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier (non-zero when valid).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ID generation: a SplitMix64 stream over a process-unique seed. The IDs
// need uniqueness, not unpredictability, so this stays allocation-free and
// faster than crypto/rand; the seed folds in the process start time so two
// daemon instances do not collide.
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
)

func nextID64() uint64 {
	x := idSeed + idCounter.Add(1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// NewTraceID mints a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	putU64(t[:8], nextID64())
	putU64(t[8:], nextID64())
	return t
}

// NewSpanID mints a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	putU64(s[:], nextID64())
	return s
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// ParseTraceparent parses a W3C trace-context header
// (https://www.w3.org/TR/trace-context/):
//
//	00-<32 lowercase hex trace-id>-<16 lowercase hex parent-id>-<2 hex flags>
//
// It returns ok=false for anything malformed, an unsupported version, or an
// all-zero trace or parent ID — callers then mint fresh IDs instead of
// propagating garbage.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	// 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 bytes exactly for version 00.
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	if !hexDecode(t[:], h[3:35]) || !hexDecode(s[:], h[36:52]) || !isHexLower(h[53:]) {
		return TraceID{}, SpanID{}, false
	}
	if t.IsZero() || s.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// Traceparent renders a version-00 traceparent header with the sampled flag
// set, for propagating a request trace to downstream services.
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// hexDecode fills dst from the lowercase-hex src, rejecting uppercase (the
// W3C spec requires lowercase) and non-hex bytes.
func hexDecode(dst []byte, src string) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		if _, ok := hexVal(s[i]); !ok {
			return false
		}
	}
	return true
}

// SpanRecord is one finished span (or point event) in a request trace. It
// marshals into the debug=1 response body and the flight-recorder JSONL.
type SpanRecord struct {
	// SpanID identifies the span. Coalesced requests that shared one
	// strong simulation carry the SAME span ID for the shared phases.
	SpanID string `json:"span_id"`
	// Phase is the pipeline phase label (obs.Phase*).
	Phase string `json:"phase"`
	// Kind is "span" for timed regions, "event" for point annotations.
	Kind string `json:"kind"`
	// StartNS is the span start in nanoseconds since the Unix epoch.
	StartNS int64 `json:"start_ns,omitempty"`
	// DurNS is the span duration (0 for events).
	DurNS int64 `json:"dur_ns"`
	// Shared marks a span executed once but observed by several requests
	// (single-flight coalescing); OriginTrace is the trace that ran it.
	Shared      bool   `json:"shared,omitempty"`
	OriginTrace string `json:"origin_trace,omitempty"`
	// Attrs carries free-form structured attributes.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// RequestTrace is the per-request span collection. Construct with
// StartRequest, carry through the pipeline with ContextWithTrace /
// TraceFromContext, and close with Finish. All methods are safe for
// concurrent use and nil-safe no-ops on a nil receiver.
type RequestTrace struct {
	id       TraceID
	parent   SpanID // inbound traceparent parent span (zero when minted)
	root     SpanID
	start    time.Time
	recorder *FlightRecorder

	mu    sync.Mutex
	spans []SpanRecord
}

// StartRequest opens a request trace. traceparent, when a valid W3C header,
// supplies the trace ID (the inbound parent span is retained for the
// flight-recorder record); otherwise fresh IDs are minted. rec, when
// non-nil, receives the finished spans on Finish.
func StartRequest(traceparent string, rec *FlightRecorder) *RequestTrace {
	rt := &RequestTrace{root: NewSpanID(), start: time.Now(), recorder: rec}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		rt.id, rt.parent = tid, pid
	} else {
		rt.id = NewTraceID()
	}
	return rt
}

// ID returns the trace ID (zero for a nil trace).
func (rt *RequestTrace) ID() TraceID {
	if rt == nil {
		return TraceID{}
	}
	return rt.id
}

// Root returns the root span ID (zero for a nil trace).
func (rt *RequestTrace) Root() SpanID {
	if rt == nil {
		return SpanID{}
	}
	return rt.root
}

// ReqSpan is an in-flight request-scoped span. The zero value (from a nil
// trace) is inert.
type ReqSpan struct {
	rt    *RequestTrace
	id    SpanID
	phase string
	start time.Time
}

// StartSpan opens a phase span. On a nil trace it returns the inert zero
// ReqSpan without reading the clock or allocating.
func (rt *RequestTrace) StartSpan(phase string) ReqSpan {
	if rt == nil {
		return ReqSpan{}
	}
	return ReqSpan{rt: rt, id: NewSpanID(), phase: phase, start: time.Now()}
}

// ID returns the span's ID (zero for the inert span).
func (sp ReqSpan) ID() SpanID { return sp.id }

// End closes the span and appends it to the trace. attrs may be nil.
func (sp ReqSpan) End(attrs map[string]any) {
	if sp.rt == nil {
		return
	}
	now := time.Now()
	sp.rt.append(SpanRecord{
		SpanID:  sp.id.String(),
		Phase:   sp.phase,
		Kind:    "span",
		StartNS: sp.start.UnixNano(),
		DurNS:   now.Sub(sp.start).Nanoseconds(),
		Attrs:   attrs,
	})
}

// AddSpanAt records a completed span from explicit timestamps — used when
// the region was timed by other machinery (e.g. the admission queue knows
// enqueue/dequeue times but never held a ReqSpan).
func (rt *RequestTrace) AddSpanAt(phase string, start time.Time, dur time.Duration, attrs map[string]any) {
	if rt == nil {
		return
	}
	rt.append(SpanRecord{
		SpanID:  NewSpanID().String(),
		Phase:   phase,
		Kind:    "span",
		StartNS: start.UnixNano(),
		DurNS:   dur.Nanoseconds(),
		Attrs:   attrs,
	})
}

// Event records a point annotation (no duration; excluded from phase-sum
// accounting).
func (rt *RequestTrace) Event(phase string, attrs map[string]any) {
	if rt == nil {
		return
	}
	rt.append(SpanRecord{
		SpanID:  NewSpanID().String(),
		Phase:   phase,
		Kind:    "event",
		StartNS: time.Now().UnixNano(),
		Attrs:   attrs,
	})
}

func (rt *RequestTrace) append(rec SpanRecord) {
	rt.mu.Lock()
	rt.spans = append(rt.spans, rec)
	rt.mu.Unlock()
}

// Mark returns the current span count; SpansSince(Mark()) later yields the
// records appended in between. Used by the single-flight leader to extract
// exactly the simulation spans for sharing with coalesced waiters.
func (rt *RequestTrace) Mark() int {
	if rt == nil {
		return 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.spans)
}

// SpansSince copies the records appended at or after mark.
func (rt *RequestTrace) SpansSince(mark int) []SpanRecord {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark >= len(rt.spans) {
		return nil
	}
	out := make([]SpanRecord, len(rt.spans)-mark)
	copy(out, rt.spans[mark:])
	return out
}

// Spans copies every record so far.
func (rt *RequestTrace) Spans() []SpanRecord { return rt.SpansSince(0) }

// AdoptShared appends copies of spans into this trace marked Shared, with
// OriginTrace set to origin when it differs from this trace's own ID. A
// coalesced waiter calls this with the flight leader's simulation spans: the
// waiter keeps its own trace ID while its breakdown references the shared
// span IDs (one freeze ran; N requests observed it).
func (rt *RequestTrace) AdoptShared(origin TraceID, spans []SpanRecord) {
	if rt == nil || len(spans) == 0 {
		return
	}
	originHex := ""
	if origin != rt.id && !origin.IsZero() {
		originHex = origin.String()
	}
	rt.mu.Lock()
	for _, rec := range spans {
		rec.Shared = true
		rec.OriginTrace = originHex
		rt.spans = append(rt.spans, rec)
	}
	rt.mu.Unlock()
}

// PhaseBreakdown sums the owned (non-shared) timed spans per phase. The
// sequential pipeline phases tile a request, so for a cold request the
// values sum to (approximately) the request wall time.
func (rt *RequestTrace) PhaseBreakdown() map[string]int64 {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]int64, 8)
	for _, rec := range rt.spans {
		if rec.Kind == "span" && !rec.Shared {
			out[rec.Phase] += rec.DurNS
		}
	}
	return out
}

// Finish closes the trace: the root request span is appended and, when a
// flight recorder is attached, every span is published into the ring. name
// is the endpoint, status the HTTP status code.
func (rt *RequestTrace) Finish(name string, status int) {
	if rt == nil {
		return
	}
	dur := time.Since(rt.start)
	rt.mu.Lock()
	rt.spans = append(rt.spans, SpanRecord{
		SpanID:  rt.root.String(),
		Phase:   PhaseServe,
		Kind:    "span",
		StartNS: rt.start.UnixNano(),
		DurNS:   dur.Nanoseconds(),
		Attrs:   map[string]any{"endpoint": name, "status": status},
	})
	spans := make([]SpanRecord, len(rt.spans))
	copy(spans, rt.spans)
	rt.mu.Unlock()
	if rec := rt.recorder; rec != nil {
		trace := rt.id.String()
		for _, sp := range spans {
			rec.Record(FlightRecord{
				Trace: trace,
				Span:  sp.SpanID,
				Kind:  sp.Kind,
				Phase: sp.Phase,
				Name:  name,
				TS:    sp.StartNS,
				DurNS: sp.DurNS,
				Attrs: sp.Attrs,
			})
		}
	}
}

// traceKey is the context key for the request trace.
type traceKey struct{}

// ContextWithTrace attaches rt to ctx. A nil rt returns ctx unchanged, so
// the disabled path allocates nothing.
func ContextWithTrace(ctx context.Context, rt *RequestTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, rt)
}

// TraceFromContext returns the request trace attached to ctx, or nil. The
// nil return composes with every nil-safe method on RequestTrace, so
// instrumentation sites need no conditional.
func TraceFromContext(ctx context.Context) *RequestTrace {
	rt, _ := ctx.Value(traceKey{}).(*RequestTrace)
	return rt
}
