package statevec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"weaksim/internal/cnum"
	"weaksim/internal/gate"
)

func TestNewAndBudget(t *testing.T) {
	s, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Qubits() != 3 || s.Len() != 8 {
		t.Errorf("Qubits=%d Len=%d", s.Qubits(), s.Len())
	}
	if a := s.Amplitude(0); !a.ApproxEq(cnum.One, 0) {
		t.Errorf("initial amplitude = %v", a)
	}
	if n2 := s.Norm2(); n2 != 1 {
		t.Errorf("Norm2 = %v", n2)
	}
	if _, err := New(30, 26); !errors.Is(err, ErrMemoryOut) {
		t.Errorf("expected ErrMemoryOut, got %v", err)
	}
	if _, err := New(0, 0); err == nil {
		t.Error("expected error for zero qubits")
	}
}

func TestFromAmplitudes(t *testing.T) {
	if _, err := FromAmplitudes(make([]cnum.Complex, 3)); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
	if _, err := FromAmplitudes(nil); err == nil {
		t.Error("expected error for empty slice")
	}
	s, err := FromAmplitudes(make([]cnum.Complex, 8))
	if err != nil || s.Qubits() != 3 {
		t.Errorf("FromAmplitudes: %v, qubits=%d", err, s.Qubits())
	}
}

func TestApplyGateHadamard(t *testing.T) {
	s, _ := New(2, 0)
	s.ApplyGate(gate.HGate.Matrix(), 0)
	want := math.Sqrt2 / 2
	if a := s.Amplitude(0); math.Abs(a.Re-want) > 1e-15 {
		t.Errorf("amp(00) = %v", a)
	}
	if a := s.Amplitude(1); math.Abs(a.Re-want) > 1e-15 {
		t.Errorf("amp(01) = %v", a)
	}
	// H is self-inverse.
	s.ApplyGate(gate.HGate.Matrix(), 0)
	if a := s.Amplitude(0); math.Abs(a.Re-1) > 1e-12 {
		t.Errorf("H·H|0⟩ amp(00) = %v", a)
	}
}

func TestApplyControlledGate(t *testing.T) {
	// CNOT on |10⟩ (control q1 set) flips q0.
	s, _ := New(2, 0)
	s.ApplyGate(gate.XGate.Matrix(), 1)
	s.ApplyGate(gate.XGate.Matrix(), 0, gate.Pos(1))
	if a := s.Amplitude(3); !a.ApproxEq(cnum.One, 1e-15) {
		t.Errorf("CNOT|10⟩: amp(11) = %v", a)
	}
	// Negative control: fires when the control is |0⟩.
	s2, _ := New(2, 0)
	s2.ApplyGate(gate.XGate.Matrix(), 0, gate.Neg(1))
	if a := s2.Amplitude(1); !a.ApproxEq(cnum.One, 1e-15) {
		t.Errorf("anti-CNOT|00⟩: amp(01) = %v", a)
	}
}

func TestApplyPermutation(t *testing.T) {
	s, _ := New(3, 0)
	s.ApplyGate(gate.XGate.Matrix(), 0) // |001⟩
	// Cyclic increment on the low 2 qubits: 1 → 2.
	s.ApplyPermutation([]uint64{1, 2, 3, 0}, 2)
	if a := s.Amplitude(2); !a.ApproxEq(cnum.One, 1e-15) {
		t.Errorf("after increment: amp(010) = %v", a)
	}
	// Controlled on q2 (clear): identity.
	s.ApplyPermutation([]uint64{1, 2, 3, 0}, 2, gate.Pos(2))
	if a := s.Amplitude(2); !a.ApproxEq(cnum.One, 1e-15) {
		t.Errorf("controlled permutation fired with clear control: %v", a)
	}
}

func TestApplyPermutationErrors(t *testing.T) {
	s, _ := New(2, 0)
	for i, fn := range []func() error{
		func() error { return s.ApplyPermutation([]uint64{0, 1}, 3) },              // width > n
		func() error { return s.ApplyPermutation([]uint64{0, 1, 2}, 2) },           // size mismatch
		func() error { return s.ApplyPermutation([]uint64{0, 1}, 1, gate.Pos(0)) }, // control below width
		func() error { return s.ApplyPermutation([]uint64{0, 7, 1, 2}, 2) },        // entry out of range
		func() error { return s.ApplyPermutation([]uint64{0, 0, 1, 2}, 2) },        // not a bijection
	} {
		if err := fn(); !errors.Is(err, ErrInvalidOp) {
			t.Errorf("case %d: want ErrInvalidOp, got %v", i, err)
		}
	}
	// A failed apply must leave the state untouched.
	if a := s.Amplitude(0); !a.ApproxEq(cnum.One, 0) {
		t.Errorf("state mutated by failed permutation: %v", a)
	}
}

func TestProbabilitiesAndFidelity(t *testing.T) {
	s, _ := New(1, 0)
	s.ApplyGate(gate.HGate.Matrix(), 0)
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > 1e-15 || math.Abs(p[1]-0.5) > 1e-15 {
		t.Errorf("probabilities = %v", p)
	}
	o, _ := New(1, 0)
	f, err := s.FidelityWith(o)
	if err != nil || math.Abs(f-0.5) > 1e-12 {
		t.Errorf("fidelity = %v, %v; want 0.5", f, err)
	}
	big, _ := New(2, 0)
	if _, err := s.FidelityWith(big); err == nil {
		t.Error("expected size-mismatch error")
	}
	if _, err := s.MaxDeviationFrom(big); err == nil {
		t.Error("expected size-mismatch error")
	}
}

// Property: any sequence of unitary gates preserves the norm.
func TestUnitaryNormPreservationProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(ops []uint8) bool {
		s, err := New(4, 0)
		if err != nil {
			return false
		}
		gates := []gate.Gate{gate.HGate, gate.XGate, gate.TGate, gate.SGate,
			gate.RXGate(0.4), gate.RYGate(1.1)}
		for _, b := range ops {
			g := gates[int(b)%len(gates)]
			target := int(b>>3) % 4
			if b%2 == 0 {
				s.ApplyGate(g.Matrix(), target)
			} else {
				ctl := (target + 1) % 4
				s.ApplyGate(g.Matrix(), target, gate.Pos(ctl))
			}
		}
		return math.Abs(s.Norm2()-1) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestApplyGateErrorsOnBadControls(t *testing.T) {
	s, _ := New(2, 0)
	for i, fn := range []func() error{
		func() error { return s.ApplyGate(gate.XGate.Matrix(), 0, gate.Pos(0)) }, // control == target
		func() error { return s.ApplyGate(gate.XGate.Matrix(), 0, gate.Pos(7)) }, // control out of range
		func() error { return s.ApplyGate(gate.XGate.Matrix(), 9) },              // target out of range
	} {
		if err := fn(); !errors.Is(err, ErrInvalidOp) {
			t.Errorf("case %d: want ErrInvalidOp, got %v", i, err)
		}
	}
	if a := s.Amplitude(0); !a.ApproxEq(cnum.One, 0) {
		t.Errorf("state mutated by failed gate: %v", a)
	}
}
