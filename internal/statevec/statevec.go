// Package statevec implements the dense state-vector substrate: explicit
// arrays of 2^n amplitudes with in-place gate application. It is both a
// reference implementation for testing the decision-diagram engine and the
// storage backing the paper's vector-based sampling baseline (Section III).
//
// The package enforces an explicit memory budget. The paper's Table I marks
// benchmarks whose state vector exceeds main memory as "MO" (memory out);
// New returns ErrMemoryOut in exactly those situations so harnesses can
// report the same way.
package statevec

import (
	"errors"
	"fmt"
	"math"

	"weaksim/internal/cnum"
	"weaksim/internal/gate"
)

// ErrMemoryOut reports that the requested state vector exceeds the
// configured memory budget — the "MO" entries of the paper's Table I.
var ErrMemoryOut = errors.New("statevec: state vector exceeds memory budget (MO)")

// ErrInvalidOp reports an operation whose indices or structure are
// malformed: target or control out of range, control equal to target,
// permutation size mismatch, or a permutation table that is not a bijection.
// Apply methods return it (wrapped with detail) instead of panicking, so
// simulation drivers can surface bad circuits as ordinary errors.
var ErrInvalidOp = errors.New("statevec: invalid operation")

// DefaultMaxQubits is the default budget: 2^26 amplitudes occupy 1 GiB,
// comfortably inside this machine's memory while still exhibiting the
// vector-based blow-up the paper reports.
const DefaultMaxQubits = 26

// State is a dense 2^n-amplitude state vector. Qubit 0 is the least
// significant index bit.
type State struct {
	n    int
	amps []cnum.Complex
}

// New allocates the n-qubit all-zeros state |0...0⟩. maxQubits bounds the
// allocation; pass 0 for DefaultMaxQubits. If n exceeds the bound, New
// returns ErrMemoryOut without allocating.
func New(n, maxQubits int) (*State, error) {
	if n < 1 {
		return nil, fmt.Errorf("statevec: need at least one qubit")
	}
	if maxQubits <= 0 {
		maxQubits = DefaultMaxQubits
	}
	if n > maxQubits {
		return nil, fmt.Errorf("%w: %d qubits requested, budget %d", ErrMemoryOut, n, maxQubits)
	}
	s := &State{n: n, amps: make([]cnum.Complex, 1<<uint(n))}
	s.amps[0] = cnum.One
	return s, nil
}

// FromAmplitudes wraps an existing amplitude slice (not copied). The length
// must be a power of two.
func FromAmplitudes(amps []cnum.Complex) (*State, error) {
	n := 0
	for l := len(amps); l > 1; l >>= 1 {
		if l&1 != 0 {
			return nil, fmt.Errorf("statevec: length %d is not a power of two", len(amps))
		}
		n++
	}
	if len(amps) == 0 {
		return nil, fmt.Errorf("statevec: empty amplitude slice")
	}
	return &State{n: n, amps: amps}, nil
}

// Qubits returns the number of qubits.
func (s *State) Qubits() int { return s.n }

// Len returns the number of amplitudes (2^n).
func (s *State) Len() int { return len(s.amps) }

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx uint64) cnum.Complex { return s.amps[idx] }

// Amplitudes returns the backing slice. Callers must not resize it.
func (s *State) Amplitudes() []cnum.Complex { return s.amps }

// controlMask precomputes the control test: idx satisfies the controls iff
// idx&mask == want.
func controlMask(controls []gate.Control) (mask, want uint64) {
	for _, c := range controls {
		bit := uint64(1) << uint(c.Qubit)
		mask |= bit
		if !c.Negative {
			want |= bit
		}
	}
	return mask, want
}

// ApplyGate applies the controlled single-qubit gate u to the target qubit
// in place. Time O(2^n). Malformed indices return a wrapped ErrInvalidOp and
// leave the state untouched.
func (s *State) ApplyGate(u [2][2]cnum.Complex, target int, controls ...gate.Control) error {
	if target < 0 || target >= s.n {
		return fmt.Errorf("%w: target %d out of range [0,%d)", ErrInvalidOp, target, s.n)
	}
	for _, c := range controls {
		if c.Qubit == target {
			return fmt.Errorf("%w: control qubit %d equals target", ErrInvalidOp, c.Qubit)
		}
		if c.Qubit < 0 || c.Qubit >= s.n {
			return fmt.Errorf("%w: control qubit %d out of range [0,%d)", ErrInvalidOp, c.Qubit, s.n)
		}
	}
	mask, want := controlMask(controls)
	tbit := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s.amps)); i++ {
		if i&tbit != 0 || i&mask != want {
			continue
		}
		j := i | tbit
		// The control test above only inspected the target-0 index; both
		// paired indices agree on all non-target bits, so j passes too.
		a0, a1 := s.amps[i], s.amps[j]
		s.amps[i] = u[0][0].Mul(a0).Add(u[0][1].Mul(a1))
		s.amps[j] = u[1][0].Mul(a0).Add(u[1][1].Mul(a1))
	}
	return nil
}

// ApplyPermutation applies |j⟩ -> |perm[j]⟩ on the lowest width qubits,
// conditioned on the controls (which must lie at or above width). Malformed
// permutations (wrong size, out-of-range entries, non-bijective tables,
// controls below width) return a wrapped ErrInvalidOp and leave the state
// untouched.
func (s *State) ApplyPermutation(perm []uint64, width int, controls ...gate.Control) error {
	if width < 1 || width > s.n {
		return fmt.Errorf("%w: permutation width %d out of range [1,%d]", ErrInvalidOp, width, s.n)
	}
	if len(perm) != 1<<uint(width) {
		return fmt.Errorf("%w: permutation has %d entries, want %d", ErrInvalidOp, len(perm), 1<<uint(width))
	}
	if err := CheckPermutation(perm); err != nil {
		return err
	}
	for _, c := range controls {
		if c.Qubit < width || c.Qubit >= s.n {
			return fmt.Errorf("%w: permutation control %d out of range [%d,%d)", ErrInvalidOp, c.Qubit, width, s.n)
		}
	}
	mask, want := controlMask(controls)
	low := uint64(len(perm) - 1)
	out := make([]cnum.Complex, len(s.amps))
	for i := uint64(0); i < uint64(len(s.amps)); i++ {
		dst := i
		if i&mask == want {
			dst = (i &^ low) | perm[i&low]
		}
		out[dst] = s.amps[i]
	}
	s.amps = out
	return nil
}

// CheckPermutation verifies that perm is a bijection on [0, len(perm)): all
// entries in range and no entry repeated. It returns a wrapped ErrInvalidOp
// otherwise. circuit.Validate applies the same check, so both backends
// reject malformed permutations identically.
func CheckPermutation(perm []uint64) error {
	seen := make([]bool, len(perm))
	for j, p := range perm {
		if p >= uint64(len(perm)) {
			return fmt.Errorf("%w: permutation entry perm[%d]=%d out of range [0,%d)", ErrInvalidOp, j, p, len(perm))
		}
		if seen[p] {
			return fmt.Errorf("%w: permutation maps two inputs to %d (not a bijection)", ErrInvalidOp, p)
		}
		seen[p] = true
	}
	return nil
}

// Norm2 returns the squared Euclidean norm; a valid state has Norm2 == 1 up
// to rounding.
func (s *State) Norm2() float64 {
	var sum float64
	for _, a := range s.amps {
		sum += a.Abs2()
	}
	return sum
}

// Probabilities returns the measurement distribution |α_i|². The result is
// freshly allocated.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	for i, a := range s.amps {
		p[i] = a.Abs2()
	}
	return p
}

// FidelityWith returns |⟨s|t⟩|² against another state of equal size.
func (s *State) FidelityWith(t *State) (float64, error) {
	if s.n != t.n {
		return 0, fmt.Errorf("statevec: qubit count mismatch %d vs %d", s.n, t.n)
	}
	var re, im float64
	for i := range s.amps {
		p := s.amps[i].Conj().Mul(t.amps[i])
		re += p.Re
		im += p.Im
	}
	return re*re + im*im, nil
}

// MaxDeviationFrom returns the largest component-wise distance to another
// state — a strict equality metric for backend cross-validation.
func (s *State) MaxDeviationFrom(t *State) (float64, error) {
	if s.n != t.n {
		return 0, fmt.Errorf("statevec: qubit count mismatch %d vs %d", s.n, t.n)
	}
	var worst float64
	for i := range s.amps {
		d := s.amps[i].Sub(t.amps[i])
		if m := math.Hypot(d.Re, d.Im); m > worst {
			worst = m
		}
	}
	return worst, nil
}
