package job

import (
	"testing"
	"time"
)

// mkJob builds a minimal runnable jobState for scheduler tests.
func mkJob(id, tenant string, prio, chunks int, enq time.Time) *jobState {
	return &jobState{
		spec: Spec{
			ID:         id,
			Tenant:     tenant,
			Priority:   prio,
			Shots:      chunks * 10,
			ChunkShots: 10,
		},
		state:    StateQueued,
		done:     make([]bool, chunks),
		enqueued: enq,
	}
}

// TestDRRWeightRatio drives the pick loop with instant completions: a 10:1
// weight split must yield a 10:1 completed-chunk split exactly.
func TestDRRWeightRatio(t *testing.T) {
	s := newSched(map[string]int{"heavy": 10, "light": 1}, 64, 0)
	now := time.Now()
	a := mkJob("a", "heavy", PriorityNormal, 1000, now)
	b := mkJob("b", "light", PriorityNormal, 1000, now)
	s.enqueue(a)
	s.enqueue(b)

	served := map[string]int{}
	for i := 0; i < 110; i++ {
		j := s.pick(now)
		if j == nil {
			t.Fatalf("pick %d returned nil with backlog", i)
		}
		served[j.spec.Tenant]++
		j.chunksDone++ // instant completion, chunk never in flight
	}
	if served["heavy"] != 100 || served["light"] != 10 {
		t.Errorf("served heavy=%d light=%d, want 100/10", served["heavy"], served["light"])
	}
}

// TestDRRNoStarvation: even a weight-1 tenant against a huge weight is served
// within one rotation.
func TestDRRNoStarvation(t *testing.T) {
	s := newSched(map[string]int{"big": 1000}, 64, 0)
	now := time.Now()
	big := mkJob("big1", "big", PriorityNormal, 100000, now)
	small := mkJob("small1", "small", PriorityNormal, 10, now)
	s.enqueue(big)
	s.enqueue(small)

	servedSmall := 0
	for i := 0; i < 2050; i++ {
		j := s.pick(now)
		if j == nil {
			break
		}
		j.chunksDone++
		if j == small {
			servedSmall++
		}
	}
	if servedSmall == 0 {
		t.Error("weight-1 tenant starved across 2050 picks")
	}
}

// TestPriorityWithinTenant: high beats normal beats low for the same tenant.
func TestPriorityWithinTenant(t *testing.T) {
	s := newSched(nil, 64, time.Hour)
	now := time.Now()
	low := mkJob("low", "t", PriorityLow, 10, now)
	high := mkJob("high", "t", PriorityHigh, 10, now)
	normal := mkJob("normal", "t", PriorityNormal, 10, now)
	s.enqueue(low)
	s.enqueue(high)
	s.enqueue(normal)

	if j := s.pick(now); j != high {
		t.Fatalf("first pick = %v, want the high-priority job", j.spec.ID)
	}
}

// TestAgingPromotes: a low-priority job that has waited two aging intervals
// outranks a fresh normal job.
func TestAgingPromotes(t *testing.T) {
	aging := time.Minute
	s := newSched(nil, 64, aging)
	now := time.Now()
	aged := mkJob("aged", "t", PriorityLow, 10, now.Add(-2*aging))
	fresh := mkJob("fresh", "t", PriorityNormal, 10, now)
	s.enqueue(fresh)
	s.enqueue(aged)

	if j := s.pick(now); j != aged {
		t.Fatalf("first pick = %s, want the aged low-priority job", j.spec.ID)
	}
}

// TestInflightCap: a tenant at its in-flight cap is skipped; capacity
// elsewhere is used.
func TestInflightCap(t *testing.T) {
	s := newSched(map[string]int{"a": 10}, 1, 0)
	now := time.Now()
	a1 := mkJob("a1", "a", PriorityNormal, 10, now)
	a2 := mkJob("a2", "a", PriorityNormal, 10, now)
	b1 := mkJob("b1", "b", PriorityNormal, 10, now)
	s.enqueue(a1)
	s.enqueue(a2)
	s.enqueue(b1)

	j := s.pick(now)
	if j == nil || j.spec.Tenant != "a" {
		t.Fatalf("first pick should favor the weighted tenant, got %+v", j)
	}
	j.inflight = true
	s.tenant("a").inflight = 1

	j2 := s.pick(now)
	if j2 != b1 {
		t.Fatalf("capped tenant picked again: got %s, want b1", j2.spec.ID)
	}
}

// TestBackoffGate: a job inside its notBefore window is not runnable.
func TestBackoffGate(t *testing.T) {
	s := newSched(nil, 64, 0)
	now := time.Now()
	j := mkJob("j", "t", PriorityNormal, 10, now)
	j.notBefore = now.Add(time.Minute)
	s.enqueue(j)

	if got := s.pick(now); got != nil {
		t.Fatalf("picked a backed-off job: %s", got.spec.ID)
	}
	if got := s.pick(now.Add(2 * time.Minute)); got != j {
		t.Fatal("job not picked after its backoff expired")
	}
}

// TestTerminalDequeued: terminal and cancel-requested jobs never get picked.
func TestTerminalDequeued(t *testing.T) {
	s := newSched(nil, 64, 0)
	now := time.Now()
	done := mkJob("done", "t", PriorityNormal, 10, now)
	done.state = StateCompleted
	cancelled := mkJob("c", "t", PriorityNormal, 10, now)
	cancelled.cancelReq = true
	s.enqueue(done)
	s.enqueue(cancelled)

	if got := s.pick(now); got != nil {
		t.Fatalf("picked an unrunnable job: %s", got.spec.ID)
	}
}
