package job

// Manager is the job store + chunked executor. One mutex guards everything:
// the job table, the scheduler, and the WAL (appends and rotation), so
// "WAL write then in-memory update" is a single atomic step and there is no
// lock-ordering question between store and log. Chunk sampling — the long
// part — runs outside the lock; only the commit is serialized, and a chunk
// commit is one fsynced append (~ms) against chunk sample times of the same
// order or larger.
//
// Durability contract: a chunk becomes visible (counts merged, progress
// shown) only after its WAL record is on disk. Kill the process at any
// instant and restart: every committed chunk replays, the at-most-one
// in-flight chunk per job re-samples under its original rng.Stream(seed, i),
// and the final merged counts are bit-identical to an uninterrupted run.

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"time"

	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
	"weaksim/internal/rng"
	"weaksim/internal/statevec"
)

// Executor tuning defaults.
const (
	// DefaultWorkers is the chunk-executor pool size.
	DefaultWorkers = 2
	// DefaultChunkShots is the checkpoint granularity when a spec does not
	// choose one.
	DefaultChunkShots = 65536
	// DefaultRetainTerminal is how many terminal jobs stay queryable before
	// the oldest are evicted.
	DefaultRetainTerminal = 64
	// retryBackoff delays a chunk's reschedule after a transient failure
	// (queue full, snapshot flight abandoned).
	retryBackoff = 250 * time.Millisecond
)

// Config parameterizes a Manager.
type Config struct {
	// Dir is the WAL directory. Empty runs the store in memory only: jobs
	// work but do not survive a restart.
	Dir string
	// Workers is the chunk-executor pool size (default DefaultWorkers).
	Workers int
	// DefaultChunkShots fills Spec.ChunkShots when a submit leaves it zero.
	DefaultChunkShots int
	// TenantWeights maps tenant name to fair-share weight (absent = 1).
	TenantWeights map[string]int
	// MaxInFlightPerTenant bounds concurrently executing chunks per tenant
	// (default DefaultMaxInFlightPerTenant).
	MaxInFlightPerTenant int
	// MaxPerTenant is the non-terminal job quota per tenant (default
	// DefaultMaxPerTenant).
	MaxPerTenant int
	// AgingInterval is the queue wait that promotes a job one priority class
	// (default DefaultAgingInterval).
	AgingInterval time.Duration
	// RetainTerminal is how many terminal jobs stay queryable (default
	// DefaultRetainTerminal).
	RetainTerminal int
	// SegmentBytes is the WAL rotation threshold (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// Snapshot resolves a job's frozen sampler. Required.
	Snapshot SnapshotFunc
	// Metrics receives job_* series (nil disables).
	Metrics *obs.Registry
	// Recorder receives per-chunk trace spans (nil disables).
	Recorder *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.DefaultChunkShots <= 0 {
		c.DefaultChunkShots = DefaultChunkShots
	}
	if c.MaxPerTenant <= 0 {
		c.MaxPerTenant = DefaultMaxPerTenant
	}
	if c.RetainTerminal <= 0 {
		c.RetainTerminal = DefaultRetainTerminal
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	return c
}

// jobState is one job's live record. All fields are guarded by the Manager
// mutex except spec (immutable after submit) and trace (internally
// synchronized).
type jobState struct {
	spec  Spec
	state State

	counts     map[uint64]int // merged tallies of completed chunks
	done       []bool         // per-chunk completion
	chunksDone int
	shotsDone  int
	recovered  int // chunks reconstructed from the WAL at startup
	executed   int // chunks sampled by this process

	inflight    bool
	cancelReq   bool
	cancelChunk context.CancelFunc // cancels the in-flight chunk, if any
	notBefore   time.Time          // transient-failure backoff gate
	enqueued    time.Time          // for priority aging

	errCode string
	errMsg  string

	trace     *obs.RequestTrace
	phaseNS   map[string]int64
	updatedMS int64

	subs []*subscriber
}

func (j *jobState) nextChunk() int {
	for i, d := range j.done {
		if !d {
			return i
		}
	}
	return -1
}

// Manager owns the job table, scheduler, WAL, and worker pool.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	cond  *sync.Cond
	jobs  map[string]*jobState
	ids   []string // insertion order, for List and rotation snapshots
	sched *sched
	w     *wal     // nil when Config.Dir is empty
	term  []string // terminal job IDs, oldest first (retention ring)

	stopping bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	mSubmitted, mCompleted, mFailed, mCancelled *obs.Counter
	mChunks, mQuota, mWALRecords, mWALErrors    *obs.Counter
	gActive, gInflight, gSegments, gWALBytes    *obs.Gauge
}

// NewManager builds a Manager; call Start before use.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:   cfg,
		jobs:  make(map[string]*jobState),
		sched: newSched(cfg.TenantWeights, cfg.MaxInFlightPerTenant, cfg.AgingInterval),
	}
	m.cond = sync.NewCond(&m.mu)
	m.baseCtx, m.cancel = context.WithCancel(context.Background())

	reg := cfg.Metrics
	m.mSubmitted = reg.Counter("job_submitted_total")
	m.mCompleted = reg.Counter("job_completed_total")
	m.mFailed = reg.Counter("job_failed_total")
	m.mCancelled = reg.Counter("job_cancelled_total")
	m.mChunks = reg.Counter("job_chunks_done_total")
	m.mQuota = reg.Counter("job_quota_rejected_total")
	m.mWALRecords = reg.Counter("job_wal_records_total")
	m.mWALErrors = reg.Counter("job_wal_errors_total")
	m.gActive = reg.Gauge("job_active")
	m.gInflight = reg.Gauge("job_inflight_chunks")
	m.gSegments = reg.Gauge("job_wal_segments")
	m.gWALBytes = reg.Gauge("job_wal_bytes")
	obs.RegisterHelp("job_submitted_total", "Jobs accepted (WAL-persisted and enqueued).")
	obs.RegisterHelp("job_completed_total", "Jobs that finished every chunk.")
	obs.RegisterHelp("job_failed_total", "Jobs terminated by a deterministic verdict (MO/TO/internal).")
	obs.RegisterHelp("job_cancelled_total", "Jobs terminated by client request.")
	obs.RegisterHelp("job_chunks_done_total", "Chunk checkpoints committed (WAL fsync + merge).")
	obs.RegisterHelp("job_quota_rejected_total", "Submits rejected by the per-tenant quota (HTTP 429).")
	obs.RegisterHelp("job_wal_records_total", "Records appended to the job WAL.")
	obs.RegisterHelp("job_wal_errors_total", "Job WAL append/rotate failures.")
	obs.RegisterHelp("job_active", "Non-terminal jobs in the store.")
	obs.RegisterHelp("job_inflight_chunks", "Chunks currently executing.")
	obs.RegisterHelp("job_wal_segments", "Job WAL segment files on disk.")
	obs.RegisterHelp("job_wal_bytes", "Active job WAL segment size in bytes.")
	return m
}

// Start replays the WAL (when durable) and launches the worker pool.
func (m *Manager) Start() error {
	if m.cfg.Snapshot == nil {
		return errors.New("job: Config.Snapshot is required")
	}
	m.mu.Lock()
	if m.cfg.Dir != "" {
		w, records, salvaged, err := openWAL(m.cfg.Dir, m.cfg.SegmentBytes)
		if err != nil {
			m.mu.Unlock()
			return err
		}
		m.w = w
		for _, rec := range records {
			m.applyLocked(rec)
		}
		m.finishReplayLocked()
		if salvaged {
			// Damage was repaired by quarantine/truncation: make the replayed
			// state durable again immediately.
			m.rotateLocked()
		}
		m.updateWALGaugesLocked()
	}
	workers := m.cfg.Workers
	m.mu.Unlock()

	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return nil
}

// Stop drains the executor: workers finish (and commit) their in-flight
// chunks, then exit. If ctx expires first, in-flight chunks are cancelled —
// they release without committing, which is exactly the ≤1-chunk loss the
// durability contract already budgets for.
func (m *Manager) Stop(ctx context.Context) error {
	m.mu.Lock()
	m.stopping = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.cancel()
		<-done
	}
	m.cancel()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w != nil {
		err := m.w.close()
		m.w = nil
		return err
	}
	return nil
}

// ---- replay ----

// applyLocked folds one WAL record into the store. Replay is idempotent:
// duplicate submits and duplicate chunk records are skipped, and a
// checkpoint supersedes (never merges with) earlier chunk records.
func (m *Manager) applyLocked(rec Record) {
	switch rec.Type {
	case recSubmit:
		var spec Spec
		if json.Unmarshal(rec.Payload, &spec) != nil || spec.Validate() != nil {
			return
		}
		if _, ok := m.jobs[spec.ID]; ok {
			return
		}
		m.addJobLocked(spec)
	case recChunk:
		var cr chunkRecord
		if json.Unmarshal(rec.Payload, &cr) != nil {
			return
		}
		j, ok := m.jobs[cr.ID]
		if !ok || cr.Chunk < 0 || cr.Chunk >= len(j.done) || j.done[cr.Chunk] {
			return
		}
		counts, err := decodeCounts(cr.Counts)
		if err != nil {
			return
		}
		j.done[cr.Chunk] = true
		j.chunksDone++
		j.shotsDone += cr.Shots
		core.MergeCounts(j.counts, counts)
	case recState:
		var sr stateRecord
		if json.Unmarshal(rec.Payload, &sr) != nil {
			return
		}
		j, ok := m.jobs[sr.ID]
		if !ok || j.state.Terminal() || !sr.State.Terminal() {
			return
		}
		j.state = sr.State
		j.errCode, j.errMsg = sr.ErrCode, sr.Err
	case recCheckpoint:
		var cp checkpointRecord
		if json.Unmarshal(rec.Payload, &cp) != nil {
			return
		}
		j, ok := m.jobs[cp.ID]
		if !ok {
			return
		}
		counts, err := decodeCounts(cp.Counts)
		if err != nil {
			return
		}
		// Supersede: the checkpoint is the full merged state at compaction
		// time, not a delta.
		j.counts = counts
		j.done = make([]bool, j.spec.ChunksTotal())
		j.chunksDone, j.shotsDone = 0, 0
		for _, c := range cp.Done {
			if c < 0 || c >= len(j.done) || j.done[c] {
				continue
			}
			j.done[c] = true
			j.chunksDone++
			j.shotsDone += j.spec.ChunkShotCount(c)
		}
	}
}

// finishReplayLocked settles the replayed table: terminal jobs enter the
// retention ring, complete-but-unmarked jobs are finalized, and everything
// else is enqueued to resume.
func (m *Manager) finishReplayLocked() {
	now := time.Now()
	for _, id := range m.ids {
		j := m.jobs[id]
		j.recovered = j.chunksDone
		j.enqueued = now
		if j.state.Terminal() {
			m.sched.dequeue(j)
			m.term = append(m.term, id)
			continue
		}
		if j.chunksDone >= j.spec.ChunksTotal() {
			// Crash landed between the last chunk commit and its terminal
			// record (WAL append of the state failed): finish the transition.
			m.terminalizeLocked(j, StateCompleted, "", "")
			continue
		}
		if j.chunksDone > 0 {
			j.state = StateRunning
		} else {
			j.state = StateQueued
		}
	}
	m.gActive.Set(int64(m.activeLocked()))
	m.evictTerminalLocked()
}

// ---- store API ----

// Submit validates, persists, and enqueues a job. The WAL append happens
// before the job becomes visible: an accepted submit survives a crash.
func (m *Manager) Submit(spec Spec) (Status, error) {
	if spec.ID == "" {
		spec.ID = NewID()
	}
	if spec.ChunkShots <= 0 {
		spec.ChunkShots = m.cfg.DefaultChunkShots
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.CreatedUnixMS == 0 {
		spec.CreatedUnixMS = time.Now().UnixMilli()
	}
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopping {
		return Status{}, ErrShutdown
	}
	if _, ok := m.jobs[spec.ID]; ok {
		return Status{}, errors.New("job: duplicate ID")
	}
	if m.tenantActiveLocked(spec.Tenant) >= m.cfg.MaxPerTenant {
		m.mQuota.Inc()
		return Status{}, ErrQuota
	}
	if err := m.appendLocked(mustRecord(recSubmit, spec)); err != nil {
		return Status{}, err
	}
	j := m.addJobLocked(spec)
	j.enqueued = time.Now()
	m.mSubmitted.Inc()
	m.gActive.Add(1)
	m.cond.Broadcast()
	return m.statusLocked(j), nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// List returns every known job, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.ids))
	for _, id := range m.ids {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	sort.SliceStable(out, func(i, k int) bool {
		return out[i].CreatedUnixMS > out[k].CreatedUnixMS
	})
	return out
}

// Result returns a completed job's merged counts keyed by bitstring.
func (m *Manager) Result(id string) (map[string]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.state != StateCompleted {
		return nil, ErrNotCompleted
	}
	out := make(map[string]int, len(j.counts))
	for idx, n := range j.counts {
		out[core.FormatBits(idx, j.spec.Qubits)] = n
	}
	return out, nil
}

// Cancel requests termination. Idempotent; an in-flight chunk is cancelled,
// an idle job transitions immediately.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	if j.state.Terminal() {
		return m.statusLocked(j), nil
	}
	j.cancelReq = true
	if j.inflight {
		if j.cancelChunk != nil {
			j.cancelChunk()
		}
		// The worker observes the cancellation and finishes the transition.
	} else {
		m.terminalizeLocked(j, StateCancelled, "cancelled", "cancelled by request")
	}
	return m.statusLocked(j), nil
}

// Subscribe opens a progress-event stream for a job. The returned cancel
// func must be called when the consumer goes away. The first frame is the
// current state; a terminal job yields exactly one (terminal) frame and a
// closed channel.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	sub := &subscriber{ch: make(chan Event, subscriberBuffer)}
	sub.push(m.eventLocked(j))
	if j.state.Terminal() {
		close(sub.ch)
		return sub.ch, func() {}, nil
	}
	j.subs = append(j.subs, sub)
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, s := range j.subs {
			if s == sub {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
	return sub.ch, cancel, nil
}

// ---- internals ----

func (m *Manager) addJobLocked(spec Spec) *jobState {
	j := &jobState{
		spec:      spec,
		state:     StateQueued,
		counts:    make(map[uint64]int, core.CountsSizeHint(spec.Shots, spec.Qubits)),
		done:      make([]bool, spec.ChunksTotal()),
		trace:     obs.StartRequest("", m.cfg.Recorder),
		phaseNS:   make(map[string]int64),
		updatedMS: time.Now().UnixMilli(),
	}
	m.jobs[spec.ID] = j
	m.ids = append(m.ids, spec.ID)
	m.sched.enqueue(j)
	return j
}

func (m *Manager) tenantActiveLocked(tenant string) int {
	n := 0
	for _, id := range m.ids {
		j := m.jobs[id]
		if j.spec.Tenant == tenant && !j.state.Terminal() {
			n++
		}
	}
	return n
}

func (m *Manager) activeLocked() int {
	n := 0
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			n++
		}
	}
	return n
}

// appendLocked writes one WAL record (no-op when running in memory).
func (m *Manager) appendLocked(rec Record) error {
	if m.w == nil {
		return nil
	}
	if err := m.w.append(rec); err != nil {
		m.mWALErrors.Inc()
		return err
	}
	m.mWALRecords.Inc()
	m.updateWALGaugesLocked()
	return nil
}

func (m *Manager) updateWALGaugesLocked() {
	if m.w == nil {
		return
	}
	m.gSegments.Set(int64(m.w.segments()))
	m.gWALBytes.Set(m.w.size)
}

// rotateLocked compacts the WAL to the live state: per job a submit record,
// a checkpoint when chunks are done, and the terminal record if settled.
func (m *Manager) rotateLocked() {
	if m.w == nil {
		return
	}
	var snap []Record
	for _, id := range m.ids {
		j := m.jobs[id]
		snap = append(snap, mustRecord(recSubmit, j.spec))
		if j.chunksDone > 0 {
			var done []int
			for i, d := range j.done {
				if d {
					done = append(done, i)
				}
			}
			snap = append(snap, mustRecord(recCheckpoint, checkpointRecord{
				ID:     id,
				Done:   done,
				Counts: encodeCounts(j.counts),
			}))
		}
		if j.state.Terminal() {
			snap = append(snap, mustRecord(recState, stateRecord{
				ID:      id,
				State:   j.state,
				ErrCode: j.errCode,
				Err:     j.errMsg,
			}))
		}
	}
	if err := m.w.rotate(snap); err != nil {
		m.mWALErrors.Inc()
		return
	}
	m.updateWALGaugesLocked()
}

func (m *Manager) statusLocked(j *jobState) Status {
	st := Status{
		ID:              j.spec.ID,
		State:           j.state,
		Tenant:          j.spec.Tenant,
		Priority:        PriorityName(j.spec.Priority),
		CircuitKey:      j.spec.Key,
		Qubits:          j.spec.Qubits,
		Shots:           j.spec.Shots,
		Seed:            j.spec.Seed,
		ChunkShots:      j.spec.ChunkShots,
		ChunksTotal:     j.spec.ChunksTotal(),
		ChunksDone:      j.chunksDone,
		ShotsDone:       j.shotsDone,
		ChunksRecovered: j.recovered,
		ChunksExecuted:  j.executed,
		ErrorCode:       j.errCode,
		Error:           j.errMsg,
		TraceID:         j.trace.ID().String(),
		CreatedUnixMS:   j.spec.CreatedUnixMS,
		UpdatedUnixMS:   j.updatedMS,
	}
	if len(j.phaseNS) > 0 {
		st.PhaseNS = make(map[string]int64, len(j.phaseNS))
		for k, v := range j.phaseNS {
			st.PhaseNS[k] = v
		}
	}
	return st
}

func (m *Manager) eventLocked(j *jobState) Event {
	ev := Event{
		JobID:       j.spec.ID,
		State:       j.state,
		ChunksTotal: j.spec.ChunksTotal(),
		ChunksDone:  j.chunksDone,
		ShotsDone:   j.shotsDone,
		ErrorCode:   j.errCode,
		Error:       j.errMsg,
		Terminal:    j.state.Terminal(),
	}
	ev.Top = topCounts(j.counts, j.spec.Qubits, eventTopK)
	if len(j.phaseNS) > 0 {
		ev.PhaseNS = make(map[string]int64, len(j.phaseNS))
		for k, v := range j.phaseNS {
			ev.PhaseNS[k] = v
		}
	}
	return ev
}

// publishLocked fans the job's current state out to subscribers. Terminal
// frames also close every stream.
func (m *Manager) publishLocked(j *jobState) {
	if len(j.subs) == 0 {
		return
	}
	ev := m.eventLocked(j)
	for _, s := range j.subs {
		s.push(ev)
	}
	if ev.Terminal {
		for _, s := range j.subs {
			close(s.ch)
		}
		j.subs = nil
	}
}

// terminalizeLocked performs a terminal transition: WAL record first, then
// the visible state, scheduler dequeue, retention, trace flush, and the
// final event frame.
func (m *Manager) terminalizeLocked(j *jobState, st State, code, msg string) {
	if j.state.Terminal() {
		return
	}
	// Best-effort persistence: a failed append leaves the job resumable
	// after restart (it will re-reach this verdict), which is strictly
	// safer than losing the WAL invariant.
	_ = m.appendLocked(mustRecord(recState, stateRecord{ID: j.spec.ID, State: st, ErrCode: code, Err: msg}))
	j.state = st
	j.errCode, j.errMsg = code, msg
	j.updatedMS = time.Now().UnixMilli()
	m.sched.dequeue(j)
	m.term = append(m.term, j.spec.ID)
	m.gActive.Add(-1)
	switch st {
	case StateCompleted:
		m.mCompleted.Inc()
		j.trace.Finish("job", 200)
	case StateFailed:
		m.mFailed.Inc()
		j.trace.Finish("job", 500)
	case StateCancelled:
		m.mCancelled.Inc()
		j.trace.Finish("job", 499)
	}
	m.publishLocked(j)
	m.evictTerminalLocked()
}

// evictTerminalLocked trims the terminal retention ring.
func (m *Manager) evictTerminalLocked() {
	for len(m.term) > m.cfg.RetainTerminal {
		id := m.term[0]
		m.term = m.term[1:]
		delete(m.jobs, id)
		for i, known := range m.ids {
			if known == id {
				m.ids = append(m.ids[:i], m.ids[i+1:]...)
				break
			}
		}
	}
}

// ---- executor ----

func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		if m.stopping {
			m.mu.Unlock()
			return
		}
		j := m.sched.pick(time.Now())
		if j == nil {
			m.cond.Wait()
			continue
		}
		chunk := j.nextChunk()
		if chunk < 0 {
			// All chunks done but not yet terminal — settled by the
			// committing worker; nothing for us.
			continue
		}
		j.inflight = true
		if j.state == StateQueued {
			j.state = StateRunning
		}
		t := m.sched.tenant(j.spec.Tenant)
		t.inflight++
		m.gInflight.Add(1)
		ctx, cancelChunk := context.WithCancel(m.baseCtx)
		j.cancelChunk = cancelChunk
		m.mu.Unlock()

		m.runChunk(ctx, j, chunk)
		cancelChunk()

		m.mu.Lock()
		j.inflight = false
		j.cancelChunk = nil
		// Cancel may land in the window after commitChunk released the lock
		// but before this reset: it sees inflight=true and defers the
		// transition to us, yet the chunk it cancelled is already done. The
		// scheduler never picks a cancel-requested job, so settle it here or
		// it stays "running" forever.
		if j.cancelReq && !j.state.Terminal() {
			m.terminalizeLocked(j, StateCancelled, "cancelled", "cancelled by request")
		}
		t.inflight--
		m.gInflight.Add(-1)
		// A finished chunk may unblock this job for another worker, and the
		// tenant's in-flight slot is free again.
		m.cond.Broadcast()
	}
}

// runChunk executes one chunk outside the lock: resolve the frozen snapshot,
// walk ChunkShotCount(chunk) shots under rng.Stream(seed, chunk), then
// commit (WAL append + merge) under the lock.
func (m *Manager) runChunk(ctx context.Context, j *jobState, chunk int) {
	spec := j.spec
	sp := j.trace.StartSpan("job.chunk")
	if err := fault.Hit(fault.JobChunkSample); err != nil {
		sp.End(map[string]any{"chunk": chunk, "err": err.Error()})
		m.finishChunkErr(j, chunk, err)
		return
	}
	ctx = obs.ContextWithTrace(ctx, j.trace)

	snapStart := time.Now()
	sampler, err := m.cfg.Snapshot(ctx, spec)
	snapNS := time.Since(snapStart).Nanoseconds()
	if err != nil {
		sp.End(map[string]any{"chunk": chunk, "err": err.Error()})
		m.finishChunkErr(j, chunk, err)
		return
	}

	shots := spec.ChunkShotCount(chunk)
	sampleStart := time.Now()
	counts, err := core.CountsContext(ctx, sampler, rng.Stream(spec.Seed, chunk), shots)
	sampleNS := time.Since(sampleStart).Nanoseconds()
	if err != nil {
		sp.End(map[string]any{"chunk": chunk, "err": err.Error()})
		m.finishChunkErr(j, chunk, err)
		return
	}
	sp.End(map[string]any{"chunk": chunk, "shots": shots})
	m.commitChunk(j, chunk, shots, counts, snapNS, sampleNS)
}

// commitChunk makes one chunk durable and visible, in that order.
func (m *Manager) commitChunk(j *jobState, chunk, shots int, counts map[uint64]int, snapNS, sampleNS int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state.Terminal() || j.done[chunk] {
		return
	}
	if j.cancelReq {
		m.terminalizeLocked(j, StateCancelled, "cancelled", "cancelled by request")
		return
	}
	walStart := time.Now()
	rec := mustRecord(recChunk, chunkRecord{
		ID:     j.spec.ID,
		Chunk:  chunk,
		Shots:  shots,
		Counts: encodeCounts(counts),
	})
	if err := m.appendLocked(rec); err != nil {
		// The tallies are deterministic — dropping them and re-sampling the
		// chunk after a backoff is safe and keeps the WAL the source of
		// truth.
		m.releaseChunkLocked(j, retryBackoff)
		return
	}
	j.done[chunk] = true
	j.chunksDone++
	j.executed++
	j.shotsDone += shots
	core.MergeCounts(j.counts, counts)
	j.phaseNS["snapshot"] += snapNS
	j.phaseNS["sample"] += sampleNS
	j.phaseNS["wal"] += time.Since(walStart).Nanoseconds()
	j.updatedMS = time.Now().UnixMilli()
	m.mChunks.Inc()
	if j.chunksDone >= j.spec.ChunksTotal() {
		m.terminalizeLocked(j, StateCompleted, "", "")
	} else {
		m.publishLocked(j)
	}
	if m.w != nil && m.w.needsRotate() {
		m.rotateLocked()
	}
}

// releaseChunkLocked returns an uncommitted chunk to the scheduler after a
// backoff (zero = immediately runnable, e.g. on shutdown park).
func (m *Manager) releaseChunkLocked(j *jobState, backoff time.Duration) {
	if backoff > 0 {
		j.notBefore = time.Now().Add(backoff)
		time.AfterFunc(backoff, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
	}
}

// finishChunkErr classifies a chunk failure:
//
//   - cancellation requested → terminal cancelled;
//   - shutdown/park (draining daemon, cancelled base context) → chunk
//     released, job resumes on the next start;
//   - transient (ErrRetry: queue full, abandoned snapshot flight) → released
//     with a short backoff;
//   - resource verdicts (MO via dd node budget or statevec memory, TO via
//     deadline) → terminal failed with the matching code — a verdict is an
//     answer, not a retryable fault;
//   - anything else → terminal failed ("internal").
func (m *Manager) finishChunkErr(j *jobState, chunk int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	var verdict *VerdictError
	switch {
	case j.cancelReq:
		m.terminalizeLocked(j, StateCancelled, "cancelled", "cancelled by request")
	case errors.As(err, &verdict):
		m.terminalizeLocked(j, StateFailed, verdict.Code, err.Error())
	case errors.Is(err, ErrShutdown), errors.Is(err, context.Canceled):
		m.releaseChunkLocked(j, 0)
	case errors.Is(err, ErrRetry):
		m.releaseChunkLocked(j, retryBackoff)
	case errors.Is(err, dd.ErrNodeBudget), errors.Is(err, statevec.ErrMemoryOut):
		m.terminalizeLocked(j, StateFailed, "memory_out", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		m.terminalizeLocked(j, StateFailed, "timeout", err.Error())
	default:
		m.terminalizeLocked(j, StateFailed, "internal", err.Error())
	}
}
