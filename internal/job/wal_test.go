package job

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestWAL(t *testing.T, dir string, maxSeg int64) (*wal, []Record, bool) {
	t.Helper()
	w, recs, salvaged, err := openWAL(dir, maxSeg)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	return w, recs, salvaged
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, salvaged := openTestWAL(t, dir, 0)
	if len(recs) != 0 || salvaged {
		t.Fatalf("fresh log: records=%d salvaged=%v", len(recs), salvaged)
	}
	want := []Record{
		{Type: recSubmit, Payload: []byte(`{"id":"j1"}`)},
		{Type: recChunk, Payload: []byte(`{"id":"j1","chunk":0}`)},
		{Type: recState, Payload: []byte(`{"id":"j1","state":"completed"}`)},
	}
	for _, rec := range want {
		if err := w.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, got, salvaged := openTestWAL(t, dir, 0)
	defer w2.close()
	if salvaged {
		t.Fatal("clean log reported salvaged")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d: got %d/%q, want %d/%q",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
	// The reopened log must accept further appends (O_APPEND on the tail).
	if err := w2.append(Record{Type: recChunk, Payload: []byte(`{"id":"j1","chunk":1}`)}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestWALTornTail simulates a crash mid-append: a partial final frame must be
// truncated away and every complete record before it preserved.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir, 0)
	for i := 0; i < 3; i++ {
		if err := w.append(Record{Type: recChunk, Payload: []byte(`{"chunk":true}`)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	seg := filepath.Join(dir, segName(w.seq))
	goodSize := w.size
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Append half a frame: a plausible header promising more bytes than exist.
	full := encodeFrame(Record{Type: recChunk, Payload: []byte(`{"torn":true}`)})
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, salvaged := openTestWAL(t, dir, 0)
	defer w2.close()
	if !salvaged {
		t.Error("torn tail not reported as salvaged")
	}
	if len(recs) != 3 {
		t.Errorf("replayed %d records, want 3", len(recs))
	}
	if fi, err := os.Stat(seg); err != nil {
		t.Errorf("tail segment gone: %v", err)
	} else if fi.Size() != goodSize {
		t.Errorf("tail segment size %d after truncation, want %d", fi.Size(), goodSize)
	}
	// And the log keeps working from the truncation point.
	if err := w2.append(Record{Type: recState, Payload: []byte(`{}`)}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
}

// TestWALCorruptQuarantine flips a byte inside an early record: the segment
// must be quarantined (renamed .corrupt), the valid prefix salvaged.
func TestWALCorruptQuarantine(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := w.append(Record{Type: recChunk, Payload: []byte(`{"n":123456}`)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	seg := filepath.Join(dir, segName(w.seq))
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the payload of the second record (offset past the first frame).
	frameLen := len(encodeFrame(Record{Type: recChunk, Payload: []byte(`{"n":123456}`)}))
	data[frameLen+10] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, salvaged := openTestWAL(t, dir, 0)
	defer w2.close()
	if !salvaged {
		t.Error("corruption not reported as salvaged")
	}
	if len(recs) != 1 {
		t.Errorf("salvaged %d records, want 1 (the valid prefix)", len(recs))
	}
	entries, _ := os.ReadDir(dir)
	var corrupt int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), corruptExt) {
			corrupt++
		}
	}
	if corrupt != 1 {
		t.Errorf("%d .corrupt files, want 1", corrupt)
	}
}

// TestWALRotation compacts into a fresh segment and deletes the old ones;
// replay of the compacted log yields exactly the snapshot.
func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir, 128) // tiny threshold
	for i := 0; i < 10; i++ {
		if err := w.append(Record{Type: recChunk, Payload: []byte(`{"filler":"xxxxxxxxxxxxxxxx"}`)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if !w.needsRotate() {
		t.Fatal("expected rotation to be due")
	}
	snapshot := []Record{
		{Type: recSubmit, Payload: []byte(`{"id":"j9"}`)},
		{Type: recCheckpoint, Payload: []byte(`{"id":"j9","done":[0,1]}`)},
	}
	if err := w.rotate(snapshot); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if got := w.segments(); got != 1 {
		t.Errorf("%d segments after rotation, want 1", got)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, recs, salvaged := openTestWAL(t, dir, 128)
	defer w2.close()
	if salvaged {
		t.Error("rotated log reported salvaged")
	}
	if len(recs) != len(snapshot) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(snapshot))
	}
	for i := range snapshot {
		if recs[i].Type != snapshot[i].Type || !bytes.Equal(recs[i].Payload, snapshot[i].Payload) {
			t.Errorf("record %d mismatch after rotation", i)
		}
	}
}

func TestScanSegmentOversizedLength(t *testing.T) {
	// A frame header promising an absurd payload is corruption, not an
	// allocation request.
	frame := encodeFrame(Record{Type: recChunk, Payload: []byte("x")})
	frame[0], frame[1], frame[2], frame[3] = 0xFF, 0xFF, 0xFF, 0x7F
	res := scanSegment(frame)
	if !res.corrupt {
		t.Error("oversized length not flagged corrupt")
	}
}
