// Package job is the durable batch-execution subsystem of the sampling
// daemon: long multi-million-shot sampling workloads run as asynchronous
// jobs instead of single HTTP requests racing a deadline.
//
// The paper's economics (Hillmich/Markov/Wille, DAC 2020) make every shot an
// O(n) walk off a precomputed decision-diagram snapshot — cheap per shot but
// long in wall clock at batch sizes, which is exactly the shape that must
// survive client disconnects, drains, and crashes. Three pieces provide
// that:
//
//   - a write-ahead log (wal.go) in the snapstore codec style — versioned
//     records with a CRC-64 (ECMA) trailer, atomic tmp+rename segment
//     rotation, .corrupt quarantine — persisting job specs and per-chunk
//     completion records, so restart replay reconstructs every non-terminal
//     job exactly;
//   - a chunked executor (manager.go): shots split into fixed-size chunks,
//     chunk i sampled under the independent stream rng.Stream(seed, i) and
//     checkpointed on completion, so a crash loses at most the in-flight
//     chunk and the final merged counts are bit-identical to an
//     uninterrupted run at any kill point (chunk tallies are independent
//     and integer merging is commutative);
//   - a weighted fair-share scheduler (sched.go): per-tenant deficit
//     round-robin with three priority classes, starvation aging, in-flight
//     caps, and quota errors, so one tenant's million-shot backlog cannot
//     starve everyone else.
//
// Resource-governance verdicts stay verdicts: a node-budget overrun (the
// paper's MO) or a blown simulation deadline (TO) during a chunk's snapshot
// build is a terminal job state, never a retry.
package job

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"weaksim/internal/core"
)

// Priority classes. Lower is more urgent.
const (
	PriorityHigh   = 0
	PriorityNormal = 1
	PriorityLow    = 2
)

// ParsePriority maps the API spelling to a class (empty = normal).
func ParsePriority(s string) (int, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return 0, fmt.Errorf("job: unknown priority %q (want high, normal, or low)", s)
}

// PriorityName is the inverse of ParsePriority.
func PriorityName(p int) string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	default:
		return "normal"
	}
}

// State is a job lifecycle state.
type State string

const (
	// StateQueued: accepted and WAL-persisted, waiting for the scheduler.
	StateQueued State = "queued"
	// StateRunning: at least one chunk has been picked up.
	StateRunning State = "running"
	// StateCompleted: every chunk finished; the result is final.
	StateCompleted State = "completed"
	// StateFailed: a chunk hit a deterministic verdict (MO/TO/parse error);
	// the job will not be retried.
	StateFailed State = "failed"
	// StateCancelled: terminal by client request.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCancelled
}

// Errors surfaced by the manager. ErrRetry and ErrShutdown are sentinels the
// snapshot provider wraps transient failures in: a retryable chunk releases
// back to the scheduler instead of failing the job.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("job: not found")
	// ErrQuota reports that a tenant is at its non-terminal job quota.
	// The serving layer maps it to HTTP 429 with Retry-After.
	ErrQuota = errors.New("job: tenant quota exceeded")
	// ErrRetry marks a chunk failure as transient (queue full, snapshot
	// flight abandoned): the chunk is released and rescheduled after a
	// short backoff rather than failing the job.
	ErrRetry = errors.New("job: transient failure, chunk will be retried")
	// ErrShutdown marks a chunk failure caused by the daemon draining: the
	// job stays non-terminal in the WAL and resumes on the next start.
	ErrShutdown = errors.New("job: executor shutting down")
	// ErrNotCompleted reports a result fetch on a job that has not
	// completed.
	ErrNotCompleted = errors.New("job: not completed")
)

// VerdictError is a deterministic chunk failure with an explicit error code
// (e.g. "bad_circuit", "config_changed"): the job fails terminally with Code
// as its Status.ErrorCode instead of the generic "internal".
type VerdictError struct {
	Code string
	Err  error
}

func (e *VerdictError) Error() string { return e.Err.Error() }
func (e *VerdictError) Unwrap() error { return e.Err }

// Spec is the immutable description of a job, persisted verbatim in the
// WAL's submit record. Everything needed to resume after a crash is here:
// the circuit source re-resolves the frozen snapshot, and (Seed, ChunkShots)
// re-derive every chunk's random stream.
type Spec struct {
	// ID is the job identifier (assigned at submit).
	ID string `json:"id"`
	// Key is the canonical circuit hash (the snapshot-cache key) computed at
	// submit time; resume re-derives it and refuses to run if the server's
	// keying (norm, codec) drifted under a persisted job.
	Key string `json:"key"`
	// QASM or Circuit names the work: exactly one is set.
	QASM    string `json:"qasm,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	// Qubits is the register width, recorded so results format without
	// re-parsing the circuit.
	Qubits int `json:"qubits"`
	// Shots is the total sample budget.
	Shots int `json:"shots"`
	// Seed is the base sampling seed; chunk i draws from
	// rng.Stream(Seed, i).
	Seed uint64 `json:"seed"`
	// ChunkShots is the per-chunk shot count (the checkpoint granularity).
	ChunkShots int `json:"chunk_shots"`
	// Norm is the DD normalization scheme the key was computed under.
	Norm string `json:"norm"`
	// Priority is the class (PriorityHigh..PriorityLow).
	Priority int `json:"priority"`
	// Tenant attributes the job for fair-share scheduling and quotas.
	Tenant string `json:"tenant"`
	// CreatedUnixMS is the submit wall-clock (for aging and display).
	CreatedUnixMS int64 `json:"created_unix_ms"`
}

// ChunksTotal is the number of chunks the shot budget splits into.
func (s *Spec) ChunksTotal() int {
	if s.Shots <= 0 || s.ChunkShots <= 0 {
		return 0
	}
	return (s.Shots + s.ChunkShots - 1) / s.ChunkShots
}

// ChunkShotCount is chunk i's shot quota (the last chunk takes the
// remainder).
func (s *Spec) ChunkShotCount(i int) int {
	total := s.ChunksTotal()
	if i < 0 || i >= total {
		return 0
	}
	if i == total-1 {
		if rem := s.Shots - (total-1)*s.ChunkShots; rem > 0 {
			return rem
		}
	}
	return s.ChunkShots
}

// Validate checks the spec's internal consistency (the serving layer has
// already validated the circuit itself).
func (s *Spec) Validate() error {
	if s.ID == "" {
		return errors.New("job: spec has no ID")
	}
	if (s.QASM == "") == (s.Circuit == "") {
		return errors.New("job: exactly one of QASM and Circuit must be set")
	}
	if s.Shots < 1 {
		return fmt.Errorf("job: shots must be positive, got %d", s.Shots)
	}
	if s.ChunkShots < 1 {
		return fmt.Errorf("job: chunk_shots must be positive, got %d", s.ChunkShots)
	}
	if s.Priority < PriorityHigh || s.Priority > PriorityLow {
		return fmt.Errorf("job: priority out of range: %d", s.Priority)
	}
	if s.Tenant == "" {
		return errors.New("job: spec has no tenant")
	}
	return nil
}

// NewID mints a job identifier: 16 hex chars of OS randomness under a "j"
// prefix. Uniqueness across restarts comes from the entropy source, not a
// persisted counter, so ID minting never touches the WAL.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// clock-derived ID rather than failing the submit.
		return fmt.Sprintf("j%016x", uint64(time.Now().UnixNano()))
	}
	return "j" + hex.EncodeToString(b[:])
}

// Status is a point-in-time snapshot of a job, JSON-ready for the API.
type Status struct {
	ID         string `json:"job_id"`
	State      State  `json:"state"`
	Tenant     string `json:"tenant"`
	Priority   string `json:"priority"`
	CircuitKey string `json:"circuit_key"`
	Qubits     int    `json:"qubits"`
	Shots      int    `json:"shots"`
	Seed       uint64 `json:"seed"`
	ChunkShots int    `json:"chunk_shots"`
	// ChunksTotal/ChunksDone are overall progress; ShotsDone is the same
	// progress in shots.
	ChunksTotal int `json:"chunks_total"`
	ChunksDone  int `json:"chunks_done"`
	ShotsDone   int `json:"shots_done"`
	// ChunksRecovered is how many completed chunks were reconstructed from
	// the WAL when this process started (0 for jobs submitted to it).
	ChunksRecovered int `json:"chunks_recovered"`
	// ChunksExecuted is how many chunks this process actually sampled for
	// the job. After a kill-and-resume,
	// Executed - (Total - Recovered) is exactly the re-sampled chunk count
	// the durability contract bounds at one.
	ChunksExecuted int `json:"chunks_executed"`
	// ErrorCode/Error describe a failed job (memory_out, timeout, internal,
	// bad_circuit, config_changed).
	ErrorCode string `json:"error_code,omitempty"`
	Error     string `json:"error,omitempty"`
	// PhaseNS is the cumulative per-phase wall-clock breakdown: snapshot
	// (build/fetch of the frozen DD), sample (chunk walks), wal (checkpoint
	// appends).
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// TraceID is the job's request-trace ID (chunk spans land in the flight
	// recorder under it).
	TraceID       string `json:"trace_id,omitempty"`
	CreatedUnixMS int64  `json:"created_unix_ms"`
	UpdatedUnixMS int64  `json:"updated_unix_ms"`
}

// SnapshotFunc resolves the frozen sampler a job's chunks walk. The serving
// layer backs it with the snapshot LRU + single-flight + simulation pool, so
// a job's strong simulation is shared with interactive traffic and runs at
// most once. Transient failures must be wrapped in ErrRetry (chunk
// reschedules) or ErrShutdown (job parks until restart); anything else is a
// deterministic verdict and fails the job terminally.
type SnapshotFunc func(ctx context.Context, spec Spec) (core.Sampler, error)
