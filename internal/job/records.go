package job

// WAL record payloads (JSON inside the CRC-framed records of wal.go) and the
// count-map codec. JSON keeps the log greppable in the field; integrity and
// atomicity come from the frame layer, not the payload encoding.

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// chunkRecord marks one chunk's tallies final.
type chunkRecord struct {
	ID     string         `json:"id"`
	Chunk  int            `json:"chunk"`
	Shots  int            `json:"shots"`
	Counts map[string]int `json:"counts"`
}

// stateRecord is a terminal transition.
type stateRecord struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	ErrCode string `json:"err_code,omitempty"`
	Err     string `json:"err,omitempty"`
}

// checkpointRecord is a compaction-time full snapshot of one job's progress.
// On replay it supersedes every earlier chunk record for the job.
type checkpointRecord struct {
	ID     string         `json:"id"`
	Done   []int          `json:"done"`
	Counts map[string]int `json:"counts"`
}

// encodeCounts renders a basis-index tally as a JSON-safe map (decimal
// uint64 keys).
func encodeCounts(counts map[uint64]int) map[string]int {
	out := make(map[string]int, len(counts))
	for idx, n := range counts {
		out[strconv.FormatUint(idx, 10)] = n
	}
	return out
}

// decodeCounts is the inverse of encodeCounts.
func decodeCounts(in map[string]int) (map[uint64]int, error) {
	out := make(map[uint64]int, len(in))
	for key, n := range in {
		idx, err := strconv.ParseUint(key, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("job: bad count key %q: %w", key, err)
		}
		out[idx] = n
	}
	return out, nil
}

// mustRecord marshals a payload into a Record; the payload types above
// marshal unconditionally.
func mustRecord(typ uint8, payload any) Record {
	b, err := json.Marshal(payload)
	if err != nil {
		panic(fmt.Sprintf("job: marshal record type %d: %v", typ, err))
	}
	return Record{Type: typ, Payload: b}
}
