package job

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestParsePriorityRoundTrip(t *testing.T) {
	cases := map[string]int{
		"":       PriorityNormal,
		"normal": PriorityNormal,
		"high":   PriorityHigh,
		"low":    PriorityLow,
	}
	for s, want := range cases {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("ParsePriority accepted an unknown class")
	}
	for _, p := range []int{PriorityHigh, PriorityNormal, PriorityLow} {
		back, err := ParsePriority(PriorityName(p))
		if err != nil || back != p {
			t.Errorf("PriorityName(%d) = %q does not round-trip: %d, %v", p, PriorityName(p), back, err)
		}
	}
	if PriorityName(99) != "normal" {
		t.Error("PriorityName of an out-of-range class should default to normal")
	}
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateCompleted: true, StateFailed: true, StateCancelled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, !want, want)
		}
	}
}

func TestVerdictError(t *testing.T) {
	inner := errors.New("the cause")
	ve := &VerdictError{Code: "bad_circuit", Err: inner}
	if ve.Error() != "the cause" {
		t.Errorf("Error() = %q", ve.Error())
	}
	if !errors.Is(ve, inner) {
		t.Error("errors.Is does not see through VerdictError")
	}
	var got *VerdictError
	if !errors.As(fmt.Errorf("wrapped: %w", ve), &got) || got.Code != "bad_circuit" {
		t.Error("errors.As does not recover the VerdictError")
	}
}

func TestSpecChunkArithmetic(t *testing.T) {
	s := Spec{Shots: 250, ChunkShots: 100}
	if got := s.ChunksTotal(); got != 3 {
		t.Fatalf("ChunksTotal = %d, want 3", got)
	}
	for i, want := range []int{100, 100, 50} {
		if got := s.ChunkShotCount(i); got != want {
			t.Errorf("ChunkShotCount(%d) = %d, want %d", i, got, want)
		}
	}
	if s.ChunkShotCount(-1) != 0 || s.ChunkShotCount(3) != 0 {
		t.Error("out-of-range chunks must have zero shots")
	}
	// An exact multiple: the last chunk is full-size, not zero.
	even := Spec{Shots: 200, ChunkShots: 100}
	if got := even.ChunkShotCount(1); got != 100 {
		t.Errorf("even split last chunk = %d, want 100", got)
	}
	degenerate := Spec{Shots: 0, ChunkShots: 100}
	if degenerate.ChunksTotal() != 0 {
		t.Error("zero shots must mean zero chunks")
	}
}

func TestSpecValidate(t *testing.T) {
	valid := Spec{ID: "j1", Circuit: "ghz_3", Shots: 10, ChunkShots: 5, Tenant: "t"}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no ID", func(s *Spec) { s.ID = "" }},
		{"no circuit", func(s *Spec) { s.Circuit = "" }},
		{"both sources", func(s *Spec) { s.QASM = "OPENQASM 2.0;" }},
		{"zero shots", func(s *Spec) { s.Shots = 0 }},
		{"zero chunk shots", func(s *Spec) { s.ChunkShots = 0 }},
		{"priority too low", func(s *Spec) { s.Priority = PriorityLow + 1 }},
		{"priority negative", func(s *Spec) { s.Priority = -1 }},
		{"no tenant", func(s *Spec) { s.Tenant = "" }},
	}
	for _, m := range mutations {
		s := valid
		m.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestNewIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if !strings.HasPrefix(id, "j") || len(id) != 17 {
			t.Fatalf("malformed ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestSubscriberPushDropsOldest(t *testing.T) {
	s := &subscriber{ch: make(chan Event, 2)}
	for i := 0; i < 5; i++ {
		s.push(Event{ChunksDone: i})
	}
	// Capacity 2, newest always lands: the survivors are a prefix-dropped
	// window ending in the last push.
	first, second := <-s.ch, <-s.ch
	if second.ChunksDone != 4 {
		t.Fatalf("newest frame lost: tail is %d, want 4", second.ChunksDone)
	}
	if first.ChunksDone >= second.ChunksDone {
		t.Fatalf("frames out of order: %d then %d", first.ChunksDone, second.ChunksDone)
	}
}

func TestTopCountsDeterministicTieBreak(t *testing.T) {
	counts := map[uint64]int{0: 5, 1: 9, 2: 5, 3: 1, 4: 9, 5: 2}
	got := topCounts(counts, 3, 4)
	want := []TopCount{
		{Bits: "001", Count: 9}, {Bits: "100", Count: 9},
		{Bits: "000", Count: 5}, {Bits: "010", Count: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("topCounts = %v, want %v", got, want)
	}
	if topCounts(nil, 3, 4) != nil || topCounts(counts, 3, 0) != nil {
		t.Error("empty tally or k<=0 must yield nil")
	}
	if got := topCounts(counts, 3, 100); len(got) != len(counts) {
		t.Errorf("k beyond the tally returns %d entries, want %d", len(got), len(counts))
	}
}

func TestParseSeg(t *testing.T) {
	n, ok := parseSeg("wal-00000042.jlog")
	if !ok || n != 42 {
		t.Fatalf("parseSeg = %d, %v; want 42, true", n, ok)
	}
	for _, bad := range []string{"wal-.jlog", "wal-00000001.corrupt", "snap-00000001.jlog", "wal-xyz.jlog", "wal-00000001.jlog.tmp"} {
		if _, ok := parseSeg(bad); ok {
			t.Errorf("parseSeg accepted %q", bad)
		}
	}
}
