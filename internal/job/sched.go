package job

// Weighted fair-share scheduling over tenants.
//
// The schedulable unit is a chunk, not a job: a tenant's share of the
// executor is its share of completed chunks, so a million-shot job and a
// thousand-shot job compete at the same granularity and preemption costs at
// most one chunk of latency.
//
// The pick loop is deficit round-robin (Shreedhar/Varghese): the round-robin
// pointer parks on a tenant, grants it weight-proportional credit once per
// visit, and serves one chunk per credit until the credit runs dry — so
// under saturation a weight-10 tenant completes 10 chunks for every chunk a
// weight-1 tenant completes, without ever starving the light tenant
// (every full rotation serves everyone with backlog at least once per
// banked credit).
//
// Within a tenant, jobs are ordered by effective priority class: the
// submitted class (high/normal/low) minus one class per AgingInterval of
// queue wait, so a low-priority job that has waited long enough competes as
// high — starvation decays instead of compounding. Ties break oldest-first.
//
// At most one chunk per job is in flight at a time. That serializes a
// single job's checkpoint stream (the resume invariant "lose at most one
// chunk" is per job) while still letting the worker pool run many jobs in
// parallel. Per-tenant in-flight caps bound how much of the pool one tenant
// can hold at once regardless of weight.

import (
	"time"
)

// Scheduler tuning defaults.
const (
	// DefaultMaxInFlightPerTenant bounds concurrently executing chunks per
	// tenant.
	DefaultMaxInFlightPerTenant = 4
	// DefaultMaxPerTenant is the non-terminal job quota per tenant;
	// submits beyond it fail with ErrQuota (HTTP 429).
	DefaultMaxPerTenant = 16
	// DefaultAgingInterval is the queue wait that promotes a job one
	// priority class.
	DefaultAgingInterval = 30 * time.Second
)

// tenantState is one tenant's scheduling bookkeeping.
type tenantState struct {
	name     string
	weight   int
	deficit  float64
	credited bool // credit already granted on the current pointer visit
	inflight int  // chunks currently executing
	jobs     []*jobState
}

// sched is the deficit-round-robin pick state. It is embedded in the
// Manager and guarded by the Manager's mutex.
type sched struct {
	weights     map[string]int
	maxInflight int
	aging       time.Duration

	tenants map[string]*tenantState
	order   []string // round-robin visit order (tenant creation order)
	rr      int      // current pointer into order
}

func newSched(weights map[string]int, maxInflight int, aging time.Duration) *sched {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInFlightPerTenant
	}
	if aging <= 0 {
		aging = DefaultAgingInterval
	}
	return &sched{
		weights:     weights,
		maxInflight: maxInflight,
		aging:       aging,
		tenants:     make(map[string]*tenantState),
	}
}

// weightOf resolves a tenant's configured weight (default 1).
func (s *sched) weightOf(name string) int {
	if w, ok := s.weights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// tenant returns (creating if needed) the state for a tenant name.
func (s *sched) tenant(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{name: name, weight: s.weightOf(name)}
		s.tenants[name] = t
		s.order = append(s.order, name)
	}
	return t
}

// enqueue registers a job with its tenant's run queue.
func (s *sched) enqueue(j *jobState) {
	t := s.tenant(j.spec.Tenant)
	t.jobs = append(t.jobs, j)
}

// dequeue removes a terminal job from its tenant's run queue.
func (s *sched) dequeue(j *jobState) {
	t, ok := s.tenants[j.spec.Tenant]
	if !ok {
		return
	}
	for i, q := range t.jobs {
		if q == j {
			t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
			return
		}
	}
}

// runnable reports whether the job can accept a chunk right now.
func runnable(j *jobState, now time.Time) bool {
	return !j.state.Terminal() && !j.inflight && !j.cancelReq &&
		j.chunksDone < j.spec.ChunksTotal() && !now.Before(j.notBefore)
}

// effClass is the job's aged priority class: the submitted class minus one
// per AgingInterval waited, floored at high.
func (s *sched) effClass(j *jobState, now time.Time) int {
	c := j.spec.Priority
	if s.aging > 0 {
		c -= int(now.Sub(j.enqueued) / s.aging)
	}
	if c < PriorityHigh {
		c = PriorityHigh
	}
	return c
}

// bestJob picks the tenant's next job: minimum effective class, then
// earliest enqueue.
func (s *sched) bestJob(t *tenantState, now time.Time) *jobState {
	var best *jobState
	bestClass := 0
	for _, j := range t.jobs {
		if !runnable(j, now) {
			continue
		}
		c := s.effClass(j, now)
		if best == nil || c < bestClass ||
			(c == bestClass && j.enqueued.Before(best.enqueued)) {
			best, bestClass = j, c
		}
	}
	return best
}

// tenantRunnable reports whether the tenant has capacity and backlog.
func (s *sched) tenantRunnable(t *tenantState, now time.Time) bool {
	if t.inflight >= s.maxInflight {
		return false
	}
	for _, j := range t.jobs {
		if runnable(j, now) {
			return true
		}
	}
	return false
}

// pick returns the next job to run a chunk for, or nil when nothing is
// runnable. Caller holds the Manager mutex and must mark the returned job
// in flight (the pick itself only spends scheduler credit).
func (s *sched) pick(now time.Time) *jobState {
	n := len(s.order)
	for visited := 0; visited <= n; visited++ {
		if n == 0 {
			return nil
		}
		t := s.tenants[s.order[s.rr%n]]
		if s.tenantRunnable(t, now) {
			if !t.credited {
				// One credit grant per pointer visit: weight chunks' worth.
				t.deficit += float64(t.weight)
				t.credited = true
			}
			if t.deficit >= 1 {
				t.deficit--
				if j := s.bestJob(t, now); j != nil {
					// The pointer stays parked: the tenant drains its
					// banked credit before the rotation moves on.
					return j
				}
			}
		} else {
			// Idle tenants bank nothing — fair share is about backlog, not
			// history.
			t.deficit = 0
		}
		t.credited = false
		s.rr = (s.rr + 1) % n
	}
	return nil
}
