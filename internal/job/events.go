package job

// Progress event streaming: each job carries a subscriber list fed one
// frame per chunk completion plus a terminal frame. Frames are cumulative
// snapshots (not deltas), so a slow consumer that misses intermediate
// frames still converges — the hub drops the oldest buffered frame on
// overflow rather than stalling the executor.

import (
	"sort"

	"weaksim/internal/core"
)

// Event is one NDJSON progress frame.
type Event struct {
	JobID       string `json:"job_id"`
	State       State  `json:"state"`
	ChunksTotal int    `json:"chunks_total"`
	ChunksDone  int    `json:"chunks_done"`
	ShotsDone   int    `json:"shots_done"`
	// Top is the current top-k partial counts (most probable outcomes seen
	// so far), most frequent first.
	Top []TopCount `json:"top,omitempty"`
	// PhaseNS is the cumulative per-phase wall-clock breakdown so far.
	PhaseNS   map[string]int64 `json:"phase_ns,omitempty"`
	ErrorCode string           `json:"error_code,omitempty"`
	Error     string           `json:"error,omitempty"`
	// Terminal marks the stream's final frame.
	Terminal bool `json:"terminal"`
}

// TopCount is one outcome in a frame's partial top-k.
type TopCount struct {
	Bits  string `json:"bits"`
	Count int    `json:"count"`
}

// eventTopK is how many outcomes a progress frame carries.
const eventTopK = 5

// subscriber buffers frames for one events stream.
type subscriber struct {
	ch chan Event
}

// subscriberBuffer is each stream's frame buffer; overflow drops the oldest
// frame (frames are cumulative, so only freshness is lost).
const subscriberBuffer = 32

// push delivers without ever blocking the executor: on a full buffer the
// oldest frame is evicted to make room. The terminal frame therefore always
// lands (it is the newest).
func (s *subscriber) push(ev Event) {
	select {
	case s.ch <- ev:
		return
	default:
	}
	select {
	case <-s.ch:
	default:
	}
	select {
	case s.ch <- ev:
	default:
	}
}

// topCounts extracts the k most frequent outcomes from a tally, formatted
// as bitstrings. Ties break on ascending basis index so frames are
// deterministic for a fixed tally.
func topCounts(counts map[uint64]int, qubits, k int) []TopCount {
	if len(counts) == 0 || k <= 0 {
		return nil
	}
	type kv struct {
		idx uint64
		n   int
	}
	best := make([]kv, 0, k+1)
	for idx, n := range counts {
		pos := len(best)
		for pos > 0 && (best[pos-1].n < n || (best[pos-1].n == n && best[pos-1].idx > idx)) {
			pos--
		}
		if pos >= k {
			continue
		}
		best = append(best, kv{})
		copy(best[pos+1:], best[pos:])
		best[pos] = kv{idx, n}
		if len(best) > k {
			best = best[:k]
		}
	}
	sort.SliceStable(best, func(i, j int) bool {
		if best[i].n != best[j].n {
			return best[i].n > best[j].n
		}
		return best[i].idx < best[j].idx
	})
	out := make([]TopCount, len(best))
	for i, b := range best {
		out[i] = TopCount{Bits: core.FormatBits(b.idx, qubits), Count: b.n}
	}
	return out
}
