package job

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
)

// fakeSampler draws uniform outcomes — enough to prove count plumbing, since
// chunk tallies are a pure function of (seed, chunk index, shots) either way.
type fakeSampler struct{ qubits int }

func (f fakeSampler) Sample(r *rng.RNG) uint64 { return r.Uint64N(1 << f.qubits) }
func (f fakeSampler) Qubits() int              { return f.qubits }

func fakeProvider(qubits int, delay time.Duration) SnapshotFunc {
	return func(ctx context.Context, spec Spec) (core.Sampler, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return fakeSampler{qubits}, nil
	}
}

func testSpec(id string, shots, chunk int) Spec {
	return Spec{
		ID:         id,
		Key:        "k-" + id,
		Circuit:    "ghz",
		Qubits:     4,
		Shots:      shots,
		Seed:       42,
		ChunkShots: chunk,
		Norm:       "sum",
		Priority:   PriorityNormal,
		Tenant:     "t",
	}
}

func startManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Snapshot == nil {
		cfg.Snapshot = fakeProvider(4, 0)
	}
	m := NewManager(cfg)
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Stop(ctx)
	})
	return m
}

func waitFor(t *testing.T, m *Manager, id string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if pred(st) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("timeout waiting on job %s; last status %+v", id, st)
	return Status{}
}

func completed(st Status) bool { return st.State == StateCompleted }

func TestSubmitRunsToCompletion(t *testing.T) {
	m := startManager(t, Config{Dir: t.TempDir()})
	if _, err := m.Submit(testSpec("j1", 1000, 100)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitFor(t, m, "j1", completed)
	if st.ChunksTotal != 10 || st.ChunksDone != 10 || st.ShotsDone != 1000 {
		t.Errorf("progress total=%d done=%d shots=%d, want 10/10/1000",
			st.ChunksTotal, st.ChunksDone, st.ShotsDone)
	}
	if st.ChunksExecuted != 10 || st.ChunksRecovered != 0 {
		t.Errorf("executed=%d recovered=%d, want 10/0", st.ChunksExecuted, st.ChunksRecovered)
	}
	counts, err := m.Result("j1")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	sum := 0
	for bits, n := range counts {
		if len(bits) != 4 {
			t.Errorf("result key %q not a 4-bit string", bits)
		}
		sum += n
	}
	if sum != 1000 {
		t.Errorf("result sums to %d shots, want 1000", sum)
	}
	if st.PhaseNS["sample"] <= 0 {
		t.Error("phase breakdown missing sample time")
	}
}

func TestInMemoryMode(t *testing.T) {
	m := startManager(t, Config{}) // no Dir: volatile store
	if _, err := m.Submit(testSpec("j1", 200, 50)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, m, "j1", completed)
}

// TestResumeBitIdentical is the durability contract end to end: run a job to
// completion for reference counts, then run the same spec with a stop in the
// middle and a second manager finishing it — merged counts must match
// bit-for-bit, and the resumed process must not redo completed chunks.
func TestResumeBitIdentical(t *testing.T) {
	ref := startManager(t, Config{Dir: t.TempDir()})
	if _, err := ref.Submit(testSpec("jref", 2000, 100)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, ref, "jref", completed)
	want, err := ref.Result("jref")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	dir := t.TempDir()
	// Slow chunks + tiny WAL segments: the stop lands mid-job and rotation
	// (checkpoint compaction) happens during the run, so replay exercises the
	// checkpoint-supersedes path too.
	m1 := NewManager(Config{Dir: dir, SegmentBytes: 512, Snapshot: fakeProvider(4, 5*time.Millisecond)})
	if err := m1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := m1.Submit(testSpec("jref", 2000, 100)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, m1, "jref", func(st Status) bool { return st.ChunksDone >= 3 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := m1.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	cancel()
	st1, _ := m1.Get("jref")
	if st1.State == StateCompleted {
		t.Skip("job finished before the stop landed; nothing to resume")
	}

	m2 := startManager(t, Config{Dir: dir})
	st := waitFor(t, m2, "jref", completed)
	got, err := m2.Result("jref")
	if err != nil {
		t.Fatalf("Result after resume: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed counts differ from uninterrupted run:\n got %v\nwant %v", got, want)
	}
	if st.ChunksRecovered < 3 {
		t.Errorf("recovered %d chunks, want >= 3", st.ChunksRecovered)
	}
	resampled := st.ChunksExecuted - (st.ChunksTotal - st.ChunksRecovered)
	if resampled < 0 || resampled > 1 {
		t.Errorf("re-sampled %d chunks (executed=%d total=%d recovered=%d), want <= 1",
			resampled, st.ChunksExecuted, st.ChunksTotal, st.ChunksRecovered)
	}
}

// TestDuplicateChunkReplay writes the same chunk record twice (as a crashed
// rotation can) and checks replay merges it once.
func TestDuplicateChunkReplay(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("jdup", 100, 100) // single chunk
	w, _, _, err := openWAL(dir, 0)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	chunk := mustRecord(recChunk, chunkRecord{
		ID: "jdup", Chunk: 0, Shots: 100, Counts: map[string]int{"3": 100},
	})
	for _, rec := range []Record{mustRecord(recSubmit, spec), chunk, chunk} {
		if err := w.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m := startManager(t, Config{Dir: dir})
	st := waitFor(t, m, "jdup", completed)
	if st.ShotsDone != 100 {
		t.Errorf("shots done %d after duplicate replay, want 100", st.ShotsDone)
	}
	counts, err := m.Result("jdup")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if counts["0011"] != 100 || len(counts) != 1 {
		t.Errorf("counts = %v, want exactly {0011: 100}", counts)
	}
}

func TestCancel(t *testing.T) {
	gate := make(chan struct{})
	var started atomic.Bool
	provider := func(ctx context.Context, spec Spec) (core.Sampler, error) {
		started.Store(true)
		select {
		case <-gate:
			return fakeSampler{4}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m := startManager(t, Config{Dir: t.TempDir(), Workers: 1, Snapshot: provider})
	if _, err := m.Submit(testSpec("jrun", 1000, 100)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	q := testSpec("jqueued", 1000, 100)
	if _, err := m.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for !started.Load() {
		time.Sleep(time.Millisecond)
	}

	// Cancelling the queued job is immediate.
	if _, err := m.Cancel("jqueued"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitFor(t, m, "jqueued", func(st Status) bool { return st.State.Terminal() })
	if st.State != StateCancelled {
		t.Errorf("queued job state %s after cancel, want cancelled", st.State)
	}

	// Cancelling the running job interrupts its in-flight chunk.
	if _, err := m.Cancel("jrun"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st = waitFor(t, m, "jrun", func(st Status) bool { return st.State.Terminal() })
	if st.State != StateCancelled {
		t.Errorf("running job state %s after cancel, want cancelled", st.State)
	}
	close(gate)

	// Cancel is idempotent.
	if _, err := m.Cancel("jrun"); err != nil {
		t.Errorf("second Cancel: %v", err)
	}
}

func TestTenantQuota(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	provider := func(ctx context.Context, spec Spec) (core.Sampler, error) {
		select {
		case <-gate:
			return fakeSampler{4}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m := startManager(t, Config{Dir: t.TempDir(), MaxPerTenant: 2, Snapshot: provider})
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(testSpec(fmt.Sprintf("j%d", i), 100, 100)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit(testSpec("j2", 100, 100)); !errors.Is(err, ErrQuota) {
		t.Errorf("third submit error = %v, want ErrQuota", err)
	}
	// A different tenant is unaffected.
	other := testSpec("j3", 100, 100)
	other.Tenant = "other"
	if _, err := m.Submit(other); err != nil {
		t.Errorf("other tenant submit: %v", err)
	}
}

// TestVerdictTerminal: MO and TO are terminal states, never retries.
func TestVerdictTerminal(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		wantCode string
	}{
		{"memory_out", fmt.Errorf("sim: %w", dd.ErrNodeBudget), "memory_out"},
		{"timeout", context.DeadlineExceeded, "timeout"},
		{"internal", errors.New("sim: exploded"), "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			provider := func(ctx context.Context, spec Spec) (core.Sampler, error) {
				calls.Add(1)
				return nil, tc.err
			}
			m := startManager(t, Config{Dir: t.TempDir(), Snapshot: provider})
			if _, err := m.Submit(testSpec("jv", 1000, 100)); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			st := waitFor(t, m, "jv", func(st Status) bool { return st.State.Terminal() })
			if st.State != StateFailed || st.ErrorCode != tc.wantCode {
				t.Errorf("state=%s code=%s, want failed/%s", st.State, st.ErrorCode, tc.wantCode)
			}
			if n := calls.Load(); n != 1 {
				t.Errorf("provider called %d times for a terminal verdict, want 1", n)
			}
			if _, err := m.Result("jv"); !errors.Is(err, ErrNotCompleted) {
				t.Errorf("Result on failed job = %v, want ErrNotCompleted", err)
			}
		})
	}
}

// TestTransientRetry: ErrRetry releases the chunk and the job still
// completes.
func TestTransientRetry(t *testing.T) {
	var calls atomic.Int64
	provider := func(ctx context.Context, spec Spec) (core.Sampler, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("%w: queue full", ErrRetry)
		}
		return fakeSampler{4}, nil
	}
	m := startManager(t, Config{Dir: t.TempDir(), Snapshot: provider})
	if _, err := m.Submit(testSpec("jr", 300, 100)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitFor(t, m, "jr", completed)
	if st.ChunksDone != 3 {
		t.Errorf("chunks done %d, want 3", st.ChunksDone)
	}
}

// TestFairShareUnderSaturation: one worker, weights 10:1, equal backlogs —
// when the heavy tenant finishes, the light one should have completed about
// one tenth as many chunks.
func TestFairShareUnderSaturation(t *testing.T) {
	m := startManager(t, Config{
		Workers:       1,
		TenantWeights: map[string]int{"heavy": 10, "light": 1},
		MaxPerTenant:  4,
		Snapshot:      fakeProvider(4, time.Millisecond),
	})
	heavy := testSpec("jheavy", 2000, 10) // 200 chunks
	heavy.Tenant = "heavy"
	light := testSpec("jlight", 2000, 10)
	light.Tenant = "light"
	if _, err := m.Submit(heavy); err != nil {
		t.Fatalf("Submit heavy: %v", err)
	}
	if _, err := m.Submit(light); err != nil {
		t.Fatalf("Submit light: %v", err)
	}
	waitFor(t, m, "jheavy", completed)
	st, err := m.Get("jlight")
	if err != nil {
		t.Fatal(err)
	}
	// Ideal is 20 completed chunks; allow slack for the race between the
	// heavy job's terminal transition and this read.
	if st.ChunksDone < 12 || st.ChunksDone > 40 {
		t.Errorf("light tenant completed %d chunks at heavy completion, want ~20 (12..40)", st.ChunksDone)
	}
}

func TestEventsStream(t *testing.T) {
	m := startManager(t, Config{Dir: t.TempDir()})
	if _, err := m.Submit(testSpec("je", 500, 100)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ch, cancel, err := m.Subscribe("je")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer cancel()
	var last Event
	frames := 0
	for ev := range ch {
		frames++
		if ev.ChunksDone < last.ChunksDone {
			t.Errorf("progress went backwards: %d after %d", ev.ChunksDone, last.ChunksDone)
		}
		last = ev
	}
	if frames == 0 {
		t.Fatal("no frames received")
	}
	if !last.Terminal || last.State != StateCompleted || last.ChunksDone != 5 {
		t.Errorf("final frame %+v, want terminal completed 5/5", last)
	}
	if len(last.Top) == 0 {
		t.Error("final frame has no top-k counts")
	}

	// Subscribing to a terminal job yields one closed-stream frame.
	ch2, cancel2, err := m.Subscribe("je")
	if err != nil {
		t.Fatalf("Subscribe terminal: %v", err)
	}
	defer cancel2()
	ev, ok := <-ch2
	if !ok || !ev.Terminal {
		t.Errorf("terminal subscribe frame %+v ok=%v, want terminal frame", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("terminal subscription not closed after its frame")
	}
}

func TestGetUnknown(t *testing.T) {
	m := startManager(t, Config{})
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown = %v, want ErrNotFound", err)
	}
	if _, _, err := m.Subscribe("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Subscribe unknown = %v, want ErrNotFound", err)
	}
}

func TestListNewestFirst(t *testing.T) {
	m := startManager(t, Config{})
	a := testSpec("ja", 100, 100)
	a.CreatedUnixMS = 1000
	b := testSpec("jb", 100, 100)
	b.CreatedUnixMS = 2000
	if _, err := m.Submit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(b); err != nil {
		t.Fatal(err)
	}
	list := m.List()
	if len(list) != 2 || list[0].ID != "jb" || list[1].ID != "ja" {
		t.Errorf("List order %v, want jb then ja", []string{list[0].ID, list[1].ID})
	}
}
