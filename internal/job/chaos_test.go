package job

// Fault-injection coverage for the job tier's three chaos points
// (job.wal.write, job.wal.replay, job.chunk.sample) plus the recovery
// behaviors that only matter under damage: terminal-job retention and
// replay of a WAL containing garbage records. Runs in `make chaos` via the
// Fault name pattern.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"weaksim/internal/fault"
)

// TestFaultWALWriteCorrupt arms byte corruption on the WAL append path:
// the running manager is unaffected (the in-memory state is the source of
// truth until restart), but the reopening manager must detect the mangled
// record by CRC, quarantine the segment, and come up empty rather than
// resurrect damaged state.
func TestFaultWALWriteCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := fault.Enable("job.wal.write:corrupt@1", 7); err != nil {
		t.Fatal(err)
	}
	m := startManager(t, Config{Dir: dir})
	// First append is the submit record — the corrupted one.
	st, err := m.Submit(testSpec("jwc", 100, 50))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, m, st.ID, completed)
	fault.Disable()
	ctx, cancel := testCtx()
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	m2 := startManager(t, Config{Dir: dir})
	if _, err := m2.Get(st.ID); err == nil {
		t.Fatal("job replayed from a segment whose submit record was corrupted on write")
	}
	corrupt, _ := filepath.Glob(filepath.Join(dir, "*"+corruptExt))
	if len(corrupt) == 0 {
		t.Fatal("no quarantined segment after corrupt-on-write")
	}
	// The store must still be serviceable.
	st2, err := m2.Submit(testSpec("jwc2", 100, 50))
	if err != nil {
		t.Fatalf("Submit after quarantine: %v", err)
	}
	waitFor(t, m2, st2.ID, completed)
}

// TestFaultWALReplayCorrupt damages the bytes as they are read back:
// replay must detect the flip by CRC and salvage — keep the valid record
// prefix, quarantine or truncate the damage — and whatever job state
// survives must be coherent: absent, or resumable to a bit-exact result.
func TestFaultWALReplayCorrupt(t *testing.T) {
	dir := t.TempDir()
	m := startManager(t, Config{Dir: dir})
	st, err := m.Submit(testSpec("jrc", 100, 50))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, m, st.ID, completed)
	ctx, cancel := testCtx()
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(before) == 0 {
		t.Fatal("no WAL segment to damage")
	}
	origSize := fileSize(t, before[0])

	if err := fault.Enable("job.wal.replay:corrupt@1", 11); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	m2 := startManager(t, Config{Dir: dir})
	// The damage was detected one way or the other: either the segment was
	// quarantined (mid-segment CRC failure) or its tail was truncated away
	// (flip landed in the final record). Salvage also rewrites the live
	// state into a fresh segment, so "nothing changed" is a failure.
	corrupt, _ := filepath.Glob(filepath.Join(dir, "*"+corruptExt))
	after, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	damageSeen := len(corrupt) > 0
	for _, f := range after {
		if f == before[0] && fileSize(t, f) == origSize {
			continue
		}
		damageSeen = true
	}
	if !damageSeen {
		t.Fatal("corrupt-on-replay left the WAL byte-identical: the flip was not detected")
	}
	// Whatever survived must still be serviceable and exact.
	if _, err := m2.Get(st.ID); err == nil {
		final := waitFor(t, m2, st.ID, completed)
		counts, err := m2.Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != 100 {
			t.Fatalf("salvaged job's counts sum to %d, want 100 (status %+v)", total, final)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestFaultChunkSampleErr injects a failure at the chunk-sampling point:
// an unclassified chunk error is a deterministic verdict, so the job must
// fail terminally (code "internal"), never spin in retries.
func TestFaultChunkSampleErr(t *testing.T) {
	if err := fault.Enable("job.chunk.sample:err@1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	m := startManager(t, Config{Dir: t.TempDir()})
	st, err := m.Submit(testSpec("jcs", 100, 50))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitFor(t, m, st.ID, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateFailed || final.ErrorCode != "internal" {
		t.Fatalf("state=%s code=%q, want failed/internal", final.State, final.ErrorCode)
	}
}

// TestReplayIgnoresGarbageRecords replays a WAL salted with structurally
// valid frames carrying nonsense payloads — malformed JSON, chunks for
// unknown jobs, out-of-range chunk indices, a non-terminal state record, a
// checkpoint for a ghost job — and requires replay to keep exactly the
// coherent subset.
func TestReplayIgnoresGarbageRecords(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir, 0)
	good := testSpec("jok", 100, 50)
	records := []Record{
		mustRecord(recSubmit, good),
		{Type: recSubmit, Payload: []byte(`{"id":`)},                             // malformed JSON
		{Type: recSubmit, Payload: []byte(`{"id":"jbad"}`)},                      // fails Validate
		mustRecord(recChunk, chunkRecord{ID: "ghost", Chunk: 0, Shots: 50}),      // unknown job
		mustRecord(recChunk, chunkRecord{ID: "jok", Chunk: 99, Shots: 50}),       // out of range
		mustRecord(recChunk, chunkRecord{ID: "jok", Chunk: -1, Shots: 50}),       // negative
		mustRecord(recState, stateRecord{ID: "jok", State: StateRunning}),        // non-terminal state
		mustRecord(recState, stateRecord{ID: "ghost", State: StateFailed}),       // unknown job
		mustRecord(recCheckpoint, checkpointRecord{ID: "ghost", Done: []int{0}}), // unknown job
		{Type: 200, Payload: []byte(`{}`)},                                       // unknown record type
		mustRecord(recChunk, chunkRecord{ID: "jok", Chunk: 0, Shots: 50,
			Counts: map[string]int{"3": 50}}), // the one real chunk
	}
	for _, rec := range records {
		if err := w.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	m := startManager(t, Config{Dir: dir})
	list := m.List()
	// Only jok survives; it resumes from its one replayed chunk and runs to
	// completion.
	if len(list) != 1 || list[0].ID != "jok" {
		t.Fatalf("replayed jobs = %+v, want exactly jok", list)
	}
	st := waitFor(t, m, "jok", completed)
	if st.ChunksRecovered != 1 {
		t.Fatalf("recovered %d chunks, want 1", st.ChunksRecovered)
	}
	counts, err := m.Result("jok")
	if err != nil {
		t.Fatal(err)
	}
	if counts["0011"] < 50 {
		t.Fatalf("replayed chunk's counts missing: %v", counts)
	}
}

// TestCheckpointSupersedesChunks replays submit + chunk + checkpoint and
// requires the checkpoint to replace, not merge with, the earlier chunk
// records.
func TestCheckpointSupersedesChunks(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir, 0)
	spec := testSpec("jcp", 200, 50) // 4 chunks
	for _, rec := range []Record{
		mustRecord(recSubmit, spec),
		mustRecord(recChunk, chunkRecord{ID: "jcp", Chunk: 0, Shots: 50, Counts: map[string]int{"1": 50}}),
		mustRecord(recChunk, chunkRecord{ID: "jcp", Chunk: 1, Shots: 50, Counts: map[string]int{"2": 50}}),
		// Compaction summary claiming only chunk 2: the authoritative state.
		mustRecord(recCheckpoint, checkpointRecord{ID: "jcp", Done: []int{2, 2, 99},
			Counts: map[string]int{"5": 50}}),
	} {
		if err := w.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	m := startManager(t, Config{Dir: dir})
	st, err := m.Get("jcp")
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksRecovered != 1 || st.ShotsDone < 50 {
		t.Fatalf("checkpoint not authoritative: %+v", st)
	}
	final := waitFor(t, m, "jcp", completed)
	if final.ChunksExecuted != 3 {
		t.Fatalf("executed %d chunks after checkpoint replay, want 3", final.ChunksExecuted)
	}
}

// TestTerminalRetention bounds the terminal ring: with RetainTerminal n,
// only the n most recent settled jobs stay queryable.
func TestTerminalRetention(t *testing.T) {
	m := startManager(t, Config{Dir: t.TempDir(), RetainTerminal: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := m.Submit(testSpec(NewID(), 100, 100))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitFor(t, m, st.ID, completed)
		ids = append(ids, st.ID)
	}
	for _, id := range ids[:2] {
		if _, err := m.Get(id); err == nil {
			t.Errorf("evicted job %s still queryable", id)
		}
	}
	for _, id := range ids[2:] {
		if _, err := m.Get(id); err != nil {
			t.Errorf("retained job %s lost: %v", id, err)
		}
	}
	if got := len(m.List()); got != 2 {
		t.Fatalf("List has %d jobs, want 2", got)
	}
}

func testCtx() (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// TestFaultCancelCommitWindow pins the cancel/commit race: commitChunk holds
// the manager mutex across the WAL append, so a Cancel issued mid-run queues
// on the mutex and often wakes in the window where the worker has committed
// its chunk but not yet cleared the in-flight flag. The flag then points at
// an already-finished chunk, the context cancellation is a no-op, and — since
// the scheduler never picks a cancel-requested job — the job would stay
// "running" forever unless the worker finishes the transition when it clears
// the flag. The latency fault stretches every WAL append so the window is
// hit reliably; every iteration must settle terminal.
func TestFaultCancelCommitWindow(t *testing.T) {
	if err := fault.Enable("job.wal.write:latency(3ms)", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	m := startManager(t, Config{Dir: t.TempDir(), Workers: 2})
	for i := 0; i < 20; i++ {
		st, err := m.Submit(testSpec(NewID(), 400, 50)) // 8 quick chunks
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitFor(t, m, st.ID, func(s Status) bool {
			return s.ChunksDone >= 1 || s.State.Terminal()
		})
		if _, err := m.Cancel(st.ID); err != nil {
			t.Fatalf("Cancel %d: %v", i, err)
		}
		final := waitFor(t, m, st.ID, func(s Status) bool { return s.State.Terminal() })
		if final.State != StateCancelled && final.State != StateCompleted {
			t.Fatalf("iteration %d settled as %s", i, final.State)
		}
	}
}
