package job

// Write-ahead log for the job store, in the snapstore codec style.
//
// The log is a directory of numbered append-only segment files
// (wal-00000001.jlog, ...). Each record is an independently checkable frame:
//
//	u32  payload length (little-endian)
//	u16  codec version
//	u8   record type
//	...  payload (JSON)
//	u64  CRC-64 (ECMA) over [version..payload]
//
// Appends are fsynced before the in-memory state they describe becomes
// visible, so any progress a client has observed survives a SIGKILL.
//
// Crash anatomy, layer by layer:
//
//   - a torn final record (power cut mid-append) fails the length or CRC
//     check at the tail of the last segment: replay stops cleanly at the
//     last valid record and the file is truncated back to it, so future
//     appends extend a consistent log;
//   - a CRC mismatch anywhere else is real corruption: the valid prefix is
//     salvaged, the segment is quarantined (renamed .corrupt) and the
//     caller is told to re-persist the replayed state immediately;
//   - rotation compacts the live state into a fresh segment written
//     tmp+fsync+rename — atomically visible — and only then deletes the
//     older segments, so a crash at any point replays to the same state
//     (replay of old-then-compacted segments is idempotent by
//     construction: checkpoints supersede, duplicate chunk records are
//     skipped).
//
// Record ordering is the only contract: replaying records in append order
// through Manager's apply function reconstructs the store exactly.

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"weaksim/internal/fault"
)

// Record types.
const (
	// recSubmit carries a Spec: a new job entered the system.
	recSubmit uint8 = 1
	// recChunk carries a chunkRecord: one chunk's tallies are final.
	recChunk uint8 = 2
	// recState carries a stateRecord: a terminal transition.
	recState uint8 = 3
	// recCheckpoint carries a checkpointRecord: a full merged snapshot of
	// one job's progress, written during compaction. It supersedes every
	// earlier record for the job.
	recCheckpoint uint8 = 4
)

const (
	walVersion    = 1
	segExt        = ".jlog"
	segPrefix     = "wal-"
	corruptExt    = ".corrupt"
	frameOverhead = 4 + 2 + 1 + 8 // len + version + type + crc
	// maxRecordBytes bounds a single record; anything larger in a frame
	// header is treated as corruption, not an allocation request.
	maxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold for the active segment.
	DefaultSegmentBytes = 8 << 20
)

// Record is one WAL entry.
type Record struct {
	Type    uint8
	Payload []byte
}

var walCRC = crc64.MakeTable(crc64.ECMA)

// wal is the segmented log. The Manager serializes access (every call runs
// under the manager mutex), so the type itself carries no lock.
type wal struct {
	dir     string
	f       *os.File // active segment, opened for append
	seq     uint64   // active segment sequence number
	size    int64    // active segment size
	maxSeg  int64    // rotation threshold
	appends uint64   // records appended over the wal's lifetime
}

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segExt) }

// parseSeg extracts the sequence from a segment file name.
func parseSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segExt) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segExt), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeFrame renders one record frame.
func encodeFrame(rec Record) []byte {
	buf := make([]byte, 0, frameOverhead+len(rec.Payload))
	var hdr [7]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec.Payload)))
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	hdr[6] = rec.Type
	buf = append(buf, hdr[:]...)
	buf = append(buf, rec.Payload...)
	crc := crc64.Checksum(buf[4:], walCRC)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc)
	return append(buf, trailer[:]...)
}

// scanResult is one segment's replay outcome.
type scanResult struct {
	records []Record
	// tornAt >= 0 marks an incomplete final frame (clean crash tail): the
	// byte offset replay stopped at.
	tornAt int64
	// corrupt reports a CRC/version mismatch on a complete frame — damage,
	// not a torn append.
	corrupt bool
}

// scanSegment walks data record by record, stopping at the first frame that
// does not check out.
func scanSegment(data []byte) scanResult {
	res := scanResult{tornAt: -1}
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameOverhead {
			res.tornAt = int64(off)
			return res
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if plen > maxRecordBytes {
			res.corrupt = true
			return res
		}
		if rest < frameOverhead+plen {
			res.tornAt = int64(off)
			return res
		}
		body := data[off+4 : off+7+plen] // version + type + payload
		crc := binary.LittleEndian.Uint64(data[off+7+plen : off+frameOverhead+plen])
		if crc64.Checksum(body, walCRC) != crc {
			res.corrupt = true
			return res
		}
		if v := binary.LittleEndian.Uint16(body[0:2]); v != walVersion {
			// An intact frame from a different codec version: this build
			// cannot interpret it. Treat like corruption for quarantine
			// purposes (the .corrupt file keeps the bytes for a build that
			// can).
			res.corrupt = true
			return res
		}
		payload := make([]byte, plen)
		copy(payload, body[3:])
		res.records = append(res.records, Record{Type: body[2], Payload: payload})
		off += frameOverhead + plen
	}
	return res
}

// openWAL opens (creating if needed) the log in dir and replays every
// segment in sequence order. It returns the replayable records in append
// order and salvaged=true when any segment was quarantined or truncated —
// the caller must immediately compact so the salvaged state is durable
// again.
func openWAL(dir string, maxSeg int64) (w *wal, records []Record, salvaged bool, err error) {
	if dir == "" {
		return nil, nil, false, fmt.Errorf("job: empty WAL directory")
	}
	if maxSeg <= 0 {
		maxSeg = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, false, fmt.Errorf("job: wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, false, fmt.Errorf("job: wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeg(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	w = &wal{dir: dir, maxSeg: maxSeg}
	var lastGood int64 = -1 // last segment's usable size (-1 = open fresh)
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, false, fmt.Errorf("job: wal: %w", rerr)
		}
		// Fault hook: chaos tests damage the bytes between disk and the
		// scanner, proving quarantine/truncation end to end.
		if data, rerr = fault.Mangle(fault.JobWALReplay, data); rerr != nil {
			return nil, nil, false, fmt.Errorf("job: wal replay %s: %w", path, rerr)
		}
		res := scanSegment(data)
		records = append(records, res.records...)
		last := i == len(seqs)-1
		switch {
		case res.corrupt, res.tornAt >= 0 && !last:
			// Real damage (or a tear in a segment that was never the append
			// head): salvage the prefix, quarantine the file.
			salvaged = true
			_ = os.Rename(path, path+corruptExt)
		case res.tornAt >= 0:
			// Torn tail of the append head: truncate back to the last valid
			// record so future appends extend a consistent log.
			salvaged = true
			if terr := os.Truncate(path, res.tornAt); terr != nil {
				// Cannot repair in place: quarantine instead.
				_ = os.Rename(path, path+corruptExt)
			} else if last {
				lastGood = res.tornAt
			}
		case last:
			lastGood = int64(len(data))
		}
		if last {
			w.seq = seq
		}
	}
	if lastGood < 0 {
		// No usable tail segment: start the next sequence fresh.
		w.seq++
		f, cerr := os.OpenFile(filepath.Join(dir, segName(w.seq)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if cerr != nil {
			return nil, nil, false, fmt.Errorf("job: wal: %w", cerr)
		}
		w.f, w.size = f, 0
		return w, records, salvaged, nil
	}
	f, oerr := os.OpenFile(filepath.Join(dir, segName(w.seq)),
		os.O_WRONLY|os.O_APPEND, 0o644)
	if oerr != nil {
		return nil, nil, false, fmt.Errorf("job: wal: %w", oerr)
	}
	w.f, w.size = f, lastGood
	return w, records, salvaged, nil
}

// append frames, (fault-)mangles, writes, and fsyncs one record. The fsync
// is the durability edge: the caller only updates client-visible state after
// append returns nil.
func (w *wal) append(rec Record) error {
	frame := encodeFrame(rec)
	frame, err := fault.Mangle(fault.JobWALWrite, frame)
	if err != nil {
		return fmt.Errorf("job: wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("job: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("job: wal sync: %w", err)
	}
	w.size += int64(len(frame))
	w.appends++
	return nil
}

// needsRotate reports whether the active segment has outgrown the threshold.
func (w *wal) needsRotate() bool { return w.size >= w.maxSeg }

// rotate compacts: the caller's snapshot records (the entire live state,
// re-encoded) are written to the next segment via tmp+fsync+rename, the
// active segment switches to it, and every older segment is deleted. A crash
// before the rename leaves the old segments authoritative; after it, the
// compacted segment replays to the same state the snapshot captured.
func (w *wal) rotate(snapshot []Record) error {
	next := w.seq + 1
	tmp, err := os.CreateTemp(w.dir, "rotate-*.tmp")
	if err != nil {
		return fmt.Errorf("job: wal rotate: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var size int64
	for _, rec := range snapshot {
		frame := encodeFrame(rec)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("job: wal rotate: %w", err)
		}
		size += int64(len(frame))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("job: wal rotate: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("job: wal rotate: %w", err)
	}
	path := filepath.Join(w.dir, segName(next))
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("job: wal rotate: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("job: wal rotate: %w", err)
	}
	old := w.f
	oldSeq := w.seq
	w.f, w.seq, w.size = f, next, size
	if old != nil {
		_ = old.Close()
	}
	// Deletion is cleanup, not correctness: leftover old segments replay
	// before the compacted one and converge to the same state.
	for seq := oldSeq; seq > 0; seq-- {
		p := filepath.Join(w.dir, segName(seq))
		if err := os.Remove(p); err != nil {
			break // older ones were removed by earlier rotations
		}
	}
	return nil
}

// segments counts the segment files on disk (for gauges and tests).
func (w *wal) segments() int {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if _, ok := parseSeg(e.Name()); ok && !e.IsDir() {
			n++
		}
	}
	return n
}

// close releases the active segment handle.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
