package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"weaksim/internal/obs"
	"weaksim/internal/serve"
)

// replica is one real in-process weaksimd backend.
type replica struct {
	srv  *serve.Server
	reg  *obs.Registry
	name string // normalized base URL, the ring identity
}

func startReplica(t *testing.T) *replica {
	t.Helper()
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{Addr: "127.0.0.1:0", Metrics: reg})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return &replica{srv: srv, reg: reg, name: normalizeBackend(srv.Addr())}
}

func (r *replica) sims() uint64 { return r.reg.Counter("serve_sims_total").Value() }

type sampleResp struct {
	Counts     map[string]int `json:"counts"`
	Cached     bool           `json:"cached"`
	CircuitKey string         `json:"circuit_key"`
}

func postSample(t *testing.T, base string, body []byte) (int, string, sampleResp) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sample: %v", err)
	}
	defer resp.Body.Close()
	var out sampleResp
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, resp.Header.Get("X-Weaksim-Backend"), out
}

func totalSims(reps []*replica) uint64 {
	var n uint64
	for _, r := range reps {
		n += r.sims()
	}
	return n
}

// TestClusterEndToEndKillAndShip is the acceptance e2e: with three replicas
// under load, killing the primary of a circuit loses zero client requests —
// the first post-kill request fails over to a ring candidate that snapshot
// shipping already warmed, so the circuit is never strongly simulated a
// second time.
func TestClusterEndToEndKillAndShip(t *testing.T) {
	reps := []*replica{startReplica(t), startReplica(t), startReplica(t)}
	backends := make([]string, len(reps))
	for i, r := range reps {
		backends[i] = r.name
	}
	router := startRouter(t, Config{
		Backends:      backends,
		ReplicaCount:  1,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		MaxBackoff:    100 * time.Millisecond,
	})
	base := "http://" + router.Addr()

	body, err := json.Marshal(map[string]any{"qasm": ghzQASMN(6), "shots": 512, "seed": uint64(9)})
	if err != nil {
		t.Fatal(err)
	}

	status, primaryName, cold := postSample(t, base, body)
	if status != http.StatusOK || cold.Cached {
		t.Fatalf("cold request: status %d cached %v", status, cold.Cached)
	}
	if totalSims(reps) != 1 {
		t.Fatalf("cold request ran %d sims, want 1", totalSims(reps))
	}
	router.Quiesce()
	if got := router.Metrics().Counter("cluster_ship_installed_total").Value(); got != 1 {
		t.Fatalf("ship_installed_total = %d after cold build, want 1 (ReplicaCount=1)", got)
	}

	status, warmName, warm := postSample(t, base, body)
	if status != http.StatusOK || !warm.Cached || warmName != primaryName {
		t.Fatalf("warm request: status %d cached %v backend %s (primary %s)",
			status, warm.Cached, warmName, primaryName)
	}
	if !reflect.DeepEqual(cold.Counts, warm.Counts) {
		t.Fatalf("warm counts diverge:\ncold %v\nwarm %v", cold.Counts, warm.Counts)
	}

	var primary *replica
	for _, r := range reps {
		if r.name == primaryName {
			primary = r
		}
	}
	if primary == nil {
		t.Fatalf("unknown primary %q", primaryName)
	}
	simsBefore := totalSims(reps)
	if err := primary.srv.Close(); err != nil {
		t.Fatalf("killing primary: %v", err)
	}

	// Every request from the instant of the kill must succeed: transport
	// errors fail over immediately, and the failover target was warmed by
	// snapshot shipping.
	for i := 0; i < 12; i++ {
		status, name, got := postSample(t, base, body)
		if status != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d", i, status)
		}
		if name == primaryName {
			t.Fatalf("post-kill request %d still answered by the dead primary", i)
		}
		if !got.Cached {
			t.Fatalf("post-kill request %d served cold — snapshot shipping did not warm %s", i, name)
		}
		if !reflect.DeepEqual(cold.Counts, got.Counts) {
			t.Fatalf("post-kill counts diverge on request %d", i)
		}
	}
	if got := totalSims(reps); got != simsBefore {
		t.Fatalf("failover re-simulated: sims %d -> %d, want unchanged", simsBefore, got)
	}
	if fo := router.Metrics().Counter("cluster_failovers_total").Value(); fo == 0 {
		t.Fatal("no failover was recorded")
	}

	// The probe window ejects the corpse; once ejected, requests stop
	// paying the failed-connect hop entirely.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		healthy := false
		for _, b := range router.statusNow().Backends {
			if b.Name == primaryName {
				healthy = b.Healthy
			}
		}
		if !healthy {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	foBefore := router.Metrics().Counter("cluster_failovers_total").Value()
	if status, _, _ := postSample(t, base, body); status != http.StatusOK {
		t.Fatalf("post-ejection request: status %d", status)
	}
	if fo := router.Metrics().Counter("cluster_failovers_total").Value(); fo != foBefore {
		t.Fatalf("ejected primary still tried first (failovers %d -> %d)", foBefore, fo)
	}
}

// TestClusterShipOnJoin: a backend joining the ring takes over as primary
// for some circuits; the router ships their snapshots from the old holder
// instead of letting the newcomer re-simulate — one network copy, zero
// second strong simulations.
func TestClusterShipOnJoin(t *testing.T) {
	a, b := startReplica(t), startReplica(t)

	// A circuit whose primary in the two-member ring will be the newcomer b.
	body := circuitKeyed(t, []string{a.name, b.name}, b.name)

	path := filepath.Join(t.TempDir(), "backends.txt")
	if err := os.WriteFile(path, []byte(a.name+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	router := startRouter(t, Config{
		BackendsFile:  path,
		WatchInterval: 15 * time.Millisecond,
		ReplicaCount:  1,
		ProbeInterval: 25 * time.Millisecond,
	})
	base := "http://" + router.Addr()

	status, name, cold := postSample(t, base, body)
	if status != http.StatusOK || name != a.name {
		t.Fatalf("cold request: status %d backend %s, want 200 from %s", status, name, a.name)
	}
	if a.sims() != 1 {
		t.Fatalf("a ran %d sims, want 1", a.sims())
	}

	if err := os.WriteFile(path, []byte(a.name+"\n"+b.name+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if router.Metrics().Gauge("cluster_backends").Value() == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	status, name, warm := postSample(t, base, body)
	if status != http.StatusOK {
		t.Fatalf("post-join request: status %d", status)
	}
	if name != b.name {
		t.Fatalf("post-join request answered by %s, want the new primary %s", name, b.name)
	}
	if !warm.Cached {
		t.Fatal("new primary served cold — the pre-forward ship did not happen")
	}
	if b.sims() != 0 {
		t.Fatalf("new primary ran %d sims, want 0 (snapshot was shipped)", b.sims())
	}
	if !reflect.DeepEqual(cold.Counts, warm.Counts) {
		t.Fatal("counts diverge after the handover")
	}
	if got := router.Metrics().Counter("cluster_ship_installed_total").Value(); got == 0 {
		t.Fatal("no ship was recorded")
	}
}

// TestClusterTraceRidesToReplica: a caller's traceparent survives the
// router hop — the replica's X-Weaksim-Trace-Id response (relayed by the
// router) is the caller's trace ID.
func TestClusterTraceRidesToReplica(t *testing.T) {
	a := startReplica(t)
	router := startRouter(t, Config{Backends: []string{a.name}})

	body, _ := json.Marshal(map[string]any{"qasm": ghzQASMN(3), "shots": 8})
	const traceID = "af7651916cd43dd8448eb211c80319c7"
	req, _ := http.NewRequest(http.MethodPost, "http://"+router.Addr()+"/v1/sample", bytes.NewReader(body))
	req.Header.Set("traceparent", "00-"+traceID+"-b7ad6b7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Weaksim-Trace-Id"); got != traceID {
		t.Fatalf("replica traced request as %q, want the caller's trace %q spanning router->replica", got, traceID)
	}
}
