package cluster

import (
	"fmt"
	"math"
	"testing"
)

func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingLookupDeterministicAndDistinct(t *testing.T) {
	r := buildRing(memberNames(5), 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		a := r.lookup(key, 3)
		b := r.lookup(key, 3)
		if len(a) != 3 {
			t.Fatalf("lookup(%q, 3) returned %d members", key, len(a))
		}
		seen := map[string]bool{}
		for j, m := range a {
			if m != b[j] {
				t.Fatalf("lookup(%q) not deterministic: %v vs %v", key, a, b)
			}
			if seen[m] {
				t.Fatalf("lookup(%q) repeated member %s: %v", key, m, a)
			}
			seen[m] = true
		}
	}
	// Member order at build time must not matter.
	shuffled := []string{"http://10.0.0.3:8080", "http://10.0.0.1:8080",
		"http://10.0.0.5:8080", "http://10.0.0.2:8080", "http://10.0.0.4:8080"}
	r2 := buildRing(shuffled, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a, b := r.lookup(key, 2), r2.lookup(key, 2); a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("ring depends on member order: %v vs %v", a, b)
		}
	}
	if got := r.lookup("k", 10); len(got) != 5 {
		t.Fatalf("lookup beyond membership: %d members, want all 5", len(got))
	}
	if got := buildRing(nil, 0).lookup("k", 1); got != nil {
		t.Fatalf("empty ring lookup: %v, want nil", got)
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract: growing the
// fleet from N to N+1 backends moves only ~1/(N+1) of circuit keys, and
// removing a backend moves exactly the keys it owned (every other placement
// is untouched).
func TestRingRebalanceProperty(t *testing.T) {
	const nKeys = 20000
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("circuit-%064d", i)
	}

	for _, n := range []int{4, 10} {
		before := buildRing(memberNames(n), 0)
		after := buildRing(memberNames(n+1), 0)
		moved := 0
		for _, k := range keys {
			if before.lookup(k, 1)[0] != after.lookup(k, 1)[0] {
				moved++
			}
		}
		ideal := float64(nKeys) / float64(n+1)
		if f := float64(moved); f > 2*ideal || f < ideal/3 {
			t.Errorf("grow %d->%d moved %d keys, want ~%.0f (1/N of %d)", n, n+1, moved, ideal, nKeys)
		}
		// Removal: dropping a member moves only the keys it owned, and every
		// moved key lands where the (n+1)-ring's next candidate already was.
		removed := after.members[n/2]
		shrunk := buildRing(append(append([]string{}, after.members[:n/2]...), after.members[n/2+1:]...), 0)
		for _, k := range keys {
			was, now := after.lookup(k, 2), shrunk.lookup(k, 1)[0]
			if was[0] != removed && now != was[0] {
				t.Fatalf("key %s moved (%s -> %s) though its owner %s survived", k, was[0], now, removed)
			}
			if was[0] == removed && now != was[1] {
				t.Fatalf("orphaned key %s went to %s, want the old second candidate %s", k, now, was[1])
			}
		}
	}
}

// TestRingOwnership: shares sum to 1 and no backend's share strays far from
// 1/N at the default virtual-node count.
func TestRingOwnership(t *testing.T) {
	const n = 8
	own := buildRing(memberNames(n), 0).ownership()
	sum := 0.0
	for m, share := range own {
		sum += share
		if share < 0.3/n || share > 3.0/n {
			t.Errorf("member %s owns %.3f of the ring, want near %.3f", m, share, 1.0/n)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ownership sums to %v, want 1", sum)
	}
}
