package cluster

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"weaksim/internal/fault"
)

// The chaos suite (run by `make chaos` via -run 'Chaos|Fault') arms the
// router-level fault points and proves the degradation contracts: an
// injected connect failure fails over without reaching the backend, a
// corrupted snapshot frame is rejected by the target's integrity ladder and
// degrades to re-simulation, and an injected sim-stage failure is relayed
// as 500 with no failover — the one case where a retry could duplicate the
// expensive strong simulation.

func armFault(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Enable(spec, 1); err != nil {
		t.Fatalf("fault.Enable(%q): %v", spec, err)
	}
	t.Cleanup(fault.Disable)
}

// TestClusterFaultConnectFailsOver: cluster.backend.connect:err@1 makes the
// first forward attempt die before the dial. The client still gets a 200 —
// from the failover candidate — and the faulted backend never sees the
// request.
func TestClusterFaultConnectFailsOver(t *testing.T) {
	b1, b2 := newFakeBackend(http.StatusOK), newFakeBackend(http.StatusOK)
	defer b1.srv.Close()
	defer b2.srv.Close()
	router := startRouter(t, Config{
		Backends:      []string{b1.srv.URL, b2.srv.URL},
		ReplicaCount:  1,
		ProbeInterval: time.Hour, // no probes: only the injected fault acts
	})

	armFault(t, fault.ClusterConnect+":err@1")
	resp := postRouter(t, router, sampleBody(t, 4))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if got := b1.hits.Load() + b2.hits.Load(); got != 1 {
		t.Fatalf("fleet saw %d requests, want 1 (the faulted attempt must not dial)", got)
	}
	if fo := router.Metrics().Counter("cluster_failovers_total").Value(); fo != 1 {
		t.Fatalf("failovers = %d, want 1", fo)
	}
}

// TestClusterFaultSnapFetchCorruptDegrades: cluster.snapfetch:corrupt
// mangles every shipped frame in transit. The target's integrity ladder
// (CRC trailer first) rejects the PUT, shipping records a failure, and the
// fleet degrades to re-simulation on failover — requests never fail.
func TestClusterFaultSnapFetchCorruptDegrades(t *testing.T) {
	a, b := startReplica(t), startReplica(t)
	router := startRouter(t, Config{
		Backends:      []string{a.name, b.name},
		ReplicaCount:  1,
		ProbeInterval: 25 * time.Millisecond,
		FailThreshold: 2,
		MaxBackoff:    100 * time.Millisecond,
	})
	base := "http://" + router.Addr()
	body, err := json.Marshal(map[string]any{"qasm": ghzQASMN(5), "shots": 256, "seed": uint64(3)})
	if err != nil {
		t.Fatal(err)
	}

	armFault(t, fault.ClusterSnapFetch+":corrupt")
	status, primaryName, cold := postSample(t, base, body)
	if status != http.StatusOK {
		t.Fatalf("cold request: status %d", status)
	}
	router.Quiesce()
	m := router.Metrics()
	if m.Counter("cluster_ship_installed_total").Value() != 0 {
		t.Fatal("a corrupted frame was installed — the integrity ladder leaked")
	}
	if m.Counter("cluster_ship_failures_total").Value() == 0 {
		t.Fatal("shipping did not record the rejected frame")
	}

	// Kill the primary: the failover target is cold (the ship was rejected),
	// so it re-simulates — a second strong simulation, but zero failed
	// requests and identical counts.
	reps := []*replica{a, b}
	for _, r := range reps {
		if r.name == primaryName {
			if err := r.srv.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	fault.Disable()
	status, name, got := postSample(t, base, body)
	if status != http.StatusOK {
		t.Fatalf("post-kill request: status %d", status)
	}
	if name == primaryName {
		t.Fatal("dead primary still answered")
	}
	if got.Cached {
		t.Fatal("failover target answered warm though the ship was corrupted")
	}
	if len(got.Counts) == 0 || len(cold.Counts) == 0 {
		t.Fatal("missing counts")
	}
	for k, v := range cold.Counts {
		if got.Counts[k] != v {
			t.Fatalf("re-simulated counts diverge at %q: %d vs %d", k, got.Counts[k], v)
		}
	}
	if s := totalSims(reps); s != 2 {
		t.Fatalf("fleet ran %d sims, want 2 (cold build + degraded re-simulation)", s)
	}
}

// TestClusterFaultSimPanicNoFailover: an injected failure inside a
// replica's sim stage surfaces as a 500 — and the router must relay it
// without failing over, because the request reached a sim worker and a
// retry could only burn a second strong simulation.
func TestClusterFaultSimPanicNoFailover(t *testing.T) {
	a, b := startReplica(t), startReplica(t)
	router := startRouter(t, Config{
		Backends:      []string{a.name, b.name},
		ReplicaCount:  1,
		ProbeInterval: time.Hour,
	})
	base := "http://" + router.Addr()
	body, err := json.Marshal(map[string]any{"qasm": ghzQASMN(4), "shots": 64, "seed": uint64(7)})
	if err != nil {
		t.Fatal(err)
	}

	armFault(t, "serve.sim:panic@1")
	status, _, _ := postSample(t, base, body)
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want the replica's 500 relayed", status)
	}
	if fo := router.Metrics().Counter("cluster_failovers_total").Value(); fo != 0 {
		t.Fatalf("router failed over %d times on a 500 — that re-sends work that reached a sim worker", fo)
	}
	if s := totalSims([]*replica{a, b}); s != 1 {
		t.Fatalf("fleet ran %d sims, want 1 (exactly one worker was reached)", s)
	}

	// The fault was one-shot; the same request now succeeds on the same
	// primary — recovery needs no operator action.
	fault.Disable()
	status, _, got := postSample(t, base, body)
	if status != http.StatusOK || len(got.Counts) == 0 {
		t.Fatalf("post-fault retry: status %d", status)
	}
}
