// Package cluster scales the sampling daemon horizontally: a router in
// front of N weaksimd replicas that places every circuit on the backend
// fleet by consistent-hashing its canonical circuit hash (internal/serve's
// CircuitKey), so each circuit's frozen snapshot lives hot on exactly one
// primary plus a configurable number of replicas.
//
// The paper's freeze-then-sample split (Hillmich, Markov, Wille, DAC 2020)
// is what makes this tier work: the expensive operation — strong simulation
// plus freeze — produces an immutable artifact that samples in O(n) per
// shot, stateless and lock-free. That artifact, not the request, is the unit
// of distribution. The router therefore does three things and nothing else:
//
//   - routing: consistent hashing keeps a circuit's requests landing on the
//     same replica so its snapshot stays hot in exactly one LRU (plus the
//     configured replica count), and membership changes move only ~1/N of
//     the keyspace;
//   - health: periodic /readyz probes with ejection after consecutive
//     failures and exponential-backoff reinstatement, so a dead or draining
//     replica leaves the ring within a probe window;
//   - shipping: when ring assignment changes (a replica died, a backend
//     joined), the snapshot is copied from a warm replica via
//     GET/PUT /v1/snapshot/{hash} — the snapstore wire codec, CRC trailer
//     and all — instead of being rebuilt by a second strong simulation.
//
// Failover is deliberately narrow: transport-level failures and 502/503
// responses fail over to the next ring candidate, while 507 (MO), 504 (TO),
// and 500 never do — the governance ladder says MO/TO are deterministic
// properties of the circuit, and a 500 means the request already reached a
// sim worker, so re-sending it could only duplicate the expensive work.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualNodes is the per-backend virtual-node count. 64 points per
// backend keeps the ownership spread within a few percent of ideal for small
// fleets while the ring stays tiny (a 100-replica fleet is 6400 points,
// ~100 KiB).
const defaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a backend.
type ringPoint struct {
	hash  uint64
	owner int // index into ring.members
}

// ring is an immutable consistent-hash ring over a backend membership.
// Membership changes build a new ring; lookups never lock.
type ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

// hashKey positions a circuit key or virtual-node label on the circle:
// FNV-1a folded to 64 bits, then pushed through a SplitMix64 finalizer. The
// finalizer matters — the vnode labels ("url#0", "url#1", ...) differ in a
// few trailing bytes, and raw FNV leaves their hashes correlated enough to
// visibly skew arc ownership; the avalanche step spreads them uniformly.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildRing places vnodes virtual nodes per member on the circle. Members
// are deduplicated and sorted first so the ring is a pure function of the
// membership set — two routers configured with the same backends in any
// order agree on every placement.
func buildRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	uniq := make(map[string]bool, len(members))
	var sorted []string
	for _, m := range members {
		if m != "" && !uniq[m] {
			uniq[m] = true
			sorted = append(sorted, m)
		}
	}
	sort.Strings(sorted)
	r := &ring{members: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for i, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s#%d", m, v)),
				owner: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// lookup returns the first n distinct members clockwise from key's position:
// the primary followed by its failover/replication candidates. Fewer than n
// members yields all of them. The order is deterministic for a fixed
// membership, which is the property routing, replication, and failover all
// share — they walk the same candidate list.
func (r *ring) lookup(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, r.members[p.owner])
		}
	}
	return out
}

// ownership returns each member's share of the hash circle in [0,1] — the
// fraction of circuit keys it is primary for. Exposed as a per-backend
// gauge so operators can see placement skew directly instead of inferring
// it from request counts.
func (r *ring) ownership() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	const circle = float64(1<<63) * 2 // 2^64 without overflowing
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		if len(r.points) == 1 {
			arc = ^uint64(0)
		}
		out[r.members[p.owner]] += float64(arc) / circle
	}
	return out
}
