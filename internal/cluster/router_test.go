package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"weaksim/internal/serve"
)

// ghzQASMN renders an n-qubit GHZ circuit — a family of cheap, distinct
// circuits for routing tests.
func ghzQASMN(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\nh q[0];\n", n)
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "cx q[0],q[%d];\n", i)
	}
	return b.String()
}

func sampleBody(t *testing.T, n int) []byte {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"qasm": ghzQASMN(n), "shots": 16, "seed": uint64(3)})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// circuitKeyed returns a request body (and its key) whose ring primary
// among names is owner — so failover tests control which backend is hit
// first instead of depending on hash luck.
func circuitKeyed(t *testing.T, names []string, owner string) []byte {
	t.Helper()
	r := buildRing(names, 0)
	for n := 2; n < 40; n++ {
		body := sampleBody(t, n)
		key, err := serve.KeyForBody(body, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.lookup(key, 1)[0] == owner {
			return body
		}
	}
	t.Fatalf("no GHZ circuit in [2,40) qubits routes to %s", owner)
	return nil
}

// fakeBackend is a counting stand-in replica: it answers /v1/sample with a
// fixed status and /readyz with 200.
type fakeBackend struct {
	srv     *httptest.Server
	hits    atomic.Int64
	status  atomic.Int64
	lastTP  atomic.Value // last traceparent header seen
	payload string
}

func newFakeBackend(status int) *fakeBackend {
	f := &fakeBackend{payload: `{"counts":{"0":16},"cached":false}`}
	f.status.Store(int64(status))
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/v1/sample":
			f.hits.Add(1)
			f.lastTP.Store(r.Header.Get("traceparent"))
			st := int(f.status.Load())
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			if st == http.StatusOK {
				fmt.Fprint(w, f.payload)
			} else {
				fmt.Fprintf(w, `{"error":{"code":"test","status":%d}}`, st)
			}
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	return f
}

func startRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func postRouter(t *testing.T, r *Router, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post("http://"+r.Addr()+"/v1/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterRoutesConsistently: the same circuit always lands on the same
// backend; the fleet as a whole sees every request exactly once.
func TestRouterRoutesConsistently(t *testing.T) {
	a, b := newFakeBackend(http.StatusOK), newFakeBackend(http.StatusOK)
	defer a.srv.Close()
	defer b.srv.Close()
	r := startRouter(t, Config{Backends: []string{a.srv.URL, b.srv.URL}})

	body := sampleBody(t, 5)
	var backendHeader string
	for i := 0; i < 6; i++ {
		resp := postRouter(t, r, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		got := resp.Header.Get("X-Weaksim-Backend")
		resp.Body.Close()
		if backendHeader == "" {
			backendHeader = got
		} else if got != backendHeader {
			t.Fatalf("request %d routed to %s, earlier ones to %s", i, got, backendHeader)
		}
	}
	if total := a.hits.Load() + b.hits.Load(); total != 6 {
		t.Fatalf("fleet saw %d requests, want 6", total)
	}
	if a.hits.Load() != 0 && b.hits.Load() != 0 {
		t.Fatalf("one circuit split across backends: a=%d b=%d", a.hits.Load(), b.hits.Load())
	}
}

// TestRouterNoFailoverOn500: a 500 means the request reached a sim worker on
// the replica — the router must relay it, not re-send the expensive work to
// another backend. Both fakes answer 500, so wherever the primary lands,
// any failover would show up as a second hit.
func TestRouterNoFailoverOn500(t *testing.T) {
	a, b := newFakeBackend(http.StatusInternalServerError), newFakeBackend(http.StatusInternalServerError)
	defer a.srv.Close()
	defer b.srv.Close()
	r := startRouter(t, Config{Backends: []string{a.srv.URL, b.srv.URL}})

	resp := postRouter(t, r, sampleBody(t, 4))
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want the backend's 500 relayed", resp.StatusCode)
	}
	if total := a.hits.Load() + b.hits.Load(); total != 1 {
		t.Fatalf("request was sent %d times, want exactly 1 (no failover on 500)", total)
	}
	if fo := r.Metrics().Counter("cluster_failovers_total").Value(); fo != 0 {
		t.Fatalf("failovers_total = %d, want 0", fo)
	}
}

// TestRouterGovernanceNeverFailsOver: 507 (MO) and 504 (TO) are
// deterministic verdicts about the circuit; re-sending them to another
// replica would burn a second strong simulation to learn the same answer.
func TestRouterGovernanceNeverFailsOver(t *testing.T) {
	for _, status := range []int{http.StatusInsufficientStorage, http.StatusGatewayTimeout} {
		a, b := newFakeBackend(status), newFakeBackend(status)
		r := startRouter(t, Config{Backends: []string{a.srv.URL, b.srv.URL}})
		resp := postRouter(t, r, sampleBody(t, 4))
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("status %d relayed as %d", status, resp.StatusCode)
		}
		if total := a.hits.Load() + b.hits.Load(); total != 1 {
			t.Errorf("status %d: request sent %d times, want 1", status, total)
		}
		a.srv.Close()
		b.srv.Close()
	}
}

// TestRouterFailsOverOn503: draining/shedding replicas refused the request
// before doing any work, so the next ring candidate gets its chance.
func TestRouterFailsOverOn503(t *testing.T) {
	a, b := newFakeBackend(http.StatusOK), newFakeBackend(http.StatusOK)
	defer a.srv.Close()
	defer b.srv.Close()
	names := []string{normalizeBackend(a.srv.URL), normalizeBackend(b.srv.URL)}
	body := circuitKeyed(t, names, names[0]) // primary = a
	a.status.Store(http.StatusServiceUnavailable)

	r := startRouter(t, Config{Backends: []string{a.srv.URL, b.srv.URL}})
	resp := postRouter(t, r, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the failover candidate", resp.StatusCode)
	}
	if a.hits.Load() != 1 || b.hits.Load() != 1 {
		t.Fatalf("hits a=%d b=%d, want 1 and 1 (one refusal, one answer)", a.hits.Load(), b.hits.Load())
	}
	if fo := r.Metrics().Counter("cluster_failovers_total").Value(); fo != 1 {
		t.Fatalf("failovers_total = %d, want 1", fo)
	}
}

// TestRouterFailoverOnConnectErrorAndEjection: a dead backend (connection
// refused) fails over transparently, and the forward failures eject it from
// the ring without waiting for probe ticks.
func TestRouterFailoverOnConnectErrorAndEjection(t *testing.T) {
	live := newFakeBackend(http.StatusOK)
	defer live.srv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	names := []string{normalizeBackend(deadURL), normalizeBackend(live.srv.URL)}
	body := circuitKeyed(t, names, names[0]) // primary = the dead one
	r := startRouter(t, Config{
		Backends:      []string{deadURL, live.srv.URL},
		ProbeInterval: time.Hour, // prove traffic alone ejects
		FailThreshold: 2,
	})
	for i := 0; i < 2; i++ {
		resp := postRouter(t, r, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, resp.StatusCode)
		}
	}
	if fo := r.Metrics().Counter("cluster_failovers_total").Value(); fo != 2 {
		t.Fatalf("failovers_total = %d, want 2", fo)
	}
	st := r.statusNow()
	var deadHealthy bool
	for _, b := range st.Backends {
		if b.Name == names[0] {
			deadHealthy = b.Healthy
		}
	}
	if deadHealthy {
		t.Fatal("dead backend still marked healthy after reaching the failure threshold")
	}
	// Ejected: the next request goes straight to the live backend, no
	// failover hop.
	before := r.Metrics().Counter("cluster_failovers_total").Value()
	resp := postRouter(t, r, body)
	resp.Body.Close()
	if got := r.Metrics().Counter("cluster_failovers_total").Value(); got != before {
		t.Fatalf("ejected backend was still tried first (failovers %d -> %d)", before, got)
	}
}

// TestRouterTraceparentPropagation: the router adopts an inbound trace ID
// and hands the replica a traceparent on the same trace.
func TestRouterTraceparentPropagation(t *testing.T) {
	a := newFakeBackend(http.StatusOK)
	defer a.srv.Close()
	r := startRouter(t, Config{Backends: []string{a.srv.URL}})

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodPost, "http://"+r.Addr()+"/v1/sample", bytes.NewReader(sampleBody(t, 3)))
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Weaksim-Trace-Id"); got != traceID {
		t.Fatalf("router echoed trace %q, want %q", got, traceID)
	}
	tp, _ := a.lastTP.Load().(string)
	if !strings.HasPrefix(tp, "00-"+traceID+"-") {
		t.Fatalf("backend received traceparent %q, want trace %s continued across the hop", tp, traceID)
	}
	if strings.Contains(tp, "00f067aa0ba902b7") {
		t.Fatalf("router forwarded the caller's span ID verbatim: %q", tp)
	}
}

// TestRouterBadRequests: bodies the routing function cannot key are
// rejected at the router, before any backend sees them.
func TestRouterBadRequests(t *testing.T) {
	a := newFakeBackend(http.StatusOK)
	defer a.srv.Close()
	r := startRouter(t, Config{Backends: []string{a.srv.URL}})
	for _, body := range []string{`not json`, `{"shots":4}`, `{"qasm":"bogus"}`} {
		resp := postRouter(t, r, []byte(body))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if a.hits.Load() != 0 {
		t.Fatalf("unroutable bodies reached a backend %d times", a.hits.Load())
	}
	resp, err := http.Get("http://" + r.Addr() + "/v1/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sample: status %d, want 405", resp.StatusCode)
	}
}

// TestRouterStatusAndProbes: /v1/cluster reports the fleet, and the prober
// ejects a backend that stops answering /readyz, then reinstates it.
func TestRouterStatusAndProbes(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer flaky.Close()
	steady := newFakeBackend(http.StatusOK)
	defer steady.srv.Close()

	r := startRouter(t, Config{
		Backends:      []string{flaky.URL, steady.srv.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
		MaxBackoff:    50 * time.Millisecond,
	})
	waitHealthy := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if r.Metrics().Gauge("cluster_backends_healthy").Value() == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("cluster_backends_healthy never reached %d", want)
	}
	waitHealthy(2)
	ready.Store(false)
	waitHealthy(1)
	if ej := r.Metrics().Counter("cluster_probe_ejections_total").Value(); ej == 0 {
		t.Fatal("ejection not counted")
	}
	ready.Store(true)
	waitHealthy(2)
	if re := r.Metrics().Counter("cluster_probe_reinstates_total").Value(); re == 0 {
		t.Fatal("reinstatement not counted")
	}

	resp, err := http.Get("http://" + r.Addr() + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st clusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Backends) != 2 || st.RingVersion == 0 {
		t.Fatalf("malformed status: %+v", st)
	}
	perMille := int64(0)
	for _, b := range st.Backends {
		perMille += b.RingPermille
	}
	if perMille < 900 || perMille > 1001 {
		t.Fatalf("ring ownership sums to %d permille, want ~1000", perMille)
	}
}

// TestRouterBackendsFileWatch: rewriting the membership file rebuilds the
// ring without a restart.
func TestRouterBackendsFileWatch(t *testing.T) {
	a, b := newFakeBackend(http.StatusOK), newFakeBackend(http.StatusOK)
	defer a.srv.Close()
	defer b.srv.Close()
	path := filepath.Join(t.TempDir(), "backends.txt")
	if err := os.WriteFile(path, []byte("# fleet\n"+a.srv.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := startRouter(t, Config{BackendsFile: path, WatchInterval: 15 * time.Millisecond})
	if got := r.Metrics().Gauge("cluster_backends").Value(); got != 1 {
		t.Fatalf("initial backends = %d, want 1", got)
	}
	if err := os.WriteFile(path, []byte(a.srv.URL+"\n"+b.srv.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Metrics().Gauge("cluster_backends").Value() == 2 {
			if v := r.Metrics().Gauge("cluster_ring_version").Value(); v < 2 {
				t.Fatalf("ring_version = %d after membership change, want >= 2", v)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("membership file change never picked up")
}

// TestRouterReadyz: ready only while at least one backend is routable.
func TestRouterReadyz(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	r := startRouter(t, Config{
		Backends:      []string{deadURL},
		ProbeInterval: 15 * time.Millisecond,
		FailThreshold: 1,
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + r.Addr() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("/readyz stayed ready with a fully dark fleet")
}
