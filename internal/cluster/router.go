package cluster

// The router: one HTTP front door for a fleet of weaksimd replicas.
//
// Request path for POST /v1/sample:
//
//  1. read the body and compute the canonical circuit key with
//     serve.KeyForBody — the router and every replica's cache must name the
//     same owner, so the routing function IS the cache-key function;
//  2. walk the consistent-hash ring for the primary and its failover
//     candidates (healthy candidates first, ejected ones only as a last
//     resort when the whole candidate set is down);
//  3. if the ring says the primary changed since the circuit was last
//     served (the old holder is still warm), ship the frozen snapshot
//     holder→primary before forwarding, so the new primary answers warm
//     instead of re-simulating;
//  4. forward with a W3C traceparent so the replica joins the router's
//     trace; on a transport failure or a 502/503, fail over to the next
//     candidate — never on 507/504 (deterministic governance: MO/TO) and
//     never on 500 (the request reached a sim worker; re-sending could only
//     duplicate the expensive strong simulation);
//  5. on success, remember the placement and replicate the snapshot to the
//     remaining ring candidates in the background, so the next failover
//     target is already warm.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
	"weaksim/internal/serve"
)

// Defaults for the zero Config.
const (
	DefaultProbeInterval  = time.Second
	DefaultProbeTimeout   = 750 * time.Millisecond
	DefaultFailThreshold  = 2
	DefaultMaxBackoff     = 15 * time.Second
	DefaultReplicaCount   = 1
	DefaultWatchInterval  = 2 * time.Second
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 4 << 20
)

// Config configures a cluster router. Backends and BackendsFile are
// mutually composable: the static list seeds the fleet and the file, when
// set, is polled and replaces the membership whenever it changes.
type Config struct {
	// Addr is the router's listen address (":0" = ephemeral).
	Addr string
	// Backends is the static replica list: base URLs like
	// "http://10.0.0.7:8080" (a bare host:port gets "http://" prepended).
	Backends []string
	// BackendsFile, when non-empty, is a watched membership file — one
	// backend URL per line, blank lines and #-comments ignored. The file is
	// re-read every WatchInterval and the ring is rebuilt when it changes.
	BackendsFile string
	// WatchInterval is the BackendsFile poll cadence (0 selects the
	// default; ignored without BackendsFile).
	WatchInterval time.Duration
	// ReplicaCount is how many warm copies beyond the primary each
	// circuit's snapshot is replicated to (also the failover depth). 0
	// selects DefaultReplicaCount; -1 disables replication (primary only).
	ReplicaCount int
	// VirtualNodes is the consistent-hash virtual-node count per backend
	// (0 = default).
	VirtualNodes int
	// ProbeInterval / ProbeTimeout drive the /readyz health prober.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is how many consecutive failures (probes or forward
	// transport errors) eject a backend (0 = default).
	FailThreshold int
	// MaxBackoff caps the exponential re-probe backoff of an ejected
	// backend (0 = default).
	MaxBackoff time.Duration
	// Norm must match the replicas' normalization scheme: the canonical
	// circuit key hashes it, so a mismatch would route and cache under
	// different names.
	Norm dd.Norm
	// RequestTimeout bounds one forwarded exchange (0 = default).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds inbound request bodies (0 = default).
	MaxBodyBytes int64
	// Metrics receives the cluster_* series (nil creates a private
	// registry).
	Metrics *obs.Registry
	// Client overrides the outbound HTTP client (nil builds one with
	// RequestTimeout).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.WatchInterval <= 0 {
		c.WatchInterval = DefaultWatchInterval
	}
	if c.ReplicaCount == 0 {
		c.ReplicaCount = DefaultReplicaCount
	}
	if c.ReplicaCount < 0 {
		c.ReplicaCount = 0
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Router is the cluster front door. Create with NewRouter, bind with Start,
// stop with Shutdown.
type Router struct {
	cfg    Config
	client *http.Client
	http   *http.Server
	ln     net.Listener

	mu          sync.Mutex
	backends    map[string]*backend
	ring        *ring
	ringVersion uint64
	// placement remembers which backend most recently answered 200 for a
	// circuit key — the "warm holder" consulted when the ring reassigns the
	// key, so the new primary is shipped the snapshot instead of
	// re-simulating.
	placement map[string]string
	// shipped marks (key, backend) pairs that hold the snapshot (or are
	// permanently skipped: a 409 version mismatch never retries).
	shipped map[string]map[string]bool

	fileMod time.Time
	fileLen int64

	shipWG   sync.WaitGroup
	stopCh   chan struct{}
	stopOnce sync.Once
	draining bool

	reqTotal      *obs.Counter
	reqErrors     *obs.Counter
	failovers     *obs.Counter
	probeEject    *obs.Counter
	probeRestore  *obs.Counter
	shipAttempts  *obs.Counter
	shipInstalled *obs.Counter
	shipFailed    *obs.Counter
	gBackends     *obs.Gauge
	gHealthy      *obs.Gauge
	gRingVersion  *obs.Gauge
}

// NewRouter validates cfg and builds the initial ring. With a BackendsFile
// the file is loaded immediately (and must parse, though it may be combined
// with a static seed list); at least one backend must result.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	for name, help := range map[string]string{
		"cluster_requests_total":         "Requests accepted by the cluster router.",
		"cluster_errors_total":           "Router requests that failed with no backend able to answer.",
		"cluster_failovers_total":        "Forward attempts redirected to a failover candidate after a transport error or 502/503.",
		"cluster_probe_ejections_total":  "Backends ejected from the ring by consecutive probe/forward failures.",
		"cluster_probe_reinstates_total": "Ejected backends reinstated by a successful /readyz probe.",
		"cluster_ship_attempts_total":    "Snapshot-shipping transfers started (warm replica -> target).",
		"cluster_ship_installed_total":   "Snapshot-shipping transfers installed on the target (HTTP 204).",
		"cluster_ship_failures_total":    "Snapshot-shipping transfers that failed (fetch/connect error, corruption, or version mismatch).",
		"cluster_backends":               "Configured backend count.",
		"cluster_backends_healthy":       "Backends currently in the routing set.",
		"cluster_ring_version":           "Monotonic membership version; increments on every ring rebuild.",
	} {
		obs.RegisterHelp(name, help)
	}
	r := &Router{
		cfg:           cfg,
		client:        cfg.Client,
		backends:      make(map[string]*backend),
		placement:     make(map[string]string),
		shipped:       make(map[string]map[string]bool),
		stopCh:        make(chan struct{}),
		reqTotal:      reg.Counter("cluster_requests_total"),
		reqErrors:     reg.Counter("cluster_errors_total"),
		failovers:     reg.Counter("cluster_failovers_total"),
		probeEject:    reg.Counter("cluster_probe_ejections_total"),
		probeRestore:  reg.Counter("cluster_probe_reinstates_total"),
		shipAttempts:  reg.Counter("cluster_ship_attempts_total"),
		shipInstalled: reg.Counter("cluster_ship_installed_total"),
		shipFailed:    reg.Counter("cluster_ship_failures_total"),
		gBackends:     reg.Gauge("cluster_backends"),
		gHealthy:      reg.Gauge("cluster_backends_healthy"),
		gRingVersion:  reg.Gauge("cluster_ring_version"),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	names := append([]string(nil), cfg.Backends...)
	if cfg.BackendsFile != "" {
		fromFile, mod, size, err := readBackendsFile(cfg.BackendsFile)
		if err != nil {
			return nil, fmt.Errorf("cluster: backends file: %w", err)
		}
		names = append(names, fromFile...)
		r.fileMod, r.fileLen = mod, size
	}
	if err := r.setBackends(names); err != nil {
		return nil, err
	}
	r.http = &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return r, nil
}

// normalizeBackend canonicalizes one backend spec to a base URL with no
// trailing slash; bare host:port gets http://.
func normalizeBackend(s string) string {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "/"))
	if s == "" {
		return ""
	}
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		s = "http://" + s
	}
	return s
}

// readBackendsFile parses a membership file: one backend per line, blank
// lines and #-comments ignored.
func readBackendsFile(path string) (names []string, mod time.Time, size int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, time.Time{}, 0, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, time.Time{}, 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	return names, fi.ModTime(), fi.Size(), nil
}

// setBackends replaces the membership: retained backends keep their health
// state and counters, new ones start healthy, removed ones leave the ring.
func (r *Router) setBackends(names []string) error {
	uniq := make(map[string]bool, len(names))
	var clean []string
	for _, n := range names {
		n = normalizeBackend(n)
		if n != "" && !uniq[n] {
			uniq[n] = true
			clean = append(clean, n)
		}
	}
	if len(clean) == 0 {
		return errors.New("cluster: no backends configured")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[string]*backend, len(clean))
	for _, n := range clean {
		if b, ok := r.backends[n]; ok {
			next[n] = b
		} else {
			next[n] = newBackend(n, r.cfg.Metrics)
		}
	}
	r.backends = next
	r.ring = buildRing(clean, r.cfg.VirtualNodes)
	r.ringVersion++
	r.gRingVersion.Set(int64(r.ringVersion))
	r.gBackends.Set(int64(len(clean)))
	for name, share := range r.ring.ownership() {
		next[name].gOwnPerMi.Set(int64(share * 1000))
	}
	r.refreshHealthyGaugeLocked()
	return nil
}

func (r *Router) refreshHealthyGaugeLocked() {
	n := 0
	for _, b := range r.backends {
		if b.isHealthy() {
			n++
		}
	}
	r.gHealthy.Set(int64(n))
}

// Start binds the listen address and launches the HTTP server, the health
// prober, and (when configured) the membership-file watcher.
func (r *Router) Start() error {
	addr := r.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	r.ln = ln
	go func() { _ = r.http.Serve(ln) }()
	go r.probeLoop()
	if r.cfg.BackendsFile != "" {
		go r.watchLoop()
	}
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Metrics returns the router's registry.
func (r *Router) Metrics() *obs.Registry { return r.cfg.Metrics }

// Shutdown stops the listener, the prober, and the watcher, then waits for
// in-flight replication transfers (until ctx expires).
func (r *Router) Shutdown(ctx context.Context) error {
	r.stopOnce.Do(func() {
		r.mu.Lock()
		r.draining = true
		r.mu.Unlock()
		close(r.stopCh)
	})
	err := r.http.Shutdown(ctx)
	done := make(chan struct{})
	go func() { r.shipWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	// Drop pooled backend connections, including ones the transport dialed
	// but never used — a replica draining later would otherwise wait out
	// net/http's StateNew grace period on them.
	r.client.CloseIdleConnections()
	return err
}

// Close shuts down with a one-second bound.
func (r *Router) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return r.Shutdown(ctx)
}

// Quiesce waits for every replication transfer currently in flight —
// deterministic tests and the cluster gate use it to observe the fleet at
// rest instead of sleeping.
func (r *Router) Quiesce() { r.shipWG.Wait() }

// probeLoop drives /readyz health checks until Shutdown.
func (r *Router) probeLoop() {
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-tick.C:
		}
		now := time.Now()
		r.mu.Lock()
		due := make([]*backend, 0, len(r.backends))
		for _, b := range r.backends {
			if b.probeDue(now) {
				due = append(due, b)
			}
		}
		r.mu.Unlock()
		var wg sync.WaitGroup
		for _, b := range due {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				r.probe(b)
			}(b)
		}
		wg.Wait()
	}
}

// probe checks one backend's /readyz and records the outcome.
func (r *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.name+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if ok {
		if b.noteSuccess() {
			r.probeRestore.Inc()
		}
	} else if b.noteFailure(r.cfg.FailThreshold, r.cfg.ProbeInterval, r.cfg.MaxBackoff, time.Now()) {
		r.probeEject.Inc()
	}
	r.mu.Lock()
	r.refreshHealthyGaugeLocked()
	r.mu.Unlock()
}

// watchLoop polls the membership file and rebuilds the ring when it
// changes. A transiently unreadable or empty file keeps the previous
// membership — an operator mid-edit must not empty the ring.
func (r *Router) watchLoop() {
	tick := time.NewTicker(r.cfg.WatchInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-tick.C:
		}
		names, mod, size, err := readBackendsFile(r.cfg.BackendsFile)
		if err != nil || len(names) == 0 {
			continue
		}
		r.mu.Lock()
		changed := !mod.Equal(r.fileMod) || size != r.fileLen
		if changed {
			r.fileMod, r.fileLen = mod, size
		}
		r.mu.Unlock()
		if changed {
			_ = r.setBackends(names)
		}
	}
}

// candidates returns the ring's candidate backends for key — primary first,
// healthy before ejected (ejected ones stay as a last resort so a fully
// dark fleet still produces a real upstream error instead of a guess).
func (r *Router) candidates(key string) []*backend {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := r.ring.lookup(key, r.cfg.ReplicaCount+1)
	healthy := make([]*backend, 0, len(names))
	var ejected []*backend
	for _, n := range names {
		b := r.backends[n]
		if b == nil {
			continue
		}
		if b.isHealthy() {
			healthy = append(healthy, b)
		} else {
			ejected = append(ejected, b)
		}
	}
	return append(healthy, ejected...)
}

// outboundTraceparent adopts the inbound trace ID (minting one when absent)
// and returns the traceparent header for the forwarded hop, so the
// replica's request trace — and its X-Weaksim-Trace-Id response header —
// joins the caller's distributed trace across the router.
func outboundTraceparent(inbound string) (obs.TraceID, string) {
	tid, _, ok := obs.ParseTraceparent(inbound)
	if !ok {
		tid = obs.NewTraceID()
	}
	return tid, obs.Traceparent(tid, obs.NewSpanID())
}

// canFailover reports whether a received status may be retried on the next
// ring candidate. Only 502 and 503 qualify: the replica (or something in
// front of it) refused the request before doing the work — draining, load
// shedding, a dead proxy hop. 507/504 are the governance ladder's
// deterministic MO/TO verdicts (every replica would answer the same), and
// any other 5xx means the request already reached a sim worker, so
// re-sending it could only burn a second strong simulation.
func canFailover(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable
}

func (r *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	r.reqErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"code": code, "message": msg, "status": status},
	})
}

// Handler returns the router's HTTP handler (also useful under httptest).
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", r.handleSample)
	mux.HandleFunc("/v1/cluster", r.handleStatus)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/readyz", r.handleReadyz)
	// Read-only fleet endpoints are proxied to any healthy replica.
	mux.HandleFunc("/v1/circuits", r.handleProxy)
	mux.HandleFunc("/v1/stats", r.handleProxy)
	mux.HandleFunc("/v1/slo", r.handleProxy)
	return mux
}

func (r *Router) handleSample(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		r.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	r.reqTotal.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	key, err := serve.KeyForBody(body, r.cfg.Norm)
	if err != nil {
		r.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	tid, traceparent := outboundTraceparent(req.Header.Get("traceparent"))
	w.Header().Set("X-Weaksim-Trace-Id", tid.String())

	cands := r.candidates(key)
	if len(cands) == 0 {
		r.writeError(w, http.StatusServiceUnavailable, "no_backends", "no backends configured")
		return
	}
	r.prewarm(key, cands[0])

	var lastStatus int
	var lastErr error
	for attempt, b := range cands {
		if attempt > 0 {
			r.failovers.Inc()
		}
		resp, err := r.forward(req.Context(), b, req.URL.RawQuery, body, traceparent)
		if err != nil {
			// Transport-level failure: the backend never answered. Count it
			// toward ejection (traffic ejects a dead replica faster than the
			// probe cadence) and fail over.
			if b.noteFailure(r.cfg.FailThreshold, r.cfg.ProbeInterval, r.cfg.MaxBackoff, time.Now()) {
				r.probeEject.Inc()
				r.mu.Lock()
				r.refreshHealthyGaugeLocked()
				r.mu.Unlock()
			}
			lastErr = err
			continue
		}
		if canFailover(resp.StatusCode) && attempt < len(cands)-1 {
			lastStatus = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			r.recordPlacement(key, b)
		}
		relay(w, resp, b.name)
		return
	}
	if lastErr != nil {
		r.writeError(w, http.StatusBadGateway, "no_backend_available",
			fmt.Sprintf("all %d candidates failed; last: %v", len(cands), lastErr))
		return
	}
	r.writeError(w, http.StatusBadGateway, "no_backend_available",
		fmt.Sprintf("all %d candidates refused; last status %d", len(cands), lastStatus))
}

// forward sends one attempt of the sample request to backend b. The
// fault.ClusterConnect hook models a backend connect failure ahead of the
// real dial, so the chaos suite can exercise ejection and failover
// deterministically.
func (r *Router) forward(ctx context.Context, b *backend, rawQuery string, body []byte, traceparent string) (*http.Response, error) {
	if err := fault.Hit(fault.ClusterConnect); err != nil {
		return nil, err
	}
	url := b.name + "/v1/sample"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	b.requests.Inc()
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	// Any HTTP answer means the backend is alive, whatever the status.
	if b.noteSuccess() {
		r.probeRestore.Inc()
	}
	return resp, nil
}

// relay copies a backend response to the client, tagging which replica
// answered.
func relay(w http.ResponseWriter, resp *http.Response, backendName string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Weaksim-Trace-Id", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Weaksim-Backend", backendName)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// prewarm ships the snapshot for key to target when the ring has reassigned
// the key away from a still-warm holder — the "replica joined / primary
// changed" path. Synchronous: the point is that the forwarded request finds
// the target warm. A failed ship degrades to the target re-simulating,
// never to a failed request.
func (r *Router) prewarm(key string, target *backend) {
	r.mu.Lock()
	holderName, ok := r.placement[key]
	holder := r.backends[holderName]
	already := r.shipped[key][target.name]
	r.mu.Unlock()
	if !ok || holder == nil || holderName == target.name || already || !holder.isHealthy() {
		return
	}
	r.ship(key, holder, target)
}

// recordPlacement remembers that b answered key with 200 and replicates the
// snapshot to the remaining ring candidates in the background, so the next
// failover target is warm before it is ever needed.
func (r *Router) recordPlacement(key string, b *backend) {
	r.mu.Lock()
	r.placement[key] = b.name
	if r.shipped[key] == nil {
		r.shipped[key] = make(map[string]bool)
	}
	r.shipped[key][b.name] = true
	var targets []*backend
	if !r.draining {
		for _, n := range r.ring.lookup(key, r.cfg.ReplicaCount+1) {
			if t := r.backends[n]; t != nil && n != b.name && !r.shipped[key][n] && t.isHealthy() {
				targets = append(targets, t)
			}
		}
	}
	r.mu.Unlock()
	for _, t := range targets {
		r.shipWG.Add(1)
		go func(t *backend) {
			defer r.shipWG.Done()
			r.ship(key, b, t)
		}(t)
	}
}

// ship copies one snapshot frame from a warm replica to a target via the
// wire endpoints. The frame is the snapstore file format (versioned dd
// image + CRC-64 trailer), so the target runs the same integrity ladder a
// disk load would; the fault.ClusterSnapFetch hook can corrupt the frame in
// transit to prove that ladder holds. Every failure is counted and dropped
// — the target simply re-simulates on demand.
func (r *Router) ship(key string, from, to *backend) {
	r.shipAttempts.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RequestTimeout)
	defer cancel()
	getReq, err := http.NewRequestWithContext(ctx, http.MethodGet, from.name+"/v1/snapshot/"+key, nil)
	if err != nil {
		r.shipFailed.Inc()
		return
	}
	resp, err := r.client.Do(getReq)
	if err != nil {
		r.shipFailed.Inc()
		return
	}
	frame, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		r.shipFailed.Inc()
		return
	}
	frame, err = fault.Mangle(fault.ClusterSnapFetch, frame)
	if err != nil {
		r.shipFailed.Inc()
		return
	}
	putReq, err := http.NewRequestWithContext(ctx, http.MethodPut, to.name+"/v1/snapshot/"+key, bytes.NewReader(frame))
	if err != nil {
		r.shipFailed.Inc()
		return
	}
	putReq.Header.Set("Content-Type", "application/octet-stream")
	putResp, err := r.client.Do(putReq)
	if err != nil {
		r.shipFailed.Inc()
		return
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	switch putResp.StatusCode {
	case http.StatusNoContent:
		r.shipInstalled.Inc()
		r.mu.Lock()
		if r.shipped[key] == nil {
			r.shipped[key] = make(map[string]bool)
		}
		r.shipped[key][to.name] = true
		r.mu.Unlock()
	case http.StatusConflict:
		// Version mismatch is deterministic: that target can never install
		// this frame, so mark it "handled" and let it re-simulate instead of
		// re-shipping on every request.
		r.shipFailed.Inc()
		r.mu.Lock()
		if r.shipped[key] == nil {
			r.shipped[key] = make(map[string]bool)
		}
		r.shipped[key][to.name] = true
		r.mu.Unlock()
	default:
		r.shipFailed.Inc()
	}
}

// handleProxy forwards read-only fleet endpoints (/v1/circuits, /v1/stats,
// /v1/slo) to the first healthy replica.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	var names []string
	for n, b := range r.backends {
		if b.isHealthy() {
			names = append(names, n)
		}
	}
	r.mu.Unlock()
	sort.Strings(names)
	_, traceparent := outboundTraceparent(req.Header.Get("traceparent"))
	for _, n := range names {
		out, err := http.NewRequestWithContext(req.Context(), http.MethodGet, n+req.URL.Path, nil)
		if err != nil {
			continue
		}
		out.Header.Set("traceparent", traceparent)
		resp, err := r.client.Do(out)
		if err != nil {
			continue
		}
		relay(w, resp, n)
		return
	}
	r.writeError(w, http.StatusServiceUnavailable, "no_backends", "no healthy backend")
}

// backendStatus is one row of the /v1/cluster report.
type backendStatus struct {
	Name         string `json:"name"`
	Healthy      bool   `json:"healthy"`
	ConsecFails  int    `json:"consec_fails"`
	BackoffMS    int64  `json:"backoff_ms"`
	Requests     uint64 `json:"requests_total"`
	RingPermille int64  `json:"ring_permille"`
}

// clusterStatus is the GET /v1/cluster body: the routing brain's view of
// the fleet.
type clusterStatus struct {
	Backends      []backendStatus `json:"backends"`
	RingVersion   uint64          `json:"ring_version"`
	ReplicaCount  int             `json:"replica_count"`
	Placements    int             `json:"placements"`
	Failovers     uint64          `json:"failovers_total"`
	ShipAttempts  uint64          `json:"ship_attempts_total"`
	ShipInstalled uint64          `json:"ship_installed_total"`
	ShipFailures  uint64          `json:"ship_failures_total"`
}

func (r *Router) statusNow() clusterStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	own := r.ring.ownership()
	st := clusterStatus{
		RingVersion:   r.ringVersion,
		ReplicaCount:  r.cfg.ReplicaCount,
		Placements:    len(r.placement),
		Failovers:     r.failovers.Value(),
		ShipAttempts:  r.shipAttempts.Value(),
		ShipInstalled: r.shipInstalled.Value(),
		ShipFailures:  r.shipFailed.Value(),
	}
	names := make([]string, 0, len(r.backends))
	for n := range r.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := r.backends[n]
		healthy, fails, backoff := b.snapshotState()
		st.Backends = append(st.Backends, backendStatus{
			Name:         n,
			Healthy:      healthy,
			ConsecFails:  fails,
			BackoffMS:    backoff.Milliseconds(),
			Requests:     b.requests.Value(),
			RingPermille: int64(own[n] * 1000),
		})
	}
	return st
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		r.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(r.statusNow())
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "role": "router"})
}

// handleReadyz is ready while at least one backend is routable — a router
// with a fully dark fleet should be pulled by its own load balancer.
func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	draining := r.draining
	healthy := 0
	for _, b := range r.backends {
		if b.isHealthy() {
			healthy++
		}
	}
	r.mu.Unlock()
	if draining || healthy == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "unavailable", "healthy_backends": healthy})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ready", "healthy_backends": healthy})
}
