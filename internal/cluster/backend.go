package cluster

// Backend state and the health prober.
//
// Every backend starts healthy (optimistic: the router should route from the
// first request, not after a probe round-trip) and is then continuously
// probed on /readyz. Ejection requires FailThreshold *consecutive* failures
// — one dropped packet must not empty the ring — and failed forwards count
// toward the same tally as failed probes, so a replica that dies under load
// is ejected by the traffic itself, typically before the next probe tick.
//
// Reinstatement is probe-driven with exponential backoff: an ejected backend
// is re-probed only after its backoff window elapses, and each further
// failed probe doubles the window up to MaxBackoff. One successful probe
// fully reinstates it (consecutive-failure count and backoff reset) — the
// /readyz contract is that a 200 means "route to me", including after a
// drain-and-restart.

import (
	"strings"
	"sync"
	"time"

	"weaksim/internal/obs"
)

// backend is one replica's routing state plus its per-backend metrics.
type backend struct {
	name string // base URL, e.g. "http://127.0.0.1:8081"; the ring identity

	mu          sync.Mutex
	healthy     bool
	consecFails int
	backoff     time.Duration
	retryAt     time.Time // ejected backends are probed only after this

	// Per-backend series, named cluster_backend_<sanitized>_*: request
	// count, health (1/0), and primary-ownership share of the ring in
	// permille.
	requests  *obs.Counter
	gHealthy  *obs.Gauge
	gOwnPerMi *obs.Gauge
}

// sanitizeMetric folds a backend URL into a metric-name-safe token:
// lowercase [a-z0-9_] with everything else collapsed to '_'.
func sanitizeMetric(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range strings.ToLower(strings.TrimPrefix(strings.TrimPrefix(name, "https://"), "http://")) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func newBackend(name string, reg *obs.Registry) *backend {
	stem := "cluster_backend_" + sanitizeMetric(name)
	obs.RegisterHelp(stem+"_requests_total", "Requests the router forwarded to backend "+name+".")
	obs.RegisterHelp(stem+"_healthy", "1 while backend "+name+" is in the ring, 0 while ejected.")
	obs.RegisterHelp(stem+"_ring_permille", "Share of the hash ring owned by backend "+name+" (primary placements, permille).")
	b := &backend{
		name:      name,
		healthy:   true,
		requests:  reg.Counter(stem + "_requests_total"),
		gHealthy:  reg.Gauge(stem + "_healthy"),
		gOwnPerMi: reg.Gauge(stem + "_ring_permille"),
	}
	b.gHealthy.Set(1)
	return b
}

// isHealthy reports whether the backend is currently in the routing set.
func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// noteFailure records one consecutive failure (probe or forward transport
// error) and ejects the backend once the threshold is reached. It returns
// true when this call transitioned the backend from healthy to ejected.
func (b *backend) noteFailure(threshold int, initialBackoff, maxBackoff time.Duration, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.healthy && b.consecFails >= threshold {
		b.healthy = false
		b.backoff = initialBackoff
		b.retryAt = now.Add(b.backoff)
		b.gHealthy.Set(0)
		return true
	}
	if !b.healthy {
		// Already ejected: a further failed probe doubles the backoff.
		b.backoff *= 2
		if b.backoff > maxBackoff {
			b.backoff = maxBackoff
		}
		b.retryAt = now.Add(b.backoff)
	}
	return false
}

// noteSuccess resets the failure tally and reinstates an ejected backend.
// It returns true when this call transitioned the backend back to healthy.
func (b *backend) noteSuccess() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	b.backoff = 0
	if !b.healthy {
		b.healthy = true
		b.gHealthy.Set(1)
		return true
	}
	return false
}

// probeDue reports whether the health prober should contact this backend
// now: always while healthy, and only after the backoff window while
// ejected.
func (b *backend) probeDue(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy || !now.Before(b.retryAt)
}

// snapshotState returns the fields the /v1/cluster status endpoint reports.
func (b *backend) snapshotState() (healthy bool, consecFails int, backoff time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.consecFails, b.backoff
}
