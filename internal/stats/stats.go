// Package stats provides the statistical machinery used to verify that
// weak-simulation outputs are statistically indistinguishable from the
// exact Born distribution: chi-square goodness-of-fit testing (with an
// in-package regularized incomplete gamma function), total variation
// distance, and Kullback-Leibler divergence.
package stats

import (
	"fmt"
	"math"
)

// TotalVariation returns the total variation distance between two
// distributions of equal length: ½·Σ|p_i − q_i|.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	var d float64
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2, nil
}

// KLDivergence returns the Kullback-Leibler divergence D(p||q) in nats.
// Entries where p_i == 0 contribute nothing; p_i > 0 with q_i == 0 yields
// +Inf, as defined.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d, nil
}

// EmpiricalDistribution converts sample counts over 2^n outcomes into an
// explicit probability vector of the given size.
func EmpiricalDistribution(counts map[uint64]int, size uint64, shots int) []float64 {
	p := make([]float64, size)
	for idx, c := range counts {
		p[idx] = float64(c) / float64(shots)
	}
	return p
}

// ChiSquareResult holds the outcome of a goodness-of-fit test.
type ChiSquareResult struct {
	// Statistic is the chi-square test statistic Σ (obs−exp)²/exp over
	// the retained bins.
	Statistic float64
	// DoF is the degrees of freedom (retained bins − 1).
	DoF int
	// PValue is the probability of a statistic at least this large under
	// the null hypothesis that the samples follow the expected
	// distribution.
	PValue float64
	// Pooled reports how many low-expectation outcomes were pooled into a
	// single bin to keep the test valid.
	Pooled int
}

// MinExpected is the conventional minimum expected count per chi-square
// bin; outcomes with smaller expectation are pooled.
const MinExpected = 5.0

// ChiSquareGOF tests observed counts against expected probabilities.
// Outcomes with expected counts below MinExpected are pooled into one bin.
// shots must equal the total of counts.
func ChiSquareGOF(counts map[uint64]int, expected []float64, shots int) (ChiSquareResult, error) {
	if shots <= 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: non-positive shot count %d", shots)
	}
	var total int
	for _, c := range counts {
		total += c
	}
	if total != shots {
		return ChiSquareResult{}, fmt.Errorf("stats: counts sum to %d, want %d", total, shots)
	}
	var stat float64
	var bins int
	var poolObs, poolExp float64
	pooled := 0
	for idx, p := range expected {
		exp := p * float64(shots)
		obs := float64(counts[uint64(idx)])
		if exp < MinExpected {
			poolObs += obs
			poolExp += exp
			pooled++
			continue
		}
		d := obs - exp
		stat += d * d / exp
		bins++
	}
	if poolExp > 0 {
		d := poolObs - poolExp
		stat += d * d / poolExp
		bins++
	} else if poolObs > 0 {
		// Observed samples in zero-probability outcomes: the sampler is
		// broken, not merely noisy.
		return ChiSquareResult{Statistic: math.Inf(1), DoF: bins, PValue: 0, Pooled: pooled}, nil
	}
	if bins < 2 {
		// A deterministic distribution cannot disagree once the shot
		// total matches.
		return ChiSquareResult{Statistic: 0, DoF: 0, PValue: 1, Pooled: pooled}, nil
	}
	dof := bins - 1
	pval := ChiSquareSurvival(stat, float64(dof))
	return ChiSquareResult{Statistic: stat, DoF: dof, PValue: pval, Pooled: pooled}, nil
}

// ChiSquareSurvival returns P(X ≥ x) for a chi-square distribution with k
// degrees of freedom: the regularized upper incomplete gamma Q(k/2, x/2).
func ChiSquareSurvival(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return upperRegGamma(k/2, x/2)
}

// upperRegGamma computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction otherwise (Numerical Recipes style, stdlib only).
func upperRegGamma(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - lowerSeries(a, x)
	default:
		return upperContinuedFraction(a, x)
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 10000
)

// lowerSeries computes P(a, x) by its power series.
func lowerSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperContinuedFraction computes Q(a, x) by the Lentz continued fraction.
func upperContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// TwoSampleChiSquare tests whether two sets of sample counts come from the
// same (unknown) distribution — the tool of choice when the exact Born
// distribution is out of reach (the MO regime of the paper's Table I) and
// two samplers must still be shown statistically indistinguishable.
//
// Outcomes whose combined count falls below MinExpected are pooled. The
// statistic is Σ (K1·b_i − K2·a_i)² / (a_i + b_i) with K1 = √(n2/n1),
// K2 = √(n1/n2), chi-square distributed with bins−1 degrees of freedom
// under the null hypothesis.
func TwoSampleChiSquare(a, b map[uint64]int) (ChiSquareResult, error) {
	var n1, n2 float64
	for _, v := range a {
		if v < 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: negative count in sample a")
		}
		n1 += float64(v)
	}
	for _, v := range b {
		if v < 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: negative count in sample b")
		}
		n2 += float64(v)
	}
	if n1 == 0 || n2 == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: empty sample")
	}
	k1 := math.Sqrt(n2 / n1)
	k2 := math.Sqrt(n1 / n2)

	outcomes := make(map[uint64]struct{}, len(a)+len(b))
	for k := range a {
		outcomes[k] = struct{}{}
	}
	for k := range b {
		outcomes[k] = struct{}{}
	}

	var stat float64
	bins := 0
	pooled := 0
	var poolA, poolB float64
	for k := range outcomes {
		ai, bi := float64(a[k]), float64(b[k])
		if ai+bi < MinExpected {
			poolA += ai
			poolB += bi
			pooled++
			continue
		}
		d := k1*ai - k2*bi
		stat += d * d / (ai + bi)
		bins++
	}
	if poolA+poolB > 0 {
		d := k1*poolA - k2*poolB
		stat += d * d / (poolA + poolB)
		bins++
	}
	if bins < 2 {
		return ChiSquareResult{Statistic: 0, DoF: 0, PValue: 1, Pooled: pooled}, nil
	}
	dof := bins - 1
	return ChiSquareResult{
		Statistic: stat,
		DoF:       dof,
		PValue:    ChiSquareSurvival(stat, float64(dof)),
		Pooled:    pooled,
	}, nil
}
