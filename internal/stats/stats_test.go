package stats

import (
	"math"
	"testing"
	"testing/quick"

	"weaksim/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5, 0, 0}
	q := []float64{0, 0, 0.5, 0.5}
	d, err := TotalVariation(p, q)
	if err != nil || !approx(d, 1, 1e-15) {
		t.Errorf("TVD of disjoint distributions = %v, %v; want 1", d, err)
	}
	d, err = TotalVariation(p, p)
	if err != nil || d != 0 {
		t.Errorf("TVD of identical distributions = %v, %v; want 0", d, err)
	}
	if _, err := TotalVariation(p, []float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	d, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3.0)
	if !approx(d, want, 1e-12) {
		t.Errorf("KL = %v, want %v", d, want)
	}
	if d, _ := KLDivergence(p, p); d != 0 {
		t.Errorf("KL(p,p) = %v", d)
	}
	if d, _ := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Errorf("KL with disjoint support = %v, want +Inf", d)
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x, k, want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{18.307, 10, 0.05},
		{2.706, 1, 0.10},
		{0, 5, 1},
		{23.209, 10, 0.01},
	}
	for _, tc := range cases {
		got := ChiSquareSurvival(tc.x, tc.k)
		if math.Abs(got-tc.want) > 2e-4 {
			t.Errorf("ChiSquareSurvival(%v, %v) = %v, want %v", tc.x, tc.k, got, tc.want)
		}
	}
}

func TestChiSquareSurvivalMonotonicProperty(t *testing.T) {
	f := func(x1, x2 float64, kRaw uint8) bool {
		k := float64(kRaw%30 + 1)
		x1 = math.Abs(math.Mod(x1, 100))
		x2 = math.Abs(math.Mod(x2, 100))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		s1 := ChiSquareSurvival(x1, k)
		s2 := ChiSquareSurvival(x2, k)
		return s1 >= s2-1e-12 && s1 >= 0 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareGOFAcceptsFairSamples(t *testing.T) {
	// Sampling from the exact distribution must pass at α = 0.001.
	expected := []float64{0, 0.375, 0, 0.375, 0.125, 0, 0, 0.125}
	r := rng.New(99)
	shots := 100000
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		u := r.Float64()
		var run float64
		for idx, p := range expected {
			run += p
			if u < run {
				counts[uint64(idx)]++
				break
			}
		}
	}
	res, err := ChiSquareGOF(counts, expected, shots)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("fair samples rejected: stat=%v dof=%d p=%v", res.Statistic, res.DoF, res.PValue)
	}
}

func TestChiSquareGOFRejectsBiasedSamples(t *testing.T) {
	expected := []float64{0.5, 0.5}
	counts := map[uint64]int{0: 70000, 1: 30000}
	res, err := ChiSquareGOF(counts, expected, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-10 {
		t.Errorf("grossly biased samples accepted: p=%v", res.PValue)
	}
}

func TestChiSquareGOFImpossibleOutcome(t *testing.T) {
	expected := []float64{1, 0}
	counts := map[uint64]int{0: 99, 1: 1}
	res, err := ChiSquareGOF(counts, expected, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 0 {
		t.Errorf("samples in zero-probability outcome accepted: p=%v", res.PValue)
	}
}

func TestChiSquareGOFPoolsRareOutcomes(t *testing.T) {
	// A distribution with many tiny-probability outcomes pools them.
	expected := make([]float64, 64)
	expected[0] = 0.9
	for i := 1; i < 64; i++ {
		expected[i] = 0.1 / 63
	}
	counts := map[uint64]int{0: 90}
	for i := 1; i <= 10; i++ {
		counts[uint64(i)] = 1
	}
	res, err := ChiSquareGOF(counts, expected, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pooled == 0 {
		t.Error("expected pooling of rare outcomes")
	}
}

func TestChiSquareGOFValidation(t *testing.T) {
	if _, err := ChiSquareGOF(map[uint64]int{0: 5}, []float64{1}, 10); err == nil {
		t.Error("expected error for mismatched totals")
	}
	if _, err := ChiSquareGOF(nil, []float64{1}, 0); err == nil {
		t.Error("expected error for zero shots")
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	counts := map[uint64]int{1: 25, 3: 75}
	p := EmpiricalDistribution(counts, 4, 100)
	want := []float64{0, 0.25, 0, 0.75}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestTwoSampleChiSquareAcceptsSameDistribution(t *testing.T) {
	r := rng.New(42)
	draw := func(seedless *rng.RNG, shots int) map[uint64]int {
		counts := make(map[uint64]int)
		probs := []float64{0.4, 0.3, 0.2, 0.1}
		for i := 0; i < shots; i++ {
			u := seedless.Float64()
			var run float64
			for idx, p := range probs {
				run += p
				if u < run {
					counts[uint64(idx)]++
					break
				}
			}
		}
		return counts
	}
	a := draw(r, 50000)
	b := draw(r, 30000)
	res, err := TwoSampleChiSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("same-distribution samples rejected: stat=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestTwoSampleChiSquareRejectsDifferentDistributions(t *testing.T) {
	a := map[uint64]int{0: 7000, 1: 3000}
	b := map[uint64]int{0: 3000, 1: 7000}
	res, err := TwoSampleChiSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-10 {
		t.Errorf("clearly different samples accepted: p=%v", res.PValue)
	}
}

func TestTwoSampleChiSquareValidation(t *testing.T) {
	if _, err := TwoSampleChiSquare(nil, map[uint64]int{0: 1}); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := TwoSampleChiSquare(map[uint64]int{0: -1}, map[uint64]int{0: 1}); err == nil {
		t.Error("expected error for negative count")
	}
}

func TestTwoSampleChiSquareUnequalSizes(t *testing.T) {
	// Very different shot counts from the same distribution must accept.
	a := map[uint64]int{0: 100000, 1: 100000}
	b := map[uint64]int{0: 510, 1: 490}
	res, err := TwoSampleChiSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("unequal-size same-distribution samples rejected: p=%v", res.PValue)
	}
}
