package core

// Chaos coverage for the sampling-walk injection point: a fault on one
// parallel walker must fail the batch as an ordinary error — never crash the
// process (the walkers run on bare goroutines, where an unrecovered panic is
// fatal) and never return counts that silently miss a worker's share.

import (
	"context"
	"errors"
	"testing"

	"weaksim/internal/dd"
	"weaksim/internal/fault"
)

func faultTestSampler(t *testing.T) *FrozenSampler {
	t.Helper()
	vec, _ := frozenRandomVector(4, 7)
	m := dd.New(4)
	state, err := m.FromVector(vec)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Freeze(state)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFrozenSampler(snap)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestFaultSamplerWalkErrFailsBatch: an injected error at the cooperative
// check cadence surfaces as the batch error, wrapping ErrInjected.
func TestFaultSamplerWalkErrFailsBatch(t *testing.T) {
	fs := faultTestSampler(t)
	if err := fault.Enable("sampler.walk:err@1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	_, _, err := CountsParallelContext(context.Background(), fs, 3, 4*CtxCheckShots, 2)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("batch error %v, want ErrInjected", err)
	}
	// The window closed after one hit: a rerun draws the full batch.
	counts, _, err := CountsParallelContext(context.Background(), fs, 3, 4*CtxCheckShots, 2)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 4*CtxCheckShots {
		t.Fatalf("rerun drew %d shots, want %d", total, 4*CtxCheckShots)
	}
}

// TestFaultSamplerWalkPanicIsolatedToWorker: an injected panic on a walker
// goroutine is recovered in that worker and converted to the batch error —
// the other workers finish, nothing crashes, and the panic's point survives
// in the error chain for diagnosis.
func TestFaultSamplerWalkPanicIsolatedToWorker(t *testing.T) {
	fs := faultTestSampler(t)
	if err := fault.Enable("sampler.walk:panic@1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	_, stats, err := CountsParallelContext(context.Background(), fs, 3, 4*CtxCheckShots, 2)
	if err == nil {
		t.Fatal("panicking walker reported success")
	}
	var ip *fault.InjectedPanic
	if !errors.As(err, &ip) || ip.Point != fault.SamplerWalk {
		t.Fatalf("batch error %v, want *fault.InjectedPanic at %s", err, fault.SamplerWalk)
	}
	// Both workers produced a stat entry: the healthy worker ran to quota.
	if len(stats) != 2 {
		t.Fatalf("got %d worker stats, want 2", len(stats))
	}
	healthy := 0
	for _, ws := range stats {
		if ws.Shots == 2*CtxCheckShots {
			healthy++
		}
	}
	if healthy == 0 {
		t.Fatalf("no worker ran to quota after a sibling's panic: %+v", stats)
	}
}
