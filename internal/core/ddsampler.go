package core

import (
	"fmt"

	"weaksim/internal/dd"
	"weaksim/internal/obs"
	"weaksim/internal/rng"
)

// annotationSnapshot freezes the state with generic (downstream-
// renormalized) branch probabilities for the pointer-keyed annotation
// surfaces below. A nil return means the input has no nodes to annotate.
func annotationSnapshot(m *dd.Manager, root dd.VEdge) *dd.Snapshot {
	if root.IsZero() || root.N == nil {
		return nil
	}
	snap, err := m.Freeze(root, dd.FreezeGeneric())
	if err != nil {
		return nil
	}
	return snap
}

// Downstream computes the downstream probability of every node reachable
// from root: the total probability mass of all half-paths from the node to
// the terminal, assuming a unit incoming weight (paper Section IV-B). The
// terminal's downstream probability is 1 and is not stored.
//
// The computation runs over the flat arrays of a dd.Snapshot (one freeze
// pass instead of a hash-map DFS); the pointer-keyed map view is rebuilt
// for the diagnostic and approximation surfaces that consume it.
//
// Under the L2 normalization schemes every downstream probability is 1 up
// to the interning tolerance; that invariant is what makes the fast
// sampling path possible.
func Downstream(m *dd.Manager, root dd.VEdge) map[*dd.VNode]float64 {
	snap := annotationSnapshot(m, root)
	if snap == nil {
		return map[*dd.VNode]float64{}
	}
	down := make(map[*dd.VNode]float64, snap.Len())
	for i := 0; i < snap.Len(); i++ {
		down[snap.Origin(int32(i))] = snap.Down(int32(i))
	}
	return down
}

// Upstream computes the upstream probability of every node reachable from
// root: the total probability mass of all half-paths from the root to the
// node (paper Section IV-B). The root node's upstream probability is the
// squared magnitude of the root edge weight. Like Downstream, it is one
// descending sweep over a snapshot's topologically ordered flat arrays.
func Upstream(m *dd.Manager, root dd.VEdge) map[*dd.VNode]float64 {
	snap := annotationSnapshot(m, root)
	if snap == nil {
		return map[*dd.VNode]float64{}
	}
	up := make(map[*dd.VNode]float64, snap.Len())
	for i := 0; i < snap.Len(); i++ {
		up[snap.Origin(int32(i))] = snap.Up(int32(i))
	}
	return up
}

// EdgeProbabilities returns, for every node reachable from root, the
// conditional probability of descending along the 0- and 1-successor when
// drawing a sample (paper Fig. 4c): the product of the edge's squared
// weight magnitude and the successor's downstream probability, renormalized
// at the node. Entries sum to 1 for every node with non-zero mass.
func EdgeProbabilities(m *dd.Manager, root dd.VEdge) map[*dd.VNode][2]float64 {
	snap := annotationSnapshot(m, root)
	if snap == nil {
		return map[*dd.VNode][2]float64{}
	}
	probs := make(map[*dd.VNode][2]float64, snap.Len())
	for i := 0; i < snap.Len(); i++ {
		nd := snap.At(int32(i))
		var d [2]float64
		for b := 0; b < 2; b++ {
			switch k := nd.Kid[b]; {
			case k == dd.SnapZero:
			case k == dd.SnapTerminal:
				d[b] = nd.W[b].Abs2()
			default:
				d[b] = nd.W[b].Abs2() * snap.Down(k)
			}
		}
		var p [2]float64
		if total := d[0] + d[1]; total > 0 {
			p = [2]float64{d[0] / total, d[1] / total}
		}
		probs[snap.Origin(int32(i))] = p
	}
	return probs
}

func downOf(n *dd.VNode, down map[*dd.VNode]float64) float64 {
	if n == nil {
		return 1
	}
	return down[n]
}

// TraversalProbabilities returns the absolute probability that a sample's
// root-to-terminal walk traverses each node: the product of the node's
// upstream and downstream probabilities (paper Section IV-B). Probabilities
// on one level sum to 1 (up to tolerance) for a normalized state. Both
// annotations come from a single freeze pass.
func TraversalProbabilities(m *dd.Manager, root dd.VEdge) map[*dd.VNode]float64 {
	snap := annotationSnapshot(m, root)
	if snap == nil {
		return map[*dd.VNode]float64{}
	}
	tp := make(map[*dd.VNode]float64, snap.Len())
	for i := 0; i < snap.Len(); i++ {
		tp[snap.Origin(int32(i))] = snap.Traversal(int32(i))
	}
	return tp
}

// DDSampler draws measurement samples directly from a state decision
// diagram (paper Section IV). Construction performs the linear-time
// downstream precomputation; each Sample is a randomized O(n)
// root-to-terminal walk. When the Manager uses an L2 normalization scheme
// the precomputation is skipped entirely: the squared magnitudes of the
// outgoing edge weights already are the branch probabilities (Section
// IV-C).
type DDSampler struct {
	m       *dd.Manager
	root    dd.VEdge
	down    map[*dd.VNode]float64 // nil when the fast path is active
	fast    bool
	renorms uint64 // zero-edge fallbacks taken during walks (numerical slack)
}

// DDSamplerOption configures a DDSampler.
type DDSamplerOption func(*ddSamplerConfig)

type ddSamplerConfig struct {
	forceGeneric bool
	reg          *obs.Registry
	tracer       *obs.Tracer
}

// WithObservability attaches a metrics registry and/or tracer to sampler
// construction: the annotation passes (paper Section IV-B) are timed as
// annotate-downstream / annotate-upstream phase spans and accumulated into
// the phase_* counters. Either argument may be nil.
func WithObservability(reg *obs.Registry, tr *obs.Tracer) DDSamplerOption {
	return func(c *ddSamplerConfig) {
		c.reg = reg
		c.tracer = tr
	}
}

// ForceGeneric disables the L2 fast path even when the normalization scheme
// would allow it, forcing the downstream precomputation. Used by the
// ablation benchmarks.
func ForceGeneric() DDSamplerOption {
	return func(c *ddSamplerConfig) { c.forceGeneric = true }
}

// NewDDSampler prepares sampling from the given state DD.
func NewDDSampler(m *dd.Manager, root dd.VEdge, opts ...DDSamplerOption) (*DDSampler, error) {
	if root.IsZero() {
		return nil, fmt.Errorf("core: cannot sample from the zero vector")
	}
	var cfg ddSamplerConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &DDSampler{m: m, root: root}
	norm := m.Normalization()
	s.fast = !cfg.forceGeneric && (norm == dd.NormL2 || norm == dd.NormL2Phase)
	if !s.fast {
		stop := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseAnnotateDown)
		s.down = Downstream(m, root)
		stop()
		cfg.reg.Gauge("sample_annotated_nodes").Set(int64(len(s.down)))
	} else if cfg.tracer != nil {
		// Under L2 normalization the annotation pass is the whole point of
		// skipping: record that the fast path made it a no-op.
		cfg.tracer.Event(obs.PhaseAnnotateDown, "skipped-l2-fast-path", nil)
	}
	return s, nil
}

// Renorms returns how many zero-edge fallbacks the sampler has taken across
// all walks so far — the "rejection/renormalization" events of the
// randomized traversal, caused purely by floating-point slack at (near-)zero
// branch probabilities. A healthy state keeps this at or near zero.
func (s *DDSampler) Renorms() uint64 { return s.renorms }

// AnnotatedTraversal computes the traversal probabilities (upstream ×
// downstream, paper Section IV-B) with the combined freeze pass timed as a
// phase span. It is the instrumented counterpart of TraversalProbabilities,
// used by diagnostics surfaces. The snapshot performs both annotation
// sweeps in one traversal, so the historical annotate-downstream /
// annotate-upstream span pair collapses into a single freeze span.
func AnnotatedTraversal(m *dd.Manager, root dd.VEdge, reg *obs.Registry, tr *obs.Tracer) map[*dd.VNode]float64 {
	stop := obs.StartPhase(reg, tr, obs.PhaseFreeze)
	tp := TraversalProbabilities(m, root)
	stop()
	reg.Gauge("sample_annotated_nodes").Set(int64(len(tp)))
	return tp
}

// Qubits returns the sampled bitstring width.
func (s *DDSampler) Qubits() int { return s.m.Qubits() }

// FastPath reports whether the L2 normalization fast path is active.
func (s *DDSampler) FastPath() bool { return s.fast }

// Sample draws one basis-state index by a randomized root-to-terminal walk.
func (s *DDSampler) Sample(r *rng.RNG) uint64 {
	var idx uint64
	e := s.root
	for v := s.m.Qubits() - 1; v >= 0; v-- {
		n := e.N
		var p0 float64
		if s.fast {
			p0 = n.E[0].W.Abs2()
		} else {
			d0 := n.E[0].W.Abs2() * downOf(n.E[0].N, s.down)
			d1 := n.E[1].W.Abs2() * downOf(n.E[1].N, s.down)
			p0 = d0 / (d0 + d1)
		}
		if r.Float64() < p0 {
			e = n.E[0]
		} else {
			e = n.E[1]
			idx |= uint64(1) << uint(v)
		}
		if e.IsZero() {
			// Floating-point slack put us on a zero edge; the other
			// branch holds all the mass.
			s.renorms++
			if idx&(uint64(1)<<uint(v)) != 0 {
				idx &^= uint64(1) << uint(v)
				e = n.E[0]
			} else {
				idx |= uint64(1) << uint(v)
				e = n.E[1]
			}
		}
	}
	return idx
}
