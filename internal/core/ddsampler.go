package core

import (
	"fmt"

	"weaksim/internal/dd"
	"weaksim/internal/obs"
	"weaksim/internal/rng"
)

// Downstream computes the downstream probability of every node reachable
// from root: the total probability mass of all half-paths from the node to
// the terminal, assuming a unit incoming weight (paper Section IV-B,
// computed by depth-first traversal). The terminal's downstream probability
// is 1 and is not stored.
//
// Under the L2 normalization schemes every downstream probability is 1 up
// to the interning tolerance; that invariant is what makes the fast
// sampling path possible.
func Downstream(m *dd.Manager, root dd.VEdge) map[*dd.VNode]float64 {
	down := make(map[*dd.VNode]float64)
	var dfs func(n *dd.VNode) float64
	dfs = func(n *dd.VNode) float64 {
		if n == nil {
			return 1
		}
		if d, ok := down[n]; ok {
			return d
		}
		var d float64
		for i := 0; i < 2; i++ {
			if e := n.E[i]; !e.IsZero() {
				d += e.W.Abs2() * dfs(e.N)
			}
		}
		down[n] = d
		return d
	}
	dfs(root.N)
	return down
}

// Upstream computes the upstream probability of every node reachable from
// root: the total probability mass of all half-paths from the root to the
// node (paper Section IV-B, computed by breadth-first, level-by-level
// traversal). The root node's upstream probability is the squared magnitude
// of the root edge weight.
func Upstream(m *dd.Manager, root dd.VEdge) map[*dd.VNode]float64 {
	up := make(map[*dd.VNode]float64)
	if root.IsZero() || root.N == nil {
		return up
	}
	up[root.N] = root.W.Abs2()
	frontier := []*dd.VNode{root.N}
	for len(frontier) > 0 {
		var next []*dd.VNode
		seen := make(map[*dd.VNode]bool)
		for _, n := range frontier {
			for i := 0; i < 2; i++ {
				e := n.E[i]
				if e.IsZero() || e.N == nil {
					continue
				}
				if _, known := up[e.N]; !known {
					up[e.N] = 0
				}
				up[e.N] += up[n] * e.W.Abs2()
				if !seen[e.N] {
					seen[e.N] = true
					next = append(next, e.N)
				}
			}
		}
		frontier = next
	}
	return up
}

// EdgeProbabilities returns, for every node reachable from root, the
// conditional probability of descending along the 0- and 1-successor when
// drawing a sample (paper Fig. 4c): the product of the edge's squared
// weight magnitude and the successor's downstream probability, renormalized
// at the node. Entries sum to 1 for every node with non-zero mass.
func EdgeProbabilities(m *dd.Manager, root dd.VEdge) map[*dd.VNode][2]float64 {
	down := Downstream(m, root)
	probs := make(map[*dd.VNode][2]float64, len(down))
	for n := range down {
		probs[n] = branchProbs(n, down)
	}
	return probs
}

func branchProbs(n *dd.VNode, down map[*dd.VNode]float64) [2]float64 {
	var d [2]float64
	for i := 0; i < 2; i++ {
		if e := n.E[i]; !e.IsZero() {
			d[i] = e.W.Abs2() * downOf(e.N, down)
		}
	}
	total := d[0] + d[1]
	if total <= 0 {
		return [2]float64{}
	}
	return [2]float64{d[0] / total, d[1] / total}
}

func downOf(n *dd.VNode, down map[*dd.VNode]float64) float64 {
	if n == nil {
		return 1
	}
	return down[n]
}

// TraversalProbabilities returns the absolute probability that a sample's
// root-to-terminal walk traverses each node: the product of the node's
// upstream and downstream probabilities (paper Section IV-B). Probabilities
// on one level sum to 1 (up to tolerance) for a normalized state.
func TraversalProbabilities(m *dd.Manager, root dd.VEdge) map[*dd.VNode]float64 {
	down := Downstream(m, root)
	up := Upstream(m, root)
	tp := make(map[*dd.VNode]float64, len(up))
	for n, u := range up {
		tp[n] = u * downOf(n, down)
	}
	return tp
}

// DDSampler draws measurement samples directly from a state decision
// diagram (paper Section IV). Construction performs the linear-time
// downstream precomputation; each Sample is a randomized O(n)
// root-to-terminal walk. When the Manager uses an L2 normalization scheme
// the precomputation is skipped entirely: the squared magnitudes of the
// outgoing edge weights already are the branch probabilities (Section
// IV-C).
type DDSampler struct {
	m       *dd.Manager
	root    dd.VEdge
	down    map[*dd.VNode]float64 // nil when the fast path is active
	fast    bool
	renorms uint64 // zero-edge fallbacks taken during walks (numerical slack)
}

// DDSamplerOption configures a DDSampler.
type DDSamplerOption func(*ddSamplerConfig)

type ddSamplerConfig struct {
	forceGeneric bool
	reg          *obs.Registry
	tracer       *obs.Tracer
}

// WithObservability attaches a metrics registry and/or tracer to sampler
// construction: the annotation passes (paper Section IV-B) are timed as
// annotate-downstream / annotate-upstream phase spans and accumulated into
// the phase_* counters. Either argument may be nil.
func WithObservability(reg *obs.Registry, tr *obs.Tracer) DDSamplerOption {
	return func(c *ddSamplerConfig) {
		c.reg = reg
		c.tracer = tr
	}
}

// ForceGeneric disables the L2 fast path even when the normalization scheme
// would allow it, forcing the downstream precomputation. Used by the
// ablation benchmarks.
func ForceGeneric() DDSamplerOption {
	return func(c *ddSamplerConfig) { c.forceGeneric = true }
}

// NewDDSampler prepares sampling from the given state DD.
func NewDDSampler(m *dd.Manager, root dd.VEdge, opts ...DDSamplerOption) (*DDSampler, error) {
	if root.IsZero() {
		return nil, fmt.Errorf("core: cannot sample from the zero vector")
	}
	var cfg ddSamplerConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &DDSampler{m: m, root: root}
	norm := m.Normalization()
	s.fast = !cfg.forceGeneric && (norm == dd.NormL2 || norm == dd.NormL2Phase)
	if !s.fast {
		stop := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseAnnotateDown)
		s.down = Downstream(m, root)
		stop()
		cfg.reg.Gauge("sample_annotated_nodes").Set(int64(len(s.down)))
	} else if cfg.tracer != nil {
		// Under L2 normalization the annotation pass is the whole point of
		// skipping: record that the fast path made it a no-op.
		cfg.tracer.Event(obs.PhaseAnnotateDown, "skipped-l2-fast-path", nil)
	}
	return s, nil
}

// Renorms returns how many zero-edge fallbacks the sampler has taken across
// all walks so far — the "rejection/renormalization" events of the
// randomized traversal, caused purely by floating-point slack at (near-)zero
// branch probabilities. A healthy state keeps this at or near zero.
func (s *DDSampler) Renorms() uint64 { return s.renorms }

// AnnotatedTraversal computes the traversal probabilities (upstream ×
// downstream, paper Section IV-B) with both annotation passes timed as
// phase spans. It is the instrumented counterpart of
// TraversalProbabilities, used by diagnostics surfaces.
func AnnotatedTraversal(m *dd.Manager, root dd.VEdge, reg *obs.Registry, tr *obs.Tracer) map[*dd.VNode]float64 {
	stopDown := obs.StartPhase(reg, tr, obs.PhaseAnnotateDown)
	down := Downstream(m, root)
	stopDown()
	stopUp := obs.StartPhase(reg, tr, obs.PhaseAnnotateUp)
	up := Upstream(m, root)
	stopUp()
	tp := make(map[*dd.VNode]float64, len(up))
	for n, u := range up {
		tp[n] = u * downOf(n, down)
	}
	return tp
}

// Qubits returns the sampled bitstring width.
func (s *DDSampler) Qubits() int { return s.m.Qubits() }

// FastPath reports whether the L2 normalization fast path is active.
func (s *DDSampler) FastPath() bool { return s.fast }

// Sample draws one basis-state index by a randomized root-to-terminal walk.
func (s *DDSampler) Sample(r *rng.RNG) uint64 {
	var idx uint64
	e := s.root
	for v := s.m.Qubits() - 1; v >= 0; v-- {
		n := e.N
		var p0 float64
		if s.fast {
			p0 = n.E[0].W.Abs2()
		} else {
			d0 := n.E[0].W.Abs2() * downOf(n.E[0].N, s.down)
			d1 := n.E[1].W.Abs2() * downOf(n.E[1].N, s.down)
			p0 = d0 / (d0 + d1)
		}
		if r.Float64() < p0 {
			e = n.E[0]
		} else {
			e = n.E[1]
			idx |= uint64(1) << uint(v)
		}
		if e.IsZero() {
			// Floating-point slack put us on a zero edge; the other
			// branch holds all the mass.
			s.renorms++
			if idx&(uint64(1)<<uint(v)) != 0 {
				idx &^= uint64(1) << uint(v)
				e = n.E[0]
			} else {
				idx |= uint64(1) << uint(v)
				e = n.E[1]
			}
		}
	}
	return idx
}
