package core

import (
	"math"
	"testing"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
	"weaksim/internal/stats"
)

func TestApproximateIdentityAtZeroThreshold(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	approx, fid, err := Approximate(m, state, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fid != 1 {
		t.Errorf("fidelity = %v, want 1", fid)
	}
	if approx != state {
		t.Error("zero threshold should return the state unchanged")
	}
}

func TestApproximatePrunesMinorBranch(t *testing.T) {
	// The running example's q2=1 branch carries 1/4 of the mass; a 0.3
	// threshold removes it, leaving the (renormalized) q2=0 branch with
	// fidelity 3/4.
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	approx, fid, err := Approximate(m, state, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fid-0.75) > 1e-9 {
		t.Errorf("fidelity = %v, want 3/4", fid)
	}
	if n2 := m.Norm2(approx); math.Abs(n2-1) > 1e-9 {
		t.Errorf("approximate state norm² = %v", n2)
	}
	// All mass now on |001⟩ and |011⟩, half each.
	for idx, want := range map[uint64]float64{1: 0.5, 3: 0.5, 4: 0, 7: 0} {
		if p := m.Amplitude(approx, idx).Abs2(); math.Abs(p-want) > 1e-9 {
			t.Errorf("p(%d) = %v, want %v", idx, p, want)
		}
	}
	if m.NodeCount(approx) >= m.NodeCount(state) {
		t.Errorf("approximation did not shrink the DD: %d vs %d",
			m.NodeCount(approx), m.NodeCount(state))
	}
}

func TestApproximateSamplingMatchesPrunedDistribution(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	approx, _, err := Approximate(m, state, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDDSampler(m, approx)
	if err != nil {
		t.Fatal(err)
	}
	shots := 20000
	counts := Counts(s, rng.New(8), shots)
	expected := []float64{0, 0.5, 0, 0.5, 0, 0, 0, 0}
	res, err := stats.ChiSquareGOF(counts, expected, shots)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 1e-6 {
		t.Errorf("approximate-state samples off: p=%v", res.PValue)
	}
}

func TestApproximateValidation(t *testing.T) {
	m := dd.New(2)
	state := m.ZeroState()
	if _, _, err := Approximate(m, dd.VEdge{}, 0.1); err == nil {
		t.Error("expected error for zero vector")
	}
	if _, _, err := Approximate(m, state, -0.1); err == nil {
		t.Error("expected error for negative threshold")
	}
	if _, _, err := Approximate(m, state, 1); err == nil {
		t.Error("expected error for threshold 1")
	}
}

func TestApproximateKeepsDominantMassOnRandomStates(t *testing.T) {
	// For a random state, pruning at threshold τ keeps fidelity ≥ 1 − k·τ
	// where k is the number of pruned edges; sanity-check the bound loosely
	// and the norm exactly.
	r := rng.New(77)
	n := 6
	vec := make([]cnum.Complex, 1<<uint(n))
	var norm float64
	for i := range vec {
		vec[i] = cnum.New(r.Float64()-0.5, r.Float64()-0.5)
		norm += vec[i].Abs2()
	}
	s := 1 / math.Sqrt(norm)
	for i := range vec {
		vec[i] = vec[i].Scale(s)
	}
	m := dd.New(n)
	state, _ := m.FromVector(vec)
	for _, tau := range []float64{1e-4, 1e-3, 1e-2} {
		approx, fid, err := Approximate(m, state, tau)
		if err != nil {
			t.Fatalf("tau=%g: %v", tau, err)
		}
		if n2 := m.Norm2(approx); math.Abs(n2-1) > 1e-9 {
			t.Errorf("tau=%g: norm² = %v", tau, n2)
		}
		if fid < 0.5 {
			t.Errorf("tau=%g: fidelity collapsed to %v", tau, fid)
		}
	}
}
