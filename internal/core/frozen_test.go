package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
	"weaksim/internal/stats"
)

// frozenTestState builds the paper's running-example state and a matching
// random 6-qubit state for parity checks.
func frozenRandomVector(n int, seed uint64) ([]cnum.Complex, []float64) {
	r := rng.New(seed)
	size := 1 << uint(n)
	vec := make([]cnum.Complex, size)
	var norm float64
	for i := range vec {
		vec[i] = cnum.New(r.Float64()-0.5, r.Float64()-0.5)
		norm += vec[i].Abs2()
	}
	s := 1 / math.Sqrt(norm)
	for i := range vec {
		vec[i] = vec[i].Scale(s)
	}
	return vec, ProbabilitiesFromAmplitudes(vec)
}

// TestFrozenMatchesLiveBitForBit pins the core acceptance property of the
// freeze refactor: for the same random sequence, walks over the frozen
// arrays select exactly the indices the live pointer walk selects — under
// every normalization scheme and under both branch-probability rules.
func TestFrozenMatchesLiveBitForBit(t *testing.T) {
	vec, _ := frozenRandomVector(6, 23)
	cases := []struct {
		name    string
		norm    dd.Norm
		generic bool
	}{
		{"left-generic", dd.NormLeft, false},
		{"l2-fast", dd.NormL2, false},
		{"l2phase-fast", dd.NormL2Phase, false},
		{"l2phase-forced-generic", dd.NormL2Phase, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := dd.New(6, dd.WithNormalization(tc.norm))
			state, err := m.FromVector(vec)
			if err != nil {
				t.Fatal(err)
			}
			var liveOpts []DDSamplerOption
			var frOpts []dd.FreezeOption
			if tc.generic {
				liveOpts = append(liveOpts, ForceGeneric())
				frOpts = append(frOpts, dd.FreezeGeneric())
			}
			live, err := NewDDSampler(m, state, liveOpts...)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := m.Freeze(state, frOpts...)
			if err != nil {
				t.Fatal(err)
			}
			frozen, err := NewFrozenSampler(snap)
			if err != nil {
				t.Fatal(err)
			}
			ra, rb := rng.New(99), rng.New(99)
			for i := 0; i < 20000; i++ {
				lv, fv := live.Sample(ra), frozen.Sample(rb)
				if lv != fv {
					t.Fatalf("shot %d: live %d, frozen %d — walks diverge", i, lv, fv)
				}
			}
			if live.Renorms() != frozen.Renorms() {
				t.Errorf("renorm counts diverge: live %d, frozen %d", live.Renorms(), frozen.Renorms())
			}
		})
	}
}

func TestNewFrozenSamplerRejectsBadInput(t *testing.T) {
	if _, err := NewFrozenSampler(nil); err == nil {
		t.Error("expected error for nil snapshot")
	}
}

// TestCountsParallelSingleWorkerIsSequential: workers=1 must consume exactly
// the sequence of rng.New(seed), reproducing sequential Counts bit for bit.
func TestCountsParallelSingleWorkerIsSequential(t *testing.T) {
	m := dd.New(3, dd.WithNormalization(dd.NormL2Phase))
	vec := []cnum.Complex{cnum.Zero,
		cnum.New(0, -math.Sqrt(3.0/8.0)), cnum.Zero, cnum.New(0, -math.Sqrt(3.0/8.0)),
		cnum.New(math.Sqrt(1.0/8.0), 0), cnum.Zero, cnum.Zero, cnum.New(math.Sqrt(1.0/8.0), 0)}
	state, err := m.FromVector(vec)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Freeze(state)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := NewFrozenSampler(snap)
	if err != nil {
		t.Fatal(err)
	}
	const seed, shots = 41, 5000
	want := Counts(frozen, rng.New(seed), shots)
	got, stats := CountsParallel(frozen, seed, shots, 1)
	if len(stats) != 1 || stats[0].Shots != shots {
		t.Fatalf("worker stats %+v, want one worker with %d shots", stats, shots)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel(1) outcome count %d, sequential %d", len(got), len(want))
	}
	for idx, n := range want {
		if got[idx] != n {
			t.Errorf("outcome %d: parallel(1) %d, sequential %d", idx, got[idx], n)
		}
	}
}

// TestCountsParallelDeterministicAndComplete: a parallel batch is a pure
// function of (seed, shots, workers) and always tallies exactly shots
// samples, including when shots does not divide evenly.
func TestCountsParallelDeterministicAndComplete(t *testing.T) {
	vec, _ := frozenRandomVector(5, 7)
	m := dd.New(5, dd.WithNormalization(dd.NormL2Phase))
	state, _ := m.FromVector(vec)
	snap, _ := m.Freeze(state)
	frozen, _ := NewFrozenSampler(snap)

	for _, workers := range []int{1, 3, 4, 8, 16} {
		const shots = 10007 // prime: uneven shard sizes
		a, statsA := CountsParallel(frozen, 5, shots, workers)
		b, _ := CountsParallel(frozen, 5, shots, workers)
		totalA, totalStats := 0, 0
		for _, n := range a {
			totalA += n
		}
		for _, ws := range statsA {
			totalStats += ws.Shots
		}
		if totalA != shots || totalStats != shots {
			t.Errorf("workers=%d: tallied %d shots (stats %d), want %d", workers, totalA, totalStats, shots)
		}
		if len(a) != len(b) {
			t.Fatalf("workers=%d: repeat run differs in outcome count", workers)
		}
		for idx, n := range a {
			if b[idx] != n {
				t.Errorf("workers=%d outcome %d: %d vs %d across identical runs", workers, idx, n, b[idx])
			}
		}
	}
}

// TestCountsParallelMatchesDistribution: chi-square goodness of fit of the
// merged parallel tallies against the exact Born distribution at several
// worker counts.
func TestCountsParallelMatchesDistribution(t *testing.T) {
	vec, probs := frozenRandomVector(6, 23)
	m := dd.New(6, dd.WithNormalization(dd.NormL2Phase))
	state, _ := m.FromVector(vec)
	snap, _ := m.Freeze(state)
	frozen, _ := NewFrozenSampler(snap)

	const shots = 60000
	for _, workers := range []int{1, 4, 8} {
		counts, _ := CountsParallel(frozen, 31+uint64(workers), shots, workers)
		res, err := stats.ChiSquareGOF(counts, probs, shots)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.PValue < 1e-6 {
			t.Errorf("workers=%d: chi-square rejects: stat=%v dof=%d p=%v",
				workers, res.Statistic, res.DoF, res.PValue)
		}
		for idx := range counts {
			if probs[idx] == 0 {
				t.Errorf("workers=%d: sampled impossible outcome %d", workers, idx)
			}
		}
	}
}

// TestCountsParallelContextCancellation: a cancelled batch returns the
// partial tallies each worker managed to draw plus the typed cause.
func TestCountsParallelContextCancellation(t *testing.T) {
	vec, _ := frozenRandomVector(4, 3)
	m := dd.New(4, dd.WithNormalization(dd.NormL2Phase))
	state, _ := m.FromVector(vec)
	snap, _ := m.Freeze(state)
	frozen, _ := NewFrozenSampler(snap)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counts, stats, err := CountsParallelContext(ctx, frozen, 9, 1<<20, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total >= 1<<20 {
		t.Errorf("cancelled batch completed all %d shots", total)
	}
	for _, ws := range stats {
		if ws.Shots > CtxCheckShots {
			t.Errorf("worker %d drew %d shots after pre-cancelled ctx (check window %d)",
				ws.Worker, ws.Shots, CtxCheckShots)
		}
	}
}

// TestFrozenSamplerParallelStress hammers one snapshot from 16 goroutines.
// Run under -race (see the CI race step) this pins the lock-free concurrent
// read guarantee of the frozen arrays.
func TestFrozenSamplerParallelStress(t *testing.T) {
	vec, probs := frozenRandomVector(6, 55)
	m := dd.New(6, dd.WithNormalization(dd.NormL2Phase))
	state, _ := m.FromVector(vec)
	snap, _ := m.Freeze(state)
	frozen, _ := NewFrozenSampler(snap)

	// The Manager may be reused (even garbage-collected) while sampling runs.
	m.GC(nil, nil)

	const goroutines = 16
	shots := 20000
	if testing.Short() {
		shots = 4000
	}
	var wg sync.WaitGroup
	totals := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.Stream(77, g)
			for i := 0; i < shots; i++ {
				idx := frozen.Sample(r)
				if probs[idx] == 0 {
					t.Errorf("goroutine %d: impossible outcome %d", g, idx)
					return
				}
				totals[g]++
			}
		}(g)
	}
	wg.Wait()
	for g, n := range totals {
		if n != shots {
			t.Errorf("goroutine %d drew %d shots, want %d", g, n, shots)
		}
	}
}

func TestCountsSizeHint(t *testing.T) {
	cases := []struct{ shots, qubits, want int }{
		{1000, 3, 8},     // few basis states bound the hint
		{5, 30, 5},       // few shots bound the hint
		{1 << 20, 4, 16}, // 2^4 outcomes max
		{100, 63, 100},   // huge register: shots bound
		{-3, 5, 0},       // degenerate
	}
	for _, tc := range cases {
		if got := CountsSizeHint(tc.shots, tc.qubits); got != tc.want {
			t.Errorf("CountsSizeHint(%d, %d) = %d, want %d", tc.shots, tc.qubits, got, tc.want)
		}
	}
}

// TestMergeCountsNoAllocs pins the allocation budget of the merge step:
// folding partial tallies into a map that already holds every key performs
// zero heap allocations.
func TestMergeCountsNoAllocs(t *testing.T) {
	parts := make([]map[uint64]int, 8)
	dst := make(map[uint64]int, 64)
	for k := range parts {
		parts[k] = make(map[uint64]int, 64)
		for i := uint64(0); i < 64; i++ {
			parts[k][i] = int(i) + k
			dst[i] = 0
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		MergeCounts(dst, parts...)
	})
	if allocs != 0 {
		t.Errorf("MergeCounts allocated %v objects per run, want 0", allocs)
	}
}

// TestMergeCountsCommutes: merging in any order yields the same tallies.
func TestMergeCountsCommutes(t *testing.T) {
	a := map[uint64]int{1: 2, 3: 4}
	b := map[uint64]int{1: 1, 5: 9}
	x := map[uint64]int{}
	y := map[uint64]int{}
	MergeCounts(x, a, b)
	MergeCounts(y, b, a)
	if len(x) != len(y) {
		t.Fatalf("order-dependent merge: %v vs %v", x, y)
	}
	for k, v := range x {
		if y[k] != v {
			t.Errorf("key %d: %d vs %d", k, v, y[k])
		}
	}
	if x[1] != 3 || x[3] != 4 || x[5] != 9 {
		t.Errorf("merged tallies wrong: %v", x)
	}
}
