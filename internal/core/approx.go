package core

import (
	"fmt"
	"math"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
)

// Approximate prunes decision-diagram branches whose total traversal
// probability falls below threshold and renormalizes the result. This
// trades fidelity for a smaller diagram — the "weak simulation with some
// error" regime the paper mentions as acceptable (Section III): samples
// from the approximate state follow a distribution whose overlap with the
// exact one equals the returned fidelity.
//
// The decision for each edge uses the upstream probability of its source
// node and the downstream probability of its target (paper Section IV-B):
// the edge's aggregate contribution to the measurement distribution. The
// returned fidelity is |⟨approx|exact⟩|².
func Approximate(m *dd.Manager, state dd.VEdge, threshold float64) (dd.VEdge, float64, error) {
	if state.IsZero() {
		return dd.VEdge{}, 0, fmt.Errorf("core: cannot approximate the zero vector")
	}
	if threshold < 0 || threshold >= 1 {
		return dd.VEdge{}, 0, fmt.Errorf("core: threshold must lie in [0, 1), got %g", threshold)
	}
	if threshold == 0 {
		return state, 1, nil
	}
	down := Downstream(m, state)
	up := Upstream(m, state)

	memo := make(map[*dd.VNode]dd.VEdge)
	var rebuild func(n *dd.VNode, v int) dd.VEdge
	rebuild = func(n *dd.VNode, v int) dd.VEdge {
		if n == nil {
			return dd.VEdge{W: cnum.One}
		}
		if e, ok := memo[n]; ok {
			return e
		}
		var children [2]dd.VEdge
		for i := 0; i < 2; i++ {
			edge := n.E[i]
			if edge.IsZero() {
				continue
			}
			contribution := up[n] * edge.W.Abs2() * downOf(edge.N, down)
			if contribution < threshold {
				continue // prune
			}
			sub := rebuild(edge.N, v-1)
			if sub.IsZero() {
				continue
			}
			children[i] = dd.VEdge{W: m.Lookup(edge.W.Mul(sub.W)), N: sub.N}
		}
		e := m.MakeVNode(v, children[0], children[1])
		memo[n] = e
		return e
	}
	rebuilt := rebuild(state.N, m.Qubits()-1)
	if rebuilt.IsZero() {
		return dd.VEdge{}, 0, fmt.Errorf("core: threshold %g pruned the entire state", threshold)
	}
	approx := dd.VEdge{W: m.Lookup(state.W.Mul(rebuilt.W)), N: rebuilt.N}

	// Renormalize.
	norm2 := m.Norm2(approx)
	if norm2 <= 0 {
		return dd.VEdge{}, 0, fmt.Errorf("core: approximation lost all probability mass")
	}
	approx.W = m.Lookup(approx.W.Scale(1 / math.Sqrt(norm2)))
	fidelity := m.Fidelity(approx, state)
	return approx, fidelity, nil
}
