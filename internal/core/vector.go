package core

import (
	"fmt"
	"sort"

	"weaksim/internal/cnum"
	"weaksim/internal/rng"
)

// ProbabilitiesFromAmplitudes squares an amplitude vector into the Born
// measurement distribution p_i = |α_i|² (paper Fig. 3a).
func ProbabilitiesFromAmplitudes(amps []cnum.Complex) []float64 {
	p := make([]float64, len(amps))
	for i, a := range amps {
		p[i] = a.Abs2()
	}
	return p
}

func qubitsForLen(n int) (int, error) {
	q := 0
	for l := n; l > 1; l >>= 1 {
		if l&1 != 0 {
			return 0, fmt.Errorf("core: distribution length %d is not a power of two", n)
		}
		q++
	}
	if n < 2 {
		return 0, fmt.Errorf("core: distribution needs at least two entries")
	}
	return q, nil
}

func validateDistribution(probs []float64) (float64, error) {
	var total float64
	for i, p := range probs {
		if p < 0 {
			return 0, fmt.Errorf("core: negative probability %g at index %d", p, i)
		}
		total += p
	}
	if total <= 0 {
		return 0, fmt.Errorf("core: distribution sums to %g", total)
	}
	return total, nil
}

// PrefixSampler performs biased random selection via binary search on a
// prefix-sum array (paper Section III, Fig. 3). Precomputation is O(2^n);
// each sample costs O(log 2^n) = O(n).
type PrefixSampler struct {
	prefix []float64
	qubits int
}

// NewPrefixSampler precomputes the prefix sums of the distribution. The
// distribution is normalized internally, so unnormalized weight vectors are
// accepted.
func NewPrefixSampler(probs []float64) (*PrefixSampler, error) {
	q, err := qubitsForLen(len(probs))
	if err != nil {
		return nil, err
	}
	total, err := validateDistribution(probs)
	if err != nil {
		return nil, err
	}
	prefix := make([]float64, len(probs))
	var run float64
	for i, p := range probs {
		run += p / total
		prefix[i] = run
	}
	// Guard the top against rounding so every p̂ in [0,1) lands in range.
	prefix[len(prefix)-1] = 1
	return &PrefixSampler{prefix: prefix, qubits: q}, nil
}

// Qubits returns the sampled bitstring width.
func (s *PrefixSampler) Qubits() int { return s.qubits }

// Prefix exposes the prefix-sum array (read-only) for tests reproducing
// the paper's Fig. 3.
func (s *PrefixSampler) Prefix() []float64 { return s.prefix }

// Sample draws p̂ uniformly from [0, 1) and returns the first index whose
// prefix sum exceeds p̂ (paper Example 8).
func (s *PrefixSampler) Sample(r *rng.RNG) uint64 {
	return s.Select(r.Float64())
}

// Select performs the deterministic part of sampling for a given p̂,
// exposed so tests can reproduce the paper's worked example (p̂ = 1/2 →
// |011⟩).
func (s *PrefixSampler) Select(phat float64) uint64 {
	idx := sort.Search(len(s.prefix), func(i int) bool { return s.prefix[i] > phat })
	if idx >= len(s.prefix) {
		idx = len(s.prefix) - 1
	}
	return uint64(idx)
}

// LinearSampler is the no-precomputation baseline: each sample walks the
// probability array until the cumulative sum exceeds p̂, taking 2^{n-1}
// steps on average (paper Section III). Unlike binary search it streams,
// which is why the paper notes it also works on out-of-memory vectors.
type LinearSampler struct {
	probs  []float64
	total  float64
	qubits int
}

// NewLinearSampler wraps a probability array without precomputation.
func NewLinearSampler(probs []float64) (*LinearSampler, error) {
	q, err := qubitsForLen(len(probs))
	if err != nil {
		return nil, err
	}
	total, err := validateDistribution(probs)
	if err != nil {
		return nil, err
	}
	return &LinearSampler{probs: probs, total: total, qubits: q}, nil
}

// Qubits returns the sampled bitstring width.
func (s *LinearSampler) Qubits() int { return s.qubits }

// Sample draws one index by linear traversal.
func (s *LinearSampler) Sample(r *rng.RNG) uint64 {
	phat := r.Float64() * s.total
	var run float64
	for i, p := range s.probs {
		run += p
		if run > phat {
			return uint64(i)
		}
	}
	// Rounding pushed the total below p̂; return the last non-zero entry.
	for i := len(s.probs) - 1; i >= 0; i-- {
		if s.probs[i] > 0 {
			return uint64(i)
		}
	}
	return 0
}

// AliasSampler implements Walker's alias method: O(2^n) precomputation and
// O(1) per sample. The paper does not evaluate it; it is included as an
// ablation point for the vector-based family.
type AliasSampler struct {
	prob   []float64
	alias  []int
	qubits int
}

// NewAliasSampler builds the alias tables for the distribution.
func NewAliasSampler(probs []float64) (*AliasSampler, error) {
	q, err := qubitsForLen(len(probs))
	if err != nil {
		return nil, err
	}
	total, err := validateDistribution(probs)
	if err != nil {
		return nil, err
	}
	n := len(probs)
	scaled := make([]float64, n)
	for i, p := range probs {
		scaled[i] = p / total * float64(n)
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = scaled[l] - (1 - scaled[s])
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return &AliasSampler{prob: prob, alias: alias, qubits: q}, nil
}

// Qubits returns the sampled bitstring width.
func (s *AliasSampler) Qubits() int { return s.qubits }

// Sample draws one index in constant time.
func (s *AliasSampler) Sample(r *rng.RNG) uint64 {
	i := r.IntN(len(s.prob))
	if r.Float64() < s.prob[i] {
		return uint64(i)
	}
	return uint64(s.alias[i])
}
