package core

import (
	"fmt"
	"math"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
)

// MeasureAll performs a destructive measurement of all qubits: it samples
// one basis state and returns it together with the collapsed post-
// measurement state (a basis-state DD). Physical quantum computers only
// offer this destructive operation; repeated non-destructive sampling is
// the luxury of simulation (paper Section IV-B).
func MeasureAll(m *dd.Manager, state dd.VEdge, r *rng.RNG) (uint64, dd.VEdge, error) {
	s, err := NewDDSampler(m, state)
	if err != nil {
		return 0, dd.VEdge{}, err
	}
	idx := s.Sample(r)
	return idx, m.BasisState(idx), nil
}

// QubitProbability returns the probability that measuring the given qubit
// yields 1, computed from the upstream/downstream node probabilities in
// time linear in the DD size.
func QubitProbability(m *dd.Manager, state dd.VEdge, qubit int) (float64, error) {
	if qubit < 0 || qubit >= m.Qubits() {
		return 0, fmt.Errorf("core: qubit %d out of range", qubit)
	}
	norm := m.Norm2(state)
	if norm <= 0 {
		return 0, fmt.Errorf("core: cannot measure the zero vector")
	}
	down := Downstream(m, state)
	up := Upstream(m, state)
	var p1 float64
	for n, u := range up {
		if n.V != qubit {
			continue
		}
		if e := n.E[1]; !e.IsZero() {
			p1 += u * e.W.Abs2() * downOf(e.N, down)
		}
	}
	return p1 / norm, nil
}

// MeasureQubit measures a single qubit, collapses the state accordingly,
// and renormalizes. It returns the observed bit and the post-measurement
// state DD.
func MeasureQubit(m *dd.Manager, state dd.VEdge, qubit int, r *rng.RNG) (int, dd.VEdge, error) {
	p1, err := QubitProbability(m, state, qubit)
	if err != nil {
		return 0, dd.VEdge{}, err
	}
	bit := 0
	p := 1 - p1
	if r.Float64() < p1 {
		bit = 1
		p = p1
	}
	collapsed, err := Project(m, state, qubit, bit)
	if err != nil {
		return 0, dd.VEdge{}, err
	}
	// Renormalize by the square root of the observed probability.
	collapsed.W = m.Lookup(collapsed.W.Scale(1 / math.Sqrt(p*m.Norm2(state))))
	return bit, collapsed, nil
}

// Project zeroes the branch of the given qubit that disagrees with bit,
// without renormalizing. The result's squared norm equals the probability
// of the projected outcome (for a normalized input state).
func Project(m *dd.Manager, state dd.VEdge, qubit, bit int) (dd.VEdge, error) {
	if qubit < 0 || qubit >= m.Qubits() {
		return dd.VEdge{}, fmt.Errorf("core: qubit %d out of range", qubit)
	}
	if bit != 0 && bit != 1 {
		return dd.VEdge{}, fmt.Errorf("core: bit must be 0 or 1")
	}
	memo := make(map[*dd.VNode]dd.VEdge)
	var rec func(e dd.VEdge, v int) dd.VEdge
	rec = func(e dd.VEdge, v int) dd.VEdge {
		if e.IsZero() {
			return dd.VEdge{}
		}
		if v < qubit {
			return e
		}
		if sub, ok := memo[e.N]; ok {
			return scaleEdge(m, sub, e.W)
		}
		var out dd.VEdge
		if v == qubit {
			kept := e.N.E[bit]
			var children [2]dd.VEdge
			children[bit] = kept
			out = m.MakeVNode(v, children[0], children[1])
		} else {
			e0 := rec(e.N.E[0], v-1)
			e1 := rec(e.N.E[1], v-1)
			out = m.MakeVNode(v, e0, e1)
		}
		memo[e.N] = out
		return scaleEdge(m, out, e.W)
	}
	return rec(state, m.Qubits()-1), nil
}

func scaleEdge(m *dd.Manager, e dd.VEdge, w cnum.Complex) dd.VEdge {
	if e.IsZero() {
		return dd.VEdge{}
	}
	return dd.VEdge{W: m.Lookup(e.W.Mul(w)), N: e.N}
}
