package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
)

func TestTopOutcomesRunningExample(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	top, err := TopOutcomes(m, state, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(top))
	}
	// 3/8 at indices 1 and 3, then 1/8 at 4 and 7.
	if top[0].Index != 1 || top[1].Index != 3 {
		t.Errorf("top-2 = %d, %d; want 1, 3", top[0].Index, top[1].Index)
	}
	if !approx(top[0].Probability, 0.375, 1e-9) || !approx(top[2].Probability, 0.125, 1e-9) {
		t.Errorf("probabilities = %v", top)
	}
}

func TestTopOutcomesExhaustsSupport(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	// Only 4 outcomes have non-zero probability; asking for 10 returns 4.
	top, err := TopOutcomes(m, state, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 4 {
		t.Errorf("got %d outcomes, want the 4 in the support", len(top))
	}
	var sum float64
	for _, o := range top {
		sum += o.Probability
	}
	if !approx(sum, 1, 1e-9) {
		t.Errorf("support probabilities sum to %v", sum)
	}
}

func TestTopOutcomesMatchesDenseEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		n := 5
		size := 1 << uint(n)
		vec := make([]cnum.Complex, size)
		var norm float64
		for i := range vec {
			vec[i] = cnum.New(r.Float64()-0.5, r.Float64()-0.5)
			norm += vec[i].Abs2()
		}
		s := 1 / math.Sqrt(norm)
		for i := range vec {
			vec[i] = vec[i].Scale(s)
		}
		m := dd.New(n)
		state, _ := m.FromVector(vec)
		k := 1 + int(kRaw%10)
		top, err := TopOutcomes(m, state, k)
		if err != nil || len(top) != k {
			return false
		}
		// Dense reference.
		type pair struct {
			idx uint64
			p   float64
		}
		ref := make([]pair, size)
		for i, a := range vec {
			ref[i] = pair{uint64(i), a.Abs2()}
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].p > ref[j].p })
		for i := 0; i < k; i++ {
			// Compare probabilities (indices may tie).
			if math.Abs(top[i].Probability-ref[i].p) > 1e-9 {
				t.Logf("seed %d k %d: rank %d: %v vs dense %v", seed, k, i, top[i], ref[i])
				return false
			}
		}
		// Descending order.
		for i := 1; i < k; i++ {
			if top[i].Probability > top[i-1].Probability+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTopOutcomesWorksUnderEveryNorm(t *testing.T) {
	for _, norm := range []dd.Norm{dd.NormLeft, dd.NormL2, dd.NormL2Phase} {
		m := dd.New(3, dd.WithNormalization(norm))
		state, _ := m.FromVector(runningExampleVector())
		top, err := TopOutcomes(m, state, 1)
		if err != nil || len(top) != 1 {
			t.Fatalf("norm=%v: %v %v", norm, top, err)
		}
		if !approx(top[0].Probability, 0.375, 1e-9) {
			t.Errorf("norm=%v: top probability %v", norm, top[0].Probability)
		}
	}
}

func TestTopOutcomesValidation(t *testing.T) {
	m := dd.New(2)
	if _, err := TopOutcomes(m, dd.VEdge{}, 3); err == nil {
		t.Error("expected error for zero vector")
	}
	if _, err := TopOutcomes(m, m.ZeroState(), 0); err == nil {
		t.Error("expected error for k=0")
	}
}
