// Package core implements weak simulation — drawing measurement samples
// from a strongly-simulated quantum state — which is the contribution of
// the reproduced paper (Hillmich, Markov, Wille, DAC 2020).
//
// Two families of samplers are provided:
//
//   - Vector-based (paper Section III): the measurement distribution is an
//     explicit array of 2^n probabilities. PrefixSampler precomputes prefix
//     sums and draws each sample with a binary search in O(n) time;
//     LinearSampler scans the array per sample (the paper's slow baseline);
//     AliasSampler is an O(1)-per-sample ablation using Walker's alias
//     method.
//
//   - DD-based (paper Section IV): the state stays in decision-diagram
//     form. DDSampler precomputes per-node branch probabilities (the
//     downstream pass; the upstream pass is exposed for analysis) and draws
//     each sample with a randomized root-to-terminal walk in O(n) time.
//     Under the paper's proposed L2 normalization scheme the branch
//     probabilities are directly the squared magnitudes of the outgoing
//     edge weights, and no downstream pass is needed at all.
//
// Both families produce exact (error-free) weak simulation: the sampled
// distribution equals the state's Born distribution up to floating-point
// tolerance, so outputs are statistically indistinguishable from an ideal
// quantum computer.
package core

import (
	"context"
	"fmt"

	"weaksim/internal/rng"
)

// Sampler draws basis-state indices distributed according to a quantum
// state's measurement distribution. Sampling is a read-only operation and
// may be repeated arbitrarily (unlike physical measurement, which destroys
// the state — see paper Section IV-B).
type Sampler interface {
	// Sample draws one basis-state index using the supplied random source.
	Sample(r *rng.RNG) uint64
	// Qubits returns the width of sampled bitstrings.
	Qubits() int
}

// Counts draws shots samples and tallies them by basis-state index. The
// result map is preallocated from the shot count and register width, so the
// tally loop never rehashes.
func Counts(s Sampler, r *rng.RNG, shots int) map[uint64]int {
	counts := make(map[uint64]int, CountsSizeHint(shots, s.Qubits()))
	for i := 0; i < shots; i++ {
		counts[s.Sample(r)]++
	}
	return counts
}

// CtxCheckShots is the amortization interval for context checks in the
// batch sampling loops: the context is consulted once every CtxCheckShots
// samples, so cancellation latency is bounded by CtxCheckShots shots while
// the per-sample hot path stays free of synchronization.
const CtxCheckShots = 512

// CountsContext is Counts with cooperative cancellation, checked every
// CtxCheckShots shots. On cancellation it returns the partial tallies
// alongside the context's error, so a timed-out batch still reports the
// samples it managed to draw.
func CountsContext(ctx context.Context, s Sampler, r *rng.RNG, shots int) (map[uint64]int, error) {
	counts := make(map[uint64]int, CountsSizeHint(shots, s.Qubits()))
	for i := 0; i < shots; i++ {
		if i%CtxCheckShots == 0 && ctx.Err() != nil {
			return counts, fmt.Errorf("core: sampling interrupted after %d/%d shots: %w",
				i, shots, context.Cause(ctx))
		}
		counts[s.Sample(r)]++
	}
	return counts, nil
}

// FormatBits renders a basis-state index as the paper renders measurement
// outcomes: qubit n-1 first (most significant), e.g. FormatBits(3, 3) ==
// "011".
func FormatBits(idx uint64, n int) string {
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		if idx>>uint(n-1-i)&1 == 1 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// ParseBits is the inverse of FormatBits.
func ParseBits(s string) (uint64, error) {
	var idx uint64
	if len(s) > 64 {
		return 0, fmt.Errorf("core: bitstring longer than 64 bits")
	}
	for _, c := range s {
		idx <<= 1
		switch c {
		case '1':
			idx |= 1
		case '0':
		default:
			return 0, fmt.Errorf("core: invalid bit %q", c)
		}
	}
	return idx, nil
}
