package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
	"weaksim/internal/rng"
)

// FrozenSampler draws measurement samples from an immutable dd.Snapshot
// (paper Section IV over frozen arrays). Where DDSampler chases node
// pointers through the live diagram and — under conventional normalization —
// consults a hash map of downstream masses on every branch decision, the
// frozen walk reads a flat []dd.SnapNode by int32 index and compares the
// uniform draw against the precomputed cumulative threshold P0. The walk is
// therefore a handful of cache-friendly array loads per level and performs
// no map lookups, no interface dispatch, and no pointer chasing.
//
// A FrozenSampler is safe for concurrent use by any number of goroutines,
// each with its own *rng.RNG: the snapshot is immutable, and the only
// mutable field (the renorm counter) is atomic. This is what the parallel
// shot generator relies on — one snapshot, many lock-free walkers.
//
// The walk is bit-for-bit identical to DDSampler.Sample for the same random
// sequence: the thresholds are computed with the same floating-point
// expressions at freeze time (fast path: |w0|² verbatim; generic path:
// d0/(d0+d1) in the same operation order), exactly one uniform is consumed
// per level, and the zero-edge fallback flips the branch without drawing
// again.
type FrozenSampler struct {
	nodes   []dd.SnapNode
	root    int32
	n       int
	snap    *dd.Snapshot
	renorms atomic.Uint64
}

// NewFrozenSampler prepares lock-free sampling from a frozen state.
func NewFrozenSampler(snap *dd.Snapshot) (*FrozenSampler, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Qubits() > 0 && (snap.Len() == 0 || snap.Root() < 0) {
		return nil, fmt.Errorf("core: snapshot has no root node for %d qubits", snap.Qubits())
	}
	return &FrozenSampler{
		nodes: snap.Nodes(),
		root:  snap.Root(),
		n:     snap.Qubits(),
		snap:  snap,
	}, nil
}

// Qubits returns the sampled bitstring width.
func (s *FrozenSampler) Qubits() int { return s.n }

// Snapshot returns the frozen state the sampler walks.
func (s *FrozenSampler) Snapshot() *dd.Snapshot { return s.snap }

// Renorms returns how many zero-edge fallbacks walks have taken so far,
// summed across all goroutines. See DDSampler.Renorms.
func (s *FrozenSampler) Renorms() uint64 { return s.renorms.Load() }

// Sample draws one basis-state index by a randomized walk over the frozen
// arrays. Safe for concurrent use; r must be goroutine-local.
func (s *FrozenSampler) Sample(r *rng.RNG) uint64 {
	var idx uint64
	nodes := s.nodes
	cur := s.root
	for v := s.n - 1; v >= 0; v-- {
		nd := &nodes[cur]
		var next int32
		if r.Float64() < nd.P0 {
			next = nd.Kid[0]
		} else {
			next = nd.Kid[1]
			idx |= uint64(1) << uint(v)
		}
		if next == dd.SnapZero {
			// Floating-point slack put us on a zero edge; the other branch
			// holds all the mass. No extra uniform is consumed.
			s.renorms.Add(1)
			if idx&(uint64(1)<<uint(v)) != 0 {
				idx &^= uint64(1) << uint(v)
				next = nd.Kid[0]
			} else {
				idx |= uint64(1) << uint(v)
				next = nd.Kid[1]
			}
		}
		cur = next
	}
	return idx
}

// CountsSizeHint bounds the number of distinct outcomes a tally of shots
// samples over n qubits can hold: no more than the shot count, and no more
// than the 2^n basis states. Used to preallocate result maps so the tally
// loop never rehashes.
func CountsSizeHint(shots, qubits int) int {
	if shots < 0 {
		return 0
	}
	if qubits < 63 {
		if states := 1 << uint(qubits); states < shots {
			return states
		}
	}
	return shots
}

// MergeCounts folds the partial tallies in parts into dst. It allocates no
// intermediate structures: each partial entry is a single map-index add on
// dst. Merging is commutative, so the result is independent of part order;
// callers that need deterministic map growth merge in worker order.
func MergeCounts(dst map[uint64]int, parts ...map[uint64]int) {
	for _, part := range parts {
		for idx, c := range part {
			dst[idx] += c
		}
	}
}

// WorkerStat reports one worker's share of a parallel sampling batch, for
// telemetry surfaces.
type WorkerStat struct {
	// Worker is the stream index k (the same k passed to rng.Stream).
	Worker int
	// Shots is how many samples the worker drew (including partial batches
	// cut short by cancellation).
	Shots int
	// Elapsed is the worker's wall-clock sampling time.
	Elapsed time.Duration
}

// CountsParallel shards shots samples across workers goroutines walking the
// same sampler concurrently and returns the merged tallies. Worker k draws
// from the independent stream rng.Stream(seed, k), so the batch is a pure
// function of (seed, shots, workers): re-running reproduces it exactly, and
// with workers == 1 the batch consumes precisely the sequence of
// rng.New(seed) — the single-worker run is bit-for-bit the sequential one.
//
// The sampler must be safe for concurrent use (FrozenSampler is; the
// vector-based samplers are too, being read-only after construction; the
// live DDSampler's generic path is, but shares a renorm counter and must not
// race — use a FrozenSampler for parallel batches).
func CountsParallel(s Sampler, seed uint64, shots, workers int) (map[uint64]int, []WorkerStat) {
	counts, stats, _ := CountsParallelContext(context.Background(), s, seed, shots, workers)
	return counts, stats
}

// CountsParallelContext is CountsParallel with cooperative cancellation,
// checked every CtxCheckShots shots in each worker. On cancellation the
// partial tallies drawn so far are merged and returned alongside the
// context's error.
func CountsParallelContext(ctx context.Context, s Sampler, seed uint64, shots, workers int) (map[uint64]int, []WorkerStat, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > shots {
		workers = shots
	}
	if workers < 1 { // shots <= 0
		return map[uint64]int{}, nil, ctx.Err()
	}

	qubits := s.Qubits()
	base, rem := shots/workers, shots%workers

	parts := make([]map[uint64]int, workers)
	stats := make([]WorkerStat, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		quota := base
		if k < rem {
			quota++
		}
		wg.Add(1)
		go func(k, quota int) {
			defer wg.Done()
			r := rng.Stream(seed, k)
			local := make(map[uint64]int, CountsSizeHint(quota, qubits))
			start := time.Now()
			drawn := 0
			// An injected panic (chaos testing) must not take down the whole
			// process from a sampling goroutine — no other goroutine could
			// recover it. Convert it to this worker's error; genuine panics
			// still propagate.
			defer func() {
				if rec := recover(); rec != nil {
					p, ok := rec.(*fault.InjectedPanic)
					if !ok {
						panic(rec)
					}
					errs[k] = fmt.Errorf("core: worker %d: %w after %d/%d shots", k, p, drawn, quota)
					parts[k] = local
					stats[k] = WorkerStat{Worker: k, Shots: drawn, Elapsed: time.Since(start)}
				}
			}()
			for ; drawn < quota; drawn++ {
				// Cancellation and the chaos hook share the stride: both cost
				// nothing on CtxCheckShots-1 of every CtxCheckShots shots.
				if drawn%CtxCheckShots == 0 {
					if ctx.Err() != nil {
						errs[k] = fmt.Errorf("core: worker %d interrupted after %d/%d shots: %w",
							k, drawn, quota, context.Cause(ctx))
						break
					}
					if err := fault.Hit(fault.SamplerWalk); err != nil {
						errs[k] = fmt.Errorf("core: worker %d after %d/%d shots: %w", k, drawn, quota, err)
						break
					}
				}
				local[s.Sample(r)]++
			}
			parts[k] = local
			stats[k] = WorkerStat{Worker: k, Shots: drawn, Elapsed: time.Since(start)}
		}(k, quota)
	}
	wg.Wait()

	// Request-scoped trace attribution: when the context carries a request
	// trace, annotate it with one walk event per worker (shots drawn, wall
	// time) so a debug=1 breakdown shows how the shot batch sharded. Events
	// carry no duration, so they never distort the phase-sum accounting.
	if rt := obs.TraceFromContext(ctx); rt != nil {
		for _, st := range stats {
			rt.Event(obs.PhaseSample, map[string]any{
				"walk_worker": st.Worker,
				"shots":       st.Shots,
				"elapsed_ns":  st.Elapsed.Nanoseconds(),
			})
		}
	}

	merged := make(map[uint64]int, CountsSizeHint(shots, qubits))
	MergeCounts(merged, parts...)
	for _, err := range errs {
		if err != nil {
			return merged, stats, err
		}
	}
	return merged, stats, nil
}
