package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"weaksim/internal/rng"
	"weaksim/internal/stats"
)

func TestProbabilityStreamRoundtrip(t *testing.T) {
	probs := runningExampleProbs()
	var buf bytes.Buffer
	if err := WriteProbabilityStream(&buf, probs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8*len(probs) {
		t.Errorf("stream length %d, want %d", buf.Len(), 8*len(probs))
	}
	back, err := ReadProbabilityStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(probs) {
		t.Fatalf("read %d entries, want %d", len(back), len(probs))
	}
	for i := range probs {
		if back[i] != probs[i] {
			t.Errorf("entry %d: %v != %v", i, back[i], probs[i])
		}
	}
}

func TestStreamCountsMatchesDistribution(t *testing.T) {
	probs := runningExampleProbs()
	var buf bytes.Buffer
	if err := WriteProbabilityStream(&buf, probs); err != nil {
		t.Fatal(err)
	}
	shots := 50000
	counts, err := StreamCounts(&buf, shots, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for idx, c := range counts {
		total += c
		if probs[idx] == 0 {
			t.Errorf("sampled impossible outcome %d", idx)
		}
	}
	if total != shots {
		t.Fatalf("tallied %d samples, want %d", total, shots)
	}
	res, err := stats.ChiSquareGOF(counts, probs, shots)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 1e-6 {
		t.Errorf("stream samples distinguishable: p=%v", res.PValue)
	}
}

func TestStreamCountsFromFile(t *testing.T) {
	// The out-of-core path the paper describes: probabilities in a file,
	// sampled with O(shots) memory.
	probs := []float64{0.1, 0, 0.4, 0.5}
	path := filepath.Join(t.TempDir(), "probs.f64")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteProbabilityStream(f, probs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts, err := StreamCounts(f, 10000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 0 {
		t.Error("sampled zero-probability index 1")
	}
	if counts[3] < 4000 {
		t.Errorf("index 3 sampled %d times, expected ≈5000", counts[3])
	}
}

func TestStreamCountsRoundingSliver(t *testing.T) {
	// A distribution summing to slightly below 1 must assign the sliver to
	// the last non-zero entry.
	probs := []float64{0.5, 0.5 - 1e-12, 0}
	var buf bytes.Buffer
	if err := WriteProbabilityStream(&buf, probs); err != nil {
		t.Fatal(err)
	}
	counts, err := StreamCounts(&buf, 1000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if counts[2] != 0 {
		t.Error("sliver assigned to zero-probability tail entry")
	}
	if counts[0]+counts[1] != 1000 {
		t.Errorf("lost samples: %v", counts)
	}
}

func TestStreamCountsErrors(t *testing.T) {
	var empty bytes.Buffer
	if _, err := StreamCounts(&empty, 10, rng.New(1)); err == nil {
		t.Error("expected error for empty stream")
	}
	var buf bytes.Buffer
	WriteProbabilityStream(&buf, []float64{-0.5, 1.5})
	if _, err := StreamCounts(&buf, 10, rng.New(1)); err == nil {
		t.Error("expected error for negative probability")
	}
	var zero bytes.Buffer
	WriteProbabilityStream(&zero, []float64{0, 0})
	if _, err := StreamCounts(&zero, 10, rng.New(1)); err == nil {
		t.Error("expected error for zero-mass stream")
	}
	var ok bytes.Buffer
	WriteProbabilityStream(&ok, []float64{1})
	if _, err := StreamCounts(&ok, 0, rng.New(1)); err == nil {
		t.Error("expected error for zero shots")
	}
}
