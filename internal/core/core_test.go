package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
	"weaksim/internal/rng"
	"weaksim/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// runningExampleVector is the paper's Fig. 2 state.
func runningExampleVector() []cnum.Complex {
	a := cnum.New(0, -math.Sqrt(3.0/8.0))
	b := cnum.New(math.Sqrt(1.0/8.0), 0)
	return []cnum.Complex{cnum.Zero, a, cnum.Zero, a, b, cnum.Zero, cnum.Zero, b}
}

func runningExampleProbs() []float64 {
	return []float64{0, 3.0 / 8, 0, 3.0 / 8, 1.0 / 8, 0, 0, 1.0 / 8}
}

func TestFormatParseBits(t *testing.T) {
	if got := FormatBits(3, 3); got != "011" {
		t.Errorf("FormatBits(3,3) = %q, want 011", got)
	}
	if got := FormatBits(4, 3); got != "100" {
		t.Errorf("FormatBits(4,3) = %q", got)
	}
	idx, err := ParseBits("011")
	if err != nil || idx != 3 {
		t.Errorf("ParseBits(011) = %d, %v", idx, err)
	}
	if _, err := ParseBits("01x"); err == nil {
		t.Error("expected error for invalid bit")
	}
	for _, v := range []uint64{0, 1, 5, 127} {
		got, err := ParseBits(FormatBits(v, 7))
		if err != nil || got != v {
			t.Errorf("roundtrip %d: got %d, %v", v, got, err)
		}
	}
}

func TestFigure3PrefixSumSampling(t *testing.T) {
	// Paper Fig. 3 / Example 8: prefix sums of the running example are
	// [0, 3/8, 3/8, 6/8, 7/8, 7/8, 7/8, 1]; p̂ = 1/2 selects index 3,
	// i.e. |011⟩.
	s, err := NewPrefixSampler(runningExampleProbs())
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := []float64{0, 3.0 / 8, 3.0 / 8, 6.0 / 8, 7.0 / 8, 7.0 / 8, 7.0 / 8, 1}
	for i, want := range wantPrefix {
		if !approx(s.Prefix()[i], want, 1e-12) {
			t.Errorf("prefix[%d] = %v, want %v", i, s.Prefix()[i], want)
		}
	}
	if got := s.Select(0.5); got != 3 {
		t.Errorf("Select(1/2) = %d (%s), want 3 (011)", got, FormatBits(got, 3))
	}
	if got := FormatBits(s.Select(0.5), 3); got != "011" {
		t.Errorf("sampled bitstring %q, want 011", got)
	}
	// Boundary behavior: p̂ just below 3/8 selects index 1, p̂ = 3/8
	// selects index 3 (the next non-zero outcome).
	if got := s.Select(0.374999); got != 1 {
		t.Errorf("Select(0.374999) = %d, want 1", got)
	}
	if got := s.Select(3.0 / 8); got != 3 {
		t.Errorf("Select(3/8) = %d, want 3", got)
	}
	if got := s.Select(0); got != 1 {
		t.Errorf("Select(0) = %d, want 1 (first non-zero outcome)", got)
	}
	if got := s.Select(math.Nextafter(1, 0)); got != 7 {
		t.Errorf("Select(1-ε) = %d, want 7", got)
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewPrefixSampler([]float64{0.5, 0.5, 0.5}); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
	if _, err := NewPrefixSampler([]float64{0, 0}); err == nil {
		t.Error("expected error for zero distribution")
	}
	if _, err := NewPrefixSampler([]float64{-0.5, 1.5}); err == nil {
		t.Error("expected error for negative probability")
	}
	if _, err := NewLinearSampler([]float64{1}); err == nil {
		t.Error("expected error for single-entry distribution")
	}
	if _, err := NewAliasSampler([]float64{0, 0, 0, 0}); err == nil {
		t.Error("expected error for zero distribution")
	}
}

// chiSquareCheck samples and verifies the result against the exact
// distribution at significance α = 1e-6 (generous to keep the test
// deterministic-in-practice under a fixed seed).
func chiSquareCheck(t *testing.T, name string, s Sampler, expected []float64, shots int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	counts := Counts(s, r, shots)
	res, err := stats.ChiSquareGOF(counts, expected, shots)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.PValue < 1e-6 {
		t.Errorf("%s: chi-square rejects: stat=%v dof=%d p=%v", name, res.Statistic, res.DoF, res.PValue)
	}
	// No sample may land on a zero-probability outcome (error-free weak
	// simulation).
	for idx := range counts {
		if expected[idx] == 0 {
			t.Errorf("%s: sampled impossible outcome %s", name, FormatBits(idx, s.Qubits()))
		}
	}
}

func TestVectorSamplersMatchDistribution(t *testing.T) {
	probs := runningExampleProbs()
	shots := 40000
	ps, err := NewPrefixSampler(probs)
	if err != nil {
		t.Fatal(err)
	}
	chiSquareCheck(t, "prefix", ps, probs, shots, 1)
	ls, err := NewLinearSampler(probs)
	if err != nil {
		t.Fatal(err)
	}
	chiSquareCheck(t, "linear", ls, probs, shots, 2)
	as, err := NewAliasSampler(probs)
	if err != nil {
		t.Fatal(err)
	}
	chiSquareCheck(t, "alias", as, probs, shots, 3)
}

func TestSamplersAcceptUnnormalizedWeights(t *testing.T) {
	weights := []float64{0, 3, 0, 3, 1, 0, 0, 1} // running example × 8
	want := runningExampleProbs()
	ps, err := NewPrefixSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	chiSquareCheck(t, "prefix-unnormalized", ps, want, 20000, 4)
}

func TestDDSamplerMatchesDistribution(t *testing.T) {
	for _, norm := range []dd.Norm{dd.NormLeft, dd.NormL2, dd.NormL2Phase} {
		m := dd.New(3, dd.WithNormalization(norm))
		state, err := m.FromVector(runningExampleVector())
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewDDSampler(m, state)
		if err != nil {
			t.Fatal(err)
		}
		wantFast := norm == dd.NormL2 || norm == dd.NormL2Phase
		if s.FastPath() != wantFast {
			t.Errorf("norm=%v: FastPath = %v, want %v", norm, s.FastPath(), wantFast)
		}
		chiSquareCheck(t, "dd-"+norm.String(), s, runningExampleProbs(), 40000, 5)
	}
}

func TestDDSamplerForceGeneric(t *testing.T) {
	m := dd.New(3) // NormL2Phase default
	state, _ := m.FromVector(runningExampleVector())
	s, err := NewDDSampler(m, state, ForceGeneric())
	if err != nil {
		t.Fatal(err)
	}
	if s.FastPath() {
		t.Error("ForceGeneric did not disable the fast path")
	}
	chiSquareCheck(t, "dd-generic", s, runningExampleProbs(), 40000, 6)
}

func TestDDSamplerRejectsZeroVector(t *testing.T) {
	m := dd.New(3)
	if _, err := NewDDSampler(m, dd.VEdge{}); err == nil {
		t.Error("expected error sampling the zero vector")
	}
}

func TestDownstreamUpstreamRunningExample(t *testing.T) {
	// Under NormLeft the running example reproduces the paper's Fig. 4c
	// edge probabilities: root 3/4 vs 1/4, inner nodes 1/2 each.
	m := dd.New(3, dd.WithNormalization(dd.NormLeft))
	state, _ := m.FromVector(runningExampleVector())
	root := state.N

	down := Downstream(m, state)
	// Left subtree of the root holds 3/4 of the (normalized) mass.
	dl := root.E[0].W.Abs2() * down[root.E[0].N]
	dr := root.E[1].W.Abs2() * down[root.E[1].N]
	if !approx(dl/(dl+dr), 0.75, 1e-9) {
		t.Errorf("root left mass fraction = %v, want 3/4", dl/(dl+dr))
	}

	probs := EdgeProbabilities(m, state)
	rootP := probs[root]
	if !approx(rootP[0], 0.75, 1e-9) || !approx(rootP[1], 0.25, 1e-9) {
		t.Errorf("root edge probabilities = %v, want [3/4 1/4] (Fig. 4c)", rootP)
	}
	for i := 0; i < 2; i++ {
		q1 := root.E[i].N
		p := probs[q1]
		if !approx(p[0], 0.5, 1e-9) || !approx(p[1], 0.5, 1e-9) {
			t.Errorf("q1 node %d edge probabilities = %v, want [1/2 1/2] (Fig. 4c)", i, p)
		}
	}

	// Upstream values are half-path masses: combined with downstream they
	// give absolute traversal probabilities (up·down), 1 at the root and
	// 3/4 / 1/4 at the two q1 nodes — under any normalization scheme.
	up := Upstream(m, state)
	if got := up[root] * down[root]; !approx(got, 1, 1e-9) {
		t.Errorf("up·down(root) = %v, want 1", got)
	}
	t0 := up[root.E[0].N] * down[root.E[0].N]
	t1 := up[root.E[1].N] * down[root.E[1].N]
	if !approx(t0, 0.75, 1e-9) || !approx(t1, 0.25, 1e-9) {
		t.Errorf("traversal probabilities of q1 nodes = %v, %v; want 3/4, 1/4", t0, t1)
	}
}

func TestUpstreamDirectlyReadableUnderL2(t *testing.T) {
	// Under L2 normalization downstream ≡ 1, so upstream values alone are
	// the traversal probabilities.
	m := dd.New(3, dd.WithNormalization(dd.NormL2))
	state, _ := m.FromVector(runningExampleVector())
	up := Upstream(m, state)
	root := state.N
	if !approx(up[root], 1, 1e-9) {
		t.Errorf("up(root) = %v, want 1", up[root])
	}
	u0 := up[root.E[0].N]
	u1 := up[root.E[1].N]
	if !approx(u0, 0.75, 1e-9) || !approx(u1, 0.25, 1e-9) {
		t.Errorf("upstream(q1 nodes) = %v, %v; want 3/4, 1/4", u0, u1)
	}
}

func TestTraversalProbabilitiesSumPerLevel(t *testing.T) {
	m := dd.New(3, dd.WithNormalization(dd.NormLeft))
	state, _ := m.FromVector(runningExampleVector())
	tp := TraversalProbabilities(m, state)
	sums := make(map[int]float64)
	for n, p := range tp {
		sums[n.V] += p
	}
	for level, sum := range sums {
		if !approx(sum, 1, 1e-9) {
			t.Errorf("level %d traversal probabilities sum to %v, want 1", level, sum)
		}
	}
}

func TestDownstreamIsOneUnderL2(t *testing.T) {
	m := dd.New(3, dd.WithNormalization(dd.NormL2))
	state, _ := m.FromVector(runningExampleVector())
	for n, d := range Downstream(m, state) {
		if !approx(d, 1, 1e-9) {
			t.Errorf("downstream of node at level %d = %v, want 1 under NormL2", n.V, d)
		}
	}
}

func TestMeasureAllCollapses(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	r := rng.New(7)
	idx, collapsed, err := MeasureAll(m, state, r)
	if err != nil {
		t.Fatal(err)
	}
	if p := runningExampleProbs()[idx]; p == 0 {
		t.Errorf("measured impossible outcome %s", FormatBits(idx, 3))
	}
	if amp := m.Amplitude(collapsed, idx); !approx(amp.Abs(), 1, 1e-9) {
		t.Errorf("collapsed state amplitude at %d = %v, want magnitude 1", idx, amp)
	}
}

func TestQubitProbability(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	// P(q2=1) = 1/8 + 1/8 = 1/4; P(q0=1) = 3/8+3/8+1/8 = 7/8;
	// P(q1=1) = 3/8 + 1/8 = 1/2.
	cases := []struct {
		qubit int
		want  float64
	}{{2, 0.25}, {1, 0.5}, {0, 0.875}}
	for _, tc := range cases {
		got, err := QubitProbability(m, state, tc.qubit)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, tc.want, 1e-9) {
			t.Errorf("P(q%d=1) = %v, want %v", tc.qubit, got, tc.want)
		}
	}
	if _, err := QubitProbability(m, state, 5); err == nil {
		t.Error("expected error for out-of-range qubit")
	}
}

func TestMeasureQubitCollapseAndRenormalize(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	r := rng.New(11)
	seen := map[int]bool{}
	for trial := 0; trial < 50; trial++ {
		bit, post, err := MeasureQubit(m, state, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		seen[bit] = true
		if n2 := m.Norm2(post); !approx(n2, 1, 1e-9) {
			t.Fatalf("post-measurement norm² = %v", n2)
		}
		// The collapsed state must have zero support on the other branch.
		vec, _ := m.ToVector(post)
		for i, a := range vec {
			if (i>>2)&1 != bit && a.Abs2() > 1e-18 {
				t.Fatalf("support on q2=%d after measuring %d: index %d has %v", (i>>2)&1, bit, i, a)
			}
		}
	}
	if !seen[0] || !seen[1] {
		t.Error("50 measurements of a 3/4-1/4 qubit saw only one outcome")
	}
}

func TestProjectInvalidArgs(t *testing.T) {
	m := dd.New(3)
	state, _ := m.FromVector(runningExampleVector())
	if _, err := Project(m, state, -1, 0); err == nil {
		t.Error("expected error for negative qubit")
	}
	if _, err := Project(m, state, 0, 2); err == nil {
		t.Error("expected error for bit 2")
	}
}

func TestSamplersAgreeOnRandomStates(t *testing.T) {
	// Cross-check: DD sampling and prefix sampling must produce the same
	// distribution for a random 6-qubit state (compare empirical TVD).
	r := rng.New(23)
	n := 6
	size := 1 << uint(n)
	vec := make([]cnum.Complex, size)
	var norm float64
	for i := range vec {
		vec[i] = cnum.New(r.Float64()-0.5, r.Float64()-0.5)
		norm += vec[i].Abs2()
	}
	s := 1 / math.Sqrt(norm)
	for i := range vec {
		vec[i] = vec[i].Scale(s)
	}
	probs := ProbabilitiesFromAmplitudes(vec)

	m := dd.New(n)
	state, _ := m.FromVector(vec)
	ddS, err := NewDDSampler(m, state)
	if err != nil {
		t.Fatal(err)
	}
	shots := 60000
	chiSquareCheck(t, "dd-random", ddS, probs, shots, 31)

	ps, _ := NewPrefixSampler(probs)
	chiSquareCheck(t, "prefix-random", ps, probs, shots, 32)
}

func TestFigure4cEdgeProbabilities(t *testing.T) {
	// The paper's Fig. 4c edge probabilities — 3/4 and 1/4 at the root,
	// 1/2 everywhere on the q1 level — are properties of the state, so
	// every normalization scheme must produce them.
	for _, norm := range []dd.Norm{dd.NormLeft, dd.NormL2, dd.NormL2Phase} {
		m := dd.New(3, dd.WithNormalization(norm))
		state, _ := m.FromVector(runningExampleVector())
		probs := EdgeProbabilities(m, state)
		root := state.N
		p := probs[root]
		if !approx(p[0], 0.75, 1e-9) || !approx(p[1], 0.25, 1e-9) {
			t.Errorf("norm=%v: root probabilities %v, want [3/4 1/4]", norm, p)
		}
		for i := 0; i < 2; i++ {
			q1 := probs[root.E[i].N]
			if !approx(q1[0], 0.5, 1e-9) || !approx(q1[1], 0.5, 1e-9) {
				t.Errorf("norm=%v: q1[%d] probabilities %v, want [1/2 1/2]", norm, i, q1)
			}
		}
		// The q0 nodes put all probability on their non-zero edge.
		for _, n := range []*dd.VNode{root.E[0].N.E[0].N, root.E[0].N.E[1].N} {
			p := probs[n]
			if !approx(p[0]+p[1], 1, 1e-9) {
				t.Errorf("norm=%v: q0 probabilities %v do not sum to 1", norm, p)
			}
		}
	}
}

func TestDDSamplerDeterministicOnBasisState(t *testing.T) {
	m := dd.New(5)
	state := m.BasisState(19)
	s, err := NewDDSampler(m, state)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	for i := 0; i < 100; i++ {
		if got := s.Sample(r); got != 19 {
			t.Fatalf("basis-state sample = %d, want 19", got)
		}
	}
}

func TestCountsTotals(t *testing.T) {
	m := dd.New(2)
	vec := []cnum.Complex{cnum.SqrtHalf, cnum.Zero, cnum.Zero, cnum.SqrtHalf}
	state, _ := m.FromVector(vec)
	s, _ := NewDDSampler(m, state)
	counts := Counts(s, rng.New(1), 5000)
	total := 0
	for idx, n := range counts {
		if idx != 0 && idx != 3 {
			t.Errorf("impossible outcome %d", idx)
		}
		total += n
	}
	if total != 5000 {
		t.Errorf("counts total %d, want 5000", total)
	}
}

func TestCountsContextCancellation(t *testing.T) {
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	s, err := NewPrefixSampler(probs)
	if err != nil {
		t.Fatal(err)
	}

	// A live context behaves exactly like Counts.
	counts, err := CountsContext(context.Background(), s, rng.New(9), 3000)
	if err != nil {
		t.Fatalf("CountsContext with live ctx: %v", err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 3000 {
		t.Errorf("counts total %d, want 3000", total)
	}

	// A pre-cancelled context stops within the first check window and
	// returns the partial tallies alongside the typed error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := CountsContext(ctx, s, rng.New(9), 1000000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CountsContext with cancelled ctx: %v, want context.Canceled", err)
	}
	got := 0
	for _, n := range partial {
		got += n
	}
	if got >= CtxCheckShots {
		t.Errorf("drew %d shots past a cancelled context (check interval %d)", got, CtxCheckShots)
	}
}
