package core

import (
	"container/heap"
	"fmt"
	"sort"

	"weaksim/internal/dd"
)

// Outcome is a basis state together with its exact Born probability.
type Outcome struct {
	Index       uint64
	Probability float64
}

// TopOutcomes returns the k most probable basis states of the state DD,
// exactly, in descending probability order — without enumerating the 2^n
// amplitudes. It runs a best-first branch-and-bound over root-to-terminal
// paths: a partial path's priority is its probability mass so far times the
// downstream mass below it, which upper-bounds every completion, so the
// first k completed paths popped from the frontier are exactly the k most
// probable outcomes.
//
// This gives exact mode information in the MO regime where the vector-based
// approach cannot even store the distribution (sampling, by contrast, only
// estimates it).
func TopOutcomes(m *dd.Manager, state dd.VEdge, k int) ([]Outcome, error) {
	if state.IsZero() {
		return nil, fmt.Errorf("core: cannot enumerate the zero vector")
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	down := Downstream(m, state)

	pq := &pathQueue{}
	heap.Init(pq)
	heap.Push(pq, pathItem{
		mass: state.W.Abs2() * downOf(state.N, down),
		node: state.N,
		v:    m.Qubits() - 1,
	})

	var out []Outcome
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(pathItem)
		if it.v < 0 {
			// Completed path: by admissibility of the bound, this is the
			// next most probable outcome.
			out = append(out, Outcome{Index: it.idx, Probability: it.mass})
			continue
		}
		for bit := uint64(0); bit < 2; bit++ {
			e := it.node.E[bit]
			if e.IsZero() {
				continue
			}
			child := pathItem{
				mass: it.mass / downOf(it.node, down) * e.W.Abs2() * downOf(e.N, down),
				node: e.N,
				idx:  it.idx | bit<<uint(it.v),
				v:    it.v - 1,
			}
			if child.mass > 0 {
				heap.Push(pq, child)
			}
		}
	}
	// Ties in floating point can pop in arbitrary order; normalize the
	// presentation.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

type pathItem struct {
	mass float64
	node *dd.VNode
	idx  uint64
	v    int
}

type pathQueue []pathItem

func (q pathQueue) Len() int            { return len(q) }
func (q pathQueue) Less(i, j int) bool  { return q[i].mass > q[j].mass }
func (q pathQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pathQueue) Push(x interface{}) { *q = append(*q, x.(pathItem)) }
func (q *pathQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
