package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"weaksim/internal/rng"
)

// The paper (Section III) notes that linear-traversal sampling — unlike
// binary search — streams: it can sample from probability vectors far too
// large for main memory, stored in out-of-core files. This file implements
// that: probabilities serialized as little-endian float64s, and a sampler
// that draws an entire batch of samples in a single sequential pass by
// merging the sorted batch of uniform variates against the running prefix
// sum.

// WriteProbabilityStream serializes a probability vector as little-endian
// float64s.
func WriteProbabilityStream(w io.Writer, probs []float64) error {
	bw := bufio.NewWriter(w)
	var buf [8]byte
	for _, p := range probs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProbabilityStream deserializes a probability vector written by
// WriteProbabilityStream.
func ReadProbabilityStream(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	var probs []float64
	var buf [8]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return probs, nil
			}
			return nil, err
		}
		probs = append(probs, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
}

// StreamCounts draws shots samples from a serialized probability stream in
// one sequential pass and returns them tallied by index. The stream must
// hold a normalized distribution (sum ≈ 1); any probability mass missing
// due to rounding is assigned to the last entry with non-zero probability,
// mirroring PrefixSampler's top guard.
//
// Memory use is O(shots), independent of the stream length — this is the
// out-of-core regime where neither the prefix array nor the probabilities
// fit in memory.
func StreamCounts(src io.Reader, shots int, r *rng.RNG) (map[uint64]int, error) {
	if shots < 1 {
		return nil, fmt.Errorf("core: shots must be positive")
	}
	// Draw and sort the whole batch of uniforms up front; a single merge
	// against the increasing prefix sums then serves all of them.
	uniforms := make([]float64, shots)
	for i := range uniforms {
		uniforms[i] = r.Float64()
	}
	sort.Float64s(uniforms)

	counts := make(map[uint64]int)
	br := bufio.NewReaderSize(src, 1<<16)
	var buf [8]byte
	var prefix float64
	var idx uint64
	lastNonZero := int64(-1)
	next := 0 // next uniform awaiting assignment
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		p := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		if p < 0 {
			return nil, fmt.Errorf("core: negative probability %g at index %d", p, idx)
		}
		if p > 0 {
			lastNonZero = int64(idx)
		}
		prefix += p
		for next < shots && uniforms[next] < prefix {
			counts[idx]++
			next++
		}
		idx++
		if next == shots {
			// All samples assigned; drain is unnecessary.
			return counts, nil
		}
	}
	if lastNonZero < 0 {
		return nil, fmt.Errorf("core: stream holds no probability mass")
	}
	// Rounding left a sliver of uniforms above the final prefix sum.
	counts[uint64(lastNonZero)] += shots - next
	return counts, nil
}
