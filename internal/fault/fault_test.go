package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledHookIsInertAndAllocFree(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable")
	}
	if err := Hit(DDFreeze); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
	b := []byte{1, 2, 3}
	out, err := Mangle(SnapstoreWrite, b)
	if err != nil || &out[0] != &b[0] {
		t.Fatalf("disabled Mangle must return the input slice unchanged (err=%v)", err)
	}
	// The acceptance pin: a disabled hook on the sampling hot path costs no
	// allocations.
	if n := testing.AllocsPerRun(1000, func() {
		_ = Hit(SamplerWalk)
	}); n != 0 {
		t.Fatalf("disabled Hit allocates %v/op, want 0", n)
	}
}

func TestSpecParsing(t *testing.T) {
	defer Disable()
	bad := []string{
		"nope",                     // no class
		"bogus.point:err",          // unknown point
		"dd.freeze:explode",        // unknown class
		"dd.freeze:err@0",          // zero ordinal
		"dd.freeze:err@x",          // non-numeric ordinal
		"dd.freeze:latency(wat)",   // bad duration
		"dd.freeze:latency(-1s)",   // negative duration
		"dd.freeze:latency(5ms)@+", // empty ordinal
	}
	for _, spec := range bad {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
	if err := Enable("dd.freeze:err@3, snapstore.write:truncate@1 ,sampler.walk:latency(1ms)@2+", 7); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if !Enabled() || Active() == "" {
		t.Fatal("plan not armed")
	}
	if err := Enable("", 0); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if Enabled() {
		t.Fatal("empty spec must disable")
	}
}

func TestNthHitTrigger(t *testing.T) {
	defer Disable()
	if err := Enable("dd.freeze:err@3", 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Hit(DDFreeze)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v, want injected exactly on the 3rd", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v is not ErrInjected", i, err)
		}
	}
}

func TestOpenEndedTrigger(t *testing.T) {
	defer Disable()
	if err := Enable("dd.gc:err@2+", 0); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, true}
	for i, w := range want {
		if got := Hit(DDGC) != nil; got != w {
			t.Fatalf("hit %d: injected=%v, want %v", i+1, got, w)
		}
	}
}

func TestPanicClass(t *testing.T) {
	defer Disable()
	if err := Enable("serve.sim:panic", 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		p, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *fault.InjectedPanic", r, r)
		}
		if p.Point != ServeSim {
			t.Fatalf("panic point %q", p.Point)
		}
	}()
	_ = Hit(ServeSim)
	t.Fatal("Hit did not panic")
}

func TestLatencyClassSleeps(t *testing.T) {
	defer Disable()
	if err := Enable("sampler.walk:latency(30ms)@1", 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(SamplerWalk); err != nil {
		t.Fatalf("latency hook returned %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency hook returned after %v, want >= ~30ms", d)
	}
	// Second hit is outside the window: fast and clean.
	start = time.Now()
	_ = Hit(SamplerWalk)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("disarmed hit slept %v", d)
	}
}

func TestMangleCorruptIsDeterministicAndCopies(t *testing.T) {
	defer Disable()
	orig := []byte("immutable snapshot payload bytes")
	damaged := make([][]byte, 2)
	for round := 0; round < 2; round++ {
		if err := Enable("snapstore.write:corrupt@1", 42); err != nil {
			t.Fatal(err)
		}
		out, err := Mangle(SnapstoreWrite, orig)
		if err != nil {
			t.Fatalf("corrupt returned err %v", err)
		}
		damaged[round] = out
		Disable()
	}
	if string(orig) != "immutable snapshot payload bytes" {
		t.Fatal("Mangle modified the input slice")
	}
	if string(damaged[0]) == string(orig) {
		t.Fatal("corrupt did not change the payload")
	}
	if string(damaged[0]) != string(damaged[1]) {
		t.Fatal("same (spec, seed) produced different corruption")
	}
	diff := 0
	for i := range orig {
		if damaged[0][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt changed %d bytes, want exactly 1", diff)
	}
}

func TestMangleTruncateShortens(t *testing.T) {
	defer Disable()
	if err := Enable("snapstore.read:truncate", 9); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 100)
	out, err := Mangle(SnapstoreRead, in)
	if err != nil {
		t.Fatalf("truncate returned err %v", err)
	}
	if len(out) >= len(in) {
		t.Fatalf("truncate kept %d of %d bytes", len(out), len(in))
	}
}

func TestMangleErrClass(t *testing.T) {
	defer Disable()
	if err := Enable("snapstore.write:err", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Mangle(SnapstoreWrite, []byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err class through Mangle: %v", err)
	}
}

func TestCorruptDegradesToErrOnNonBytePoint(t *testing.T) {
	defer Disable()
	if err := Enable("dd.freeze:corrupt", 0); err != nil {
		t.Fatal(err)
	}
	if err := Hit(DDFreeze); !errors.Is(err, ErrInjected) {
		t.Fatalf("corrupt at a non-byte point: %v, want ErrInjected", err)
	}
}

func TestCatalogueCoversEveryConstant(t *testing.T) {
	pts := Points()
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point %q", p)
		}
		seen[p] = true
	}
	for _, p := range []string{DDUniqueInsert, DDGC, DDFreeze, SamplerWalk,
		ServeSim, ServeQueueSubmit, ServeCacheAdmit, SnapstoreWrite, SnapstoreRead} {
		if !seen[p] {
			t.Fatalf("constant %q missing from Points()", p)
		}
	}
}
