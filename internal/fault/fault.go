// Package fault is a deterministic, seed-driven fault-injection framework
// for chaos-testing the simulation pipeline end to end.
//
// The resilience claims of the serving layer — budget overruns answer 507,
// blown deadlines 504, a full queue 429, a panicking simulation fails only
// its own flight, a corrupt snapshot file is quarantined and re-simulated —
// are only worth anything if every one of those branches is actually
// exercised. Left to nature, most of them fire rarely or never. This package
// compiles *named injection points* into the production code paths (the
// unique-table insert, the garbage collector, Freeze, the sampling walk
// loop, the serve queue/cache/worker pool, the snapshot store, and the
// cluster router's backend-connect and snapshot-shipping hops) and lets
// a test or an operator arm them with a compact spec:
//
//	dd.freeze:err@3,snapstore.write:truncate@1,sampler.walk:latency(50ms)
//
// Each rule is point:class[@trigger]. Classes:
//
//	err           the hook returns ErrInjected (points that cannot surface
//	              an error escalate to a panic, documented per point)
//	panic         the hook panics with *Panic
//	latency(D)    the hook sleeps D (Go duration syntax) and succeeds
//	corrupt       byte-stream hooks (Mangle) flip one deterministically
//	              chosen byte; non-byte hooks degrade to err
//	truncate      byte-stream hooks cut the payload short; non-byte hooks
//	              degrade to err
//
// Triggers select which hits fire: "@3" fires on exactly the third hit of
// that point, "@3+" on the third and every later hit, and no trigger means
// every hit. Hit counting is per rule and atomic, so a multi-worker run
// still fires deterministically on the Nth global hit. Byte corruption
// positions derive from a SplitMix64 stream over (seed, hit), so a given
// (spec, seed) pair reproduces the same damage bit for bit.
//
// Disabled is free: when no spec is armed, every hook is a single atomic
// pointer load that allocates nothing — cheap enough to live on the
// sampling hot path (the chaos suite pins 0 allocs/op on it).
//
// The plan is process-global (faults model a sick process, not a sick
// request), so tests arm it with Enable and must Disable before returning.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Registered injection points. The catalogue is the contract the chaos suite
// iterates over: every point here is compiled into a production code path,
// and Enable rejects specs naming anything else, so a typo cannot silently
// disarm a chaos test.
const (
	// DDUniqueInsert fires on every unique-table miss (node allocation). An
	// injected err models an allocation failure and surfaces as
	// dd.ErrNodeBudget through Guarded — the deterministic way to exercise
	// the MO ladder (HTTP 507).
	DDUniqueInsert = "dd.unique.insert"
	// DDGC fires at the start of every mark-and-sweep collection. GC cannot
	// return an error, so err escalates to panic.
	DDGC = "dd.gc"
	// DDFreeze fires at the start of Manager.Freeze.
	DDFreeze = "dd.freeze"
	// SamplerWalk fires in the parallel sampling workers at the cooperative
	// cancellation cadence (every core.CtxCheckShots shots).
	SamplerWalk = "sampler.walk"
	// ServeSim fires at the start of a strong-simulation job on a serve
	// worker — inside the panic-isolation boundary.
	ServeSim = "serve.sim"
	// ServeQueueSubmit fires on admission-queue submit. An injected err
	// models queue pressure and surfaces as serve.ErrQueueFull (HTTP 429).
	ServeQueueSubmit = "serve.queue.submit"
	// ServeCacheAdmit fires when a computed entry is admitted to the
	// snapshot LRU. Any injected fault skips the admission (the result is
	// still served, uncached — degrade, never fail).
	ServeCacheAdmit = "serve.cache.admit"
	// SnapstoreWrite is a byte-stream hook over the encoded snapshot file
	// payload before it is written.
	SnapstoreWrite = "snapstore.write"
	// SnapstoreRead is a byte-stream hook over the snapshot file payload
	// after it is read and before integrity checks.
	SnapstoreRead = "snapstore.read"
	// ClusterConnect fires in the cluster router before each forwarded
	// backend request. An injected err models a backend connect failure and
	// exercises the ejection + retry-with-failover path.
	ClusterConnect = "cluster.backend.connect"
	// ClusterSnapFetch is a byte-stream hook over a snapshot frame fetched
	// from a warm replica during snapshot shipping, before the receiving
	// primary's integrity checks. Corruption here must degrade to
	// re-simulation on the target, never to a failed client request.
	ClusterSnapFetch = "cluster.snapfetch"
	// JobWALWrite is a byte-stream hook over each batch-job WAL record frame
	// before it is appended — chaos tests forge torn and bit-rotted job logs
	// without hex-editing segment files.
	JobWALWrite = "job.wal.write"
	// JobWALReplay is a byte-stream hook over each WAL segment's bytes after
	// they are read and before record scanning, so replay-side corruption
	// (quarantine, torn-tail truncation) is exercised deterministically.
	JobWALReplay = "job.wal.replay"
	// JobChunkSample fires before each batch-job chunk executes. An injected
	// err fails the chunk (and with it the job, through the terminal-state
	// ladder); latency stretches a chunk so kill-and-resume tests can land a
	// crash mid-chunk.
	JobChunkSample = "job.chunk.sample"
)

// Points returns the registered injection-point catalogue.
func Points() []string {
	return []string{
		DDUniqueInsert, DDGC, DDFreeze,
		SamplerWalk,
		ServeSim, ServeQueueSubmit, ServeCacheAdmit,
		SnapstoreWrite, SnapstoreRead,
		ClusterConnect, ClusterSnapFetch,
		JobWALWrite, JobWALReplay, JobChunkSample,
	}
}

// knownPoint reports whether name is in the catalogue.
func knownPoint(name string) bool {
	for _, p := range Points() {
		if p == name {
			return true
		}
	}
	return false
}

// Class is a fault class.
type Class uint8

const (
	// Err makes the hook return ErrInjected.
	Err Class = iota
	// Panic makes the hook panic with *Panic.
	Panic
	// Latency makes the hook sleep its rule's duration.
	Latency
	// Corrupt flips one byte of a Mangle payload (err elsewhere).
	Corrupt
	// Truncate cuts a Mangle payload short (err elsewhere).
	Truncate
)

// String returns the spec spelling of the class.
func (c Class) String() string {
	switch c {
	case Err:
		return "err"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ErrInjected is the root of every error produced by an armed hook.
// Detect with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Panic is the payload of an injected panic, so recovery sites can tell a
// chaos-injected panic from a genuine bug in test assertions.
type InjectedPanic struct{ Point string }

func (p *InjectedPanic) Error() string { return "fault: injected panic at " + p.Point }

// rule is one armed fault: fire class at point on hits in [from, to].
type rule struct {
	point string
	class Class
	lat   time.Duration
	from  uint64 // first firing hit, 1-based
	to    uint64 // last firing hit (MaxUint64 = open-ended)
	seed  uint64
	hits  atomic.Uint64
}

// fire reports whether this hit (atomically counted) is inside the rule's
// trigger window, and the hit ordinal.
func (r *rule) fire() (uint64, bool) {
	n := r.hits.Add(1)
	return n, n >= r.from && n <= r.to
}

// plan is an immutable compiled spec.
type plan struct {
	spec  string
	seed  uint64
	rules map[string][]*rule
}

var active atomic.Pointer[plan]

// observer, when set, is called synchronously every time an armed rule
// actually fires (not on every hit). The serving layer uses it to record
// injected faults into the flight recorder, so a chaos run leaves a
// post-hoc-debuggable artifact instead of just a flipped status code. The
// callback runs on the faulting goroutine and must be cheap and must not
// itself call into fault.
type observerFn func(point string, class Class)

var observer atomic.Pointer[observerFn]

// SetObserver installs the fired-fault callback (nil removes it). Only one
// observer is active at a time; the last call wins.
func SetObserver(fn func(point string, class Class)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	f := observerFn(fn)
	observer.Store(&f)
}

// notify reports a fired rule to the observer, if any.
func notify(point string, class Class) {
	if fn := observer.Load(); fn != nil {
		(*fn)(point, class)
	}
}

// Enable compiles and arms a fault spec. The seed drives byte-corruption
// positions (and nothing else); the same (spec, seed) produces the same
// faults in the same order. An empty spec disables injection, like Disable.
func Enable(spec string, seed uint64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	p := &plan{spec: spec, seed: seed, rules: make(map[string][]*rule)}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		r, err := parseRule(item, seed)
		if err != nil {
			return fmt.Errorf("fault: bad rule %q: %w", item, err)
		}
		p.rules[r.point] = append(p.rules[r.point], r)
	}
	if len(p.rules) == 0 {
		return errors.New("fault: spec contains no rules")
	}
	active.Store(p)
	return nil
}

// Disable disarms all faults.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// Active returns the armed spec ("" when disabled), for logging.
func Active() string {
	if p := active.Load(); p != nil {
		return p.spec
	}
	return ""
}

// parseRule parses "point:class[@trigger]" with class one of err, panic,
// corrupt, truncate, latency(D).
func parseRule(item string, seed uint64) (*rule, error) {
	colon := strings.IndexByte(item, ':')
	if colon <= 0 {
		return nil, errors.New(`want "point:class[@trigger]"`)
	}
	point := item[:colon]
	if !knownPoint(point) {
		return nil, fmt.Errorf("unknown injection point %q (catalogue: %s)",
			point, strings.Join(Points(), " "))
	}
	rest := item[colon+1:]
	r := &rule{point: point, from: 1, to: ^uint64(0), seed: seed}
	if at := strings.IndexByte(rest, '@'); at >= 0 {
		trig := rest[at+1:]
		rest = rest[:at]
		open := strings.HasSuffix(trig, "+")
		trig = strings.TrimSuffix(trig, "+")
		n, err := strconv.ParseUint(trig, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("trigger %q: want a positive hit ordinal like @3 or @3+", trig)
		}
		r.from = n
		if !open {
			r.to = n
		}
	}
	switch {
	case rest == "err":
		r.class = Err
	case rest == "panic":
		r.class = Panic
	case rest == "corrupt":
		r.class = Corrupt
	case rest == "truncate":
		r.class = Truncate
	case strings.HasPrefix(rest, "latency(") && strings.HasSuffix(rest, ")"):
		d, err := time.ParseDuration(rest[len("latency(") : len(rest)-1])
		if err != nil {
			return nil, fmt.Errorf("latency duration: %w", err)
		}
		if d < 0 {
			return nil, errors.New("latency duration must be non-negative")
		}
		r.class = Latency
		r.lat = d
	default:
		return nil, fmt.Errorf("unknown class %q (want err, panic, corrupt, truncate, or latency(duration))", rest)
	}
	return r, nil
}

// Hit is the standard (non-byte) injection hook. When the point has no armed
// firing rule it returns nil without allocating. Otherwise:
//
//	Err, Corrupt, Truncate → returns ErrInjected (wrapped with the point)
//	Latency                → sleeps, returns nil
//	Panic                  → panics with *Panic
func Hit(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(point)
}

// hit is the armed slow path, kept out of Hit so the disabled path inlines.
func (p *plan) hit(point string) error {
	var err error
	for _, r := range p.rules[point] {
		if _, on := r.fire(); !on {
			continue
		}
		notify(point, r.class)
		switch r.class {
		case Latency:
			time.Sleep(r.lat)
		case Panic:
			panic(&InjectedPanic{Point: point})
		default: // Err; Corrupt and Truncate degrade to Err off the byte path
			err = fmt.Errorf("%w: %s at %s", ErrInjected, r.class, point)
		}
	}
	return err
}

// Mangle is the byte-stream injection hook: it returns the (possibly
// damaged) payload to actually write or decode. Corrupt flips one
// deterministically chosen byte in a copy of b; Truncate cuts b to a
// deterministic shorter length. Err, Latency, and Panic behave as in Hit.
// The input slice is never modified.
func Mangle(point string, b []byte) ([]byte, error) {
	p := active.Load()
	if p == nil {
		return b, nil
	}
	return p.mangle(point, b)
}

func (p *plan) mangle(point string, b []byte) ([]byte, error) {
	var err error
	for _, r := range p.rules[point] {
		n, on := r.fire()
		if !on {
			continue
		}
		notify(point, r.class)
		switch r.class {
		case Latency:
			time.Sleep(r.lat)
		case Panic:
			panic(&InjectedPanic{Point: point})
		case Err:
			err = fmt.Errorf("%w: err at %s", ErrInjected, point)
		case Corrupt:
			if len(b) > 0 {
				c := make([]byte, len(b))
				copy(c, b)
				pos := splitmix(r.seed^n) % uint64(len(c))
				c[pos] ^= 1 << (splitmix(r.seed^n^0x9e37) % 8)
				b = c
			}
		case Truncate:
			if len(b) > 0 {
				// Keep at least one byte missing: cut to a deterministic
				// length strictly below the original.
				keep := int(splitmix(r.seed^n) % uint64(len(b)))
				b = b[:keep]
			}
		}
	}
	return b, err
}

// splitmix is SplitMix64 — the same mixer the rng package builds streams
// from, reimplemented here so fault stays dependency-free.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
