package sim

import (
	"math"
	"testing"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/dd"
)

// crossValidate runs the circuit on both backends and compares amplitudes.
func crossValidate(t *testing.T, c *circuit.Circuit, norm dd.Norm) {
	t.Helper()
	ddSim, err := NewDD(c, WithManagerOptions(dd.WithNormalization(norm)))
	if err != nil {
		t.Fatalf("NewDD(%s): %v", c.Name, err)
	}
	state, err := ddSim.Run()
	if err != nil {
		t.Fatalf("DD run(%s): %v", c.Name, err)
	}
	vecSim, err := NewVector(c, 0)
	if err != nil {
		t.Fatalf("NewVector(%s): %v", c.Name, err)
	}
	dense, err := vecSim.Run()
	if err != nil {
		t.Fatalf("vector run(%s): %v", c.Name, err)
	}
	got, err := ddSim.Manager().ToVector(state)
	if err != nil {
		t.Fatalf("ToVector(%s): %v", c.Name, err)
	}
	want := dense.Amplitudes()
	for i := range want {
		if !got[i].ApproxEq(want[i], 1e-8) {
			t.Fatalf("%s (norm=%v): amplitude %d differs: DD %v vs dense %v",
				c.Name, norm, i, got[i], want[i])
		}
	}
	if n2 := ddSim.Manager().Norm2(state); math.Abs(n2-1) > 1e-8 {
		t.Errorf("%s: DD Norm2 = %v", c.Name, n2)
	}
}

func TestBackendsAgreeOnBenchmarks(t *testing.T) {
	names := []string{
		"running_example", "figure1",
		"qft_5", "qft_8",
		"grover_4", "grover_6",
		"shor_15_2", "shor_15_7", "shor_21_2",
		"jellium_2x2",
		"supremacy_2x2_8", "supremacy_3x3_10",
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := algo.Generate(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, norm := range []dd.Norm{dd.NormLeft, dd.NormL2, dd.NormL2Phase} {
				crossValidate(t, c, norm)
			}
		})
	}
}

func TestRunningExampleState(t *testing.T) {
	// The DD simulation of the running example must produce the paper's
	// Fig. 2 amplitudes exactly (within tolerance).
	c := algo.RunningExample()
	s, err := NewDD(c)
	if err != nil {
		t.Fatal(err)
	}
	state, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := s.Manager()
	wantAbs := []float64{0, math.Sqrt(3.0 / 8), 0, math.Sqrt(3.0 / 8), math.Sqrt(1.0 / 8), 0, 0, math.Sqrt(1.0 / 8)}
	for i, w := range wantAbs {
		amp := m.Amplitude(state, uint64(i))
		if math.Abs(amp.Abs()-w) > 1e-9 {
			t.Errorf("amplitude %d: |%v| = %v, want %v", i, amp, amp.Abs(), w)
		}
	}
	// The paper's -0.612i entries are purely imaginary and negative, the
	// 0.354 entries purely real and positive.
	for _, i := range []uint64{1, 3} {
		amp := m.Amplitude(state, i)
		if amp.Im >= 0 || math.Abs(amp.Re) > 1e-9 {
			t.Errorf("amplitude %d = %v, want negative imaginary", i, amp)
		}
	}
	for _, i := range []uint64{4, 7} {
		amp := m.Amplitude(state, i)
		if amp.Re <= 0 || math.Abs(amp.Im) > 1e-9 {
			t.Errorf("amplitude %d = %v, want positive real", i, amp)
		}
	}
}

func TestDDSimulatorStepAndCaching(t *testing.T) {
	c := circuit.New(2, "steps")
	c.H(0).CX(0, 1).H(0).CX(0, 1)
	s, err := NewDD(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := s.Step(); err == nil {
		t.Error("expected error stepping past the end")
	}
	if s.AppliedOps() != 4 {
		t.Errorf("AppliedOps = %d, want 4", s.AppliedOps())
	}
}

func TestVectorSimulatorMemoryOut(t *testing.T) {
	c := algo.QFT(30)
	if _, err := NewVector(c, 20); err == nil {
		t.Error("expected memory-out for 30 qubits with a 20-qubit budget")
	}
}

func TestDDSimulatorGCDuringLongCircuit(t *testing.T) {
	// A long random-ish circuit with a tiny GC threshold exercises
	// mark-and-sweep mid-simulation; results must match the dense backend.
	c := circuit.New(4, "gcstress")
	for i := 0; i < 60; i++ {
		switch i % 4 {
		case 0:
			c.H(i % 4)
		case 1:
			c.CX(i%4, (i+1)%4)
		case 2:
			c.T((i + 2) % 4)
		case 3:
			c.CZ(i%4, (i+2)%4)
		}
	}
	s, err := NewDD(c, WithManagerOptions(dd.WithGCThreshold(32)))
	if err != nil {
		t.Fatal(err)
	}
	state, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.GCSweeps() == 0 {
		t.Error("expected at least one GC sweep with a tiny threshold")
	}
	vecSim, _ := NewVector(c, 0)
	dense, _ := vecSim.Run()
	got, _ := s.Manager().ToVector(state)
	for i, want := range dense.Amplitudes() {
		if !got[i].ApproxEq(want, 1e-8) {
			t.Fatalf("amplitude %d differs after GC stress: %v vs %v", i, got[i], want)
		}
	}
}

func TestBarrierIsNoOp(t *testing.T) {
	c := circuit.New(2, "barrier")
	c.H(0).Barrier().CX(0, 1)
	s, err := NewDD(c)
	if err != nil {
		t.Fatal(err)
	}
	state, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.AppliedOps() != 2 {
		t.Errorf("AppliedOps = %d, want 2 (barrier must not count)", s.AppliedOps())
	}
	// Bell state.
	m := s.Manager()
	if a := m.Amplitude(state, 0); math.Abs(a.Abs()-math.Sqrt2/2) > 1e-9 {
		t.Errorf("bell amplitude 00 = %v", a)
	}
	if a := m.Amplitude(state, 3); math.Abs(a.Abs()-math.Sqrt2/2) > 1e-9 {
		t.Errorf("bell amplitude 11 = %v", a)
	}
}

func TestFusedRunMatchesStepwise(t *testing.T) {
	// Barrier-delimited operator fusion must produce the same state as
	// stepwise application (grover circuits carry the barriers).
	c, err := algo.Generate("grover_8")
	if err != nil {
		t.Fatal(err)
	}
	step, err := NewDD(c)
	if err != nil {
		t.Fatal(err)
	}
	stepState, err := step.Run()
	if err != nil {
		t.Fatal(err)
	}
	fused, err := NewDD(c, WithFusion(FuseAtBarriers))
	if err != nil {
		t.Fatal(err)
	}
	fusedState, err := fused.Run()
	if err != nil {
		t.Fatal(err)
	}
	if step.AppliedOps() != fused.AppliedOps() {
		t.Errorf("applied ops differ: %d vs %d", step.AppliedOps(), fused.AppliedOps())
	}
	a, _ := step.Manager().ToVector(stepState)
	b, _ := fused.Manager().ToVector(fusedState)
	for i := range a {
		if !a[i].ApproxEq(b[i], 1e-6) {
			t.Fatalf("amplitude %d: stepwise %v vs fused %v", i, a[i], b[i])
		}
	}
}

func TestFusedWindowRun(t *testing.T) {
	// Fixed-size window fusion on a circuit without barriers.
	c := circuit.New(3, "windowed")
	for i := 0; i < 12; i++ {
		c.H(i%3).CX(i%3, (i+1)%3)
	}
	step, _ := NewDD(c)
	stepState, err := step.Run()
	if err != nil {
		t.Fatal(err)
	}
	fused, _ := NewDD(c, WithFusion(5))
	fusedState, err := fused.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := step.Manager().ToVector(stepState)
	b, _ := fused.Manager().ToVector(fusedState)
	for i := range a {
		if !a[i].ApproxEq(b[i], 1e-7) {
			t.Fatalf("amplitude %d: stepwise %v vs fused %v", i, a[i], b[i])
		}
	}
}

func TestIdentityShortcutCorrectness(t *testing.T) {
	// Deep circuit with gates far apart in the register: the identity
	// shortcut in Mul must not change semantics.
	c := circuit.New(8, "spread")
	c.H(7).CX(7, 0).T(0).CX(0, 7).H(3).CZ(3, 5)
	crossValidate(t, c, dd.NormL2Phase)
}

func TestTraceHook(t *testing.T) {
	c, _ := algo.Generate("qft_6")
	var calls int
	s, err := NewDD(c, WithTrace(5, func(opIndex int, st dd.Stats) {
		calls++
		if opIndex%5 != 0 {
			t.Errorf("trace fired at op %d, want multiples of 5", opIndex)
		}
		if st.VNodes == 0 {
			t.Error("trace saw empty unique table")
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("trace hook never fired")
	}
}
