package sim

import (
	"testing"
	"testing/quick"

	"weaksim/internal/circuit"
	"weaksim/internal/dd"
	"weaksim/internal/gate"
	"weaksim/internal/rng"
)

// randomCircuit builds a random circuit from a seed: a mix of single-qubit
// gates, controlled gates (positive and negative controls), Toffolis, and
// small permutations — every operation kind the simulators support.
func randomCircuit(seed uint64, nqubits, nops int) *circuit.Circuit {
	r := rng.New(seed)
	c := circuit.New(nqubits, "random")
	singles := []gate.Gate{
		gate.HGate, gate.XGate, gate.YGate, gate.ZGate, gate.SGate,
		gate.TGate, gate.SXGate, gate.SYGate,
		gate.RXGate(0.37), gate.RYGate(-1.1), gate.RZGate(2.2),
		gate.PhaseGate(0.81), gate.UGate(0.5, 1.3, -0.7),
	}
	for i := 0; i < nops; i++ {
		switch r.IntN(5) {
		case 0, 1: // single-qubit gate
			c.Apply(singles[r.IntN(len(singles))], r.IntN(nqubits))
		case 2: // controlled gate
			t := r.IntN(nqubits)
			ctl := r.IntN(nqubits)
			if ctl == t {
				ctl = (ctl + 1) % nqubits
			}
			control := gate.Pos(ctl)
			if r.IntN(2) == 0 {
				control = gate.Neg(ctl)
			}
			c.Apply(singles[r.IntN(len(singles))], t, control)
		case 3: // Toffoli-style
			if nqubits < 3 {
				c.H(r.IntN(nqubits))
				continue
			}
			t := r.IntN(nqubits)
			c1 := (t + 1) % nqubits
			c2 := (t + 2) % nqubits
			c.Apply(gate.XGate, t, gate.Pos(c1), gate.Pos(c2))
		case 4: // 2-qubit permutation on the low bits, possibly controlled
			perm := []uint64{0, 1, 2, 3}
			i, j := r.IntN(4), r.IntN(4)
			perm[i], perm[j] = perm[j], perm[i]
			var ctls []gate.Control
			if nqubits > 2 && r.IntN(2) == 0 {
				ctls = append(ctls, gate.Pos(2+r.IntN(nqubits-2)))
			}
			c.Permutation(perm, 2, "", ctls...)
		}
	}
	return c
}

// TestRandomCircuitsCrossValidate is the repository's strongest invariant:
// for arbitrary circuits, the decision-diagram backend and the dense
// backend must produce identical states under every normalization scheme.
func TestRandomCircuitsCrossValidate(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed uint64, nq, nops uint8) bool {
		n := 2 + int(nq%5) // 2..6 qubits
		ops := 5 + int(nops%40)
		c := randomCircuit(seed, n, ops)
		for _, norm := range []dd.Norm{dd.NormLeft, dd.NormL2, dd.NormL2Phase} {
			ddSim, err := NewDD(c, WithManagerOptions(dd.WithNormalization(norm)))
			if err != nil {
				return false
			}
			state, err := ddSim.Run()
			if err != nil {
				return false
			}
			vecSim, err := NewVector(c, 0)
			if err != nil {
				return false
			}
			dense, err := vecSim.Run()
			if err != nil {
				return false
			}
			got, err := ddSim.Manager().ToVector(state)
			if err != nil {
				return false
			}
			for i, want := range dense.Amplitudes() {
				if !got[i].ApproxEq(want, 1e-7) {
					t.Logf("seed=%d n=%d ops=%d norm=%v: amplitude %d: %v vs %v",
						seed, n, ops, norm, i, got[i], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRandomCircuitsFusionCrossValidate checks window fusion against
// stepwise application on random circuits.
func TestRandomCircuitsFusionCrossValidate(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	f := func(seed uint64, window uint8) bool {
		c := randomCircuit(seed, 4, 30)
		step, err := NewDD(c)
		if err != nil {
			return false
		}
		a, err := step.Run()
		if err != nil {
			return false
		}
		fused, err := NewDD(c, WithFusion(2+int(window%6)))
		if err != nil {
			return false
		}
		b, err := fused.Run()
		if err != nil {
			return false
		}
		va, _ := step.Manager().ToVector(a)
		vb, _ := fused.Manager().ToVector(b)
		for i := range va {
			if !va[i].ApproxEq(vb[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestOptimizePreservesSemantics optimizes random circuits and checks the
// final state is exactly unchanged.
func TestOptimizePreservesSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	f := func(seed uint64) bool {
		original := randomCircuit(seed, 4, 40)
		optimized := randomCircuit(seed, 4, 40) // identical construction
		circuit.Optimize(optimized)

		a, err := NewVector(original, 0)
		if err != nil {
			return false
		}
		sa, err := a.Run()
		if err != nil {
			return false
		}
		b, err := NewVector(optimized, 0)
		if err != nil {
			return false
		}
		sb, err := b.Run()
		if err != nil {
			return false
		}
		dev, err := sa.MaxDeviationFrom(sb)
		if err != nil {
			return false
		}
		if dev > 1e-12 {
			t.Logf("seed %d: optimization changed the state by %v", seed, dev)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestOptimizeShrinksRedundantCircuits drives an artificially redundant
// circuit through the optimizer and both backends.
func TestOptimizeShrinksRedundantCircuits(t *testing.T) {
	c := circuit.New(3, "redundant")
	for i := 0; i < 10; i++ {
		c.H(0).H(0).T(1).X(2).X(2)
	}
	before := c.NumOps()
	res := circuit.Optimize(c)
	if res.Total() == 0 || c.NumOps() >= before {
		t.Fatalf("no shrink: %d -> %d (%+v)", before, c.NumOps(), res)
	}
	// 10 T gates survive.
	if got := c.GateCounts()["t"]; got != 10 {
		t.Errorf("t count = %d, want 10", got)
	}
	crossValidate(t, c, dd.NormL2Phase)
}

// TestUncomputeViaAdjoint runs a random circuit forward, then applies the
// adjoint of every operator in reverse order; the state must return to
// |0...0⟩ exactly (up to tolerance). Exercises Adjoint, Mul, and the gate
// DDs together.
func TestUncomputeViaAdjoint(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	f := func(seed uint64) bool {
		c := randomCircuit(seed, 4, 25)
		s, err := NewDD(c)
		if err != nil {
			return false
		}
		state, err := s.Run()
		if err != nil {
			return false
		}
		m := s.Manager()
		// Collect operator DDs in order, then unapply.
		var ops []dd.MEdge
		for _, op := range c.Ops {
			if op.Kind == circuit.BarrierOp {
				continue
			}
			var e dd.MEdge
			switch op.Kind {
			case circuit.GateOp:
				e = m.GateDD(dd.GateMatrix(op.Gate.Matrix()), op.Target, ddControls(op.Controls)...)
			case circuit.PermutationOp:
				e, err = m.PermutationDD(op.Perm, op.PermWidth, ddControls(op.Controls)...)
				if err != nil {
					return false
				}
			}
			ops = append(ops, e)
		}
		for i := len(ops) - 1; i >= 0; i-- {
			state = m.Mul(m.Adjoint(ops[i]), state)
		}
		amp := m.Amplitude(state, 0)
		if amp.Abs() < 1-1e-6 {
			t.Logf("seed %d: |⟨0|U†U|0⟩| = %v", seed, amp.Abs())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
