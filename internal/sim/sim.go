// Package sim drives strong simulation: it advances a circuit to its final
// quantum state on one of two backends, the decision-diagram engine
// (internal/dd) or the dense state-vector engine (internal/statevec).
// Strong simulation is the precomputation stage of the paper's weak
// simulation flow (Fig. 2): the sampling algorithms in internal/core
// operate on the states produced here.
package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"weaksim/internal/circuit"
	"weaksim/internal/dd"
	"weaksim/internal/gate"
	"weaksim/internal/obs"
	"weaksim/internal/statevec"
)

// CtxCheckOps is the amortization interval for context cancellation checks
// in the Run loops: the context is consulted at most once every CtxCheckOps
// operations (and at least once per fused window), so the no-context hot
// path stays flat while a cancelled or expired context stops the run within
// CtxCheckOps operations.
const CtxCheckOps = 32

// interrupted wraps a context error with position information.
func interrupted(ctx context.Context, name string, pos int) error {
	return fmt.Errorf("sim: circuit %q interrupted at op %d: %w", name, pos, context.Cause(ctx))
}

// DDSimulator advances a circuit on the decision-diagram backend.
type DDSimulator struct {
	mgr        *dd.Manager
	circ       *circuit.Circuit
	state      dd.VEdge
	pos        int
	opCache    map[string]dd.MEdge
	roots      []dd.MEdge
	applied    int
	gcSweeps   int
	fusion     int
	trace      TraceFunc
	traceEvery int
	obs        *simObs // nil = telemetry disabled
}

// simObs caches the metric handles the simulator touches per operation.
// When nil (the default) the per-op telemetry cost is one pointer nil-check
// and zero clock reads; when attached, each applied operation costs two
// time.Now calls, a histogram observation, and a handful of atomic stores.
type simObs struct {
	reg *obs.Registry
	tr  *obs.Tracer

	opsApplied    *obs.Counter
	gcSweeps      *obs.Counter
	fusionWindows *obs.Counter
	fusionFused   *obs.Counter
	opLatency     *obs.Histogram
	windowOps     *obs.Histogram
}

func newSimObs(reg *obs.Registry, tr *obs.Tracer) *simObs {
	if reg == nil && tr == nil {
		return nil
	}
	return &simObs{
		reg:           reg,
		tr:            tr,
		opsApplied:    reg.Counter("sim_ops_applied_total"),
		gcSweeps:      reg.Counter("sim_gc_sweeps_total"),
		fusionWindows: reg.Counter("sim_fusion_windows_total"),
		fusionFused:   reg.Counter("sim_fusion_fused_ops_total"),
		opLatency:     reg.Histogram("sim_op_apply_ns", obs.OpLatencyBounds),
		windowOps:     reg.Histogram("sim_fusion_window_ops", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

// DDOption configures a DDSimulator.
type DDOption func(*ddConfig)

type ddConfig struct {
	mgrOpts    []dd.Option
	fusion     int
	trace      TraceFunc
	traceEvery int
	reg        *obs.Registry
	tracer     *obs.Tracer
}

// WithObservability attaches a metrics registry and/or structured tracer to
// the simulator and its dd.Manager. Either argument may be nil. With both
// nil the simulator's telemetry path is a single disabled nil-check per
// operation; the hot DD lookup paths keep their cheap local counters either
// way and are mirrored into the registry after every applied operation.
func WithObservability(reg *obs.Registry, tr *obs.Tracer) DDOption {
	return func(c *ddConfig) {
		c.reg = reg
		c.tracer = tr
	}
}

// WithManagerOptions forwards options to the underlying dd.Manager (e.g.
// normalization scheme, tolerance, cache sizes).
func WithManagerOptions(opts ...dd.Option) DDOption {
	return func(c *ddConfig) { c.mgrOpts = append(c.mgrOpts, opts...) }
}

// FuseAtBarriers selects barrier-delimited fusion: each segment between
// Barrier ops is composed into one operator. Generators that emit periodic
// circuits (Grover) place barriers on the period boundary, where the
// composed operator stays structured and compact.
const FuseAtBarriers = -1

// WithFusion composes consecutive operations into single operator DDs
// (matrix-matrix products) before applying them to the state — the
// matrix-matrix vs matrix-vector trade-off studied in the paper's
// reference [18]. A positive window fuses every `window` consecutive ops;
// FuseAtBarriers fuses barrier-delimited segments. Composed segments are
// memoized on the identity of their operations, so periodic circuits
// (Grover's identical iterations) pay for each distinct segment once and
// afterwards apply one cached operator per period. Fusion is opt-in, and
// segment boundaries matter: composing across a natural period boundary
// (or fusing scrambling circuits like supremacy at all) can grow the
// operator DD far beyond the sum of its factors.
func WithFusion(window int) DDOption {
	return func(c *ddConfig) { c.fusion = window }
}

// NewDD prepares a DD simulation of the circuit starting from |0...0⟩.
func NewDD(c *circuit.Circuit, opts ...DDOption) (*DDSimulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var cfg ddConfig
	for _, o := range opts {
		o(&cfg)
	}
	mgr := dd.New(c.NQubits, cfg.mgrOpts...)
	mgr.SetObserver(cfg.reg, cfg.tracer)
	// Even the |0...0⟩ chain costs one node per qubit, so an absurdly small
	// node budget can already fail here; surface that as ErrNodeBudget
	// rather than letting the budget abort escape as a panic.
	var zero dd.VEdge
	if err := mgr.Guarded(func() error {
		zero = mgr.ZeroState()
		return nil
	}); err != nil {
		return nil, fmt.Errorf("sim: circuit %q initial state: %w", c.Name, err)
	}
	return &DDSimulator{
		mgr:        mgr,
		circ:       c,
		state:      zero,
		opCache:    make(map[string]dd.MEdge),
		fusion:     cfg.fusion,
		trace:      cfg.trace,
		traceEvery: cfg.traceEvery,
		obs:        newSimObs(cfg.reg, cfg.tracer),
	}, nil
}

// Manager returns the decision-diagram manager owning the state.
func (s *DDSimulator) Manager() *dd.Manager { return s.mgr }

// State returns the current state DD.
func (s *DDSimulator) State() dd.VEdge { return s.state }

// SetState replaces the current state DD. Degradation planners use it to
// install a pruned (core.Approximate) state after a dd.ErrNodeBudget failure
// and resume the run from the not-yet-applied operation.
func (s *DDSimulator) SetState(e dd.VEdge) { s.state = e }

// Pos returns the index of the next operation to apply.
func (s *DDSimulator) Pos() int { return s.pos }

// Collect forces a garbage collection keeping the current state and all
// cached operator DDs alive. Exposed for degradation planners that shrink
// the state mid-run and want the freed nodes accounted against the budget
// immediately.
func (s *DDSimulator) Collect() { s.collect() }

// AppliedOps returns the number of operations applied so far.
func (s *DDSimulator) AppliedOps() int { return s.applied }

// GCSweeps returns how many garbage collections ran during simulation.
func (s *DDSimulator) GCSweeps() int { return s.gcSweeps }

// Run applies all remaining operations and returns the final state DD.
func (s *DDSimulator) Run() (dd.VEdge, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is checked
// every CtxCheckOps operations (every fused window under fusion), so a
// cancelled or expired context stops the simulation promptly without adding
// per-gate overhead. A context error leaves the simulator in a coherent
// state — the failing position is not consumed, so the run can be resumed
// with a fresh context.
func (s *DDSimulator) RunContext(ctx context.Context) (dd.VEdge, error) {
	if s.fusion > 1 || s.fusion == FuseAtBarriers {
		return s.runFused(ctx)
	}
	for i := 0; s.pos < len(s.circ.Ops); i++ {
		if i%CtxCheckOps == 0 && ctx.Err() != nil {
			return dd.VEdge{}, interrupted(ctx, s.circ.Name, s.pos)
		}
		if err := s.Step(); err != nil {
			return dd.VEdge{}, err
		}
	}
	return s.state, nil
}

// runFused applies the circuit window by window, composing each window of
// operations into one operator DD and memoizing composed windows by the
// identity of their operations.
func (s *DDSimulator) runFused(ctx context.Context) (dd.VEdge, error) {
	for s.pos < len(s.circ.Ops) {
		if ctx.Err() != nil {
			return dd.VEdge{}, interrupted(ctx, s.circ.Name, s.pos)
		}
		var end int
		if s.fusion == FuseAtBarriers {
			end = s.pos
			for end < len(s.circ.Ops) && s.circ.Ops[end].Kind != circuit.BarrierOp {
				end++
			}
			if end < len(s.circ.Ops) {
				end++ // include the barrier itself (a no-op) in the window
			}
		} else {
			end = s.pos + s.fusion
			if end > len(s.circ.Ops) {
				end = len(s.circ.Ops)
			}
		}
		window := s.circ.Ops[s.pos:end]
		var start time.Time
		if s.obs != nil {
			start = time.Now()
		}
		var key strings.Builder
		for _, op := range window {
			if op.Kind == circuit.BarrierOp {
				continue
			}
			key.WriteString(opKey(op))
			key.WriteByte('|')
		}
		applyWindow := func() error {
			composed, ok := s.opCache[key.String()]
			if !ok {
				composed = s.mgr.IdentityDD()
				built := false
				for _, op := range window {
					if op.Kind == circuit.BarrierOp {
						continue
					}
					opDD, err := s.operatorDD(op)
					if err != nil {
						return err
					}
					if !built {
						composed = opDD
						built = true
					} else {
						composed = s.mgr.MulMM(opDD, composed)
					}
				}
				s.opCache[key.String()] = composed
			}
			s.state = s.mgr.Mul(composed, s.state)
			return nil
		}
		if err := s.guardedApply(applyWindow); err != nil {
			return dd.VEdge{}, err
		}
		fused := 0
		for _, op := range window {
			if op.Kind != circuit.BarrierOp {
				s.applied++
				fused++
			}
		}
		s.pos = end
		var dur time.Duration
		if s.obs != nil {
			dur = time.Since(start)
			s.obs.fusionWindows.Inc()
			s.obs.fusionFused.Add(uint64(fused))
			s.obs.windowOps.Observe(float64(fused))
		}
		s.noteApplied(fused, dur)
		if s.mgr.ShouldGC() {
			s.collect()
		}
	}
	return s.state, nil
}

// noteApplied records per-op telemetry for n operations just applied in
// dur. Both drivers funnel through it — the stepwise loop (Step, which the
// governance planner also drives directly, so degraded single-step runs are
// just as observable) and the fused-window loop — and it fires the legacy
// TraceFunc whenever the applied count crosses a multiple of the configured
// interval. With no observer and no TraceFunc installed the cost is two
// nil-checks.
func (s *DDSimulator) noteApplied(n int, dur time.Duration) {
	if o := s.obs; o != nil {
		o.opsApplied.Add(uint64(n))
		o.opLatency.ObserveDuration(dur)
		s.mgr.PublishMetrics()
		if o.tr != nil {
			o.tr.EmitThrottled(s.applied, obs.PhaseApply, "op", map[string]any{
				"applied":    s.applied,
				"pos":        s.pos,
				"dur_ns":     dur.Nanoseconds(),
				"live_nodes": s.mgr.LiveNodes(),
			})
		}
	}
	if s.trace != nil && s.traceEvery > 0 && n > 0 {
		// Fire when (applied-n, applied] contains a multiple of the
		// interval, so fused windows report like n stepwise ops would.
		if s.applied/s.traceEvery > (s.applied-n)/s.traceEvery {
			s.trace(s.applied, s.mgr.TableStats())
		}
	}
}

// guardedApply runs apply under the Manager's node-budget guard, escalating
// through two relief steps before surfacing dd.ErrNodeBudget:
//
//  1. collect garbage, keeping the state and the operator cache alive;
//  2. drop the operator cache entirely — it is only a cache, recomputable —
//     and collect again keeping nothing but the state.
//
// Only a third overrun, with every reclaimable node gone, is genuine live
// growth and reported as MO. The simulator's state edge is untouched by a
// failed attempt, so callers may prune the state (core.Approximate) and
// resume.
func (s *DDSimulator) guardedApply(apply func() error) error {
	err := s.mgr.Guarded(apply)
	if errors.Is(err, dd.ErrNodeBudget) {
		s.collect()
		err = s.mgr.Guarded(apply)
	}
	if errors.Is(err, dd.ErrNodeBudget) {
		s.dropOpCache()
		err = s.mgr.Guarded(apply)
	}
	return err
}

// dropOpCache discards every cached operator DD and sweeps, keeping only
// the state alive. Subsequent operations rebuild their DDs on demand —
// slower, but it trades speed for fitting the node budget.
func (s *DDSimulator) dropOpCache() {
	clear(s.opCache)
	s.roots = s.roots[:0]
	s.mgr.GC([]dd.VEdge{s.state}, nil)
	s.gcSweeps++
	if s.obs != nil {
		s.obs.gcSweeps.Inc()
	}
}

// Step applies the next operation. It returns an error when the circuit is
// exhausted, an operation cannot be translated, or the node budget is
// exhausted. On failure the position is NOT advanced past the failing
// operation, so retry/resume semantics stay coherent: a caller that clears
// the failure condition (e.g. by pruning the state under budget pressure)
// can call Step again and re-attempt the same operation.
func (s *DDSimulator) Step() error {
	if s.pos >= len(s.circ.Ops) {
		return fmt.Errorf("sim: circuit %q exhausted", s.circ.Name)
	}
	op := s.circ.Ops[s.pos]
	if op.Kind == circuit.BarrierOp {
		s.pos++
		return nil
	}
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	err := s.guardedApply(func() error {
		opDD, err := s.operatorDD(op)
		if err != nil {
			return err
		}
		s.state = s.mgr.Mul(opDD, s.state)
		return nil
	})
	if err != nil {
		return fmt.Errorf("sim: circuit %q op %d: %w", s.circ.Name, s.pos, err)
	}
	s.pos++
	s.applied++
	var dur time.Duration
	if s.obs != nil {
		dur = time.Since(start)
	}
	s.noteApplied(1, dur)
	if s.mgr.ShouldGC() {
		s.collect()
	}
	return nil
}

// collect runs a mark-and-sweep GC keeping the state and all cached
// operator DDs alive.
func (s *DDSimulator) collect() {
	s.roots = s.roots[:0]
	for _, e := range s.opCache {
		s.roots = append(s.roots, e)
	}
	s.mgr.GC([]dd.VEdge{s.state}, s.roots)
	s.gcSweeps++
	if s.obs != nil {
		s.obs.gcSweeps.Inc()
	}
}

// operatorDD translates an operation into a matrix DD, memoizing repeated
// operators (Grover applies the same oracle and diffusion tens of thousands
// of times).
func (s *DDSimulator) operatorDD(op circuit.Op) (dd.MEdge, error) {
	key := opKey(op)
	if e, ok := s.opCache[key]; ok {
		return e, nil
	}
	var e dd.MEdge
	switch op.Kind {
	case circuit.GateOp:
		e = s.mgr.GateDD(dd.GateMatrix(op.Gate.Matrix()), op.Target, ddControls(op.Controls)...)
	case circuit.PermutationOp:
		var err error
		e, err = s.mgr.PermutationDD(op.Perm, op.PermWidth, ddControls(op.Controls)...)
		if err != nil {
			return dd.MEdge{}, err
		}
	default:
		return dd.MEdge{}, fmt.Errorf("sim: cannot translate op kind %d", int(op.Kind))
	}
	s.opCache[key] = e
	return e, nil
}

func ddControls(cs []gate.Control) []dd.Control {
	if len(cs) == 0 {
		return nil
	}
	out := make([]dd.Control, len(cs))
	for i, c := range cs {
		out[i] = dd.Control{Qubit: c.Qubit, Negative: c.Negative}
	}
	return out
}

// opKey builds a memoization key for an operation. Permutations are keyed
// by label and controls; generators must give distinct permutations
// distinct labels (all in this repository do).
func opKey(op circuit.Op) string {
	var b strings.Builder
	switch op.Kind {
	case circuit.GateOp:
		fmt.Fprintf(&b, "g:%d:%v:%d", int(op.Gate.Kind), op.Gate.Params, op.Target)
	case circuit.PermutationOp:
		fmt.Fprintf(&b, "p:%s:%d", op.Label, op.PermWidth)
		if op.Label == "" {
			// Unlabeled permutation: fall back to hashing the full map.
			fmt.Fprintf(&b, ":%v", op.Perm)
		}
	}
	for _, c := range op.Controls {
		fmt.Fprintf(&b, ":c%d,%t", c.Qubit, c.Negative)
	}
	return b.String()
}

// VectorSimulator advances a circuit on the dense state-vector backend.
type VectorSimulator struct {
	st   *statevec.State
	circ *circuit.Circuit
	pos  int
}

// NewVector prepares a dense simulation of the circuit starting from
// |0...0⟩. maxQubits bounds the allocation (0 = statevec.DefaultMaxQubits);
// exceeding it returns statevec.ErrMemoryOut, the paper's "MO" condition.
func NewVector(c *circuit.Circuit, maxQubits int) (*VectorSimulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	st, err := statevec.New(c.NQubits, maxQubits)
	if err != nil {
		return nil, err
	}
	return &VectorSimulator{st: st, circ: c}, nil
}

// State returns the dense state.
func (s *VectorSimulator) State() *statevec.State { return s.st }

// Run applies all remaining operations and returns the final dense state.
func (s *VectorSimulator) Run() (*statevec.State, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation, checked before every
// operation. Invalid operations (out-of-range targets or controls,
// malformed permutations) surface as wrapped statevec.ErrInvalidOp errors
// rather than panics; on any failure the position is not advanced past the
// failing operation.
func (s *VectorSimulator) RunContext(ctx context.Context) (*statevec.State, error) {
	for s.pos < len(s.circ.Ops) {
		// Dense gates are O(2^n) apiece, so an every-op check is free
		// relative to the work between checks.
		if ctx.Err() != nil {
			return nil, interrupted(ctx, s.circ.Name, s.pos)
		}
		op := s.circ.Ops[s.pos]
		var err error
		switch op.Kind {
		case circuit.BarrierOp:
		case circuit.GateOp:
			err = s.st.ApplyGate(op.Gate.Matrix(), op.Target, op.Controls...)
		case circuit.PermutationOp:
			err = s.st.ApplyPermutation(op.Perm, op.PermWidth, op.Controls...)
		default:
			err = fmt.Errorf("sim: cannot apply op kind %d", int(op.Kind))
		}
		if err != nil {
			return nil, fmt.Errorf("sim: circuit %q op %d: %w", s.circ.Name, s.pos, err)
		}
		s.pos++
	}
	return s.st, nil
}

// TraceFunc receives progress callbacks during Run: the index of the
// operation just applied and a snapshot of the manager's table statistics.
//
// TraceFunc predates the structured telemetry layer (internal/obs) and is
// kept as a compatibility shim; it now rides the same per-op notification
// path as the obs spans, so it fires identically from the stepwise loop,
// the fused-window loop, and single Step calls. New code should prefer
// WithObservability.
type TraceFunc func(opIndex int, stats dd.Stats)

// WithTrace installs a progress callback invoked after every `every`
// operations. Used by long-running harnesses to report DD growth.
func WithTrace(every int, fn TraceFunc) DDOption {
	return func(c *ddConfig) {
		c.traceEvery = every
		c.trace = fn
	}
}
