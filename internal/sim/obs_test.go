package sim

import (
	"testing"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/dd"
	"weaksim/internal/obs"
)

// TestSimTelemetryCounters pins the exact op accounting on a deterministic
// circuit: sim_ops_applied_total equals the non-barrier op count, the apply
// latency histogram saw one observation per applied batch, and the mirrored
// dd_* counters match the manager's own statistics.
func TestSimTelemetryCounters(t *testing.T) {
	c, err := algo.Generate("qft_6")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var sink obs.CollectSink
	tr := obs.NewTracer(&sink, obs.WithEvery(4))
	s, err := NewDD(c, WithObservability(reg, tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	wantOps := uint64(c.NumOps())
	if got := snap.Counters["sim_ops_applied_total"]; got != wantOps {
		t.Fatalf("sim_ops_applied_total = %d, want %d", got, wantOps)
	}
	// Without fusion each applied op is one histogram observation.
	if got := reg.Histogram("sim_op_apply_ns", nil).Count(); got != wantOps {
		t.Fatalf("sim_op_apply_ns count = %d, want %d", got, wantOps)
	}
	// Mirrored counters must agree with the manager's own stats.
	st := s.Manager().TableStats()
	mirror := map[string]uint64{
		"dd_unique_v_hits_total":    st.VHits,
		"dd_unique_v_misses_total":  st.VMisses,
		"dd_unique_m_hits_total":    st.MHits,
		"dd_unique_m_misses_total":  st.MMisses,
		"dd_cache_mul_hits_total":   st.MulHits,
		"dd_cache_mul_misses_total": st.MulMisses,
		"dd_gc_runs_total":          st.GCRuns,
	}
	for name, want := range mirror {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (manager stats)", name, got, want)
		}
	}
	if got := snap.Gauges["dd_live_nodes"]; got != int64(s.Manager().LiveNodes()) {
		t.Errorf("dd_live_nodes gauge = %d, want %d", got, s.Manager().LiveNodes())
	}
	if got := snap.Gauges["dd_peak_nodes"]; got != int64(s.Manager().PeakNodes()) {
		t.Errorf("dd_peak_nodes gauge = %d, want %d", got, s.Manager().PeakNodes())
	}

	// Throttled apply events: one per 4 applied ops.
	var applyEvents int
	for _, e := range sink.Events() {
		if e.Kind == "event" && e.Phase == obs.PhaseApply && e.Name == "op" {
			applyEvents++
		}
	}
	if want := int(wantOps) / 4; applyEvents != want {
		t.Errorf("apply trace events = %d, want %d (every=4 over %d ops)", applyEvents, want, wantOps)
	}
}

// TestStepTelemetryParity drives the circuit one Step at a time — the
// governance single-step path — and checks it produces the same op counter
// as a full Run. Satellite: Step must emit per-op telemetry like the loop.
func TestStepTelemetryParity(t *testing.T) {
	c, err := algo.Generate("qft_6")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s, err := NewDD(c, WithObservability(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	for s.Pos() < len(c.Ops) {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	wantOps := uint64(c.NumOps())
	if got := reg.Counter("sim_ops_applied_total").Value(); got != wantOps {
		t.Fatalf("step-driven sim_ops_applied_total = %d, want %d", got, wantOps)
	}
	if got := reg.Histogram("sim_op_apply_ns", nil).Count(); got != wantOps {
		t.Fatalf("step-driven sim_op_apply_ns count = %d, want %d", got, wantOps)
	}
}

// TestFusedTelemetry checks the fused run path: windows counted, fused op
// totals matching the circuit, and window-size histogram populated.
func TestFusedTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	c := circuit.New(3, "fusewin")
	for i := 0; i < 12; i++ {
		c.H(i % 3)
	}
	s, err := NewDD(c, WithFusion(4), WithObservability(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim_fusion_windows_total"]; got != 3 {
		t.Fatalf("sim_fusion_windows_total = %d, want 3", got)
	}
	if got := snap.Counters["sim_fusion_fused_ops_total"]; got != 12 {
		t.Fatalf("sim_fusion_fused_ops_total = %d, want 12", got)
	}
	if got := snap.Counters["sim_ops_applied_total"]; got != 12 {
		t.Fatalf("sim_ops_applied_total = %d, want 12", got)
	}
	if got := reg.Histogram("sim_fusion_window_ops", nil).Count(); got != 3 {
		t.Fatalf("sim_fusion_window_ops count = %d, want 3", got)
	}
}

// TestLegacyTraceStillFires ensures the pre-obs TraceFunc shim keeps firing
// now that it rides the noteApplied path, including under fusion where a
// window can jump the applied counter past several multiples at once.
func TestLegacyTraceStillFires(t *testing.T) {
	c, err := algo.Generate("qft_6")
	if err != nil {
		t.Fatal(err)
	}
	for _, fusion := range []int{1, 5} {
		var calls int
		s, err := NewDD(c, WithFusion(fusion), WithTrace(3, func(opIndex int, _ dd.Stats) {
			calls++
			if opIndex <= 0 {
				t.Errorf("trace fired with opIndex %d", opIndex)
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Errorf("fusion=%d: legacy trace never fired", fusion)
		}
	}
}
