package sim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/dd"
	"weaksim/internal/gate"
)

// TestSupremacyUnderTinyNodeBudget is the acceptance check from the paper's
// MO story: a supremacy circuit under a node budget far below its ~62k-node
// final state must fail with the typed ErrNodeBudget — not a panic, not
// unbounded growth.
func TestSupremacyUnderTinyNodeBudget(t *testing.T) {
	c, err := algo.Generate("supremacy_4x4_10")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDD(c, WithManagerOptions(dd.WithNodeBudget(500)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	if !errors.Is(err, dd.ErrNodeBudget) {
		t.Fatalf("supremacy under 500-node budget: err = %v, want ErrNodeBudget", err)
	}
	if s.Manager().PeakNodes() == 0 {
		t.Error("peak node count not recorded on the failed run")
	}
}

// TestBudgetGCRetry: a budget generous enough for the final state but tight
// against intermediate garbage must succeed — the simulator GCs and retries
// before surfacing MO.
func TestBudgetGCRetry(t *testing.T) {
	c, err := algo.Generate("qft_12")
	if err != nil {
		t.Fatal(err)
	}
	// Unbudgeted baseline establishes the final-state node count.
	free, _ := NewDD(c)
	st, err := free.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := free.Manager().NodeCount(st)

	s, err := NewDD(c, WithManagerOptions(dd.WithNodeBudget(4*final+64)))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Run()
	if err != nil {
		t.Fatalf("budgeted run failed despite GC headroom: %v", err)
	}
	if got := s.Manager().NodeCount(st2); got != final {
		t.Errorf("budgeted run final state has %d nodes, unbudgeted %d", got, final)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	c, err := algo.Generate("qft_16")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	s, _ := NewDD(c)
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("DD RunContext with cancelled ctx: %v, want context.Canceled", err)
	}
	if s.Pos() >= CtxCheckOps {
		t.Errorf("DD simulator advanced %d ops past a cancelled context (check interval %d)",
			s.Pos(), CtxCheckOps)
	}

	v, _ := NewVector(c, 0)
	if _, err := v.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("vector RunContext with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	// grover_16 takes seconds; a microsecond deadline must stop it quickly
	// with DeadlineExceeded.
	c, err := algo.Generate("grover_16")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	s, _ := NewDD(c)
	start := time.Now()
	_, err = s.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext past deadline: %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancellation took %v — amortized check not working", d)
	}
}

// TestStepDoesNotAdvancePastFailure: a failing op must leave pos pointing at
// the failed op so a caller can prune and resume exactly there.
func TestStepDoesNotAdvancePastFailure(t *testing.T) {
	c := circuit.New(4, "stepfail")
	c.H(0).H(1).H(2).H(3)
	c.Apply(gate.TGate, 0, gate.Pos(1))
	// Enough budget for the |0000⟩ chain, far too little for any gate DD.
	s, err := NewDD(c, WithManagerOptions(dd.WithNodeBudget(5)))
	if err != nil {
		t.Fatal(err)
	}
	var failedAt int
	for {
		pos := s.Pos()
		if err := s.Step(); err != nil {
			if !errors.Is(err, dd.ErrNodeBudget) {
				t.Fatalf("unexpected step error: %v", err)
			}
			failedAt = pos
			break
		}
		if s.Pos() != pos+1 {
			t.Fatalf("successful Step advanced pos %d → %d", pos, s.Pos())
		}
	}
	if s.Pos() != failedAt {
		t.Errorf("failed Step advanced pos to %d, want %d (the failing op)", s.Pos(), failedAt)
	}
	// Lifting the budget lets the run resume from the failed op and finish.
	s.Manager().SetNodeBudget(0)
	if _, err := s.Run(); err != nil {
		t.Fatalf("resume after lifting budget: %v", err)
	}
	if s.Pos() != c.NumOps() {
		t.Errorf("resumed run stopped at op %d of %d", s.Pos(), c.NumOps())
	}
}

// TestRandomCircuitsBudgetedNeverPanic is the robustness property from the
// issue: random circuits through both backends under tight budgets either
// agree (when both complete) or fail with a typed resource error — never a
// panic, never a silent wrong answer.
func TestRandomCircuitsBudgetedNeverPanic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed uint64, nq, nops, budget uint8) bool {
		n := 2 + int(nq%5)               // 2..6 qubits
		ops := 5 + int(nops%40)          // 5..44 ops
		nodeBudget := 2 + int(budget%30) // 2..31 nodes: often too tight
		c := randomCircuit(seed, n, ops)

		ddSim, derr := NewDD(c, WithManagerOptions(dd.WithNodeBudget(nodeBudget)))
		if derr != nil {
			// A budget below the qubit count can already fail at the
			// initial state; that must still be the typed error.
			return errors.Is(derr, dd.ErrNodeBudget)
		}
		var st dd.VEdge
		st, derr = ddSim.Run()
		if derr != nil && !errors.Is(derr, dd.ErrNodeBudget) {
			t.Logf("seed=%d: DD failed with non-budget error: %v", seed, derr)
			return false
		}

		vecSim, err := NewVector(c, 0)
		if err != nil {
			return false
		}
		dense, verr := vecSim.Run()
		if verr != nil {
			t.Logf("seed=%d: vector backend failed: %v", seed, verr)
			return false
		}
		if derr != nil {
			return true // typed budget failure is an acceptable outcome
		}
		got, err := ddSim.Manager().ToVector(st)
		if err != nil {
			return false
		}
		for i, want := range dense.Amplitudes() {
			if !got[i].ApproxEq(want, 1e-7) {
				t.Logf("seed=%d n=%d ops=%d budget=%d: amplitude %d: %v vs %v",
					seed, n, ops, nodeBudget, i, got[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
