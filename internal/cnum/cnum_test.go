package cnum

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestArithmetic(t *testing.T) {
	a := New(1, 2)
	b := New(3, -4)

	if got := a.Add(b); got != New(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	// (1+2i)(3-4i) = 3 -4i +6i +8 = 11+2i
	if got := a.Mul(b); got != New(11, 2) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Neg(); got != New(-1, -2) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Conj(); got != New(1, -2) {
		t.Errorf("Conj = %v", got)
	}
	if got := a.Scale(2); got != New(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Abs2(); got != 5 {
		t.Errorf("Abs2 = %v", got)
	}
	if got := a.Abs(); !approx(got, math.Sqrt(5), 1e-15) {
		t.Errorf("Abs = %v", got)
	}
}

func TestDivMatchesComplex128(t *testing.T) {
	a := New(1.5, -2.25)
	b := New(-0.5, 3)
	got := a.Div(b)
	want := FromComplex128(a.ToComplex128() / b.ToComplex128())
	if !got.ApproxEq(want, 1e-14) {
		t.Errorf("Div = %v, want %v", got, want)
	}
}

func TestPolar(t *testing.T) {
	c := FromPolar(2, math.Pi/3)
	if !approx(c.Abs(), 2, 1e-14) {
		t.Errorf("Abs = %v", c.Abs())
	}
	if !approx(c.Phase(), math.Pi/3, 1e-14) {
		t.Errorf("Phase = %v", c.Phase())
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		c    Complex
		want string
	}{
		{New(1, 0), "1"},
		{New(0, 1), "1i"},
		{New(0, -0.5), "-0.5i"},
		{New(1, 1), "1+1i"},
		{New(1, -1), "1-1i"},
		{Zero, "0"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.c, got, tc.want)
		}
	}
}

// Property: multiplication agrees with complex128 arithmetic.
func TestMulMatchesComplex128Property(t *testing.T) {
	f := func(ar, ai, br, bi float64) bool {
		// Bound magnitudes so products stay finite; overflow semantics are
		// not what this property is about.
		ar, ai = math.Mod(ar, 1e100), math.Mod(ai, 1e100)
		br, bi = math.Mod(br, 1e100), math.Mod(bi, 1e100)
		if math.IsNaN(ar + ai + br + bi) {
			return true
		}
		a, b := New(ar, ai), New(br, bi)
		got := a.Mul(b)
		want := FromComplex128(a.ToComplex128() * b.ToComplex128())
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a·b|² == |a|²·|b|² up to rounding.
func TestAbs2MultiplicativeProperty(t *testing.T) {
	f := func(ar, ai, br, bi float64) bool {
		ar, ai = math.Mod(ar, 100), math.Mod(ai, 100)
		br, bi = math.Mod(br, 100), math.Mod(bi, 100)
		if math.IsNaN(ar + ai + br + bi) {
			return true
		}
		a, b := New(ar, ai), New(br, bi)
		lhs := a.Mul(b).Abs2()
		rhs := a.Abs2() * b.Abs2()
		return approx(lhs, rhs, 1e-9*(1+rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableInterning(t *testing.T) {
	tab := NewTableTol(1e-6)
	// The quantization grid is tol/100: values within a grid step merge.
	a := tab.LookupFloat(0.5)
	b := tab.LookupFloat(0.5 + 1e-12)
	if a != b {
		t.Errorf("values within a grid step interned differently: %v vs %v", a, b)
	}
	c := tab.LookupFloat(0.5 + 1e-3)
	if a == c {
		t.Errorf("clearly distinct values merged")
	}
	if got := tab.LookupFloat(1e-9); got != 0 {
		t.Errorf("near-zero not flushed to zero: %v", got)
	}
	if got := tab.LookupFloat(-1e-9); got != 0 {
		t.Errorf("negative near-zero not flushed to zero: %v", got)
	}
}

func TestTableGridIsFixed(t *testing.T) {
	// The canonical representative is a pure function of the value — the
	// grid never drifts with insertion order. This invariant is what keeps
	// node sharing exact over tens of thousands of gate applications.
	t1 := NewTableTol(1e-6)
	t2 := NewTableTol(1e-6)
	t1.LookupFloat(0.4999997) // seed t1 with a nearby value first
	a := t1.LookupFloat(0.5)
	b := t2.LookupFloat(0.5)
	if a != b {
		t.Errorf("representative depends on insertion history: %v vs %v", a, b)
	}
	if math.Abs(a-0.5) > 1e-6/2 {
		t.Errorf("representative %v too far from 0.5", a)
	}
}

func TestTableDeterministicAcrossEqualInputs(t *testing.T) {
	// Equal canonical inputs must produce equal canonical outputs through
	// arithmetic — the sharing guarantee of the fixed grid.
	tab := NewTable()
	x := tab.LookupFloat(1 / math.Sqrt2)
	y := tab.LookupFloat(1 / math.Sqrt2)
	if x != y {
		t.Fatal("same value interned differently")
	}
	p1 := tab.LookupFloat(x * x)
	p2 := tab.LookupFloat(y * y)
	if p1 != p2 {
		t.Errorf("products of equal representatives interned differently: %v vs %v", p1, p2)
	}
}

func TestTableComplexAndStats(t *testing.T) {
	tab := NewTable()
	c1 := tab.Lookup(New(0.25, -0.75))
	c2 := tab.Lookup(New(0.25+1e-14, -0.75-1e-14))
	if c1 != c2 {
		t.Errorf("complex interning failed: %v vs %v", c1, c2)
	}
	hits, misses := tab.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("expected both hits and misses, got %d/%d", hits, misses)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2 distinct components", tab.Len())
	}
	tab.Clear()
	if tab.Len() != 0 {
		t.Errorf("Len after Clear = %d", tab.Len())
	}
}

// Property: interning is idempotent and stays within tolerance.
func TestTableIdempotentProperty(t *testing.T) {
	tab := NewTable()
	f := func(v float64) bool {
		v = math.Mod(v, 10)
		if math.IsNaN(v) {
			return true
		}
		a := tab.LookupFloat(v)
		b := tab.LookupFloat(a)
		return a == b && math.Abs(a-v) <= 2*tab.Tolerance()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTableTolPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive tolerance")
		}
	}()
	NewTableTol(0)
}
