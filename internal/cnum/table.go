package cnum

import "math"

// DefaultTolerance is the zero floor used when a Table is created with
// NewTable (the quantization grid is 100 times finer; see Table). It
// matches the magnitude used by decision-diagram packages for quantum
// simulation: small enough not to merge distinct amplitudes of realistic
// circuits, large enough to absorb accumulated rounding error.
const DefaultTolerance = 1e-10

// Table interns float64 values (and, through Lookup, Complex values) so
// that numbers that are "equal up to floating-point noise" are represented
// by the exact same bits. Decision-diagram unique tables rely on this: node
// hashing uses Go map keys built from edge weights, which requires
// bit-exact equality.
//
// Values are canonicalized by deterministic rounding to a fixed relative
// grid (spacing tol/100 at the value's scale), with |v| <= tol flushed to
// exactly zero. A fixed grid — rather than first-seen representatives — is
// essential for long simulations: with drifting representatives each
// interning injects up to tol of noise relative to the previous
// representative, and over tens of thousands of gate applications (e.g.
// Grover's iterations) the per-value random walk spreads structurally
// identical subtrees across many representatives, destroying node sharing
// and blowing the diagram up. With a fixed grid, equal grid inputs flow
// through identical floating-point operations to equal grid outputs, so
// sharing is exact no matter how long the circuit runs. The price is that
// two nearly-equal values can straddle a grid boundary and round apart;
// this affects a tiny fraction of lookups and at worst duplicates a node,
// never corrupts a value.
//
// The Table also tracks the distinct representatives seen, for the
// instrumentation counters exposed by the dd.Manager.
type Table struct {
	tol     float64 // zero floor: |v| <= tol canonicalizes to 0
	invGrid float64 // reciprocal of the mantissa grid spacing (tol/gridRatio)
	grid    float64
	seen    map[int64]struct{}
	hits    uint64
	misses  uint64
}

// gridRatio separates the two scales of the table: values are quantized on
// a relative grid gridRatio times finer than the zero floor. The gap
// matters: quantization noise must sit far below the zero floor, or a
// mathematically-zero amplitude can survive the flush, become a leftmost
// normalization divisor, and blow up downstream weights.
const gridRatio = 100

// NewTable returns a Table with the default tolerance.
func NewTable() *Table { return NewTableTol(DefaultTolerance) }

// NewTableTol returns a Table with zero floor tol and mantissa grid
// spacing tol/100. tol must be positive.
func NewTableTol(tol float64) *Table {
	if tol <= 0 {
		panic("cnum: tolerance must be positive")
	}
	grid := tol / gridRatio
	return &Table{tol: tol, grid: grid, invGrid: 1 / grid, seen: make(map[int64]struct{}, 1024)}
}

// Tolerance returns the zero floor of the table.
func (t *Table) Tolerance() float64 { return t.tol }

// Len returns the number of distinct float components interned so far.
func (t *Table) Len() int { return len(t.seen) }

// Stats returns the number of lookups that mapped to an already-seen
// representative (hits) and to a new one (misses).
func (t *Table) Stats() (hits, misses uint64) { return t.hits, t.misses }

// LookupFloat returns the canonical representative of v: the nearest point
// on a relative grid whose spacing is tol/100 at the scale of v, i.e. the
// mantissa is rounded to tol/100 granularity. Relative rounding keeps the precision of
// both the large edge-weight ratios produced by leftmost normalization and
// the small residual amplitudes of amplitude-amplification circuits.
// Values within tol of zero canonicalize to exactly 0, so sign-of-zero
// noise and tiny residues never survive into edge weights.
func (t *Table) LookupFloat(v float64) float64 {
	if math.Abs(v) <= t.tol {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp with |frac| in [0.5, 1)
	key := int64(math.Round(frac * t.invGrid))
	// Fold the exponent into the bookkeeping key; the exponent range of
	// finite float64 fits comfortably in 12 bits.
	seenKey := key<<12 ^ int64(exp+2048)
	if _, ok := t.seen[seenKey]; ok {
		t.hits++
	} else {
		t.misses++
		// The set exists for diagnostics only — the canonical value is a
		// pure function of the grid — so cap it: long simulations must not
		// leak memory through bookkeeping. Len saturates at the cap.
		if len(t.seen) < maxSeenEntries {
			t.seen[seenKey] = struct{}{}
		}
	}
	return math.Ldexp(float64(key)*t.grid, exp)
}

// maxSeenEntries bounds the diagnostics set of distinct representatives.
const maxSeenEntries = 1 << 22

// Lookup returns the canonical representative of c, interning each
// component independently.
func (t *Table) Lookup(c Complex) Complex {
	return Complex{t.LookupFloat(c.Re), t.LookupFloat(c.Im)}
}

// Clear drops the bookkeeping of seen representatives. Canonicalization is
// a pure function of the grid, so clearing never changes Lookup results.
func (t *Table) Clear() {
	t.seen = make(map[int64]struct{}, 1024)
	t.hits, t.misses = 0, 0
}
