// Package cnum implements complex arithmetic on explicit structs together
// with a tolerance-based value-interning table.
//
// Decision-diagram packages hash nodes by their edge weights, so two weights
// that are "equal up to floating-point noise" must compare as identical Go
// values. The Table type canonicalizes every weight that enters a decision
// diagram, following the approach of Zulehner, Hillmich, and Wille,
// "How to efficiently handle complex values?" (ICCAD 2019) — reference [24]
// of the reproduced paper.
package cnum

import (
	"fmt"
	"math"
)

// Complex is a complex number stored as an explicit pair of float64
// components. Using a struct (rather than the built-in complex128) keeps the
// representation transparent for hashing and interning and mirrors the
// implementation the paper builds on.
type Complex struct {
	Re, Im float64
}

// Common constants. They are variables only because Go does not allow
// struct-typed constants; do not mutate them.
var (
	Zero     = Complex{0, 0}
	One      = Complex{1, 0}
	I        = Complex{0, 1}
	MinusOne = Complex{-1, 0}
	// SqrtHalf is 1/sqrt(2), the ubiquitous Hadamard factor.
	SqrtHalf = Complex{math.Sqrt2 / 2, 0}
)

// New returns the complex number re + im·i.
func New(re, im float64) Complex { return Complex{re, im} }

// FromPolar returns the complex number r·e^{iθ}.
func FromPolar(r, theta float64) Complex {
	return Complex{r * math.Cos(theta), r * math.Sin(theta)}
}

// Add returns c + d.
func (c Complex) Add(d Complex) Complex { return Complex{c.Re + d.Re, c.Im + d.Im} }

// Sub returns c - d.
func (c Complex) Sub(d Complex) Complex { return Complex{c.Re - d.Re, c.Im - d.Im} }

// Mul returns c · d.
func (c Complex) Mul(d Complex) Complex {
	return Complex{c.Re*d.Re - c.Im*d.Im, c.Re*d.Im + c.Im*d.Re}
}

// Div returns c / d. Division by an exact zero yields (NaN, NaN), matching
// the semantics of the built-in complex128 division.
func (c Complex) Div(d Complex) Complex {
	den := d.Re*d.Re + d.Im*d.Im
	return Complex{(c.Re*d.Re + c.Im*d.Im) / den, (c.Im*d.Re - c.Re*d.Im) / den}
}

// Neg returns -c.
func (c Complex) Neg() Complex { return Complex{-c.Re, -c.Im} }

// Conj returns the complex conjugate of c.
func (c Complex) Conj() Complex { return Complex{c.Re, -c.Im} }

// Scale returns s·c for a real scalar s.
func (c Complex) Scale(s float64) Complex { return Complex{s * c.Re, s * c.Im} }

// Abs2 returns |c|², the squared magnitude. This is the probability weight
// of an amplitude and is used throughout the sampling code.
func (c Complex) Abs2() float64 { return c.Re*c.Re + c.Im*c.Im }

// Abs returns |c|.
func (c Complex) Abs() float64 { return math.Hypot(c.Re, c.Im) }

// Phase returns the argument of c in (-π, π].
func (c Complex) Phase() float64 { return math.Atan2(c.Im, c.Re) }

// IsZero reports whether both components are exactly zero.
func (c Complex) IsZero() bool { return c.Re == 0 && c.Im == 0 }

// ApproxZero reports whether |c| is within tol of zero, component-wise.
func (c Complex) ApproxZero(tol float64) bool {
	return math.Abs(c.Re) <= tol && math.Abs(c.Im) <= tol
}

// ApproxEq reports whether c and d agree within tol, component-wise.
func (c Complex) ApproxEq(d Complex, tol float64) bool {
	return math.Abs(c.Re-d.Re) <= tol && math.Abs(c.Im-d.Im) <= tol
}

// ToComplex128 converts to the built-in complex type.
func (c Complex) ToComplex128() complex128 { return complex(c.Re, c.Im) }

// FromComplex128 converts from the built-in complex type.
func FromComplex128(z complex128) Complex { return Complex{real(z), imag(z)} }

// String renders c in a compact a+bi form.
func (c Complex) String() string {
	switch {
	case c.Im == 0:
		return fmt.Sprintf("%g", c.Re)
	case c.Re == 0:
		return fmt.Sprintf("%gi", c.Im)
	case c.Im < 0:
		return fmt.Sprintf("%g-%gi", c.Re, -c.Im)
	default:
		return fmt.Sprintf("%g+%gi", c.Re, c.Im)
	}
}
