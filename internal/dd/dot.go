package dd

import (
	"fmt"
	"io"
	"sort"

	"weaksim/internal/cnum"
)

// WriteDOT renders a vector decision diagram in Graphviz DOT format, in the
// style of the paper's Fig. 4: one oval per node labeled with its qubit,
// solid edges for 1-successors and dashed for 0-successors, edge weights as
// labels (omitted when exactly 1), and a box terminal. Render with
// `dot -Tsvg`.
func (m *Manager) WriteDOT(w io.Writer, e VEdge, title string) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "digraph %q {\n", title)
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [shape=oval];\n")
	fmt.Fprintf(bw, "  root [shape=point];\n")

	if e.IsZero() {
		fmt.Fprintf(bw, "  zero [shape=box, label=\"0\"];\n  root -> zero;\n}\n")
		return bw.err
	}

	ids := map[*VNode]int{}
	var order []*VNode
	var collect func(n *VNode)
	collect = func(n *VNode) {
		if n == nil {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		ids[n] = len(ids)
		order = append(order, n)
		collect(n.E[0].N)
		collect(n.E[1].N)
	}
	collect(e.N)

	fmt.Fprintf(bw, "  terminal [shape=box, label=\"1\"];\n")
	fmt.Fprintf(bw, "  root -> n%d [label=%q];\n", ids[e.N], weightLabel(e))

	// Group nodes of one level on one rank, root level on top.
	byLevel := map[int][]*VNode{}
	for _, n := range order {
		byLevel[n.V] = append(byLevel[n.V], n)
	}
	levels := make([]int, 0, len(byLevel))
	for v := range byLevel {
		levels = append(levels, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	for _, v := range levels {
		fmt.Fprintf(bw, "  { rank=same;")
		for _, n := range byLevel[v] {
			fmt.Fprintf(bw, " n%d;", ids[n])
		}
		fmt.Fprintf(bw, " }\n")
	}

	for _, n := range order {
		fmt.Fprintf(bw, "  n%d [label=\"q%d\"];\n", ids[n], n.V)
		for i := 0; i < 2; i++ {
			edge := n.E[i]
			style := "dashed"
			if i == 1 {
				style = "solid"
			}
			if edge.IsZero() {
				continue
			}
			target := "terminal"
			if edge.N != nil {
				target = fmt.Sprintf("n%d", ids[edge.N])
			}
			fmt.Fprintf(bw, "  n%d -> %s [style=%s, label=%q];\n",
				ids[n], target, style, weightLabel(edge))
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.err
}

func weightLabel(e VEdge) string {
	if e.W == cnum.One {
		return ""
	}
	return e.W.String()
}

// errWriter latches the first write error so the render loop stays simple.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// WriteMDOT renders a matrix decision diagram in Graphviz DOT format: four
// outgoing edges per node labeled by their (row,col) quadrant.
func (m *Manager) WriteMDOT(w io.Writer, e MEdge, title string) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "digraph %q {\n", title)
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [shape=oval];\n")
	fmt.Fprintf(bw, "  root [shape=point];\n")
	if e.IsZero() {
		fmt.Fprintf(bw, "  zero [shape=box, label=\"0\"];\n  root -> zero;\n}\n")
		return bw.err
	}

	ids := map[*MNode]int{}
	var order []*MNode
	var collect func(n *MNode)
	collect = func(n *MNode) {
		if n == nil {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		ids[n] = len(ids)
		order = append(order, n)
		for i := 0; i < 4; i++ {
			collect(n.E[i].N)
		}
	}
	collect(e.N)

	fmt.Fprintf(bw, "  terminal [shape=box, label=\"1\"];\n")
	fmt.Fprintf(bw, "  root -> m%d [label=%q];\n", ids[e.N], weightLabel(VEdge{W: e.W}))
	for _, n := range order {
		fmt.Fprintf(bw, "  m%d [label=\"q%d\"];\n", ids[n], n.V)
		for i := 0; i < 4; i++ {
			edge := n.E[i]
			if edge.IsZero() {
				continue
			}
			target := "terminal"
			if edge.N != nil {
				target = fmt.Sprintf("m%d", ids[edge.N])
			}
			label := fmt.Sprintf("%d%d", i/2, i%2)
			if wl := weightLabel(VEdge{W: edge.W}); wl != "" {
				label += " " + wl
			}
			fmt.Fprintf(bw, "  m%d -> %s [label=%q];\n", ids[n], target, label)
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.err
}
