package dd

import (
	"math/rand/v2"
	"testing"

	"weaksim/internal/cnum"
)

func TestTableStatsCounters(t *testing.T) {
	m := New(3)
	r := rand.New(rand.NewPCG(101, 102))
	vec := randomState(r, 3)
	st, _ := m.FromVector(vec)
	op := m.GateDD(GateMatrix(hMatrix), 1)
	m.Mul(op, st)
	m.Mul(op, st) // second application hits the compute cache

	s := m.TableStats()
	if s.VNodes == 0 || s.MNodes == 0 {
		t.Errorf("expected populated unique tables: %+v", s)
	}
	if s.MulHits == 0 {
		t.Error("repeated Mul produced no cache hits")
	}
	if s.VMisses == 0 {
		t.Error("no vector-node misses recorded")
	}
	if s.ComplexTableEntries == 0 {
		t.Error("no complex representatives recorded")
	}
}

func TestCacheFlushKeepsCorrectness(t *testing.T) {
	// A pathologically small compute cache forces constant flushes; results
	// must not change.
	small := New(4, WithCacheSize(2))
	big := New(4)
	r := rand.New(rand.NewPCG(103, 104))
	vec := randomState(r, 4)
	sSmall, _ := small.FromVector(vec)
	sBig, _ := big.FromVector(vec)
	for i := 0; i < 10; i++ {
		tq := i % 4
		opS := small.GateDD(GateMatrix(hMatrix), tq, Pos((tq+1)%4))
		opB := big.GateDD(GateMatrix(hMatrix), tq, Pos((tq+1)%4))
		sSmall = small.Mul(opS, sSmall)
		sBig = big.Mul(opB, sBig)
	}
	a, _ := small.ToVector(sSmall)
	b, _ := big.ToVector(sBig)
	if !vecApproxEq(a, b, 1e-9) {
		t.Error("tiny compute cache changed the result")
	}
}

func TestShouldGCThreshold(t *testing.T) {
	m := New(4, WithGCThreshold(4))
	if m.ShouldGC() {
		t.Error("fresh manager should not demand GC")
	}
	r := rand.New(rand.NewPCG(105, 106))
	m.FromVector(randomState(r, 4))
	if !m.ShouldGC() {
		t.Error("expected ShouldGC with a threshold of 4 nodes")
	}
}

func TestIdentityFlagDetection(t *testing.T) {
	m := New(4)
	id := m.IdentityDD()
	if !id.N.IsIdentity() {
		t.Error("IdentityDD root not flagged as identity")
	}
	h := m.GateDD(GateMatrix(hMatrix), 2)
	if h.N.IsIdentity() {
		t.Error("H gate flagged as identity")
	}
	// The sub-identity below the target must be flagged: follow the
	// diagonal down past the target level.
	n := h.N
	for n.V > 2 {
		n = n.E[0].N
	}
	// n is the target-level node; its children cover levels below the
	// target and are identities.
	if sub := n.E[0].N; sub != nil && !sub.IsIdentity() {
		t.Error("identity substructure below gate target not flagged")
	}
	// A scaled identity (global phase) is not the identity.
	ph := m.GateDD(GateMatrix([2][2]cnum.Complex{
		{cnum.FromPolar(1, 0.3), cnum.Zero},
		{cnum.Zero, cnum.FromPolar(1, 0.3)},
	}), 0)
	// The node below the root weight is structurally I (the phase went to
	// the top weight), which is exactly why the flag lives on nodes and
	// weights are handled by the caller.
	got, err := m.ToMatrix(ph)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].ApproxEq(cnum.One, 1e-12) {
		t.Error("global-phase gate lost its phase")
	}
}

func TestGCResetsMatOpsCaches(t *testing.T) {
	m := New(3)
	a := m.GateDD(GateMatrix(hMatrix), 0)
	b := m.GateDD(GateMatrix(xMatrix), 1)
	prod := m.MulMM(a, b)
	want, _ := m.ToMatrix(prod)
	m.GC(nil, []MEdge{a, b, prod})
	// Recompute after GC: caches were dropped but results must agree.
	prod2 := m.MulMM(a, b)
	got, _ := m.ToMatrix(prod2)
	if !matApproxEq(got, want, 1e-12) {
		t.Error("MulMM result changed across GC")
	}
}

func TestNewPanicsOnZeroQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestMakeVNodePanicsOutOfRange(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.MakeVNode(5, VEdge{W: cnum.One}, VEdge{})
}

func TestMakeMNodePanicsOutOfRange(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.MakeMNode(-1, [4]MEdge{})
}

func TestGateDDValidation(t *testing.T) {
	m := New(3)
	cases := []func(){
		func() { m.GateDD(GateMatrix(hMatrix), 7) },
		func() { m.GateDD(GateMatrix(hMatrix), 0, Pos(0)) },
		func() { m.GateDD(GateMatrix(hMatrix), 0, Pos(1), Pos(1)) },
		func() { m.GateDD(GateMatrix(hMatrix), 0, Pos(9)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNewPanicsBeyondMaxQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 65 qubits")
		}
	}()
	New(MaxQubits + 1)
}
