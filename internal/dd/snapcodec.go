package dd

// Binary snapshot codec.
//
// A Snapshot is already flat data — int32 indices, float64 masses, value
// structs — so its on-disk form is a direct little-endian image of the
// arrays behind a small versioned header. The codec lives in package dd
// because the Snapshot fields are deliberately unexported; the persistence
// layer (internal/snapstore) wraps these bytes in integrity framing (CRC
// trailer, atomic rename) but never looks inside them.
//
// Origin pointers are not persisted: they are only meaningful against the
// live Manager that produced the freeze, so a decoded snapshot reports
// Origin(i) == nil for every node.
//
// DecodeSnapshot is defensive — it is fuzzed (FuzzSnapshotDecode) and must
// return an error, never panic or over-allocate, on arbitrary input. It
// validates framing and array geometry only; semantic integrity (masses,
// thresholds, normalization) is Snapshot.Verify's job, which the store runs
// on every load.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"weaksim/internal/cnum"
)

// snapMagic brands snapshot encodings; snapVersion gates layout changes.
const (
	snapMagic   = "WSNP"
	snapVersion = 1
)

// snapNodeBytes is the encoded size of one SnapNode:
// Kid[2]×int32 + P0 float64 + W[2]×(Re,Im float64) + V int32.
const snapNodeBytes = 8 + 8 + 32 + 4

// snapHeaderBytes is the fixed prefix before the node array:
// magic + version uint16 + norm uint8 + generic uint8 + nqubits uint32 +
// root int32 + rootW (Re,Im float64) + node count uint32.
const snapHeaderBytes = 4 + 2 + 1 + 1 + 4 + 4 + 16 + 4

// ErrSnapshotEncoding reports malformed snapshot bytes; detect with
// errors.Is. Framing errors wrap it, so the persistence layer can separate
// "not a snapshot" from I/O failure.
var ErrSnapshotEncoding = errors.New("dd: malformed snapshot encoding")

// ErrSnapshotVersion reports a well-framed snapshot written by a different
// codec version than this build reads. It wraps ErrSnapshotEncoding (the
// bytes are still undecodable here) but is separately detectable so a
// mixed-version cluster can tell "peer runs a newer codec" apart from
// corruption: the persistence layer must not quarantine such files, and the
// shipping layer must fall back to re-simulation instead of retrying.
var ErrSnapshotVersion = errors.New("dd: snapshot codec version mismatch")

// EncodeSnapshot serializes the snapshot to its versioned little-endian
// binary form. The encoding is deterministic: equal snapshots produce equal
// bytes, which lets the persistence layer hash and checksum them stably.
func EncodeSnapshot(s *Snapshot) []byte {
	n := len(s.nodes)
	buf := make([]byte, 0, snapHeaderBytes+n*snapNodeBytes+16*n)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapVersion)
	buf = append(buf, byte(s.norm), bool2byte(s.generic))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.nqubits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.root))
	buf = appendComplex(buf, s.rootW)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := range s.nodes {
		nd := &s.nodes[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.Kid[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.Kid[1]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.P0))
		buf = appendComplex(buf, nd.W[0])
		buf = appendComplex(buf, nd.W[1])
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.V))
	}
	for _, d := range s.down {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
	}
	for _, u := range s.up {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u))
	}
	return buf
}

// DecodeSnapshot parses bytes produced by EncodeSnapshot. It performs only
// structural validation (framing, version, exact length); callers that will
// sample from the result must also run Verify — corrupted-but-well-framed
// bytes decode fine and fail there.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderBytes {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrSnapshotEncoding, len(data))
	}
	if string(data[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotEncoding, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != snapVersion {
		return nil, fmt.Errorf("%w (%w): version %d, this build reads %d",
			ErrSnapshotVersion, ErrSnapshotEncoding, v, snapVersion)
	}
	s := &Snapshot{
		norm:    Norm(data[6]),
		generic: data[7] != 0,
		nqubits: int(binary.LittleEndian.Uint32(data[8:])),
	}
	s.root = int32(binary.LittleEndian.Uint32(data[12:]))
	s.rootW = readComplex(data[16:])
	n := int(binary.LittleEndian.Uint32(data[32:]))

	// Geometry gate before any allocation: the declared node count must
	// account for the remaining bytes exactly, which also bounds n by the
	// input length (no attacker-controlled huge make).
	if s.nqubits < 1 || s.nqubits > MaxQubits {
		return nil, fmt.Errorf("%w: %d qubits", ErrSnapshotEncoding, s.nqubits)
	}
	want := snapHeaderBytes + n*(snapNodeBytes+16)
	if n < 0 || len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d nodes, want %d", ErrSnapshotEncoding, len(data), n, want)
	}

	s.nodes = make([]SnapNode, n)
	s.down = make([]float64, n)
	s.up = make([]float64, n)
	off := snapHeaderBytes
	for i := 0; i < n; i++ {
		nd := &s.nodes[i]
		nd.Kid[0] = int32(binary.LittleEndian.Uint32(data[off:]))
		nd.Kid[1] = int32(binary.LittleEndian.Uint32(data[off+4:]))
		nd.P0 = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		nd.W[0] = readComplex(data[off+16:])
		nd.W[1] = readComplex(data[off+32:])
		nd.V = int32(binary.LittleEndian.Uint32(data[off+48:]))
		off += snapNodeBytes
	}
	for i := 0; i < n; i++ {
		s.down[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	for i := 0; i < n; i++ {
		s.up[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	return s, nil
}

func appendComplex(buf []byte, c cnum.Complex) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Re))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Im))
}

func readComplex(b []byte) cnum.Complex {
	return cnum.Complex{
		Re: math.Float64frombits(binary.LittleEndian.Uint64(b)),
		Im: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}
}

func bool2byte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
