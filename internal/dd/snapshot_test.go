package dd

import (
	"math"
	"testing"

	"weaksim/internal/cnum"
)

// snapTestState builds the paper's running-example state (Figs. 2-4) under
// the given normalization scheme.
func snapTestState(t *testing.T, norm Norm) (*Manager, VEdge) {
	t.Helper()
	m := New(3, WithNormalization(norm))
	a := cnum.New(0, -math.Sqrt(3.0/8.0))
	b := cnum.New(math.Sqrt(1.0/8.0), 0)
	state, err := m.FromVector([]cnum.Complex{cnum.Zero, a, cnum.Zero, a, b, cnum.Zero, cnum.Zero, b})
	if err != nil {
		t.Fatal(err)
	}
	return m, state
}

// refDown recursively computes downstream mass the way the pre-snapshot
// map-based annotation did, as the test oracle.
func refDown(n *VNode, memo map[*VNode]float64) float64 {
	if n == nil {
		return 1
	}
	if d, ok := memo[n]; ok {
		return d
	}
	var d float64
	for i := 0; i < 2; i++ {
		if e := n.E[i]; !e.IsZero() {
			d += e.W.Abs2() * refDown(e.N, memo)
		}
	}
	memo[n] = d
	return d
}

func TestFreezeRejectsZeroVector(t *testing.T) {
	m := New(3)
	if _, err := m.Freeze(VEdge{}); err == nil {
		t.Fatal("expected error freezing the zero vector")
	}
}

// TestFreezeTopologicalOrder: post-order indexing means every child index
// is strictly smaller than its parent's — the invariant both annotation
// sweeps rely on.
func TestFreezeTopologicalOrder(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m, state := snapTestState(t, norm)
		snap, err := m.Freeze(state)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Len() == 0 || snap.Root() != int32(snap.Len()-1) {
			t.Fatalf("norm %v: root index %d, want last index %d", norm, snap.Root(), snap.Len()-1)
		}
		for i := 0; i < snap.Len(); i++ {
			nd := snap.At(int32(i))
			for b := 0; b < 2; b++ {
				if k := nd.Kid[b]; k >= int32(i) {
					t.Errorf("norm %v: node %d child %d has index %d ≥ parent", norm, i, b, k)
				} else if k < SnapZero {
					t.Errorf("norm %v: node %d child %d has invalid index %d", norm, i, b, k)
				}
			}
		}
	}
}

// TestFreezeDownUpMassMatchReference: the flat-array annotation reproduces
// the recursive reference computation node for node, and traversal
// probabilities sum to 1 per level.
func TestFreezeDownUpMassMatchReference(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m, state := snapTestState(t, norm)
		snap, err := m.Freeze(state)
		if err != nil {
			t.Fatal(err)
		}
		memo := make(map[*VNode]float64)
		refDown(state.N, memo)
		if got, want := snap.Len(), len(memo); got != want {
			t.Fatalf("norm %v: %d frozen nodes, reference reaches %d", norm, got, want)
		}
		for i := 0; i < snap.Len(); i++ {
			n := snap.Origin(int32(i))
			if n == nil {
				t.Fatalf("norm %v: node %d has no origin", norm, i)
			}
			if got, want := snap.Down(int32(i)), memo[n]; got != want {
				t.Errorf("norm %v: down[%d] = %v, want %v (bit-exact)", norm, i, got, want)
			}
		}
		levelSums := make(map[int32]float64)
		for i := 0; i < snap.Len(); i++ {
			levelSums[snap.At(int32(i)).V] += snap.Traversal(int32(i))
		}
		for level, sum := range levelSums {
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("norm %v: level %d traversal mass %v, want 1", norm, level, sum)
			}
		}
	}
}

// TestFreezeBranchThresholds: under L2 the threshold is exactly |w0|²; the
// generic rule renormalizes by downstream mass, and both versions describe
// the same distribution.
func TestFreezeBranchThresholds(t *testing.T) {
	m, state := snapTestState(t, NormL2Phase)
	fast, err := m.Freeze(state)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Generic() {
		t.Error("L2Phase snapshot should use the fast probability rule")
	}
	gen, err := m.Freeze(state, FreezeGeneric())
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Generic() {
		t.Error("FreezeGeneric snapshot should report the generic rule")
	}
	root := fast.At(fast.Root())
	if got := root.W[0].Abs2(); got != root.P0 {
		t.Errorf("fast root P0 = %v, want |w0|² = %v", root.P0, got)
	}
	// Paper Fig. 4c/4d: the root splits 3/4 vs 1/4 under both rules.
	for name, snap := range map[string]*Snapshot{"fast": fast, "generic": gen} {
		p0 := snap.At(snap.Root()).P0
		if math.Abs(p0-0.75) > 1e-9 {
			t.Errorf("%s root threshold = %v, want 3/4", name, p0)
		}
	}
}

// TestFreezeAmplitudes: amplitudes reconstructed from the frozen arrays
// match the live diagram's amplitudes for every basis state.
func TestFreezeAmplitudes(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m, state := snapTestState(t, norm)
		snap, err := m.Freeze(state)
		if err != nil {
			t.Fatal(err)
		}
		for idx := uint64(0); idx < 8; idx++ {
			live := m.Amplitude(state, idx)
			frozen := snap.Amplitude(idx)
			if math.Abs(live.Re-frozen.Re) > 1e-12 || math.Abs(live.Im-frozen.Im) > 1e-12 {
				t.Errorf("norm %v: amplitude(%d) frozen %v, live %v", norm, idx, frozen, live)
			}
		}
	}
}

// TestSnapshotSurvivesManagerReuse pins the manager-reuse-after-freeze
// guarantee: after freezing, the Manager can garbage-collect everything and
// build an entirely different state without invalidating the snapshot.
func TestSnapshotSurvivesManagerReuse(t *testing.T) {
	m, state := snapTestState(t, NormL2Phase)
	snap, err := m.Freeze(state)
	if err != nil {
		t.Fatal(err)
	}
	wantAmps := make([]cnum.Complex, 8)
	for idx := uint64(0); idx < 8; idx++ {
		wantAmps[idx] = snap.Amplitude(idx)
	}
	wantNodes := snap.Len()
	wantP0 := snap.At(snap.Root()).P0

	// Reuse the Manager: drop every root, collect, and build a fresh state.
	m.GC(nil, nil)
	other := m.BasisState(5)
	if other.IsZero() {
		t.Fatal("manager reuse failed")
	}
	m.GC([]VEdge{other}, nil)

	if snap.Len() != wantNodes {
		t.Errorf("snapshot node count changed after manager reuse: %d vs %d", snap.Len(), wantNodes)
	}
	if got := snap.At(snap.Root()).P0; got != wantP0 {
		t.Errorf("root threshold changed after manager reuse: %v vs %v", got, wantP0)
	}
	for idx := uint64(0); idx < 8; idx++ {
		if got := snap.Amplitude(idx); got != wantAmps[idx] {
			t.Errorf("amplitude(%d) changed after manager reuse: %v vs %v", idx, got, wantAmps[idx])
		}
	}
}

// TestSnapshotStats: the size report is self-consistent.
func TestSnapshotStats(t *testing.T) {
	m, state := snapTestState(t, NormL2Phase)
	snap, err := m.Freeze(state)
	if err != nil {
		t.Fatal(err)
	}
	st := snap.Stats()
	if st.Nodes != snap.Len() {
		t.Errorf("Stats.Nodes = %d, want %d", st.Nodes, snap.Len())
	}
	if st.Bytes < st.Nodes*48 {
		t.Errorf("Stats.Bytes = %d implausibly small for %d nodes", st.Bytes, st.Nodes)
	}
	if st.Generic {
		t.Error("L2Phase snapshot reported generic")
	}
}
