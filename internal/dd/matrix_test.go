package dd

import (
	"math"
	"math/rand/v2"
	"testing"

	"weaksim/internal/cnum"
)

// Dense linear-algebra helpers used as the reference implementation.

func denseIdentity(size int) [][]cnum.Complex {
	mat := make([][]cnum.Complex, size)
	for i := range mat {
		mat[i] = make([]cnum.Complex, size)
		mat[i][i] = cnum.One
	}
	return mat
}

// denseGate builds the full matrix of a controlled single-qubit gate by
// direct index arithmetic.
func denseGate(n int, u [2][2]cnum.Complex, target int, controls ...Control) [][]cnum.Complex {
	size := 1 << uint(n)
	mat := make([][]cnum.Complex, size)
	for r := range mat {
		mat[r] = make([]cnum.Complex, size)
	}
	var mask, want uint64
	for _, c := range controls {
		bit := uint64(1) << uint(c.Qubit)
		mask |= bit
		if !c.Negative {
			want |= bit
		}
	}
	tbit := uint64(1) << uint(target)
	for col := uint64(0); col < uint64(size); col++ {
		if col&mask != want {
			mat[col][col] = cnum.One
			continue
		}
		j := (col >> uint(target)) & 1
		for i := uint64(0); i < 2; i++ {
			row := (col &^ tbit) | (i << uint(target))
			mat[row][col] = u[i][j]
		}
	}
	return mat
}

func denseMatVec(mat [][]cnum.Complex, vec []cnum.Complex) []cnum.Complex {
	out := make([]cnum.Complex, len(vec))
	for r := range mat {
		var sum cnum.Complex
		for c := range vec {
			if !mat[r][c].IsZero() && !vec[c].IsZero() {
				sum = sum.Add(mat[r][c].Mul(vec[c]))
			}
		}
		out[r] = sum
	}
	return out
}

func matApproxEq(a, b [][]cnum.Complex, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].ApproxEq(b[i][j], tol) {
				return false
			}
		}
	}
	return true
}

var hMatrix = [2][2]cnum.Complex{
	{cnum.SqrtHalf, cnum.SqrtHalf},
	{cnum.SqrtHalf, cnum.SqrtHalf.Neg()},
}

var xMatrix = [2][2]cnum.Complex{
	{cnum.Zero, cnum.One},
	{cnum.One, cnum.Zero},
}

func TestGateDDSingleQubit(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for target := 0; target < n; target++ {
			m := New(n)
			e := m.GateDD(GateMatrix(hMatrix), target)
			got, err := m.ToMatrix(e)
			if err != nil {
				t.Fatal(err)
			}
			want := denseGate(n, hMatrix, target)
			if !matApproxEq(got, want, 1e-9) {
				t.Errorf("n=%d target=%d: H matrix DD mismatch", n, target)
			}
		}
	}
}

func TestGateDDControlsAboveAndBelow(t *testing.T) {
	cases := []struct {
		n        int
		target   int
		controls []Control
	}{
		{2, 0, []Control{Pos(1)}}, // control above target
		{2, 1, []Control{Pos(0)}}, // control below target
		{3, 1, []Control{Pos(2)}}, // CNOT in the middle
		{3, 0, []Control{Pos(1), Pos(2)}},
		{3, 2, []Control{Pos(0), Pos(1)}}, // Toffoli, controls below
		{3, 1, []Control{Pos(0), Pos(2)}}, // controls straddling target
		{3, 1, []Control{Neg(0)}},         // negative control below
		{3, 1, []Control{Neg(2)}},         // negative control above
		{4, 2, []Control{Neg(0), Pos(3)}},
		{4, 1, []Control{Pos(0), Neg(2), Pos(3)}},
	}
	for _, tc := range cases {
		m := New(tc.n)
		e := m.GateDD(GateMatrix(xMatrix), tc.target, tc.controls...)
		got, err := m.ToMatrix(e)
		if err != nil {
			t.Fatal(err)
		}
		want := denseGate(tc.n, xMatrix, tc.target, tc.controls...)
		if !matApproxEq(got, want, 1e-9) {
			t.Errorf("n=%d target=%d controls=%v: controlled-X mismatch", tc.n, tc.target, tc.controls)
		}
	}
}

func TestIdentityDD(t *testing.T) {
	m := New(3)
	got, err := m.ToMatrix(m.IdentityDD())
	if err != nil {
		t.Fatal(err)
	}
	if !matApproxEq(got, denseIdentity(8), 1e-9) {
		t.Error("IdentityDD mismatch")
	}
	// Identity on n qubits has exactly n matrix nodes.
	if c := m.MNodeCount(m.IdentityDD()); c != 3 {
		t.Errorf("identity MNodeCount = %d, want 3", c)
	}
}

func TestPermutationDD(t *testing.T) {
	// Full-width permutation: a cyclic increment mod 8.
	m := New(3)
	perm := []uint64{1, 2, 3, 4, 5, 6, 7, 0}
	e, err := m.PermutationDD(perm, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ToMatrix(e)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]cnum.Complex, 8)
	for i := range want {
		want[i] = make([]cnum.Complex, 8)
	}
	for col, row := range perm {
		want[row][col] = cnum.One
	}
	if !matApproxEq(got, want, 1e-9) {
		t.Error("permutation matrix mismatch")
	}
}

func TestPermutationDDControlled(t *testing.T) {
	// Permutation on the low 2 qubits controlled by qubit 2: swap |1⟩,|2⟩.
	m := New(3)
	perm := []uint64{0, 2, 1, 3}
	e, err := m.PermutationDD(perm, 2, Pos(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ToMatrix(e)
	if err != nil {
		t.Fatal(err)
	}
	want := denseIdentity(8)
	// With control bit set (rows/cols 4..7), apply the permutation on the
	// low bits.
	for col := 4; col < 8; col++ {
		for r := range want {
			want[r][col] = cnum.Zero
		}
		want[4+int(perm[col-4])][col] = cnum.One
	}
	if !matApproxEq(got, want, 1e-9) {
		t.Error("controlled permutation mismatch")
	}
}

func TestPermutationDDValidation(t *testing.T) {
	m := New(3)
	if _, err := m.PermutationDD([]uint64{0, 0, 1, 2}, 2); err == nil {
		t.Error("expected error for non-bijective permutation")
	}
	if _, err := m.PermutationDD([]uint64{0, 9, 1, 2}, 2); err == nil {
		t.Error("expected error for out-of-range image")
	}
	if _, err := m.PermutationDD([]uint64{0, 1}, 1, Pos(0)); err == nil {
		t.Error("expected error for control inside permutation register")
	}
	if _, err := m.PermutationDD([]uint64{0, 1, 2}, 2); err == nil {
		t.Error("expected error for wrong-length permutation")
	}
}

func TestFromMatrixRoundtrip(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	m := New(3)
	size := 8
	mat := make([][]cnum.Complex, size)
	for i := range mat {
		mat[i] = make([]cnum.Complex, size)
		for j := range mat[i] {
			mat[i][j] = cnum.New(r.NormFloat64(), r.NormFloat64())
		}
	}
	e, err := m.FromMatrix(mat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ToMatrix(e)
	if err != nil {
		t.Fatal(err)
	}
	if !matApproxEq(got, mat, 1e-9) {
		t.Error("FromMatrix/ToMatrix roundtrip mismatch")
	}
}

func TestMulMatchesDense(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 32))
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m := New(3, WithNormalization(norm))
		vec := randomState(r, 3)
		st, _ := m.FromVector(vec)

		// A layered random circuit in dense and DD form simultaneously.
		gates := []struct {
			u        [2][2]cnum.Complex
			target   int
			controls []Control
		}{
			{hMatrix, 2, nil},
			{xMatrix, 0, []Control{Pos(2)}},
			{hMatrix, 1, nil},
			{xMatrix, 2, []Control{Pos(0), Neg(1)}},
		}
		for gi, g := range gates {
			op := m.GateDD(GateMatrix(g.u), g.target, g.controls...)
			st = m.Mul(op, st)
			vec = denseMatVec(denseGate(3, g.u, g.target, g.controls...), vec)
			got, _ := m.ToVector(st)
			if !vecApproxEq(got, vec, 1e-9) {
				t.Fatalf("norm=%v: state mismatch after gate %d", norm, gi)
			}
		}
		if n2 := m.Norm2(st); !approx(n2, 1, 1e-9) {
			t.Errorf("norm=%v: Norm2 = %v after unitary circuit", norm, n2)
		}
	}
}

func TestMulPermutation(t *testing.T) {
	m := New(3)
	r := rand.New(rand.NewPCG(41, 42))
	vec := randomState(r, 3)
	st, _ := m.FromVector(vec)
	perm := []uint64{3, 0, 2, 1}
	e, err := m.PermutationDD(perm, 2, Pos(2))
	if err != nil {
		t.Fatal(err)
	}
	st = m.Mul(e, st)
	got, _ := m.ToVector(st)
	want := make([]cnum.Complex, len(vec))
	for i := uint64(0); i < 8; i++ {
		dst := i
		if i&4 != 0 {
			dst = (i &^ 3) | perm[i&3]
		}
		want[dst] = vec[i]
	}
	if !vecApproxEq(got, want, 1e-9) {
		t.Error("permutation Mul mismatch")
	}
}

func TestGCKeepsLiveState(t *testing.T) {
	m := New(4, WithGCThreshold(1))
	r := rand.New(rand.NewPCG(51, 52))
	vec := randomState(r, 4)
	st, _ := m.FromVector(vec)
	// Create garbage.
	for i := 0; i < 20; i++ {
		garbage := randomState(r, 4)
		m.FromVector(garbage)
	}
	if !m.ShouldGC() {
		t.Fatal("expected ShouldGC after building garbage")
	}
	before := m.TableStats().VNodes
	removedV, _ := m.GC([]VEdge{st}, nil)
	if removedV == 0 {
		t.Error("GC removed nothing")
	}
	after := m.TableStats().VNodes
	if after >= before {
		t.Errorf("unique table did not shrink: %d -> %d", before, after)
	}
	// State survives intact.
	got, _ := m.ToVector(st)
	if !vecApproxEq(got, vec, 1e-9) {
		t.Error("live state corrupted by GC")
	}
	// Hash-consing still works for live structure.
	st2, _ := m.FromVector(vec)
	if st2.N != st.N {
		t.Error("post-GC rebuild of live state created a duplicate node")
	}
}

func TestGCKeepsMatrixRoots(t *testing.T) {
	m := New(3)
	op := m.GateDD(GateMatrix(hMatrix), 1, Pos(2))
	want, _ := m.ToMatrix(op)
	for i := 0; i < 5; i++ {
		m.GateDD(GateMatrix(xMatrix), i%3) // garbage
	}
	m.GC(nil, []MEdge{op})
	got, _ := m.ToMatrix(op)
	if !matApproxEq(got, want, 1e-9) {
		t.Error("matrix root corrupted by GC")
	}
}

func TestUnitaryPreservesNorm(t *testing.T) {
	// Long alternating circuit keeps Norm2 == 1 under all schemes.
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m := New(5, WithNormalization(norm))
		st := m.ZeroState()
		for i := 0; i < 40; i++ {
			tq := i % 5
			var op MEdge
			if i%3 == 0 {
				op = m.GateDD(GateMatrix(hMatrix), tq)
			} else {
				op = m.GateDD(GateMatrix(xMatrix), tq, Pos((tq+1)%5))
			}
			st = m.Mul(op, st)
		}
		if n2 := m.Norm2(st); math.Abs(n2-1) > 1e-9 {
			t.Errorf("norm=%v: Norm2 drifted to %v", norm, n2)
		}
	}
}

func TestParseNorm(t *testing.T) {
	for _, n := range []Norm{NormLeft, NormL2, NormL2Phase} {
		got, err := ParseNorm(n.String())
		if err != nil || got != n {
			t.Errorf("ParseNorm(%q) = %v, %v", n.String(), got, err)
		}
	}
	if _, err := ParseNorm("bogus"); err == nil {
		t.Error("expected error for unknown scheme")
	}
}
