package dd

import (
	"errors"
	"testing"

	"weaksim/internal/cnum"
	"weaksim/internal/obs"
)

// mustInvariant asserts err is an *InvariantError naming the given check.
func mustInvariant(t *testing.T, err error, check string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected %s violation, got nil", check)
	}
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("%v does not wrap ErrInvariant", err)
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("%v (%T) is not *InvariantError", err, err)
	}
	if ie.Check != check {
		t.Fatalf("violated check %q (%v), want %q", ie.Check, err, check)
	}
}

func TestCheckInvariantsPassesOnWellFormedStates(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m, state := snapTestState(t, norm)
		if err := m.CheckInvariants(state); err != nil {
			t.Errorf("norm %v: running-example state: %v", norm, err)
		}
		if err := m.CheckInvariants(m.ZeroState()); err != nil {
			t.Errorf("norm %v: zero state: %v", norm, err)
		}
	}
}

func TestCheckInvariantsDetectsViolations(t *testing.T) {
	t.Run("zero root", func(t *testing.T) {
		m := New(3)
		mustInvariant(t, m.CheckInvariants(VEdge{}), CheckZeroEdge)
	})
	t.Run("root level", func(t *testing.T) {
		m, state := snapTestState(t, NormL2)
		// A sub-edge's node sits below the register's top level.
		sub := state.N.E[0]
		if sub.N == nil {
			t.Skip("running example lost its 0-subtree")
		}
		mustInvariant(t, m.CheckInvariants(sub), CheckLevels)
	})
	t.Run("norm rule", func(t *testing.T) {
		m, state := snapTestState(t, NormLeft)
		// Rotate the root node's leading weight off 1 in place. |w|² is
		// preserved, so only the normalization rule is broken.
		b := 0
		if state.N.E[0].IsZero() {
			b = 1
		}
		saved := state.N.E[b].W
		state.N.E[b].W = cnum.I
		defer func() { state.N.E[b].W = saved }()
		mustInvariant(t, m.CheckInvariants(state), CheckNormRule)
	})
	t.Run("canonicity", func(t *testing.T) {
		m, state := snapTestState(t, NormL2)
		// A structurally valid node fabricated outside the unique table.
		orphanKid := state.N.E[0]
		fake := &VNode{V: m.nqubits - 1, E: [2]VEdge{orphanKid, state.N.E[1]}}
		mustInvariant(t, m.CheckInvariants(VEdge{W: state.W, N: fake}), CheckCanonicity)
	})
	t.Run("mass", func(t *testing.T) {
		m, state := snapTestState(t, NormL2)
		inflated := VEdge{W: state.W.Mul(cnum.New(2, 0)), N: state.N}
		mustInvariant(t, m.CheckInvariants(inflated), CheckMass)
	})
}

// mustFreeze freezes the running-example state under the given norm.
func mustFreeze(t *testing.T, norm Norm, opts ...FreezeOption) *Snapshot {
	t.Helper()
	m, state := snapTestState(t, norm)
	snap, err := m.Freeze(state, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestSnapshotVerifyPassesOnFreshFreeze(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		snap := mustFreeze(t, norm)
		if err := snap.Verify(); err != nil {
			t.Errorf("norm %v: %v", norm, err)
		}
		// A decoded snapshot carries no origin pointers; Verify (and Origin)
		// must accept that shape.
		snap.origins = nil
		if err := snap.Verify(); err != nil {
			t.Errorf("norm %v, origins stripped: %v", norm, err)
		}
		if snap.Origin(0) != nil {
			t.Errorf("norm %v: Origin on an origin-free snapshot", norm)
		}
	}
	if err := mustFreeze(t, NormL2, FreezeGeneric()).Verify(); err != nil {
		t.Errorf("generic freeze under L2: %v", err)
	}
}

func TestSnapshotVerifyDetectsCorruption(t *testing.T) {
	t.Run("array lengths", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.down = s.down[:len(s.down)-1]
		mustInvariant(t, s.Verify(), CheckMass)
	})
	t.Run("root out of range", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.root = int32(len(s.nodes))
		mustInvariant(t, s.Verify(), CheckPostOrder)
	})
	t.Run("qubit count", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.nqubits = 0
		mustInvariant(t, s.Verify(), CheckLevels)
	})
	t.Run("root level", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.nqubits++
		mustInvariant(t, s.Verify(), CheckLevels)
	})
	t.Run("post-order", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		// A self-referential child closes a cycle post-order forbids.
		s.nodes[s.root].Kid[0] = s.root
		mustInvariant(t, s.Verify(), CheckPostOrder)
	})
	t.Run("zero edge with weight", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		found := false
		for i := range s.nodes {
			for b := 0; b < 2; b++ {
				if s.nodes[i].Kid[b] == SnapZero {
					s.nodes[i].W[b] = cnum.One
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatal("running example has no zero edge")
		}
		mustInvariant(t, s.Verify(), CheckZeroEdge)
	})
	t.Run("downstream mass", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.down[0] += 0.25
		mustInvariant(t, s.Verify(), CheckMass)
	})
	t.Run("upstream mass", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.up[0] += 0.25
		mustInvariant(t, s.Verify(), CheckMass)
	})
	t.Run("p0 range", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.nodes[s.root].P0 = 1.5
		mustInvariant(t, s.Verify(), CheckP0Range)
	})
	t.Run("threshold fast", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.nodes[s.root].P0 = clamp01(s.nodes[s.root].P0 + 0.01)
		mustInvariant(t, s.Verify(), CheckThreshold)
	})
	t.Run("threshold generic", func(t *testing.T) {
		s := mustFreeze(t, NormLeft)
		s.nodes[s.root].P0 = clamp01(s.nodes[s.root].P0 + 0.01)
		mustInvariant(t, s.Verify(), CheckThreshold)
	})
	t.Run("norm rule", func(t *testing.T) {
		s := mustFreeze(t, NormL2Phase)
		// Negating the leading weight preserves every probability but breaks
		// the phase-pulling convention: only the norm check may fire.
		nd := &s.nodes[s.root]
		b := 0
		if nd.Kid[b] == SnapZero {
			b = 1
		}
		nd.W[b] = nd.W[b].Neg()
		mustInvariant(t, s.Verify(), CheckNormRule)
	})
	t.Run("total mass", func(t *testing.T) {
		s := mustFreeze(t, NormL2)
		s.rootW = s.rootW.Mul(cnum.New(2, 0))
		// Scaling rootW also scales every upstream mass, so recompute them
		// the way the corruption would have: only the total-mass check fires.
		for i := range s.up {
			s.up[i] *= 4
		}
		mustInvariant(t, s.Verify(), CheckMass)
	})
}

func clamp01(x float64) float64 {
	if x > 1 {
		return x - 0.02
	}
	return x
}

// TestInvariantObsCounters: checks and failures are mirrored into the
// registry, with a per-check failure series.
func TestInvariantObsCounters(t *testing.T) {
	m, state := snapTestState(t, NormL2)
	reg := obs.NewRegistry()
	m.SetObserver(reg, nil)
	if err := m.CheckInvariants(state); err != nil {
		t.Fatal(err)
	}
	inflated := VEdge{W: state.W.Mul(cnum.New(2, 0)), N: state.N}
	mustInvariant(t, m.CheckInvariants(inflated), CheckMass)
	if got := reg.Counter("dd_invariant_checks_total").Value(); got < 2 {
		t.Errorf("checks counter %d, want >= 2", got)
	}
	if got := reg.Counter("dd_invariant_failures_total").Value(); got != 1 {
		t.Errorf("failures counter %d, want 1", got)
	}
	if got := reg.Counter("dd_invariant_mass_failures_total").Value(); got != 1 {
		t.Errorf("per-check failure counter %d, want 1", got)
	}
}
