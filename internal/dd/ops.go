package dd

// Mul applies the operator op to the state st (matrix-vector product) and
// returns the resulting state DD. Both edges must be full-height DDs of
// this Manager.
//
// Results are memoized on the (operator node, state node) pair with top
// weights factored out, following the compute-cache design of DD-based
// strong simulators.
func (m *Manager) Mul(op MEdge, st VEdge) VEdge {
	return m.mulRec(op, st, m.nqubits-1)
}

func (m *Manager) mulRec(op MEdge, st VEdge, v int) VEdge {
	if op.IsZero() || st.IsZero() {
		return VEdge{}
	}
	w := op.W.Mul(st.W)
	if v < 0 {
		return VEdge{W: m.ctab.Lookup(w)}
	}
	if op.N.ident {
		// Identity sub-operator: the sub-state passes through unchanged.
		return VEdge{W: m.ctab.Lookup(w), N: st.N}
	}
	if r, ok := m.mulCache.get(m, op.N, st.N); ok {
		m.mulHits++
		if r.IsZero() {
			return VEdge{}
		}
		return VEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
	}
	m.mulMisses++

	var rows [2]VEdge
	for i := 0; i < 2; i++ {
		p0 := m.mulRec(op.N.E[2*i+0], st.N.E[0], v-1)
		p1 := m.mulRec(op.N.E[2*i+1], st.N.E[1], v-1)
		rows[i] = m.addRec(p0, p1, v-1)
	}
	r := m.makeVNode(v, rows[0], rows[1])

	m.mulCache.put(m, op.N, st.N, r)
	if r.IsZero() {
		return VEdge{}
	}
	return VEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
}

// Add returns the element-wise sum of the two state DDs. Both edges must be
// full-height DDs of this Manager.
func (m *Manager) Add(a, b VEdge) VEdge {
	return m.addRec(a, b, m.nqubits-1)
}

func (m *Manager) addRec(a, b VEdge, v int) VEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if v < 0 {
		sum := m.ctab.Lookup(a.W.Add(b.W))
		if sum.IsZero() {
			return VEdge{}
		}
		return VEdge{W: sum}
	}
	// Factor the first weight out so the cache key depends only on the
	// weight ratio: a + b == a.W * (A + (b.W/a.W) * B) for the unit-weight
	// sub-vectors A and B.
	ratio := m.ctab.Lookup(b.W.Div(a.W))
	if r, ok := m.addCache.get(m, a.N, b.N, ratio); ok {
		m.addHits++
		if r.IsZero() {
			return VEdge{}
		}
		return VEdge{W: m.ctab.Lookup(r.W.Mul(a.W)), N: r.N}
	}
	m.addMisses++

	var sums [2]VEdge
	for i := 0; i < 2; i++ {
		be := b.N.E[i]
		sums[i] = m.addRec(a.N.E[i], VEdge{W: ratio.Mul(be.W), N: be.N}, v-1)
	}
	r := m.makeVNode(v, sums[0], sums[1])

	m.addCache.put(m, a.N, b.N, ratio, r)
	if r.IsZero() {
		return VEdge{}
	}
	return VEdge{W: m.ctab.Lookup(r.W.Mul(a.W)), N: r.N}
}
