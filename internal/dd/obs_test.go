package dd

import (
	"testing"

	"weaksim/internal/obs"
)

// TestPeakNodesNeverStale pins the satellite fix: PeakNodes / LiveNodes /
// TableStats refresh the high-water mark on read, so a snapshot taken right
// after table growth can never under-report the peak — even if the growth
// happened through a path that skipped noteGrowth.
func TestPeakNodesNeverStale(t *testing.T) {
	m := New(4)
	e := m.ZeroState()
	if got, live := m.PeakNodes(), m.LiveNodes(); got < live {
		t.Fatalf("peak %d < live %d after ZeroState", got, live)
	}

	// Grow the vector unique table with distinct basis states.
	for idx := uint64(1); idx < 8; idx++ {
		e = m.Add(e, m.BasisState(idx))
	}
	live := m.vTab.n + m.mTab.n
	if got := m.PeakNodes(); got < live {
		t.Fatalf("PeakNodes() = %d under-reports live %d", got, live)
	}
	if st := m.TableStats(); m.peakNodes < live {
		t.Fatalf("TableStats() left peak %d below live %d (stats: %+v)", m.peakNodes, live, st)
	}

	// Simulate a growth path that bypassed noteGrowth by resetting the
	// recorded peak: the readers must repair it.
	m.peakNodes = 0
	if got := m.LiveNodes(); got != live {
		t.Fatalf("LiveNodes() = %d, want %d", got, live)
	}
	if got := m.PeakNodes(); got != live {
		t.Fatalf("PeakNodes() = %d after reset, want refreshed %d", got, live)
	}
	_ = e
}

// TestPublishMetricsMirrors checks that SetObserver + PublishMetrics copy
// the manager's cheap non-atomic counters into registry atomics.
func TestPublishMetricsMirrors(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(3)
	m.SetObserver(reg, nil)
	st := m.ZeroState()
	for q := 0; q < 3; q++ {
		st = m.Mul(m.GateDD(GateMatrix(hMatrix), q), st)
	}
	m.PublishMetrics()

	snap := reg.Snapshot()
	stats := m.TableStats()
	if got := snap.Counters["dd_unique_v_misses_total"]; got != stats.VMisses {
		t.Fatalf("dd_unique_v_misses_total = %d, want %d", got, stats.VMisses)
	}
	if got := snap.Counters["cnum_intern_hits_total"]; got != stats.ComplexHits {
		t.Fatalf("cnum_intern_hits_total = %d, want %d", got, stats.ComplexHits)
	}
	if got := snap.Gauges["dd_peak_nodes"]; got != int64(m.PeakNodes()) {
		t.Fatalf("dd_peak_nodes = %d, want %d", got, m.PeakNodes())
	}
	if got := snap.Gauges["cnum_table_entries"]; got <= 0 {
		t.Fatalf("cnum_table_entries = %d, want > 0", got)
	}
	_ = st
}

// TestGCEmitsTraceEvent checks the GC hook: a collection publishes metrics
// and emits a gc trace event carrying the reclaimed counts.
func TestGCEmitsTraceEvent(t *testing.T) {
	reg := obs.NewRegistry()
	var sink obs.CollectSink
	m := New(3)
	m.SetObserver(reg, obs.NewTracer(&sink))

	// Build some garbage: states not kept alive by the GC roots.
	var keep VEdge
	for idx := uint64(0); idx < 8; idx++ {
		keep = m.Add(keep, m.BasisState(idx))
	}
	removedV, removedM := m.GC([]VEdge{m.ZeroState()}, nil)
	if removedV == 0 {
		t.Fatalf("GC removed nothing (v=%d m=%d); test needs garbage", removedV, removedM)
	}
	if got := reg.Counter("dd_gc_runs_total").Value(); got != 1 {
		t.Fatalf("dd_gc_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("dd_gc_reclaimed_nodes_total").Value(); got != uint64(removedV+removedM) {
		t.Fatalf("dd_gc_reclaimed_nodes_total = %d, want %d", got, removedV+removedM)
	}
	var sawGC bool
	for _, e := range sink.Events() {
		if e.Name == "gc" {
			sawGC = true
		}
	}
	if !sawGC {
		t.Fatal("no gc trace event emitted")
	}
	_ = keep
}
