package dd

import (
	"errors"

	"weaksim/internal/obs"
)

// ddMetrics caches the registry metric pointers the Manager mirrors its
// internal counters into. The Manager keeps its cheap non-atomic counters on
// the hot lookup paths (one uint64 increment per unique-table or compute-
// cache probe) and mirrors them into the registry's atomics at sync points —
// PublishMetrics, garbage collections, budget-pressure events — so a
// concurrently scraping debug server sees race-free, slightly-stale values
// while the disabled path costs exactly one nil pointer check.
type ddMetrics struct {
	reg *obs.Registry
	tr  *obs.Tracer

	vHits, vMisses     *obs.Counter
	mHits, mMisses     *obs.Counter
	mulHits, mulMisses *obs.Counter
	addHits, addMisses *obs.Counter
	cnumHits, cnumMiss *obs.Counter

	probeLen    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheEvict  *obs.Counter

	gcRuns      *obs.Counter
	gcReclaimed *obs.Counter
	budgetHits  *obs.Counter

	invChecks *obs.Counter
	invFails  *obs.Counter

	liveNodes   *obs.Gauge
	peakNodes   *obs.Gauge
	cnumEntries *obs.Gauge
	arenaSlabs  *obs.Gauge
	freelistLen *obs.Gauge
}

// SetObserver attaches a metrics registry and tracer to the Manager.
// Passing a nil registry and nil tracer detaches. The registry receives the
// metric catalogue documented in DESIGN.md ("Observability"):
//
//	dd_unique_v_{hits,misses}_total    vector unique-table probes
//	dd_unique_m_{hits,misses}_total    matrix unique-table probes
//	dd_unique_probe_len                cumulative open-addressing probe steps
//	dd_cache_mul_{hits,misses}_total   matrix-vector compute cache
//	dd_cache_add_{hits,misses}_total   vector-add compute cache
//	dd_cache_{hits,misses}_total       all compute caches combined
//	dd_cache_evictions_total           direct-mapped entries overwritten
//	cnum_intern_{hits,misses}_total    complex interning table
//	cnum_table_entries                 distinct interned components (gauge)
//	dd_gc_runs_total                   mark-and-sweep collections
//	dd_gc_reclaimed_nodes_total        nodes reclaimed by GC
//	dd_budget_pressure_total           node-budget aborts surfaced
//	dd_live_nodes, dd_peak_nodes       live/high-water node gauges
//	dd_arena_slabs                     allocated node slabs (gauge)
//	dd_freelist_len                    recycled-and-unused arena slots (gauge)
func (m *Manager) SetObserver(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil && tr == nil {
		m.obs = nil
		return
	}
	m.obs = &ddMetrics{
		reg:         reg,
		tr:          tr,
		vHits:       reg.Counter("dd_unique_v_hits_total"),
		vMisses:     reg.Counter("dd_unique_v_misses_total"),
		mHits:       reg.Counter("dd_unique_m_hits_total"),
		mMisses:     reg.Counter("dd_unique_m_misses_total"),
		mulHits:     reg.Counter("dd_cache_mul_hits_total"),
		mulMisses:   reg.Counter("dd_cache_mul_misses_total"),
		addHits:     reg.Counter("dd_cache_add_hits_total"),
		addMisses:   reg.Counter("dd_cache_add_misses_total"),
		cnumHits:    reg.Counter("cnum_intern_hits_total"),
		cnumMiss:    reg.Counter("cnum_intern_misses_total"),
		probeLen:    reg.Counter("dd_unique_probe_len"),
		cacheHits:   reg.Counter("dd_cache_hits_total"),
		cacheMisses: reg.Counter("dd_cache_misses_total"),
		cacheEvict:  reg.Counter("dd_cache_evictions_total"),
		gcRuns:      reg.Counter("dd_gc_runs_total"),
		gcReclaimed: reg.Counter("dd_gc_reclaimed_nodes_total"),
		budgetHits:  reg.Counter("dd_budget_pressure_total"),
		invChecks:   reg.Counter("dd_invariant_checks_total"),
		invFails:    reg.Counter("dd_invariant_failures_total"),
		liveNodes:   reg.Gauge("dd_live_nodes"),
		peakNodes:   reg.Gauge("dd_peak_nodes"),
		cnumEntries: reg.Gauge("cnum_table_entries"),
		arenaSlabs:  reg.Gauge("dd_arena_slabs"),
		freelistLen: reg.Gauge("dd_freelist_len"),
	}
	m.PublishMetrics()
}

// PublishMetrics mirrors the Manager's internal counters into the attached
// registry. Drivers call it at op granularity (internal/sim does, after
// every applied operation); the Manager itself calls it after GC and on
// budget pressure. A Manager without an observer returns immediately.
func (m *Manager) PublishMetrics() {
	o := m.obs
	if o == nil {
		return
	}
	o.vHits.Set(m.vHits)
	o.vMisses.Set(m.vMisses)
	o.mHits.Set(m.mHits)
	o.mMisses.Set(m.mMisses)
	o.mulHits.Set(m.mulHits)
	o.mulMisses.Set(m.mulMisses)
	o.addHits.Set(m.addHits)
	o.addMisses.Set(m.addMisses)
	ch, cm := m.ctab.Stats()
	o.cnumHits.Set(ch)
	o.cnumMiss.Set(cm)
	o.probeLen.Set(m.uniqueProbes)
	o.cacheHits.Set(m.mulHits + m.addHits + m.matHits)
	o.cacheMisses.Set(m.mulMisses + m.addMisses + m.matMisses)
	o.cacheEvict.Set(m.cacheEvictions)
	o.gcRuns.Set(m.gcRuns)
	live := int64(m.LiveNodes())
	o.liveNodes.Set(live)
	o.peakNodes.SetMax(live)
	o.peakNodes.SetMax(int64(m.peakNodes))
	o.cnumEntries.Set(int64(m.ctab.Len()))
	o.arenaSlabs.Set(int64(len(m.varena.slabs) + len(m.marena.slabs)))
	o.freelistLen.Set(int64(len(m.varena.free) + len(m.marena.free)))
}

// noteGC records a finished garbage collection in the registry and emits a
// structured trace event with the sweep's yield.
func (m *Manager) noteGC(removedV, removedM int) {
	o := m.obs
	if o == nil {
		return
	}
	o.gcReclaimed.Add(uint64(removedV + removedM))
	m.PublishMetrics()
	if o.tr != nil {
		o.tr.Event(obs.PhaseApply, "gc", map[string]any{
			"removed_v": removedV,
			"removed_m": removedM,
			"live":      m.LiveNodes(),
		})
	}
}

// startVerify opens an invariant-check span and bumps the check counter.
// The returned closer records the outcome: failures increment the aggregate
// failure counter plus a per-check dd_invariant_<check>_failures_total
// series, and the span (when tracing) carries the violation detail. With no
// observer attached both halves are no-ops.
func (m *Manager) startVerify(name string) func(error) {
	o := m.obs
	if o == nil {
		return func(error) {}
	}
	o.invChecks.Inc()
	var sp obs.Span
	if o.tr != nil {
		sp = o.tr.Start(obs.PhaseVerify, name)
	}
	return func(err error) {
		var attrs map[string]any
		if err != nil {
			o.invFails.Inc()
			var ie *InvariantError
			if errors.As(err, &ie) {
				o.reg.Counter("dd_invariant_" + ie.Check + "_failures_total").Inc()
			}
			attrs = map[string]any{"error": err.Error()}
		}
		if o.tr != nil {
			sp.End(attrs)
		}
	}
}

// noteBudgetPressure records a node-budget abort surfacing through Guarded.
func (m *Manager) noteBudgetPressure(live, budget int) {
	o := m.obs
	if o == nil {
		return
	}
	o.budgetHits.Inc()
	m.PublishMetrics()
	if o.tr != nil {
		o.tr.Event(obs.PhaseApply, "budget-pressure", map[string]any{
			"live":   live,
			"budget": budget,
		})
	}
}
