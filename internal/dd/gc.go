package dd

import "weaksim/internal/fault"

// ShouldGC reports whether the unique tables have grown past the configured
// threshold — or past the node budget, when one is set, so that drivers
// collect garbage before a budget overrun is declared genuine. Simulation
// drivers call this between gate applications and run GC with their live
// roots when it returns true.
func (m *Manager) ShouldGC() bool {
	live := len(m.vUnique) + len(m.mUnique)
	if m.nodeBudget > 0 && live > m.nodeBudget {
		return true
	}
	return live > m.gcThreshold
}

// GC removes all nodes not reachable from the given roots from the unique
// tables and flushes the compute caches. Surviving node pointers remain
// valid; only dead hash-cons entries are dropped, so subsequent MakeVNode
// calls for live structures still deduplicate correctly.
//
// Callers must pass every DD they intend to keep using. Edges not listed
// remain structurally intact (Go's GC owns the memory) but lose their
// sharing guarantees.
func (m *Manager) GC(keepV []VEdge, keepM []MEdge) (removedV, removedM int) {
	// GC has no error return: an injected err here escalates to a panic, the
	// strongest outcome the chaos suite can demand of this point.
	if err := fault.Hit(fault.DDGC); err != nil {
		panic(&fault.InjectedPanic{Point: fault.DDGC})
	}
	m.gen++
	m.gcRuns++
	for _, e := range keepV {
		m.markV(e.N)
	}
	for _, e := range keepM {
		m.markM(e.N)
	}
	for k, n := range m.vUnique {
		if n.gen != m.gen {
			delete(m.vUnique, k)
			removedV++
		}
	}
	for k, n := range m.mUnique {
		if n.gen != m.gen {
			delete(m.mUnique, k)
			removedM++
		}
	}
	// Caches may reference removed nodes; drop them wholesale.
	m.mulCache = make(map[mulKey]VEdge, 1024)
	m.addCache = make(map[addKey]VEdge, 1024)
	m.mops = nil
	m.noteGC(removedV, removedM)
	return removedV, removedM
}

func (m *Manager) markV(n *VNode) {
	if n == nil || n.gen == m.gen {
		return
	}
	n.gen = m.gen
	m.markV(n.E[0].N)
	m.markV(n.E[1].N)
}

func (m *Manager) markM(n *MNode) {
	if n == nil || n.gen == m.gen {
		return
	}
	n.gen = m.gen
	for i := 0; i < 4; i++ {
		m.markM(n.E[i].N)
	}
}
