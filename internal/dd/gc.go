package dd

import "weaksim/internal/fault"

// ShouldGC reports whether the unique tables have grown past the configured
// threshold — or past the node budget, when one is set, so that drivers
// collect garbage before a budget overrun is declared genuine. Simulation
// drivers call this between gate applications and run GC with their live
// roots when it returns true.
func (m *Manager) ShouldGC() bool {
	live := m.vTab.n + m.mTab.n
	if m.nodeBudget > 0 && live > m.nodeBudget {
		return true
	}
	return live > m.gcThreshold
}

// GC removes all nodes not reachable from the given roots from the unique
// tables, returns their arena slots to the free lists, and invalidates the
// compute caches (per-slot, by bumping the cache epoch — the entry arrays
// themselves are untouched). Surviving node pointers remain valid and keep
// their hash-cons identity, so subsequent MakeVNode calls for live
// structures still deduplicate correctly.
//
// Callers must pass every DD they intend to keep using. Edges not listed are
// DEAD after GC returns: their nodes' arena slots go onto the free list and
// may be reissued to brand-new nodes by the next MakeVNode, so dereferencing
// an unlisted edge reads unrelated (or freed) structure. This is stricter
// than the pre-arena engine, which left unlisted nodes to the Go GC.
func (m *Manager) GC(keepV []VEdge, keepM []MEdge) (removedV, removedM int) {
	// GC has no error return: an injected err here escalates to a panic, the
	// strongest outcome the chaos suite can demand of this point.
	if err := fault.Hit(fault.DDGC); err != nil {
		panic(&fault.InjectedPanic{Point: fault.DDGC})
	}
	m.gen++
	m.gcRuns++
	for _, e := range keepV {
		m.markV(e.N)
	}
	for _, e := range keepM {
		m.markM(e.N)
	}
	removedV = m.vTab.sweep(m.gen, &m.varena)
	removedM = m.mTab.sweep(m.gen, &m.marena)
	// Cached results may name nodes whose slots were just recycled; bumping
	// the epoch invalidates every entry lazily, in O(1), without touching
	// the arrays.
	m.cacheEpoch++
	m.noteGC(removedV, removedM)
	return removedV, removedM
}

func (m *Manager) markV(n *VNode) {
	if n == nil || n.gen == m.gen {
		return
	}
	n.gen = m.gen
	m.markV(n.E[0].N)
	m.markV(n.E[1].N)
}

func (m *Manager) markM(n *MNode) {
	if n == nil || n.gen == m.gen {
		return
	}
	n.gen = m.gen
	for i := 0; i < 4; i++ {
		m.markM(n.E[i].N)
	}
}
