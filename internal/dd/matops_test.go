package dd

import (
	"math/rand/v2"
	"testing"

	"weaksim/internal/cnum"
)

func denseMatMul(a, b [][]cnum.Complex) [][]cnum.Complex {
	n := len(a)
	out := make([][]cnum.Complex, n)
	for i := range out {
		out[i] = make([]cnum.Complex, n)
		for j := 0; j < n; j++ {
			var sum cnum.Complex
			for k := 0; k < n; k++ {
				sum = sum.Add(a[i][k].Mul(b[k][j]))
			}
			out[i][j] = sum
		}
	}
	return out
}

func randomDense(r *rand.Rand, n int) [][]cnum.Complex {
	size := 1 << uint(n)
	mat := make([][]cnum.Complex, size)
	for i := range mat {
		mat[i] = make([]cnum.Complex, size)
		for j := range mat[i] {
			mat[i][j] = cnum.New(r.NormFloat64(), r.NormFloat64())
		}
	}
	return mat
}

func TestMulMMMatchesDense(t *testing.T) {
	r := rand.New(rand.NewPCG(61, 62))
	m := New(3)
	da := randomDense(r, 3)
	db := randomDense(r, 3)
	ea, err := m.FromMatrix(da)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := m.FromMatrix(db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ToMatrix(m.MulMM(ea, eb))
	if err != nil {
		t.Fatal(err)
	}
	want := denseMatMul(da, db)
	// Entries are O(sqrt(8)·N(0,1) sums); give the grid some slack.
	if !matApproxEq(got, want, 1e-7) {
		t.Error("MulMM mismatch against dense product")
	}
}

func TestMulMMComposesGates(t *testing.T) {
	// (CX · H⊗I) |00⟩ must give the Bell state, composing the operators
	// first.
	m := New(2)
	h := m.GateDD(GateMatrix(hMatrix), 0)
	cx := m.GateDD(GateMatrix(xMatrix), 1, Pos(0))
	bellOp := m.MulMM(cx, h)
	st := m.Mul(bellOp, m.ZeroState())
	if a := m.Amplitude(st, 0); !approx(a.Abs(), cnum.SqrtHalf.Re, 1e-9) {
		t.Errorf("amp(00) = %v", a)
	}
	if a := m.Amplitude(st, 3); !approx(a.Abs(), cnum.SqrtHalf.Re, 1e-9) {
		t.Errorf("amp(11) = %v", a)
	}
	if a := m.Amplitude(st, 1); !a.ApproxZero(1e-9) {
		t.Errorf("amp(01) = %v", a)
	}
}

func TestAddMMMatchesDense(t *testing.T) {
	r := rand.New(rand.NewPCG(63, 64))
	m := New(2)
	da := randomDense(r, 2)
	db := randomDense(r, 2)
	ea, _ := m.FromMatrix(da)
	eb, _ := m.FromMatrix(db)
	got, err := m.ToMatrix(m.AddMM(ea, eb))
	if err != nil {
		t.Fatal(err)
	}
	for i := range da {
		for j := range da[i] {
			want := da[i][j].Add(db[i][j])
			if !got[i][j].ApproxEq(want, 1e-8) {
				t.Fatalf("AddMM[%d][%d] = %v, want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestAddMMCancellation(t *testing.T) {
	m := New(2)
	h := m.GateDD(GateMatrix(hMatrix), 1)
	neg := MEdge{W: h.W.Neg(), N: h.N}
	if sum := m.AddMM(h, neg); !sum.IsZero() {
		t.Errorf("A + (-A) = %v, want zero", sum)
	}
}

func TestAdjointInvertsUnitary(t *testing.T) {
	// U†·U must be the identity for a composite unitary.
	m := New(3)
	u := m.GateDD(GateMatrix(hMatrix), 2)
	u = m.MulMM(m.GateDD(GateMatrix(xMatrix), 0, Pos(2)), u)
	u = m.MulMM(m.GateDD(GateMatrix([2][2]cnum.Complex{
		{cnum.One, cnum.Zero}, {cnum.Zero, cnum.FromPolar(1, 0.7)},
	}), 1), u)
	id := m.MulMM(m.Adjoint(u), u)
	got, err := m.ToMatrix(id)
	if err != nil {
		t.Fatal(err)
	}
	if !matApproxEq(got, denseIdentity(8), 1e-8) {
		t.Error("U†U is not the identity")
	}
}

func TestAdjointMatchesDense(t *testing.T) {
	r := rand.New(rand.NewPCG(65, 66))
	m := New(2)
	da := randomDense(r, 2)
	ea, _ := m.FromMatrix(da)
	got, err := m.ToMatrix(m.Adjoint(ea))
	if err != nil {
		t.Fatal(err)
	}
	for i := range da {
		for j := range da[i] {
			want := da[j][i].Conj()
			if !got[i][j].ApproxEq(want, 1e-8) {
				t.Fatalf("Adjoint[%d][%d] = %v, want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestComposedGroverIterationMatchesStepwise(t *testing.T) {
	// Compose an oracle and diffusion into one operator via MulMM and
	// compare a few applications against step-by-step Mul.
	m := New(5)
	// Oracle: flip phase of |10110⟩ via multi-controlled Z.
	marked := []Control{Pos(1), Pos(2), Neg(0), Neg(3)}
	oracle := m.GateDD(GateMatrix([2][2]cnum.Complex{
		{cnum.One, cnum.Zero}, {cnum.Zero, cnum.MinusOne},
	}), 4, marked...)
	// Diffusion pieces on all 5 qubits.
	diff := m.IdentityDD()
	for q := 0; q < 5; q++ {
		diff = m.MulMM(m.GateDD(GateMatrix(hMatrix), q), diff)
	}
	for q := 0; q < 5; q++ {
		diff = m.MulMM(m.GateDD(GateMatrix(xMatrix), q), diff)
	}
	diff = m.MulMM(m.GateDD(GateMatrix([2][2]cnum.Complex{
		{cnum.One, cnum.Zero}, {cnum.Zero, cnum.MinusOne},
	}), 4, Pos(0), Pos(1), Pos(2), Pos(3)), diff)
	for q := 0; q < 5; q++ {
		diff = m.MulMM(m.GateDD(GateMatrix(xMatrix), q), diff)
	}
	for q := 0; q < 5; q++ {
		diff = m.MulMM(m.GateDD(GateMatrix(hMatrix), q), diff)
	}
	iter := m.MulMM(diff, oracle)

	// Uniform start.
	stA := m.ZeroState()
	for q := 0; q < 5; q++ {
		stA = m.Mul(m.GateDD(GateMatrix(hMatrix), q), stA)
	}
	stB := stA
	for k := 0; k < 4; k++ {
		stA = m.Mul(iter, stA)   // fused
		stB = m.Mul(oracle, stB) // stepwise
		stB = m.Mul(diff, stB)
	}
	for i := uint64(0); i < 32; i++ {
		a, b := m.Amplitude(stA, i), m.Amplitude(stB, i)
		if !a.ApproxEq(b, 1e-7) {
			t.Fatalf("fused vs stepwise amplitude %d: %v vs %v", i, a, b)
		}
	}
}
