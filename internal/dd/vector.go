package dd

import (
	"fmt"

	"weaksim/internal/cnum"
)

// MaxDenseQubits bounds conversions between decision diagrams and explicit
// arrays. 2^26 complex entries occupy 1 GiB; anything larger must stay in
// DD form (that is the point of the paper).
const MaxDenseQubits = 26

// ZeroState returns the DD of the all-zeros basis state |0...0⟩.
func (m *Manager) ZeroState() VEdge { return m.BasisState(0) }

// BasisState returns the DD of the computational basis state |idx⟩, where
// bit k of idx is the value of qubit k.
func (m *Manager) BasisState(idx uint64) VEdge {
	if m.nqubits < 64 && idx >= uint64(1)<<m.nqubits {
		panic(fmt.Sprintf("dd: basis state %d out of range for %d qubits", idx, m.nqubits))
	}
	e := VEdge{W: cnum.One, N: nil}
	for v := 0; v < m.nqubits; v++ {
		if idx>>uint(v)&1 == 0 {
			e = m.makeVNode(v, e, VEdge{})
		} else {
			e = m.makeVNode(v, VEdge{}, e)
		}
	}
	return e
}

// FromVector builds the DD of an explicit amplitude vector. The vector
// length must be exactly 2^n for the Manager's qubit count n.
func (m *Manager) FromVector(vec []cnum.Complex) (VEdge, error) {
	if len(vec) != 1<<uint(m.nqubits) {
		return VEdge{}, fmt.Errorf("dd: vector length %d does not match %d qubits", len(vec), m.nqubits)
	}
	return m.fromVector(vec, m.nqubits-1), nil
}

func (m *Manager) fromVector(vec []cnum.Complex, v int) VEdge {
	if v < 0 {
		return VEdge{W: m.ctab.Lookup(vec[0])}
	}
	half := len(vec) / 2
	e0 := m.fromVector(vec[:half], v-1)
	e1 := m.fromVector(vec[half:], v-1)
	return m.makeVNode(v, e0, e1)
}

// ToVector expands a DD into an explicit amplitude vector. It refuses to
// materialize vectors beyond MaxDenseQubits.
func (m *Manager) ToVector(e VEdge) ([]cnum.Complex, error) {
	if m.nqubits > MaxDenseQubits {
		return nil, fmt.Errorf("dd: refusing to expand %d qubits to a dense vector (max %d)", m.nqubits, MaxDenseQubits)
	}
	vec := make([]cnum.Complex, 1<<uint(m.nqubits))
	m.fillVector(e, m.nqubits-1, cnum.One, vec)
	return vec, nil
}

func (m *Manager) fillVector(e VEdge, v int, acc cnum.Complex, out []cnum.Complex) {
	if e.IsZero() {
		return
	}
	acc = acc.Mul(e.W)
	if v < 0 {
		out[0] = acc
		return
	}
	half := len(out) / 2
	m.fillVector(e.N.E[0], v-1, acc, out[:half])
	m.fillVector(e.N.E[1], v-1, acc, out[half:])
}

// Amplitude returns the amplitude of basis state idx: the product of the
// edge weights along the path selected by the bits of idx (paper
// Example 9).
func (m *Manager) Amplitude(e VEdge, idx uint64) cnum.Complex {
	acc := cnum.One
	for v := m.nqubits - 1; ; v-- {
		if e.IsZero() {
			return cnum.Zero
		}
		acc = acc.Mul(e.W)
		if v < 0 {
			return acc
		}
		e = e.N.E[idx>>uint(v)&1]
	}
}

// NodeCount returns the number of distinct nodes reachable from e,
// excluding the terminal. This is the "size" column of the paper's Table I.
func (m *Manager) NodeCount(e VEdge) int {
	seen := make(map[*VNode]struct{})
	m.countNodes(e.N, seen)
	return len(seen)
}

func (m *Manager) countNodes(n *VNode, seen map[*VNode]struct{}) {
	if n == nil {
		return
	}
	if _, ok := seen[n]; ok {
		return
	}
	seen[n] = struct{}{}
	m.countNodes(n.E[0].N, seen)
	m.countNodes(n.E[1].N, seen)
}

// Norm2 returns the squared Euclidean norm of the vector represented by e.
// A valid quantum state has Norm2 == 1 up to the interning tolerance.
func (m *Manager) Norm2(e VEdge) float64 {
	memo := make(map[*VNode]float64)
	return e.W.Abs2() * m.subtreeNorm2(e.N, memo)
}

// subtreeNorm2 returns the squared norm of the sub-vector represented by n
// with a unit incoming weight. The terminal has norm 1.
func (m *Manager) subtreeNorm2(n *VNode, memo map[*VNode]float64) float64 {
	if n == nil {
		return 1
	}
	if s, ok := memo[n]; ok {
		return s
	}
	var s float64
	for i := 0; i < 2; i++ {
		if !n.E[i].IsZero() {
			s += n.E[i].W.Abs2() * m.subtreeNorm2(n.E[i].N, memo)
		}
	}
	memo[n] = s
	return s
}

// InnerProduct returns ⟨a|b⟩, the conjugate-linear inner product of the two
// state DDs. Both edges must be full-height states of this Manager.
func (m *Manager) InnerProduct(a, b VEdge) cnum.Complex {
	memo := make(map[[2]*VNode]cnum.Complex)
	return m.innerRec(a, b, m.nqubits-1, memo)
}

func (m *Manager) innerRec(a, b VEdge, v int, memo map[[2]*VNode]cnum.Complex) cnum.Complex {
	if a.IsZero() || b.IsZero() {
		return cnum.Zero
	}
	w := a.W.Conj().Mul(b.W)
	if v < 0 {
		return w
	}
	key := [2]*VNode{a.N, b.N}
	if r, ok := memo[key]; ok {
		return r.Mul(w)
	}
	var sum cnum.Complex
	for i := 0; i < 2; i++ {
		sum = sum.Add(m.innerRec(a.N.E[i], b.N.E[i], v-1, memo))
	}
	memo[key] = sum
	return sum.Mul(w)
}

// Fidelity returns |⟨a|b⟩|².
func (m *Manager) Fidelity(a, b VEdge) float64 {
	return m.InnerProduct(a, b).Abs2()
}
