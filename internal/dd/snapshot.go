package dd

// Freeze-then-sample: immutable state-DD snapshots.
//
// A live decision diagram is owned by its Manager — nodes are hash-consed
// through the unique table, garbage-collected, and mutated by every gate
// application, so the Manager is not safe for concurrent use. Once strong
// simulation finishes, however, the final state is a read-only DAG ("the DD
// is final" — Wille/Hillmich/Burgholzer, Decision Diagrams for Quantum
// Computing), and the sampling hot loop needs none of the Manager's
// machinery.
//
// Freeze exploits that: it walks the state once and emits a Snapshot — a
// compact, index-based flat array of nodes with the per-edge branch
// probabilities, the cumulative 0-branch threshold each walk compares
// against, and the downstream/upstream probability masses (paper Section
// IV-B) precomputed inline. A Snapshot
//
//   - contains no pointers into the Manager's tables (node references are
//     int32 indices, weights are value structs), so the Manager may be
//     garbage-collected, reset, or reused for the next circuit while
//     sampling proceeds;
//   - is immutable after construction and therefore safe for lock-free
//     concurrent reads from any number of sampling workers without atomics
//     on the read path — the happens-before edge is whatever handed the
//     *Snapshot to the goroutine (channel send, WaitGroup, go statement);
//   - can never hit the node budget or the GC: freezing allocates plain
//     slices outside the Manager's accounting, so once a state is frozen,
//     sampling cannot fail with ErrNodeBudget (no MO/TO during annotation).
//
// Node indexing is post-order: both children of a node always carry smaller
// indices than the node itself (terminal and zero edges use negative
// sentinels). Downstream mass is therefore computable in one ascending pass
// and upstream mass in one descending pass, replacing the three hash-map
// annotation passes of the pointer-based sampler.

import (
	"context"
	"fmt"

	"weaksim/internal/cnum"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
)

// Sentinel child indices of a SnapNode. All non-negative indices refer into
// the snapshot's node array.
const (
	// SnapTerminal marks an edge to the terminal: the walk ends below it.
	SnapTerminal int32 = -1
	// SnapZero marks a zero edge (all-zero sub-vector, probability 0).
	SnapZero int32 = -2
)

// SnapNode is one frozen decision-diagram node. The struct is plain data —
// no pointers into the owning Manager — and is never mutated after Freeze
// returns.
type SnapNode struct {
	// Kid holds the 0- and 1-successor as indices into the snapshot's node
	// array, or SnapTerminal / SnapZero.
	Kid [2]int32
	// P0 is the cumulative 0-branch threshold: a sampling walk draws
	// u ∈ [0,1) and descends to Kid[0] iff u < P0, else to Kid[1]. Under L2
	// normalization P0 is exactly |w0|² (paper Section IV-C); otherwise it
	// is the downstream-renormalized branch probability (Section IV-B).
	P0 float64
	// W holds the outgoing edge weights (zero for zero edges), kept so
	// amplitudes and diagnostics can be reconstructed from the snapshot.
	W [2]cnum.Complex
	// V is the qubit (level) the node decides on.
	V int32
}

// Snapshot is an immutable flat-array view of one state DD, produced by
// Manager.Freeze. It is safe for concurrent use by any number of readers.
type Snapshot struct {
	nqubits int
	norm    Norm
	generic bool // branch probabilities computed by the generic downstream rule

	rootW cnum.Complex
	root  int32

	nodes []SnapNode
	down  []float64 // downstream probability mass per node (Section IV-B)
	up    []float64 // upstream probability mass per node

	origins []*VNode // frozen-from node per index, for pointer-keyed diagnostics
}

// FreezeOption configures Manager.Freeze.
type FreezeOption func(*freezeConfig)

type freezeConfig struct {
	generic bool
}

// FreezeGeneric forces the generic downstream-renormalized branch
// probabilities even under L2 normalization, where the edge weights alone
// would suffice. Used by the ablation benchmarks to reproduce the
// conventional-normalization sampling rule on any diagram.
func FreezeGeneric() FreezeOption {
	return func(c *freezeConfig) { c.generic = true }
}

// FreezeContext is Freeze with request-scoped trace attribution: when ctx
// carries an obs.RequestTrace (the serving pipeline's per-request span
// tree), the freeze is recorded as a span on that trace — including the
// frozen node count, or the error — so a request's debug=1 breakdown shows
// exactly what ITS freeze cost. With no trace in ctx the overhead is one
// context lookup; Freeze itself is unchanged.
func (m *Manager) FreezeContext(ctx context.Context, root VEdge, opts ...FreezeOption) (*Snapshot, error) {
	rt := obs.TraceFromContext(ctx)
	sp := rt.StartSpan(obs.PhaseFreeze)
	snap, err := m.Freeze(root, opts...)
	if rt != nil {
		if err != nil {
			sp.End(map[string]any{"error": err.Error()})
		} else {
			sp.End(map[string]any{"nodes": snap.Len(), "bytes": snap.Bytes()})
		}
	}
	return snap, err
}

// Freeze converts the live state DD rooted at root into an immutable
// Snapshot. The state itself is not modified; after Freeze returns, the
// Manager may be reused for further simulation (or garbage-collected
// entirely) without invalidating the Snapshot — this is the
// manager-reuse-after-freeze guarantee the parallel sampler relies on.
//
// Freezing is a single O(nodes) traversal and allocates only flat slices,
// outside the Manager's node budget: a frozen state can always be sampled,
// regardless of budget pressure on the live tables.
func (m *Manager) Freeze(root VEdge, opts ...FreezeOption) (*Snapshot, error) {
	if root.IsZero() {
		return nil, fmt.Errorf("dd: cannot freeze the zero vector")
	}
	if err := fault.Hit(fault.DDFreeze); err != nil {
		return nil, fmt.Errorf("dd: freeze: %w", err)
	}
	var cfg freezeConfig
	for _, o := range opts {
		o(&cfg)
	}
	fast := !cfg.generic && (m.norm == NormL2 || m.norm == NormL2Phase)

	s := &Snapshot{
		nqubits: m.nqubits,
		norm:    m.norm,
		generic: !fast,
		rootW:   root.W,
	}
	// Pre-size for the common case; the unique table bounds the reachable
	// node count from above.
	if n := m.vTab.n; n > 0 {
		hint := n
		const maxHint = 1 << 20
		if hint > maxHint {
			hint = maxHint
		}
		s.nodes = make([]SnapNode, 0, hint)
		s.down = make([]float64, 0, hint)
		s.origins = make([]*VNode, 0, hint)
	}

	// Dedup via the arena: node ids are dense indices, so a flat scratch
	// slice replaces the map[*VNode]int32 the pre-arena freeze paid one hash
	// per visit for. Entries store index+1; 0 means unseen.
	seen := make([]int32, m.varena.len())
	var freeze func(n *VNode) int32
	freeze = func(n *VNode) int32 {
		if n == nil {
			return SnapTerminal
		}
		if i := seen[n.id]; i != 0 {
			return i - 1
		}
		var sn SnapNode
		sn.V = int32(n.V)
		var d [2]float64
		var downMass float64
		for b := 0; b < 2; b++ {
			e := n.E[b]
			if e.IsZero() {
				sn.Kid[b] = SnapZero
				continue
			}
			sn.Kid[b] = freeze(e.N)
			sn.W[b] = e.W
			dk := 1.0
			if k := sn.Kid[b]; k >= 0 {
				dk = s.down[k]
			}
			d[b] = e.W.Abs2() * dk
			downMass += d[b]
		}
		// The branch threshold reproduces the live sampler's per-walk
		// arithmetic exactly, so frozen walks are bit-for-bit identical to
		// pointer walks for the same random sequence.
		if fast {
			sn.P0 = n.E[0].W.Abs2()
		} else if total := d[0] + d[1]; total > 0 {
			sn.P0 = d[0] / total
		}
		i := int32(len(s.nodes))
		s.nodes = append(s.nodes, sn)
		s.down = append(s.down, downMass)
		s.origins = append(s.origins, n)
		seen[n.id] = i + 1
		return i
	}
	s.root = freeze(root.N)

	// Upstream pass: parents have larger indices than children (post-order),
	// so one descending sweep accumulates root-to-node half-path mass.
	s.up = make([]float64, len(s.nodes))
	if s.root >= 0 {
		s.up[s.root] = root.W.Abs2()
	}
	for i := len(s.nodes) - 1; i >= 0; i-- {
		nd := &s.nodes[i]
		for b := 0; b < 2; b++ {
			if k := nd.Kid[b]; k >= 0 {
				s.up[k] += s.up[i] * nd.W[b].Abs2()
			}
		}
	}
	// Freeze-time self-check: a snapshot that fails its own invariants must
	// never reach a sampler (or a disk file), and a freeze over corrupted
	// node storage (arena/table divergence) must fail equally loudly. Both
	// audits are O(nodes), like the freeze itself.
	stop := m.startVerify("freeze")
	err := s.Verify()
	if err == nil {
		err = m.CheckStorage()
	}
	stop(err)
	if err != nil {
		return nil, fmt.Errorf("dd: freeze produced an invalid snapshot: %w", err)
	}
	return s, nil
}

// Qubits returns the register width of the frozen state.
func (s *Snapshot) Qubits() int { return s.nqubits }

// Norm returns the normalization scheme the state was built under.
func (s *Snapshot) Norm() Norm { return s.norm }

// Generic reports whether branch probabilities were computed by the generic
// downstream rule (true under NormLeft or FreezeGeneric) rather than read
// off the L2-normalized edge weights.
func (s *Snapshot) Generic() bool { return s.generic }

// Len returns the number of frozen nodes (the paper's "size" column).
func (s *Snapshot) Len() int { return len(s.nodes) }

// Root returns the root node index (SnapTerminal for a terminal root edge).
func (s *Snapshot) Root() int32 { return s.root }

// RootWeight returns the root edge weight.
func (s *Snapshot) RootWeight() cnum.Complex { return s.rootW }

// At returns the node at index i.
func (s *Snapshot) At(i int32) SnapNode { return s.nodes[i] }

// Nodes returns the backing node array. It is shared, not copied: callers
// must treat it as read-only. Exposed so the sampling hot loop can walk the
// flat array without a bounds-checked accessor per step.
func (s *Snapshot) Nodes() []SnapNode { return s.nodes }

// Down returns the downstream probability mass of node i: the total
// probability of all half-paths from the node to the terminal under a unit
// incoming weight (paper Section IV-B). Under L2 normalization every value
// is 1 up to the interning tolerance.
func (s *Snapshot) Down(i int32) float64 { return s.down[i] }

// Up returns the upstream probability mass of node i: the total probability
// of all half-paths from the root to the node.
func (s *Snapshot) Up(i int32) float64 { return s.up[i] }

// Traversal returns the absolute probability that a sample's walk visits
// node i: up·down (paper Section IV-B). Values on one level sum to 1 for a
// normalized state.
func (s *Snapshot) Traversal(i int32) float64 { return s.up[i] * s.down[i] }

// Origin returns the live *VNode that node i was frozen from, or nil when
// the snapshot carries no origin pointers — snapshots decoded from disk
// never do. Diagnostic surfaces use it to key results by node pointer; the
// pointer is only meaningful while the originating diagram still exists, and
// the Snapshot itself never dereferences it.
func (s *Snapshot) Origin(i int32) *VNode {
	if s.origins == nil {
		return nil
	}
	return s.origins[i]
}

// Amplitude returns the amplitude of basis state idx, computed from the
// frozen arrays alone — the product of edge weights along the path the bits
// of idx select.
func (s *Snapshot) Amplitude(idx uint64) cnum.Complex {
	acc := s.rootW
	cur := s.root
	for v := s.nqubits - 1; v >= 0; v-- {
		if cur < 0 {
			// Terminal above level 0 cannot happen in a well-formed state;
			// treat defensively as zero amplitude.
			return cnum.Zero
		}
		nd := &s.nodes[cur]
		b := idx >> uint(v) & 1
		if nd.Kid[b] == SnapZero {
			return cnum.Zero
		}
		acc = acc.Mul(nd.W[b])
		cur = nd.Kid[b]
	}
	return acc
}

// SnapshotStats summarizes a snapshot for CLI and benchmark reporting.
type SnapshotStats struct {
	// Nodes is the frozen node count.
	Nodes int
	// Bytes approximates the resident size of the flat arrays.
	Bytes int
	// Generic reports the branch-probability rule (see Snapshot.Generic).
	Generic bool
}

// Bytes approximates the resident size of the snapshot's flat arrays in
// bytes. It is the unit the serving layer's snapshot LRU accounts cache
// capacity in: an admitted snapshot charges exactly Bytes against the cache
// budget, and evictions release the same amount. The estimate is intentional
// arithmetic over the slice lengths (no unsafe.Sizeof walking), so it is
// stable across architectures and cheap enough to call on every admission.
func (s *Snapshot) Bytes() int {
	const nodeBytes = 8 + 8 + 32 + 4 + 4 // Kid + P0 + W + V + padding
	return len(s.nodes)*nodeBytes + len(s.down)*8 + len(s.up)*8 + len(s.origins)*8
}

// Stats returns size statistics for the snapshot.
func (s *Snapshot) Stats() SnapshotStats {
	return SnapshotStats{
		Nodes:   len(s.nodes),
		Bytes:   s.Bytes(),
		Generic: s.generic,
	}
}
