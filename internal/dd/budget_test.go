package dd

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func TestNodeBudgetUnlimitedByDefault(t *testing.T) {
	m := New(4)
	if m.NodeBudget() != 0 {
		t.Errorf("default budget = %d, want 0 (unlimited)", m.NodeBudget())
	}
	if err := m.CheckNodeBudget(); err != nil {
		t.Errorf("unlimited manager reported budget error: %v", err)
	}
	// Build a moderately large state: no error, but the peak is tracked.
	r := rand.New(rand.NewPCG(1, 2))
	st, err := m.FromVector(randomState(r, 4))
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Mul(m.GateDD(GateMatrix(hMatrix), 0), st)
	if m.PeakNodes() == 0 {
		t.Error("peak node count not tracked")
	}
	if m.LiveNodes() == 0 {
		t.Error("live node count is zero after building a state")
	}
}

func TestGuardedSurfacesErrNodeBudget(t *testing.T) {
	m := New(6, WithNodeBudget(3))
	r := rand.New(rand.NewPCG(3, 4))
	err := m.Guarded(func() error {
		st, err := m.FromVector(randomState(r, 6))
		if err != nil {
			return err
		}
		_ = st
		return nil
	})
	if !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("expected ErrNodeBudget, got %v", err)
	}
	// The error message should carry the live/budget numbers for the MO cell.
	if err.Error() == ErrNodeBudget.Error() {
		t.Errorf("budget error lacks live/budget detail: %q", err)
	}
	// The manager stays usable after an abort: lift the budget and retry.
	m.SetNodeBudget(0)
	if err := m.Guarded(func() error {
		_, err := m.FromVector(randomState(r, 6))
		return err
	}); err != nil {
		t.Fatalf("manager unusable after budget abort: %v", err)
	}
}

func TestGuardedPassesThroughOrdinaryErrors(t *testing.T) {
	m := New(2, WithNodeBudget(1000))
	sentinel := errors.New("boom")
	if err := m.Guarded(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Guarded altered an ordinary error: %v", err)
	}
	if err := m.Guarded(func() error { return nil }); err != nil {
		t.Errorf("Guarded invented an error: %v", err)
	}
}

func TestGuardedRethrowsForeignPanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("Guarded swallowed a non-budget panic")
		}
	}()
	_ = m.Guarded(func() error { panic("unrelated") })
}

func TestCheckNodeBudgetOverLimit(t *testing.T) {
	m := New(5)
	r := rand.New(rand.NewPCG(5, 6))
	if _, err := m.FromVector(randomState(r, 5)); err != nil {
		t.Fatal(err)
	}
	live := m.LiveNodes()
	m.SetNodeBudget(live - 1)
	if err := m.CheckNodeBudget(); !errors.Is(err, ErrNodeBudget) {
		t.Errorf("over-budget manager: CheckNodeBudget = %v, want ErrNodeBudget", err)
	}
	if !m.ShouldGC() {
		t.Error("over-budget manager should demand GC")
	}
	m.SetNodeBudget(live + 1)
	if err := m.CheckNodeBudget(); err != nil {
		t.Errorf("under-budget manager: CheckNodeBudget = %v", err)
	}
}

func TestPeakNodesSurvivesGC(t *testing.T) {
	m := New(5, WithNodeBudget(0))
	r := rand.New(rand.NewPCG(7, 8))
	if _, err := m.FromVector(randomState(r, 5)); err != nil {
		t.Fatal(err)
	}
	peak := m.PeakNodes()
	m.GC(nil, nil) // keep nothing: all nodes are garbage
	if m.LiveNodes() != 0 {
		t.Errorf("GC with no roots left %d live nodes", m.LiveNodes())
	}
	if m.PeakNodes() != peak {
		t.Errorf("peak dropped across GC: %d → %d", peak, m.PeakNodes())
	}
}
