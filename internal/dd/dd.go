// Package dd implements edge-weighted decision diagrams for quantum states
// (vector DDs) and quantum operations (matrix DDs).
//
// A vector DD represents a 2^n-element complex vector. Each node splits the
// vector into two halves on one qubit: the 0-successor (left edge) covers
// the half where that qubit is |0⟩, the 1-successor (right edge) the half
// where it is |1⟩. Identical sub-vectors are shared via a unique table, and
// common factors are pulled out into edge weights, so the amplitude of a
// basis state is the product of the edge weights along its root-to-terminal
// path. Matrix DDs split a 2^n x 2^n matrix into four quadrants per level in
// the same fashion.
//
// Conventions used throughout this package:
//
//   - Qubit q0 is the least significant bit of a basis-state index and sits
//     at the lowest level; qubit q_{n-1} is the most significant and labels
//     the root node (matching the paper's Fig. 4).
//   - Levels are never skipped: every non-zero edge at level v points to a
//     node labeled v, and every root-to-terminal path of an n-qubit DD has
//     exactly n nodes. Redundant nodes (equal children) are kept, as is
//     standard for quantum decision diagrams.
//   - The all-zero (sub-)vector is represented by the zero edge: weight 0,
//     nil target. A nil target with non-zero weight is the terminal and only
//     appears below level 0.
//
// The Manager owns the unique tables, the complex-value interning table, the
// compute caches, and a mark-and-sweep garbage collector. All operations on
// edges must go through the Manager that created them. A Manager is not safe
// for concurrent use.
package dd

import (
	"fmt"

	"weaksim/internal/cnum"
)

// Norm selects the edge-weight normalization scheme applied when a vector
// node is created. The scheme decides which common factor of the two
// outgoing edge weights is pulled up into the incoming edge.
type Norm int

const (
	// NormLeft divides both outgoing weights by the leftmost non-zero
	// weight. This is the conventional scheme the paper uses as the point
	// of comparison (Fig. 4b).
	NormLeft Norm = iota
	// NormL2 divides both outgoing weights by the Euclidean norm of the
	// weight pair, so the squared magnitudes of the outgoing weights sum
	// to 1. This is the paper's proposed scheme (Section IV-C, Fig. 4d):
	// the weights directly encode measurement probabilities.
	NormL2
	// NormL2Phase additionally divides out the phase of the leftmost
	// non-zero weight, making the representation canonical up to the
	// interning tolerance (two equal sub-vectors always share a node even
	// when they reach the node with different global phases). It keeps
	// the probability-readability of NormL2.
	NormL2Phase
)

// String returns the scheme name used in benchmarks and CLI flags.
func (n Norm) String() string {
	switch n {
	case NormLeft:
		return "left"
	case NormL2:
		return "l2"
	case NormL2Phase:
		return "l2phase"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// ParseNorm converts a CLI flag value into a Norm.
func ParseNorm(s string) (Norm, error) {
	switch s {
	case "left":
		return NormLeft, nil
	case "l2":
		return NormL2, nil
	case "l2phase":
		return NormL2Phase, nil
	}
	return 0, fmt.Errorf("dd: unknown normalization scheme %q (want left, l2, or l2phase)", s)
}

// Control describes a control qubit of a quantum operation. A negative
// control activates the operation when the qubit is |0⟩.
type Control struct {
	Qubit    int
	Negative bool
}

// Pos is shorthand for a positive control on qubit q.
func Pos(q int) Control { return Control{Qubit: q} }

// Neg is shorthand for a negative control on qubit q.
func Neg(q int) Control { return Control{Qubit: q, Negative: true} }

// DefaultCacheSize bounds each compute cache (entries). Each cache is a
// direct-mapped table whose slot count is the power-of-two floor of this
// bound; colliding entries overwrite each other. Correctness never depends
// on cache contents.
const DefaultCacheSize = 1 << 20

// DefaultGCThreshold is the unique-table size past which ShouldGC reports
// true. Simulation drivers consult it between gate applications.
const DefaultGCThreshold = 1 << 21

// Manager owns all tables backing a family of decision diagrams.
type Manager struct {
	nqubits int
	norm    Norm
	ctab    *cnum.Table

	// Node storage: all nodes live in per-manager slab arenas; canonicity
	// goes through open-addressing unique tables over the arena nodes.
	varena vArena
	marena mArena
	vTab   vTable
	mTab   mTable

	// Compute caches: fixed-size direct-mapped tables, lazily allocated on
	// first insert, invalidated per-slot via cacheEpoch (bumped by GC).
	mulCache   mulCache
	addCache   addCache
	mops       *matOps
	cacheSize  int
	cacheEpoch uint32

	gcThreshold int
	nodeBudget  int // 0 = unlimited; see WithNodeBudget
	peakNodes   int
	gen         uint32
	obs         *ddMetrics // nil = telemetry disabled; see SetObserver

	// counters for instrumentation
	vHits, vMisses uint64
	mHits, mMisses uint64
	mulHits        uint64
	mulMisses      uint64
	addHits        uint64
	addMisses      uint64
	matHits        uint64 // matrix-op caches (MulMM/AddMM/Adjoint) combined
	matMisses      uint64
	uniqueProbes   uint64 // cumulative unique-table slot inspections
	uniqueLookups  uint64 // unique-table lookups (v + m)
	cacheEvictions uint64 // compute-cache entries overwritten by collisions
	gcRuns         uint64
}

// Option configures a Manager.
type Option func(*Manager)

// WithNormalization selects the vector-node normalization scheme. The
// default is NormL2Phase.
func WithNormalization(n Norm) Option { return func(m *Manager) { m.norm = n } }

// WithTolerance sets the complex-value interning tolerance.
func WithTolerance(tol float64) Option {
	return func(m *Manager) { m.ctab = cnum.NewTableTol(tol) }
}

// WithCacheSize bounds the compute caches to n entries each.
func WithCacheSize(n int) Option { return func(m *Manager) { m.cacheSize = n } }

// WithGCThreshold sets the unique-table size past which ShouldGC reports
// true.
func WithGCThreshold(n int) Option { return func(m *Manager) { m.gcThreshold = n } }

// MaxQubits bounds the register width: basis-state indices are uint64.
const MaxQubits = 64

// New creates a Manager for n-qubit decision diagrams.
func New(nqubits int, opts ...Option) *Manager {
	if nqubits < 1 {
		panic("dd: manager needs at least one qubit")
	}
	if nqubits > MaxQubits {
		panic("dd: at most 64 qubits are supported (indices are uint64)")
	}
	m := &Manager{
		nqubits:     nqubits,
		norm:        NormL2Phase,
		ctab:        cnum.NewTable(),
		vTab:        newVTable(),
		mTab:        newMTable(),
		cacheSize:   DefaultCacheSize,
		gcThreshold: DefaultGCThreshold,
		cacheEpoch:  1, // zero-valued cache entries (epoch 0) never match
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// cacheSlots returns the per-cache slot count derived from the configured
// cacheSize bound.
func (m *Manager) cacheSlots() int { return cacheSlotsFor(m.cacheSize) }

// Qubits returns the number of qubits the Manager was created for.
func (m *Manager) Qubits() int { return m.nqubits }

// Normalization returns the active vector normalization scheme.
func (m *Manager) Normalization() Norm { return m.norm }

// Tolerance returns the complex interning tolerance.
func (m *Manager) Tolerance() float64 { return m.ctab.Tolerance() }

// Lookup canonicalizes a complex value through the Manager's interning
// table. Exported for packages that construct DDs node by node.
func (m *Manager) Lookup(c cnum.Complex) cnum.Complex { return m.ctab.Lookup(c) }

// Stats reports the current table and cache occupancy.
type Stats struct {
	VNodes, MNodes int
	PeakNodes      int
	// MulEntries/AddEntries report the allocated direct-mapped slot count
	// of the matrix-vector and vector-add caches (0 until first use).
	MulEntries           int
	AddEntries           int
	VHits, VMisses       uint64
	MHits, MMisses       uint64
	MulHits, MulMisses   uint64
	AddHits, AddMisses   uint64
	MatHits, MatMisses   uint64 // matrix-op caches (MulMM/AddMM/Adjoint)
	UniqueProbeSteps     uint64 // cumulative unique-table slot inspections
	UniqueLookups        uint64 // unique-table lookups across both tables
	CacheEvictions       uint64 // compute-cache entries overwritten by collisions
	ArenaSlabs           int    // allocated node slabs across both arenas
	FreelistLen          int    // recycled-and-unused arena slots
	GCRuns               uint64
	ComplexTableEntries  int
	ComplexHits, CMisses uint64
}

// TableStats returns a snapshot of table and cache statistics. Reading a
// snapshot refreshes the peak-node high-water mark, so PeakNodes is never
// stale relative to the live count a reader observes.
func (m *Manager) TableStats() Stats {
	m.refreshPeak()
	ch, cm := m.ctab.Stats()
	return Stats{
		VNodes: m.vTab.n, MNodes: m.mTab.n,
		PeakNodes:  m.peakNodes,
		MulEntries: len(m.mulCache.entries), AddEntries: len(m.addCache.entries),
		VHits: m.vHits, VMisses: m.vMisses,
		MHits: m.mHits, MMisses: m.mMisses,
		MulHits: m.mulHits, MulMisses: m.mulMisses,
		AddHits: m.addHits, AddMisses: m.addMisses,
		MatHits: m.matHits, MatMisses: m.matMisses,
		UniqueProbeSteps:    m.uniqueProbes,
		UniqueLookups:       m.uniqueLookups,
		CacheEvictions:      m.cacheEvictions,
		ArenaSlabs:          len(m.varena.slabs) + len(m.marena.slabs),
		FreelistLen:         len(m.varena.free) + len(m.marena.free),
		GCRuns:              m.gcRuns,
		ComplexTableEntries: m.ctab.Len(),
		ComplexHits:         ch, CMisses: cm,
	}
}
