package dd

// DD invariant self-checks.
//
// Everything this system serves rests on a handful of structural invariants
// of the decision diagram (Wille, Hillmich & Burgholzer, "Decision Diagrams
// for Quantum Computing", 2023): edge weights normalized per the active
// rule, hash-cons canonicity through the unique table, the zero-edge
// convention, no skipped levels, and — for a quantum state — total
// probability mass 1. A bug (or a bit flip in a persisted snapshot) that
// violates any of them does not crash the sampler; it silently skews every
// count drawn afterwards. So the invariants are checked actively:
// Manager.CheckInvariants walks a live state, Snapshot.Verify audits the
// frozen flat arrays, Freeze verifies its own output before returning, and
// the snapshot store verifies every file it loads before the cache may
// serve from it.
//
// All comparisons use InvariantTol: interning snaps weight components to a
// 1e-10 lattice, and derived quantities accumulate that noise over at most
// MaxQubits levels, so 1e-6 separates real corruption from float dust by
// orders of magnitude on both sides.

import (
	"errors"
	"fmt"
	"math"

	"weaksim/internal/cnum"
)

// InvariantTol is the absolute tolerance of all numeric invariant checks.
const InvariantTol = 1e-6

// ErrInvariant is the root of every invariant-violation error; detect with
// errors.Is. The concrete value is always an *InvariantError naming the
// violated check.
var ErrInvariant = errors.New("dd: invariant violated")

// Invariant check identifiers, used in error reports and metric names
// (dd_invariant_<check>_failures_total).
const (
	CheckZeroEdge   = "zero_edge"  // zero weight ⇔ nil target (below terminal)
	CheckLevels     = "levels"     // children sit exactly one level down
	CheckNormRule   = "norm_rule"  // edge weights obey the active normalization
	CheckCanonicity = "canonicity" // every reachable node is hash-consed in the unique table
	CheckArena      = "arena"      // every node occupies its own arena slot; free slots are truly dead
	CheckTable      = "table"      // unique-table slots, stored hashes, and counts are coherent
	CheckPostOrder  = "post_order" // snapshot children carry smaller indices
	CheckP0Range    = "p0_range"   // branch thresholds lie in [0, 1]
	CheckThreshold  = "threshold"  // P0 matches the active sampling rule
	CheckMass       = "mass"       // downstream/upstream masses consistent, total mass 1
)

// InvariantError reports one violated invariant.
type InvariantError struct {
	// Check is one of the Check* identifiers.
	Check string
	// Detail locates and describes the violation.
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("dd: invariant violated: %s: %s", e.Check, e.Detail)
}

// Unwrap makes errors.Is(err, ErrInvariant) hold.
func (e *InvariantError) Unwrap() error { return ErrInvariant }

func violated(check, format string, args ...any) error {
	return &InvariantError{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// CheckInvariants audits the live state DD rooted at root: the zero-edge
// convention, strict level descent, the active edge-weight normalization
// rule on every reachable node, unique-table canonicity (every reachable
// node is present in the hash-cons table under its own key — the property
// sharing and node counting rest on), and unit total probability mass.
//
// The walk is O(reachable nodes) and read-only. Run it at trust boundaries
// — after strong simulation, before freezing — not per gate. Note that
// canonicity only holds for states whose roots were kept across garbage
// collections; a state deliberately abandoned to GC loses it by design.
func (m *Manager) CheckInvariants(root VEdge) (err error) {
	stop := m.startVerify("check-invariants")
	defer func() { stop(err) }()

	if root.IsZero() {
		return violated(CheckZeroEdge, "state root is the zero edge")
	}
	if root.N == nil {
		return violated(CheckLevels, "state root is a bare terminal for %d qubits", m.nqubits)
	}
	if root.N.V != m.nqubits-1 {
		return violated(CheckLevels, "root node at level %d, want %d", root.N.V, m.nqubits-1)
	}

	down := make(map[*VNode]float64)
	var walk func(n *VNode) (float64, error)
	walk = func(n *VNode) (float64, error) {
		if d, ok := down[n]; ok {
			return d, nil
		}
		// Zero-edge convention and level descent.
		for b := 0; b < 2; b++ {
			e := n.E[b]
			if e.W.IsZero() && e.N != nil {
				return 0, violated(CheckZeroEdge, "level %d node: %d-edge has zero weight but non-nil target", n.V, b)
			}
			if e.IsZero() {
				continue
			}
			if e.N == nil && n.V != 0 {
				return 0, violated(CheckLevels, "level %d node: %d-edge reaches the terminal above level 0", n.V, b)
			}
			if e.N != nil && e.N.V != n.V-1 {
				return 0, violated(CheckLevels, "level %d node: %d-edge skips to level %d", n.V, b, e.N.V)
			}
		}
		// Normalization rule.
		if err := checkNormWeights(m.norm, n.V, n.E[0].W, n.E[1].W); err != nil {
			return 0, err
		}
		// Unique-table canonicity: re-derive the hash from the node's
		// structure (a stale stored hash must not mask a violation) and
		// demand the probe sequence resolves to this very node.
		h := vNodeHash(n.V, n.E[0], n.E[1])
		if got, _, _ := m.vTab.lookup(h, n.V, n.E[0], n.E[1]); got != n {
			return 0, violated(CheckCanonicity,
				"level %d node %p is not the unique-table entry for its structure (found %p)",
				n.V, n, got)
		}
		// Arena residency: the node must occupy the slot its id names.
		if n.id < 0 || n.id >= m.varena.len() || m.varena.at(n.id) != n {
			return 0, violated(CheckArena, "level %d node %p claims arena slot %d it does not occupy", n.V, n, n.id)
		}
		var d float64
		for b := 0; b < 2; b++ {
			e := n.E[b]
			if e.IsZero() {
				continue
			}
			dk := 1.0
			if e.N != nil {
				var werr error
				if dk, werr = walk(e.N); werr != nil {
					return 0, werr
				}
			}
			d += e.W.Abs2() * dk
		}
		down[n] = d
		return d, nil
	}
	rootDown, werr := walk(root.N)
	if werr != nil {
		return werr
	}
	if mass := root.W.Abs2() * rootDown; math.Abs(mass-1) > InvariantTol {
		return violated(CheckMass, "total probability mass %.12f, want 1 ± %g", mass, InvariantTol)
	}
	return nil
}

// CheckStorage audits the node-storage layer wholesale: every unique-table
// slot must hold a node that occupies its own arena slot, stores the hash of
// its own structure, and is found again by its probe sequence; every
// free-list entry must name a truly dead slot (freed level marker, cleared
// successors, no duplicates); and the accounting identity
//
//	table-resident nodes + free slots == arena slots ever issued
//
// must hold for both node kinds — i.e. no node is leaked outside the table
// and no slot is simultaneously live and free. The audit is O(table slots +
// free list) and read-only. Freeze runs it on every call, so corruption in
// the storage layer is caught at the same trust boundary as a corrupt
// snapshot.
func (m *Manager) CheckStorage() (err error) {
	stop := m.startVerify("check-storage")
	defer func() { stop(err) }()
	if err := m.checkVStorage(); err != nil {
		return err
	}
	return m.checkMStorage()
}

func (m *Manager) checkVStorage() error {
	occupied := 0
	for slot, c := range m.vTab.slots {
		if c == nil {
			continue
		}
		occupied++
		if c.id < 0 || c.id >= m.varena.len() || m.varena.at(c.id) != c {
			return violated(CheckArena, "v-table slot %d node %p claims arena slot %d it does not occupy", slot, c, c.id)
		}
		if c.V == freedLevel {
			return violated(CheckTable, "v-table slot %d references freed arena slot %d", slot, c.id)
		}
		if h := vNodeHash(c.V, c.E[0], c.E[1]); c.hash != h {
			return violated(CheckTable, "v-table slot %d node %p stored hash %#x, structure hashes to %#x", slot, c, c.hash, h)
		}
		if got, _, _ := m.vTab.lookup(c.hash, c.V, c.E[0], c.E[1]); got != c {
			return violated(CheckTable, "v-table slot %d node %p unreachable from its probe sequence (lookup found %p)", slot, c, got)
		}
	}
	if occupied != m.vTab.n {
		return violated(CheckTable, "v-table count %d, but %d slots occupied", m.vTab.n, occupied)
	}
	onFree := make([]bool, m.varena.len())
	for _, id := range m.varena.free {
		if id < 0 || id >= m.varena.len() {
			return violated(CheckArena, "v-free-list names slot %d outside the arena (%d issued)", id, m.varena.len())
		}
		if onFree[id] {
			return violated(CheckArena, "v-free-list names slot %d twice", id)
		}
		onFree[id] = true
		n := m.varena.at(id)
		if n.id != id || n.V != freedLevel || n.E != [2]VEdge{} {
			return violated(CheckArena, "v-free-list slot %d still carries structure (level %d)", id, n.V)
		}
	}
	if got := m.vTab.n + len(m.varena.free); got != int(m.varena.len()) {
		return violated(CheckArena, "v-node accounting: %d table-resident + %d free != %d issued",
			m.vTab.n, len(m.varena.free), m.varena.len())
	}
	return nil
}

func (m *Manager) checkMStorage() error {
	occupied := 0
	for slot, c := range m.mTab.slots {
		if c == nil {
			continue
		}
		occupied++
		if c.id < 0 || c.id >= m.marena.len() || m.marena.at(c.id) != c {
			return violated(CheckArena, "m-table slot %d node %p claims arena slot %d it does not occupy", slot, c, c.id)
		}
		if c.V == freedLevel {
			return violated(CheckTable, "m-table slot %d references freed arena slot %d", slot, c.id)
		}
		if h := mNodeHash(c.V, &c.E); c.hash != h {
			return violated(CheckTable, "m-table slot %d node %p stored hash %#x, structure hashes to %#x", slot, c, c.hash, h)
		}
		if got, _, _ := m.mTab.lookup(c.hash, c.V, &c.E); got != c {
			return violated(CheckTable, "m-table slot %d node %p unreachable from its probe sequence (lookup found %p)", slot, c, got)
		}
	}
	if occupied != m.mTab.n {
		return violated(CheckTable, "m-table count %d, but %d slots occupied", m.mTab.n, occupied)
	}
	onFree := make([]bool, m.marena.len())
	for _, id := range m.marena.free {
		if id < 0 || id >= m.marena.len() {
			return violated(CheckArena, "m-free-list names slot %d outside the arena (%d issued)", id, m.marena.len())
		}
		if onFree[id] {
			return violated(CheckArena, "m-free-list names slot %d twice", id)
		}
		onFree[id] = true
		n := m.marena.at(id)
		if n.id != id || n.V != freedLevel || n.E != [4]MEdge{} {
			return violated(CheckArena, "m-free-list slot %d still carries structure (level %d)", id, n.V)
		}
	}
	if got := m.mTab.n + len(m.marena.free); got != int(m.marena.len()) {
		return violated(CheckArena, "m-node accounting: %d table-resident + %d free != %d issued",
			m.mTab.n, len(m.marena.free), m.marena.len())
	}
	return nil
}

// checkNormWeights verifies one outgoing weight pair against the
// normalization scheme. level is only used in error reports.
func checkNormWeights(norm Norm, level int, w0, w1 cnum.Complex) error {
	lead := w0
	if lead.IsZero() {
		lead = w1
	}
	switch norm {
	case NormLeft:
		if !lead.ApproxEq(cnum.One, InvariantTol) {
			return violated(CheckNormRule, "level %d: leftmost non-zero weight %v, want 1 (NormLeft)", level, lead)
		}
	case NormL2, NormL2Phase:
		if sum := w0.Abs2() + w1.Abs2(); math.Abs(sum-1) > InvariantTol {
			return violated(CheckNormRule, "level %d: |w0|²+|w1|² = %.12f, want 1 ± %g (%s)", level, sum, InvariantTol, norm)
		}
		if norm == NormL2Phase {
			if math.Abs(lead.Im) > InvariantTol || lead.Re < 0 {
				return violated(CheckNormRule, "level %d: leading weight %v carries a phase (NormL2Phase pulls it out)", level, lead)
			}
		}
	default:
		return violated(CheckNormRule, "unknown normalization scheme %d", int(norm))
	}
	return nil
}

// Verify audits the frozen flat arrays against every invariant the sampling
// walk depends on: array-length coherence, post-order child indexing, strict
// level descent, the zero-edge convention mirrored into Kid/W, branch
// thresholds in [0, 1] that match the active sampling rule, the edge-weight
// normalization rule, and downstream/upstream mass consistency with unit
// total probability. It is pure and read-only, and it is the gate a
// persisted snapshot must pass before the cache may serve from it.
func (s *Snapshot) Verify() error {
	n := len(s.nodes)
	if len(s.down) != n || len(s.up) != n {
		return violated(CheckMass, "array lengths diverge: %d nodes, %d down, %d up", n, len(s.down), len(s.up))
	}
	if s.origins != nil && len(s.origins) != n {
		return violated(CheckPostOrder, "origins length %d for %d nodes", len(s.origins), n)
	}
	if s.nqubits < 1 || s.nqubits > MaxQubits {
		return violated(CheckLevels, "snapshot claims %d qubits", s.nqubits)
	}
	if s.root < 0 || int(s.root) >= n {
		return violated(CheckPostOrder, "root index %d outside [0, %d)", s.root, n)
	}
	if rv := s.nodes[s.root].V; int(rv) != s.nqubits-1 {
		return violated(CheckLevels, "root node at level %d, want %d", rv, s.nqubits-1)
	}

	for i := 0; i < n; i++ {
		nd := &s.nodes[i]
		if nd.V < 0 || int(nd.V) >= s.nqubits {
			return violated(CheckLevels, "node %d at level %d outside [0, %d)", i, nd.V, s.nqubits)
		}
		var d [2]float64
		var downMass float64
		for b := 0; b < 2; b++ {
			kid := nd.Kid[b]
			switch {
			case kid == SnapZero:
				if !nd.W[b].IsZero() {
					return violated(CheckZeroEdge, "node %d: zero %d-edge carries weight %v", i, b, nd.W[b])
				}
				continue
			case kid == SnapTerminal:
				if nd.V != 0 {
					return violated(CheckLevels, "node %d: terminal %d-edge above level 0 (level %d)", i, b, nd.V)
				}
			case kid >= 0 && int(kid) < i:
				if s.nodes[kid].V != nd.V-1 {
					return violated(CheckLevels, "node %d (level %d): %d-edge skips to level %d", i, nd.V, b, s.nodes[kid].V)
				}
			default:
				return violated(CheckPostOrder, "node %d: %d-edge index %d violates post-order", i, b, kid)
			}
			if nd.W[b].IsZero() {
				return violated(CheckZeroEdge, "node %d: non-zero %d-edge carries zero weight", i, b)
			}
			dk := 1.0
			if kid >= 0 {
				dk = s.down[kid]
			}
			d[b] = nd.W[b].Abs2() * dk
			downMass += d[b]
		}
		if math.Abs(s.down[i]-downMass) > InvariantTol*math.Max(1, downMass) {
			return violated(CheckMass, "node %d: stored downstream mass %.12f, recomputed %.12f", i, s.down[i], downMass)
		}
		if nd.P0 < -InvariantTol || nd.P0 > 1+InvariantTol {
			return violated(CheckP0Range, "node %d: branch threshold P0 = %.12f outside [0, 1]", i, nd.P0)
		}
		// Threshold rule: fast path reads |w0|² off the weights; generic
		// path renormalizes by downstream mass.
		if s.generic {
			if total := d[0] + d[1]; total > 0 {
				if want := d[0] / total; math.Abs(nd.P0-want) > InvariantTol {
					return violated(CheckThreshold, "node %d: generic P0 = %.12f, want d0/(d0+d1) = %.12f", i, nd.P0, want)
				}
			}
		} else {
			if want := nd.W[0].Abs2(); math.Abs(nd.P0-want) > InvariantTol {
				return violated(CheckThreshold, "node %d: fast-path P0 = %.12f, want |w0|² = %.12f", i, nd.P0, want)
			}
		}
		if err := checkNormWeights(s.norm, int(nd.V), nd.W[0], nd.W[1]); err != nil {
			return err
		}
	}

	// Upstream masses: one descending recompute pass, then total mass.
	up := make([]float64, n)
	up[s.root] = s.rootW.Abs2()
	for i := n - 1; i >= 0; i-- {
		nd := &s.nodes[i]
		for b := 0; b < 2; b++ {
			if k := nd.Kid[b]; k >= 0 {
				up[k] += up[i] * nd.W[b].Abs2()
			}
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(up[i]-s.up[i]) > InvariantTol*math.Max(1, up[i]) {
			return violated(CheckMass, "node %d: stored upstream mass %.12f, recomputed %.12f", i, s.up[i], up[i])
		}
	}
	if mass := s.rootW.Abs2() * s.down[s.root]; math.Abs(mass-1) > InvariantTol {
		return violated(CheckMass, "total probability mass %.12f, want 1 ± %g", mass, InvariantTol)
	}
	return nil
}
