package dd

import (
	"math/rand/v2"
	"testing"
)

// The storage-layer microbenchmarks pin the three hot paths the arena /
// open-addressing refactor targets: node creation through the unique table,
// pure unique-table lookups, and compute-cache hits. The hit paths must not
// allocate — TestStorageHitPathsAllocFree holds AllocsPerRun to exactly
// zero, so any future change that sneaks an allocation into a probe fails
// the suite rather than a benchmark review.

// benchWorklist harvests every (level, e0, e1) triple of a random state's
// nodes: feeding them back through MakeVNode exercises the unique-table hit
// path with realistic structure sharing.
func benchWorklist(m *Manager, root VEdge) (levels []int, succ [][2]VEdge) {
	seen := map[*VNode]bool{}
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		levels = append(levels, n.V)
		succ = append(succ, n.E)
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(root.N)
	return levels, succ
}

func benchRandomDD(b *testing.B, n int, norm Norm) (*Manager, VEdge) {
	b.Helper()
	m := New(n, WithNormalization(norm))
	r := rand.New(rand.NewPCG(7, 9))
	st, err := m.FromVector(randomState(r, n))
	if err != nil {
		b.Fatal(err)
	}
	return m, st
}

// BenchmarkMakeVNode measures MakeVNode on the hit path: normalization,
// weight interning, hash, and the unique-table probe for a node that already
// exists. This is the per-node cost every gate application pays.
func BenchmarkMakeVNode(b *testing.B) {
	for _, norm := range []Norm{NormLeft, NormL2Phase} {
		norm := norm
		b.Run(norm.String(), func(b *testing.B) {
			m, st := benchRandomDD(b, 10, norm)
			levels, succ := benchWorklist(m, st)
			b.ReportAllocs()
			b.ResetTimer()
			var sink VEdge
			for i := 0; i < b.N; i++ {
				k := i % len(levels)
				sink = m.MakeVNode(levels[k], succ[k][0], succ[k][1])
			}
			_ = sink
		})
	}
}

// BenchmarkUniqueLookup isolates the unique-table probe: the successors are
// already canonical (weights interned, normalization a no-op for the stored
// pairs), so the work left is hashing and the table walk.
func BenchmarkUniqueLookup(b *testing.B) {
	m, st := benchRandomDD(b, 12, NormL2Phase)
	levels, succ := benchWorklist(m, st)
	b.ReportAllocs()
	b.ResetTimer()
	var sink VEdge
	for i := 0; i < b.N; i++ {
		k := i % len(levels)
		sink = m.MakeVNode(levels[k], succ[k][0], succ[k][1])
	}
	_ = sink
}

// BenchmarkComputeCacheHit measures Mul when the (operator node, state node)
// pair is already cached: one probe at the root level answers the whole
// product.
func BenchmarkComputeCacheHit(b *testing.B) {
	m, st := benchRandomDD(b, 10, NormL2Phase)
	op := m.GateDD(GateMatrix(hMatrix), 4, Pos(7))
	res := m.Mul(op, st) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = m.Mul(op, st)
	}
	_ = res
}

// TestStorageHitPathsAllocFree pins AllocsPerRun == 0 on the three hit
// paths: MakeVNode of an existing node, the same probe under NormLeft, and a
// compute-cache hit. A regression here means a probe started allocating.
func TestStorageHitPathsAllocFree(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m := New(8, WithNormalization(norm))
		r := rand.New(rand.NewPCG(11, 13))
		st, err := m.FromVector(randomState(r, 8))
		if err != nil {
			t.Fatal(err)
		}
		levels, succ := benchWorklist(m, st)
		k := len(levels) / 2
		if got := testing.AllocsPerRun(200, func() {
			m.MakeVNode(levels[k], succ[k][0], succ[k][1])
		}); got != 0 {
			t.Errorf("norm %v: MakeVNode hit path allocates %.1f/op, want 0", norm, got)
		}

		op := m.GateDD(GateMatrix(hMatrix), 3)
		m.Mul(op, st) // warm
		if got := testing.AllocsPerRun(200, func() {
			m.Mul(op, st)
		}); got != 0 {
			t.Errorf("norm %v: compute-cache hit path allocates %.1f/op, want 0", norm, got)
		}

		m.Add(st, st) // warm the add cache
		if got := testing.AllocsPerRun(200, func() {
			m.Add(st, st)
		}); got != 0 {
			t.Errorf("norm %v: add-cache hit path allocates %.1f/op, want 0", norm, got)
		}
	}
}
