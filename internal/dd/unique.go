package dd

import (
	"math"

	"weaksim/internal/cnum"
)

// MakeVNode creates (or finds) the vector node at level v with successors
// e0 and e1, applies the Manager's normalization scheme, and returns the
// normalized edge pointing at it. The weight of the returned edge carries
// the factor pulled out of the successors; callers must multiply it into
// whatever incoming weight they hold.
//
// Both successors must either be zero edges or sit at level v-1 (terminal
// edges for v == 0).
func (m *Manager) MakeVNode(v int, e0, e1 VEdge) VEdge {
	if v < 0 || v >= m.nqubits {
		panic("dd: MakeVNode level out of range")
	}
	return m.makeVNode(v, e0, e1)
}

func (m *Manager) makeVNode(v int, e0, e1 VEdge) VEdge {
	// Canonicalize zero successors to the zero edge.
	if e0.W.IsZero() {
		e0 = VEdge{}
	}
	if e1.W.IsZero() {
		e1 = VEdge{}
	}
	if e0.IsZero() && e1.IsZero() {
		return VEdge{}
	}

	f := m.normFactor(e0.W, e1.W)
	e0.W = m.ctab.Lookup(e0.W.Div(f))
	e1.W = m.ctab.Lookup(e1.W.Div(f))
	// Interning may flush a tiny weight to exactly zero; keep the zero-edge
	// invariant (zero weight implies nil target).
	if e0.W.IsZero() {
		e0 = VEdge{}
	}
	if e1.W.IsZero() {
		e1 = VEdge{}
	}

	h := vNodeHash(v, e0, e1)
	n, slot, probes := m.vTab.lookup(h, v, e0, e1)
	m.uniqueLookups++
	m.uniqueProbes += uint64(probes)
	if n != nil {
		m.vHits++
	} else {
		m.vMisses++
		n = m.varena.alloc()
		n.V = v
		n.E = [2]VEdge{e0, e1}
		n.hash = h
		m.vTab.insert(slot, n)
		m.noteGrowth()
	}
	return VEdge{W: m.ctab.Lookup(f), N: n}
}

// normFactor returns the common factor to divide out of the weight pair
// (w0, w1), at least one of which is non-zero.
func (m *Manager) normFactor(w0, w1 cnum.Complex) cnum.Complex {
	switch m.norm {
	case NormLeft:
		if !w0.IsZero() {
			return w0
		}
		return w1
	case NormL2:
		return cnum.New(math.Sqrt(w0.Abs2()+w1.Abs2()), 0)
	case NormL2Phase:
		mag := math.Sqrt(w0.Abs2() + w1.Abs2())
		lead := w0
		if lead.IsZero() {
			lead = w1
		}
		return cnum.FromPolar(mag, lead.Phase())
	default:
		panic("dd: unknown normalization scheme")
	}
}

// MakeMNode creates (or finds) the matrix node at level v with the four
// quadrant successors e (indexed by 2*rowBit+colBit) and returns the
// normalized edge pointing at it.
//
// Matrix nodes are always normalized by the entry of largest magnitude
// (ties broken by lowest index); the vector normalization scheme does not
// apply to operators.
func (m *Manager) MakeMNode(v int, e [4]MEdge) MEdge {
	if v < 0 || v >= m.nqubits {
		panic("dd: MakeMNode level out of range")
	}
	return m.makeMNode(v, e)
}

func (m *Manager) makeMNode(v int, e [4]MEdge) MEdge {
	allZero := true
	for i := range e {
		if e[i].W.IsZero() {
			e[i] = MEdge{}
		} else {
			allZero = false
		}
	}
	if allZero {
		return MEdge{}
	}

	// Normalize by the largest-magnitude weight for numerical stability.
	best, bestMag := 0, -1.0
	for i := range e {
		if mag := e[i].W.Abs2(); mag > bestMag {
			best, bestMag = i, mag
		}
	}
	f := e[best].W
	for i := range e {
		e[i].W = m.ctab.Lookup(e[i].W.Div(f))
		if e[i].W.IsZero() {
			e[i] = MEdge{}
		}
	}

	h := mNodeHash(v, &e)
	n, slot, probes := m.mTab.lookup(h, v, &e)
	m.uniqueLookups++
	m.uniqueProbes += uint64(probes)
	if n != nil {
		m.mHits++
	} else {
		m.mMisses++
		n = m.marena.alloc()
		n.V = v
		n.E = e
		n.hash = h
		n.ident = e[1].IsZero() && e[2].IsZero() &&
			e[0].W == cnum.One && e[3].W == cnum.One &&
			e[0].N == e[3].N && (e[0].N == nil || e[0].N.ident)
		m.mTab.insert(slot, n)
		m.noteGrowth()
	}
	return MEdge{W: m.ctab.Lookup(f), N: n}
}
