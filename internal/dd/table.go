package dd

import "math"

// Open-addressing unique tables.
//
// Hash-consing used to go through map[vKey]*VNode / map[mKey]*MNode: every
// probe built a by-value key struct (up to 112 bytes for matrix nodes),
// hashed it with the runtime's generic algorithm, and every insert copied the
// key into the map's own storage — per-node overhead the DD literature calls
// out as the decisive constant factor of a simulator. The replacement is a
// plain linear-probing table over node pointers:
//
//   - The node IS the key. A candidate matches when its level and successor
//     edges compare equal, which is the same equality the map key encoded
//     (weights are interned before lookup, so struct comparison is exact).
//   - Every node stores its hash (computed once, on the lookup that created
//     it). Probes compare the 8-byte hash before touching edge structure,
//     and table growth rehashes nothing.
//   - Deletion happens only inside the GC sweep, which rebuilds the slot
//     array from the surviving nodes — so the probe loop needs no tombstone
//     branch, ever.
//
// Weight hashing canonicalizes -0.0 to +0.0 (f + 0 in IEEE arithmetic): the
// old map compared float fields with ==, under which -0.0 == 0.0, and the
// hash must respect that equality. NaN weights hash arbitrarily and compare
// unequal to everything — exactly the old map behavior — so a NaN-weighted
// probe walks to an empty slot and inserts a fresh node each time.
//
// Successor identity is hashed through the arena id rather than the pointer:
// ids are dense, stable, and identical across runs for a deterministic
// workload, which keeps probe sequences (and therefore probe-length metrics)
// reproducible.

// minTableSlots is the initial slot-array size (power of two).
const minTableSlots = 1 << 10

// maxLoadNum/maxLoadDen cap the load factor at 3/4 before doubling.
const (
	maxLoadNum = 3
	maxLoadDen = 4
)

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// wbits canonicalizes a weight component for hashing: -0.0 + 0 is +0.0, so
// both zeros (equal under ==) hash identically.
func wbits(f float64) uint64 { return math.Float64bits(f + 0) }

// vChild is the hash identity of a vector successor: the arena id, or an
// all-ones sentinel for the terminal/zero target.
func vChild(n *VNode) uint64 {
	if n == nil {
		return ^uint64(0)
	}
	return uint64(uint32(n.id))
}

// mChild is the matrix-successor analogue of vChild.
func mChild(n *MNode) uint64 {
	if n == nil {
		return ^uint64(0)
	}
	return uint64(uint32(n.id))
}

// vNodeHash hashes the identity of a vector node: level plus both successor
// edges. Called once per makeVNode; the result is stored on the node.
func vNodeHash(v int, e0, e1 VEdge) uint64 {
	h := mix64(uint64(v) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ wbits(e0.W.Re))
	h = mix64(h ^ wbits(e0.W.Im))
	h = mix64(h ^ vChild(e0.N))
	h = mix64(h ^ wbits(e1.W.Re))
	h = mix64(h ^ wbits(e1.W.Im))
	h = mix64(h ^ vChild(e1.N))
	return h
}

// mNodeHash hashes the identity of a matrix node: level plus all four
// quadrant edges.
func mNodeHash(v int, e *[4]MEdge) uint64 {
	h := mix64(uint64(v) ^ 0x9e3779b97f4a7c15)
	for i := range e {
		h = mix64(h ^ wbits(e[i].W.Re))
		h = mix64(h ^ wbits(e[i].W.Im))
		h = mix64(h ^ mChild(e[i].N))
	}
	return h
}

// vTable is the vector unique table: linear probing over node pointers,
// no tombstones (deletion is sweep-rebuild only).
type vTable struct {
	slots []*VNode // len is a power of two
	n     int      // occupied slots
}

func newVTable() vTable { return vTable{slots: make([]*VNode, minTableSlots)} }

// lookup probes for the node (v, e0, e1) under hash h. It returns the node
// and its slot on a hit, or a nil node plus the insertion slot on a miss.
// probes counts slot inspections (1 for a first-slot answer) and feeds the
// dd_unique_probe_len metric.
func (t *vTable) lookup(h uint64, v int, e0, e1 VEdge) (n *VNode, slot int, probes int) {
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for p := 1; ; p++ {
		c := t.slots[i]
		if c == nil {
			return nil, int(i), p
		}
		if c.hash == h && c.V == v && c.E[0] == e0 && c.E[1] == e1 {
			return c, int(i), p
		}
		i = (i + 1) & mask
	}
}

// insert places n (hash already set) into the slot a lookup miss returned,
// growing the table when the load factor passes 3/4.
func (t *vTable) insert(slot int, n *VNode) {
	t.slots[slot] = n
	t.n++
	if t.n*maxLoadDen > len(t.slots)*maxLoadNum {
		t.grow(len(t.slots) * 2)
	}
}

// grow rebuilds the slot array at the given power-of-two size. Stored hashes
// make this a pure re-placement: nothing is rehashed.
func (t *vTable) grow(size int) {
	old := t.slots
	t.slots = make([]*VNode, size)
	for _, c := range old {
		if c != nil {
			t.place(c)
		}
	}
}

// place walks n's probe sequence to the first empty slot. Only called on
// arrays known to have room.
func (t *vTable) place(n *VNode) {
	mask := uint64(len(t.slots) - 1)
	i := n.hash & mask
	for t.slots[i] != nil {
		i = (i + 1) & mask
	}
	t.slots[i] = n
}

// sweep rebuilds the table keeping only nodes marked with gen, releasing the
// rest to the arena's free list. Rebuilding (rather than deleting in place)
// is what keeps the probe loop tombstone-free. The new array is sized to the
// survivor count so a collection that reclaims most of the table also
// returns its slot memory.
func (t *vTable) sweep(gen uint32, a *vArena) (removed int) {
	old := t.slots
	t.slots = make([]*VNode, tableSizeFor(t.n-countDead(old, gen)))
	t.n = 0
	for _, c := range old {
		if c == nil {
			continue
		}
		if c.gen != gen {
			a.release(c)
			removed++
			continue
		}
		t.place(c)
		t.n++
	}
	return removed
}

func countDead(slots []*VNode, gen uint32) (dead int) {
	for _, c := range slots {
		if c != nil && c.gen != gen {
			dead++
		}
	}
	return dead
}

// tableSizeFor returns the smallest power-of-two slot count that holds n
// nodes under the load cap, never below the initial size.
func tableSizeFor(n int) int {
	size := minTableSlots
	for n*maxLoadDen > size*maxLoadNum {
		size *= 2
	}
	return size
}

// mTable is the matrix unique table; identical mechanics to vTable.
type mTable struct {
	slots []*MNode
	n     int
}

func newMTable() mTable { return mTable{slots: make([]*MNode, minTableSlots)} }

func (t *mTable) lookup(h uint64, v int, e *[4]MEdge) (n *MNode, slot int, probes int) {
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for p := 1; ; p++ {
		c := t.slots[i]
		if c == nil {
			return nil, int(i), p
		}
		if c.hash == h && c.V == v && c.E == *e {
			return c, int(i), p
		}
		i = (i + 1) & mask
	}
}

func (t *mTable) insert(slot int, n *MNode) {
	t.slots[slot] = n
	t.n++
	if t.n*maxLoadDen > len(t.slots)*maxLoadNum {
		t.grow(len(t.slots) * 2)
	}
}

func (t *mTable) grow(size int) {
	old := t.slots
	t.slots = make([]*MNode, size)
	for _, c := range old {
		if c != nil {
			t.place(c)
		}
	}
}

func (t *mTable) place(n *MNode) {
	mask := uint64(len(t.slots) - 1)
	i := n.hash & mask
	for t.slots[i] != nil {
		i = (i + 1) & mask
	}
	t.slots[i] = n
}

func (t *mTable) sweep(gen uint32, a *mArena) (removed int) {
	old := t.slots
	live := t.n
	for _, c := range old {
		if c != nil && c.gen != gen {
			live--
		}
	}
	t.slots = make([]*MNode, tableSizeFor(live))
	t.n = 0
	for _, c := range old {
		if c == nil {
			continue
		}
		if c.gen != gen {
			a.release(c)
			removed++
			continue
		}
		t.place(c)
		t.n++
	}
	return removed
}
