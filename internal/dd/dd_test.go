package dd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"weaksim/internal/cnum"
)

// figure4Vector is the running-example state of the paper (Figs. 2-4):
// [0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354] with the exact values
// -i*sqrt(3/8) and sqrt(1/8).
func figure4Vector() []cnum.Complex {
	a := cnum.New(0, -math.Sqrt(3.0/8.0))
	b := cnum.New(math.Sqrt(1.0/8.0), 0)
	return []cnum.Complex{cnum.Zero, a, cnum.Zero, a, b, cnum.Zero, cnum.Zero, b}
}

func randomState(r *rand.Rand, n int) []cnum.Complex {
	vec := make([]cnum.Complex, 1<<uint(n))
	var norm float64
	for i := range vec {
		vec[i] = cnum.New(r.NormFloat64(), r.NormFloat64())
		norm += vec[i].Abs2()
	}
	s := 1 / math.Sqrt(norm)
	for i := range vec {
		vec[i] = vec[i].Scale(s)
	}
	return vec
}

func vecApproxEq(a, b []cnum.Complex, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].ApproxEq(b[i], tol) {
			return false
		}
	}
	return true
}

func TestBasisState(t *testing.T) {
	m := New(3)
	for idx := uint64(0); idx < 8; idx++ {
		e := m.BasisState(idx)
		for j := uint64(0); j < 8; j++ {
			amp := m.Amplitude(e, j)
			want := cnum.Zero
			if j == idx {
				want = cnum.One
			}
			if !amp.ApproxEq(want, 1e-12) {
				t.Errorf("BasisState(%d): amplitude(%d) = %v, want %v", idx, j, amp, want)
			}
		}
		if got := m.NodeCount(e); got != 3 {
			t.Errorf("BasisState(%d): NodeCount = %d, want 3", idx, got)
		}
		if n2 := m.Norm2(e); !approx(n2, 1, 1e-9) {
			t.Errorf("BasisState(%d): Norm2 = %v", idx, n2)
		}
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasisStatePanicsOutOfRange(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range basis state")
		}
	}()
	m.BasisState(4)
}

func TestFromToVectorRoundtrip(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		r := rand.New(rand.NewPCG(7, 11))
		for n := 1; n <= 6; n++ {
			m := New(n, WithNormalization(norm))
			vec := randomState(r, n)
			e, err := m.FromVector(vec)
			if err != nil {
				t.Fatalf("FromVector: %v", err)
			}
			back, err := m.ToVector(e)
			if err != nil {
				t.Fatalf("ToVector: %v", err)
			}
			if !vecApproxEq(vec, back, 1e-9) {
				t.Errorf("norm=%v n=%d: roundtrip mismatch", norm, n)
			}
			for i := range vec {
				if got := m.Amplitude(e, uint64(i)); !got.ApproxEq(vec[i], 1e-9) {
					t.Errorf("norm=%v n=%d: Amplitude(%d) = %v, want %v", norm, n, i, got, vec[i])
				}
			}
		}
	}
}

func TestFromVectorLengthMismatch(t *testing.T) {
	m := New(3)
	if _, err := m.FromVector(make([]cnum.Complex, 4)); err == nil {
		t.Error("expected error for wrong-length vector")
	}
}

func TestHashConsing(t *testing.T) {
	m := New(4)
	r := rand.New(rand.NewPCG(1, 2))
	vec := randomState(r, 4)
	e1, _ := m.FromVector(vec)
	e2, _ := m.FromVector(vec)
	if e1.N != e2.N {
		t.Error("identical vectors built distinct root nodes")
	}
	if !e1.W.ApproxEq(e2.W, 1e-12) {
		t.Errorf("identical vectors built distinct weights: %v vs %v", e1.W, e2.W)
	}
}

func TestProductStateNodeCount(t *testing.T) {
	// A uniform superposition (H on every qubit) is a product state: its DD
	// must have exactly n nodes — the QFT rows of Table I rely on this.
	for n := 2; n <= 10; n++ {
		m := New(n)
		vec := make([]cnum.Complex, 1<<uint(n))
		amp := cnum.New(1/math.Sqrt(float64(int(1)<<uint(n))), 0)
		for i := range vec {
			vec[i] = amp
		}
		e, _ := m.FromVector(vec)
		if got := m.NodeCount(e); got != n {
			t.Errorf("n=%d: NodeCount = %d, want %d", n, got, n)
		}
	}
}

func TestL2NormalizationWeightInvariant(t *testing.T) {
	// Under NormL2 and NormL2Phase, every node's outgoing weights satisfy
	// |w0|² + |w1|² == 1 — the paper's Section IV-C invariant.
	for _, norm := range []Norm{NormL2, NormL2Phase} {
		m := New(3, WithNormalization(norm))
		e, _ := m.FromVector(figure4Vector())
		seen := map[*VNode]bool{}
		var walk func(n *VNode)
		walk = func(n *VNode) {
			if n == nil || seen[n] {
				return
			}
			seen[n] = true
			sum := n.E[0].W.Abs2() + n.E[1].W.Abs2()
			if !approx(sum, 1, 1e-9) {
				t.Errorf("norm=%v: node at level %d has weight norm %v", norm, n.V, sum)
			}
			walk(n.E[0].N)
			walk(n.E[1].N)
		}
		walk(e.N)
		if !approx(e.W.Abs2(), 1, 1e-9) {
			t.Errorf("norm=%v: root weight magnitude %v, want 1", norm, e.W.Abs())
		}
	}
}

func TestFigure4dWeights(t *testing.T) {
	// Under NormL2 the running example's root node carries the Fig. 4d
	// weight magnitudes sqrt(3/4) and sqrt(1/4), and the q1 nodes carry
	// 1/sqrt(2) on both edges.
	m := New(3, WithNormalization(NormL2))
	e, _ := m.FromVector(figure4Vector())
	root := e.N
	if root.V != 2 {
		t.Fatalf("root level = %d, want 2", root.V)
	}
	if got := root.E[0].W.Abs(); !approx(got, math.Sqrt(3.0/4.0), 1e-9) {
		t.Errorf("|root.E0| = %v, want sqrt(3/4)", got)
	}
	if got := root.E[1].W.Abs(); !approx(got, math.Sqrt(1.0/4.0), 1e-9) {
		t.Errorf("|root.E1| = %v, want sqrt(1/4)", got)
	}
	for i := 0; i < 2; i++ {
		q1 := root.E[i].N
		for j := 0; j < 2; j++ {
			if got := q1.E[j].W.Abs(); !approx(got, math.Sqrt2/2, 1e-9) {
				t.Errorf("|q1[%d].E%d| = %v, want 1/sqrt(2)", i, j, got)
			}
		}
	}
}

func TestFigure4bLeftNormalization(t *testing.T) {
	// Under NormLeft the root's 1-successor weight is 0.354/(-0.612i) =
	// 0.578i (paper Fig. 4b) and the incoming weight is -0.612i.
	m := New(3, WithNormalization(NormLeft))
	e, _ := m.FromVector(figure4Vector())
	if want := cnum.New(0, -math.Sqrt(3.0/8.0)); !e.W.ApproxEq(want, 1e-9) {
		t.Errorf("root incoming weight = %v, want %v", e.W, want)
	}
	if want := cnum.One; !e.N.E[0].W.ApproxEq(want, 1e-9) {
		t.Errorf("root 0-edge = %v, want 1", e.N.E[0].W)
	}
	// 0.354.../(-0.612...i) = i*sqrt(1/3) ≈ 0.5774i
	if want := cnum.New(0, math.Sqrt(1.0/3.0)); !e.N.E[1].W.ApproxEq(want, 1e-9) {
		t.Errorf("root 1-edge = %v, want %v (Fig. 4b's 0.578i)", e.N.E[1].W, want)
	}
}

func TestAmplitudePathProduct(t *testing.T) {
	// Paper Example 9: the amplitude of |111⟩ is the product of edge
	// weights along the path, 0.354 = sqrt(1/8).
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m := New(3, WithNormalization(norm))
		e, _ := m.FromVector(figure4Vector())
		got := m.Amplitude(e, 7)
		want := cnum.New(math.Sqrt(1.0/8.0), 0)
		if !got.ApproxEq(want, 1e-9) {
			t.Errorf("norm=%v: amplitude(|111⟩) = %v, want %v", norm, got, want)
		}
	}
}

func TestNormL2PhaseCanonicalUpToPhase(t *testing.T) {
	// Two states differing only by a global phase represent the same
	// physics under NormL2Phase: the phase is extracted into the root edge
	// weight, the diagram below stays the same size, and all amplitudes
	// agree after undoing the rotation. (Node pointers may still differ
	// when the rotated amplitudes land on other interning-grid points.)
	m := New(4, WithNormalization(NormL2Phase))
	r := rand.New(rand.NewPCG(5, 6))
	vec := randomState(r, 4)
	rot := cnum.FromPolar(1, 1.234)
	vec2 := make([]cnum.Complex, len(vec))
	for i := range vec {
		vec2[i] = vec[i].Mul(rot)
	}
	e1, _ := m.FromVector(vec)
	e2, _ := m.FromVector(vec2)
	if c1, c2 := m.NodeCount(e1), m.NodeCount(e2); c1 != c2 {
		t.Errorf("global phase changed the DD size: %d vs %d", c1, c2)
	}
	for i := range vec {
		a1 := m.Amplitude(e1, uint64(i)).Mul(rot)
		a2 := m.Amplitude(e2, uint64(i))
		if !a1.ApproxEq(a2, 1e-8) {
			t.Fatalf("amplitude %d differs after phase rotation: %v vs %v", i, a1, a2)
		}
	}
	// The canonicity that matters operationally: rebuilding the *same*
	// vector always lands on the same root node.
	e3, _ := m.FromVector(vec)
	if e1.N != e3.N {
		t.Error("rebuilding an identical vector created distinct nodes")
	}
}

func TestAddMatchesDense(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m := New(5, WithNormalization(norm))
		a := randomState(r, 5)
		b := randomState(r, 5)
		ea, _ := m.FromVector(a)
		eb, _ := m.FromVector(b)
		sum := m.Add(ea, eb)
		got, _ := m.ToVector(sum)
		for i := range a {
			want := a[i].Add(b[i])
			if !got[i].ApproxEq(want, 1e-9) {
				t.Fatalf("norm=%v: (a+b)[%d] = %v, want %v", norm, i, got[i], want)
			}
		}
	}
}

func TestAddCancellationYieldsZero(t *testing.T) {
	m := New(3)
	r := rand.New(rand.NewPCG(9, 9))
	vec := randomState(r, 3)
	neg := make([]cnum.Complex, len(vec))
	for i := range vec {
		neg[i] = vec[i].Neg()
	}
	ea, _ := m.FromVector(vec)
	eb, _ := m.FromVector(neg)
	if sum := m.Add(ea, eb); !sum.IsZero() {
		t.Errorf("a + (-a) = %v, want zero edge", sum)
	}
}

func TestInnerProduct(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 17))
	m := New(4)
	a := randomState(r, 4)
	b := randomState(r, 4)
	ea, _ := m.FromVector(a)
	eb, _ := m.FromVector(b)
	var want cnum.Complex
	for i := range a {
		want = want.Add(a[i].Conj().Mul(b[i]))
	}
	if got := m.InnerProduct(ea, eb); !got.ApproxEq(want, 1e-9) {
		t.Errorf("InnerProduct = %v, want %v", got, want)
	}
	if got := m.InnerProduct(ea, ea); !got.ApproxEq(cnum.One, 1e-9) {
		t.Errorf("<a|a> = %v, want 1", got)
	}
	if f := m.Fidelity(ea, ea); !approx(f, 1, 1e-9) {
		t.Errorf("Fidelity(a,a) = %v", f)
	}
}

// Property: FromVector/Amplitude agree on random small states under every
// normalization scheme.
func TestAmplitudeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed1, seed2 uint64, normPick uint8) bool {
		norm := []Norm{NormLeft, NormL2, NormL2Phase}[normPick%3]
		r := rand.New(rand.NewPCG(seed1, seed2))
		n := 1 + int(seed1%5)
		m := New(n, WithNormalization(norm))
		vec := randomState(r, n)
		e, err := m.FromVector(vec)
		if err != nil {
			return false
		}
		for i := range vec {
			if !m.Amplitude(e, uint64(i)).ApproxEq(vec[i], 1e-9) {
				return false
			}
		}
		return approx(m.Norm2(e), 1, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFidelityOrthogonalStates(t *testing.T) {
	m := New(3)
	a := m.BasisState(2)
	b := m.BasisState(5)
	if f := m.Fidelity(a, b); f != 0 {
		t.Errorf("fidelity of orthogonal basis states = %v", f)
	}
	if ip := m.InnerProduct(a, b); !ip.IsZero() {
		t.Errorf("inner product of orthogonal states = %v", ip)
	}
}

func TestInnerProductConjugateSymmetry(t *testing.T) {
	r := rand.New(rand.NewPCG(201, 202))
	m := New(4)
	va, _ := m.FromVector(randomState(r, 4))
	vb, _ := m.FromVector(randomState(r, 4))
	ab := m.InnerProduct(va, vb)
	ba := m.InnerProduct(vb, va)
	if !ab.ApproxEq(ba.Conj(), 1e-9) {
		t.Errorf("⟨a|b⟩ = %v but ⟨b|a⟩* = %v", ab, ba.Conj())
	}
}

func TestMulZeroOperandsShortCircuit(t *testing.T) {
	m := New(2)
	st := m.ZeroState()
	if r := m.Mul(MEdge{}, st); !r.IsZero() {
		t.Error("zero operator times state is not zero")
	}
	op := m.GateDD(GateMatrix(hMatrix), 0)
	if r := m.Mul(op, VEdge{}); !r.IsZero() {
		t.Error("operator times zero vector is not zero")
	}
	if r := m.Add(VEdge{}, st); r != st {
		t.Error("0 + state != state")
	}
	if r := m.Add(st, VEdge{}); r != st {
		t.Error("state + 0 != state")
	}
}
