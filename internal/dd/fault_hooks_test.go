package dd

// Chaos coverage for the DD-level injection points: each armed fault must
// surface through the package's existing failure contracts — never as a new
// error shape the callers upstream cannot classify.

import (
	"errors"
	"testing"

	"weaksim/internal/fault"
)

// TestFaultUniqueInsertSurfacesAsNodeBudget: an injected allocation failure
// on the unique-table miss path unwinds exactly like a budget overrun —
// through the nearest Guarded, out as ErrNodeBudget (the paper's MO).
func TestFaultUniqueInsertSurfacesAsNodeBudget(t *testing.T) {
	m := New(3)
	if err := fault.Enable("dd.unique.insert:err@1+", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	err := m.Guarded(func() error {
		_ = m.BasisState(5)
		return nil
	})
	if !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("injected insert fault surfaced as %v, want ErrNodeBudget", err)
	}
	// Disarmed, the same construction succeeds: the fault left no residue.
	fault.Disable()
	if err := m.Guarded(func() error {
		_ = m.BasisState(5)
		return nil
	}); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

// TestFaultGCEscalatesToPanic: GC has no error return, so an injected err is
// documented to escalate into *fault.InjectedPanic rather than vanish.
func TestFaultGCEscalatesToPanic(t *testing.T) {
	m, state := snapTestState(t, NormL2Phase)
	if err := fault.Enable("dd.gc:err@1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	recovered := func() (r any) {
		defer func() { r = recover() }()
		m.GC([]VEdge{state}, nil)
		return nil
	}()
	ip, ok := recovered.(*fault.InjectedPanic)
	if !ok || ip.Point != fault.DDGC {
		t.Fatalf("GC fault recovered %v, want *fault.InjectedPanic at %s", recovered, fault.DDGC)
	}
	// The aborted collection must not have corrupted the diagram: a full
	// invariant audit and a clean freeze both still pass.
	if err := m.CheckInvariants(state); err != nil {
		t.Fatalf("invariants after aborted GC: %v", err)
	}
	if _, err := m.Freeze(state); err != nil {
		t.Fatalf("freeze after aborted GC: %v", err)
	}
}

// TestFaultFreezeReturnsError: the freeze hook fails the freeze with a
// classifiable error and leaves the live diagram reusable.
func TestFaultFreezeReturnsError(t *testing.T) {
	m, state := snapTestState(t, NormL2Phase)
	if err := fault.Enable("dd.freeze:err@1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	if _, err := m.Freeze(state); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("freeze under fault: %v, want ErrInjected", err)
	}
	// The @1 window has closed: the very next freeze succeeds.
	snap, err := m.Freeze(state)
	if err != nil {
		t.Fatalf("freeze after fault window: %v", err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("snapshot after fault window: %v", err)
	}
}
