package dd

import (
	"math/bits"

	"weaksim/internal/cnum"
)

// Direct-mapped compute caches.
//
// The memoization tables for Mul/Add/MulMM/AddMM/Adjoint used to be Go maps,
// flushed wholesale whenever they grew past cacheSize and rebuilt from
// scratch after every GC. Each probe allocated nothing, but each insert paid
// map overhead, the flush threw away every hot entry along with the cold
// ones, and the maps themselves were re-made (1024-bucket allocations) on
// every flush and collection.
//
// The replacement is a direct-mapped table per cache: an entry array indexed
// by a hash of the operand identities. A probe inspects exactly one slot and
// never allocates; a collision simply overwrites (counted as an eviction);
// nothing is ever rehashed.
//
// Entries are deliberately pointer-free: operands and results are recorded
// as arena ids (plus the result weight), so the arrays live in no-scan spans
// the Go GC never traverses — a multi-megabyte cache costs the runtime
// nothing per GC cycle. Ids are as precise as pointers here: an id maps to
// one live node for as long as the Manager's cacheEpoch is unchanged, and
// entries from older epochs are never served.
//
// GC invalidation is per-slot and lazy: every entry records the cacheEpoch
// at insert time, and a probe only accepts a current-epoch entry. GC bumps
// the epoch instead of touching the arrays, so stale entries — which may
// name arena slots that have since been recycled — die in O(1). An epoch
// wrap (2^32 collections) could in principle revalidate an ancient entry,
// but then its operand ids must ALSO match a live probe, and ids plus epoch
// equality is exactly the identity the cache keys on — the entry is still
// correct for those operands or simply never matched.
//
// Sizing is adaptive within the configured bound: a cache starts at
// cacheMinSlots and doubles (discarding its contents — it is a cache;
// correctness never depends on it) whenever the eviction count since the
// last resize reaches the current slot count, i.e. when the working set
// demonstrably thrashes. Small circuits therefore touch a few hundred KB;
// node-heavy builds grow toward the WithCacheSize bound.

// cacheMinSlots is the initial slot count of every compute cache.
const cacheMinSlots = 1 << 12

// cacheNilID marks a nil (terminal/zero) result target in a cache entry.
const cacheNilID = int32(-1)

// cacheSlotsFor converts the configured cacheSize bound into the maximum
// power-of-two slot count (floor, minimum 1): a direct-mapped table of n
// slots holds at most n entries, honoring the WithCacheSize contract.
func cacheSlotsFor(n int) int {
	if n < 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n)) - 1)
}

// cacheStartSlots is the initial allocation for a cache bounded to max.
func cacheStartSlots(max int) int {
	if max < cacheMinSlots {
		return max
	}
	return cacheMinSlots
}

// cachePair mixes two operand ids into a slot hash.
func cachePair(a, b int32) uint64 {
	return mix64(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

// vid records a VEdge result as (weight, id); nodeOf reverses it.
func vid(e VEdge) int32 {
	if e.N == nil {
		return cacheNilID
	}
	return e.N.id
}

func (m *Manager) vNodeOf(id int32, w cnum.Complex) VEdge {
	e := VEdge{W: w}
	if id != cacheNilID {
		e.N = m.varena.at(id)
	}
	return e
}

func mid(e MEdge) int32 {
	if e.N == nil {
		return cacheNilID
	}
	return e.N.id
}

func (m *Manager) mNodeOf(id int32, w cnum.Complex) MEdge {
	e := MEdge{W: w}
	if id != cacheNilID {
		e.N = m.marena.at(id)
	}
	return e
}

// mulCEntry memoizes one matrix-vector product op·st (top weights factored
// out): operand ids, result id + weight, and the epoch stamp.
type mulCEntry struct {
	op, st int32
	r      int32
	rW     cnum.Complex
	epoch  uint32
}

type mulCache struct {
	entries []mulCEntry
	thrash  int // evictions since the last resize
}

func (c *mulCache) get(m *Manager, op *MNode, st *VNode) (VEdge, bool) {
	if c.entries == nil {
		return VEdge{}, false
	}
	e := &c.entries[cachePair(op.id, st.id)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && e.op == op.id && e.st == st.id {
		return m.vNodeOf(e.r, e.rW), true
	}
	return VEdge{}, false
}

func (c *mulCache) put(m *Manager, op *MNode, st *VNode, r VEdge) {
	if c.entries == nil {
		c.entries = make([]mulCEntry, cacheStartSlots(m.cacheSlots()))
	} else if c.thrash >= len(c.entries) && len(c.entries) < m.cacheSlots() {
		c.entries = make([]mulCEntry, len(c.entries)*2)
		c.thrash = 0
	}
	e := &c.entries[cachePair(op.id, st.id)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && (e.op != op.id || e.st != st.id) {
		m.cacheEvictions++
		c.thrash++
	}
	*e = mulCEntry{op: op.id, st: st.id, r: vid(r), rW: r.W, epoch: m.cacheEpoch}
}

// addCEntry memoizes one vector addition a + ratio·b for unit-weight
// sub-vectors.
type addCEntry struct {
	a, b  int32
	r     int32
	ratio cnum.Complex
	rW    cnum.Complex
	epoch uint32
}

type addCache struct {
	entries []addCEntry
	thrash  int
}

func addSlotHash(a, b int32, ratio cnum.Complex) uint64 {
	h := cachePair(a, b)
	h = mix64(h ^ wbits(ratio.Re))
	h = mix64(h ^ wbits(ratio.Im))
	return h
}

func (c *addCache) get(m *Manager, a, b *VNode, ratio cnum.Complex) (VEdge, bool) {
	if c.entries == nil {
		return VEdge{}, false
	}
	e := &c.entries[addSlotHash(a.id, b.id, ratio)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && e.a == a.id && e.b == b.id && e.ratio == ratio {
		return m.vNodeOf(e.r, e.rW), true
	}
	return VEdge{}, false
}

func (c *addCache) put(m *Manager, a, b *VNode, ratio cnum.Complex, r VEdge) {
	if c.entries == nil {
		c.entries = make([]addCEntry, cacheStartSlots(m.cacheSlots()))
	} else if c.thrash >= len(c.entries) && len(c.entries) < m.cacheSlots() {
		c.entries = make([]addCEntry, len(c.entries)*2)
		c.thrash = 0
	}
	e := &c.entries[addSlotHash(a.id, b.id, ratio)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && (e.a != a.id || e.b != b.id || e.ratio != ratio) {
		m.cacheEvictions++
		c.thrash++
	}
	*e = addCEntry{a: a.id, b: b.id, r: vid(r), ratio: ratio, rW: r.W, epoch: m.cacheEpoch}
}

// mmCEntry memoizes one matrix-matrix product.
type mmCEntry struct {
	a, b  int32
	r     int32
	rW    cnum.Complex
	epoch uint32
}

type mmCache struct {
	entries []mmCEntry
	thrash  int
}

func (c *mmCache) get(m *Manager, a, b *MNode) (MEdge, bool) {
	if c.entries == nil {
		return MEdge{}, false
	}
	e := &c.entries[cachePair(a.id, b.id)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && e.a == a.id && e.b == b.id {
		return m.mNodeOf(e.r, e.rW), true
	}
	return MEdge{}, false
}

func (c *mmCache) put(m *Manager, a, b *MNode, r MEdge) {
	if c.entries == nil {
		c.entries = make([]mmCEntry, cacheStartSlots(m.cacheSlots()))
	} else if c.thrash >= len(c.entries) && len(c.entries) < m.cacheSlots() {
		c.entries = make([]mmCEntry, len(c.entries)*2)
		c.thrash = 0
	}
	e := &c.entries[cachePair(a.id, b.id)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && (e.a != a.id || e.b != b.id) {
		m.cacheEvictions++
		c.thrash++
	}
	*e = mmCEntry{a: a.id, b: b.id, r: mid(r), rW: r.W, epoch: m.cacheEpoch}
}

// maddCEntry memoizes one matrix addition a + ratio·b.
type maddCEntry struct {
	a, b  int32
	r     int32
	ratio cnum.Complex
	rW    cnum.Complex
	epoch uint32
}

type maddCache struct {
	entries []maddCEntry
	thrash  int
}

func (c *maddCache) get(m *Manager, a, b *MNode, ratio cnum.Complex) (MEdge, bool) {
	if c.entries == nil {
		return MEdge{}, false
	}
	e := &c.entries[addSlotHash(a.id, b.id, ratio)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && e.a == a.id && e.b == b.id && e.ratio == ratio {
		return m.mNodeOf(e.r, e.rW), true
	}
	return MEdge{}, false
}

func (c *maddCache) put(m *Manager, a, b *MNode, ratio cnum.Complex, r MEdge) {
	if c.entries == nil {
		c.entries = make([]maddCEntry, cacheStartSlots(m.cacheSlots()))
	} else if c.thrash >= len(c.entries) && len(c.entries) < m.cacheSlots() {
		c.entries = make([]maddCEntry, len(c.entries)*2)
		c.thrash = 0
	}
	e := &c.entries[addSlotHash(a.id, b.id, ratio)&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && (e.a != a.id || e.b != b.id || e.ratio != ratio) {
		m.cacheEvictions++
		c.thrash++
	}
	*e = maddCEntry{a: a.id, b: b.id, r: mid(r), ratio: ratio, rW: r.W, epoch: m.cacheEpoch}
}

// adjCEntry memoizes one operator adjoint.
type adjCEntry struct {
	a     int32
	r     int32
	rW    cnum.Complex
	epoch uint32
}

type adjCache struct {
	entries []adjCEntry
	thrash  int
}

func (c *adjCache) get(m *Manager, a *MNode) (MEdge, bool) {
	if c.entries == nil {
		return MEdge{}, false
	}
	e := &c.entries[mix64(uint64(uint32(a.id)))&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && e.a == a.id {
		return m.mNodeOf(e.r, e.rW), true
	}
	return MEdge{}, false
}

func (c *adjCache) put(m *Manager, a *MNode, r MEdge) {
	if c.entries == nil {
		c.entries = make([]adjCEntry, cacheStartSlots(m.cacheSlots()))
	} else if c.thrash >= len(c.entries) && len(c.entries) < m.cacheSlots() {
		c.entries = make([]adjCEntry, len(c.entries)*2)
		c.thrash = 0
	}
	e := &c.entries[mix64(uint64(uint32(a.id)))&uint64(len(c.entries)-1)]
	if e.epoch == m.cacheEpoch && e.a != a.id {
		m.cacheEvictions++
		c.thrash++
	}
	*e = adjCEntry{a: a.id, r: mid(r), rW: r.W, epoch: m.cacheEpoch}
}
