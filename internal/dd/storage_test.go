package dd

import (
	"errors"
	"math/rand"
	"testing"

	"weaksim/internal/cnum"
)

// applyRandomCircuit drives st through steps pseudo-random gates drawn from
// r (H and CNOT layers) on the given manager, invoking after(st) every 8
// gates so callers can stress GC / invariant checks mid-build.
func applyRandomCircuit(t *testing.T, m *Manager, r *rand.Rand, n, steps int, after func(VEdge)) VEdge {
	t.Helper()
	st := m.ZeroState()
	for i := 0; i < steps; i++ {
		target := r.Intn(n)
		var op MEdge
		switch r.Intn(3) {
		case 0:
			op = m.GateDD(GateMatrix(hMatrix), target)
		case 1:
			op = m.GateDD(GateMatrix(xMatrix), target)
		default:
			ctl := (target + 1 + r.Intn(n-1)) % n
			op = m.GateDD(GateMatrix(xMatrix), target, Control{Qubit: ctl})
		}
		st = m.Mul(op, st)
		if after != nil && i%8 == 7 {
			after(st)
		}
	}
	return st
}

// TestStorageDifferentialStressed is the end-to-end safety net for the
// arena/table engine: a manager squeezed through constant garbage
// collections, slot recycling, and a tiny compute cache must produce the
// exact same amplitudes as an unstressed one, under every normalization
// rule, with storage audits passing after every collection.
func TestStorageDifferentialStressed(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		t.Run(norm.String(), func(t *testing.T) {
			const n, steps, seed = 6, 96, 7
			ref := New(n, WithNormalization(norm))
			refSt := applyRandomCircuit(t, ref, rand.New(rand.NewSource(seed)), n, steps, nil)

			stressed := New(n, WithNormalization(norm), WithGCThreshold(64), WithCacheSize(8))
			gcs := 0
			st := applyRandomCircuit(t, stressed, rand.New(rand.NewSource(seed)), n, steps, func(root VEdge) {
				stressed.GC([]VEdge{root}, nil)
				gcs++
				if err := stressed.CheckInvariants(root); err != nil {
					t.Fatalf("CheckInvariants after GC %d: %v", gcs, err)
				}
				if err := stressed.CheckStorage(); err != nil {
					t.Fatalf("CheckStorage after GC %d: %v", gcs, err)
				}
			})
			if gcs == 0 {
				t.Fatal("stress schedule ran no collections")
			}

			want, err := ref.ToVector(refSt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := stressed.ToVector(st)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("amplitude %d diverged under stress: got %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestArenaRecyclesSlots pins the free-list contract: GC returns dead slots
// to the arena, and subsequent node creation reuses them instead of growing
// the slab list.
func TestArenaRecyclesSlots(t *testing.T) {
	m := New(5)
	root := m.ZeroState()
	for idx := uint64(1); idx < 20; idx++ {
		root = m.Add(root, m.BasisState(idx))
	}
	m.GC([]VEdge{root}, nil)

	// Abandon everything but |0...0>: the rest becomes garbage.
	m.GC([]VEdge{m.ZeroState()}, nil)
	freed := len(m.varena.free)
	if freed == 0 {
		t.Fatal("GC freed no vector arena slots")
	}
	allocated := m.varena.len()

	// Rebuilding must drain the free list before growing the arena.
	rebuilt := m.ZeroState()
	for q := 0; q < 5; q++ {
		rebuilt = m.Mul(m.GateDD(GateMatrix(hMatrix), q), rebuilt)
	}
	if got := len(m.varena.free); got >= freed {
		t.Fatalf("free list did not shrink on reuse: %d -> %d", freed, got)
	}
	if got := m.varena.len(); got != allocated {
		t.Fatalf("arena grew to %d slots despite %d free (was %d)", got, freed, allocated)
	}
	if err := m.CheckInvariants(rebuilt); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStorage(); err != nil {
		t.Fatal(err)
	}
}

// corruptedManager builds a small state and returns the manager plus one of
// its live vector nodes, ready to be corrupted by the subtests below.
func corruptedManager(t *testing.T) (*Manager, VEdge, *VNode) {
	t.Helper()
	m := New(4)
	st := m.ZeroState()
	for q := 0; q < 4; q++ {
		st = m.Mul(m.GateDD(GateMatrix(hMatrix), q), st)
	}
	if err := m.CheckStorage(); err != nil {
		t.Fatalf("fresh manager fails CheckStorage: %v", err)
	}
	return m, st, st.N
}

func wantCheck(t *testing.T, err error, check string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption went undetected (want %s violation)", check)
	}
	var ie *InvariantError
	if !errors.As(err, &ie) || ie.Check != check {
		t.Fatalf("got %v, want an InvariantError with Check=%s", err, check)
	}
}

// TestCheckStorageDetectsCorruption plants one deliberate inconsistency per
// subtest and demands the whole-table audit names the violated check.
func TestCheckStorageDetectsCorruption(t *testing.T) {
	t.Run("stored_hash", func(t *testing.T) {
		m, _, n := corruptedManager(t)
		n.hash ^= 0xdeadbeef
		wantCheck(t, m.CheckStorage(), CheckTable)
	})
	t.Run("live_slot_on_freelist", func(t *testing.T) {
		m, _, n := corruptedManager(t)
		m.varena.free = append(m.varena.free, n.id)
		wantCheck(t, m.CheckStorage(), CheckArena)
	})
	t.Run("table_count", func(t *testing.T) {
		m, _, _ := corruptedManager(t)
		m.vTab.n++
		wantCheck(t, m.CheckStorage(), CheckTable)
	})
	t.Run("freeze_refuses", func(t *testing.T) {
		m, st, n := corruptedManager(t)
		n.hash ^= 1
		if _, err := m.Freeze(st); err == nil {
			t.Fatal("Freeze accepted a manager with corrupted storage")
		}
	})
}

// TestCacheAdaptiveGrowth pins the resize policy: caches start small, and a
// working set that keeps colliding doubles the table toward the WithCacheSize
// bound instead of thrashing forever.
func TestCacheAdaptiveGrowth(t *testing.T) {
	m := New(2, WithCacheSize(DefaultCacheSize))
	var c mulCache
	op := &MNode{id: 0}
	mkv := func(id int32) *VNode { return &VNode{id: id} }
	for i := int32(0); len(c.entries) == 0 || len(c.entries) == cacheMinSlots; i++ {
		c.put(m, op, mkv(i), VEdge{W: cnum.Complex{Re: 1}})
		if i > 1<<22 {
			t.Fatal("cache never grew despite sustained thrash")
		}
	}
	if got := len(c.entries); got != 2*cacheMinSlots {
		t.Fatalf("first growth step = %d slots, want %d", got, 2*cacheMinSlots)
	}

	// A tiny configured bound must pin the cache at that bound.
	small := New(2, WithCacheSize(2))
	var sc mulCache
	for i := int32(0); i < 64; i++ {
		sc.put(small, op, mkv(i), VEdge{})
	}
	if got := len(sc.entries); got != 2 {
		t.Fatalf("WithCacheSize(2) cache has %d slots, want 2", got)
	}
}
