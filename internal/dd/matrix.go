package dd

import (
	"fmt"

	"weaksim/internal/cnum"
)

// GateMatrix is a dense 2x2 single-qubit operator, indexed [row][column].
type GateMatrix [2][2]cnum.Complex

// GateDD builds the matrix DD of the n-qubit operator that applies the
// single-qubit gate u to the target qubit, conditioned on the given
// controls, and acts as the identity elsewhere. This is the standard
// bottom-up QMDD construction: quadrant blocks are threaded upward level by
// level, expanding identity levels, control levels, and the target level as
// they are encountered.
func (m *Manager) GateDD(u GateMatrix, target int, controls ...Control) MEdge {
	if target < 0 || target >= m.nqubits {
		panic(fmt.Sprintf("dd: gate target %d out of range", target))
	}
	ctl := make([]int, m.nqubits) // 0 = none, 1 = positive, 2 = negative
	for _, c := range controls {
		if c.Qubit < 0 || c.Qubit >= m.nqubits {
			panic(fmt.Sprintf("dd: control qubit %d out of range", c.Qubit))
		}
		if c.Qubit == target {
			panic("dd: control qubit equals target")
		}
		if ctl[c.Qubit] != 0 {
			panic(fmt.Sprintf("dd: duplicate control on qubit %d", c.Qubit))
		}
		if c.Negative {
			ctl[c.Qubit] = 2
		} else {
			ctl[c.Qubit] = 1
		}
	}

	// em[2*i+j] is the operator block for target-row i, target-column j,
	// restricted to the levels processed so far (with all processed
	// controls active).
	var em [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			em[2*i+j] = MEdge{W: m.ctab.Lookup(u[i][j])}
			if em[2*i+j].W.IsZero() {
				em[2*i+j] = MEdge{}
			}
		}
	}

	// Levels below the target.
	for z := 0; z < target; z++ {
		for k := 0; k < 4; k++ {
			diag := k == 0 || k == 3
			switch ctl[z] {
			case 0:
				if !em[k].IsZero() {
					em[k] = m.makeMNode(z, [4]MEdge{em[k], {}, {}, em[k]})
				}
			case 1: // positive control: active when bit is 1
				inactive := MEdge{}
				if diag {
					inactive = m.identityDD(z)
				}
				em[k] = m.makeMNode(z, [4]MEdge{inactive, {}, {}, em[k]})
			case 2: // negative control: active when bit is 0
				inactive := MEdge{}
				if diag {
					inactive = m.identityDD(z)
				}
				em[k] = m.makeMNode(z, [4]MEdge{em[k], {}, {}, inactive})
			}
		}
	}

	// The target level itself.
	e := m.makeMNode(target, em)

	// Levels above the target.
	for z := target + 1; z < m.nqubits; z++ {
		switch ctl[z] {
		case 0:
			e = m.makeMNode(z, [4]MEdge{e, {}, {}, e})
		case 1:
			e = m.makeMNode(z, [4]MEdge{m.identityDD(z), {}, {}, e})
		case 2:
			e = m.makeMNode(z, [4]MEdge{e, {}, {}, m.identityDD(z)})
		}
	}
	return e
}

// identityDD returns the identity operator on levels 0..k-1 (a 2^k x 2^k
// identity). identityDD(0) is the terminal scalar 1.
func (m *Manager) identityDD(k int) MEdge {
	e := MEdge{W: cnum.One}
	for z := 0; z < k; z++ {
		e = m.makeMNode(z, [4]MEdge{e, {}, {}, e})
	}
	return e
}

// IdentityDD returns the full-width identity operator DD.
func (m *Manager) IdentityDD() MEdge { return m.identityDD(m.nqubits) }

// maxPermWidth bounds the direct permutation-DD construction, whose work is
// quadratic in the permutation size.
const maxPermWidth = 13

// PermutationDD builds the matrix DD of a classical reversible function
// acting on the lowest `width` qubits: basis state |j⟩ of that register maps
// to |perm[j]⟩. Higher qubits act as identity unless listed as controls
// (controls must lie at or above `width`). Shor's modular-exponentiation
// steps are controlled permutations of exactly this shape.
func (m *Manager) PermutationDD(perm []uint64, width int, controls ...Control) (MEdge, error) {
	if width < 1 || width > m.nqubits {
		return MEdge{}, fmt.Errorf("dd: permutation width %d out of range", width)
	}
	if width > maxPermWidth {
		return MEdge{}, fmt.Errorf("dd: permutation width %d exceeds limit %d", width, maxPermWidth)
	}
	size := 1 << uint(width)
	if len(perm) != size {
		return MEdge{}, fmt.Errorf("dd: permutation has %d entries, want %d", len(perm), size)
	}
	seen := make([]bool, size)
	for _, r := range perm {
		if r >= uint64(size) {
			return MEdge{}, fmt.Errorf("dd: permutation image %d out of range", r)
		}
		if seen[r] {
			return MEdge{}, fmt.Errorf("dd: permutation is not a bijection (image %d repeated)", r)
		}
		seen[r] = true
	}

	part := make([]int64, size)
	for j, r := range perm {
		part[j] = int64(r)
	}
	e := m.permDD(part, width-1)

	ctl := make(map[int]bool, len(controls)) // qubit -> negative?
	for _, c := range controls {
		if c.Qubit < width || c.Qubit >= m.nqubits {
			return MEdge{}, fmt.Errorf("dd: permutation control %d must lie in [%d,%d)", c.Qubit, width, m.nqubits)
		}
		if _, dup := ctl[c.Qubit]; dup {
			return MEdge{}, fmt.Errorf("dd: duplicate control on qubit %d", c.Qubit)
		}
		ctl[c.Qubit] = c.Negative
	}
	for z := width; z < m.nqubits; z++ {
		neg, isCtl := ctl[z]
		switch {
		case !isCtl:
			e = m.makeMNode(z, [4]MEdge{e, {}, {}, e})
		case neg:
			e = m.makeMNode(z, [4]MEdge{e, {}, {}, m.identityDD(z)})
		default:
			e = m.makeMNode(z, [4]MEdge{m.identityDD(z), {}, {}, e})
		}
	}
	return e, nil
}

// permDD builds the DD of a partial permutation block. part[j] is the row
// index of the single 1-entry in column j, or -1 if the column is zero in
// this block.
func (m *Manager) permDD(part []int64, v int) MEdge {
	if v < 0 {
		if part[0] == 0 {
			return MEdge{W: cnum.One}
		}
		return MEdge{}
	}
	half := len(part) / 2
	var e [4]MEdge
	sub := make([]int64, half)
	for rbit := int64(0); rbit < 2; rbit++ {
		for cbit := 0; cbit < 2; cbit++ {
			cols := part[cbit*half : (cbit+1)*half]
			empty := true
			for j, r := range cols {
				if r >= 0 && (r>>uint(v))&1 == rbit {
					sub[j] = r &^ (1 << uint(v))
					empty = false
				} else {
					sub[j] = -1
				}
			}
			if empty {
				e[2*int(rbit)+cbit] = MEdge{}
				continue
			}
			e[2*int(rbit)+cbit] = m.permDD(sub, v-1)
		}
	}
	return m.makeMNode(v, e)
}

// FromMatrix builds a full-width matrix DD from an explicit 2^n x 2^n
// matrix. Intended for tests and small operators.
func (m *Manager) FromMatrix(mat [][]cnum.Complex) (MEdge, error) {
	size := 1 << uint(m.nqubits)
	if m.nqubits > MaxDenseQubits/2 {
		return MEdge{}, fmt.Errorf("dd: matrix too large to build densely")
	}
	if len(mat) != size {
		return MEdge{}, fmt.Errorf("dd: matrix has %d rows, want %d", len(mat), size)
	}
	for _, row := range mat {
		if len(row) != size {
			return MEdge{}, fmt.Errorf("dd: matrix row has %d columns, want %d", len(row), size)
		}
	}
	return m.fromMatrix(mat, 0, 0, size, m.nqubits-1), nil
}

func (m *Manager) fromMatrix(mat [][]cnum.Complex, r0, c0, size int, v int) MEdge {
	if v < 0 {
		w := m.ctab.Lookup(mat[r0][c0])
		if w.IsZero() {
			return MEdge{}
		}
		return MEdge{W: w}
	}
	half := size / 2
	var e [4]MEdge
	for rbit := 0; rbit < 2; rbit++ {
		for cbit := 0; cbit < 2; cbit++ {
			e[2*rbit+cbit] = m.fromMatrix(mat, r0+rbit*half, c0+cbit*half, half, v-1)
		}
	}
	return m.makeMNode(v, e)
}

// ToMatrix expands a matrix DD into an explicit dense matrix. Intended for
// tests and small operators.
func (m *Manager) ToMatrix(e MEdge) ([][]cnum.Complex, error) {
	if m.nqubits > MaxDenseQubits/2 {
		return nil, fmt.Errorf("dd: matrix too large to expand densely")
	}
	size := 1 << uint(m.nqubits)
	mat := make([][]cnum.Complex, size)
	for i := range mat {
		mat[i] = make([]cnum.Complex, size)
	}
	m.fillMatrix(e, m.nqubits-1, cnum.One, 0, 0, size, mat)
	return mat, nil
}

func (m *Manager) fillMatrix(e MEdge, v int, acc cnum.Complex, r0, c0, size int, out [][]cnum.Complex) {
	if e.IsZero() {
		return
	}
	acc = acc.Mul(e.W)
	if v < 0 {
		out[r0][c0] = acc
		return
	}
	half := size / 2
	for rbit := 0; rbit < 2; rbit++ {
		for cbit := 0; cbit < 2; cbit++ {
			m.fillMatrix(e.N.E[2*rbit+cbit], v-1, acc, r0+rbit*half, c0+cbit*half, half, out)
		}
	}
}

// MNodeCount returns the number of distinct matrix nodes reachable from e,
// excluding the terminal.
func (m *Manager) MNodeCount(e MEdge) int {
	seen := make(map[*MNode]struct{})
	m.countMNodes(e.N, seen)
	return len(seen)
}

func (m *Manager) countMNodes(n *MNode, seen map[*MNode]struct{}) {
	if n == nil {
		return
	}
	if _, ok := seen[n]; ok {
		return
	}
	seen[n] = struct{}{}
	for i := 0; i < 4; i++ {
		m.countMNodes(n.E[i].N, seen)
	}
}
