package dd

import "weaksim/internal/cnum"

// VNode is a vector decision-diagram node. It splits a sub-vector on qubit
// V: E[0] covers the half where qubit V is |0⟩, E[1] the half where it is
// |1⟩. Nodes are hash-consed by the owning Manager; compare them by pointer.
type VNode struct {
	// V is the qubit (level) this node decides on.
	V int
	// E holds the 0-successor and 1-successor edges.
	E [2]VEdge

	hash uint64 // unique-table hash of (V, E), computed once at creation
	id   int32  // arena slot index, stable for the Manager's lifetime
	gen  uint32 // GC mark, managed by Manager.GC
}

// VEdge is a weighted edge to a vector node. The zero value is the zero
// edge, which represents an all-zero sub-vector. An edge with a nil target
// and non-zero weight is a terminal edge carrying a scalar amplitude factor.
type VEdge struct {
	W cnum.Complex
	N *VNode
}

// IsZero reports whether e is the zero edge (all-zero sub-vector).
func (e VEdge) IsZero() bool { return e.W.IsZero() }

// IsTerminal reports whether e points to the terminal, i.e. below level 0.
func (e VEdge) IsTerminal() bool { return e.N == nil }

// MNode is a matrix decision-diagram node. It splits a sub-matrix into four
// quadrants on qubit V: E[2*r+c] covers the quadrant with row bit r and
// column bit c of qubit V.
type MNode struct {
	V int
	E [4]MEdge

	hash uint64 // unique-table hash of (V, E), computed once at creation
	id   int32  // arena slot index, stable for the Manager's lifetime
	gen  uint32
	// ident marks nodes whose sub-matrix is exactly the identity; the
	// multiply routines shortcut them. Computed once at node creation.
	ident bool
}

// IsIdentity reports whether the node's sub-matrix is exactly the identity.
func (n *MNode) IsIdentity() bool { return n.ident }

// MEdge is a weighted edge to a matrix node. The zero value represents an
// all-zero sub-matrix; a nil target with non-zero weight is a terminal
// scalar.
type MEdge struct {
	W cnum.Complex
	N *MNode
}

// IsZero reports whether e is the zero edge (all-zero sub-matrix).
func (e MEdge) IsZero() bool { return e.W.IsZero() }

// IsTerminal reports whether e points to the terminal.
func (e MEdge) IsTerminal() bool { return e.N == nil }
