package dd

import (
	"math"
	"strings"
	"testing"

	"weaksim/internal/cnum"
)

func TestWriteDOTRunningExample(t *testing.T) {
	m := New(3, WithNormalization(NormL2))
	a := cnum.New(0, -math.Sqrt(3.0/8.0))
	b := cnum.New(math.Sqrt(1.0/8.0), 0)
	e, _ := m.FromVector([]cnum.Complex{cnum.Zero, a, cnum.Zero, a, b, cnum.Zero, cnum.Zero, b})

	var sb strings.Builder
	if err := m.WriteDOT(&sb, e, "figure4"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"figure4\"",
		"terminal [shape=box",
		"label=\"q2\"",
		"label=\"q1\"",
		"label=\"q0\"",
		"rank=same",
		"style=dashed",
		"style=solid",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Five nodes of the running example → five node declarations.
	if got := strings.Count(out, "[label=\"q"); got != m.NodeCount(e) {
		t.Errorf("DOT declares %d nodes, DD has %d", got, m.NodeCount(e))
	}
}

func TestWriteDOTZeroVector(t *testing.T) {
	m := New(2)
	var sb strings.Builder
	if err := m.WriteDOT(&sb, VEdge{}, "zero"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "zero [shape=box") {
		t.Errorf("zero-vector DOT wrong:\n%s", sb.String())
	}
}

func TestWriteDOTPropagatesWriteErrors(t *testing.T) {
	m := New(2)
	e := m.ZeroState()
	w := &limitedWriter{limit: 10}
	if err := m.WriteDOT(w, e, "x"); err == nil {
		t.Error("expected write error to propagate")
	}
}

type limitedWriter struct{ limit int }

func (l *limitedWriter) Write(p []byte) (int, error) {
	if l.limit <= 0 {
		return 0, errLimit
	}
	l.limit -= len(p)
	return len(p), nil
}

var errLimit = &limitError{}

type limitError struct{}

func (*limitError) Error() string { return "write limit reached" }

func TestWriteMDOT(t *testing.T) {
	m := New(2)
	op := m.GateDD(GateMatrix(hMatrix), 1, Pos(0))
	var sb strings.Builder
	if err := m.WriteMDOT(&sb, op, "ch"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph \"ch\"", "label=\"q1\"", "label=\"q0\"", "terminal"} {
		if !strings.Contains(out, want) {
			t.Errorf("MDOT missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := m.WriteMDOT(&sb2, MEdge{}, "z"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "zero") {
		t.Error("zero matrix MDOT wrong")
	}
}
