package dd

// Slab arenas for decision-diagram nodes.
//
// The live engine used to heap-allocate one *VNode/*MNode per unique-table
// miss and leave collection entirely to the Go GC: a swept node stayed
// resident until the runtime traced the whole heap, and every allocation
// paid mallocgc. The arena replaces that with per-manager slabs — fixed-size
// chunks of nodes allocated in bulk — plus an explicit free list the
// Manager's own mark-and-sweep feeds:
//
//   - Allocation is a free-list pop or a bump-pointer step into the current
//     slab; a new slab is one make([]VNode, slabSize) per 4096 nodes.
//   - Node pointers are stable for the life of the Manager (slabs are never
//     moved or shrunk), so everything that identifies nodes by pointer —
//     compute caches, snapshot origins, diagnostic maps — keeps working.
//   - Every node carries its arena slot index (id). Ids are dense, which
//     lets the freeze pass and the hash tables replace pointer-keyed maps
//     with flat arrays, and gives the unique-table hash a stable, cheap
//     identity for child references.
//   - Sweeping returns dead slots to the free list instead of dropping them
//     for the Go GC to find: the next makeVNode reuses the slot with zero
//     allocator traffic.
//
// The cost of recycling is a sharper lifetime rule: after Manager.GC, edges
// that were not passed as roots are dead — their slots may be reissued to
// brand-new nodes. The pre-arena engine let such edges linger as valid (if
// uncanonical) structures; no caller relied on that, and gc.go now
// documents the stricter contract. Freed slots are marked with V = freedLevel
// so a stale traversal fails the level invariant loudly instead of reading
// plausible garbage.

// slabBits sizes one slab at 2^slabBits nodes: large enough that slab
// allocation is rare, small enough that a tiny Manager doesn't pin megabytes.
const slabBits = 12

// slabSize is the number of nodes per slab.
const slabSize = 1 << slabBits

// freedLevel is the V value of a node whose slot sits on the free list.
// Levels of live nodes are always >= 0, so any walk that reaches a freed
// slot trips the level invariant immediately.
const freedLevel = -1

// vArena owns every VNode a Manager ever creates.
type vArena struct {
	slabs [][]VNode
	next  int32   // id of the next never-used slot (bump pointer)
	free  []int32 // slot ids returned by the sweep, reused LIFO
}

// len returns the total number of slots ever issued (live + free). Node ids
// are always < len, which sizes the id-indexed scratch arrays.
func (a *vArena) len() int32 { return a.next }

// at returns the node occupying slot id.
func (a *vArena) at(id int32) *VNode {
	return &a.slabs[id>>slabBits][id&(slabSize-1)]
}

// alloc returns a zeroed node with its id set, reusing a freed slot when one
// is available and bump-allocating (growing by one slab as needed) otherwise.
func (a *vArena) alloc() *VNode {
	if k := len(a.free) - 1; k >= 0 {
		id := a.free[k]
		a.free = a.free[:k]
		n := a.at(id)
		*n = VNode{id: id}
		return n
	}
	if int(a.next)>>slabBits == len(a.slabs) {
		a.slabs = append(a.slabs, make([]VNode, slabSize))
	}
	n := a.at(a.next)
	n.id = a.next
	a.next++
	return n
}

// release marks the node's slot dead and pushes it onto the free list. The
// successor edges are cleared so a freed slot never keeps stale structure.
func (a *vArena) release(n *VNode) {
	id := n.id
	*n = VNode{id: id, V: freedLevel}
	a.free = append(a.free, id)
}

// mArena is the matrix-node arena; identical mechanics.
type mArena struct {
	slabs [][]MNode
	next  int32
	free  []int32
}

func (a *mArena) len() int32 { return a.next }

func (a *mArena) at(id int32) *MNode {
	return &a.slabs[id>>slabBits][id&(slabSize-1)]
}

func (a *mArena) alloc() *MNode {
	if k := len(a.free) - 1; k >= 0 {
		id := a.free[k]
		a.free = a.free[:k]
		n := a.at(id)
		*n = MNode{id: id}
		return n
	}
	if int(a.next)>>slabBits == len(a.slabs) {
		a.slabs = append(a.slabs, make([]MNode, slabSize))
	}
	n := a.at(a.next)
	n.id = a.next
	a.next++
	return n
}

func (a *mArena) release(n *MNode) {
	id := n.id
	*n = MNode{id: id, V: freedLevel}
	a.free = append(a.free, id)
}
