package dd

import (
	"math"
	"testing"

	"weaksim/internal/cnum"
)

// FuzzMakeVNode hammers the hash-cons entry point with arbitrary weights
// under every normalization rule and demands the storage engine's two core
// properties survive: identical inputs yield the identical node pointer
// (canonicity — no duplicate ever enters the unique table), and the
// whole-table audit stays clean (every slot coherent, counts exact).
func FuzzMakeVNode(f *testing.F) {
	f.Add(uint8(0), 1.0, 0.0, 0.0, 0.0, 0.5, 0.5, -0.5, 0.5)
	f.Add(uint8(1), 0.7, 0.1, -0.2, 0.3, 0.0, 0.0, 1.0, 0.0)
	f.Add(uint8(2), 0.3, -0.4, 0.5, 0.6, -0.1, 0.2, 0.3, -0.4)
	f.Add(uint8(5), -0.0, 0.0, 1e-12, -1e-12, 2.0, -3.0, 0.25, 0.75)
	f.Fuzz(func(t *testing.T, normSel uint8, re0, im0, re1, im1, re2, im2, re3, im3 float64) {
		for _, x := range []float64{re0, im0, re1, im1, re2, im2, re3, im3} {
			// Non-finite weights are rejected upstream of the storage layer;
			// they would only fuzz float arithmetic, not the tables.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				t.Skip()
			}
		}
		m := New(2, WithNormalization(Norm(normSel%3)))

		// Two level-0 nodes from the fuzzed weights, then a level-1 node
		// over them: every makeVNode call must be reproducible.
		leaf := func(wa, wb cnum.Complex) VEdge {
			e := m.makeVNode(0, VEdge{W: wa}, VEdge{W: wb})
			again := m.makeVNode(0, VEdge{W: wa}, VEdge{W: wb})
			if e.N != again.N || e.W != again.W {
				t.Fatalf("level-0 make not canonical: %+v vs %+v", e, again)
			}
			return e
		}
		l0 := leaf(cnum.New(re0, im0), cnum.New(re1, im1))
		l1 := leaf(cnum.New(re2, im2), cnum.New(re3, im3))

		top := m.makeVNode(1, l0, l1)
		if again := m.makeVNode(1, l0, l1); top.N != again.N || top.W != again.W {
			t.Fatalf("level-1 make not canonical: %+v vs %+v", top, again)
		}
		// Swapped successors must only alias the same node when the edges
		// are themselves equal.
		if swapped := m.makeVNode(1, l1, l0); l0 != l1 && !l0.IsZero() && !l1.IsZero() {
			if eq := swapped.N == top.N && swapped.W == top.W; eq && l0 != l1 {
				t.Fatalf("distinct successor order collapsed: %+v", swapped)
			}
		}

		if err := m.CheckStorage(); err != nil {
			t.Fatalf("storage audit after fuzzed makes: %v", err)
		}
	})
}
