package dd

import (
	"bytes"
	"errors"
	"testing"

	"weaksim/internal/cnum"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		snap := mustFreeze(t, norm)
		enc := EncodeSnapshot(snap)
		dec, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("norm %v: decode: %v", norm, err)
		}
		if err := dec.Verify(); err != nil {
			t.Fatalf("norm %v: decoded snapshot fails Verify: %v", norm, err)
		}
		// The decoded snapshot must be observably identical: same header
		// fields, bit-for-bit equal arrays (re-encoding proves all at once).
		if !bytes.Equal(enc, EncodeSnapshot(dec)) {
			t.Fatalf("norm %v: decode/encode is not the identity", norm)
		}
		if dec.Qubits() != snap.Qubits() || dec.Norm() != snap.Norm() ||
			dec.Generic() != snap.Generic() || dec.Len() != snap.Len() ||
			dec.Root() != snap.Root() || dec.RootWeight() != snap.RootWeight() {
			t.Fatalf("norm %v: header fields diverge after round trip", norm)
		}
		for i := int32(0); int(i) < snap.Len(); i++ {
			if dec.At(i) != snap.At(i) || dec.Down(i) != snap.Down(i) || dec.Up(i) != snap.Up(i) {
				t.Fatalf("norm %v: node %d diverges after round trip", norm, i)
			}
		}
		if dec.Origin(0) != nil {
			t.Fatalf("norm %v: decoded snapshot claims an origin pointer", norm)
		}
	}
}

func TestSnapshotDecodeRejectsBadFraming(t *testing.T) {
	enc := EncodeSnapshot(mustFreeze(t, NormL2))
	cases := map[string][]byte{
		"empty":         nil,
		"short header":  enc[:10],
		"bad magic":     append([]byte("XSNP"), enc[4:]...),
		"bad version":   append(append([]byte{}, enc[:4]...), append([]byte{99, 0}, enc[6:]...)...),
		"truncated":     enc[:len(enc)-1],
		"trailing junk": append(append([]byte{}, enc...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); !errors.Is(err, ErrSnapshotEncoding) {
			t.Errorf("%s: err = %v, want ErrSnapshotEncoding", name, err)
		}
	}
}

// TestSnapshotDecodeVersionMismatchTyped: a frame from a different codec
// version is separately detectable (ErrSnapshotVersion) while still counting
// as undecodable here (ErrSnapshotEncoding); other framing damage must NOT
// read as a version mismatch.
func TestSnapshotDecodeVersionMismatchTyped(t *testing.T) {
	enc := EncodeSnapshot(mustFreeze(t, NormL2))
	newer := append([]byte{}, enc...)
	newer[4], newer[5] = 2, 0 // version 2 little-endian
	_, err := DecodeSnapshot(newer)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("newer version: err = %v, want ErrSnapshotVersion", err)
	}
	if !errors.Is(err, ErrSnapshotEncoding) {
		t.Fatalf("version mismatch must still wrap ErrSnapshotEncoding: %v", err)
	}
	if _, err := DecodeSnapshot(enc[:len(enc)-1]); errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("truncation misread as a version mismatch: %v", err)
	}
}

// FuzzSnapshotDecode: the decoder must never panic, and anything it accepts
// must survive Verify without panicking either (Verify may well fail — the
// fuzzer forges masses — but it must fail with an error).
func FuzzSnapshotDecode(f *testing.F) {
	for _, norm := range []Norm{NormLeft, NormL2, NormL2Phase} {
		m := New(2, WithNormalization(norm))
		h := cnum.New(0.5, 0)
		state, err := m.FromVector([]cnum.Complex{h, h, h, h})
		if err != nil {
			f.Fatal(err)
		}
		snap, err := m.Freeze(state)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeSnapshot(snap))
	}
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		_ = s.Verify()
	})
}
