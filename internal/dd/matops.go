package dd

import "weaksim/internal/cnum"

// mmKey identifies a matrix-matrix product in the compute cache.
type mmKey struct {
	a, b *MNode
}

// maddKey identifies a matrix addition in the compute cache.
type maddKey struct {
	a, b  *MNode
	ratio cnum.Complex
}

// matOps lazily holds the caches for matrix-matrix composition; most
// simulations never compose operators, so the maps are created on first
// use.
type matOps struct {
	mul map[mmKey]MEdge
	add map[maddKey]MEdge
	adj map[*MNode]MEdge
}

func (m *Manager) matOpCaches() *matOps {
	if m.mops == nil {
		m.mops = &matOps{
			mul: make(map[mmKey]MEdge, 1024),
			add: make(map[maddKey]MEdge, 1024),
			adj: make(map[*MNode]MEdge, 1024),
		}
	}
	return m.mops
}

// MulMM returns the operator product a·b as a matrix DD (apply b first,
// then a — standard operator composition). Composing operators trades one
// larger matrix DD for fewer matrix-vector multiplications; reference [18]
// of the paper studies exactly this trade-off, and the repository's
// benchmarks ablate it on Grover's iteration operator.
func (m *Manager) MulMM(a, b MEdge) MEdge {
	return m.mulMM(a, b, m.nqubits-1)
}

func (m *Manager) mulMM(a, b MEdge, v int) MEdge {
	if a.IsZero() || b.IsZero() {
		return MEdge{}
	}
	w := a.W.Mul(b.W)
	if v < 0 {
		return MEdge{W: m.ctab.Lookup(w)}
	}
	if a.N.ident {
		return MEdge{W: m.ctab.Lookup(w), N: b.N}
	}
	if b.N.ident {
		return MEdge{W: m.ctab.Lookup(w), N: a.N}
	}
	ops := m.matOpCaches()
	key := mmKey{a: a.N, b: b.N}
	if r, ok := ops.mul[key]; ok {
		if r.IsZero() {
			return MEdge{}
		}
		return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
	}

	var e [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			p0 := m.mulMM(a.N.E[2*i+0], b.N.E[0+j], v-1)
			p1 := m.mulMM(a.N.E[2*i+1], b.N.E[2+j], v-1)
			e[2*i+j] = m.addMM(p0, p1, v-1)
		}
	}
	r := m.makeMNode(v, e)

	if len(ops.mul) >= m.cacheSize {
		ops.mul = make(map[mmKey]MEdge, 1024)
	}
	ops.mul[key] = r
	if r.IsZero() {
		return MEdge{}
	}
	return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
}

// AddMM returns the element-wise sum of two operator DDs.
func (m *Manager) AddMM(a, b MEdge) MEdge {
	return m.addMM(a, b, m.nqubits-1)
}

func (m *Manager) addMM(a, b MEdge, v int) MEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if v < 0 {
		sum := m.ctab.Lookup(a.W.Add(b.W))
		if sum.IsZero() {
			return MEdge{}
		}
		return MEdge{W: sum}
	}
	ops := m.matOpCaches()
	ratio := m.ctab.Lookup(b.W.Div(a.W))
	key := maddKey{a: a.N, b: b.N, ratio: ratio}
	if r, ok := ops.add[key]; ok {
		if r.IsZero() {
			return MEdge{}
		}
		return MEdge{W: m.ctab.Lookup(r.W.Mul(a.W)), N: r.N}
	}

	var e [4]MEdge
	for i := 0; i < 4; i++ {
		be := b.N.E[i]
		e[i] = m.addMM(a.N.E[i], MEdge{W: ratio.Mul(be.W), N: be.N}, v-1)
	}
	r := m.makeMNode(v, e)

	if len(ops.add) >= m.cacheSize {
		ops.add = make(map[maddKey]MEdge, 1024)
	}
	ops.add[key] = r
	if r.IsZero() {
		return MEdge{}
	}
	return MEdge{W: m.ctab.Lookup(r.W.Mul(a.W)), N: r.N}
}

// Adjoint returns the conjugate transpose of the operator DD — the inverse
// of a unitary operator.
func (m *Manager) Adjoint(a MEdge) MEdge {
	return m.adjoint(a, m.nqubits-1)
}

func (m *Manager) adjoint(a MEdge, v int) MEdge {
	if a.IsZero() {
		return MEdge{}
	}
	w := m.ctab.Lookup(a.W.Conj())
	if v < 0 {
		return MEdge{W: w}
	}
	ops := m.matOpCaches()
	if r, ok := ops.adj[a.N]; ok {
		return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
	}
	var e [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			// Transpose the quadrants and conjugate recursively.
			e[2*i+j] = m.adjoint(a.N.E[2*j+i], v-1)
		}
	}
	r := m.makeMNode(v, e)
	if len(ops.adj) >= m.cacheSize {
		ops.adj = make(map[*MNode]MEdge, 1024)
	}
	ops.adj[a.N] = r
	return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
}
