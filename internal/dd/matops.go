package dd

// matOps lazily holds the direct-mapped caches for matrix-matrix
// composition; most simulations never compose operators, so the struct (and
// its entry arrays, allocated on first insert) only exists once an operator
// algebra routine runs. The caches survive GC: entries are epoch-stamped and
// lazily invalidated like every other compute cache.
type matOps struct {
	mul mmCache
	add maddCache
	adj adjCache
}

func (m *Manager) matOpCaches() *matOps {
	if m.mops == nil {
		m.mops = &matOps{}
	}
	return m.mops
}

// MulMM returns the operator product a·b as a matrix DD (apply b first,
// then a — standard operator composition). Composing operators trades one
// larger matrix DD for fewer matrix-vector multiplications; reference [18]
// of the paper studies exactly this trade-off, and the repository's
// benchmarks ablate it on Grover's iteration operator.
func (m *Manager) MulMM(a, b MEdge) MEdge {
	return m.mulMM(a, b, m.nqubits-1)
}

func (m *Manager) mulMM(a, b MEdge, v int) MEdge {
	if a.IsZero() || b.IsZero() {
		return MEdge{}
	}
	w := a.W.Mul(b.W)
	if v < 0 {
		return MEdge{W: m.ctab.Lookup(w)}
	}
	if a.N.ident {
		return MEdge{W: m.ctab.Lookup(w), N: b.N}
	}
	if b.N.ident {
		return MEdge{W: m.ctab.Lookup(w), N: a.N}
	}
	ops := m.matOpCaches()
	if r, ok := ops.mul.get(m, a.N, b.N); ok {
		m.matHits++
		if r.IsZero() {
			return MEdge{}
		}
		return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
	}
	m.matMisses++

	var e [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			p0 := m.mulMM(a.N.E[2*i+0], b.N.E[0+j], v-1)
			p1 := m.mulMM(a.N.E[2*i+1], b.N.E[2+j], v-1)
			e[2*i+j] = m.addMM(p0, p1, v-1)
		}
	}
	r := m.makeMNode(v, e)

	ops.mul.put(m, a.N, b.N, r)
	if r.IsZero() {
		return MEdge{}
	}
	return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
}

// AddMM returns the element-wise sum of two operator DDs.
func (m *Manager) AddMM(a, b MEdge) MEdge {
	return m.addMM(a, b, m.nqubits-1)
}

func (m *Manager) addMM(a, b MEdge, v int) MEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if v < 0 {
		sum := m.ctab.Lookup(a.W.Add(b.W))
		if sum.IsZero() {
			return MEdge{}
		}
		return MEdge{W: sum}
	}
	ops := m.matOpCaches()
	ratio := m.ctab.Lookup(b.W.Div(a.W))
	if r, ok := ops.add.get(m, a.N, b.N, ratio); ok {
		m.matHits++
		if r.IsZero() {
			return MEdge{}
		}
		return MEdge{W: m.ctab.Lookup(r.W.Mul(a.W)), N: r.N}
	}
	m.matMisses++

	var e [4]MEdge
	for i := 0; i < 4; i++ {
		be := b.N.E[i]
		e[i] = m.addMM(a.N.E[i], MEdge{W: ratio.Mul(be.W), N: be.N}, v-1)
	}
	r := m.makeMNode(v, e)

	ops.add.put(m, a.N, b.N, ratio, r)
	if r.IsZero() {
		return MEdge{}
	}
	return MEdge{W: m.ctab.Lookup(r.W.Mul(a.W)), N: r.N}
}

// Adjoint returns the conjugate transpose of the operator DD — the inverse
// of a unitary operator.
func (m *Manager) Adjoint(a MEdge) MEdge {
	return m.adjoint(a, m.nqubits-1)
}

func (m *Manager) adjoint(a MEdge, v int) MEdge {
	if a.IsZero() {
		return MEdge{}
	}
	w := m.ctab.Lookup(a.W.Conj())
	if v < 0 {
		return MEdge{W: w}
	}
	ops := m.matOpCaches()
	if r, ok := ops.adj.get(m, a.N); ok {
		m.matHits++
		return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
	}
	m.matMisses++
	var e [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			// Transpose the quadrants and conjugate recursively.
			e[2*i+j] = m.adjoint(a.N.E[2*j+i], v-1)
		}
	}
	r := m.makeMNode(v, e)
	ops.adj.put(m, a.N, r)
	return MEdge{W: m.ctab.Lookup(r.W.Mul(w)), N: r.N}
}
