package dd

import (
	"errors"
	"fmt"

	"weaksim/internal/fault"
)

// ErrNodeBudget reports that the decision diagrams owned by a Manager have
// grown past the configured node budget. It is the DD-side analogue of the
// paper's "MO" (memory out) condition: where a dense state vector fails by
// exceeding 2^maxQubits amplitudes, a decision diagram fails by node-count
// explosion (supremacy- and Shor-class states). Callers detect it with
// errors.Is(err, dd.ErrNodeBudget).
var ErrNodeBudget = errors.New("dd: decision diagram exceeds node budget (MO)")

// WithNodeBudget bounds the total number of live decision-diagram nodes
// (vector + matrix) the Manager may hold. 0 (the default) means unlimited.
//
// The budget is enforced at node-creation time: when an operation would grow
// the unique tables past the budget, the operation aborts and surfaces
// ErrNodeBudget through the nearest Guarded call. Budget pressure also makes
// ShouldGC report true, so drivers collect garbage before concluding the
// budget is truly exhausted.
func WithNodeBudget(n int) Option { return func(m *Manager) { m.nodeBudget = n } }

// NodeBudget returns the configured node budget (0 = unlimited).
func (m *Manager) NodeBudget() int { return m.nodeBudget }

// SetNodeBudget replaces the node budget at runtime (0 = unlimited).
// Degradation planners use this to suspend the budget while rebuilding an
// approximated (pruned) state that will shrink the table once the old state
// is collected.
func (m *Manager) SetNodeBudget(n int) { m.nodeBudget = n }

// LiveNodes returns the current number of live nodes across both unique
// tables. This is the quantity the node budget bounds. Reading it refreshes
// the peak-node high-water mark.
func (m *Manager) LiveNodes() int {
	m.refreshPeak()
	return m.vTab.n + m.mTab.n
}

// PeakNodes returns the high-water mark of LiveNodes over the Manager's
// lifetime — the "memory" column of the paper's Table I for the DD backend.
// The mark is primarily maintained on the unique-table miss path
// (noteGrowth); refreshPeak in the readers guarantees a snapshot is never
// stale even for a Manager whose tables grew through a path that bypassed
// noteGrowth.
func (m *Manager) PeakNodes() int {
	m.refreshPeak()
	return m.peakNodes
}

// refreshPeak raises the high-water mark to the current live count.
// noteGrowth already does this on every unique-table miss — the only way
// the tables grow — but the readers (TableStats, LiveNodes, PeakNodes)
// refresh defensively so snapshots can never under-report, even if a future
// growth path forgets the bookkeeping.
func (m *Manager) refreshPeak() {
	if live := m.vTab.n + m.mTab.n; live > m.peakNodes {
		m.peakNodes = live
	}
}

// CheckNodeBudget returns ErrNodeBudget (wrapped with the current counts)
// when the live node count exceeds the budget, and nil otherwise. Drivers
// call it after a garbage collection to decide whether budget pressure is
// transient garbage or genuine state growth.
func (m *Manager) CheckNodeBudget() error {
	if m.nodeBudget > 0 && m.LiveNodes() > m.nodeBudget {
		return fmt.Errorf("%w: %d live nodes, budget %d", ErrNodeBudget, m.LiveNodes(), m.nodeBudget)
	}
	return nil
}

// budgetAbort is the internal panic payload used to unwind deep DD
// recursions (Mul, Add, GateDD, PermutationDD rebuild the diagram node by
// node) when the node budget is exceeded. It never escapes the package:
// Guarded converts it into ErrNodeBudget.
type budgetAbort struct{ live, budget int }

// noteGrowth records the table high-water mark and aborts the in-flight
// operation when a configured node budget is exceeded. It is called on the
// unique-table miss path only, so the per-node cost is two table-count reads
// on a path that already did the insert work.
func (m *Manager) noteGrowth() {
	live := m.vTab.n + m.mTab.n
	if live > m.peakNodes {
		m.peakNodes = live
	}
	if m.nodeBudget > 0 && live > m.nodeBudget {
		panic(budgetAbort{live: live, budget: m.nodeBudget})
	}
	// Fault hook on the unique-table miss path (already allocating, so the
	// disabled atomic load is noise). An injected err unwinds exactly like a
	// budget overrun: through the nearest Guarded, out as ErrNodeBudget.
	if err := fault.Hit(fault.DDUniqueInsert); err != nil {
		panic(budgetAbort{live: live, budget: m.nodeBudget})
	}
}

// Guarded runs f and converts a node-budget abort raised inside it into a
// returned ErrNodeBudget. All other panics propagate unchanged. Drivers wrap
// each growth point (operator construction, matrix-vector products) in
// Guarded; on ErrNodeBudget the diagram state visible to the caller is
// unchanged — partially built product nodes remain in the unique tables (and
// their arena slots allocated) as garbage until the next GC reclaims them,
// but no caller-held edge is invalidated.
func (m *Manager) Guarded(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(budgetAbort); ok {
				m.noteBudgetPressure(a.live, a.budget)
				err = fmt.Errorf("%w: %d live nodes, budget %d", ErrNodeBudget, a.live, a.budget)
				return
			}
			panic(r)
		}
	}()
	return f()
}
