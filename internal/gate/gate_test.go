package gate

import (
	"math"
	"testing"
	"testing/quick"

	"weaksim/internal/cnum"
)

// mul2 multiplies two 2x2 complex matrices.
func mul2(a, b [2][2]cnum.Complex) [2][2]cnum.Complex {
	var r [2][2]cnum.Complex
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0].Mul(b[0][j]).Add(a[i][1].Mul(b[1][j]))
		}
	}
	return r
}

func adjoint(a [2][2]cnum.Complex) [2][2]cnum.Complex {
	return [2][2]cnum.Complex{
		{a[0][0].Conj(), a[1][0].Conj()},
		{a[0][1].Conj(), a[1][1].Conj()},
	}
}

func isIdentity(a [2][2]cnum.Complex, tol float64) bool {
	return a[0][0].ApproxEq(cnum.One, tol) && a[1][1].ApproxEq(cnum.One, tol) &&
		a[0][1].ApproxZero(tol) && a[1][0].ApproxZero(tol)
}

func allGates() []Gate {
	return []Gate{
		IDGate, XGate, YGate, ZGate, HGate, SGate, SdgGate, TGate, TdgGate,
		SXGate, SYGate,
		RXGate(0.7), RYGate(-1.3), RZGate(2.1), PhaseGate(0.9),
		UGate(0.4, 1.1, -0.6),
	}
}

func TestAllGatesAreUnitary(t *testing.T) {
	for _, g := range allGates() {
		m := g.Matrix()
		if !isIdentity(mul2(adjoint(m), m), 1e-12) {
			t.Errorf("%s is not unitary: U†U = %v", g, mul2(adjoint(m), m))
		}
	}
}

func TestSquareRootGates(t *testing.T) {
	sx := SXGate.Matrix()
	if got := mul2(sx, sx); !got[0][1].ApproxEq(cnum.One, 1e-12) || !got[1][0].ApproxEq(cnum.One, 1e-12) {
		t.Errorf("SX² = %v, want X", got)
	}
	sy := SYGate.Matrix()
	y := YGate.Matrix()
	got := mul2(sy, sy)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !got[i][j].ApproxEq(y[i][j], 1e-12) {
				t.Errorf("SY²[%d][%d] = %v, want %v", i, j, got[i][j], y[i][j])
			}
		}
	}
}

func TestKnownMatrixEntries(t *testing.T) {
	h := HGate.Matrix()
	if !h[0][0].ApproxEq(cnum.SqrtHalf, 1e-15) || !h[1][1].ApproxEq(cnum.SqrtHalf.Neg(), 1e-15) {
		t.Errorf("H = %v", h)
	}
	tg := TGate.Matrix()
	want := cnum.New(math.Sqrt2/2, math.Sqrt2/2)
	if !tg[1][1].ApproxEq(want, 1e-15) {
		t.Errorf("T[1][1] = %v, want %v", tg[1][1], want)
	}
	rz := RZGate(math.Pi).Matrix()
	if !rz[0][0].ApproxEq(cnum.New(0, -1), 1e-12) {
		t.Errorf("RZ(π)[0][0] = %v, want -i", rz[0][0])
	}
	p := PhaseGate(math.Pi / 2).Matrix()
	if !p[1][1].ApproxEq(cnum.I, 1e-12) {
		t.Errorf("P(π/2)[1][1] = %v, want i", p[1][1])
	}
}

func TestInverses(t *testing.T) {
	for _, g := range []Gate{
		XGate, YGate, ZGate, HGate, SGate, SdgGate, TGate, TdgGate,
		RXGate(0.8), RYGate(0.8), RZGate(0.8), PhaseGate(0.8), UGate(0.3, 0.5, 0.7),
	} {
		inv := g.Inverse()
		if !isIdentity(mul2(inv.Matrix(), g.Matrix()), 1e-12) {
			t.Errorf("%s · %s ≠ I", inv, g)
		}
	}
}

func TestInversePanicsForSX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for SX.Inverse")
		}
	}()
	SXGate.Inverse()
}

func TestRotationComposition(t *testing.T) {
	// RX(a)·RX(b) == RX(a+b) — a property of any rotation family.
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 10), math.Mod(b, 10)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		got := mul2(RXGate(a).Matrix(), RXGate(b).Matrix())
		want := RXGate(a + b).Matrix()
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if !got[i][j].ApproxEq(want[i][j], 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUGateGeneralizes(t *testing.T) {
	// U(θ, -π/2, π/2) == RX(θ), U(θ, 0, 0) == RY(θ).
	for _, theta := range []float64{0.3, 1.2, -0.8} {
		u := UGate(theta, -math.Pi/2, math.Pi/2).Matrix()
		rx := RXGate(theta).Matrix()
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if !u[i][j].ApproxEq(rx[i][j], 1e-12) {
					t.Errorf("U(θ,-π/2,π/2)[%d][%d] = %v, want RX %v", i, j, u[i][j], rx[i][j])
				}
			}
		}
		u = UGate(theta, 0, 0).Matrix()
		ry := RYGate(theta).Matrix()
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if !u[i][j].ApproxEq(ry[i][j], 1e-12) {
					t.Errorf("U(θ,0,0)[%d][%d] = %v, want RY %v", i, j, u[i][j], ry[i][j])
				}
			}
		}
	}
}

func TestNamesAndStrings(t *testing.T) {
	if XGate.Name() != "x" || HGate.String() != "h" {
		t.Error("fixed gate naming broken")
	}
	if got := RXGate(0.5).String(); got != "rx(0.5)" {
		t.Errorf("String = %q", got)
	}
	if got := UGate(1, 2, 3).String(); got != "u(1,2,3)" {
		t.Errorf("String = %q", got)
	}
	if RXGate(1).NumParams() != 1 || UGate(1, 2, 3).NumParams() != 3 || XGate.NumParams() != 0 {
		t.Error("NumParams broken")
	}
}

func TestNewPanicsOnWrongParamCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(RX) // missing parameter
}

func TestControls(t *testing.T) {
	if c := Pos(3); c.Qubit != 3 || c.Negative {
		t.Errorf("Pos(3) = %+v", c)
	}
	if c := Neg(5); c.Qubit != 5 || !c.Negative {
		t.Errorf("Neg(5) = %+v", c)
	}
}
