// Package gate defines the single-qubit gate library and control
// specifications shared by the circuit representation and the simulation
// backends. All gates are 2x2 unitaries; multi-qubit operations are
// expressed as controlled single-qubit gates or, for classical reversible
// blocks, as permutations at the circuit level.
package gate

import (
	"fmt"
	"math"

	"weaksim/internal/cnum"
)

// Kind enumerates the supported single-qubit gates.
type Kind int

const (
	// I is the identity gate.
	I Kind = iota
	// X is the Pauli-X (NOT) gate.
	X
	// Y is the Pauli-Y gate.
	Y
	// Z is the Pauli-Z gate.
	Z
	// H is the Hadamard gate.
	H
	// S is the phase gate diag(1, i).
	S
	// Sdg is the inverse phase gate diag(1, -i).
	Sdg
	// T is the π/8 gate diag(1, e^{iπ/4}).
	T
	// Tdg is the inverse π/8 gate.
	Tdg
	// SX is the square root of X (used by the supremacy circuits).
	SX
	// SY is the square root of Y (used by the supremacy circuits).
	SY
	// RX is the rotation e^{-iθX/2}; one parameter θ.
	RX
	// RY is the rotation e^{-iθY/2}; one parameter θ.
	RY
	// RZ is the rotation e^{-iθZ/2}; one parameter θ.
	RZ
	// Phase is diag(1, e^{iθ}); one parameter θ. Controlled Phase gates
	// are the workhorse of the QFT.
	Phase
	// U is the generic single-qubit gate U(θ, φ, λ) in the OpenQASM
	// convention; three parameters.
	U
)

var kindNames = map[Kind]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", SX: "sx", SY: "sy",
	RX: "rx", RY: "ry", RZ: "rz", Phase: "p", U: "u",
}

// numParams maps each kind to its parameter count.
var numParams = map[Kind]int{
	RX: 1, RY: 1, RZ: 1, Phase: 1, U: 3,
}

// Gate is a single-qubit gate instance: a kind plus its real parameters.
type Gate struct {
	Kind   Kind
	Params [3]float64
}

// New returns a Gate of the given kind. The number of parameters must match
// the kind (0 for fixed gates, 1 for rotations, 3 for U).
func New(kind Kind, params ...float64) Gate {
	want := numParams[kind]
	if len(params) != want {
		panic(fmt.Sprintf("gate: %s takes %d parameters, got %d", kindNames[kind], want, len(params)))
	}
	g := Gate{Kind: kind}
	copy(g.Params[:], params)
	return g
}

// Convenience constructors for the fixed gates.
var (
	XGate   = New(X)
	YGate   = New(Y)
	ZGate   = New(Z)
	HGate   = New(H)
	SGate   = New(S)
	SdgGate = New(Sdg)
	TGate   = New(T)
	TdgGate = New(Tdg)
	SXGate  = New(SX)
	SYGate  = New(SY)
	IDGate  = New(I)
)

// RXGate returns the X rotation by θ.
func RXGate(theta float64) Gate { return New(RX, theta) }

// RYGate returns the Y rotation by θ.
func RYGate(theta float64) Gate { return New(RY, theta) }

// RZGate returns the Z rotation by θ.
func RZGate(theta float64) Gate { return New(RZ, theta) }

// PhaseGate returns diag(1, e^{iθ}).
func PhaseGate(theta float64) Gate { return New(Phase, theta) }

// UGate returns the generic U(θ, φ, λ) gate.
func UGate(theta, phi, lambda float64) Gate { return New(U, theta, phi, lambda) }

// Name returns the OpenQASM-style mnemonic of the gate kind.
func (g Gate) Name() string { return kindNames[g.Kind] }

// NumParams returns the number of parameters the gate carries.
func (g Gate) NumParams() int { return numParams[g.Kind] }

// String renders the gate with its parameters, e.g. "rx(2.0944)".
func (g Gate) String() string {
	n := numParams[g.Kind]
	if n == 0 {
		return g.Name()
	}
	s := g.Name() + "("
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%g", g.Params[i])
	}
	return s + ")"
}

// Matrix returns the dense 2x2 unitary of the gate, indexed [row][column].
func (g Gate) Matrix() [2][2]cnum.Complex {
	switch g.Kind {
	case I:
		return [2][2]cnum.Complex{{cnum.One, cnum.Zero}, {cnum.Zero, cnum.One}}
	case X:
		return [2][2]cnum.Complex{{cnum.Zero, cnum.One}, {cnum.One, cnum.Zero}}
	case Y:
		return [2][2]cnum.Complex{{cnum.Zero, cnum.I.Neg()}, {cnum.I, cnum.Zero}}
	case Z:
		return [2][2]cnum.Complex{{cnum.One, cnum.Zero}, {cnum.Zero, cnum.MinusOne}}
	case H:
		h := cnum.SqrtHalf
		return [2][2]cnum.Complex{{h, h}, {h, h.Neg()}}
	case S:
		return [2][2]cnum.Complex{{cnum.One, cnum.Zero}, {cnum.Zero, cnum.I}}
	case Sdg:
		return [2][2]cnum.Complex{{cnum.One, cnum.Zero}, {cnum.Zero, cnum.I.Neg()}}
	case T:
		return [2][2]cnum.Complex{{cnum.One, cnum.Zero}, {cnum.Zero, cnum.FromPolar(1, math.Pi/4)}}
	case Tdg:
		return [2][2]cnum.Complex{{cnum.One, cnum.Zero}, {cnum.Zero, cnum.FromPolar(1, -math.Pi/4)}}
	case SX:
		// sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
		p := cnum.New(0.5, 0.5)
		q := cnum.New(0.5, -0.5)
		return [2][2]cnum.Complex{{p, q}, {q, p}}
	case SY:
		// sqrt(Y) = 1/2 [[1+i, -1-i], [1+i, 1+i]]
		p := cnum.New(0.5, 0.5)
		return [2][2]cnum.Complex{{p, p.Neg()}, {p, p}}
	case RX:
		c := math.Cos(g.Params[0] / 2)
		s := math.Sin(g.Params[0] / 2)
		return [2][2]cnum.Complex{
			{cnum.New(c, 0), cnum.New(0, -s)},
			{cnum.New(0, -s), cnum.New(c, 0)},
		}
	case RY:
		c := math.Cos(g.Params[0] / 2)
		s := math.Sin(g.Params[0] / 2)
		return [2][2]cnum.Complex{
			{cnum.New(c, 0), cnum.New(-s, 0)},
			{cnum.New(s, 0), cnum.New(c, 0)},
		}
	case RZ:
		return [2][2]cnum.Complex{
			{cnum.FromPolar(1, -g.Params[0]/2), cnum.Zero},
			{cnum.Zero, cnum.FromPolar(1, g.Params[0]/2)},
		}
	case Phase:
		return [2][2]cnum.Complex{
			{cnum.One, cnum.Zero},
			{cnum.Zero, cnum.FromPolar(1, g.Params[0])},
		}
	case U:
		theta, phi, lambda := g.Params[0], g.Params[1], g.Params[2]
		c := math.Cos(theta / 2)
		s := math.Sin(theta / 2)
		return [2][2]cnum.Complex{
			{cnum.New(c, 0), cnum.FromPolar(s, lambda).Neg()},
			{cnum.FromPolar(s, phi), cnum.FromPolar(c, phi+lambda)},
		}
	default:
		panic(fmt.Sprintf("gate: unknown kind %d", int(g.Kind)))
	}
}

// Inverse returns the adjoint of the gate as a Gate where a closed form
// exists.
func (g Gate) Inverse() Gate {
	switch g.Kind {
	case I, X, Y, Z, H:
		return g
	case S:
		return SdgGate
	case Sdg:
		return SGate
	case T:
		return TdgGate
	case Tdg:
		return TGate
	case RX:
		return RXGate(-g.Params[0])
	case RY:
		return RYGate(-g.Params[0])
	case RZ:
		return RZGate(-g.Params[0])
	case Phase:
		return PhaseGate(-g.Params[0])
	case U:
		return UGate(-g.Params[0], -g.Params[2], -g.Params[1])
	case SX, SY:
		// No dedicated inverse kinds; express via U. sqrt(X)† = RX(-π/2)
		// up to global phase e^{-iπ/4}, which weak simulation cannot
		// observe, but keep it exact via U decomposition instead.
		panic("gate: SX/SY have no closed-form inverse Gate; invert at the circuit level")
	default:
		panic("gate: unknown kind")
	}
}

// Control describes a control qubit. A negative control activates the
// operation when the qubit is |0⟩.
type Control struct {
	Qubit    int
	Negative bool
}

// Pos is shorthand for a positive control on qubit q.
func Pos(q int) Control { return Control{Qubit: q} }

// Neg is shorthand for a negative control on qubit q.
func Neg(q int) Control { return Control{Qubit: q, Negative: true} }
