package circuit

import (
	"fmt"
	"strings"

	"weaksim/internal/gate"
)

// Render draws the circuit as an ASCII diagram in the style of the paper's
// Fig. 1: one horizontal wire per qubit (most significant on top),
// operations applied left to right, controls drawn as '*' ('o' for negative
// controls), X targets as '(+)', and a terminal measurement box on every
// wire. Permutation operations are drawn as labeled multi-qubit boxes.
func (c *Circuit) Render() string {
	const (
		wire = "---"
		gap  = "   "
	)
	rows := make([]strings.Builder, c.NQubits)
	for q := 0; q < c.NQubits; q++ {
		fmt.Fprintf(&rows[q], "|q%-2d> ", q)
	}

	pad := func() {
		width := 0
		for q := range rows {
			if rows[q].Len() > width {
				width = rows[q].Len()
			}
		}
		for q := range rows {
			for rows[q].Len() < width {
				rows[q].WriteByte('-')
			}
		}
	}

	for _, op := range c.Ops {
		switch op.Kind {
		case BarrierOp:
			pad()
			for q := range rows {
				rows[q].WriteString("-|-")
			}
			continue
		case PermutationOp:
			pad()
			label := op.Label
			if label == "" {
				label = "perm"
			}
			cell := "[" + label + "]"
			for q := range rows {
				switch {
				case q < op.PermWidth:
					rows[q].WriteString(wire + cell)
				case hasControl(op.Controls, q):
					rows[q].WriteString(wire + ctlMark(op.Controls, q) + strings.Repeat("-", len(cell)-1))
				default:
					rows[q].WriteString(wire + strings.Repeat("-", len(cell)))
				}
			}
			continue
		}
		// Gate op.
		pad()
		cell := "[" + op.Gate.String() + "]"
		if op.Gate.Name() == "x" && op.Gate.NumParams() == 0 && len(op.Controls) > 0 {
			cell = "(+)"
		}
		for q := range rows {
			switch {
			case q == op.Target:
				rows[q].WriteString(wire + cell)
			case hasControl(op.Controls, q):
				rows[q].WriteString(wire + ctlMark(op.Controls, q) + strings.Repeat("-", len(cell)-1))
			default:
				rows[q].WriteString(wire + strings.Repeat("-", len(cell)))
			}
		}
	}
	pad()
	for q := range rows {
		rows[q].WriteString(wire + "[M]==")
	}

	// Most significant qubit on top, as in the paper's figures.
	var out strings.Builder
	for q := c.NQubits - 1; q >= 0; q-- {
		out.WriteString(rows[q].String())
		out.WriteByte('\n')
	}
	return out.String()
}

func hasControl(controls []gate.Control, q int) bool {
	for _, c := range controls {
		if c.Qubit == q {
			return true
		}
	}
	return false
}

func ctlMark(controls []gate.Control, q int) string {
	for _, c := range controls {
		if c.Qubit == q {
			if c.Negative {
				return "o"
			}
			return "*"
		}
	}
	return "-"
}
