package circuit

import (
	"math"

	"weaksim/internal/gate"
)

// OptimizeResult reports what the optimizer did.
type OptimizeResult struct {
	// CancelledPairs counts removed adjacent self-inverse pairs (X·X,
	// H·H, CX·CX, S·S†, ...).
	CancelledPairs int
	// MergedRotations counts rotation pairs folded into one gate.
	MergedRotations int
	// RemovedIdentities counts dropped identity gates (id, zero-angle
	// rotations, merged rotations that summed to a full turn).
	RemovedIdentities int
}

// Total returns the number of eliminated operations.
func (r OptimizeResult) Total() int {
	return 2*r.CancelledPairs + r.MergedRotations + r.RemovedIdentities
}

const angleEps = 1e-12

// Optimize rewrites the circuit in place with exact, semantics-preserving
// local simplifications:
//
//   - adjacent self-inverse gates on identical qubits/controls cancel
//     (X·X, Y·Y, Z·Z, H·H, and controlled versions), as do S·S† and T·T†;
//   - adjacent rotations of the same family on identical qubits/controls
//     merge (RX(a)·RX(b) → RX(a+b), likewise RY, RZ, Phase);
//   - identity gates disappear: the id gate, zero-angle rotations, Phase
//     multiples of 2π, and R-rotations that are multiples of 4π (2π
//     R-rotations are −I, a global phase that is observable for controlled
//     gates, so they are kept).
//
// Two operations count as adjacent when no operation in between touches any
// of their qubits; barriers fence optimization (they touch every qubit).
// Optimization never changes any amplitude of the simulated state.
func Optimize(c *Circuit) OptimizeResult {
	var res OptimizeResult
	for {
		changed := false
		removed := make([]bool, len(c.Ops))

		// Drop identity gates first.
		for i, op := range c.Ops {
			if op.Kind == GateOp && isIdentityGate(op.Gate) {
				removed[i] = true
				res.RemovedIdentities++
				changed = true
			}
		}

		for i := 0; i < len(c.Ops); i++ {
			if removed[i] || c.Ops[i].Kind != GateOp {
				continue
			}
			j, blocked := nextTouching(c, removed, i)
			if blocked || j < 0 || c.Ops[j].Kind != GateOp {
				continue
			}
			a, b := c.Ops[i], c.Ops[j]
			if !sameOperands(a, b) {
				continue
			}
			switch {
			case cancels(a.Gate, b.Gate):
				removed[i], removed[j] = true, true
				res.CancelledPairs++
				changed = true
			case mergeable(a.Gate, b.Gate):
				sum := a.Gate.Params[0] + b.Gate.Params[0]
				removed[i] = true
				changed = true
				if rotationIsIdentity(a.Gate.Kind, sum) {
					removed[j] = true
					res.RemovedIdentities++
					res.MergedRotations++
				} else {
					c.Ops[j].Gate = gate.New(a.Gate.Kind, sum)
					res.MergedRotations++
				}
			}
		}

		if !changed {
			return res
		}
		compact(c, removed)
	}
}

// nextTouching returns the index of the first later operation sharing a
// qubit with op i. blocked reports that the touching op overlaps only
// partially (or is a barrier/permutation), so no rewrite may jump it.
func nextTouching(c *Circuit, removed []bool, i int) (j int, blocked bool) {
	qs := opQubits(c, c.Ops[i])
	for j = i + 1; j < len(c.Ops); j++ {
		if removed[j] {
			continue
		}
		other := opQubits(c, c.Ops[j])
		if !overlap(qs, other) {
			continue
		}
		if c.Ops[j].Kind != GateOp {
			return j, true
		}
		return j, false
	}
	return -1, false
}

func opQubits(c *Circuit, op Op) map[int]bool {
	qs := make(map[int]bool)
	switch op.Kind {
	case GateOp:
		qs[op.Target] = true
		for _, ctl := range op.Controls {
			qs[ctl.Qubit] = true
		}
	case PermutationOp:
		for q := 0; q < op.PermWidth; q++ {
			qs[q] = true
		}
		for _, ctl := range op.Controls {
			qs[ctl.Qubit] = true
		}
	case BarrierOp:
		for q := 0; q < c.NQubits; q++ {
			qs[q] = true
		}
	}
	return qs
}

func overlap(a, b map[int]bool) bool {
	for q := range a {
		if b[q] {
			return true
		}
	}
	return false
}

// sameOperands reports whether two gate ops act on the identical target and
// control set (order-insensitive, polarity-sensitive).
func sameOperands(a, b Op) bool {
	if a.Target != b.Target || len(a.Controls) != len(b.Controls) {
		return false
	}
	for _, ca := range a.Controls {
		found := false
		for _, cb := range b.Controls {
			if ca == cb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// cancels reports whether g·h is exactly the identity.
func cancels(a, b gate.Gate) bool {
	switch a.Kind {
	case gate.X, gate.Y, gate.Z, gate.H:
		return b.Kind == a.Kind
	case gate.S:
		return b.Kind == gate.Sdg
	case gate.Sdg:
		return b.Kind == gate.S
	case gate.T:
		return b.Kind == gate.Tdg
	case gate.Tdg:
		return b.Kind == gate.T
	case gate.RX, gate.RY, gate.RZ, gate.Phase:
		return b.Kind == a.Kind && rotationIsIdentity(a.Kind, a.Params[0]+b.Params[0])
	default:
		return false
	}
}

func mergeable(a, b gate.Gate) bool {
	switch a.Kind {
	case gate.RX, gate.RY, gate.RZ, gate.Phase:
		return b.Kind == a.Kind
	default:
		return false
	}
}

// rotationIsIdentity reports whether the given angle makes the rotation
// family exactly the identity operator (not merely identity up to global
// phase, which matters for controlled gates).
func rotationIsIdentity(kind gate.Kind, theta float64) bool {
	period := 2 * math.Pi
	if kind == gate.RX || kind == gate.RY || kind == gate.RZ {
		period = 4 * math.Pi // R(2π) = −I, only 4π returns to +I
	}
	m := math.Mod(theta, period)
	if m < 0 {
		m += period
	}
	return m < angleEps || period-m < angleEps
}

func isIdentityGate(g gate.Gate) bool {
	switch g.Kind {
	case gate.I:
		return true
	case gate.RX, gate.RY, gate.RZ, gate.Phase:
		return rotationIsIdentity(g.Kind, g.Params[0])
	default:
		return false
	}
}

func compact(c *Circuit, removed []bool) {
	out := c.Ops[:0]
	for i, op := range c.Ops {
		if !removed[i] {
			out = append(out, op)
		}
	}
	c.Ops = out
}
