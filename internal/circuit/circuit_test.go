package circuit

import (
	"strings"
	"testing"

	"weaksim/internal/gate"
)

func TestBuilderAndValidate(t *testing.T) {
	c := New(3, "builder")
	c.H(0).X(1).Y(2).Z(0).S(1).T(2)
	c.RX(0.1, 0).RY(0.2, 1).RZ(0.3, 2).P(0.4, 0)
	c.CX(0, 1).CZ(1, 2).CP(0.5, 0, 2).CCX(0, 1, 2)
	c.MCX([]int{0, 1}, 2).MCZ([]int{0}, 1)
	c.Swap(0, 2)
	c.Barrier()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := c.NumOps(); got != 19 {
		t.Errorf("NumOps = %d, want 19 (swap counts as 3, barrier as 0)", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Circuit){
		func(c *Circuit) { c.H(3) },
		func(c *Circuit) { c.H(-1) },
		func(c *Circuit) { c.CX(3, 0) },
		func(c *Circuit) { c.CX(1, 1) },                                       // control == target
		func(c *Circuit) { c.Apply(gate.XGate, 0, gate.Pos(1), gate.Pos(1)) }, // dup control
		func(c *Circuit) { c.Permutation([]uint64{0, 1}, 1, "p", gate.Pos(0)) },
		func(c *Circuit) { c.Permutation([]uint64{0, 1, 2}, 2, "p") },
		func(c *Circuit) { c.Permutation([]uint64{0, 1}, 9, "p") },
		func(c *Circuit) { c.Permutation([]uint64{0, 7, 1, 2}, 2, "p") }, // entry out of range
		func(c *Circuit) { c.Permutation([]uint64{0, 0, 1, 2}, 2, "p") }, // not a bijection
	}
	for i, build := range cases {
		c := New(3, "bad")
		build(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid op", i)
		}
	}
}

func TestGateCounts(t *testing.T) {
	c := New(3, "counts")
	c.H(0).H(1).CX(0, 1).CCX(0, 1, 2)
	c.Permutation([]uint64{1, 0}, 1, "flip")
	counts := c.GateCounts()
	if counts["h"] != 2 || counts["cx"] != 1 || counts["ccx"] != 1 || counts["perm"] != 1 {
		t.Errorf("GateCounts = %v", counts)
	}
}

func TestOpString(t *testing.T) {
	c := New(3, "s")
	c.Apply(gate.XGate, 2, gate.Pos(0), gate.Neg(1))
	c.Permutation([]uint64{0, 1}, 1, "mul", gate.Pos(2))
	c.Barrier()
	if got := OpString(c.Ops[0]); got != "x c0 !c1 q2" {
		t.Errorf("OpString gate = %q", got)
	}
	if got := OpString(c.Ops[1]); got != "mul[q0..q0] c2" {
		t.Errorf("OpString perm = %q", got)
	}
	if got := OpString(c.Ops[2]); got != "barrier" {
		t.Errorf("OpString barrier = %q", got)
	}
	if s := c.String(); !strings.Contains(s, "circuit \"s\" on 3 qubits") {
		t.Errorf("String = %q", s)
	}
}

func TestRenderFigure1Style(t *testing.T) {
	// The paper's Fig. 1: H on q2, CNOT(q2→q1), X on q0, CNOT(q1→q0).
	c := New(3, "figure1")
	c.H(2).CX(2, 1).X(0).CX(1, 0)
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	// Most significant qubit on top.
	if !strings.HasPrefix(lines[0], "|q2 >") {
		t.Errorf("top line is %q, want q2 first", lines[0])
	}
	if !strings.Contains(lines[0], "[h]") {
		t.Errorf("q2 line missing H gate: %q", lines[0])
	}
	if !strings.Contains(lines[0], "*") || !strings.Contains(lines[1], "(+)") {
		t.Errorf("CNOT not rendered with control and target:\n%s", out)
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, "[M]==") {
			t.Errorf("wire missing measurement: %q", l)
		}
	}
	// Columns align.
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("wires have unequal lengths:\n%s", out)
	}
}

func TestRenderNegativeControlAndPermutation(t *testing.T) {
	c := New(3, "r")
	c.Apply(gate.XGate, 0, gate.Neg(2))
	c.Permutation([]uint64{0, 1, 2, 3}, 2, "mul", gate.Pos(2))
	out := c.Render()
	if !strings.Contains(out, "o") {
		t.Errorf("negative control not rendered:\n%s", out)
	}
	if !strings.Contains(out, "[mul]") {
		t.Errorf("permutation box not rendered:\n%s", out)
	}
}

func TestNewPanicsOnZeroQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, "empty")
}

func TestDepth(t *testing.T) {
	c := New(3, "depth")
	if c.Depth() != 0 {
		t.Errorf("empty circuit depth = %d", c.Depth())
	}
	c.H(0).H(1).H(2) // parallel layer
	if got := c.Depth(); got != 1 {
		t.Errorf("H layer depth = %d, want 1", got)
	}
	c.CX(0, 1) // touches two qubits at level 1 → level 2
	if got := c.Depth(); got != 2 {
		t.Errorf("after CX depth = %d, want 2", got)
	}
	c.T(2) // qubit 2 still at level 1 → level 2, depth unchanged
	if got := c.Depth(); got != 2 {
		t.Errorf("after parallel T depth = %d, want 2", got)
	}
	c.Barrier()
	c.X(0) // barrier synced everything to 2 → X at 3
	if got := c.Depth(); got != 3 {
		t.Errorf("after barrier+X depth = %d, want 3", got)
	}
}

func TestDepthPermutation(t *testing.T) {
	c := New(3, "permdepth")
	c.H(2)
	c.Permutation([]uint64{1, 0, 3, 2}, 2, "p", gate.Pos(2))
	// The permutation touches q0,q1 (level 0) and control q2 (level 1).
	if got := c.Depth(); got != 2 {
		t.Errorf("depth = %d, want 2", got)
	}
}

func TestDepthSequentialChain(t *testing.T) {
	c := New(1, "chain")
	for i := 0; i < 7; i++ {
		c.T(0)
	}
	if got := c.Depth(); got != 7 {
		t.Errorf("chain depth = %d, want 7", got)
	}
}
