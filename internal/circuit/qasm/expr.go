package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// evalExpr evaluates an OpenQASM parameter expression: floating literals,
// the constant pi, unary minus, + - * / ^, and parentheses.
func evalExpr(src string) (float64, error) {
	e := &exprParser{src: src}
	v, err := e.parseSum()
	if err != nil {
		return 0, err
	}
	e.skipSpace()
	if e.pos != len(e.src) {
		return 0, fmt.Errorf("trailing input at %q", e.src[e.pos:])
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
}

func (e *exprParser) skipSpace() {
	for e.pos < len(e.src) && (e.src[e.pos] == ' ' || e.src[e.pos] == '\t') {
		e.pos++
	}
}

func (e *exprParser) peek() byte {
	e.skipSpace()
	if e.pos >= len(e.src) {
		return 0
	}
	return e.src[e.pos]
}

func (e *exprParser) parseSum() (float64, error) {
	v, err := e.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		switch e.peek() {
		case '+':
			e.pos++
			w, err := e.parseProduct()
			if err != nil {
				return 0, err
			}
			v += w
		case '-':
			e.pos++
			w, err := e.parseProduct()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseProduct() (float64, error) {
	v, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch e.peek() {
		case '*':
			e.pos++
			w, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= w
		case '/':
			e.pos++
			w, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= w
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseUnary() (float64, error) {
	switch e.peek() {
	case '-':
		e.pos++
		v, err := e.parseUnary()
		return -v, err
	case '+':
		e.pos++
		return e.parseUnary()
	}
	return e.parsePower()
}

func (e *exprParser) parsePower() (float64, error) {
	v, err := e.parseAtom()
	if err != nil {
		return 0, err
	}
	if e.peek() == '^' {
		e.pos++
		w, err := e.parseUnary()
		if err != nil {
			return 0, err
		}
		return math.Pow(v, w), nil
	}
	return v, nil
}

func (e *exprParser) parseAtom() (float64, error) {
	c := e.peek()
	switch {
	case c == '(':
		e.pos++
		v, err := e.parseSum()
		if err != nil {
			return 0, err
		}
		if e.peek() != ')' {
			return 0, fmt.Errorf("missing closing parenthesis")
		}
		e.pos++
		return v, nil
	case c >= '0' && c <= '9' || c == '.':
		start := e.pos
		for e.pos < len(e.src) {
			c := e.src[e.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				e.pos++
				continue
			}
			// Exponent sign.
			if (c == '+' || c == '-') && e.pos > start &&
				(e.src[e.pos-1] == 'e' || e.src[e.pos-1] == 'E') {
				e.pos++
				continue
			}
			break
		}
		return strconv.ParseFloat(e.src[start:e.pos], 64)
	case c == 'p' || c == 'P':
		if strings.HasPrefix(strings.ToLower(e.src[e.pos:]), "pi") {
			e.pos += 2
			return math.Pi, nil
		}
		return 0, fmt.Errorf("unknown identifier at %q", e.src[e.pos:])
	case c == 0:
		return 0, fmt.Errorf("unexpected end of expression")
	default:
		return 0, fmt.Errorf("unexpected character %q", string(c))
	}
}
