package qasm

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current parser output")

// TestGoldenCorpus parses every testdata/golden/*.qasm fixture and compares
// the rendered circuit against its committed .golden twin. Run
//
//	go test ./internal/circuit/qasm -run TestGoldenCorpus -update
//
// to regenerate the goldens after an intentional parser or renderer change;
// the diff in review then shows exactly what changed semantically.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden fixtures found")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".qasm")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			circ, err := Parse(string(src), name)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := circ.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			got := renderHeader(circ.NQubits, len(circ.Ops)) + circ.Render()
			goldenPath := strings.TrimSuffix(file, ".qasm") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendered circuit diverges from %s (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// renderHeader prefixes the golden with the parsed circuit's shape, so a
// change in width or op count is visible even when the drawing is subtle.
func renderHeader(qubits, ops int) string {
	return fmt.Sprintf("qubits: %d\nops: %d\n", qubits, ops)
}

// TestGoldenRoundTrip writes each parsed golden circuit back to QASM and
// re-parses it: the second parse must reproduce the first rendering, pinning
// Parse and Write as inverses over the whole corpus.
func TestGoldenRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.qasm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".qasm")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			first, err := Parse(string(src), name)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			out, err := Write(first)
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			second, err := Parse(out, name)
			if err != nil {
				t.Fatalf("re-parse of written QASM: %v\n%s", err, out)
			}
			if a, b := first.Render(), second.Render(); a != b {
				t.Errorf("round trip changed the circuit\n--- first ---\n%s--- second ---\n%s", a, b)
			}
		})
	}
}

// TestErrorFixtures feeds each testdata/err_*.qasm fixture to the parser and
// requires a failure whose message contains the fixture's `// want:` header.
func TestErrorFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "err_*.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no error fixtures found")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".qasm")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			first, _, _ := strings.Cut(string(src), "\n")
			want := strings.TrimSpace(strings.TrimPrefix(first, "// want:"))
			if want == "" || want == first {
				t.Fatalf("fixture %s must start with a `// want: <substring>` line", file)
			}
			_, perr := Parse(string(src), name)
			if perr == nil {
				t.Fatalf("fixture parsed successfully; want error containing %q", want)
			}
			if !strings.Contains(perr.Error(), want) {
				t.Errorf("error %q does not contain %q", perr.Error(), want)
			}
		})
	}
}
