// Package qasm reads and writes a practical subset of OpenQASM 2.0, the
// interchange format used by most quantum toolchains. It covers the gate
// set produced by this repository's generators (including controlled
// rotations) plus the common qelib1 one- and two-qubit gates; classical
// registers and measurements are parsed and ignored (measurement of the
// full register is implicit in weak simulation).
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
)

// Parse converts OpenQASM 2.0 source into a circuit. All quantum registers
// are concatenated in declaration order; qubit q of register r maps to
// offset(r)+q.
func Parse(src, name string) (*circuit.Circuit, error) {
	p := &parser{name: name, regs: map[string]qreg{}}
	if err := p.run(src); err != nil {
		return nil, err
	}
	if p.circ == nil {
		return nil, fmt.Errorf("qasm: no quantum registers declared")
	}
	return p.circ, nil
}

type qreg struct {
	offset, size int
}

type parser struct {
	name   string
	regs   map[string]qreg
	width  int
	circ   *circuit.Circuit
	sawHdr bool
	line   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("qasm:%d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	// Strip comments, then split on ';'. OpenQASM 2.0 statements are
	// semicolon-terminated, so this is a faithful statement splitter.
	var clean strings.Builder
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		_ = ln
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	stmts := strings.Split(clean.String(), ";")
	p.line = 0
	for _, stmt := range stmts {
		p.line += strings.Count(stmt, "\n")
		s := strings.TrimSpace(strings.ReplaceAll(stmt, "\n", " "))
		if s == "" {
			continue
		}
		if err := p.statement(s); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) statement(s string) error {
	switch {
	case strings.HasPrefix(s, "OPENQASM"):
		ver := strings.TrimSpace(strings.TrimPrefix(s, "OPENQASM"))
		if ver != "2.0" {
			return p.errf("unsupported OPENQASM version %q", ver)
		}
		p.sawHdr = true
		return nil
	case strings.HasPrefix(s, "include"):
		// The qelib1 gate set is built in, so includes are not read — but
		// the statement must still be well-formed: a quoted file name.
		arg := strings.TrimSpace(strings.TrimPrefix(s, "include"))
		if len(arg) < 2 || arg[0] != '"' || arg[len(arg)-1] != '"' {
			return p.errf(`malformed include %q: want include "file"`, arg)
		}
		return nil
	case strings.HasPrefix(s, "qreg "):
		return p.declare(strings.TrimPrefix(s, "qreg "))
	case strings.HasPrefix(s, "creg "):
		return nil // classical registers are irrelevant to weak simulation
	case strings.HasPrefix(s, "measure ") || strings.HasPrefix(s, "measure\t"):
		return nil // measurement of all qubits is implicit
	case strings.HasPrefix(s, "barrier"):
		if p.circ != nil {
			p.circ.Barrier()
		}
		return nil
	default:
		return p.gateStatement(s)
	}
}

func (p *parser) declare(decl string) error {
	name, size, err := parseRegRef(decl)
	if err != nil {
		return p.errf("bad qreg declaration %q: %v", decl, err)
	}
	if size < 1 {
		return p.errf("qreg %s has non-positive size %d", name, size)
	}
	if _, dup := p.regs[name]; dup {
		return p.errf("duplicate register %q", name)
	}
	if p.circ != nil {
		return p.errf("all qreg declarations must precede gates")
	}
	p.regs[name] = qreg{offset: p.width, size: size}
	p.width += size
	return nil
}

// ensureCirc lazily creates the circuit once the first gate appears, fixing
// the total width.
func (p *parser) ensureCirc() {
	if p.circ == nil && p.width > 0 {
		p.circ = circuit.New(p.width, p.name)
	}
}

// gateTable maps parameterless qelib1 mnemonics to gates.
var gateTable = map[string]gate.Gate{
	"id": gate.IDGate, "x": gate.XGate, "y": gate.YGate, "z": gate.ZGate,
	"h": gate.HGate, "s": gate.SGate, "sdg": gate.SdgGate,
	"t": gate.TGate, "tdg": gate.TdgGate, "sx": gate.SXGate, "sy": gate.SYGate,
}

func (p *parser) gateStatement(s string) error {
	p.ensureCirc()
	if p.circ == nil {
		return p.errf("gate before any qreg declaration: %q", s)
	}
	mnemonic, params, operands, err := splitGate(s)
	if err != nil {
		return p.errf("%v", err)
	}
	qubits := make([]int, len(operands))
	seen := make(map[int]bool, len(operands))
	for i, op := range operands {
		q, err := p.resolve(op)
		if err != nil {
			return p.errf("%v", err)
		}
		if seen[q] {
			return p.errf("qubit %s used twice in %q", op, s)
		}
		seen[q] = true
		qubits[i] = q
	}
	angles := make([]float64, len(params))
	for i, expr := range params {
		v, err := evalExpr(expr)
		if err != nil {
			return p.errf("bad parameter %q: %v", expr, err)
		}
		angles[i] = v
	}
	return p.applyGate(mnemonic, angles, qubits)
}

func (p *parser) applyGate(mnemonic string, angles []float64, q []int) error {
	need := func(nq, na int) error {
		if len(q) != nq || len(angles) != na {
			return p.errf("%s expects %d qubits and %d parameters, got %d and %d",
				mnemonic, nq, na, len(q), len(angles))
		}
		return nil
	}
	if g, ok := gateTable[mnemonic]; ok {
		if err := need(1, 0); err != nil {
			return err
		}
		p.circ.Apply(g, q[0])
		return nil
	}
	switch mnemonic {
	case "rx", "ry", "rz", "p", "u1":
		if err := need(1, 1); err != nil {
			return err
		}
		switch mnemonic {
		case "rx":
			p.circ.RX(angles[0], q[0])
		case "ry":
			p.circ.RY(angles[0], q[0])
		case "rz":
			p.circ.RZ(angles[0], q[0])
		default:
			p.circ.P(angles[0], q[0])
		}
	case "u", "u3":
		if err := need(1, 3); err != nil {
			return err
		}
		p.circ.Apply(gate.UGate(angles[0], angles[1], angles[2]), q[0])
	case "u2":
		if err := need(1, 2); err != nil {
			return err
		}
		p.circ.Apply(gate.UGate(math.Pi/2, angles[0], angles[1]), q[0])
	case "cx", "CX":
		if err := need(2, 0); err != nil {
			return err
		}
		p.circ.CX(q[0], q[1])
	case "cz":
		if err := need(2, 0); err != nil {
			return err
		}
		p.circ.CZ(q[0], q[1])
	case "cy":
		if err := need(2, 0); err != nil {
			return err
		}
		p.circ.Apply(gate.YGate, q[1], gate.Pos(q[0]))
	case "ch":
		if err := need(2, 0); err != nil {
			return err
		}
		p.circ.Apply(gate.HGate, q[1], gate.Pos(q[0]))
	case "cp", "cu1":
		if err := need(2, 1); err != nil {
			return err
		}
		p.circ.CP(angles[0], q[0], q[1])
	case "crx":
		if err := need(2, 1); err != nil {
			return err
		}
		p.circ.Apply(gate.RXGate(angles[0]), q[1], gate.Pos(q[0]))
	case "cry":
		if err := need(2, 1); err != nil {
			return err
		}
		p.circ.Apply(gate.RYGate(angles[0]), q[1], gate.Pos(q[0]))
	case "crz":
		if err := need(2, 1); err != nil {
			return err
		}
		p.circ.Apply(gate.RZGate(angles[0]), q[1], gate.Pos(q[0]))
	case "swap":
		if err := need(2, 0); err != nil {
			return err
		}
		p.circ.Swap(q[0], q[1])
	case "ccx":
		if err := need(3, 0); err != nil {
			return err
		}
		p.circ.CCX(q[0], q[1], q[2])
	case "ccz":
		if err := need(3, 0); err != nil {
			return err
		}
		p.circ.Apply(gate.ZGate, q[2], gate.Pos(q[0]), gate.Pos(q[1]))
	case "cswap":
		if err := need(3, 0); err != nil {
			return err
		}
		// Controlled swap via three Toffolis.
		p.circ.CCX(q[0], q[1], q[2])
		p.circ.CCX(q[0], q[2], q[1])
		p.circ.CCX(q[0], q[1], q[2])
	default:
		return p.errf("unsupported gate %q", mnemonic)
	}
	return nil
}

// resolve maps "reg[i]" to an absolute qubit index.
func (p *parser) resolve(ref string) (int, error) {
	name, idx, err := parseRegRef(ref)
	if err != nil {
		return 0, fmt.Errorf("bad qubit reference %q: %v", ref, err)
	}
	reg, ok := p.regs[name]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", name)
	}
	if idx < 0 || idx >= reg.size {
		return 0, fmt.Errorf("index %d out of range for register %s[%d]", idx, name, reg.size)
	}
	return reg.offset + idx, nil
}

// parseRegRef splits "name[k]" into its parts.
func parseRegRef(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	if open < 1 || !strings.HasSuffix(s, "]") {
		return "", 0, fmt.Errorf("want name[index]")
	}
	idx, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil {
		return "", 0, err
	}
	return strings.TrimSpace(s[:open]), idx, nil
}

// splitGate splits "name(p1,p2) a[0],b[1]" into mnemonic, parameter
// expressions, and operand references.
func splitGate(s string) (mnemonic string, params, operands []string, err error) {
	s = strings.TrimSpace(s)
	head := s
	rest := ""
	if open := strings.IndexByte(s, '('); open >= 0 {
		depth := 0
		closeAt := -1
		for i := open; i < len(s); i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					closeAt = i
				}
			}
			if closeAt >= 0 {
				break
			}
		}
		if closeAt < 0 {
			return "", nil, nil, fmt.Errorf("unbalanced parentheses in %q", s)
		}
		head = strings.TrimSpace(s[:open])
		for _, part := range splitTop(s[open+1:closeAt], ',') {
			params = append(params, strings.TrimSpace(part))
		}
		rest = s[closeAt+1:]
	} else {
		fields := strings.SplitN(s, " ", 2)
		head = fields[0]
		if len(fields) == 2 {
			rest = fields[1]
		}
	}
	mnemonic = head
	for _, op := range strings.Split(rest, ",") {
		op = strings.TrimSpace(op)
		if op != "" {
			operands = append(operands, op)
		}
	}
	if mnemonic == "" || len(operands) == 0 {
		return "", nil, nil, fmt.Errorf("malformed gate statement %q", s)
	}
	return mnemonic, params, operands, nil
}

// splitTop splits on sep at parenthesis depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
