package qasm

import (
	"fmt"
	"strings"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
)

// Write renders a circuit as OpenQASM 2.0 with a single register q[n].
// Operations without a QASM 2.0 counterpart — permutations and gates with
// more than two controls or with negative controls — yield an error; such
// circuits (Shor's modular arithmetic, Grover's wide oracles) are native to
// this simulator's IR and cannot round-trip through QASM 2.0.
func Write(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", c.Name)
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\ncreg c[%d];\n", c.NQubits, c.NQubits)
	for i, op := range c.Ops {
		switch op.Kind {
		case circuit.BarrierOp:
			b.WriteString("barrier q;\n")
		case circuit.PermutationOp:
			return "", fmt.Errorf("qasm: op %d (%s) has no OpenQASM 2.0 form", i, circuit.OpString(op))
		case circuit.GateOp:
			line, err := writeGate(op)
			if err != nil {
				return "", fmt.Errorf("qasm: op %d: %v", i, err)
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	for q := 0; q < c.NQubits; q++ {
		fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", q, q)
	}
	return b.String(), nil
}

func writeGate(op circuit.Op) (string, error) {
	for _, ctl := range op.Controls {
		if ctl.Negative {
			return "", fmt.Errorf("negative control on %s", circuit.OpString(op))
		}
	}
	params := func() string {
		n := op.Gate.NumParams()
		if n == 0 {
			return ""
		}
		parts := make([]string, n)
		for i := 0; i < n; i++ {
			parts[i] = fmt.Sprintf("%.17g", op.Gate.Params[i])
		}
		return "(" + strings.Join(parts, ",") + ")"
	}
	operand := func(qs ...int) string {
		parts := make([]string, len(qs))
		for i, q := range qs {
			parts[i] = fmt.Sprintf("q[%d]", q)
		}
		return strings.Join(parts, ",")
	}

	switch len(op.Controls) {
	case 0:
		return fmt.Sprintf("%s%s %s;", op.Gate.Name(), params(), operand(op.Target)), nil
	case 1:
		ctl := op.Controls[0].Qubit
		switch op.Gate.Kind {
		case gate.X:
			return fmt.Sprintf("cx %s;", operand(ctl, op.Target)), nil
		case gate.Y:
			return fmt.Sprintf("cy %s;", operand(ctl, op.Target)), nil
		case gate.Z:
			return fmt.Sprintf("cz %s;", operand(ctl, op.Target)), nil
		case gate.H:
			return fmt.Sprintf("ch %s;", operand(ctl, op.Target)), nil
		case gate.Phase:
			return fmt.Sprintf("cp%s %s;", params(), operand(ctl, op.Target)), nil
		case gate.RX:
			return fmt.Sprintf("crx%s %s;", params(), operand(ctl, op.Target)), nil
		case gate.RY:
			return fmt.Sprintf("cry%s %s;", params(), operand(ctl, op.Target)), nil
		case gate.RZ:
			return fmt.Sprintf("crz%s %s;", params(), operand(ctl, op.Target)), nil
		default:
			return "", fmt.Errorf("no QASM form for controlled %s", op.Gate.Name())
		}
	case 2:
		c1, c2 := op.Controls[0].Qubit, op.Controls[1].Qubit
		switch op.Gate.Kind {
		case gate.X:
			return fmt.Sprintf("ccx %s;", operand(c1, c2, op.Target)), nil
		case gate.Z:
			return fmt.Sprintf("ccz %s;", operand(c1, c2, op.Target)), nil
		default:
			return "", fmt.Errorf("no QASM form for doubly-controlled %s", op.Gate.Name())
		}
	default:
		return "", fmt.Errorf("gate with %d controls has no QASM 2.0 form", len(op.Controls))
	}
}
