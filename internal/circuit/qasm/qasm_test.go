package qasm

import (
	"math"
	"strings"
	"testing"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/sim"
)

func TestEvalExpr(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"0", 0},
		{"1.5", 1.5},
		{"pi", math.Pi},
		{"pi/2", math.Pi / 2},
		{"-pi/4", -math.Pi / 4},
		{"2*pi", 2 * math.Pi},
		{"pi/2^3", math.Pi / 8},
		{"(1+2)*3", 9},
		{"1e-3", 1e-3},
		{"1.5e2", 150},
		{"--2", 2},
		{"3 - 1 - 1", 1},
		{"8/2/2", 2},
	}
	for _, tc := range cases {
		got, err := evalExpr(tc.src)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", tc.src, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("evalExpr(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
	for _, bad := range []string{"", "1+", "(1", "pj", "1/0", "1 2"} {
		if _, err := evalExpr(bad); err == nil {
			t.Errorf("evalExpr(%q) should fail", bad)
		}
	}
}

const bellSrc = `
OPENQASM 2.0;
include "qelib1.inc";
// a Bell pair
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseBell(t *testing.T) {
	c, err := Parse(bellSrc, "bell")
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 2 {
		t.Fatalf("NQubits = %d", c.NQubits)
	}
	if got := c.NumOps(); got != 2 {
		t.Fatalf("NumOps = %d, want 2 (measure ignored)", got)
	}
	s, _ := sim.NewVector(c, 0)
	st, _ := s.Run()
	probs := st.Probabilities()
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[3]-0.5) > 1e-12 {
		t.Errorf("bell probabilities = %v", probs)
	}
}

func TestParseMultiRegister(t *testing.T) {
	src := `OPENQASM 2.0;
qreg a[2];
qreg b[1];
x a[1];
cx a[1],b[0];
`
	c, err := Parse(src, "multi")
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 3 {
		t.Fatalf("NQubits = %d", c.NQubits)
	}
	s, _ := sim.NewVector(c, 0)
	st, _ := s.Run()
	// a[1] is qubit 1, b[0] is qubit 2 → state |110⟩ = index 6.
	if p := st.Probabilities()[6]; math.Abs(p-1) > 1e-12 {
		t.Errorf("expected deterministic |110⟩, got p=%v", p)
	}
}

func TestParseParameterizedGates(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
rx(pi/2) q[0];
u3(pi/2,0,pi) q[1];
cp(pi/4) q[0],q[1];
crz(-pi/2) q[1],q[0];
u2(0,pi) q[0];
swap q[0],q[1];
`
	c, err := Parse(src, "params")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewVector(c, 0); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"OPENQASM 3.0;\nqreg q[1];",       // wrong version
		"qreg q[0];",                      // empty register
		"qreg q[1];\nqreg q[2];",          // duplicate
		"h q[0];",                         // gate before qreg
		"qreg q[1];\nh q[5];",             // out of range
		"qreg q[1];\nfrobnicate q[0];",    // unknown gate
		"qreg q[1];\nh r[0];",             // unknown register
		"qreg q[2];\ncx q[0];",            // wrong arity
		"qreg q[1];\nrx(oops) q[0];",      // bad parameter
		"qreg q[1];\nh q[0];\nqreg r[1];", // late declaration
		"qreg q[1];\nrx(pi q[0];",         // unbalanced parens
	}
	for _, src := range cases {
		if _, err := Parse(src, "bad"); err == nil {
			t.Errorf("Parse succeeded on invalid source:\n%s", src)
		}
	}
}

func TestWriteParseRoundtrip(t *testing.T) {
	// qft and supremacy circuits round-trip through QASM with identical
	// semantics.
	for _, name := range []string{"qft_4", "supremacy_2x3_8", "running_example_noperm"} {
		var c *circuit.Circuit
		var err error
		if name == "running_example_noperm" {
			c = algo.RunningExample()
		} else {
			c, err = algo.Generate(name)
			if err != nil {
				t.Fatal(err)
			}
		}
		src, err := Write(c)
		if err != nil {
			t.Fatalf("Write(%s): %v", name, err)
		}
		back, err := Parse(src, c.Name)
		if err != nil {
			t.Fatalf("Parse(Write(%s)): %v\n%s", name, err, src)
		}
		s1, _ := sim.NewVector(c, 0)
		st1, _ := s1.Run()
		s2, _ := sim.NewVector(back, 0)
		st2, _ := s2.Run()
		dev, err := st1.MaxDeviationFrom(st2)
		if err != nil {
			t.Fatal(err)
		}
		if dev > 1e-9 {
			t.Errorf("%s: roundtrip deviates by %v", name, dev)
		}
	}
}

func TestWriteRejectsPermutations(t *testing.T) {
	c, err := algo.Shor(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Write(c); err == nil {
		t.Error("expected error writing modular-exponentiation permutations")
	}
}

func TestWriteRejectsWideControls(t *testing.T) {
	c, _ := algo.Grover(5, 1)
	if _, err := Write(c); err == nil {
		t.Error("expected error for 5-control oracle in QASM 2.0")
	}
}

func TestWriteContainsMeasurements(t *testing.T) {
	c := circuit.New(2, "m")
	c.H(0)
	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "measure q[1] -> c[1];") {
		t.Errorf("missing measurement:\n%s", src)
	}
	if !strings.Contains(src, "OPENQASM 2.0;") {
		t.Error("missing header")
	}
}

func TestParseFullGateSet(t *testing.T) {
	// Exercise every supported mnemonic once; semantics are validated by
	// simulating without error and checking the op count.
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
id q[0]; x q[0]; y q[1]; z q[2]; h q[0]; s q[1]; sdg q[1];
t q[2]; tdg q[2]; sx q[0]; sy q[1];
rx(0.1) q[0]; ry(0.2) q[1]; rz(0.3) q[2]; p(0.4) q[0]; u1(0.5) q[1];
u2(0.1,0.2) q[2]; u3(0.1,0.2,0.3) q[0]; u(0.1,0.2,0.3) q[1];
CX q[0],q[1]; cx q[1],q[2]; cy q[0],q[2]; cz q[0],q[1]; ch q[1],q[0];
cp(0.6) q[0],q[2]; cu1(0.7) q[1],q[2];
crx(0.8) q[0],q[1]; cry(0.9) q[1],q[2]; crz(1.0) q[2],q[0];
swap q[0],q[2];
ccx q[0],q[1],q[2]; ccz q[0],q[1],q[2]; cswap q[0],q[1],q[2];
barrier q;
`
	c, err := Parse(src, "full")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewVector(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n2 := st.Norm2(); math.Abs(n2-1) > 1e-9 {
		t.Errorf("norm after full gate set = %v", n2)
	}
}

func TestParseArityErrors(t *testing.T) {
	cases := []string{
		"qreg q[3];\nswap q[0];",
		"qreg q[3];\nccx q[0],q[1];",
		"qreg q[3];\nrx(1,2) q[0];",
		"qreg q[3];\nu3(1) q[0];",
		"qreg q[3];\ncp(1) q[0];",
		"qreg q[3];\nh q[0],q[1];",
	}
	for _, src := range cases {
		if _, err := Parse(src, "bad"); err == nil {
			t.Errorf("accepted wrong arity: %q", src)
		}
	}
}

func TestCSwapSemantics(t *testing.T) {
	// cswap with control set swaps the two targets.
	src := `OPENQASM 2.0;
qreg q[3];
x q[2];
x q[0];
cswap q[2],q[0],q[1];
`
	c, err := Parse(src, "cswap")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.NewVector(c, 0)
	st, _ := s.Run()
	// q2=1 control, q0=1 swapped into q1: expect |110⟩ = index 6.
	if p := st.Probabilities()[6]; math.Abs(p-1) > 1e-9 {
		t.Errorf("cswap result wrong: p(110)=%v", p)
	}
}
