// want: unsupported OPENQASM version
OPENQASM 3.0;
qreg q[1];
h q[0];
