// want: unknown register
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h r[0];
