// Parameterized single-qubit rotations plus their controlled forms,
// exercising the expression evaluator (pi arithmetic, negatives, nesting).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
rx(pi/3) q[0];
ry(-pi/7) q[1];
rz(0.5) q[2];
p(2*pi/5) q[0];
u2(0,pi) q[1];
u3(pi/2,-pi/4,pi/4) q[2];
crz(pi/16) q[0],q[1];
cp(-pi/8) q[1],q[2];
sdg q[0];
tdg q[1];
sx q[2];
