// Multi-controlled gates: Toffoli, doubly-controlled Z, and the
// controlled-swap expansion (three Toffolis).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
x q[0];
h q[1];
ccx q[0],q[1],q[2];
ccz q[0],q[1],q[2];
cswap q[0],q[1],q[2];
cy q[0],q[1];
ch q[1],q[2];
