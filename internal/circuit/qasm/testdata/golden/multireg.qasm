// Two quantum registers concatenated in declaration order; a[1] is qubit 1,
// b[0] is qubit 2. Barriers are kept as rendering hints.
OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[2];
creg m[4];
h a[0];
cx a[0],a[1];
barrier a;
cx a[1],b[0];
ccx a[0],b[0],b[1];
measure a -> m;
