// want: malformed include
OPENQASM 2.0;
include qelib1.inc;
qreg q[1];
h q[0];
