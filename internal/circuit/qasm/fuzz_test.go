package qasm

import (
	"strings"
	"testing"
)

// FuzzParse drives arbitrary byte soup through the QASM parser: it must
// never panic, and anything it accepts must be a valid circuit.
func FuzzParse(f *testing.F) {
	f.Add(bellSrc)
	f.Add("OPENQASM 2.0;\nqreg q[3];\nrx(pi/2) q[0];\ncx q[0],q[2];\n")
	f.Add("qreg a[2]; qreg b[2]; ccx a[0],a[1],b[0];")
	f.Add("OPENQASM 2.0; include \"qelib1.inc\"; qreg q[1]; u3(1,2,3) q[0]; barrier q;")
	f.Add("// nothing but comments\n")
	f.Add("qreg q[1];\nrx(((1+2)*pi)/4) q[0];")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src, "fuzz")
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v\ninput: %q", err, src)
		}
	})
}

// FuzzEvalExpr checks the parameter-expression evaluator never panics and
// rejects garbage rather than mis-evaluating it.
func FuzzEvalExpr(f *testing.F) {
	for _, seed := range []string{"pi", "-pi/2", "1e9", "2^10", "((((1))))", "1+2*3-4/5"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 256 {
			return // deep recursion on parentheses is not interesting here
		}
		v, err := evalExpr(src)
		if err != nil {
			return
		}
		_ = v
		// Idempotence sanity: re-parsing the same expression yields the
		// same value.
		v2, err2 := evalExpr(src)
		if err2 != nil || v2 != v {
			if v != v2 && !(v != v || v2 != v2) { // tolerate NaN
				t.Fatalf("non-deterministic evaluation of %q: %v vs %v (%v)", src, v, v2, err2)
			}
		}
	})
}

// FuzzWriteParse: any circuit the writer can express must round-trip
// through the parser.
func FuzzWriteParse(f *testing.F) {
	f.Add(uint8(3), uint16(12))
	f.Fuzz(func(t *testing.T, nRaw uint8, opsRaw uint16) {
		n := 1 + int(nRaw%4)
		src := buildWritableCircuit(n, int(opsRaw%24))
		c, err := Parse(src, "generated")
		if err != nil {
			t.Fatalf("generated source rejected: %v\n%s", err, src)
		}
		out, err := Write(c)
		if err != nil {
			t.Fatalf("writer rejected parsed circuit: %v", err)
		}
		if _, err := Parse(out, "roundtrip"); err != nil {
			t.Fatalf("round-trip output rejected: %v\n%s", err, out)
		}
	})
}

// buildWritableCircuit emits simple QASM using only writer-supported gates.
func buildWritableCircuit(n, ops int) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\nqreg q[")
	b.WriteString(strings.Repeat("I", 0)) // no-op; keep builder simple
	b.WriteString(itoa(n))
	b.WriteString("];\n")
	gates := []string{"h", "x", "t", "s"}
	for i := 0; i < ops; i++ {
		g := gates[i%len(gates)]
		q := i % n
		b.WriteString(g)
		b.WriteString(" q[")
		b.WriteString(itoa(q))
		b.WriteString("];\n")
		if n > 1 && i%3 == 0 {
			b.WriteString("cx q[")
			b.WriteString(itoa(q))
			b.WriteString("],q[")
			b.WriteString(itoa((q + 1) % n))
			b.WriteString("];\n")
		}
	}
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for ; v > 0; v /= 10 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
	}
	return string(digits)
}
