// Package circuit provides the intermediate representation for quantum
// circuits: an ordered list of operations over a fixed qubit register.
// Operations are either controlled single-qubit gates or classical
// reversible permutations of a low-qubit sub-register (used by Shor's
// modular exponentiation). Measurement of the full register at the end of
// the circuit is implicit — weak simulation *is* the measurement.
package circuit

import (
	"fmt"
	"strings"

	"weaksim/internal/gate"
)

// OpKind distinguishes the operation flavors.
type OpKind int

const (
	// GateOp is a (multi-)controlled single-qubit gate.
	GateOp OpKind = iota
	// PermutationOp is a classical reversible map on the lowest PermWidth
	// qubits, optionally controlled by higher qubits.
	PermutationOp
	// BarrierOp is a no-op marker useful for structuring and rendering.
	BarrierOp
)

// Op is one circuit operation.
type Op struct {
	Kind     OpKind
	Gate     gate.Gate      // GateOp only
	Target   int            // GateOp only
	Controls []gate.Control // GateOp and PermutationOp

	Perm      []uint64 // PermutationOp only: |j⟩ -> |Perm[j]⟩ on the low register
	PermWidth int      // PermutationOp only
	Label     string   // optional diagnostic label
}

// Circuit is an ordered list of operations on NQubits qubits. Qubit 0 is
// the least significant bit of a measured bitstring.
type Circuit struct {
	NQubits int
	Name    string
	Ops     []Op
}

// New returns an empty circuit on n qubits.
func New(n int, name string) *Circuit {
	if n < 1 {
		panic("circuit: need at least one qubit")
	}
	return &Circuit{NQubits: n, Name: name}
}

// Validate checks all operation indices against the register size.
func (c *Circuit) Validate() error {
	for i, op := range c.Ops {
		switch op.Kind {
		case GateOp:
			if op.Target < 0 || op.Target >= c.NQubits {
				return fmt.Errorf("circuit %q op %d: target %d out of range", c.Name, i, op.Target)
			}
			seen := map[int]bool{op.Target: true}
			for _, ctl := range op.Controls {
				if ctl.Qubit < 0 || ctl.Qubit >= c.NQubits {
					return fmt.Errorf("circuit %q op %d: control %d out of range", c.Name, i, ctl.Qubit)
				}
				if seen[ctl.Qubit] {
					return fmt.Errorf("circuit %q op %d: qubit %d used twice", c.Name, i, ctl.Qubit)
				}
				seen[ctl.Qubit] = true
			}
		case PermutationOp:
			if op.PermWidth < 1 || op.PermWidth > c.NQubits {
				return fmt.Errorf("circuit %q op %d: permutation width %d out of range", c.Name, i, op.PermWidth)
			}
			if len(op.Perm) != 1<<uint(op.PermWidth) {
				return fmt.Errorf("circuit %q op %d: permutation has %d entries, want %d", c.Name, i, len(op.Perm), 1<<uint(op.PermWidth))
			}
			// Reject non-bijective tables up front so both backends fail
			// identically (the dense backend would otherwise lose norm, the
			// DD backend would build a non-unitary operator).
			seen := make([]bool, len(op.Perm))
			for j, p := range op.Perm {
				if p >= uint64(len(op.Perm)) {
					return fmt.Errorf("circuit %q op %d: permutation entry perm[%d]=%d out of range", c.Name, i, j, p)
				}
				if seen[p] {
					return fmt.Errorf("circuit %q op %d: permutation maps two inputs to %d (not a bijection)", c.Name, i, p)
				}
				seen[p] = true
			}
			for _, ctl := range op.Controls {
				if ctl.Qubit < op.PermWidth || ctl.Qubit >= c.NQubits {
					return fmt.Errorf("circuit %q op %d: permutation control %d out of range", c.Name, i, ctl.Qubit)
				}
			}
		case BarrierOp:
			// nothing to check
		default:
			return fmt.Errorf("circuit %q op %d: unknown op kind %d", c.Name, i, int(op.Kind))
		}
	}
	return nil
}

// Apply appends a controlled single-qubit gate.
func (c *Circuit) Apply(g gate.Gate, target int, controls ...gate.Control) *Circuit {
	c.Ops = append(c.Ops, Op{Kind: GateOp, Gate: g, Target: target, Controls: controls})
	return c
}

// Permutation appends a classical reversible operation on the lowest width
// qubits.
func (c *Circuit) Permutation(perm []uint64, width int, label string, controls ...gate.Control) *Circuit {
	c.Ops = append(c.Ops, Op{
		Kind: PermutationOp, Perm: perm, PermWidth: width,
		Label: label, Controls: controls,
	})
	return c
}

// Barrier appends a structural marker.
func (c *Circuit) Barrier() *Circuit {
	c.Ops = append(c.Ops, Op{Kind: BarrierOp})
	return c
}

// Gate shorthands. Each returns the circuit for chaining.

// H applies a Hadamard gate to qubit q.
func (c *Circuit) H(q int) *Circuit { return c.Apply(gate.HGate, q) }

// X applies a NOT gate to qubit q.
func (c *Circuit) X(q int) *Circuit { return c.Apply(gate.XGate, q) }

// Y applies a Pauli-Y gate to qubit q.
func (c *Circuit) Y(q int) *Circuit { return c.Apply(gate.YGate, q) }

// Z applies a Pauli-Z gate to qubit q.
func (c *Circuit) Z(q int) *Circuit { return c.Apply(gate.ZGate, q) }

// S applies the phase gate to qubit q.
func (c *Circuit) S(q int) *Circuit { return c.Apply(gate.SGate, q) }

// T applies the T gate to qubit q.
func (c *Circuit) T(q int) *Circuit { return c.Apply(gate.TGate, q) }

// RX applies an X rotation by theta to qubit q.
func (c *Circuit) RX(theta float64, q int) *Circuit { return c.Apply(gate.RXGate(theta), q) }

// RY applies a Y rotation by theta to qubit q.
func (c *Circuit) RY(theta float64, q int) *Circuit { return c.Apply(gate.RYGate(theta), q) }

// RZ applies a Z rotation by theta to qubit q.
func (c *Circuit) RZ(theta float64, q int) *Circuit { return c.Apply(gate.RZGate(theta), q) }

// P applies a phase rotation diag(1, e^{iθ}) to qubit q.
func (c *Circuit) P(theta float64, q int) *Circuit { return c.Apply(gate.PhaseGate(theta), q) }

// CX applies a CNOT with control ctl and target tgt.
func (c *Circuit) CX(ctl, tgt int) *Circuit { return c.Apply(gate.XGate, tgt, gate.Pos(ctl)) }

// CZ applies a controlled-Z between the two qubits.
func (c *Circuit) CZ(a, b int) *Circuit { return c.Apply(gate.ZGate, b, gate.Pos(a)) }

// CP applies a controlled phase rotation.
func (c *Circuit) CP(theta float64, ctl, tgt int) *Circuit {
	return c.Apply(gate.PhaseGate(theta), tgt, gate.Pos(ctl))
}

// CCX applies a Toffoli gate.
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit {
	return c.Apply(gate.XGate, tgt, gate.Pos(c1), gate.Pos(c2))
}

// MCX applies a NOT on tgt controlled on all ctls being |1⟩.
func (c *Circuit) MCX(ctls []int, tgt int) *Circuit {
	controls := make([]gate.Control, len(ctls))
	for i, q := range ctls {
		controls[i] = gate.Pos(q)
	}
	return c.Apply(gate.XGate, tgt, controls...)
}

// MCZ applies a Z on tgt controlled on all ctls being |1⟩.
func (c *Circuit) MCZ(ctls []int, tgt int) *Circuit {
	controls := make([]gate.Control, len(ctls))
	for i, q := range ctls {
		controls[i] = gate.Pos(q)
	}
	return c.Apply(gate.ZGate, tgt, controls...)
}

// Swap exchanges qubits a and b using three CNOTs.
func (c *Circuit) Swap(a, b int) *Circuit {
	return c.CX(a, b).CX(b, a).CX(a, b)
}

// NumOps returns the number of non-barrier operations.
func (c *Circuit) NumOps() int {
	n := 0
	for _, op := range c.Ops {
		if op.Kind != BarrierOp {
			n++
		}
	}
	return n
}

// GateCounts returns a histogram of operation mnemonics, e.g.
// {"h": 12, "cx": 4, "perm": 2}.
func (c *Circuit) GateCounts() map[string]int {
	counts := make(map[string]int)
	for _, op := range c.Ops {
		switch op.Kind {
		case GateOp:
			name := op.Gate.Name()
			if len(op.Controls) > 0 {
				name = strings.Repeat("c", len(op.Controls)) + name
			}
			counts[name]++
		case PermutationOp:
			counts["perm"]++
		}
	}
	return counts
}

// OpString renders one operation in a compact human-readable form.
func OpString(op Op) string {
	switch op.Kind {
	case GateOp:
		var b strings.Builder
		b.WriteString(op.Gate.String())
		for _, ctl := range op.Controls {
			if ctl.Negative {
				fmt.Fprintf(&b, " !c%d", ctl.Qubit)
			} else {
				fmt.Fprintf(&b, " c%d", ctl.Qubit)
			}
		}
		fmt.Fprintf(&b, " q%d", op.Target)
		return b.String()
	case PermutationOp:
		label := op.Label
		if label == "" {
			label = "perm"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s[q0..q%d]", label, op.PermWidth-1)
		for _, ctl := range op.Controls {
			if ctl.Negative {
				fmt.Fprintf(&b, " !c%d", ctl.Qubit)
			} else {
				fmt.Fprintf(&b, " c%d", ctl.Qubit)
			}
		}
		return b.String()
	case BarrierOp:
		return "barrier"
	default:
		return "?"
	}
}

// String lists the circuit one operation per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q on %d qubits, %d ops\n", c.Name, c.NQubits, c.NumOps())
	for _, op := range c.Ops {
		b.WriteString("  ")
		b.WriteString(OpString(op))
		b.WriteByte('\n')
	}
	return b.String()
}

// Depth returns the circuit depth: the length of the longest chain of
// operations that share qubits, i.e. the number of parallel execution
// layers a quantum computer would need. Barriers synchronize all qubits
// without occupying a layer themselves.
func (c *Circuit) Depth() int {
	level := make([]int, c.NQubits)
	depth := 0
	for _, op := range c.Ops {
		switch op.Kind {
		case BarrierOp:
			max := 0
			for _, l := range level {
				if l > max {
					max = l
				}
			}
			for q := range level {
				level[q] = max
			}
		case GateOp, PermutationOp:
			qs := c.opQubitList(op)
			max := 0
			for _, q := range qs {
				if level[q] > max {
					max = level[q]
				}
			}
			for _, q := range qs {
				level[q] = max + 1
			}
			if max+1 > depth {
				depth = max + 1
			}
		}
	}
	return depth
}

// opQubitList returns the qubits an operation touches.
func (c *Circuit) opQubitList(op Op) []int {
	var qs []int
	switch op.Kind {
	case GateOp:
		qs = append(qs, op.Target)
	case PermutationOp:
		for q := 0; q < op.PermWidth; q++ {
			qs = append(qs, q)
		}
	}
	for _, ctl := range op.Controls {
		qs = append(qs, ctl.Qubit)
	}
	return qs
}
