package circuit

import (
	"math"
	"testing"

	"weaksim/internal/gate"
)

func TestOptimizeCancelsSelfInversePairs(t *testing.T) {
	c := New(3, "cancel")
	c.X(0).X(0)                   // cancels
	c.H(1).H(1)                   // cancels
	c.CX(0, 2).CX(0, 2)           // cancels
	c.S(1).Apply(gate.SdgGate, 1) // cancels
	c.T(2)                        // survives
	res := Optimize(c)
	if res.CancelledPairs != 4 {
		t.Errorf("CancelledPairs = %d, want 4", res.CancelledPairs)
	}
	if got := c.NumOps(); got != 1 {
		t.Errorf("NumOps after optimize = %d, want 1:\n%s", got, c)
	}
	if c.Ops[0].Gate.Kind != gate.T {
		t.Errorf("surviving op is %v, want t", c.Ops[0].Gate)
	}
}

func TestOptimizeMergesRotations(t *testing.T) {
	c := New(2, "merge")
	c.RZ(0.3, 0).RZ(0.4, 0)        // merge to RZ(0.7)
	c.P(0.2, 1).P(-0.2, 1)         // merge to identity → removed
	c.CP(0.5, 0, 1).CP(0.25, 0, 1) // controlled merge to CP(0.75)
	res := Optimize(c)
	if res.MergedRotations != 2 {
		t.Errorf("MergedRotations = %d, want 2", res.MergedRotations)
	}
	if res.CancelledPairs != 1 {
		t.Errorf("CancelledPairs = %d, want 1 (the P(±0.2) pair)", res.CancelledPairs)
	}
	if got := c.NumOps(); got != 2 {
		t.Fatalf("NumOps = %d, want 2:\n%s", got, c)
	}
	if p := c.Ops[0].Gate.Params[0]; math.Abs(p-0.7) > 1e-12 {
		t.Errorf("merged RZ angle = %v, want 0.7", p)
	}
	if p := c.Ops[1].Gate.Params[0]; math.Abs(p-0.75) > 1e-12 {
		t.Errorf("merged CP angle = %v, want 0.75", p)
	}
}

func TestOptimizeRespectsInterveningOps(t *testing.T) {
	c := New(2, "blocked")
	c.X(0).CX(1, 0).X(0) // the CX touches q0: the X pair must NOT cancel
	res := Optimize(c)
	if res.Total() != 0 {
		t.Errorf("optimizer rewrote across a blocking op: %+v\n%s", res, c)
	}
	if c.NumOps() != 3 {
		t.Errorf("NumOps = %d, want 3", c.NumOps())
	}
}

func TestOptimizeSkipsDistinctControls(t *testing.T) {
	c := New(3, "controls")
	c.Apply(gate.XGate, 0, gate.Pos(1))
	c.Apply(gate.XGate, 0, gate.Neg(1)) // different polarity: no cancel
	Optimize(c)
	if c.NumOps() != 2 {
		t.Errorf("NumOps = %d, want 2 (polarity differs)", c.NumOps())
	}
}

func TestOptimizeBarrierFences(t *testing.T) {
	c := New(1, "fence")
	c.H(0).Barrier().H(0)
	res := Optimize(c)
	if res.CancelledPairs != 0 {
		t.Error("optimizer cancelled across a barrier")
	}
}

func TestOptimizeKeeps2PiControlledRotation(t *testing.T) {
	// R(2π) == −I: as a controlled gate this is a real phase, not identity.
	c := New(2, "phase2pi")
	c.Apply(gate.RZGate(math.Pi), 0, gate.Pos(1))
	c.Apply(gate.RZGate(math.Pi), 0, gate.Pos(1))
	Optimize(c)
	if c.NumOps() != 1 {
		t.Fatalf("NumOps = %d, want 1 (merged, not removed)", c.NumOps())
	}
	if p := c.Ops[0].Gate.Params[0]; math.Abs(p-2*math.Pi) > 1e-12 {
		t.Errorf("merged angle %v, want 2π", p)
	}
	// A full 4π turn IS the identity.
	c2 := New(2, "phase4pi")
	c2.Apply(gate.RZGate(2*math.Pi), 0, gate.Pos(1))
	c2.Apply(gate.RZGate(2*math.Pi), 0, gate.Pos(1))
	Optimize(c2)
	if c2.NumOps() != 0 {
		t.Errorf("4π rotation not removed: %d ops", c2.NumOps())
	}
}

func TestOptimizeRemovesIdentities(t *testing.T) {
	c := New(2, "ids")
	c.Apply(gate.IDGate, 0)
	c.RX(0, 1)
	c.P(2*math.Pi, 0)
	c.H(1)
	res := Optimize(c)
	if res.RemovedIdentities != 3 {
		t.Errorf("RemovedIdentities = %d, want 3", res.RemovedIdentities)
	}
	if c.NumOps() != 1 {
		t.Errorf("NumOps = %d, want 1", c.NumOps())
	}
}

func TestOptimizeCascades(t *testing.T) {
	// Removing the inner pair exposes the outer pair: needs the fixpoint
	// loop.
	c := New(1, "cascade")
	c.H(0).X(0).X(0).H(0)
	res := Optimize(c)
	if res.CancelledPairs != 2 {
		t.Errorf("CancelledPairs = %d, want 2", res.CancelledPairs)
	}
	if c.NumOps() != 0 {
		t.Errorf("NumOps = %d, want 0", c.NumOps())
	}
}

func TestOptimizeCommutingDisjointGates(t *testing.T) {
	// Gates on disjoint qubits in between do not block cancellation.
	c := New(3, "disjoint")
	c.X(0).H(1).T(2).X(0)
	res := Optimize(c)
	if res.CancelledPairs != 1 {
		t.Errorf("CancelledPairs = %d, want 1 (disjoint ops commute)", res.CancelledPairs)
	}
	if c.NumOps() != 2 {
		t.Errorf("NumOps = %d, want 2", c.NumOps())
	}
}
