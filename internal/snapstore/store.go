// Package snapstore persists frozen DD snapshots to disk so a restarted
// daemon can serve sampling requests without re-running strong simulation
// ("warm restart").
//
// The store is crash-safe by construction, not by recovery code:
//
//   - every file is written to a temp name in the same directory, fsynced,
//     and then atomically renamed into place — a crash mid-write leaves
//     either the old file or no file, never a half-written one;
//   - every file carries a CRC-64 (ECMA) trailer over the snapshot bytes,
//     so torn sectors and bit rot are detected before decoding;
//   - every file that fails the CRC, the decoder, or the snapshot's own
//     invariant audit (dd.Snapshot.Verify) is quarantined — renamed to
//     <name>.corrupt — and reported as a miss. A corrupted snapshot is
//     re-simulated, never served.
//
// Keys are the serving layer's canonical circuit hashes (hex SHA-256); the
// store rejects anything that is not plain hex-ish text so a key can never
// escape the store directory.
package snapstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"

	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
)

// ext is the snapshot file suffix; quarantined files gain corruptExt on top.
const (
	ext        = ".wsnap"
	corruptExt = ".corrupt"
)

var (
	// ErrNotFound reports a key with no stored snapshot.
	ErrNotFound = errors.New("snapstore: snapshot not found")
	// ErrCorrupt reports a stored snapshot that failed the CRC, the
	// decoder, or its invariant audit. The offending file has already been
	// quarantined when this is returned; the caller should re-simulate.
	ErrCorrupt = errors.New("snapstore: snapshot corrupt (quarantined)")
	// ErrVersionMismatch reports an intact snapshot written by a different
	// codec version than this build reads — a mixed-version cluster, not
	// corruption. The file (or wire payload) passed its CRC, so it is NOT
	// quarantined: a newer binary sharing the directory can still read it,
	// and this process simply re-simulates.
	ErrVersionMismatch = errors.New("snapstore: snapshot codec version mismatch")
)

// crcTable is the ECMA polynomial table; package-level so Put and Get share
// one allocation for the life of the process.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Store is a directory of persisted snapshots. All methods are safe for
// concurrent use: atomicity comes from the filesystem (rename), not locks.
type Store struct {
	dir string

	// Optional observability; nil-safe like every obs handle.
	writes     *obs.Counter
	reads      *obs.Counter
	misses     *obs.Counter
	quarantine *obs.Counter
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// SetObserver attaches a metrics registry. Passing nil detaches.
func (s *Store) SetObserver(reg *obs.Registry) {
	if reg == nil {
		s.writes, s.reads, s.misses, s.quarantine = nil, nil, nil, nil
		return
	}
	s.writes = reg.Counter("snapstore_writes_total")
	s.reads = reg.Counter("snapstore_reads_total")
	s.misses = reg.Counter("snapstore_misses_total")
	s.quarantine = reg.Counter("snapstore_quarantined_total")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a validated key to its file path.
func (s *Store) path(key string) (string, error) {
	if key == "" || len(key) > 128 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("snapstore: invalid key %q", key)
	}
	for _, r := range key {
		ok := r == '-' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return "", fmt.Errorf("snapstore: invalid key %q", key)
		}
	}
	return filepath.Join(s.dir, key+ext), nil
}

// Put encodes and durably stores snap under key, replacing any previous
// version. The write is atomic: concurrent readers see the old file or the
// new one, and a crash at any point leaves a consistent directory.
func (s *Store) Put(key string, snap *dd.Snapshot) error {
	path, err := s.path(key)
	if err != nil {
		return err
	}
	payload := dd.EncodeSnapshot(snap)
	// Fault hook: chaos tests forge torn writes and bit rot here, proving
	// the CRC/quarantine path end to end without hex-editing files.
	payload, err = fault.Mangle(fault.SnapstoreWrite, payload)
	if err != nil {
		return fmt.Errorf("snapstore: write %s: %w", key, err)
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc64.Checksum(payload, crcTable))

	tmp, err := os.CreateTemp(s.dir, "put-*"+ext+".tmp")
	if err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(payload)
	if werr == nil {
		_, werr = tmp.Write(trailer[:])
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("snapstore: write %s: %w", key, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	s.writes.Inc()
	return nil
}

// Get loads, checks, decodes, and audits the snapshot stored under key.
// A missing file returns ErrNotFound. A file failing any integrity layer is
// renamed to <file>.corrupt and reported as ErrCorrupt — after quarantine
// the key reads as ErrNotFound, so the caller's re-simulation can Put a
// fresh snapshot without fighting the bad file.
func (s *Store) Get(key string) (*dd.Snapshot, error) {
	path, err := s.path(key)
	if err != nil {
		return nil, err
	}
	if err := fault.Hit(fault.SnapstoreRead); err != nil {
		// An injected read error is an I/O failure, not corruption: the
		// caller treats it as a miss and the file survives untouched.
		s.misses.Inc()
		return nil, fmt.Errorf("snapstore: read %s: %w", key, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.misses.Inc()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	if data, err = fault.Mangle(fault.SnapstoreRead, data); err != nil {
		s.misses.Inc()
		return nil, fmt.Errorf("snapstore: read %s: %w", key, err)
	}
	snap, err := decodeChecked(data)
	if err != nil {
		if errors.Is(err, ErrVersionMismatch) {
			// The frame is intact — a different codec version wrote it. Leave
			// the file for binaries that can read it; this process treats the
			// key as a miss and re-simulates.
			s.misses.Inc()
			return nil, fmt.Errorf("%w (key %s)", err, key)
		}
		return nil, s.quarantineFile(path, key, err)
	}
	s.reads.Inc()
	return snap, nil
}

// Encode frames snap in the store's wire format: the dd binary snapshot
// image followed by a little-endian CRC-64 (ECMA) trailer over it. This is
// byte-for-byte the on-disk file format, exported so the cluster's
// snapshot-shipping endpoints exchange exactly the integrity guarantees of a
// persisted file — CRC against torn transfers, versioned header against
// mixed-version peers.
func Encode(snap *dd.Snapshot) []byte {
	payload := dd.EncodeSnapshot(snap)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc64.Checksum(payload, crcTable))
	return append(payload, trailer[:]...)
}

// Decode parses and fully audits an Encode frame: CRC trailer, structural
// decode, invariant audit. Damage at any layer returns an error wrapping
// ErrCorrupt; a frame written by a different codec version returns one
// wrapping ErrVersionMismatch instead, so mixed-version clusters fail clean
// (fall back to re-simulation) rather than treating a healthy peer's bytes
// as corruption.
func Decode(data []byte) (*dd.Snapshot, error) { return decodeChecked(data) }

// decodeChecked runs the three integrity layers in order: CRC trailer,
// structural decode, invariant audit.
func decodeChecked(data []byte) (*dd.Snapshot, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: frame shorter than the CRC trailer", ErrCorrupt)
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	if got, want := crc64.Checksum(payload, crcTable), binary.LittleEndian.Uint64(trailer); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch: computed %016x, stored %016x", ErrCorrupt, got, want)
	}
	snap, err := dd.DecodeSnapshot(payload)
	if err != nil {
		if errors.Is(err, dd.ErrSnapshotVersion) {
			return nil, fmt.Errorf("%w: %v", ErrVersionMismatch, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := snap.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, nil
}

// quarantineFile renames the bad file aside and reports ErrCorrupt.
func (s *Store) quarantineFile(path, key string, cause error) error {
	s.quarantine.Inc()
	if err := os.Rename(path, path+corruptExt); err != nil && !errors.Is(err, os.ErrNotExist) {
		// Quarantine must never mask the corruption verdict; keep going.
		return fmt.Errorf("%w: %s: %v (quarantine rename failed: %v)", ErrCorrupt, key, cause, err)
	}
	return fmt.Errorf("%w: %s: %v", ErrCorrupt, key, cause)
}

// Keys lists the keys with a (non-quarantined) stored snapshot.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ext))
	}
	return keys, nil
}
