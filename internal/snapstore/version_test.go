package snapstore

import (
	"encoding/binary"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reframeVersion rewrites an Encode frame so its header claims codec version
// v, recomputing the CRC trailer so the frame is intact — exactly what a
// peer running a newer build would produce.
func reframeVersion(t *testing.T, frame []byte, v uint16) []byte {
	t.Helper()
	if len(frame) < 16 {
		t.Fatal("frame too short to reframe")
	}
	payload := append([]byte{}, frame[:len(frame)-8]...)
	binary.LittleEndian.PutUint16(payload[4:], v)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc64.Checksum(payload, crcTable))
	return append(payload, trailer[:]...)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	dec, err := Decode(Encode(snap))
	if err != nil {
		t.Fatalf("Decode(Encode(snap)): %v", err)
	}
	if dec.Len() != snap.Len() || dec.Root() != snap.Root() || dec.RootWeight() != snap.RootWeight() {
		t.Fatal("wire round trip diverges from the source snapshot")
	}
}

func TestDecodeVersionMismatchTyped(t *testing.T) {
	frame := reframeVersion(t, Encode(testSnapshot(t)), 99)
	_, err := Decode(frame)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Decode of newer-version frame: %v, want ErrVersionMismatch", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version mismatch must not read as corruption: %v", err)
	}
	// Genuine damage still classifies as corruption, not version skew.
	bad := Encode(testSnapshot(t))
	bad[len(bad)-1] ^= 0x40
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode of damaged frame: %v, want ErrCorrupt", err)
	}
}

// TestGetVersionMismatchNotQuarantined: a stored snapshot written by a newer
// codec version reads as a typed miss and the file survives untouched — a
// newer binary sharing the directory can still use it, and this process
// simply re-simulates the circuit.
func TestGetVersionMismatchNotQuarantined(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testKey, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), testKey+ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, reframeVersion(t, data, 7), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = st.Get(testKey)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Get: %v, want ErrVersionMismatch", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get classified version skew as corruption: %v", err)
	}
	entries, _ := os.ReadDir(st.Dir())
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), corruptExt) {
			t.Fatalf("version-mismatched file was quarantined as %s", e.Name())
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("original file is gone: %v", err)
	}
}
