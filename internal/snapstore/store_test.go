package snapstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weaksim/internal/cnum"
	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
)

const testKey = "0123456789abcdef0123456789abcdef"

func testSnapshot(t *testing.T) *dd.Snapshot {
	t.Helper()
	m := dd.New(3, dd.WithNormalization(dd.NormL2))
	a := cnum.New(0, -math.Sqrt(3.0/8.0))
	b := cnum.New(math.Sqrt(1.0/8.0), 0)
	state, err := m.FromVector([]cnum.Complex{cnum.Zero, a, cnum.Zero, a, b, cnum.Zero, cnum.Zero, b})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Freeze(state)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t)
	if err := st.Put(testKey, snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != snap.Len() || got.Root() != snap.Root() || got.RootWeight() != snap.RootWeight() {
		t.Fatal("loaded snapshot diverges from the stored one")
	}
	keys, err := st.Keys()
	if err != nil || len(keys) != 1 || keys[0] != testKey {
		t.Fatalf("Keys() = %v, %v", keys, err)
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(st.Dir())
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestGetMissing(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(testKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", `a\b`, "dot.dot", "ключ", strings.Repeat("x", 200)} {
		if err := st.Put(key, testSnapshot(t)); err == nil {
			t.Errorf("Put accepted key %q", key)
		}
		if _, err := st.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get accepted key %q", key)
		}
	}
}

// corruptStored flips one byte of the stored file at offset off (negative
// counts from the end).
func corruptStored(t *testing.T, st *Store, key string, off int) {
	t.Helper()
	path := filepath.Join(st.Dir(), key+ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionQuarantined(t *testing.T) {
	cases := map[string]func(t *testing.T, st *Store){
		"bit flip in payload": func(t *testing.T, st *Store) { corruptStored(t, st, testKey, 60) },
		"bit flip in trailer": func(t *testing.T, st *Store) { corruptStored(t, st, testKey, -3) },
		"truncated": func(t *testing.T, st *Store) {
			path := filepath.Join(st.Dir(), testKey+ext)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty file": func(t *testing.T, st *Store) {
			path := filepath.Join(st.Dir(), testKey+ext)
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range cases {
		t.Run(name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			st.SetObserver(reg)
			if err := st.Put(testKey, testSnapshot(t)); err != nil {
				t.Fatal(err)
			}
			damage(t, st)
			if _, err := st.Get(testKey); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get after damage: %v, want ErrCorrupt", err)
			}
			// Quarantined: the .corrupt file exists, the key now misses, and
			// Keys() no longer lists it — the caller re-simulates and Puts.
			if _, err := os.Stat(filepath.Join(st.Dir(), testKey+ext+corruptExt)); err != nil {
				t.Fatalf("no quarantine file: %v", err)
			}
			if _, err := st.Get(testKey); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after quarantine: %v, want ErrNotFound", err)
			}
			if keys, _ := st.Keys(); len(keys) != 0 {
				t.Fatalf("Keys() after quarantine: %v", keys)
			}
			if got := reg.Counter("snapstore_quarantined_total").Value(); got != 1 {
				t.Fatalf("quarantine counter %d, want 1", got)
			}
			// And a fresh Put fully recovers the key.
			if err := st.Put(testKey, testSnapshot(t)); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(testKey); err != nil {
				t.Fatalf("Get after re-Put: %v", err)
			}
		})
	}
}

func TestFaultInjectionAtStoreBoundary(t *testing.T) {
	t.Run("write err", func(t *testing.T) {
		defer fault.Disable()
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := fault.Enable("snapstore.write:err@1", 1); err != nil {
			t.Fatal(err)
		}
		if err := st.Put(testKey, testSnapshot(t)); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Put under write fault: %v", err)
		}
		// The failed Put must not have materialized a file.
		if _, err := st.Get(testKey); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get after failed Put: %v, want ErrNotFound", err)
		}
	})
	t.Run("write corrupt then read quarantines", func(t *testing.T) {
		defer fault.Disable()
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := fault.Enable("snapstore.write:corrupt@1", 7); err != nil {
			t.Fatal(err)
		}
		if err := st.Put(testKey, testSnapshot(t)); err != nil {
			t.Fatalf("Put with corrupt class: %v (corruption is silent at write time)", err)
		}
		fault.Disable()
		if _, err := st.Get(testKey); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Get of corrupted file: %v, want ErrCorrupt", err)
		}
	})
	t.Run("read err is a miss, not corruption", func(t *testing.T) {
		defer fault.Disable()
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(testKey, testSnapshot(t)); err != nil {
			t.Fatal(err)
		}
		if err := fault.Enable("snapstore.read:err@1", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get(testKey); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Get under read fault: %v", err)
		}
		fault.Disable()
		// The file survived: the next read serves it.
		if _, err := st.Get(testKey); err != nil {
			t.Fatalf("Get after fault cleared: %v", err)
		}
	})
	t.Run("read truncate quarantines", func(t *testing.T) {
		defer fault.Disable()
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(testKey, testSnapshot(t)); err != nil {
			t.Fatal(err)
		}
		if err := fault.Enable("snapstore.read:truncate@1", 3); err != nil {
			t.Fatal(err)
		}
		_, gerr := st.Get(testKey)
		fault.Disable()
		if !errors.Is(gerr, fault.ErrInjected) && !errors.Is(gerr, ErrCorrupt) {
			t.Fatalf("Get under truncating read: %v", gerr)
		}
	})
	t.Run("overwrite is atomic", func(t *testing.T) {
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := st.Put(testKey, testSnapshot(t)); err != nil {
				t.Fatal(err)
			}
		}
		if keys, _ := st.Keys(); len(keys) != 1 {
			t.Fatalf("Keys() after overwrites: %v", keys)
		}
	})
}
