package serve

// Snapshot shipping: the replica-to-replica transfer surface.
//
//	GET /v1/snapshot/{hash}  → the frozen snapshot for a canonical circuit
//	                           hash, framed in the snapstore wire codec
//	                           (versioned dd image + CRC-64 trailer), served
//	                           from the LRU; 404 when cold.
//	PUT /v1/snapshot/{hash}  → decode, CRC-check, invariant-audit, and
//	                           install a shipped snapshot into the LRU (and
//	                           the on-disk store when configured); 204 on
//	                           success, 409 on codec version mismatch, 400 on
//	                           a frame that fails any integrity layer.
//
// The paper's freeze-then-sample split makes the frozen snapshot the natural
// unit of work distribution: building one is the expensive strong
// simulation, sampling from one is cheap and stateless. Shipping moves the
// built artifact instead of rebuilding it, so a cluster whose ring
// assignment changes (a replica died, a backend joined) pays one network
// copy rather than a second strong simulation. The wire format is exactly
// the snapstore file format, so shipping inherits the persistence layer's
// integrity ladder for free — and a peer running a newer codec fails clean
// with a typed version_mismatch instead of reading as corruption.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"weaksim/internal/snapstore"
)

// snapshotPathPrefix is the shipping route; the suffix is the canonical
// circuit hash.
const snapshotPathPrefix = "/v1/snapshot/"

// maxSnapshotFrameBytes bounds a PUT body: the configured cache capacity
// plus framing slack — nothing larger could be admitted usefully anyway.
func (s *Server) maxSnapshotFrameBytes() int64 {
	return s.cfg.CacheBytes + (1 << 20)
}

// snapshotKey extracts and validates the {hash} path element. Keys are
// canonical circuit hashes (lowercase hex SHA-256); anything else is
// rejected before it can touch the cache or the store.
func snapshotKey(path string) (string, error) {
	key := strings.TrimPrefix(path, snapshotPathPrefix)
	if key == "" || len(key) > 128 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("invalid snapshot key %q", key)
	}
	for _, r := range key {
		ok := r == '-' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return "", fmt.Errorf("invalid snapshot key %q", key)
		}
	}
	return key, nil
}

// handleSnapshot dispatches the shipping route by method.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	key, err := snapshotKey(r.URL.Path)
	if err != nil {
		s.writeError(w, badRequest{err})
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleSnapshotGet(w, key)
	case http.MethodPut:
		s.handleSnapshotPut(w, r, key)
	default:
		w.Header().Set("Allow", "GET, PUT")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use GET or PUT", Status: http.StatusMethodNotAllowed}})
	}
}

// handleSnapshotGet serves a resident snapshot in the wire frame. Only the
// LRU is consulted — a router asking a cold replica should hear "cold" and
// go simulate, not trigger disk traffic on the serving path.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, key string) {
	ent := s.cache.peek(key)
	if ent == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: errorInfo{
			Code: "snapshot_not_found", Message: "no resident snapshot for " + key,
			Status: http.StatusNotFound}})
		return
	}
	frame := snapstore.Encode(ent.sampler.Snapshot())
	s.snapServed.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Weaksim-Snapshot-Nodes", fmt.Sprint(ent.sampler.Snapshot().Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frame)
}

// handleSnapshotPut installs a shipped snapshot after running the full
// integrity ladder (CRC, structural decode, invariant audit). The install
// path mirrors the warm-restart path: the entry enters the LRU exactly as if
// this replica had simulated it, with simNS 0 (the cost was paid elsewhere).
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request, key string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxSnapshotFrameBytes()))
	if err != nil {
		s.snapRejects.Inc()
		s.writeError(w, badRequest{fmt.Errorf("reading snapshot frame: %w", err)})
		return
	}
	snap, err := snapstore.Decode(body)
	if err != nil {
		s.snapRejects.Inc()
		if errors.Is(err, snapstore.ErrVersionMismatch) {
			// Mixed-version cluster: the frame is intact but this build cannot
			// read it. 409 tells the shipper "stop retrying, let the target
			// re-simulate" — deterministic, like 507/504.
			writeJSON(w, http.StatusConflict, errorBody{Error: errorInfo{
				Code: "version_mismatch", Message: err.Error(), Status: http.StatusConflict}})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: errorInfo{
			Code: "snapshot_corrupt", Message: err.Error(), Status: http.StatusBadRequest}})
		return
	}
	ent, err := newEntry(key, snap, 0)
	if err != nil {
		s.snapRejects.Inc()
		s.writeError(w, badRequest{fmt.Errorf("installing snapshot: %w", err)})
		return
	}
	s.cache.insert(ent)
	s.persist(key, snap)
	s.snapInstalls.Inc()
	w.WriteHeader(http.StatusNoContent)
}
