package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"weaksim/internal/obs"
)

func TestPoolRunsJobs(t *testing.T) {
	p := newSimPool(2, 8, obs.NewRegistry(), nil)
	var ran atomic.Int64
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		if err := p.submit(func() {
			ran.Add(1)
			done <- struct{}{}
		}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("pool did not run all jobs")
		}
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("ran %d jobs, want 4", n)
	}
	if err := p.close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestPoolQueueFull(t *testing.T) {
	// One worker, unbuffered queue: occupy the worker, then the next submit
	// must be rejected immediately with ErrQueueFull.
	reg := obs.NewRegistry()
	p := newSimPool(1, -1, reg, nil) // depth < 0 → clamped to 0 (unbuffered)
	block := make(chan struct{})
	started := make(chan struct{})
	// With an unbuffered queue a submit can only land once the worker
	// goroutine is parked on its receive; retry briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := p.submit(func() {
			close(started)
			<-block
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first submit never admitted: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	<-started
	base := reg.Counter("serve_queue_rejected_total").Value()
	err := p.submit(func() {})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err=%v, want ErrQueueFull", err)
	}
	if got := reg.Counter("serve_queue_rejected_total").Value(); got != base+1 {
		t.Fatalf("rejected counter=%d, want %d", got, base+1)
	}
	close(block)
	if err := p.close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestPoolDrainingAfterClose(t *testing.T) {
	p := newSimPool(1, 4, obs.NewRegistry(), nil)
	if err := p.close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.submit(func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err=%v, want ErrDraining", err)
	}
	// Second close must be a no-op, not a double-close panic.
	if err := p.close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPoolCloseHonorsContext(t *testing.T) {
	p := newSimPool(1, 1, obs.NewRegistry(), nil)
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	if err := p.submit(func() {
		close(started)
		<-block
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close err=%v, want DeadlineExceeded", err)
	}
}

func TestPoolDrainFinishesQueuedJobs(t *testing.T) {
	// Jobs already admitted before close must still run to completion.
	p := newSimPool(1, 8, obs.NewRegistry(), nil)
	var ran atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	_ = p.submit(func() {
		close(started)
		<-gate
		ran.Add(1)
	})
	<-started
	for i := 0; i < 3; i++ {
		if err := p.submit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	close(gate)
	if err := p.close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("drained pool ran %d jobs, want 4", n)
	}
}
