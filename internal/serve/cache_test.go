package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/obs"
)

// testEntry builds a real (tiny) cache entry by simulating a GHZ-like state,
// then overrides the accounted byte size so LRU tests can control pressure.
func testEntry(t *testing.T, key string, bytes int64) *entry {
	t.Helper()
	m := dd.New(2)
	e := m.ZeroState()
	snap, err := m.Freeze(e)
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	s, err := core.NewFrozenSampler(snap)
	if err != nil {
		t.Fatalf("sampler: %v", err)
	}
	return &entry{key: key, sampler: s, qubits: snap.Qubits(), bytes: bytes}
}

// directSubmit runs the compute synchronously on the calling goroutine —
// the simplest valid submit function for cache unit tests.
func directSubmit(c *snapCache, key string, compute computeFunc) func(*flight) error {
	return func(fl *flight) error {
		go c.run(key, fl, compute)
		return nil
	}
}

func TestCacheHitAndEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := newSnapCache(100, reg)
	mk := func(key string, bytes int64) {
		ent, _, err := c.getOrCompute(context.Background(), key,
			directSubmit(c, key, func() (*entry, error) { return testEntry(t, key, bytes), nil }))
		if err != nil {
			t.Fatalf("getOrCompute(%s): %v", key, err)
		}
		if ent == nil || ent.key != key {
			t.Fatalf("got wrong entry for %s", key)
		}
	}
	mk("a", 40)
	mk("b", 40)
	// Hit on "a" marks it most recently used.
	if _, cached, err := c.getOrCompute(context.Background(), "a", nil); err != nil || !cached {
		t.Fatalf("expected cache hit for a, cached=%v err=%v", cached, err)
	}
	// "c" pushes the budget to 120 > 100: the LRU victim is "b".
	mk("c", 40)
	st := c.stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("after eviction: entries=%d bytes=%d, want 2/80", st.Entries, st.Bytes)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	if _, cached, _ := c.getOrCompute(context.Background(), "b",
		directSubmit(c, "b", func() (*entry, error) { return testEntry(t, "b", 10), nil })); cached {
		t.Fatalf("b should have been evicted")
	}
}

func TestCacheOversizedEntryStillAdmitted(t *testing.T) {
	c := newSnapCache(100, obs.NewRegistry())
	ent, _, err := c.getOrCompute(context.Background(), "huge",
		directSubmit(c, "huge", func() (*entry, error) { return testEntry(t, "huge", 1000), nil }))
	if err != nil || ent == nil {
		t.Fatalf("oversized admission failed: %v", err)
	}
	if _, cached, _ := c.getOrCompute(context.Background(), "huge", nil); !cached {
		t.Fatalf("oversized entry was not cached")
	}
}

func TestCacheSingleFlightCoalesces(t *testing.T) {
	c := newSnapCache(1<<20, obs.NewRegistry())
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() (*entry, error) {
		computes.Add(1)
		<-release
		return testEntry(t, "k", 10), nil
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	hits := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, cached, err := c.getOrCompute(context.Background(), "k",
				directSubmit(c, "k", compute))
			errs[i], hits[i] = err, cached
		}(i)
	}
	// Let every goroutine either start the flight or join it, then release.
	for c.stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1 (single-flight)", n)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if hits[i] {
			t.Fatalf("client %d reported a warm cache hit during the first flight", i)
		}
	}
	if _, cached, _ := c.getOrCompute(context.Background(), "k", nil); !cached {
		t.Fatalf("entry not cached after the flight")
	}
}

func TestCacheFailedComputeNotCached(t *testing.T) {
	c := newSnapCache(1<<20, obs.NewRegistry())
	boom := errors.New("sim exploded")
	_, _, err := c.getOrCompute(context.Background(), "k",
		directSubmit(c, "k", func() (*entry, error) { return nil, boom }))
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want %v", err, boom)
	}
	// The failure must not be cached: the next call re-computes and succeeds.
	ent, cached, err := c.getOrCompute(context.Background(), "k",
		directSubmit(c, "k", func() (*entry, error) { return testEntry(t, "k", 10), nil }))
	if err != nil || cached || ent == nil {
		t.Fatalf("retry after failure: ent=%v cached=%v err=%v", ent, cached, err)
	}
}

func TestCacheSubmitRejectionPropagates(t *testing.T) {
	c := newSnapCache(1<<20, obs.NewRegistry())
	_, _, err := c.getOrCompute(context.Background(), "k",
		func(*flight) error { return ErrQueueFull })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err=%v, want ErrQueueFull", err)
	}
	if st := c.stats(); st.InFlight != 0 {
		t.Fatalf("rejected flight leaked: in_flight=%d", st.InFlight)
	}
}

func TestCacheWaitHonorsContext(t *testing.T) {
	c := newSnapCache(1<<20, obs.NewRegistry())
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = c.getOrCompute(context.Background(), "k",
			directSubmit(c, "k", func() (*entry, error) {
				<-release
				return testEntry(t, "k", 10), nil
			}))
	}()
	for c.stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.getOrCompute(ctx, "k", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := newSnapCache(1<<20, reg)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.getOrCompute(context.Background(), key,
			directSubmit(c, key, func() (*entry, error) { return testEntry(t, key, 10), nil })); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.getOrCompute(context.Background(), "k0", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Misses != 3 || st.Hits != 5 || st.Entries != 3 {
		t.Fatalf("stats=%+v, want 3 misses / 5 hits / 3 entries", st)
	}
	if got := reg.Counter("serve_cache_hits_total").Value(); got != 5 {
		t.Fatalf("registry hits=%d, want 5", got)
	}
}
