// Package serve turns the weak-simulation pipeline into a long-running
// sampling service: an HTTP/JSON daemon that accepts circuits (OpenQASM 2.0
// or named internal/algo benchmarks) and returns measurement counts.
//
// The economics follow the paper directly (Hillmich/Markov/Wille, DAC 2020):
// strong simulation is the expensive one-time pass, and every sample after
// the freeze costs O(n). That is the shape of a serving workload — compile
// once, freeze once, answer millions of cheap sample requests — so the
// daemon is built around a canonical-circuit-hash → frozen-snapshot LRU with
// single-flight admission (cache.go), a bounded simulation queue with a
// fixed worker pool (queue.go), and per-request resource governance mapped
// onto HTTP status codes (handlers.go):
//
//	dd.ErrNodeBudget / statevec.ErrMemoryOut → 507 Insufficient Storage ("MO")
//	context.DeadlineExceeded                 → 504 Gateway Timeout      ("TO")
//	admission queue full                     → 429 Too Many Requests + Retry-After
//	draining after SIGTERM                   → 503 Service Unavailable
//
// Cached circuits are served entirely from the immutable snapshot by
// lock-free parallel walks (core.FrozenSampler + core.CountsParallel): no DD
// work, no node-budget exposure, deterministic counts for a fixed
// (seed, workers) pair.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"weaksim/internal/circuit"
	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/job"
	"weaksim/internal/obs"
	"weaksim/internal/sim"
	"weaksim/internal/snapstore"
)

// Defaults for the zero Config.
const (
	DefaultCacheBytes     = 256 << 20 // 256 MiB of frozen snapshots
	DefaultQueueDepth     = 64
	DefaultMaxShots       = 10_000_000
	DefaultShots          = 1024
	DefaultMaxQubits      = 64 // sample indices are uint64 bitstrings
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 4 << 20
)

// Config configures a sampling daemon. The zero value serves with the
// defaults above; Addr ":0" binds an ephemeral port.
type Config struct {
	// Addr is the listen address (host:port; ":0" = ephemeral).
	Addr string
	// Norm is the DD normalization scheme for strong simulation.
	Norm dd.Norm
	// NodeBudget bounds live DD nodes per simulation (0 = unlimited);
	// overruns surface as HTTP 507.
	NodeBudget int
	// CacheBytes bounds the frozen-snapshot LRU (bytes of snapshot arrays,
	// dd.Snapshot.Bytes). <= 0 selects DefaultCacheBytes.
	CacheBytes int64
	// QueueDepth bounds the simulation admission queue; a full queue
	// rejects with HTTP 429. < 0 disables queueing (every miss needs an
	// idle worker); 0 selects DefaultQueueDepth.
	QueueDepth int
	// SimWorkers is the strong-simulation worker pool size (<= 0 selects
	// GOMAXPROCS).
	SimWorkers int
	// MaxSampleWorkers caps the per-request sampling worker count (<= 0
	// selects GOMAXPROCS).
	MaxSampleWorkers int
	// MaxShots caps per-request shot counts; DefaultShots is used when a
	// request omits shots.
	MaxShots     int
	DefaultShots int
	// MaxQubits rejects circuits wider than this with HTTP 400 (<= 0
	// selects DefaultMaxQubits; values above 64 are clamped to 64).
	MaxQubits int
	// RequestTimeout is the per-request deadline; requests may lower it
	// (timeout_ms) but never raise it. Blown deadlines are HTTP 504.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (<= 0 selects DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Metrics receives the serve_* metrics plus the usual dd_*/phase_*
	// series from the simulation workers. nil creates a private registry
	// (a daemon always wants its own numbers — expose them with DebugAddr).
	Metrics *obs.Registry
	// Tracer receives structured serve/queue/govern events. nil disables.
	Tracer *obs.Tracer
	// DebugAddr, when non-empty, starts an obs.ServeDebug server (Prometheus
	// /metrics, /metrics.json, expvar, pprof) on that address.
	DebugAddr string
	// SnapshotDir, when non-empty, persists every frozen snapshot to a
	// crash-safe on-disk store (internal/snapstore) keyed by the canonical
	// circuit hash, and warm-loads the store on Start: a restarted daemon
	// serves previously simulated circuits from disk with zero strong
	// simulations. Files failing their CRC or invariant audit are
	// quarantined and re-simulated; persistence failures degrade to
	// serving uncached, never to request errors.
	SnapshotDir string
	// DisableRequestTraces turns off per-request span collection — no
	// X-Weaksim-Trace-Id header, no debug=1 breakdown, and no per-request
	// flight-recorder records. The disabled path allocates nothing per
	// request (the flight recorder still captures trips).
	DisableRequestTraces bool
	// FlightSlots sizes the flight-recorder ring (records, not requests;
	// <= 0 selects obs.DefaultFlightSlots).
	FlightSlots int
	// FlightDir, when non-empty, receives JSONL ring dumps when the
	// recorder trips (panic, injected fault, SLO fast-burn breach). Empty
	// keeps dumps HTTP-only (GET /debug/flight).
	FlightDir string
	// SLOs configures per-endpoint latency/availability objectives for
	// /v1/slo and the fast-burn trip signal. nil selects
	// DefaultSLOs(RequestTimeout); an explicit empty slice disables SLO
	// evaluation.
	SLOs []SLO
	// JobsDir, when non-empty, makes the batch-job store durable: specs and
	// chunk checkpoints go to a write-ahead log there, and a restarted
	// daemon resumes every non-terminal job. Empty keeps jobs in memory
	// only (they still run, but do not survive a restart).
	JobsDir string
	// JobWorkers sizes the chunk-executor pool (<= 0 selects
	// job.DefaultWorkers).
	JobWorkers int
	// JobChunkShots is the checkpoint granularity when a submit does not
	// choose one (<= 0 selects job.DefaultChunkShots).
	JobChunkShots int
	// JobMaxShots caps a single job's shot budget (<= 0 selects
	// DefaultJobMaxShots). Deliberately distinct from MaxShots: jobs exist
	// to exceed the per-request cap.
	JobMaxShots int
	// JobTenantWeights maps tenant name to fair-share weight (absent = 1).
	JobTenantWeights map[string]int
	// JobMaxPerTenant is the per-tenant non-terminal job quota (<= 0
	// selects job.DefaultMaxPerTenant); overruns are HTTP 429.
	JobMaxPerTenant int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSampleWorkers <= 0 {
		c.MaxSampleWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxShots <= 0 {
		c.MaxShots = DefaultMaxShots
	}
	if c.DefaultShots <= 0 {
		c.DefaultShots = DefaultShots
	}
	if c.MaxQubits <= 0 || c.MaxQubits > DefaultMaxQubits {
		c.MaxQubits = DefaultMaxQubits
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.SLOs == nil {
		c.SLOs = DefaultSLOs(c.RequestTimeout)
	}
	if c.JobMaxShots <= 0 {
		c.JobMaxShots = DefaultJobMaxShots
	}
	return c
}

// Server is a running (or startable) sampling daemon.
type Server struct {
	cfg   Config
	cache *snapCache
	pool  *simPool
	http  *http.Server
	ln    net.Listener
	debug *obs.DebugServer
	store *snapstore.Store
	jobs  *job.Manager
	start time.Time

	// draining flips when Shutdown begins: /readyz turns 503 so load
	// balancers stop routing here, while /healthz stays 200 — the process is
	// alive and finishing its in-flight work.
	draining atomic.Bool

	// baseCtx governs simulation jobs: it outlives individual requests (a
	// flight is a shared asset) and is cancelled only when a drain deadline
	// forces shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	reqTotal  *obs.Counter
	reqErrors *obs.Counter
	reqHist   *obs.Histogram
	inflight  *obs.Gauge
	shotsCtr  *obs.Counter

	// Request-scoped observability layer: the always-on flight recorder, the
	// SLO burn-rate engine feeding it, per-endpoint latency histograms
	// backing /v1/stats percentiles, and the injected-fault counter.
	recorder   *obs.FlightRecorder
	slo        *sloEngine
	epHists    map[string]*obs.Histogram
	faultFired *obs.Counter

	// Snapshot-shipping counters: frames served to peers (GET), frames
	// installed from peers (PUT), and frames rejected by the integrity
	// ladder or the codec version gate.
	snapServed   *obs.Counter
	snapInstalls *obs.Counter
	snapRejects  *obs.Counter
}

// tracedEndpoints are the routes wrapped by the observability middleware,
// each with the metric-name stem of its latency histogram.
var tracedEndpoints = map[string]string{
	"/v1/sample":   "sample",
	"/v1/circuits": "circuits",
	"/v1/stats":    "stats",
	"/v1/slo":      "slo",
	"/healthz":     "healthz",
	"/readyz":      "readyz",
	"/v1/jobs":     "jobs",
	// Every /v1/jobs/{id}[...] request lands in one histogram, keyed by the
	// route prefix.
	"/v1/jobs/": "job",
	// The snapshot-shipping route is keyed by its prefix; every
	// /v1/snapshot/{hash} request lands in one histogram.
	snapshotPathPrefix: "snapshot",
}

// New builds a Server from cfg without binding the listen socket yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     newSnapCache(cfg.CacheBytes, reg),
		pool:      newSimPool(cfg.SimWorkers, cfg.QueueDepth, reg, cfg.Tracer),
		baseCtx:   baseCtx,
		cancel:    cancel,
		start:     time.Now(),
		reqTotal:  reg.Counter("serve_requests_total"),
		reqErrors: reg.Counter("serve_errors_total"),
		reqHist:   reg.Histogram("serve_request_ns", obs.OpLatencyBounds),
		inflight:  reg.Gauge("serve_inflight"),
		shotsCtr:  reg.Counter("serve_shots_total"),
	}
	s.recorder = obs.NewFlightRecorder(cfg.FlightSlots,
		obs.WithFlightDir(cfg.FlightDir),
		obs.WithFlightTrips(reg.Counter("serve_flight_trips_total")))
	s.slo = newSLOEngine(cfg.SLOs, s.recorder, reg)
	s.faultFired = reg.Counter("serve_fault_fired_total")
	s.snapServed = reg.Counter("serve_snapshot_served_total")
	s.snapInstalls = reg.Counter("serve_snapshot_installs_total")
	s.snapRejects = reg.Counter("serve_snapshot_rejects_total")
	s.epHists = make(map[string]*obs.Histogram, len(tracedEndpoints))
	for path, stem := range tracedEndpoints {
		name := "serve_endpoint_" + stem + "_ns"
		obs.RegisterHelp(name, "Request latency for "+path+" in nanoseconds.")
		s.epHists[path] = reg.Histogram(name, obs.ServeLatencyBounds)
	}
	// The batch-job subsystem rides the same cache/flight/pool machinery via
	// jobSnapshot; it always exists (in-memory without JobsDir) so the API
	// surface does not depend on deployment flags.
	s.jobs = job.NewManager(job.Config{
		Dir:               cfg.JobsDir,
		Workers:           cfg.JobWorkers,
		DefaultChunkShots: cfg.JobChunkShots,
		TenantWeights:     cfg.JobTenantWeights,
		MaxPerTenant:      cfg.JobMaxPerTenant,
		Snapshot:          s.jobSnapshot,
		Metrics:           reg,
		Recorder:          s.recorder,
	})
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Start binds the configured address and serves in the background until
// Shutdown. It returns once the listener is bound, so Addr is valid
// immediately after.
func (s *Server) Start() error {
	if s.cfg.SnapshotDir != "" {
		store, err := snapstore.Open(s.cfg.SnapshotDir)
		if err != nil {
			return err
		}
		store.SetObserver(s.cfg.Metrics)
		s.store = store
		s.warmRestart()
	}
	// Jobs start before the listener: WAL replay resumes any non-terminal
	// jobs immediately (their chunks run through the same pool the HTTP
	// surface uses), and a replay failure should abort startup, not serve.
	if err := s.jobs.Start(); err != nil {
		return fmt.Errorf("serve: job store: %w", err)
	}
	addr := s.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	if s.cfg.DebugAddr != "" {
		dbg, err := obs.ServeDebug(s.cfg.DebugAddr, s.cfg.Metrics,
			obs.WithDebugFlightRecorder(s.recorder))
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: debug server: %w", err)
		}
		s.debug = dbg
	}
	// Every injected fault that fires lands in the flight recorder — the
	// chaos matrix's outcomes become post-hoc debuggable ring dumps instead
	// of bare counters. The observer is process-global (the fault registry
	// is); the last started server owns it until shutdown.
	fault.SetObserver(func(point string, class fault.Class) {
		s.faultFired.Inc()
		s.recorder.Trip("fault:"+point, map[string]any{"class": class.String()})
	})
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Metrics returns the daemon's registry (never nil after New).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Shutdown drains the daemon gracefully: stop accepting connections, let
// in-flight requests finish, stop the simulation pool (running jobs observe
// cancellation only if ctx expires first), and close the debug server. Safe
// to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	fault.SetObserver(nil)
	err := s.http.Shutdown(ctx)
	// Jobs stop before the pool closes: in-flight chunks get to finish (and
	// checkpoint) while their snapshot lookups can still run; whatever the
	// drain window cuts off resumes from the WAL on the next start.
	if jerr := s.jobs.Stop(ctx); err == nil {
		err = jerr
	}
	if perr := s.pool.close(ctx); err == nil {
		err = perr
	}
	// After the drain window, abort any still-running simulations.
	s.cancel()
	if s.debug != nil {
		_ = s.debug.Close()
	}
	return err
}

// Close shuts down immediately without draining.
func (s *Server) Close() error {
	s.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// simulate is the computeFunc body: one strong simulation + freeze under the
// server's node budget, producing the immutable cache entry. It runs on a
// simulation worker, governed by the server's base context plus the request
// deadline budget — not by any single client's context, because the result
// is shared by every request coalesced onto the flight.
func (s *Server) simulate(rt *obs.RequestTrace, key string, circ *circuit.Circuit) (*entry, error) {
	// Fault hook for the whole simulation stage. A panic class here unwinds
	// into snapCache.run's recovery — the regression the chaos suite pins is
	// that the daemon answers HTTP 500 and keeps serving.
	if err := fault.Hit(fault.ServeSim); err != nil {
		return nil, fmt.Errorf("serve: simulation stage: %w", err)
	}
	// A snapshot persisted by an earlier process (or another instance
	// sharing the directory) short-circuits the simulation entirely; a
	// corrupt file is quarantined inside Get and we fall through to
	// re-simulate.
	if s.store != nil {
		if snap, err := s.store.Get(key); err == nil {
			if ent, err := newEntry(key, snap, 0); err == nil {
				rt.Event(obs.PhaseServe, map[string]any{"snapstore_hit": key})
				return ent, nil
			}
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	defer cancel()
	// The simulation runs on a pool worker under the server's base context,
	// but its spans still belong to the leader request's trace — reattach it
	// so dd.FreezeContext and the sampling workers can annotate.
	ctx = obs.ContextWithTrace(ctx, rt)
	reg, tr := s.cfg.Metrics, s.cfg.Tracer
	begin := time.Now()

	stopBuild := obs.StartPhase(reg, tr, obs.PhaseBuild)
	bsp := rt.StartSpan(obs.PhaseBuild)
	mgrOpts := []dd.Option{dd.WithNormalization(s.cfg.Norm)}
	if s.cfg.NodeBudget > 0 {
		mgrOpts = append(mgrOpts, dd.WithNodeBudget(s.cfg.NodeBudget))
	}
	ds, err := sim.NewDD(circ,
		sim.WithManagerOptions(mgrOpts...),
		sim.WithObservability(reg, tr))
	stopBuild()
	bsp.End(errAttrs(err))
	if err != nil {
		return nil, err
	}
	stopApply := obs.StartPhase(reg, tr, obs.PhaseApply)
	asp := rt.StartSpan(obs.PhaseApply)
	edge, err := ds.RunContext(ctx)
	stopApply()
	asp.End(errAttrs(err))
	if err != nil {
		return nil, err
	}
	stopFreeze := obs.StartPhase(reg, tr, obs.PhaseFreeze)
	snap, err := ds.Manager().FreezeContext(ctx, edge)
	stopFreeze()
	if err != nil {
		return nil, err
	}
	reg.Gauge("snapshot_nodes").Set(int64(snap.Len()))
	reg.Gauge("snapshot_bytes").Set(int64(snap.Bytes()))
	s.persist(key, snap)
	return newEntry(key, snap, time.Since(begin))
}

// errAttrs renders an error as span attributes (nil for success, so the
// success path allocates nothing beyond the span itself).
func errAttrs(err error) map[string]any {
	if err == nil {
		return nil
	}
	return map[string]any{"error": err.Error()}
}

// persist writes a freshly frozen snapshot to the store. Persistence is
// strictly best-effort: a full disk, an injected fault, even a panic in the
// store must degrade to "this circuit re-simulates after a restart" — never
// to a failed request. The request's counts come from the in-memory
// snapshot either way.
func (s *Server) persist(key string, snap *dd.Snapshot) {
	if s.store == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*fault.InjectedPanic); !ok {
				panic(r)
			}
		}
	}()
	if err := s.store.Put(key, snap); err != nil {
		s.cfg.Tracer.Event(obs.PhaseServe, "persist-failed", map[string]any{
			"key": key, "error": err.Error(),
		})
	}
}

// warmRestart loads every verified snapshot from the store into the cache
// before the listener opens. Corrupt files are quarantined by the store; a
// key that fails to load simply stays cold and re-simulates on first
// request.
func (s *Server) warmRestart() {
	keys, err := s.store.Keys()
	if err != nil {
		return
	}
	loaded := 0
	for _, key := range keys {
		snap, err := s.store.Get(key)
		if err != nil {
			continue
		}
		ent, err := newEntry(key, snap, 0)
		if err != nil {
			continue
		}
		s.cache.insert(ent)
		loaded++
	}
	s.cfg.Metrics.Counter("serve_warm_loaded_total").Add(uint64(loaded))
	if loaded > 0 {
		s.cfg.Tracer.Event(obs.PhaseServe, "warm-restart", map[string]any{
			"loaded": loaded, "dir": s.cfg.SnapshotDir,
		})
	}
}

// lookup resolves the cache entry for a circuit: hit, join, or simulate.
//
// Trace flow through the single flight: the leader request's trace rides
// into the pool worker, which records the queue-wait span and then runs the
// compute. The compute closure takes a span mark first, so SpansSince(mark)
// is exactly the simulation's spans (build/apply/freeze) — published on the
// flight for coalesced waiters to adopt as shared spans. The publish happens
// before the flight resolves (run → finish → close(done)), which is the
// happens-before edge the waiters' reads rely on.
func (s *Server) lookup(ctx context.Context, key string, circ *circuit.Circuit) (*entry, bool, error) {
	rt := obs.TraceFromContext(ctx)
	return s.cache.getOrCompute(ctx, key, func(fl *flight) error {
		return s.pool.submitWith(rt, func() {
			mark := rt.Mark()
			s.cache.run(key, fl, func() (*entry, error) {
				ent, err := s.simulate(rt, key, circ)
				if err == nil {
					fl.traceID = rt.ID()
					fl.spans = rt.SpansSince(mark)
				}
				return ent, err
			})
		})
	})
}
