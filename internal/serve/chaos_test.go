package serve

// Chaos suite: every fault class at every serving-path injection point must
// map onto the governance ladder the daemon already speaks — 507 for
// engine-level resource exhaustion, 504 for blown deadlines, 429 for shed
// load, 500 (structured, recovered) for panics, and silent degradation for
// faults in optional layers (cache admission, persistence). Run via
// `make chaos` under -race.
//
// The fault plan is process-global, so these tests never call t.Parallel
// and always disarm on cleanup.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"weaksim/internal/fault"
)

// armFault enables a fault spec for the duration of the test.
func armFault(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Enable(spec, 99); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
}

// sampleBody is the canonical chaos request: small GHZ circuit, fixed seed.
func sampleBody(shots, workers int) map[string]any {
	return map[string]any{"qasm": ghzQASM, "shots": shots, "seed": 7, "workers": workers}
}

func TestChaosUniqueInsertFaultIsMemoryOut(t *testing.T) {
	srv, base := startServer(t, Config{})
	armFault(t, "dd.unique.insert:err@1+")
	var eb errorBody
	status, _ := post(t, base, sampleBody(16, 1), &eb)
	if status != http.StatusInsufficientStorage || eb.Error.Code != "memory_out" {
		t.Fatalf("status=%d code=%q, want 507 memory_out", status, eb.Error.Code)
	}
	// Disarm: the same circuit simulates cleanly — the fault left no residue.
	fault.Disable()
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &ok); status != http.StatusOK {
		t.Fatalf("recovery request status=%d", status)
	}
	if srv.Metrics().Counter("serve_errors_total").Value() == 0 {
		t.Fatal("error counter not bumped")
	}
}

func TestChaosFreezeFaultIsInternal(t *testing.T) {
	_, base := startServer(t, Config{})
	armFault(t, "dd.freeze:err@1")
	var eb errorBody
	status, _ := post(t, base, sampleBody(16, 1), &eb)
	if status != http.StatusInternalServerError || eb.Error.Code != "internal" {
		t.Fatalf("status=%d code=%q, want 500 internal", status, eb.Error.Code)
	}
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &ok); status != http.StatusOK {
		t.Fatalf("recovery request status=%d", status)
	}
}

func TestChaosQueueSubmitFaultShedsLoad(t *testing.T) {
	_, base := startServer(t, Config{})
	armFault(t, "serve.queue.submit:err@1")
	var eb errorBody
	status, hdr := post(t, base, sampleBody(16, 1), &eb)
	if status != http.StatusTooManyRequests || eb.Error.Code != "queue_full" {
		t.Fatalf("status=%d code=%q, want 429 queue_full", status, eb.Error.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &ok); status != http.StatusOK {
		t.Fatalf("recovery request status=%d", status)
	}
}

// TestChaosSimPanicIsolated is the panic-isolation regression: an injected
// panic on a simulation worker answers one structured 500 and the daemon
// keeps serving — the flight is resolved (no hung waiters), the worker
// survives, and the next request succeeds.
func TestChaosSimPanicIsolated(t *testing.T) {
	srv, base := startServer(t, Config{SimWorkers: 1})
	armFault(t, "serve.sim:panic@1")
	var eb errorBody
	status, _ := post(t, base, sampleBody(16, 1), &eb)
	if status != http.StatusInternalServerError || eb.Error.Code != "panic" {
		t.Fatalf("status=%d code=%q, want 500 panic", status, eb.Error.Code)
	}
	if got := srv.Metrics().Counter("serve_panics_total").Value(); got != 1 {
		t.Fatalf("serve_panics_total=%d, want 1", got)
	}
	// Same (sole) worker must still be alive and simulate the next request.
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &ok); status != http.StatusOK {
		t.Fatalf("daemon stopped serving after a worker panic: status=%d", status)
	}
	if getJSON(t, base+"/healthz", nil) != http.StatusOK {
		t.Fatal("liveness lost after a recovered panic")
	}
}

func TestChaosSamplerLatencyIsTimeout(t *testing.T) {
	_, base := startServer(t, Config{MaxSampleWorkers: 8})
	// Prime the cache so the fault hits sampling, not simulation.
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &ok); status != http.StatusOK {
		t.Fatalf("prime status=%d", status)
	}
	armFault(t, "sampler.walk:latency(150ms)@1+")
	body := sampleBody(2048, 1)
	body["timeout_ms"] = 50
	var eb errorBody
	status, _ := post(t, base, body, &eb)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status=%d code=%q, want 504", status, eb.Error.Code)
	}
	fault.Disable()
	if status, _ := post(t, base, body, &ok); status != http.StatusOK {
		t.Fatalf("recovery request status=%d", status)
	}
}

// TestChaosCacheAdmitFaultDegrades: every fault class at cache admission
// skips retention — requests still answer 200 with correct counts, they
// just re-simulate. Uncached is degraded, not broken.
func TestChaosCacheAdmitFaultDegrades(t *testing.T) {
	for _, class := range []string{"err", "panic", "latency(5ms)"} {
		t.Run(class, func(t *testing.T) {
			_, base := startServer(t, Config{})
			armFault(t, "serve.cache.admit:"+class+"@1+")
			var first, second sampleResponse
			if status, _ := post(t, base, sampleBody(64, 1), &first); status != http.StatusOK {
				t.Fatalf("first status=%d", status)
			}
			if status, _ := post(t, base, sampleBody(64, 1), &second); status != http.StatusOK {
				t.Fatalf("second status=%d", status)
			}
			// latency delays admission but does not skip it, so only the
			// harder classes must show a cold cache; all classes must agree
			// on the counts.
			if class != "latency(5ms)" && (first.Cached || second.Cached) {
				t.Fatalf("cached=%v/%v under admit fault, want uncached", first.Cached, second.Cached)
			}
			if !reflect.DeepEqual(first.Counts, second.Counts) {
				t.Fatal("counts diverged between re-simulations")
			}
			fault.Disable()
			// Healed: one more simulation admits, then a true cache hit.
			if status, _ := post(t, base, sampleBody(64, 1), &first); status != http.StatusOK {
				t.Fatalf("post-heal status=%d", status)
			}
			var hit sampleResponse
			if status, _ := post(t, base, sampleBody(64, 1), &hit); status != http.StatusOK || !hit.Cached {
				t.Fatalf("status=%d cached=%v after heal, want cached hit", status, hit.Cached)
			}

		})
	}
}

func TestChaosSnapstoreWriteFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	_, base := startServer(t, Config{SnapshotDir: dir})
	armFault(t, "snapstore.write:err@1+")
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(32, 1), &ok); status != http.StatusOK {
		t.Fatalf("status=%d, want 200 despite persistence failure", status)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wsnap") {
			t.Fatalf("failed Put materialized %s", e.Name())
		}
	}
	// The in-memory cache is unaffected by the dead store.
	var hit sampleResponse
	if status, _ := post(t, base, sampleBody(32, 1), &hit); status != http.StatusOK || !hit.Cached {
		t.Fatalf("status=%d cached=%v, want cached hit", status, hit.Cached)
	}
}

// TestChaosCorruptSnapshotQuarantinedOnRestart: a snapshot corrupted on the
// way to disk (injected bit rot) is detected by the CRC on the next start,
// quarantined as *.corrupt, and its circuit transparently re-simulated.
func TestChaosCorruptSnapshotQuarantinedOnRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, base1 := startServer(t, Config{SnapshotDir: dir})
	armFault(t, "snapstore.write:corrupt@1")
	var first sampleResponse
	if status, _ := post(t, base1, sampleBody(64, 1), &first); status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	fault.Disable()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, base2 := startServer(t, Config{SnapshotDir: dir})
	// Warm restart found the corruption and quarantined it.
	var corrupt, clean int
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".corrupt"):
			corrupt++
		case strings.HasSuffix(e.Name(), ".wsnap"):
			clean++
		}
	}
	if corrupt != 1 || clean != 0 {
		t.Fatalf("after restart: %d corrupt, %d clean files, want 1/0", corrupt, clean)
	}
	if got := srv2.Metrics().Counter("snapstore_quarantined_total").Value(); got != 1 {
		t.Fatalf("snapstore_quarantined_total=%d, want 1", got)
	}
	// The circuit re-simulates (never served from the bad file) with the
	// same deterministic counts, and persists a fresh, valid snapshot.
	var again sampleResponse
	if status, _ := post(t, base2, sampleBody(64, 1), &again); status != http.StatusOK {
		t.Fatalf("re-simulation status=%d", status)
	}
	if again.Cached {
		t.Fatal("request served from a quarantined snapshot")
	}
	if !reflect.DeepEqual(first.Counts, again.Counts) {
		t.Fatal("re-simulated counts diverged")
	}
	waitForFile(t, dir, ".wsnap")
}

func waitForFile(t *testing.T, dir, suffix string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), suffix) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %s file appeared in %s", suffix, dir)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosSnapstoreReadFaultFallsBackToSim(t *testing.T) {
	dir := t.TempDir()
	srv1, base1 := startServer(t, Config{SnapshotDir: dir})
	var first sampleResponse
	if status, _ := post(t, base1, sampleBody(64, 1), &first); status != http.StatusOK {
		t.Fatalf("status=%d", status)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	// Every disk read fails: warm restart loads nothing, but the daemon
	// still serves by re-simulating — and the file survives untouched.
	armFault(t, "snapstore.read:err@1+")
	_, base2 := startServer(t, Config{SnapshotDir: dir})
	var again sampleResponse
	if status, _ := post(t, base2, sampleBody(64, 1), &again); status != http.StatusOK {
		t.Fatalf("status=%d under read faults", status)
	}
	if !reflect.DeepEqual(first.Counts, again.Counts) {
		t.Fatal("counts diverged")
	}
	fault.Disable()
	if _, err := os.Stat(filepath.Join(dir, first.CircuitKey+".wsnap")); err != nil {
		t.Fatalf("read faults damaged the stored file: %v", err)
	}
}

// TestReadyzSplitsFromHealthzDuringDrain: readiness flips 503 the moment a
// drain begins; liveness stays 200 until the process exits.
func TestReadyzSplitsFromHealthzDuringDrain(t *testing.T) {
	srv, _ := startServer(t, Config{SimWorkers: 1, QueueDepth: 0})
	h := srv.Handler()
	probe := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if got := probe("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", got)
	}
	if got := probe("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before drain: %d", got)
	}

	// Park the sole worker so Shutdown blocks in the drain, then observe the
	// mid-drain probe split.
	release := occupyWorker(t, srv.pool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for probe("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			release()
			t.Fatal("/readyz never turned 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := probe("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200 (liveness is not readiness)", got)
	}
	release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished")
	}
}

// TestWarmRestartDeterminismAcrossWorkers: counts sampled from a
// disk-reloaded snapshot are bit-for-bit identical to counts sampled from
// the live-frozen one, for the same (circuit, seed, shots, workers) — at
// both ends of the worker spectrum, under -race via the stress target.
func TestWarmRestartDeterminismAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	live := map[int]map[string]int{}
	srv1, base1 := startServer(t, Config{SnapshotDir: dir, MaxSampleWorkers: 8})
	for _, workers := range []int{1, 8} {
		var resp sampleResponse
		if status, _ := post(t, base1, sampleBody(4096, workers), &resp); status != http.StatusOK {
			t.Fatalf("workers=%d status=%d", workers, status)
		}
		live[workers] = resp.Counts
	}
	waitForFile(t, dir, ".wsnap")
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, base2 := startServer(t, Config{SnapshotDir: dir, MaxSampleWorkers: 8})
	for _, workers := range []int{1, 8} {
		var resp sampleResponse
		if status, _ := post(t, base2, sampleBody(4096, workers), &resp); status != http.StatusOK {
			t.Fatalf("restarted workers=%d status=%d", workers, status)
		}
		if !resp.Cached {
			t.Fatalf("workers=%d: restarted daemon did not serve from the warm cache", workers)
		}
		if !reflect.DeepEqual(live[workers], resp.Counts) {
			t.Fatalf("workers=%d: disk-reloaded counts differ from live-frozen counts", workers)
		}
	}
	// Zero strong simulations after restart — the whole point of the store.
	if sims := srv2.Metrics().Counter("serve_sims_total").Value(); sims != 0 {
		t.Fatalf("restarted daemon ran %d strong simulations, want 0", sims)
	}
}

// TestChaosFaultFiringDumpsFlightRecorder: an injected fault that fires is
// not just a counter — the fault observer trips the flight recorder, which
// dumps the recent-span ring to disk as well-formed JSONL. The dump must
// contain the trip record naming the fired point and the spans of the
// requests that preceded the failure.
func TestChaosFaultFiringDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	srv, base := startServer(t, Config{FlightDir: dir})

	// A clean request first, so the ring has request spans to dump.
	var ok sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &ok); status != http.StatusOK {
		t.Fatalf("prime status=%d", status)
	}

	armFault(t, "serve.sim:err@1")
	body := sampleBody(16, 1)
	body["qasm"] = ghzQASM + "h q[1];\n" // different key: forces a fresh simulation
	var eb errorBody
	if status, _ := post(t, base, body, &eb); status != http.StatusInternalServerError {
		t.Fatalf("faulted status=%d code=%q, want 500", status, eb.Error.Code)
	}

	if fired := srv.Metrics().Counter("serve_fault_fired_total").Value(); fired == 0 {
		t.Fatal("serve_fault_fired_total not bumped")
	}

	// Exactly the fault trip must have produced a dump file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dump string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "flight-") && strings.HasSuffix(e.Name(), ".jsonl") {
			dump = filepath.Join(dir, e.Name())
		}
	}
	if dump == "" {
		t.Fatalf("no flight-*.jsonl dump in %s (entries: %v)", dir, entries)
	}

	// Every line is valid JSON; the trip record names the fired point, and
	// the ring carries the preceding request's serve span.
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var sawTrip, sawServeSpan bool
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		lines++
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %q (%v)", lines, line, err)
		}
		if rec["kind"] == "trip" && rec["name"] == "fault:serve.sim" {
			sawTrip = true
		}
		if rec["kind"] == "span" && rec["phase"] == "serve" && rec["name"] == "/v1/sample" {
			sawServeSpan = true
		}
	}
	if lines == 0 || !sawTrip || !sawServeSpan {
		t.Fatalf("dump with %d lines: sawTrip=%v sawServeSpan=%v", lines, sawTrip, sawServeSpan)
	}
}
