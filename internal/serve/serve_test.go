package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"weaksim/internal/dd"
	"weaksim/internal/obs"
)

const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`

// startServer boots a daemon on an ephemeral port and tears it down with the
// test. The returned base URL has no trailing slash.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv := New(cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, "http://" + srv.Addr()
}

// post sends a JSON body to /v1/sample and decodes the response into out.
func post(t *testing.T, base string, body any, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/sample", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

// occupyWorker parks one pool worker on a blocking job and returns its
// release function. Submits retry briefly: with an unbuffered queue a submit
// can only land once the worker goroutine has reached its receive.
func occupyWorker(t *testing.T, p *simPool) (release func()) {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := p.submit(func() {
			close(started)
			<-block
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not occupy worker: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	<-started
	return func() { close(block) }
}

// TestServeParallelSingleFlight is the end-to-end acceptance test: 8
// concurrent clients post the same QASM circuit for 3 rounds. Exactly one
// strong simulation must run (single-flight), rounds after the first must be
// warm cache hits, and the counts for a fixed (seed, shots, workers) must be
// identical across every response at every cache temperature.
func TestServeParallelSingleFlight(t *testing.T) {
	srv, base := startServer(t, Config{Norm: dd.NormL2Phase, MaxSampleWorkers: 4, Metrics: obs.NewRegistry()})
	const (
		clients = 8
		rounds  = 3
		shots   = 4096
	)
	req := map[string]any{"qasm": ghzQASM, "shots": shots, "seed": 7, "workers": 2}

	type result struct {
		round int
		resp  sampleResponse
	}
	var mu sync.Mutex
	var results []result

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var resp sampleResponse
				status, _ := post(t, base, req, &resp)
				if status != http.StatusOK {
					t.Errorf("round %d: status %d", round, status)
					return
				}
				mu.Lock()
				results = append(results, result{round, resp})
				mu.Unlock()
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}

	if len(results) != clients*rounds {
		t.Fatalf("got %d responses, want %d", len(results), clients*rounds)
	}
	ref := results[0].resp
	total := 0
	for _, n := range ref.Counts {
		total += n
	}
	if total != shots {
		t.Fatalf("counts sum to %d, want %d", total, shots)
	}
	for bits := range ref.Counts {
		if bits != "000" && bits != "111" {
			t.Fatalf("GHZ sample produced impossible bitstring %q", bits)
		}
	}
	for _, r := range results {
		// Determinism: counts are a pure function of (circuit, seed, shots,
		// workers), independent of cache temperature.
		if !reflect.DeepEqual(r.resp.Counts, ref.Counts) {
			t.Fatalf("round %d counts diverged:\n  got  %v\n  want %v", r.round, r.resp.Counts, ref.Counts)
		}
		if r.resp.CircuitKey != ref.CircuitKey {
			t.Fatalf("circuit key changed across requests")
		}
		if r.resp.Qubits != 3 || r.resp.Seed != 7 || r.resp.Workers != 2 {
			t.Fatalf("echoed parameters wrong: %+v", r.resp)
		}
		// Rounds after the first must be warm hits: the snapshot was resident
		// before the request arrived.
		if r.round > 0 && !r.resp.Cached {
			t.Fatalf("round %d response was not served from cache", r.round)
		}
	}

	// Exactly one strong simulation across all 24 requests.
	var st statsResponse
	if code := getJSON(t, base+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Sims != 1 {
		t.Fatalf("sims_total=%d, want exactly 1 (single-flight)", st.Sims)
	}
	if st.Cache.Entries != 1 {
		t.Fatalf("cache entries=%d, want 1", st.Cache.Entries)
	}
	if st.Requests != clients*rounds+0 {
		// stats itself is GET, not counted in reqTotal (only /v1/sample is).
		t.Fatalf("requests_total=%d, want %d", st.Requests, clients*rounds)
	}
	if got := srv.Metrics().Counter("serve_sims_total").Value(); got != 1 {
		t.Fatalf("registry sims_total=%d, want 1", got)
	}
}

// TestServeMemoryOutBudget checks the MO leg of the degradation ladder: a
// node-budgeted server answers an over-budget circuit with 507 and a
// structured JSON error body.
func TestServeMemoryOutBudget(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, NodeBudget: 2})
	var eb errorBody
	status, _ := post(t, base, map[string]any{"circuit": "qft_8", "shots": 16}, &eb)
	if status != http.StatusInsufficientStorage {
		t.Fatalf("status=%d, want 507", status)
	}
	if eb.Error.Code != "memory_out" {
		t.Fatalf("error code=%q, want memory_out", eb.Error.Code)
	}
	if eb.Error.Status != http.StatusInsufficientStorage || eb.Error.Message == "" {
		t.Fatalf("malformed error body: %+v", eb)
	}

	// The failure must not poison the cache: a permissive server would
	// succeed, and so must this one after the budget is lifted — but on THIS
	// server the same request keeps failing deterministically.
	status, _ = post(t, base, map[string]any{"circuit": "qft_8", "shots": 16}, &eb)
	if status != http.StatusInsufficientStorage {
		t.Fatalf("second attempt: status=%d, want 507 again", status)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, MaxShots: 1000, MaxSampleWorkers: 2, MaxQubits: 4})
	cases := []struct {
		name string
		body string
	}{
		{"invalid json", `{"qasm": `},
		{"unknown field", `{"qasm":"x","frobnicate":1}`},
		{"neither source", `{"shots":10}`},
		{"both sources", `{"qasm":"OPENQASM 2.0;","circuit":"ghz_2"}`},
		{"unknown circuit", `{"circuit":"nope_3"}`},
		{"bad qasm", `{"qasm":"OPENQASM 2.0;\nqreg q[1];\nfrob q[0];"}`},
		{"too wide", `{"circuit":"ghz_8"}`},
		{"negative shots", `{"circuit":"ghz_2","shots":-5}`},
		{"shots over cap", `{"circuit":"ghz_2","shots":100000}`},
		{"workers over cap", `{"circuit":"ghz_2","workers":64}`},
		{"negative timeout", `{"circuit":"ghz_2","timeout_ms":-1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(base+"/v1/sample", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
				t.Fatalf("status=%d code=%q, want 400/bad_request (%s)", resp.StatusCode, eb.Error.Code, eb.Error.Message)
			}
		})
	}

	// Wrong method on /v1/sample.
	resp, err := http.Get(base + "/v1/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sample status=%d, want 405", resp.StatusCode)
	}
}

// TestServeQueueFullReturns429 saturates a 1-worker, zero-depth admission
// queue and checks the 429 + Retry-After contract.
func TestServeQueueFullReturns429(t *testing.T) {
	srv, base := startServer(t, Config{Norm: dd.NormL2Phase, SimWorkers: 1, QueueDepth: -1})
	release := occupyWorker(t, srv.pool)
	defer release()

	var eb errorBody
	status, hdr := post(t, base, map[string]any{"qasm": ghzQASM, "shots": 4}, &eb)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status=%d, want 429", status)
	}
	if eb.Error.Code != "queue_full" || eb.Error.RetryAfterMS <= 0 {
		t.Fatalf("error=%+v, want queue_full with retry_after_ms", eb.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("missing Retry-After header")
	}
	var st statsResponse
	getJSON(t, base+"/v1/stats", &st)
	if st.QueueRejected == 0 {
		t.Fatalf("queue_rejected_total not incremented")
	}
}

// TestServeTimeoutReturns504 queues behind a stuck worker with a short
// timeout_ms and expects the TO leg of the ladder.
func TestServeTimeoutReturns504(t *testing.T) {
	srv, base := startServer(t, Config{Norm: dd.NormL2Phase, SimWorkers: 1, QueueDepth: 4})
	release := occupyWorker(t, srv.pool)
	defer release()

	var eb errorBody
	status, _ := post(t, base, map[string]any{"qasm": ghzQASM, "shots": 4, "timeout_ms": 50}, &eb)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status=%d, want 504", status)
	}
	if eb.Error.Code != "timeout" {
		t.Fatalf("error code=%q, want timeout", eb.Error.Code)
	}
}

// TestServeWorkersShardDeterministically cross-checks the API against the
// core contract: same seed, different workers → valid but different counts;
// same workers → identical counts.
func TestServeWorkersShardDeterministically(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, MaxSampleWorkers: 4})
	sample := func(workers int) sampleResponse {
		var resp sampleResponse
		status, _ := post(t, base, map[string]any{
			"qasm": ghzQASM, "shots": 2000, "seed": 11, "workers": workers}, &resp)
		if status != http.StatusOK {
			t.Fatalf("workers=%d status=%d", workers, status)
		}
		return resp
	}
	a1, a2, b := sample(1), sample(1), sample(3)
	if !reflect.DeepEqual(a1.Counts, a2.Counts) {
		t.Fatalf("same (seed, workers) produced different counts")
	}
	sum := 0
	for _, n := range b.Counts {
		sum += n
	}
	if sum != 2000 {
		t.Fatalf("worker-sharded counts sum to %d, want 2000", sum)
	}
}

func TestServeCircuitsAndHealth(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase})
	var circuits map[string][]string
	if code := getJSON(t, base+"/v1/circuits", &circuits); code != http.StatusOK {
		t.Fatalf("circuits status %d", code)
	}
	if len(circuits["table1"]) == 0 {
		t.Fatalf("no named circuits listed")
	}
	found := false
	for _, name := range circuits["table1"] {
		if name == "qft_16" {
			found = true
		}
	}
	if !found {
		t.Fatalf("qft_16 missing from %v", circuits["table1"])
	}
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz code=%d status=%q", code, health.Status)
	}
}

// TestServeEvictionUnderPressure gives the LRU room for roughly one GHZ
// snapshot and confirms distinct circuits evict each other while the daemon
// keeps answering correctly.
func TestServeEvictionUnderPressure(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, CacheBytes: 1})
	for i := 2; i <= 4; i++ {
		var resp sampleResponse
		status, _ := post(t, base, map[string]any{"circuit": fmt.Sprintf("ghz_%d", i), "shots": 8}, &resp)
		if status != http.StatusOK {
			t.Fatalf("ghz_%d status=%d", i, status)
		}
		if resp.Qubits != i {
			t.Fatalf("ghz_%d reported %d qubits", i, resp.Qubits)
		}
	}
	var st statsResponse
	getJSON(t, base+"/v1/stats", &st)
	if st.Cache.Entries != 1 {
		t.Fatalf("cache entries=%d under 1-byte budget, want 1 (oversized admission)", st.Cache.Entries)
	}
	if st.Cache.Evictions < 2 {
		t.Fatalf("evictions=%d, want >= 2", st.Cache.Evictions)
	}
}

// TestServeGracefulDrain shuts the server down mid-life and verifies the
// listener closes and Shutdown returns cleanly.
func TestServeGracefulDrain(t *testing.T) {
	srv, base := startServer(t, Config{Norm: dd.NormL2Phase})
	var resp sampleResponse
	if status, _ := post(t, base, map[string]any{"circuit": "ghz_2", "shots": 4}, &resp); status != http.StatusOK {
		t.Fatalf("warmup status=%d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Post(base+"/v1/sample", "application/json", strings.NewReader(`{}`)); err == nil {
		t.Fatalf("listener still accepting after drain")
	}
	// Idempotent: a second shutdown must not panic or error.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := srv.Shutdown(ctx2); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
